// Cross-layer integration: the paper's results composed end-to-end.
//
// The flagship scenario is oracle-free consensus: Sigma implemented from
// a correct majority (join-quorum) plus Omega implemented from
// heartbeats under partial synchrony, wired into the (Omega, Sigma)
// consensus through the FdSource indirection — i.e. consensus in a
// majority-correct partially-synchronous system with NO oracle at all,
// which is exactly the classical setting the paper generalises away
// from.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "consensus/omega_sigma_consensus.h"
#include "fd/omega_heartbeat.h"
#include "fd/sigma_majority.h"
#include "nbac/nbac_from_qc.h"
#include "qc/psi_qc.h"
#include "reg/abd_register.h"
#include "reg/linearizability.h"
#include "reg/register_client.h"
#include "test_util.h"

namespace wfd {
namespace {

class OracleFreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleFreeSweep, ConsensusWithImplementedDetectorsOnly) {
  const int n = 5;
  sim::FailurePattern f(n);
  // p0 dies immediately: the heartbeat Omega initially trusts the
  // smallest id, so the protocol must ride through a leader change
  // before it can decide. p4 dies after GST; a majority stays correct.
  f.crash_at(0, 0);
  f.crash_at(4, 40000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 500000;
  cfg.seed = GetParam();
  sim::Simulator s(cfg, f, std::make_unique<fd::NullOracle>(),
                   std::make_unique<sim::PartialSynchronyScheduler>(20000));
  std::vector<std::optional<int>> decisions(n);
  std::vector<std::unique_ptr<sim::MergedFdSource>> sources;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& omega = host.add_module<fd::OmegaHeartbeatModule>("omega");
    auto& sigma = host.add_module<fd::SigmaMajorityModule>("sigma");
    sources.push_back(std::make_unique<sim::MergedFdSource>(&omega, &sigma));
    auto& cons =
        host.add_module<consensus::OmegaSigmaConsensusModule<int>>("cons");
    cons.set_fd_source(sources.back().get());
    cons.propose(i % 2, [&decisions, i](const int& d) {
      decisions[static_cast<std::size_t>(i)] = d;
    });
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  std::optional<int> agreed;
  for (int i = 0; i < n; ++i) {
    if (f.correct().contains(i)) {
      ASSERT_TRUE(decisions[static_cast<std::size_t>(i)].has_value());
    }
    if (!decisions[static_cast<std::size_t>(i)].has_value()) continue;
    if (agreed.has_value()) {
      EXPECT_EQ(*decisions[static_cast<std::size_t>(i)], *agreed);
    } else {
      agreed = decisions[static_cast<std::size_t>(i)];
    }
  }
  ASSERT_TRUE(agreed.has_value());
  EXPECT_TRUE(*agreed == 0 || *agreed == 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleFreeSweep, ::testing::Values(1, 2, 3));

// Registers over the join-quorum Sigma implementation (no oracle): the
// full Theorem-1 stack with an implemented detector.
TEST(OracleFreeRegisters, LinearizableOverJoinQuorumSigma) {
  const int n = 5;
  sim::FailurePattern f(n);
  f.crash_at(2, 6000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 300000;
  cfg.seed = 9;
  sim::Simulator s(cfg, f, std::make_unique<fd::NullOracle>(),
                   test::random_sched());
  reg::History history;
  reg::RegisterWorkloadModule::Options wopt;
  wopt.num_ops = 3;
  std::vector<fd::SigmaMajorityModule*> sigmas;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& sigma = host.add_module<fd::SigmaMajorityModule>("sigma");
    sigmas.push_back(&sigma);
    auto& r = host.add_module<reg::AbdRegisterModule<std::int64_t>>("reg");
    r.set_fd_source(&sigma);
    host.add_module<reg::RegisterWorkloadModule>("load", &r, &history, wopt);
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  const auto lin = reg::check_linearizable(history);
  EXPECT_TRUE(lin.ok) << lin.violation;
}

// The full Corollary-10 tower in one process stack: NBAC over QC over
// consensus over (Psi, FS), with a crash mid-protocol, across
// schedulers.
TEST(FullTower, NbacOverQcOverConsensusWithCrash) {
  for (const bool round_robin : {false, true}) {
    const int n = 4;
    sim::FailurePattern f(n);
    f.crash_at(3, 500);

    sim::SimConfig cfg;
    cfg.n = n;
    cfg.max_steps = 300000;
    cfg.seed = 17;
    sim::Simulator s(cfg, f, test::psi_fs(fd::PsiOracle::Branch::kAuto, 400),
                     round_robin ? test::round_robin()
                                 : test::random_sched());
    std::vector<std::optional<nbac::Decision>> decisions(n);
    for (int i = 0; i < n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      auto& q = host.add_module<qc::PsiQcModule<int>>("qc");
      auto& nb = host.add_module<nbac::NbacFromQcModule>("nbac", &q);
      nb.vote(nbac::Vote::kYes, [&decisions, i](nbac::Decision d) {
        decisions[static_cast<std::size_t>(i)] = d;
      });
    }
    const auto res = s.run();
    EXPECT_TRUE(res.all_done);
    std::optional<nbac::Decision> agreed;
    for (int i = 0; i < n; ++i) {
      if (f.correct().contains(i)) {
        ASSERT_TRUE(decisions[static_cast<std::size_t>(i)].has_value());
      }
      if (!decisions[static_cast<std::size_t>(i)].has_value()) continue;
      if (agreed.has_value()) {
        EXPECT_EQ(*decisions[static_cast<std::size_t>(i)], *agreed);
      } else {
        agreed = decisions[static_cast<std::size_t>(i)];
      }
    }
  }
}

}  // namespace
}  // namespace wfd
