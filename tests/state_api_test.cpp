// The module-state API end to end: composed Module::encode_state
// fingerprints are schedule-independent (two different schedules that
// reach the same global state digest identically), the explorer's
// default fingerprint pruning rides on that composition, and DPOR is
// both sound (re-finds the seeded bug) and strictly tighter than the
// sleep-set baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "explore/explorer.h"
#include "explore/scenario.h"
#include "sim/choice.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace wfd::explore {
namespace {

/// Drives a run by *process*, not by menu index: each schedule choice
/// picks the first label of the next process in `order`; every other
/// choice kind (detector history, environment) takes option 0, so two
/// sources with different orders differ only in the schedule.
class ProcessOrderChoices : public sim::ChoiceSource {
 public:
  explicit ProcessOrderChoices(std::vector<ProcessId> order)
      : order_(std::move(order)) {}

  std::size_t choose(sim::ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override {
    if (kind != sim::ChoiceKind::kSchedule) return 0;
    EXPECT_LT(next_, order_.size()) << "schedule longer than the order";
    const ProcessId want = order_[next_++];
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (sim::ReplayScheduler::label_process(labels[i]) == want) return i;
    }
    ADD_FAILURE() << "no option for process " << want;
    return 0;
  }

 private:
  std::vector<ProcessId> order_;
  std::size_t next_ = 0;
};

/// Steps the scenario `steps` times under the given process order and
/// returns the composed state fingerprint after every step.
std::vector<std::optional<std::uint64_t>> fingerprints_along(
    const ScenarioOptions& opt, std::vector<ProcessId> order,
    std::size_t steps) {
  ProcessOrderChoices choices(std::move(order));
  Scenario sc = ScenarioFactory(opt).build(choices);
  std::vector<std::optional<std::uint64_t>> out;
  for (std::size_t i = 0; i < steps; ++i) {
    EXPECT_TRUE(sc.sim->step());
    out.push_back(sc.sim->state_fingerprint());
  }
  return out;
}

/// Starting the two processes in either order reaches the same global
/// state (start steps of different processes are independent), so the
/// digests must agree — while the intermediate states, which genuinely
/// differ, must not collide.
void expect_schedule_independent(const ScenarioOptions& opt) {
  const auto a = fingerprints_along(opt, {0, 1}, 2);
  const auto b = fingerprints_along(opt, {1, 0}, 2);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (const auto& fp : a) ASSERT_TRUE(fp.has_value()) << opt.problem;
  for (const auto& fp : b) ASSERT_TRUE(fp.has_value()) << opt.problem;
  EXPECT_NE(*a[0], *b[0]) << opt.problem
                          << ": distinct states must hash apart";
  EXPECT_EQ(*a[1], *b[1]) << opt.problem
                          << ": same state reached via different "
                             "schedules must hash identically";
}

ScenarioOptions base_options(const char* problem) {
  ScenarioOptions opt;
  opt.problem = problem;
  opt.n = 2;
  opt.max_steps = 10;
  opt.fd_per_query = false;  // One static history: begin_run draws the
                             // same detector choices in both runs.
  return opt;
}

TEST(StateApiTest, ConsensusFingerprintIsScheduleIndependent) {
  expect_schedule_independent(base_options("consensus"));
}

TEST(StateApiTest, QcFingerprintIsScheduleIndependent) {
  expect_schedule_independent(base_options("qc"));
}

TEST(StateApiTest, RegisterFingerprintIsScheduleIndependent) {
  expect_schedule_independent(base_options("register"));
}

// The explorer's default pruning uses the encode_state composition (no
// FingerprintFn override involved): it must fire on a scenario whose
// interleavings converge, and the coverage report must say so.
TEST(StateApiTest, DefaultCompositionPrunesAndReportsCoverage) {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 2;
  opt.max_steps = 10;
  SearchConfig eo;
  eo.scenario = opt;
  eo.max_states = 200000;
  eo.stop_at_first = false;
  Explorer ex(ScenarioFactory(opt).builder(), eo);
  const ExploreReport rep = ex.run();
  EXPECT_TRUE(rep.stats.exhausted);
  EXPECT_GT(rep.stats.fp_prunes, 0u);
  EXPECT_EQ(coverage(rep.stats), Coverage::kModuloFingerprints);
  EXPECT_EQ(coverage_name(coverage(rep.stats)), "modulo-fingerprints");
}

TEST(StateApiTest, CoverageDistinguishesBudgetFromExhaustion) {
  ExploreStats s;
  EXPECT_EQ(coverage(s), Coverage::kBudget);
  s.exhausted = true;
  EXPECT_EQ(coverage(s), Coverage::kComplete);
  s.fp_prunes = 7;
  EXPECT_EQ(coverage(s), Coverage::kModuloFingerprints);
}

// DPOR soundness + strength, fingerprints off for a pure reduction
// comparison: both reductions must exhaust the tiny tree and find the
// seeded agreement bug, and DPOR must materialize strictly fewer choice
// points than static sleep sets.
TEST(StateApiTest, DporRefindsSeededBugWithFewerStatesThanSleepSets) {
  ScenarioOptions opt;
  opt.problem = "consensus-bug";
  opt.n = 2;
  opt.max_steps = 6;
  const ScenarioBuilder build = ScenarioFactory(opt).builder();

  SearchConfig dpor;
  dpor.scenario = opt;
  dpor.max_states = 500000;
  dpor.stop_at_first = false;
  dpor.reduction = Reduction::kDpor;
  dpor.state_fingerprints = false;
  SearchConfig sleep = dpor;
  sleep.reduction = Reduction::kSleepSets;

  Explorer a(build, dpor);
  Explorer b(build, sleep);
  const ExploreReport ra = a.run();
  const ExploreReport rb = b.run();

  EXPECT_TRUE(ra.stats.exhausted);
  EXPECT_TRUE(rb.stats.exhausted);
  EXPECT_GT(ra.stats.violations, 0u);
  EXPECT_GT(rb.stats.violations, 0u);
  ASSERT_TRUE(ra.cex.has_value());
  EXPECT_EQ(ra.cex->violation.property, "agreement(decide)");
  EXPECT_GT(ra.stats.hb_races, 0u);
  EXPECT_GT(ra.stats.backtrack_points, 0u);
  EXPECT_LT(ra.stats.nodes, rb.stats.nodes);
}

}  // namespace
}  // namespace wfd::explore
