// Every oracle must produce histories satisfying its formal definition,
// across environments, seeds and schedulers — checked with the
// history-checker implementations of the Section 2 definitions.
#include <gtest/gtest.h>

#include <memory>

#include "fd/history_checker.h"
#include "sim/environment.h"
#include "test_util.h"

namespace wfd {
namespace {

struct SweepParam {
  std::uint64_t seed;
  int crashes;
};

class OracleSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static constexpr int kN = 5;
  static constexpr Time kHorizon = 6000;

  sim::FailurePattern sample_pattern() {
    Rng rng(GetParam().seed * 7919 + 13);
    sim::MaxCrashesEnvironment env(kN, GetParam().crashes);
    // Crashes land in the first half so eventual clauses have witnesses.
    auto f = env.sample(rng, kHorizon / 2);
    return f;
  }

  std::vector<sim::FdSampleRecord> run_oracle(
      std::unique_ptr<fd::Oracle> oracle, const sim::FailurePattern& f) {
    sim::SimConfig cfg;
    cfg.n = kN;
    cfg.max_steps = kHorizon;
    cfg.seed = GetParam().seed;
    cfg.record_fd_samples = true;
    auto s = test::nop_sim(cfg, f, std::move(oracle), test::random_sched());
    s.run();
    return s.trace().samples();
  }
};

TEST_P(OracleSweep, OmegaHistoryIsLegal) {
  const auto f = sample_pattern();
  const auto samples = run_oracle(test::omega(), f);
  const auto r = fd::check_omega_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(OracleSweep, SigmaCommonCoreHistoryIsLegal) {
  const auto f = sample_pattern();
  const auto samples = run_oracle(test::sigma_oracle(), f);
  const auto r = fd::check_sigma_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(OracleSweep, SigmaAllThenCorrectHistoryIsLegal) {
  const auto f = sample_pattern();
  const auto samples = run_oracle(
      test::sigma_oracle(400, fd::SigmaOracle::Mode::kAllThenCorrect), f);
  const auto r = fd::check_sigma_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(OracleSweep, FsHistoryIsLegal) {
  const auto f = sample_pattern();
  const auto samples = run_oracle(test::fs_oracle(), f);
  const auto r = fd::check_fs_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(OracleSweep, PsiHistoryIsLegal) {
  const auto f = sample_pattern();
  const auto samples = run_oracle(test::psi_oracle(), f);
  const auto r = fd::check_psi_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(OracleSweep, PsiForcedFsBranchRequiresFailure) {
  auto f = sample_pattern();
  if (f.faulty().empty()) {
    f.crash_at(0, 100);  // The FS branch needs a failure.
  }
  const auto samples =
      run_oracle(test::psi_oracle(fd::PsiOracle::Branch::kFs), f);
  const auto r = fd::check_psi_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(OracleSweep, PsiForcedOmegaSigmaBranch) {
  const auto f = sample_pattern();
  const auto samples =
      run_oracle(test::psi_oracle(fd::PsiOracle::Branch::kOmegaSigma), f);
  const auto r = fd::check_psi_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(OracleSweep, TupleOmegaSigmaCarriesBothComponents) {
  const auto f = sample_pattern();
  const auto samples = run_oracle(test::omega_sigma(), f);
  const auto om = fd::check_omega_history(samples, f);
  EXPECT_TRUE(om.ok) << om.violation;
  const auto si = fd::check_sigma_history(samples, f);
  EXPECT_TRUE(si.ok) << si.violation;
}

TEST_P(OracleSweep, PerfectHistoryIsLegal) {
  const auto f = sample_pattern();
  const auto samples =
      run_oracle(std::make_unique<fd::PerfectOracle>(), f);
  const auto r = fd::check_perfect_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(OracleSweep, EventuallyPerfectConvergesToPerfectBehaviour) {
  const auto f = sample_pattern();
  fd::EventuallyPerfectOracle::Options opt;
  opt.max_stabilization = 400;
  const auto samples =
      run_oracle(std::make_unique<fd::EventuallyPerfectOracle>(opt), f);
  // <>P satisfies <>S's requirements a fortiori.
  const auto r = fd::check_ev_strong_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(OracleSweep, EventuallyStrongHistoryIsLegal) {
  const auto f = sample_pattern();
  fd::EventuallyStrongOracle::Options opt;
  opt.max_stabilization = 400;
  const auto samples =
      run_oracle(std::make_unique<fd::EventuallyStrongOracle>(opt), f);
  const auto r = fd::check_ev_strong_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OracleSweep,
    ::testing::Values(SweepParam{1, 0}, SweepParam{2, 0}, SweepParam{3, 1},
                      SweepParam{4, 1}, SweepParam{5, 2}, SweepParam{6, 2},
                      SweepParam{7, 4}, SweepParam{8, 4}, SweepParam{9, 3},
                      SweepParam{10, 4}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "crashes" +
             std::to_string(info.param.crashes);
    });

// Majority-mode Sigma is only defined in majority-correct environments.
TEST(SigmaMajorityModeTest, LegalWhenMajorityCorrect) {
  sim::FailurePattern f(5);
  f.crash_at(0, 50);
  f.crash_at(1, 300);
  sim::SimConfig cfg;
  cfg.n = 5;
  cfg.max_steps = 6000;
  cfg.seed = 21;
  cfg.record_fd_samples = true;
  auto s = test::nop_sim(
      cfg, f, test::sigma_oracle(400, fd::SigmaOracle::Mode::kMajority),
      test::random_sched());
  s.run();
  const auto r = fd::check_sigma_history(s.trace().samples(), f);
  EXPECT_TRUE(r.ok) << r.violation;
}

// ------------------------------------------- checker self-tests (negative)

TEST(HistoryCheckerTest, RejectsNonIntersectingSigma) {
  sim::FailurePattern f(4);
  std::vector<sim::FdSampleRecord> samples;
  sim::FdSampleRecord a;
  a.p = 0;
  a.t = 1;
  a.value.sigma = ProcessSet{0, 1};
  sim::FdSampleRecord b;
  b.p = 1;
  b.t = 2;
  b.value.sigma = ProcessSet{2, 3};
  samples = {a, b};
  EXPECT_FALSE(fd::check_sigma_history(samples, f).ok);
}

TEST(HistoryCheckerTest, RejectsSigmaNeverCompleting) {
  sim::FailurePattern f(3);
  f.crash_at(2, 10);
  std::vector<sim::FdSampleRecord> samples;
  for (Time t = 0; t < 40; ++t) {
    sim::FdSampleRecord r;
    r.p = static_cast<ProcessId>(t % 2);
    r.t = t;
    r.value.sigma = ProcessSet{2};  // Forever contains the faulty process.
    samples.push_back(r);
  }
  EXPECT_FALSE(fd::check_sigma_history(samples, f).ok);
}

TEST(HistoryCheckerTest, RejectsFaultyOmegaLeader) {
  sim::FailurePattern f(3);
  f.crash_at(0, 5);
  std::vector<sim::FdSampleRecord> samples;
  for (ProcessId p = 1; p <= 2; ++p) {
    sim::FdSampleRecord r;
    r.p = p;
    r.t = 10 + static_cast<Time>(p);
    r.value.omega = 0;  // Crashed leader.
    samples.push_back(r);
  }
  EXPECT_FALSE(fd::check_omega_history(samples, f).ok);
}

TEST(HistoryCheckerTest, RejectsDivergedOmega) {
  sim::FailurePattern f(2);
  std::vector<sim::FdSampleRecord> samples;
  sim::FdSampleRecord a;
  a.p = 0;
  a.t = 100;
  a.value.omega = 0;
  sim::FdSampleRecord b;
  b.p = 1;
  b.t = 100;
  b.value.omega = 1;
  samples = {a, b};
  EXPECT_FALSE(fd::check_omega_history(samples, f).ok);
}

TEST(HistoryCheckerTest, RejectsPrematureRed) {
  sim::FailurePattern f(2);
  f.crash_at(1, 100);
  std::vector<sim::FdSampleRecord> samples;
  sim::FdSampleRecord a;
  a.p = 0;
  a.t = 50;  // Before the crash.
  a.value.fs = fd::FsColor::kRed;
  samples = {a};
  EXPECT_FALSE(fd::check_fs_history(samples, f).ok);
}

TEST(HistoryCheckerTest, RejectsMissingRedAfterFailure) {
  sim::FailurePattern f(2);
  f.crash_at(1, 10);
  std::vector<sim::FdSampleRecord> samples;
  for (Time t = 0; t < 100; t += 10) {
    sim::FdSampleRecord r;
    r.p = 0;
    r.t = t;
    r.value.fs = fd::FsColor::kGreen;
    samples.push_back(r);
  }
  EXPECT_FALSE(fd::check_fs_history(samples, f).ok);
}

TEST(HistoryCheckerTest, RejectsPsiBranchDisagreement) {
  sim::FailurePattern f(2);
  f.crash_at(1, 1);
  std::vector<sim::FdSampleRecord> samples;
  sim::FdSampleRecord a;
  a.p = 0;
  a.t = 10;
  a.value.psi = fd::PsiValue::failure_signal(fd::FsColor::kRed);
  sim::FdSampleRecord b;
  b.p = 1;
  b.t = 10;
  b.value.psi = fd::PsiValue::omega_sigma(0, ProcessSet{0});
  samples = {a, b};
  EXPECT_FALSE(fd::check_psi_history(samples, f).ok);
}

TEST(HistoryCheckerTest, RejectsPsiFsBranchWithoutFailure) {
  sim::FailurePattern f(2);  // Crash-free.
  std::vector<sim::FdSampleRecord> samples;
  for (ProcessId p = 0; p < 2; ++p) {
    sim::FdSampleRecord r;
    r.p = p;
    r.t = 10;
    r.value.psi = fd::PsiValue::failure_signal(fd::FsColor::kRed);
    samples.push_back(r);
  }
  EXPECT_FALSE(fd::check_psi_history(samples, f).ok);
}

TEST(HistoryCheckerTest, RejectsPsiBottomAfterSwitch) {
  sim::FailurePattern f(1);
  std::vector<sim::FdSampleRecord> samples;
  sim::FdSampleRecord a;
  a.p = 0;
  a.t = 1;
  a.value.psi = fd::PsiValue::omega_sigma(0, ProcessSet{0});
  sim::FdSampleRecord b;
  b.p = 0;
  b.t = 2;
  b.value.psi = fd::PsiValue::bottom();
  samples = {a, b};
  EXPECT_FALSE(fd::check_psi_history(samples, f).ok);
}

TEST(HistoryCheckerTest, RejectsPerfectSuspectingAlive) {
  sim::FailurePattern f(2);
  std::vector<sim::FdSampleRecord> samples;
  sim::FdSampleRecord a;
  a.p = 0;
  a.t = 5;
  a.value.suspected = ProcessSet{1};  // 1 never crashes.
  samples = {a};
  EXPECT_FALSE(fd::check_perfect_history(samples, f).ok);
}

TEST(HistoryCheckerTest, AcceptsTrivialGreenHistoryWhenCrashFree) {
  sim::FailurePattern f(2);
  std::vector<sim::FdSampleRecord> samples;
  for (ProcessId p = 0; p < 2; ++p) {
    sim::FdSampleRecord r;
    r.p = p;
    r.t = 3;
    r.value.fs = fd::FsColor::kGreen;
    samples.push_back(r);
  }
  EXPECT_TRUE(fd::check_fs_history(samples, f).ok);
}

}  // namespace
}  // namespace wfd
