// Determinism guarantees the exploration subsystem rests on: identical
// seeds (for the existing randomized schedulers) and identical decision
// sequences (for the choice-driven stack) must reproduce runs exactly,
// byte for byte in the canonical trace rendering.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "explore/scenario.h"
#include "explore/seeded_bug.h"
#include "fd/oracle.h"
#include "sim/choice.h"
#include "sim/module.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace wfd {
namespace {

// A FilteredScheduler run: random-fair base, messages from process 0
// withheld for the first 40 steps. Schedule-sensitive enough that any
// seed drift would show up in the trace.
std::string filtered_run(std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = 3;
  cfg.max_steps = 200;
  cfg.seed = seed;
  auto filter = [](const sim::Envelope& e, Time now) {
    return e.from == 0 && now < 40;
  };
  sim::Simulator s(cfg, test::pattern(3),
                   std::make_unique<fd::NullOracle>(),
                   std::make_unique<sim::FilteredScheduler>(
                       std::make_unique<sim::RandomFairScheduler>(), filter));
  for (int i = 0; i < 3; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    host.add_module<explore::FirstHeardConsensusModule>("cons").propose(i);
  }
  s.run();
  return s.trace().to_string();
}

TEST(DeterminismTest, FilteredSchedulerSameSeedSameTrace) {
  const std::string a = filtered_run(7);
  const std::string b = filtered_run(7);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  // And a different seed actually changes the run, so the comparison
  // above is not vacuous.
  EXPECT_NE(a, filtered_run(8));
}

std::string replayed_run(const sim::DecisionLog& log) {
  explore::ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 3;
  opt.max_steps = 60;
  sim::FixedChoices choices(log);
  explore::Scenario sc = explore::ScenarioFactory(opt).build(choices);
  while (sc.sim->step()) {
  }
  return sc.sim->trace().to_string();
}

TEST(DeterminismTest, ReplaySchedulerSameDecisionsSameTrace) {
  const sim::DecisionLog log = {1, 2, 0, 3, 1, 4, 0, 2, 2, 1, 0, 5};
  const std::string a = replayed_run(log);
  const std::string b = replayed_run(log);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a, replayed_run({3, 0, 1, 0, 2, 0, 1, 1, 0, 4, 2, 0}));
}

TEST(DeterminismTest, RecordedRandomRunReplaysExactly) {
  explore::ScenarioOptions opt;
  opt.problem = "qc";
  opt.n = 3;
  opt.crashes = 1;
  opt.max_steps = 60;
  const explore::ScenarioFactory factory(opt);

  sim::RandomChoices random(99);
  sim::RecordingChoices rec(random);
  explore::Scenario original = factory.build(rec);
  while (original.sim->step()) {
  }
  const std::string want = original.sim->trace().to_string();

  sim::FixedChoices fixed(rec.log());
  explore::Scenario replay = factory.build(fixed);
  while (replay.sim->step()) {
  }
  EXPECT_EQ(want, replay.sim->trace().to_string());
}

}  // namespace
}  // namespace wfd
