// Shared helpers for the test suite: pattern/oracle/scheduler builders
// and a tiny do-nothing process for oracle-only runs.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <utility>
#include <vector>

#include "fd/classic_oracles.h"
#include "fd/fs_oracle.h"
#include "fd/omega_oracle.h"
#include "fd/oracle.h"
#include "fd/psi_oracle.h"
#include "fd/sigma_oracle.h"
#include "sim/environment.h"
#include "sim/module.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace wfd::test {

/// A pattern with the given (process, crash time) pairs.
inline sim::FailurePattern pattern(
    int n, std::initializer_list<std::pair<ProcessId, Time>> crashes = {}) {
  sim::FailurePattern f(n);
  for (const auto& [p, t] : crashes) f.crash_at(p, t);
  return f;
}

/// Fast-converging oracles so tests keep runs short.
inline std::unique_ptr<fd::Oracle> omega(Time stab = 400) {
  fd::OmegaOracle::Options o;
  o.max_stabilization = stab;
  return std::make_unique<fd::OmegaOracle>(o);
}

inline std::unique_ptr<fd::Oracle> sigma_oracle(
    Time stab = 400,
    fd::SigmaOracle::Mode mode = fd::SigmaOracle::Mode::kCommonCore) {
  fd::SigmaOracle::Options o;
  o.mode = mode;
  o.max_stabilization = stab;
  return std::make_unique<fd::SigmaOracle>(o);
}

inline std::unique_ptr<fd::Oracle> omega_sigma(Time stab = 400) {
  fd::OmegaOracle::Options oo;
  oo.max_stabilization = stab;
  fd::SigmaOracle::Options so;
  so.max_stabilization = stab;
  return std::make_unique<fd::TupleOracle>(
      std::make_unique<fd::OmegaOracle>(oo),
      std::make_unique<fd::SigmaOracle>(so));
}

inline std::unique_ptr<fd::Oracle> fs_oracle(Time lag = 400) {
  fd::FsOracle::Options o;
  o.max_reaction_lag = lag;
  return std::make_unique<fd::FsOracle>(o);
}

inline std::unique_ptr<fd::Oracle> psi_oracle(
    fd::PsiOracle::Branch branch = fd::PsiOracle::Branch::kAuto,
    Time spread = 400, Time stab = 400) {
  fd::PsiOracle::Options o;
  o.branch = branch;
  o.max_switch_spread = spread;
  o.omega.max_stabilization = stab;
  o.sigma.max_stabilization = stab;
  return std::make_unique<fd::PsiOracle>(o);
}

inline std::unique_ptr<fd::Oracle> psi_fs(
    fd::PsiOracle::Branch branch = fd::PsiOracle::Branch::kAuto,
    Time spread = 400, Time stab = 400) {
  fd::FsOracle::Options fo;
  fo.max_reaction_lag = spread;
  fd::PsiOracle::Options po;
  po.branch = branch;
  po.max_switch_spread = spread;
  po.omega.max_stabilization = stab;
  po.sigma.max_stabilization = stab;
  return std::make_unique<fd::TupleOracle>(
      std::make_unique<fd::PsiOracle>(po),
      std::make_unique<fd::FsOracle>(fo));
}

inline std::unique_ptr<sim::Scheduler> random_sched() {
  return std::make_unique<sim::RandomFairScheduler>();
}

inline std::unique_ptr<sim::Scheduler> round_robin() {
  return std::make_unique<sim::RoundRobinScheduler>();
}

/// A process that does nothing (for pure-oracle runs).
class NopProcess : public sim::Process {
 public:
  void on_step(sim::Context&, const sim::Envelope*) override {}
};

/// Build a simulator with NopProcesses (for oracle history tests).
inline sim::Simulator nop_sim(sim::SimConfig cfg, sim::FailurePattern f,
                              std::unique_ptr<fd::Oracle> oracle,
                              std::unique_ptr<sim::Scheduler> sched) {
  sim::Simulator s(cfg, std::move(f), std::move(oracle), std::move(sched));
  for (int i = 0; i < cfg.n; ++i) s.add_process<NopProcess>();
  return s;
}

}  // namespace wfd::test
