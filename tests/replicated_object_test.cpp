// The "implement any object" substrate (Corollary 3 / [17, 21]):
// replicated objects over atomic broadcast stay consistent across
// replicas and return linearizable results — plus FS from P.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "fd/fs_from_suspicions.h"
#include "fd/history_checker.h"
#include "sim/fd_sampler.h"
#include "smr/replicated_object.h"
#include "test_util.h"

namespace wfd {
namespace {

using smr::ReplicatedObjectModule;

TEST(ReplicatedObjectTest, CounterReplicasConverge) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = 23;
  sim::Simulator s(cfg, test::pattern(n), test::omega_sigma(),
                   test::random_sched());
  // A replicated counter: command = increment amount; result = the
  // counter AFTER applying. Each process owns its own state cell but
  // the transitions are identical and totally ordered.
  std::vector<std::int64_t> counters(n, 0);
  std::vector<ReplicatedObjectModule*> objs;
  std::vector<std::vector<std::int64_t>> results(n);
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto* cell = &counters[static_cast<std::size_t>(i)];
    auto& obj = host.add_module<ReplicatedObjectModule>(
        "obj", [cell](std::int64_t cmd) { return *cell += cmd; });
    objs.push_back(&obj);
    for (int k = 1; k <= 3; ++k) {
      obj.submit(k, [&results, i](std::int64_t r) {
        results[static_cast<std::size_t>(i)].push_back(r);
      });
    }
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  s.set_halt_on_done(false);
  s.run_for(60000);  // Let stragglers catch up on decide messages.

  // All replicas applied the same number of commands (9) to the same
  // effect: 3 * (1+2+3) = 18.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(objs[static_cast<std::size_t>(i)]->applied_count(), 9u);
    EXPECT_EQ(counters[static_cast<std::size_t>(i)], 18);
    // Each submitter saw monotonically increasing results (its own
    // commands appear in submission order in the total order since they
    // share one abcast origin stream... results strictly increase).
    const auto& rs = results[static_cast<std::size_t>(i)];
    ASSERT_EQ(rs.size(), 3u);
    EXPECT_LT(rs[0], rs[1]);
    EXPECT_LT(rs[1], rs[2]);
  }
}

TEST(ReplicatedObjectTest, SurvivesMinorityCorrect) {
  const int n = 4;
  sim::FailurePattern f(n);
  f.crash_at(0, 600);
  f.crash_at(1, 900);
  f.crash_at(2, 1200);  // Only p3 survives — Sigma territory.

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 600000;
  cfg.seed = 29;
  sim::Simulator s(cfg, f, test::omega_sigma(), test::random_sched());
  std::vector<std::int64_t> counters(n, 0);
  std::optional<std::int64_t> survivor_result;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto* cell = &counters[static_cast<std::size_t>(i)];
    auto& obj = host.add_module<ReplicatedObjectModule>(
        "obj", [cell](std::int64_t cmd) { return *cell += cmd; });
    if (i == 3) {
      obj.submit(5, [&survivor_result](std::int64_t r) {
        survivor_result = r;
      });
    }
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  ASSERT_TRUE(survivor_result.has_value());
  EXPECT_EQ(*survivor_result, 5);
}

TEST(FsFromSuspicionsTest, LegalFsHistoryFromPerfect) {
  const int n = 3;
  sim::FailurePattern f(n);
  f.crash_at(1, 2000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 40000;
  cfg.seed = 31;
  sim::Simulator s(cfg, f, std::make_unique<fd::PerfectOracle>(),
                   test::random_sched());
  std::vector<sim::FdSampleRecord> samples;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& fs = host.add_module<fd::FsFromSuspicionsModule>("fs");
    host.add_module<sim::FdSamplerModule>("sampler", &fs, &samples, 16);
  }
  s.set_halt_on_done(false);
  s.run();
  const auto r = fd::check_fs_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(FsFromSuspicionsTest, StaysGreenCrashFree) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 20000;
  cfg.seed = 37;
  sim::Simulator s(cfg, test::pattern(n),
                   std::make_unique<fd::PerfectOracle>(),
                   test::random_sched());
  std::vector<fd::FsFromSuspicionsModule*> fss;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    fss.push_back(&host.add_module<fd::FsFromSuspicionsModule>("fs"));
  }
  s.set_halt_on_done(false);
  s.run();
  for (auto* fs : fss) EXPECT_FALSE(fs->red());
}

TEST(FsFromSuspicionsTest, UnsoundFromEventuallyPerfect) {
  // The boundary: from <>P, early false suspicions make the emulated FS
  // turn red in a crash-free run — an accuracy violation the checker
  // catches. (This is why FS needs P-grade accuracy or synchrony.)
  const int n = 3;
  bool violation_found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !violation_found; ++seed) {
    sim::SimConfig cfg;
    cfg.n = n;
    cfg.max_steps = 30000;
    cfg.seed = seed;
    fd::EventuallyPerfectOracle::Options opt;
    opt.max_stabilization = 5000;
    sim::Simulator s(cfg, test::pattern(n),
                     std::make_unique<fd::EventuallyPerfectOracle>(opt),
                     test::random_sched());
    std::vector<fd::FsFromSuspicionsModule*> fss;
    for (int i = 0; i < n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      fss.push_back(&host.add_module<fd::FsFromSuspicionsModule>("fs"));
    }
    s.set_halt_on_done(false);
    s.run();
    for (auto* fs : fss) violation_found = violation_found || fs->red();
  }
  EXPECT_TRUE(violation_found);
}

}  // namespace
}  // namespace wfd
