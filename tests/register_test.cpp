// Theorem 1, sufficiency: the Sigma-based ABD register is linearizable
// and wait-free for correct processes in ANY environment — including
// minority-correct ones where classical majority-ABD blocks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "reg/abd_register.h"
#include "reg/linearizability.h"
#include "reg/register_client.h"
#include "test_util.h"

namespace wfd {
namespace {

using reg::AbdRegisterModule;
using reg::History;
using reg::QuorumRule;
using reg::RegisterWorkloadModule;

// ------------------------------------------------ linearizability checker

History make_history(
    std::initializer_list<std::tuple<ProcessId, bool, std::int64_t, Time, Time>>
        ops) {
  History h;
  for (const auto& [client, is_write, value, inv, rsp] : ops) {
    const auto idx = h.invoke(client, is_write, is_write ? value : 0, inv);
    if (rsp != kNever) h.respond(idx, rsp, value);
  }
  return h;
}

TEST(LinearizabilityTest, EmptyHistoryIsLinearizable) {
  EXPECT_TRUE(reg::is_linearizable(History{}));
}

TEST(LinearizabilityTest, SimpleSequentialHistory) {
  const auto h = make_history({
      {0, true, 7, 0, 10},   // write 7
      {1, false, 7, 20, 30}, // read 7
  });
  EXPECT_TRUE(reg::is_linearizable(h));
}

TEST(LinearizabilityTest, ReadOfInitialValue) {
  const auto h = make_history({{0, false, 0, 0, 5}});
  EXPECT_TRUE(reg::is_linearizable(h, 0));
  EXPECT_FALSE(reg::is_linearizable(h, 42));
}

TEST(LinearizabilityTest, StaleReadAfterWriteIsRejected) {
  const auto h = make_history({
      {0, true, 7, 0, 10},
      {1, false, 0, 20, 30},  // reads initial value after the write: stale.
  });
  EXPECT_FALSE(reg::is_linearizable(h));
}

TEST(LinearizabilityTest, ConcurrentReadMayReturnEitherValue) {
  const auto old_ok = make_history({
      {0, true, 7, 0, 100},
      {1, false, 0, 50, 60},  // concurrent with the write: old value ok.
  });
  EXPECT_TRUE(reg::is_linearizable(old_ok));
  const auto new_ok = make_history({
      {0, true, 7, 0, 100},
      {1, false, 7, 50, 60},  // or the new value.
  });
  EXPECT_TRUE(reg::is_linearizable(new_ok));
}

TEST(LinearizabilityTest, NewOldInversionIsRejected) {
  // Two sequential reads concurrent with one write: the second read may
  // not travel back in time.
  const auto h = make_history({
      {0, true, 7, 0, 100},
      {1, false, 7, 10, 20},  // saw the new value...
      {1, false, 0, 30, 40},  // ...then the old one: inversion.
  });
  EXPECT_FALSE(reg::is_linearizable(h));
}

TEST(LinearizabilityTest, IncompleteWriteMayOrMayNotTakeEffect) {
  const auto took_effect = make_history({
      {0, true, 7, 0, kNever},  // writer crashed mid-write
      {1, false, 7, 50, 60},
  });
  EXPECT_TRUE(reg::is_linearizable(took_effect));
  const auto did_not = make_history({
      {0, true, 7, 0, kNever},
      {1, false, 0, 50, 60},
  });
  EXPECT_TRUE(reg::is_linearizable(did_not));
}

TEST(LinearizabilityTest, IncompleteWriteCannotFlipFlop) {
  const auto h = make_history({
      {0, true, 7, 0, kNever},
      {1, false, 7, 50, 60},   // took effect...
      {1, false, 0, 70, 80},   // ...cannot be undone afterwards.
  });
  EXPECT_FALSE(reg::is_linearizable(h));
}

TEST(LinearizabilityTest, InterleavedWritersAgree) {
  const auto h = make_history({
      {0, true, 1, 0, 10},
      {1, true, 2, 5, 15},   // concurrent writes
      {2, false, 1, 20, 30},
      {3, false, 1, 40, 50},
  });
  // Valid: order w2 before w1.
  EXPECT_TRUE(reg::is_linearizable(h));
  const auto bad = make_history({
      {0, true, 1, 0, 10},
      {1, true, 2, 5, 15},
      {2, false, 1, 20, 30},
      {3, false, 2, 40, 50},
      {2, false, 1, 60, 70},  // 1 -> 2 -> 1 again: impossible.
  });
  EXPECT_FALSE(reg::is_linearizable(bad));
}

// ----------------------------------------------------------- ABD over Sigma

struct AbdParam {
  std::uint64_t seed;
  int n;
  int crashes;
  QuorumRule rule;
};

class AbdSweep : public ::testing::TestWithParam<AbdParam> {
 protected:
  /// Run a multi-client workload; returns (history, all_done).
  std::pair<History, bool> run_workload(const sim::FailurePattern& f,
                                        QuorumRule rule, Time max_steps) {
    const auto& prm = GetParam();
    sim::SimConfig cfg;
    cfg.n = prm.n;
    cfg.max_steps = max_steps;
    cfg.seed = prm.seed;
    auto oracle = (rule == QuorumRule::kSigma)
                      ? test::sigma_oracle()
                      : std::unique_ptr<fd::Oracle>(
                            std::make_unique<fd::NullOracle>());
    sim::Simulator s(cfg, f, std::move(oracle), test::random_sched());
    History history;
    AbdRegisterModule<std::int64_t>::Options ropt;
    ropt.rule = rule;
    RegisterWorkloadModule::Options wopt;
    wopt.num_ops = 4;
    for (int i = 0; i < prm.n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      auto& r = host.add_module<AbdRegisterModule<std::int64_t>>("reg", ropt);
      host.add_module<RegisterWorkloadModule>("load", &r, &history, wopt);
    }
    const auto res = s.run();
    return {std::move(history), res.all_done};
  }
};

TEST_P(AbdSweep, LinearizableAndLive) {
  const auto& prm = GetParam();
  Rng rng(prm.seed * 31 + 7);
  sim::MaxCrashesEnvironment env(prm.n, prm.crashes);
  const auto f = env.sample(rng, 4000);
  const auto [history, all_done] = run_workload(f, prm.rule, 120000);
  EXPECT_TRUE(all_done) << "correct clients did not finish their workload";
  const auto r = reg::check_linearizable(history);
  EXPECT_TRUE(r.ok) << r.violation;
}

INSTANTIATE_TEST_SUITE_P(
    Sigma, AbdSweep,
    ::testing::Values(
        // Sigma works in ANY environment, including minority-correct.
        AbdParam{1, 4, 3, QuorumRule::kSigma},
        AbdParam{2, 4, 3, QuorumRule::kSigma},
        AbdParam{3, 5, 4, QuorumRule::kSigma},
        AbdParam{4, 5, 4, QuorumRule::kSigma},
        AbdParam{5, 3, 2, QuorumRule::kSigma},
        AbdParam{6, 6, 5, QuorumRule::kSigma},
        AbdParam{7, 2, 1, QuorumRule::kSigma},
        // Majority ABD in majority-correct environments.
        AbdParam{8, 5, 2, QuorumRule::kMajority},
        AbdParam{9, 4, 1, QuorumRule::kMajority},
        AbdParam{10, 3, 1, QuorumRule::kMajority}));

// Negative control for the "ex nihilo" boundary: with half the processes
// crashed, majority-ABD blocks forever (liveness lost, safety intact),
// while Sigma-ABD above kept going in the same pattern class.
TEST(AbdNegative, MajorityAbdBlocksWithoutMajority) {
  const int n = 4;
  sim::FailurePattern f(n);
  f.crash_at(0, 0);
  f.crash_at(1, 0);  // Two of four crash at the start.

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 30000;
  cfg.seed = 3;
  sim::Simulator s(cfg, f, std::make_unique<fd::NullOracle>(),
                   test::random_sched());
  History history;
  AbdRegisterModule<std::int64_t>::Options ropt;
  ropt.rule = QuorumRule::kMajority;
  RegisterWorkloadModule::Options wopt;
  wopt.num_ops = 1;
  std::vector<RegisterWorkloadModule*> loads;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& r = host.add_module<AbdRegisterModule<std::int64_t>>("reg", ropt);
    loads.push_back(
        &host.add_module<RegisterWorkloadModule>("load", &r, &history, wopt));
  }
  const auto res = s.run();
  EXPECT_FALSE(res.all_done);
  EXPECT_EQ(history.completed(), 0u);  // Nobody's op ever completed.
}

// Single-writer regression: a writer and a reader ping-ponging through
// many rounds always observe monotone values.
TEST(AbdRegression, MonotoneReadsAcrossRounds) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 200000;
  cfg.seed = 5;
  sim::Simulator s(cfg, test::pattern(n), test::sigma_oracle(),
                   test::random_sched());

  struct Driver : sim::Module {
    AbdRegisterModule<std::int64_t>* target = nullptr;
    bool writer = false;
    int rounds_left = 12;
    std::int64_t next = 1;
    std::int64_t last_read = 0;
    bool ok = true;
    void on_message(ProcessId, const sim::Payload&) override {}
    void on_tick() override {
      if (rounds_left == 0 || target->busy()) return;
      if (writer) {
        target->write(next, [this] {
          ++next;
          --rounds_left;
        });
      } else {
        target->read([this](const std::int64_t& v) {
          ok = ok && (v >= last_read);  // Monotone: no new-old inversion.
          last_read = v;
          --rounds_left;
        });
      }
    }
    [[nodiscard]] bool done() const override { return rounds_left == 0; }
  };

  std::vector<Driver*> drivers;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& r = host.add_module<AbdRegisterModule<std::int64_t>>("reg");
    auto& d = host.add_module<Driver>("driver");
    d.target = &r;
    d.writer = (i == 0);
    drivers.push_back(&d);
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  for (auto* d : drivers) EXPECT_TRUE(d->ok);
}

}  // namespace
}  // namespace wfd
