#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fd/oracle.h"
#include "sim/module.h"
#include "sim/network.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace wfd {
namespace {

using sim::Envelope;
using sim::Network;
using sim::Payload;

struct IntMsg final : Payload {
  explicit IntMsg(int x) : v(x) {}
  int v;
};

TEST(NetworkTest, SendAssignsIncreasingIds) {
  Network net;
  Envelope e;
  e.from = 0;
  e.to = 1;
  const auto a = net.send(e);
  const auto b = net.send(e);
  EXPECT_LT(a, b);
  EXPECT_EQ(net.size(), 2u);
  EXPECT_EQ(net.total_sent(), 2u);
}

TEST(NetworkTest, PendingForAndOldest) {
  Network net;
  Envelope to1;
  to1.to = 1;
  Envelope to2;
  to2.to = 2;
  const auto a = net.send(to1);
  net.send(to2);
  const auto c = net.send(to1);
  EXPECT_EQ(net.pending_for(1), (std::vector<std::uint64_t>{a, c}));
  EXPECT_EQ(net.oldest_for(1), a);
  EXPECT_TRUE(net.has_pending(2));
  EXPECT_FALSE(net.has_pending(3));
  EXPECT_EQ(net.oldest_for(3), 0u);
}

TEST(NetworkTest, TakeRemoves) {
  Network net;
  Envelope e;
  e.to = 1;
  const auto id = net.send(e);
  EXPECT_TRUE(net.contains(id));
  const Envelope out = net.take(id);
  EXPECT_EQ(out.id, id);
  EXPECT_FALSE(net.contains(id));
  EXPECT_EQ(net.size(), 0u);
}

// A process that counts its own steps and sends pings to its successor.
class PingProcess : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    started_at_ = ctx.now();
    ctx.send((ctx.self() + 1) % ctx.n(), sim::make_payload<IntMsg>(1));
  }
  void on_step(sim::Context& ctx, const Envelope* msg) override {
    ++steps_;
    if (msg != nullptr) {
      ++received_;
      receipt_time_sum_ += ctx.now();
      const auto* m = sim::payload_cast<IntMsg>(*msg->payload);
      ASSERT_NE(m, nullptr);
      if (m->v < 5) {
        ctx.send((ctx.self() + 1) % ctx.n(),
                 sim::make_payload<IntMsg>(m->v + 1));
      }
    }
  }
  int steps_ = 0;
  int received_ = 0;
  Time receipt_time_sum_ = 0;  ///< Schedule-order-sensitive fingerprint.
  Time started_at_ = 0;
};

TEST(SimulatorTest, EveryAliveProcessStepsAndMessagesFlow) {
  sim::SimConfig cfg;
  cfg.n = 4;
  cfg.max_steps = 2000;
  cfg.seed = 3;
  sim::Simulator s(cfg, test::pattern(4), std::make_unique<fd::NullOracle>(),
                   test::random_sched());
  std::vector<PingProcess*> procs;
  for (int i = 0; i < 4; ++i) procs.push_back(&s.add_process<PingProcess>());
  s.run();
  EXPECT_EQ(s.now(), 2000u);
  for (auto* p : procs) {
    EXPECT_GT(p->steps_, 100);
    EXPECT_GE(p->received_, 1);
  }
  EXPECT_GT(s.trace().stats().messages_delivered, 0u);
}

TEST(SimulatorTest, CrashedProcessStopsStepping) {
  sim::SimConfig cfg;
  cfg.n = 3;
  cfg.max_steps = 3000;
  sim::Simulator s(cfg, test::pattern(3, {{1, 50}}),
                   std::make_unique<fd::NullOracle>(), test::random_sched());
  std::vector<PingProcess*> procs;
  for (int i = 0; i < 3; ++i) procs.push_back(&s.add_process<PingProcess>());
  s.run();
  // Process 1 crashed at t=50: it can have taken at most 50 steps.
  EXPECT_LE(procs[1]->steps_, 50);
  EXPECT_GT(procs[0]->steps_, 500);
  EXPECT_GT(procs[2]->steps_, 500);
}

TEST(SimulatorTest, DeterministicReplay) {
  auto run_once = [](std::uint64_t seed) {
    sim::SimConfig cfg;
    cfg.n = 3;
    cfg.max_steps = 1000;
    cfg.seed = seed;
    sim::Simulator s(cfg, test::pattern(3, {{2, 300}}),
                     std::make_unique<fd::NullOracle>(),
                     test::random_sched());
    std::vector<PingProcess*> procs;
    for (int i = 0; i < 3; ++i)
      procs.push_back(&s.add_process<PingProcess>());
    s.run();
    std::vector<int> out;
    for (auto* p : procs) {
      out.push_back(p->steps_);
      out.push_back(p->received_);
      out.push_back(static_cast<int>(p->receipt_time_sum_));
    }
    out.push_back(static_cast<int>(s.trace().stats().messages_sent));
    return out;
  };
  EXPECT_EQ(run_once(99), run_once(99));
  EXPECT_NE(run_once(99), run_once(100));
}

TEST(SimulatorTest, RunForIsResumable) {
  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.max_steps = 1000;
  sim::Simulator s(cfg, test::pattern(2), std::make_unique<fd::NullOracle>(),
                   test::round_robin());
  s.add_process<PingProcess>();
  s.add_process<PingProcess>();
  s.run_for(100);
  EXPECT_EQ(s.now(), 100u);
  s.run_for(100);
  EXPECT_EQ(s.now(), 200u);
}

// --------------------------------------------------------------- schedulers

TEST(SchedulerTest, RoundRobinStepsEveryoneEqually) {
  sim::SimConfig cfg;
  cfg.n = 3;
  cfg.max_steps = 300;
  sim::Simulator s(cfg, test::pattern(3), std::make_unique<fd::NullOracle>(),
                   test::round_robin());
  std::vector<PingProcess*> procs;
  for (int i = 0; i < 3; ++i) procs.push_back(&s.add_process<PingProcess>());
  s.run();
  // on_start counts as a step too; each process took exactly 100 steps,
  // one of which was on_start (not counted in steps_).
  for (auto* p : procs) EXPECT_EQ(p->steps_, 99);
}

TEST(SchedulerTest, RandomFairDeliversOldMessages) {
  // With force_age, no message may stay pending much longer than
  // force_age while its recipient keeps stepping.
  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.max_steps = 5000;
  sim::RandomFairScheduler::Options opt;
  opt.force_age = 64;
  opt.lambda_prob = 0.9;  // Mostly lambda steps: stress the force rule.
  sim::Simulator s(cfg, test::pattern(2), std::make_unique<fd::NullOracle>(),
                   std::make_unique<sim::RandomFairScheduler>(opt));
  std::vector<PingProcess*> procs;
  for (int i = 0; i < 2; ++i) procs.push_back(&s.add_process<PingProcess>());
  s.run();
  // The initial pings (and the 4 follow-ups) must all have been
  // delivered despite the lambda-heavy schedule.
  EXPECT_GE(procs[0]->received_ + procs[1]->received_, 10);
}

TEST(SchedulerTest, FilteredWithholdsUntilDeadline) {
  // Block all messages to process 1 until t=1500, then release.
  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.max_steps = 4000;
  auto filter = [](const Envelope& e, Time now) {
    return e.to == 1 && now < 1500;
  };
  sim::Simulator s(
      cfg, test::pattern(2), std::make_unique<fd::NullOracle>(),
      std::make_unique<sim::FilteredScheduler>(test::round_robin(), filter));
  auto& p0 = s.add_process<PingProcess>();
  auto& p1 = s.add_process<PingProcess>();
  (void)p0;
  // Run until just before the deadline: nothing delivered to p1.
  while (s.now() < 1499 && s.step()) {
  }
  EXPECT_EQ(p1.received_, 0);
  s.run();
  EXPECT_GE(p1.received_, 1);
}

// ------------------------------------------------------------------ modules

struct TagMsg final : Payload {
  explicit TagMsg(std::string t) : tag(std::move(t)) {}
  std::string tag;
};

class EchoModule : public sim::Module {
 public:
  void on_start() override {
    if (self() == 0) broadcast(sim::make_payload<TagMsg>(name()));
  }
  void on_message(ProcessId, const Payload& p) override {
    const auto* m = sim::payload_cast<TagMsg>(p);
    ASSERT_NE(m, nullptr);
    // Routing must be exact: a module only sees its own messages.
    EXPECT_EQ(m->tag, name());
    ++got_;
  }
  int got_ = 0;
};

TEST(ModuleTest, RoutingByName) {
  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.max_steps = 500;
  sim::Simulator s(cfg, test::pattern(2), std::make_unique<fd::NullOracle>(),
                   test::round_robin());
  std::vector<EchoModule*> mods;
  for (int i = 0; i < 2; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    mods.push_back(&host.add_module<EchoModule>("alpha"));
    mods.push_back(&host.add_module<EchoModule>("beta"));
  }
  s.set_halt_on_done(false);  // Service modules never report work left.
  s.run();
  // Process 0 broadcast on both modules (to both processes incl. self).
  for (auto* m : mods) EXPECT_EQ(m->got_, 1);
}

class LateAdder : public sim::Module {
 public:
  void on_message(ProcessId, const Payload&) override {}
  void on_tick() override {
    if (now() > 100 && !added_) {
      added_ = true;
      late_ = &host().add_module<EchoModule>("late");
    }
  }
  bool added_ = false;
  EchoModule* late_ = nullptr;
};

TEST(ModuleTest, MessagesBufferedForLateModules) {
  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.max_steps = 1000;
  sim::Simulator s(cfg, test::pattern(2), std::make_unique<fd::NullOracle>(),
                   test::round_robin());
  // Process 0 has the "late" module from the start; its on_start
  // broadcast reaches process 1 long before process 1 creates its own
  // "late" module at t > 100.
  auto& h0 = s.add_process<sim::ModularProcess>();
  h0.add_module<EchoModule>("late");
  auto& h1 = s.add_process<sim::ModularProcess>();
  auto& adder = h1.add_module<LateAdder>("adder");
  s.set_halt_on_done(false);
  s.run();
  ASSERT_NE(adder.late_, nullptr);
  EXPECT_EQ(adder.late_->got_, 1);  // The buffered message was replayed.
}

TEST(ModuleTest, FindAndTypedLookup) {
  sim::SimConfig cfg;
  cfg.n = 1;
  cfg.max_steps = 10;
  sim::Simulator s(cfg, test::pattern(1), std::make_unique<fd::NullOracle>(),
                   test::round_robin());
  auto& host = s.add_process<sim::ModularProcess>();
  auto& echo = host.add_module<EchoModule>("x");
  EXPECT_EQ(host.find_module("x"), &echo);
  EXPECT_EQ(host.find_module("y"), nullptr);
  EXPECT_EQ(&host.module<EchoModule>("x"), &echo);
}

}  // namespace
}  // namespace wfd
