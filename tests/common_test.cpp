#include <gtest/gtest.h>

#include <set>

#include "common/process_set.h"
#include "common/rng.h"
#include "sim/environment.h"
#include "sim/failure_pattern.h"

namespace wfd {
namespace {

TEST(ProcessSetTest, EmptyAndFull) {
  ProcessSet e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.size(), 0);
  EXPECT_EQ(e.min(), kNoProcess);

  ProcessSet f = ProcessSet::full(5);
  EXPECT_EQ(f.size(), 5);
  for (ProcessId p = 0; p < 5; ++p) EXPECT_TRUE(f.contains(p));
  EXPECT_FALSE(f.contains(5));
  EXPECT_EQ(f.min(), 0);
}

TEST(ProcessSetTest, InsertEraseContains) {
  ProcessSet s;
  s.insert(3);
  s.insert(7);
  s.insert(3);
  EXPECT_EQ(s.size(), 2);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(4));
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.min(), 7);
}

TEST(ProcessSetTest, SetAlgebra) {
  ProcessSet a{0, 1, 2};
  ProcessSet b{2, 3};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_EQ(a.set_intersection(b), (ProcessSet{2}));
  EXPECT_EQ(a.set_union(b), (ProcessSet{0, 1, 2, 3}));
  EXPECT_EQ(a.set_difference(b), (ProcessSet{0, 1}));
  EXPECT_TRUE((ProcessSet{1, 2}).is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(b));
  ProcessSet disjoint{4, 5};
  EXPECT_FALSE(a.intersects(disjoint));
}

TEST(ProcessSetTest, MembersOrderedAndRoundTrip) {
  ProcessSet s{9, 1, 4};
  const auto m = s.members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], 1);
  EXPECT_EQ(m[1], 4);
  EXPECT_EQ(m[2], 9);
  EXPECT_EQ(ProcessSet::from_raw(s.raw()), s);
  EXPECT_EQ(s.to_string(), "{1,4,9}");
}

TEST(ProcessSetTest, FullSixtyFour) {
  ProcessSet f = ProcessSet::full(64);
  EXPECT_EQ(f.size(), 64);
  EXPECT_TRUE(f.contains(63));
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(13), 13u);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, Uniform01Bounds) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, SplitIndependent) {
  Rng a(5);
  Rng c = a.split();
  // The child stream should not mirror the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == c.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(FailurePatternTest, CrashFreeDefaults) {
  sim::FailurePattern f(4);
  EXPECT_TRUE(f.faulty().empty());
  EXPECT_EQ(f.correct(), ProcessSet::full(4));
  EXPECT_EQ(f.first_crash_time(), kNever);
  EXPECT_FALSE(f.failure_by(1'000'000));
  for (ProcessId p = 0; p < 4; ++p) EXPECT_TRUE(f.alive(p, 12345));
}

TEST(FailurePatternTest, CrashSemantics) {
  sim::FailurePattern f(3);
  f.crash_at(1, 100);
  EXPECT_TRUE(f.alive(1, 99));
  EXPECT_FALSE(f.alive(1, 100));
  EXPECT_FALSE(f.alive(1, 101));
  EXPECT_EQ(f.faulty(), ProcessSet{1});
  EXPECT_EQ(f.correct(), (ProcessSet{0, 2}));
  EXPECT_EQ(f.crashed_by(99), ProcessSet{});
  EXPECT_EQ(f.crashed_by(100), ProcessSet{1});
  EXPECT_EQ(f.first_crash_time(), 100u);
  EXPECT_FALSE(f.failure_by(99));
  EXPECT_TRUE(f.failure_by(100));
}

TEST(FailurePatternTest, MonotoneCrashedBy) {
  sim::FailurePattern f(5);
  f.crash_at(0, 10);
  f.crash_at(4, 50);
  // F(t) is monotone in t.
  ProcessSet prev;
  for (Time t = 0; t < 100; t += 5) {
    ProcessSet cur = f.crashed_by(t);
    EXPECT_TRUE(prev.is_subset_of(cur));
    prev = cur;
  }
}

TEST(EnvironmentTest, MaxCrashesAllowsAndSamples) {
  sim::MaxCrashesEnvironment env(5, 2);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto f = env.sample(rng, 1000);
    EXPECT_TRUE(env.allows(f));
    EXPECT_LE(f.faulty().size(), 2);
    for (ProcessId p : f.faulty().members()) {
      EXPECT_LT(f.crash_time(p), 1000u);
    }
  }
}

TEST(EnvironmentTest, MajorityCorrectBound) {
  sim::MajorityCorrectEnvironment env(5);
  EXPECT_EQ(env.max_crashes(), 2);
  sim::FailurePattern bad(5);
  bad.crash_at(0, 1);
  bad.crash_at(1, 1);
  bad.crash_at(2, 1);
  EXPECT_FALSE(env.allows(bad));
}

TEST(EnvironmentTest, AnyEnvironmentLeavesOneCorrect) {
  sim::AnyEnvironment env(4);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const auto f = env.sample(rng, 500);
    EXPECT_GE(f.correct().size(), 1);
  }
}

TEST(EnvironmentTest, CrashFreeSamplesNothing) {
  sim::CrashFreeEnvironment env(3);
  Rng rng(1);
  const auto f = env.sample(rng, 500);
  EXPECT_TRUE(f.faulty().empty());
}

TEST(EnvironmentTest, FixedPattern) {
  sim::FailurePattern f(3);
  f.crash_at(2, 7);
  sim::FixedPatternEnvironment env(f);
  Rng rng(1);
  EXPECT_EQ(env.sample(rng, 100), f);
  EXPECT_TRUE(env.allows(f));
  EXPECT_FALSE(env.allows(sim::FailurePattern(3)));
}

}  // namespace
}  // namespace wfd
