// The broadcast substrate: uniform reliable broadcast (detector-free)
// and atomic broadcast <-> consensus (the Chandra-Toueg equivalence the
// state-machine substrate of Corollary 3 rests on). Properties checked:
// URB validity/uniform agreement/integrity, total-order prefix
// consistency, and the round-trip consensus-from-abcast.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "broadcast/atomic_broadcast.h"
#include "broadcast/reliable_broadcast.h"
#include "consensus/consensus_from_abcast.h"
#include "test_util.h"

namespace wfd {
namespace {

using broadcast::AppMessage;
using broadcast::AtomicBroadcastModule;
using broadcast::UrbModule;

// ---------------------------------------------------------------- URB

class UrbSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UrbSweep, ValidityAgreementIntegrity) {
  const int n = 5;
  Rng rng(GetParam() * 313 + 9);
  sim::AnyEnvironment env(n);
  const auto f = env.sample(rng, 3000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 60000;
  cfg.seed = GetParam();
  sim::Simulator s(cfg, f, std::make_unique<fd::NullOracle>(),
                   test::random_sched());
  std::vector<UrbModule*> urbs;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& u = host.add_module<UrbModule>("urb");
    // Every process broadcasts three messages up front.
    u.urb_broadcast(i * 10 + 1);
    u.urb_broadcast(i * 10 + 2);
    u.urb_broadcast(i * 10 + 3);
    urbs.push_back(&u);
  }
  s.set_halt_on_done(false);
  s.run();

  // Integrity: no duplicates anywhere.
  for (auto* u : urbs) {
    auto log = u->delivered_log();
    std::sort(log.begin(), log.end());
    EXPECT_TRUE(std::adjacent_find(log.begin(), log.end()) == log.end());
  }
  // Validity + agreement: all correct processes deliver exactly the same
  // message set, which includes every correct process's messages.
  std::optional<std::vector<AppMessage>> reference;
  for (ProcessId p = 0; p < n; ++p) {
    if (!f.correct().contains(p)) continue;
    auto log = urbs[static_cast<std::size_t>(p)]->delivered_log();
    std::sort(log.begin(), log.end());
    for (ProcessId q : f.correct().members()) {
      int from_q = 0;
      for (const auto& m : log) {
        if (m.origin == q) ++from_q;
      }
      EXPECT_EQ(from_q, 3) << "p" << p << " misses messages from " << q;
    }
    if (reference.has_value()) {
      EXPECT_EQ(log, *reference) << "agreement violated at p" << p;
    } else {
      reference = log;
    }
  }
  // Uniformity: anything delivered anywhere (even by a now-crashed
  // process) is delivered by every correct process.
  for (ProcessId p = 0; p < n; ++p) {
    for (const auto& m : urbs[static_cast<std::size_t>(p)]->delivered_log()) {
      for (ProcessId q : f.correct().members()) {
        const auto& qlog =
            urbs[static_cast<std::size_t>(q)]->delivered_log();
        EXPECT_TRUE(std::find(qlog.begin(), qlog.end(), m) != qlog.end())
            << "message delivered at p" << p << " missing at correct p" << q;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UrbSweep, ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------ atomic broadcast

class AbcastSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AbcastSweep, TotalOrderPrefixConsistency) {
  const int n = 4;
  Rng rng(GetParam() * 331 + 11);
  sim::AnyEnvironment env(n);
  const auto f = env.sample(rng, 2000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = GetParam();
  sim::Simulator s(cfg, f, test::omega_sigma(), test::random_sched());
  std::vector<AtomicBroadcastModule*> abs;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& ab = host.add_module<AtomicBroadcastModule>("ab");
    ab.abcast(i * 100 + 1);
    ab.abcast(i * 100 + 2);
    abs.push_back(&ab);
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done) << "some correct process's log never drained";
  // Catch-up phase: a process may drain its own queue before the last
  // round's announce/decide messages reach it; let in-flight messages
  // land before comparing logs.
  s.set_halt_on_done(false);
  s.run_for(60000);

  // Total order: every pair of logs is prefix-consistent.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const auto& la = abs[static_cast<std::size_t>(a)]->delivered_log();
      const auto& lb = abs[static_cast<std::size_t>(b)]->delivered_log();
      const std::size_t common = std::min(la.size(), lb.size());
      for (std::size_t k = 0; k < common; ++k) {
        EXPECT_EQ(la[k], lb[k])
            << "order diverges at position " << k << " between p" << a
            << " and p" << b;
      }
    }
  }
  // Liveness: every correct sender's messages are in every correct log.
  for (ProcessId q : f.correct().members()) {
    for (ProcessId p : f.correct().members()) {
      const auto& log = abs[static_cast<std::size_t>(p)]->delivered_log();
      int from_q = 0;
      for (const auto& m : log) {
        if (m.origin == q) ++from_q;
      }
      EXPECT_EQ(from_q, 2);
    }
  }
  // Integrity: no duplicates.
  for (ProcessId p : f.correct().members()) {
    auto log = abs[static_cast<std::size_t>(p)]->delivered_log();
    std::sort(log.begin(), log.end());
    EXPECT_TRUE(std::adjacent_find(log.begin(), log.end()) == log.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AbcastSweep, ::testing::Values(1, 2, 3, 4));

// --------------------------------------------- consensus from abcast

TEST(ConsensusFromAbcastTest, EquivalenceRoundTrip) {
  const int n = 3;
  sim::FailurePattern f(n);
  f.crash_at(2, 1500);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = 17;
  sim::Simulator s(cfg, f, test::omega_sigma(), test::random_sched());
  std::vector<std::optional<std::int64_t>> decisions(n);
  const std::vector<std::int64_t> proposals = {11, 22, 33};
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<consensus::ConsensusFromAbcastModule>("cfa");
    c.propose(proposals[static_cast<std::size_t>(i)],
              [&decisions, i](const std::int64_t& d) {
                decisions[static_cast<std::size_t>(i)] = d;
              });
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  std::optional<std::int64_t> agreed;
  for (int i = 0; i < n; ++i) {
    if (f.correct().contains(i)) {
      ASSERT_TRUE(decisions[static_cast<std::size_t>(i)].has_value());
    }
    if (!decisions[static_cast<std::size_t>(i)].has_value()) continue;
    if (agreed.has_value()) {
      EXPECT_EQ(*decisions[static_cast<std::size_t>(i)], *agreed);
    } else {
      agreed = decisions[static_cast<std::size_t>(i)];
    }
  }
  ASSERT_TRUE(agreed.has_value());
  EXPECT_TRUE(std::find(proposals.begin(), proposals.end(), *agreed) !=
              proposals.end());
}

}  // namespace
}  // namespace wfd
