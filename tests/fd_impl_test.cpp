// Message-passing detector *implementations*: the join-quorum Sigma in
// majority-correct environments (the paper's "ex nihilo" remark),
// heartbeat Omega under partial synchrony, and heartbeat FS under
// synchrony — each checked against the formal definition via the
// recorded output history, plus negative controls at the impossibility
// boundaries.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fd/fs_heartbeat.h"
#include "fd/history_checker.h"
#include "fd/omega_heartbeat.h"
#include "fd/sigma_majority.h"
#include "sim/fd_sampler.h"
#include "test_util.h"

namespace wfd {
namespace {

class FdImplSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FdImplSweep, SigmaMajorityYieldsLegalSigmaHistory) {
  // n = 5, up to 2 crashes (majority correct): the join-quorum protocol
  // must emulate Sigma with no oracle at all.
  const int n = 5;
  Rng rng(GetParam());
  sim::MajorityCorrectEnvironment env(n);
  const auto f = env.sample(rng, 4000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 40000;
  cfg.seed = GetParam();
  sim::Simulator s(cfg, f, std::make_unique<fd::NullOracle>(),
                   test::random_sched());
  std::vector<sim::FdSampleRecord> samples;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& sm = host.add_module<fd::SigmaMajorityModule>("sigma");
    host.add_module<sim::FdSamplerModule>("sampler", &sm, &samples,
                                          /*period=*/16);
  }
  s.set_halt_on_done(false);
  s.run();
  const auto r = fd::check_sigma_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(FdImplSweep, OmegaHeartbeatConvergesUnderPartialSynchrony) {
  const int n = 4;
  sim::FailurePattern f(n);
  // One crash before GST, one after.
  f.crash_at(0, 500);
  f.crash_at(3, 12000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 120000;
  cfg.seed = GetParam();
  sim::Simulator s(cfg, f, std::make_unique<fd::NullOracle>(),
                   std::make_unique<sim::PartialSynchronyScheduler>(8000));
  std::vector<sim::FdSampleRecord> samples;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& om = host.add_module<fd::OmegaHeartbeatModule>("omega");
    host.add_module<sim::FdSamplerModule>("sampler", &om, &samples,
                                          /*period=*/32);
  }
  s.set_halt_on_done(false);
  s.run();
  const auto r = fd::check_omega_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(FdImplSweep, FsHeartbeatIsAccurateAndCompleteUnderSynchrony) {
  const int n = 3;
  sim::FailurePattern f(n);
  f.crash_at(1, 3000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 60000;
  cfg.seed = GetParam();
  // Round-robin from time 0 = synchronous run: the safe timeout holds.
  sim::Simulator s(cfg, f, std::make_unique<fd::NullOracle>(),
                   test::round_robin());
  std::vector<sim::FdSampleRecord> samples;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& fs = host.add_module<fd::FsHeartbeatModule>("fs");
    host.add_module<sim::FdSamplerModule>("sampler", &fs, &samples,
                                          /*period=*/32);
  }
  s.set_halt_on_done(false);
  s.run();
  const auto r = fd::check_fs_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(FdImplSweep, FsHeartbeatStaysGreenWhenCrashFree) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 30000;
  cfg.seed = GetParam();
  sim::Simulator s(cfg, test::pattern(n), std::make_unique<fd::NullOracle>(),
                   test::round_robin());
  std::vector<fd::FsHeartbeatModule*> fss;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    fss.push_back(&host.add_module<fd::FsHeartbeatModule>("fs"));
  }
  s.set_halt_on_done(false);
  s.run();
  for (auto* fs : fss) EXPECT_FALSE(fs->red());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdImplSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ----------------------------------------------------- negative controls

// FS accuracy is impossible in asynchronous runs: with an aggressive
// timeout and an adversarial (but legal, merely slow) schedule, the
// heartbeat FS turns red although nobody crashed — the exact violation
// that makes FS non-implementable without synchrony.
TEST(FdImplNegative, FsHeartbeatViolatesAccuracyUnderAsynchrony) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 60000;
  cfg.seed = 7;
  // Withhold all of process 2's outgoing messages until t = 30000.
  auto filter = [](const sim::Envelope& e, Time now) {
    return e.from == 2 && now < 30000;
  };
  sim::Simulator s(
      cfg, test::pattern(n), std::make_unique<fd::NullOracle>(),
      std::make_unique<sim::FilteredScheduler>(test::round_robin(), filter));
  fd::FsHeartbeatModule::Options aggressive;
  aggressive.timeout = 200;  // Far below the safe bound.
  std::vector<fd::FsHeartbeatModule*> fss;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    fss.push_back(&host.add_module<fd::FsHeartbeatModule>("fs", aggressive));
  }
  s.set_halt_on_done(false);
  s.run();
  // Nobody crashed, yet the signal went red: accuracy violated.
  EXPECT_TRUE(fss[0]->red() || fss[1]->red());
}

// The join-quorum Sigma emulation is only correct with a correct
// majority: if a majority crashes, fresh quorums can never again be
// formed from live responders, so completeness fails (the module keeps
// exposing its last — now stale — quorum containing crashed processes).
TEST(FdImplNegative, SigmaMajorityLosesCompletenessWithoutMajority) {
  const int n = 4;
  sim::FailurePattern f(n);
  f.crash_at(0, 2000);
  f.crash_at(1, 2000);
  f.crash_at(2, 2000);  // Only process 3 survives.

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 40000;
  cfg.seed = 11;
  sim::Simulator s(cfg, f, std::make_unique<fd::NullOracle>(),
                   test::random_sched());
  std::vector<fd::SigmaMajorityModule*> sms;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    sms.push_back(&host.add_module<fd::SigmaMajorityModule>("sigma"));
  }
  s.set_halt_on_done(false);
  s.run();
  // The survivor's current quorum still contains a crashed process.
  EXPECT_TRUE(sms[3]->current_quorum().intersects(f.faulty()));
}

}  // namespace
}  // namespace wfd
