// Corollary 2/4: consensus from (Omega, Sigma) in any environment.
// Checks Termination, Uniform Agreement and Validity across seeds,
// system sizes, crash counts and schedulers — plus the register-based
// consensus of [19] and the binary-to-multivalued transformation of [20].
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "consensus/multivalued.h"
#include "consensus/omega_sigma_consensus.h"
#include "consensus/register_consensus.h"
#include "test_util.h"

namespace wfd {
namespace {

using consensus::MultivaluedFromBinaryModule;
using consensus::OmegaSigmaConsensusModule;
using consensus::RegisterConsensusModule;

struct ConsParam {
  std::uint64_t seed;
  int n;
  int crashes;
};

/// Shared assertion: given per-process recorded decisions and proposals,
/// check Uniform Agreement and Validity; require every correct process
/// decided.
void check_consensus_outcome(const std::vector<std::optional<int>>& decisions,
                             const std::vector<int>& proposals,
                             const sim::FailurePattern& f) {
  std::optional<int> agreed;
  for (std::size_t p = 0; p < decisions.size(); ++p) {
    if (f.correct().contains(static_cast<ProcessId>(p))) {
      ASSERT_TRUE(decisions[p].has_value())
          << "correct process " << p << " did not decide";
    }
    if (decisions[p].has_value()) {
      if (agreed.has_value()) {
        EXPECT_EQ(*decisions[p], *agreed) << "agreement violated";
      } else {
        agreed = decisions[p];
      }
    }
  }
  ASSERT_TRUE(agreed.has_value());
  bool proposed = false;
  for (int v : proposals) proposed = proposed || (v == *agreed);
  EXPECT_TRUE(proposed) << "validity violated: " << *agreed
                        << " was never proposed";
}

class ConsensusSweep : public ::testing::TestWithParam<ConsParam> {};

TEST_P(ConsensusSweep, OmegaSigmaConsensusDecides) {
  const auto& prm = GetParam();
  Rng rng(prm.seed * 101 + 3);
  sim::MaxCrashesEnvironment env(prm.n, prm.crashes);
  const auto f = env.sample(rng, 3000);

  sim::SimConfig cfg;
  cfg.n = prm.n;
  cfg.max_steps = 150000;
  cfg.seed = prm.seed;
  sim::Simulator s(cfg, f, test::omega_sigma(), test::random_sched());
  std::vector<std::optional<int>> decisions(prm.n);
  std::vector<int> proposals;
  for (int i = 0; i < prm.n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<OmegaSigmaConsensusModule<int>>("cons");
    const int v = static_cast<int>(rng.below(2));
    proposals.push_back(v);
    c.propose(v, [&decisions, i](const int& d) { decisions[static_cast<std::size_t>(i)] = d; });
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  check_consensus_outcome(decisions, proposals, f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConsensusSweep,
    ::testing::Values(ConsParam{1, 3, 0}, ConsParam{2, 3, 2},
                      ConsParam{3, 4, 3}, ConsParam{4, 5, 4},
                      ConsParam{5, 5, 2}, ConsParam{6, 7, 6},
                      ConsParam{7, 2, 1}, ConsParam{8, 6, 5},
                      ConsParam{9, 4, 2}, ConsParam{10, 5, 3},
                      ConsParam{11, 3, 1}, ConsParam{12, 8, 7}));

// Minority-correct stress: exactly one survivor. Omega alone could not
// decide safely here; with Sigma the survivor still terminates because
// the crashes leave a (single-member) legal quorum history.
TEST(ConsensusEdge, SingleSurvivorDecides) {
  const int n = 4;
  sim::FailurePattern f(n);
  f.crash_at(0, 200);
  f.crash_at(1, 400);
  f.crash_at(2, 600);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 150000;
  cfg.seed = 13;
  sim::Simulator s(cfg, f, test::omega_sigma(), test::random_sched());
  std::vector<std::optional<int>> decisions(n);
  std::vector<int> proposals = {1, 0, 1, 0};
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<OmegaSigmaConsensusModule<int>>("cons");
    c.propose(proposals[static_cast<std::size_t>(i)],
              [&decisions, i](const int& d) { decisions[static_cast<std::size_t>(i)] = d; });
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  check_consensus_outcome(decisions, proposals, f);
}

// All-same-proposal must decide that value (follows from validity, but
// this is the common-case fast path worth pinning).
TEST(ConsensusEdge, UnanimousProposalWins) {
  const int n = 5;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 60000;
  cfg.seed = 17;
  sim::Simulator s(cfg, test::pattern(n), test::omega_sigma(),
                   test::random_sched());
  std::vector<std::optional<int>> decisions(n);
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<OmegaSigmaConsensusModule<int>>("cons");
    c.propose(1, [&decisions, i](const int& d) { decisions[static_cast<std::size_t>(i)] = d; });
  }
  s.run();
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(decisions[static_cast<std::size_t>(i)].has_value());
    EXPECT_EQ(*decisions[static_cast<std::size_t>(i)], 1);
  }
}

// Adversarial: isolate the eventual leader's messages until late, then
// release. Safety must hold throughout; termination after the partition
// heals.
TEST(ConsensusEdge, LeaderIsolationDelaysButNeverBreaksAgreement) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 200000;
  cfg.seed = 19;
  fd::OmegaOracle::Options oo;
  oo.fixed_leader = 0;
  oo.max_stabilization = 100;
  fd::SigmaOracle::Options so;
  so.max_stabilization = 100;
  auto oracle = std::make_unique<fd::TupleOracle>(
      std::make_unique<fd::OmegaOracle>(oo),
      std::make_unique<fd::SigmaOracle>(so));
  // Block every message from the leader until t = 50000.
  auto filter = [](const sim::Envelope& e, Time now) {
    return e.from == 0 && now < 50000;
  };
  sim::Simulator s(
      cfg, test::pattern(n), std::move(oracle),
      std::make_unique<sim::FilteredScheduler>(test::random_sched(), filter));
  std::vector<std::optional<int>> decisions(n);
  std::vector<int> proposals = {0, 1, 1};
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<OmegaSigmaConsensusModule<int>>("cons");
    c.propose(proposals[static_cast<std::size_t>(i)],
              [&decisions, i](const int& d) { decisions[static_cast<std::size_t>(i)] = d; });
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  check_consensus_outcome(decisions, proposals, test::pattern(n));
}

// ------------------------------------------------- register-based consensus

TEST(RegisterConsensusTest, DecidesOverSigmaBackedRegisters) {
  const int n = 3;
  sim::FailurePattern f(n);
  f.crash_at(2, 5000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = 23;
  sim::Simulator s(cfg, f, test::omega_sigma(), test::random_sched());
  std::vector<std::optional<int>> decisions(n);
  std::vector<int> proposals = {0, 1, 0};
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    std::vector<RegisterConsensusModule<int>::Register*> regs;
    for (int j = 0; j < n; ++j) {
      regs.push_back(
          &host.add_module<RegisterConsensusModule<int>::Register>(
              "breg/" + std::to_string(j)));
    }
    auto& c = host.add_module<RegisterConsensusModule<int>>("rcons", regs);
    c.propose(proposals[static_cast<std::size_t>(i)],
              [&decisions, i](const int& d) { decisions[static_cast<std::size_t>(i)] = d; });
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  check_consensus_outcome(decisions, proposals, f);
}

// ------------------------------------------------ binary -> multivalued

TEST(MultivaluedTest, DecidesAProposedValue) {
  const int n = 4;
  sim::FailurePattern f(n);
  f.crash_at(1, 1500);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = 29;
  sim::Simulator s(cfg, f, test::omega_sigma(), test::random_sched());
  std::vector<std::optional<int>> decisions(n);
  std::vector<int> proposals = {100, 200, 300, 400};
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<MultivaluedFromBinaryModule<int>>("mv");
    c.propose(proposals[static_cast<std::size_t>(i)],
              [&decisions, i](const int& d) { decisions[static_cast<std::size_t>(i)] = d; });
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  check_consensus_outcome(decisions, proposals, f);
}

}  // namespace
}  // namespace wfd
