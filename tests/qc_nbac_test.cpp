// Theorems 5 and 8 and Corollary 10: QC from Psi (Fig. 2), NBAC from
// QC + FS (Fig. 4), QC from NBAC (Fig. 5), and FS from NBAC — with every
// specification clause checked against the run's failure pattern and the
// actual votes.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "fd/history_checker.h"
#include "nbac/fs_from_nbac.h"
#include "nbac/nbac_from_qc.h"
#include "qc/psi_qc.h"
#include "qc/qc_from_nbac.h"
#include "sim/fd_sampler.h"
#include "test_util.h"

namespace wfd {
namespace {

using nbac::Decision;
using nbac::FsFromNbacModule;
using nbac::NbacFromQcModule;
using nbac::Vote;
using qc::PsiQcModule;
using qc::QcFromNbacModule;
using qc::QcResult;

// ------------------------------------------------------------- QC from Psi

struct QcParam {
  std::uint64_t seed;
  int crashes;
  fd::PsiOracle::Branch branch;
};

class PsiQcSweep : public ::testing::TestWithParam<QcParam> {};

TEST_P(PsiQcSweep, SatisfiesQcSpec) {
  const auto& prm = GetParam();
  const int n = 4;
  Rng rng(prm.seed * 11 + 1);
  sim::MaxCrashesEnvironment env(n, prm.crashes);
  auto f = env.sample(rng, 2000);
  if (prm.branch == fd::PsiOracle::Branch::kFs && f.faulty().empty()) {
    f.crash_at(0, 500);  // The FS branch requires a failure.
  }

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 120000;
  cfg.seed = prm.seed;
  sim::Simulator s(cfg, f, test::psi_oracle(prm.branch), test::random_sched());
  std::vector<std::optional<QcResult<int>>> results(n);
  std::vector<int> proposals;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& q = host.add_module<PsiQcModule<int>>("qc");
    const int v = static_cast<int>(rng.below(2));
    proposals.push_back(v);
    q.propose(v, [&results, i](const QcResult<int>& r) {
      results[static_cast<std::size_t>(i)] = r;
    });
  }
  const auto res = s.run();

  // Termination for correct processes.
  EXPECT_TRUE(res.all_done);
  std::optional<QcResult<int>> agreed;
  for (int i = 0; i < n; ++i) {
    if (f.correct().contains(i)) {
      ASSERT_TRUE(results[static_cast<std::size_t>(i)].has_value());
    }
    if (!results[static_cast<std::size_t>(i)].has_value()) continue;
    const auto& r = *results[static_cast<std::size_t>(i)];
    // Uniform agreement.
    if (agreed.has_value()) {
      EXPECT_EQ(r, *agreed);
    } else {
      agreed = r;
    }
    // Validity (a): a non-Q decision was proposed.
    if (!r.quit) {
      bool proposed = false;
      for (int v : proposals) proposed = proposed || (v == r.value);
      EXPECT_TRUE(proposed);
    } else {
      // Validity (b): Q only if a failure occurred.
      EXPECT_FALSE(f.faulty().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PsiQcSweep,
    ::testing::Values(
        QcParam{1, 0, fd::PsiOracle::Branch::kOmegaSigma},
        QcParam{2, 2, fd::PsiOracle::Branch::kOmegaSigma},
        QcParam{3, 3, fd::PsiOracle::Branch::kOmegaSigma},
        QcParam{4, 1, fd::PsiOracle::Branch::kFs},
        QcParam{5, 3, fd::PsiOracle::Branch::kFs},
        QcParam{6, 2, fd::PsiOracle::Branch::kAuto},
        QcParam{7, 3, fd::PsiOracle::Branch::kAuto},
        QcParam{8, 0, fd::PsiOracle::Branch::kAuto},
        QcParam{9, 3, fd::PsiOracle::Branch::kAuto}));

// ------------------------------------------------------- NBAC from QC + FS

struct NbacOutcome {
  std::vector<std::optional<Decision>> decisions;
  bool all_done = false;
};

NbacOutcome run_nbac(const sim::FailurePattern& f,
                     const std::vector<Vote>& votes, std::uint64_t seed,
                     fd::PsiOracle::Branch branch) {
  const int n = f.n();
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 150000;
  cfg.seed = seed;
  sim::Simulator s(cfg, f, test::psi_fs(branch), test::random_sched());
  NbacOutcome out;
  out.decisions.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& q = host.add_module<PsiQcModule<int>>("qc");
    auto& nb = host.add_module<NbacFromQcModule>("nbac", &q);
    nb.vote(votes[static_cast<std::size_t>(i)],
            [&out, i](Decision d) { out.decisions[static_cast<std::size_t>(i)] = d; });
  }
  out.all_done = s.run().all_done;
  return out;
}

void check_nbac_spec(const NbacOutcome& out, const sim::FailurePattern& f,
                     const std::vector<Vote>& votes) {
  std::optional<Decision> agreed;
  bool all_yes = true;
  for (Vote v : votes) all_yes = all_yes && (v == Vote::kYes);
  for (std::size_t i = 0; i < out.decisions.size(); ++i) {
    if (f.correct().contains(static_cast<ProcessId>(i))) {
      ASSERT_TRUE(out.decisions[i].has_value())
          << "correct process " << i << " did not decide";
    }
    if (!out.decisions[i].has_value()) continue;
    const Decision d = *out.decisions[i];
    if (agreed.has_value()) {
      EXPECT_EQ(d, *agreed) << "agreement violated";
    } else {
      agreed = d;
    }
    if (d == Decision::kCommit) {
      // Validity (a): Commit only if everyone voted Yes.
      EXPECT_TRUE(all_yes);
    } else {
      // Validity (b): Abort only on a No vote or a failure.
      EXPECT_TRUE(!all_yes || !f.faulty().empty());
    }
  }
}

TEST(NbacTest, AllYesNoFailureCommits) {
  const int n = 4;
  const std::vector<Vote> votes(n, Vote::kYes);
  const auto f = test::pattern(n);
  const auto out =
      run_nbac(f, votes, 31, fd::PsiOracle::Branch::kOmegaSigma);
  EXPECT_TRUE(out.all_done);
  check_nbac_spec(out, f, votes);
  for (const auto& d : out.decisions) {
    ASSERT_TRUE(d.has_value());
    // The paper's non-triviality clause: all Yes and no failure MUST
    // commit.
    EXPECT_EQ(*d, Decision::kCommit);
  }
}

TEST(NbacTest, SingleNoVoteAborts) {
  const int n = 4;
  std::vector<Vote> votes(n, Vote::kYes);
  votes[2] = Vote::kNo;
  const auto f = test::pattern(n);
  const auto out =
      run_nbac(f, votes, 37, fd::PsiOracle::Branch::kOmegaSigma);
  EXPECT_TRUE(out.all_done);
  check_nbac_spec(out, f, votes);
  for (const auto& d : out.decisions) {
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, Decision::kAbort);
  }
}

TEST(NbacTest, CrashBeforeVotingAborts) {
  const int n = 4;
  const std::vector<Vote> votes(n, Vote::kYes);
  sim::FailurePattern f(n);
  f.crash_at(1, 0);  // Crashes before it can even announce its vote.
  const auto out = run_nbac(f, votes, 41, fd::PsiOracle::Branch::kFs);
  EXPECT_TRUE(out.all_done);
  check_nbac_spec(out, f, votes);
  for (std::size_t i = 0; i < out.decisions.size(); ++i) {
    if (!out.decisions[i].has_value()) continue;
    EXPECT_EQ(*out.decisions[i], Decision::kAbort);
  }
}

TEST(NbacTest, CrashWithOmegaSigmaBranchStillSatisfiesSpec) {
  // A failure occurs but Psi still chooses the (Omega, Sigma) branch:
  // the QC result is a real bit, and either Commit or Abort is legal
  // depending on vote delivery — the spec clauses must hold regardless.
  const int n = 4;
  const std::vector<Vote> votes(n, Vote::kYes);
  sim::FailurePattern f(n);
  f.crash_at(3, 800);
  const auto out =
      run_nbac(f, votes, 43, fd::PsiOracle::Branch::kOmegaSigma);
  EXPECT_TRUE(out.all_done);
  check_nbac_spec(out, f, votes);
}

class NbacSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NbacSweep, SpecHoldsUnderRandomVotesAndCrashes) {
  const int n = 5;
  Rng rng(GetParam() * 53 + 5);
  sim::AnyEnvironment env(n);
  const auto f = env.sample(rng, 2000);
  std::vector<Vote> votes;
  for (int i = 0; i < n; ++i) {
    votes.push_back(rng.chance(4, 5) ? Vote::kYes : Vote::kNo);
  }
  const auto out = run_nbac(f, votes, GetParam(),
                            fd::PsiOracle::Branch::kAuto);
  EXPECT_TRUE(out.all_done);
  check_nbac_spec(out, f, votes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NbacSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ----------------------------------------------------------- QC from NBAC

TEST(QcFromNbacTest, CommitPathReturnsSmallestProposal) {
  const int n = 3;
  const auto f = test::pattern(n);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 150000;
  cfg.seed = 47;
  sim::Simulator s(cfg, f,
                   test::psi_fs(fd::PsiOracle::Branch::kOmegaSigma),
                   test::random_sched());
  std::vector<std::optional<QcResult<int>>> results(n);
  const std::vector<int> proposals = {5, 3, 9};
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& inner_qc = host.add_module<PsiQcModule<int>>("iqc");
    auto& nb = host.add_module<NbacFromQcModule>("nbac", &inner_qc);
    auto& q = host.add_module<QcFromNbacModule<int>>("qc", &nb);
    q.propose(proposals[static_cast<std::size_t>(i)],
              [&results, i](const QcResult<int>& r) {
                results[static_cast<std::size_t>(i)] = r;
              });
  }
  EXPECT_TRUE(s.run().all_done);
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(results[static_cast<std::size_t>(i)].has_value());
    EXPECT_FALSE(results[static_cast<std::size_t>(i)]->quit);
    EXPECT_EQ(results[static_cast<std::size_t>(i)]->value, 3);
  }
}

TEST(QcFromNbacTest, AbortPathQuitsOnlyWithRealFailure) {
  const int n = 3;
  sim::FailurePattern f(n);
  f.crash_at(0, 0);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 150000;
  cfg.seed = 53;
  sim::Simulator s(cfg, f, test::psi_fs(fd::PsiOracle::Branch::kFs),
                   test::random_sched());
  std::vector<std::optional<QcResult<int>>> results(n);
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& inner_qc = host.add_module<PsiQcModule<int>>("iqc");
    auto& nb = host.add_module<NbacFromQcModule>("nbac", &inner_qc);
    auto& q = host.add_module<QcFromNbacModule<int>>("qc", &nb);
    q.propose(i, [&results, i](const QcResult<int>& r) {
      results[static_cast<std::size_t>(i)] = r;
    });
  }
  EXPECT_TRUE(s.run().all_done);
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(results[static_cast<std::size_t>(i)].has_value());
    EXPECT_TRUE(results[static_cast<std::size_t>(i)]->quit);
  }
}

// ------------------------------------------------------------ FS from NBAC

TEST(FsFromNbacTest, EmulatedFsHistoryIsLegal) {
  const int n = 3;
  sim::FailurePattern f(n);
  f.crash_at(2, 20000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = 59;
  sim::Simulator s(cfg, f, test::psi_fs(fd::PsiOracle::Branch::kAuto, 2000),
                   test::random_sched());
  std::vector<sim::FdSampleRecord> samples;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto factory = [&host](const std::string& prefix) -> nbac::NbacApi& {
      auto& q = host.add_module<PsiQcModule<int>>(prefix + "/qc");
      return host.add_module<NbacFromQcModule>(prefix + "/nbac", &q);
    };
    auto& fs = host.add_module<FsFromNbacModule>("fs", factory);
    host.add_module<sim::FdSamplerModule>("sampler", &fs, &samples,
                                          /*period=*/64);
  }
  s.set_halt_on_done(false);
  s.run();
  const auto r = fd::check_fs_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(FsFromNbacTest, StaysGreenWhenCrashFree) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 200000;
  cfg.seed = 61;
  sim::Simulator s(
      cfg, test::pattern(n),
      test::psi_fs(fd::PsiOracle::Branch::kOmegaSigma, 500),
      test::random_sched());
  std::vector<FsFromNbacModule*> fss;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto factory = [&host](const std::string& prefix) -> nbac::NbacApi& {
      auto& q = host.add_module<PsiQcModule<int>>(prefix + "/qc");
      return host.add_module<NbacFromQcModule>(prefix + "/nbac", &q);
    };
    fss.push_back(&host.add_module<FsFromNbacModule>("fs", factory));
  }
  s.set_halt_on_done(false);
  s.run();
  for (auto* fs : fss) {
    EXPECT_FALSE(fs->red());
    EXPECT_GE(fs->instances_launched(), 2u);  // It really kept running.
  }
}

}  // namespace
}  // namespace wfd

namespace wfd {
namespace {

// Section 5's closing remark: QC generalises to arbitrary value sets.
// PsiQcModule is value-generic; check the multivalued instance decides
// one of the proposed (distinct) values.
TEST(MultivaluedQcTest, DecidesOneProposedValue) {
  const int n = 4;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 150000;
  cfg.seed = 67;
  sim::Simulator s(cfg, test::pattern(n),
                   test::psi_oracle(fd::PsiOracle::Branch::kOmegaSigma),
                   test::random_sched());
  std::vector<std::optional<QcResult<std::int64_t>>> results(n);
  std::vector<std::int64_t> proposals = {1000, 2000, 3000, 4000};
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& q = host.add_module<qc::PsiQcModule<std::int64_t>>("qc");
    q.propose(proposals[static_cast<std::size_t>(i)],
              [&results, i](const QcResult<std::int64_t>& r) {
                results[static_cast<std::size_t>(i)] = r;
              });
  }
  EXPECT_TRUE(s.run().all_done);
  std::optional<std::int64_t> agreed;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(results[static_cast<std::size_t>(i)].has_value());
    EXPECT_FALSE(results[static_cast<std::size_t>(i)]->quit);
    const auto v = results[static_cast<std::size_t>(i)]->value;
    if (agreed.has_value()) {
      EXPECT_EQ(v, *agreed);
    } else {
      agreed = v;
    }
  }
  EXPECT_TRUE(std::find(proposals.begin(), proposals.end(), *agreed) !=
              proposals.end());
}

}  // namespace
}  // namespace wfd
