// Boundary conditions across the stack: single-process systems, stamp
// ordering, concurrent multi-writer races, callback-before-propose
// orderings, and tiny-quorum degenerate cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "consensus/omega_sigma_consensus.h"
#include "nbac/nbac_from_qc.h"
#include "qc/psi_qc.h"
#include "reg/abd_register.h"
#include "reg/linearizability.h"
#include "reg/register_client.h"
#include "test_util.h"

namespace wfd {
namespace {

// ------------------------------------------------------------------ stamps

TEST(StampTest, LexicographicOrder) {
  reg::Stamp a{1, 0};
  reg::Stamp b{1, 1};
  reg::Stamp c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (reg::Stamp{1, 0}));
  // Counter dominates writer id.
  EXPECT_LT((reg::Stamp{1, 63}), (reg::Stamp{2, 0}));
}

// ------------------------------------------------------------- n = 1 cases

TEST(SingleProcessTest, ConsensusDecidesOwnProposal) {
  sim::SimConfig cfg;
  cfg.n = 1;
  cfg.max_steps = 5000;
  cfg.seed = 1;
  sim::Simulator s(cfg, test::pattern(1), test::omega_sigma(64),
                   test::round_robin());
  std::optional<int> decision;
  auto& host = s.add_process<sim::ModularProcess>();
  auto& c = host.add_module<consensus::OmegaSigmaConsensusModule<int>>("c");
  c.propose(7, [&decision](const int& d) { decision = d; });
  EXPECT_TRUE(s.run().all_done);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, 7);
}

TEST(SingleProcessTest, RegisterReadsOwnWrites) {
  sim::SimConfig cfg;
  cfg.n = 1;
  cfg.max_steps = 5000;
  cfg.seed = 2;
  sim::Simulator s(cfg, test::pattern(1), test::sigma_oracle(64),
                   test::round_robin());
  auto& host = s.add_process<sim::ModularProcess>();
  auto& r = host.add_module<reg::AbdRegisterModule<std::int64_t>>("reg");
  std::optional<std::int64_t> got;
  r.write(99, [&r, &got] {
    r.read([&got](const std::int64_t& v) { got = v; });
  });
  s.set_halt_on_done(false);
  s.run_for(5000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 99);
}

TEST(SingleProcessTest, QcOmegaSigmaBranch) {
  sim::SimConfig cfg;
  cfg.n = 1;
  cfg.max_steps = 5000;
  cfg.seed = 3;
  sim::Simulator s(cfg, test::pattern(1),
                   test::psi_oracle(fd::PsiOracle::Branch::kOmegaSigma, 64,
                                    64),
                   test::round_robin());
  std::optional<qc::QcResult<int>> result;
  auto& host = s.add_process<sim::ModularProcess>();
  auto& q = host.add_module<qc::PsiQcModule<int>>("qc");
  q.propose(5, [&result](const qc::QcResult<int>& r) { result = r; });
  EXPECT_TRUE(s.run().all_done);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->quit);
  EXPECT_EQ(result->value, 5);
}

// -------------------------------------------------- concurrent multi-writer

TEST(MultiWriterTest, ConcurrentWritersConvergeToOneFinalValue) {
  // All n processes write different values concurrently, then all read:
  // atomicity forces a single winner for the final state.
  const int n = 4;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 300000;
  cfg.seed = 5;
  sim::Simulator s(cfg, test::pattern(n), test::sigma_oracle(200),
                   test::random_sched());

  struct WriteThenRead : sim::Module {
    reg::AbdRegisterModule<std::int64_t>* target = nullptr;
    std::optional<std::int64_t> final_read;
    bool started = false;
    void on_message(ProcessId, const sim::Payload&) override {}
    void on_tick() override {
      if (started) return;
      started = true;
      target->write(1000 + self(), [this] {
        target->read([this](const std::int64_t& v) { final_read = v; });
      });
    }
    [[nodiscard]] bool done() const override {
      return final_read.has_value();
    }
  };

  std::vector<WriteThenRead*> drivers;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& r = host.add_module<reg::AbdRegisterModule<std::int64_t>>("reg");
    auto& d = host.add_module<WriteThenRead>("driver");
    d.target = &r;
    drivers.push_back(&d);
  }
  EXPECT_TRUE(s.run().all_done);
  // Everyone read SOME written value; reads after all writes complete
  // must agree — check via a fresh quiescent read phase: the replica
  // states have converged to one (stamp, value).
  s.set_halt_on_done(false);
  s.run_for(20000);
  for (auto* d : drivers) {
    ASSERT_TRUE(d->final_read.has_value());
    EXPECT_GE(*d->final_read, 1000);
    EXPECT_LT(*d->final_read, 1000 + n);
  }
}

// --------------------------------------------- late proposer, early decide

TEST(LateProposerTest, DecisionBeforeProposeStillDelivers) {
  // Processes 1..3 propose immediately; process 0 proposes only after
  // t=20000 — by then the others have long decided. The late propose
  // must still deliver the (already known) decision via its callback.
  const int n = 4;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 200000;
  cfg.seed = 7;
  sim::Simulator s(cfg, test::pattern(n), test::omega_sigma(100),
                   test::random_sched());

  struct LateProposer : sim::Module {
    consensus::OmegaSigmaConsensusModule<int>* target = nullptr;
    std::optional<int> decision;
    Time ticks = 0;
    bool proposed = false;
    void on_message(ProcessId, const sim::Payload&) override {}
    void on_tick() override {
      if (proposed || ++ticks < 5000) return;
      proposed = true;
      target->propose(0, [this](const int& d) { decision = d; });
    }
    [[nodiscard]] bool done() const override {
      return decision.has_value();
    }
  };

  std::vector<std::optional<int>> decisions(n);
  LateProposer* late = nullptr;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c =
        host.add_module<consensus::OmegaSigmaConsensusModule<int>>("cons");
    if (i == 0) {
      auto& lp = host.add_module<LateProposer>("late");
      lp.target = &c;
      late = &lp;
    } else {
      c.propose(1, [&decisions, i](const int& d) {
        decisions[static_cast<std::size_t>(i)] = d;
      });
    }
  }
  EXPECT_TRUE(s.run().all_done);
  ASSERT_NE(late, nullptr);
  ASSERT_TRUE(late->decision.has_value());
  EXPECT_EQ(*late->decision, 1);  // The early majority's value won.
  for (int i = 1; i < n; ++i) {
    ASSERT_TRUE(decisions[static_cast<std::size_t>(i)].has_value());
    EXPECT_EQ(*decisions[static_cast<std::size_t>(i)], 1);
  }
}

// ---------------------------------------------------- two-process systems

TEST(TwoProcessTest, NbacWithOneCrashAborts) {
  // n=2 and one crash: the smallest system where NBAC's non-blocking
  // property bites (2PC would block here).
  sim::FailurePattern f(2);
  f.crash_at(1, 0);
  sim::SimConfig cfg;
  cfg.n = 2;
  cfg.max_steps = 150000;
  cfg.seed = 9;
  sim::Simulator s(cfg, f, test::psi_fs(fd::PsiOracle::Branch::kFs, 300),
                   test::random_sched());
  std::optional<nbac::Decision> decision;
  for (int i = 0; i < 2; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& q = host.add_module<qc::PsiQcModule<int>>("qc");
    auto& nb = host.add_module<nbac::NbacFromQcModule>("nbac", &q);
    if (i == 0) {
      nb.vote(nbac::Vote::kYes,
              [&decision](nbac::Decision d) { decision = d; });
    }
  }
  EXPECT_TRUE(s.run().all_done);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(*decision, nbac::Decision::kAbort);
}

TEST(WorkloadHistoryTest, RespondTwiceIsRejected) {
  reg::History h;
  const auto idx = h.invoke(0, true, 5, 10);
  h.respond(idx, 20, 0);
  EXPECT_EQ(h.completed(), 1u);
  EXPECT_DEATH(h.respond(idx, 30, 0), "WFD_CHECK");
}

TEST(WorkloadHistoryTest, CompletedCountsOnlyResponded) {
  reg::History h;
  h.invoke(0, true, 1, 0);
  const auto idx = h.invoke(1, false, 0, 5);
  EXPECT_EQ(h.completed(), 0u);
  h.respond(idx, 9, 42);
  EXPECT_EQ(h.completed(), 1u);
  EXPECT_EQ(h.ops()[1].value, 42);
}

}  // namespace
}  // namespace wfd
