// Theorem 1, necessity (Figure 1): any algorithm that implements atomic
// registers using some detector D can be used to emulate Sigma. The
// emulated quorum history must satisfy both Sigma clauses — checked for
// D = Sigma itself (ABD over a Sigma oracle) and, more strikingly, for
// D = nothing at all (majority-ABD in a majority-correct environment):
// Sigma really is extractable "ex nihilo" wherever registers are.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "extract/participant_tracker.h"
#include "extract/sigma_extraction.h"
#include "fd/history_checker.h"
#include "reg/abd_register.h"
#include "test_util.h"

namespace wfd {
namespace {

using extract::ParticipantTracker;
using extract::QuorumList;
using extract::RegisterHandle;
using extract::SigmaExtractionModule;
using Reg = reg::AbdRegisterModule<QuorumList>;

struct ExtractionRig {
  std::vector<sim::FdSampleRecord> samples;
  std::vector<std::unique_ptr<ParticipantTracker>> trackers;
  std::vector<SigmaExtractionModule*> extractors;
};

/// Wire up per-process: n register modules (the algorithm A using D),
/// the causal tracker as transport instrument, and the Fig. 1 extractor.
void build_extraction(sim::Simulator& s, int n, reg::QuorumRule rule,
                      ExtractionRig& rig) {
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    rig.trackers.push_back(std::make_unique<ParticipantTracker>(i));
    host.set_instrument(rig.trackers.back().get());
    std::vector<RegisterHandle> handles;
    for (int j = 0; j < n; ++j) {
      Reg::Options opt;
      opt.rule = rule;
      auto& r = host.add_module<Reg>("xreg/" + std::to_string(j), opt);
      RegisterHandle h;
      h.write = [&r](const QuorumList& v, std::function<void()> cb) {
        r.write(v, std::move(cb));
      };
      h.read = [&r](std::function<void(const QuorumList&)> cb) {
        r.read(std::move(cb));
      };
      handles.push_back(std::move(h));
    }
    rig.extractors.push_back(&host.add_module<SigmaExtractionModule>(
        "extract", std::move(handles), rig.trackers.back().get(),
        &rig.samples));
  }
}

class ExtractSigmaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtractSigmaSweep, FromSigmaBackedRegisters) {
  // D = Sigma; A = Sigma-ABD; any environment (here: up to n-1 crashes).
  const int n = 3;
  Rng rng(GetParam() * 131 + 17);
  sim::AnyEnvironment env(n);
  const auto f = env.sample(rng, 10000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 300000;
  cfg.seed = GetParam();
  sim::Simulator s(cfg, f, test::sigma_oracle(), test::random_sched());
  ExtractionRig rig;
  build_extraction(s, n, reg::QuorumRule::kSigma, rig);
  s.set_halt_on_done(false);
  s.run();

  // The emulation must have made real progress...
  for (int i = 0; i < n; ++i) {
    if (f.correct().contains(i)) {
      EXPECT_GE(rig.extractors[static_cast<std::size_t>(i)]->iterations(), 3u)
          << "extraction stalled at correct process " << i;
    }
  }
  // ...and the emulated history must BE a Sigma history.
  const auto r = fd::check_sigma_history(rig.samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST_P(ExtractSigmaSweep, ExNihiloFromMajorityRegisters) {
  // D = nothing; A = majority-ABD; majority-correct environment.
  const int n = 3;
  Rng rng(GetParam() * 137 + 23);
  sim::MajorityCorrectEnvironment env(n);
  const auto f = env.sample(rng, 10000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 300000;
  cfg.seed = GetParam();
  sim::Simulator s(cfg, f, std::make_unique<fd::NullOracle>(),
                   test::random_sched());
  ExtractionRig rig;
  build_extraction(s, n, reg::QuorumRule::kMajority, rig);
  s.set_halt_on_done(false);
  s.run();

  const auto r = fd::check_sigma_history(rig.samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractSigmaSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// The participant sets of completed writes always contain at least one
// correct process (the paper's key lemma about P_i(k)); equivalently,
// every probed set eventually answers, which is what keeps the emulation
// non-blocking. We check the quorums *include* a correct member.
TEST(ExtractSigmaLemma, EveryEmittedQuorumContainsACorrectProcess) {
  const int n = 4;
  sim::FailurePattern f(n);
  f.crash_at(0, 4000);
  f.crash_at(1, 8000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 250000;
  cfg.seed = 77;
  sim::Simulator s(cfg, f, test::sigma_oracle(), test::random_sched());
  ExtractionRig rig;
  build_extraction(s, n, reg::QuorumRule::kSigma, rig);
  s.set_halt_on_done(false);
  s.run();

  for (const auto& rec : rig.samples) {
    EXPECT_TRUE(rec.value.sigma->intersects(f.correct()))
        << "quorum " << rec.value.sigma->to_string() << " at t=" << rec.t;
  }
}

// Tracker unit behaviour: participation spreads along causal chains.
TEST(ParticipantTrackerTest, DirectAndTransitiveParticipation) {
  ParticipantTracker t0(0), t1(1), t2(2);
  t0.begin_write(1);

  // 0 -> 1: p1 becomes a participant.
  auto m01 = t0.outgoing_meta();
  ASSERT_NE(m01, nullptr);
  t1.incoming_meta(0, *m01);

  // 1 -> 2: p2 becomes a participant transitively.
  auto m12 = t1.outgoing_meta();
  ASSERT_NE(m12, nullptr);
  t2.incoming_meta(1, *m12);

  // 2 -> 0: knowledge flows back to the writer.
  auto m20 = t2.outgoing_meta();
  ASSERT_NE(m20, nullptr);
  t0.incoming_meta(2, *m20);

  const ProcessSet p = t0.end_write(1);
  EXPECT_TRUE(p.contains(0));
  EXPECT_TRUE(p.contains(1));
  EXPECT_TRUE(p.contains(2));
}

TEST(ParticipantTrackerTest, CompletedWritesAreGarbageCollected) {
  ParticipantTracker t0(0), t1(1);
  t0.begin_write(1);
  auto m = t0.outgoing_meta();
  t1.incoming_meta(0, *m);
  EXPECT_FALSE(t1.known_participants({0, 1}).empty());

  t0.end_write(1);
  // The writer's next message carries the completion counter...
  auto m2 = t0.outgoing_meta();
  ASSERT_NE(m2, nullptr);
  t1.incoming_meta(0, *m2);
  // ...and the receiver drops the stale tag.
  EXPECT_TRUE(t1.known_participants({0, 1}).empty());
}

TEST(ParticipantTrackerTest, MessagesSentBeforeWriteDoNotTag) {
  ParticipantTracker t0(0), t1(1);
  auto before = t0.outgoing_meta();  // No active write: no metadata.
  EXPECT_EQ(before, nullptr);
  t0.begin_write(1);
  if (before != nullptr) t1.incoming_meta(0, *before);
  EXPECT_TRUE(t1.known_participants({0, 1}).empty());
  const ProcessSet p = t0.end_write(1);
  EXPECT_EQ(p, ProcessSet{0});
}

}  // namespace
}  // namespace wfd

// The Corollary 3 proof path, end to end — registers built FROM
// consensus (state-machine replication) under D = (Omega, Sigma), then
// Figure 1 extracts Sigma from those registers. This is exactly how the
// paper derives "if D solves consensus, D can be transformed into
// Sigma". Each register operation costs a consensus instance, so the
// run is kept small (crash-free; the intersection clause is the meat —
// completeness is trivial with correct = Pi).
#include "smr/register_from_consensus.h"

namespace wfd {
namespace {

TEST(ExtractSigmaFromConsensus, Corollary3Composition) {
  using SmrReg = smr::BasicSmrRegisterModule<QuorumList>;
  const int n = 3;
  const auto f = test::pattern(n);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 120000;  // Each Fig.1 iteration costs ~4(n+1) consensus
  cfg.seed = 3;           // instances; a couple of iterations suffice.
  sim::Simulator s(cfg, f, test::omega_sigma(/*stab=*/200),
                   test::random_sched());
  ExtractionRig rig;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    rig.trackers.push_back(std::make_unique<ParticipantTracker>(i));
    host.set_instrument(rig.trackers.back().get());
    std::vector<RegisterHandle> handles;
    for (int j = 0; j < n; ++j) {
      auto& r = host.add_module<SmrReg>("sreg/" + std::to_string(j));
      RegisterHandle h;
      h.write = [&r](const QuorumList& v, std::function<void()> cb) {
        r.write(v, std::move(cb));
      };
      h.read = [&r](std::function<void(const QuorumList&)> cb) {
        r.read(std::move(cb));
      };
      handles.push_back(std::move(h));
    }
    rig.extractors.push_back(&host.add_module<SigmaExtractionModule>(
        "extract", std::move(handles), rig.trackers.back().get(),
        &rig.samples));
  }
  s.set_halt_on_done(false);
  s.run();

  for (int i = 0; i < n; ++i) {
    EXPECT_GE(rig.extractors[static_cast<std::size_t>(i)]->iterations(), 1u)
        << "extraction over SMR registers stalled at process " << i;
  }
  const auto r = fd::check_sigma_history(rig.samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

}  // namespace
}  // namespace wfd
