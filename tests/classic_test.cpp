// The classical pre-(Omega, Sigma) landscape the paper generalises:
//  - Chandra-Toueg consensus from a Strong detector S (any environment);
//  - NBAC from the perfect detector P (any environment; cf. [9]);
//  - Omega-with-majorities consensus (the [4] setting): live only with a
//    correct majority — the boundary that motivates Sigma;
//  - the regular-register ablation: dropping ABD's read write-back loses
//    atomicity in exactly the documented way.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "consensus/omega_sigma_consensus.h"
#include "consensus/strong_consensus.h"
#include "nbac/nbac_from_perfect.h"
#include "reg/abd_register.h"
#include "reg/linearizability.h"
#include "reg/register_client.h"
#include "test_util.h"

namespace wfd {
namespace {

using consensus::ConsensusQuorumRule;
using consensus::OmegaSigmaConsensusModule;
using consensus::StrongConsensusModule;

// ------------------------------------------------------------ S-consensus

struct StrongParam {
  std::uint64_t seed;
  int n;
  int crashes;
  bool perfect;  ///< P oracle instead of S.
};

class StrongConsensusSweep : public ::testing::TestWithParam<StrongParam> {};

TEST_P(StrongConsensusSweep, DecidesWithAgreementAndValidity) {
  const auto& prm = GetParam();
  Rng rng(prm.seed * 211 + 7);
  sim::MaxCrashesEnvironment env(prm.n, prm.crashes);
  const auto f = env.sample(rng, 3000);

  sim::SimConfig cfg;
  cfg.n = prm.n;
  cfg.max_steps = 200000;
  cfg.seed = prm.seed;
  std::unique_ptr<fd::Oracle> oracle;
  if (prm.perfect) {
    oracle = std::make_unique<fd::PerfectOracle>();
  } else {
    oracle = std::make_unique<fd::StrongOracle>();
  }
  sim::Simulator s(cfg, f, std::move(oracle), test::random_sched());
  std::vector<std::optional<int>> decisions(prm.n);
  std::vector<int> proposals;
  for (int i = 0; i < prm.n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<StrongConsensusModule<int>>("scons");
    const int v = 100 + i;  // Distinct proposals stress the relay rounds.
    proposals.push_back(v);
    c.propose(v, [&decisions, i](const int& d) {
      decisions[static_cast<std::size_t>(i)] = d;
    });
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  std::optional<int> agreed;
  for (int i = 0; i < prm.n; ++i) {
    if (f.correct().contains(i)) {
      ASSERT_TRUE(decisions[static_cast<std::size_t>(i)].has_value());
    }
    if (!decisions[static_cast<std::size_t>(i)].has_value()) continue;
    if (agreed.has_value()) {
      EXPECT_EQ(*decisions[static_cast<std::size_t>(i)], *agreed);
    } else {
      agreed = decisions[static_cast<std::size_t>(i)];
    }
  }
  ASSERT_TRUE(agreed.has_value());
  EXPECT_GE(*agreed, 100);
  EXPECT_LT(*agreed, 100 + prm.n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrongConsensusSweep,
    ::testing::Values(StrongParam{1, 3, 0, false}, StrongParam{2, 3, 2, false},
                      StrongParam{3, 5, 4, false}, StrongParam{4, 5, 2, false},
                      StrongParam{5, 4, 3, true}, StrongParam{6, 6, 5, true},
                      StrongParam{7, 7, 6, false}, StrongParam{8, 2, 1, true}));

// ------------------------------------------------------------- NBAC from P

struct PNbacParam {
  std::uint64_t seed;
  int no_votes;
  int crashes;
};

class NbacFromPerfectSweep : public ::testing::TestWithParam<PNbacParam> {};

TEST_P(NbacFromPerfectSweep, SpecHolds) {
  const auto& prm = GetParam();
  const int n = 4;
  sim::FailurePattern f(n);
  for (int i = 0; i < prm.crashes; ++i) {
    f.crash_at(n - 1 - i, 100 * static_cast<Time>(i));
  }
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 200000;
  cfg.seed = prm.seed;
  sim::Simulator s(cfg, f, std::make_unique<fd::PerfectOracle>(),
                   test::random_sched());
  std::vector<std::optional<nbac::Decision>> decisions(n);
  bool all_yes = prm.no_votes == 0;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& nb = host.add_module<nbac::NbacFromPerfectModule>("nbac");
    nb.vote(i < prm.no_votes ? nbac::Vote::kNo : nbac::Vote::kYes,
            [&decisions, i](nbac::Decision d) {
              decisions[static_cast<std::size_t>(i)] = d;
            });
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  std::optional<nbac::Decision> agreed;
  for (int i = 0; i < n; ++i) {
    if (f.correct().contains(i)) {
      ASSERT_TRUE(decisions[static_cast<std::size_t>(i)].has_value());
    }
    if (!decisions[static_cast<std::size_t>(i)].has_value()) continue;
    const auto d = *decisions[static_cast<std::size_t>(i)];
    if (agreed.has_value()) {
      EXPECT_EQ(d, *agreed);
    } else {
      agreed = d;
    }
    if (d == nbac::Decision::kCommit) {
      EXPECT_TRUE(all_yes);
      EXPECT_TRUE(f.faulty().empty() || f.first_crash_time() > 0);
    } else {
      EXPECT_TRUE(!all_yes || !f.faulty().empty());
    }
  }
  // Mandatory commit: all Yes and crash-free.
  if (all_yes && f.faulty().empty()) {
    ASSERT_TRUE(agreed.has_value());
    EXPECT_EQ(*agreed, nbac::Decision::kCommit);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NbacFromPerfectSweep,
    ::testing::Values(PNbacParam{1, 0, 0}, PNbacParam{2, 1, 0},
                      PNbacParam{3, 0, 1}, PNbacParam{4, 0, 3},
                      PNbacParam{5, 2, 1}, PNbacParam{6, 0, 0},
                      PNbacParam{7, 4, 0}));

// -------------------------------------------- Omega + majority boundary

TEST(OmegaMajorityConsensus, LiveWithCorrectMajority) {
  const int n = 5;
  sim::FailurePattern f(n);
  f.crash_at(0, 300);
  f.crash_at(1, 900);  // 3 of 5 stay correct: a majority.

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 150000;
  cfg.seed = 31;
  sim::Simulator s(cfg, f, test::omega(), test::random_sched());
  OmegaSigmaConsensusModule<int>::Options opt;
  opt.quorum_rule = ConsensusQuorumRule::kMajority;
  std::vector<std::optional<int>> decisions(n);
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<OmegaSigmaConsensusModule<int>>("cons", opt);
    c.propose(i % 2, [&decisions, i](const int& d) {
      decisions[static_cast<std::size_t>(i)] = d;
    });
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  for (ProcessId p : f.correct().members()) {
    EXPECT_TRUE(decisions[static_cast<std::size_t>(p)].has_value());
  }
}

TEST(OmegaMajorityConsensus, BlocksWithoutMajority) {
  // The motivating boundary: with only 2 of 5 processes alive, majority
  // quorums cannot form — Omega alone cannot decide, while the same
  // protocol with Sigma (ConsensusSweep elsewhere) sails through.
  const int n = 5;
  sim::FailurePattern f(n);
  for (ProcessId p = 0; p < 3; ++p) f.crash_at(p, 0);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 60000;
  cfg.seed = 37;
  sim::Simulator s(cfg, f, test::omega(), test::random_sched());
  OmegaSigmaConsensusModule<int>::Options opt;
  opt.quorum_rule = ConsensusQuorumRule::kMajority;
  std::vector<std::optional<int>> decisions(n);
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<OmegaSigmaConsensusModule<int>>("cons", opt);
    c.propose(i % 2, [&decisions, i](const int& d) {
      decisions[static_cast<std::size_t>(i)] = d;
    });
  }
  const auto res = s.run();
  EXPECT_FALSE(res.all_done);
  for (int i = 0; i < n; ++i) {
    EXPECT_FALSE(decisions[static_cast<std::size_t>(i)].has_value());
  }
}

// ------------------------------------------------ regular-register ablation

TEST(RegularRegisterAblation, AtomicReadsStayLinearizable) {
  // Control: with write-back on, the concurrent workload is linearizable
  // (this is AbdSweep's property, pinned here against the same setup as
  // the ablation below).
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 300000;
  cfg.seed = 41;
  sim::Simulator s(cfg, test::pattern(n), test::sigma_oracle(),
                   test::random_sched());
  reg::History history;
  reg::AbdRegisterModule<std::int64_t>::Options ropt;
  ropt.atomic_reads = true;
  reg::RegisterWorkloadModule::Options wopt;
  wopt.num_ops = 6;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& r = host.add_module<reg::AbdRegisterModule<std::int64_t>>("reg",
                                                                     ropt);
    host.add_module<reg::RegisterWorkloadModule>("load", &r, &history, wopt);
  }
  EXPECT_TRUE(s.run().all_done);
  EXPECT_TRUE(reg::is_linearizable(history));
}

// A driver that issues one register operation at a fixed local tick and
// records it in a shared history.
class ScriptedOp : public sim::Module {
 public:
  ScriptedOp(reg::AbdRegisterModule<std::int64_t>* target,
             reg::History* history, Time start_tick, bool is_write,
             std::int64_t value)
      : target_(target),
        history_(history),
        start_tick_(start_tick),
        is_write_(is_write),
        value_(value) {}

  void on_message(ProcessId, const sim::Payload&) override {}

  void on_tick() override {
    if (issued_ || ++ticks_ < start_tick_) return;
    issued_ = true;
    if (is_write_) {
      const auto idx = history_->invoke(self(), true, value_, now());
      target_->write(value_, [this, idx] {
        history_->respond(idx, now(), 0);
        finished_ = true;
      });
    } else {
      const auto idx = history_->invoke(self(), false, 0, now());
      target_->read([this, idx](const std::int64_t& v) {
        history_->respond(idx, now(), v);
        finished_ = true;
      });
    }
  }

  [[nodiscard]] bool done() const override { return finished_; }
  [[nodiscard]] bool finished() const { return finished_; }

 private:
  reg::AbdRegisterModule<std::int64_t>* target_;
  reg::History* history_;
  Time start_tick_;
  bool is_write_;
  std::int64_t value_;
  Time ticks_ = 0;
  bool issued_ = false;
  bool finished_ = false;
};

TEST(RegularRegisterAblation, DroppingWriteBackAllowsNewOldInversion) {
  // Orchestrated inversion with n = 5 and majority quorums:
  //  - p0's write reaches only p1's replica (all of p0's later messages
  //    except those to p1 are withheld, so the write stalls mid-phase-2);
  //  - p3 reads with replier set {1,2,3} (p4 -> p3 withheld): it sees
  //    p1's fresh replica and returns the NEW value;
  //  - p2 then reads with replier set {2,3,4} (p1 -> p2 withheld): every
  //    replica it sees is stale, so it returns the OLD value.
  // A read that returned new cannot precede one that returns old: with
  // atomic_reads off, the history is not linearizable; the write-back
  // (R2 phase) is precisely what forbids this.
  const int n = 5;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 40000;
  cfg.seed = 1;
  // Under round-robin the write's phase-1 broadcast is p0's second step
  // (global time 5); everything p0 sends from t=10 on is its phase-2
  // broadcast and its replies to the readers — withhold those (except to
  // p1) so exactly one replica learns the new value.
  auto filter = [](const sim::Envelope& e, Time) {
    if (e.from == 0 && e.to != 1 && e.sent_at >= 10) return true;
    if (e.from == 1 && e.to == 2) return true;
    if (e.from == 4 && e.to == 3) return true;
    return false;
  };
  sim::Simulator s(
      cfg, test::pattern(n), std::make_unique<fd::NullOracle>(),
      std::make_unique<sim::FilteredScheduler>(test::round_robin(), filter));
  reg::History history;
  reg::AbdRegisterModule<std::int64_t>::Options ropt;
  ropt.rule = reg::QuorumRule::kMajority;
  ropt.atomic_reads = false;  // The ablation under test.
  std::vector<ScriptedOp*> ops(n, nullptr);
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& r =
        host.add_module<reg::AbdRegisterModule<std::int64_t>>("reg", ropt);
    if (i == 0) {
      ops[0] = &host.add_module<ScriptedOp>("op", &r, &history, 1, true, 7);
    } else if (i == 3) {
      ops[3] = &host.add_module<ScriptedOp>("op", &r, &history, 400, false, 0);
    } else if (i == 2) {
      ops[2] = &host.add_module<ScriptedOp>("op", &r, &history, 2500, false, 0);
    }
  }
  s.set_halt_on_done(false);
  s.run();
  // The write is stalled forever; both reads must have completed.
  ASSERT_TRUE(ops[3]->finished());
  ASSERT_TRUE(ops[2]->finished());
  ASSERT_FALSE(ops[0]->finished());
  // p3 saw the new value, p2 the old one, strictly afterwards.
  std::int64_t v3 = -1, v2 = -1;
  for (const auto& op : history.ops()) {
    if (op.client == 3) v3 = op.value;
    if (op.client == 2) v2 = op.value;
  }
  EXPECT_EQ(v3, 7);
  EXPECT_EQ(v2, 0);
  EXPECT_FALSE(reg::is_linearizable(history));
}

}  // namespace
}  // namespace wfd
