// The wave-scheduled explorer's two headline guarantees, end to end:
//
//  1. Thread-count invariance: every decision that shapes the search is
//     a pure function of the committed search state, so the full stats
//     block — states, runs, reduction counters, injected faults,
//     violations, coverage — is bit-identical for every
//     SearchConfig::threads value, across the fault matrix (explored
//     crashes, lossy links, a seeded bug).
//
//  2. Symmetry soundness: canonical fingerprints are the minimum digest
//     over the scenario's symmetry group, so two runs that differ only
//     by a renaming of interchangeable processes — schedule AND
//     detector choices renamed together — produce equal canonical
//     fingerprints from genuinely different states, the reduction
//     shrinks the tree, and it still finds the seeded bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "explore/explorer.h"
#include "explore/scenario.h"
#include "explore/search_config.h"
#include "sim/choice.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "sim/state_encoder.h"

namespace wfd::explore {
namespace {

// ---- Thread-count invariance ------------------------------------------

void expect_same_stats(const ExploreStats& a, const ExploreStats& b,
                       const char* what) {
  EXPECT_EQ(a.nodes, b.nodes) << what;
  EXPECT_EQ(a.runs, b.runs) << what;
  EXPECT_EQ(a.steps, b.steps) << what;
  EXPECT_EQ(a.sleep_skips, b.sleep_skips) << what;
  EXPECT_EQ(a.fp_prunes, b.fp_prunes) << what;
  EXPECT_EQ(a.hb_races, b.hb_races) << what;
  EXPECT_EQ(a.backtrack_points, b.backtrack_points) << what;
  EXPECT_EQ(a.commute_skips, b.commute_skips) << what;
  EXPECT_EQ(a.injected_crashes, b.injected_crashes) << what;
  EXPECT_EQ(a.injected_drops, b.injected_drops) << what;
  EXPECT_EQ(a.injected_dups, b.injected_dups) << what;
  EXPECT_EQ(a.violations, b.violations) << what;
  EXPECT_EQ(a.exhausted, b.exhausted) << what;
}

/// Runs the scenario at threads = 1, 2, 8 and requires the T=1 report
/// to be reproduced exactly: same stats block, same coverage, same
/// counterexample presence and property.
void expect_thread_invariant(const SearchConfig& base, const char* what) {
  SearchConfig cfg = base;
  cfg.threads = 1;
  ASSERT_EQ(validate(cfg), "") << what;
  Explorer serial(ScenarioFactory(cfg.scenario).builder(), cfg);
  const ExploreReport ref = serial.run();
  for (int threads : {2, 8}) {
    SearchConfig par = base;
    par.threads = threads;
    Explorer ex(ScenarioFactory(par.scenario).builder(), par);
    const ExploreReport rep = ex.run();
    expect_same_stats(ref.stats, rep.stats, what);
    EXPECT_EQ(coverage(ref.stats), coverage(rep.stats)) << what;
    EXPECT_EQ(ref.cex.has_value(), rep.cex.has_value()) << what;
    if (ref.cex.has_value() && rep.cex.has_value()) {
      EXPECT_EQ(ref.cex->violation.property, rep.cex->violation.property)
          << what;
    }
    EXPECT_EQ(ref.conservative_payloads, rep.conservative_payloads) << what;
  }
}

TEST(ParallelEquivalenceTest, ExploredCrashesAreThreadCountInvariant) {
  SearchConfig cfg;
  cfg.scenario.problem = "consensus";
  cfg.scenario.n = 3;
  cfg.scenario.max_steps = 10;
  cfg.scenario.fd_per_query = false;
  cfg.scenario.crash_mode = "explore";
  cfg.max_states = 0;
  cfg.stop_at_first = false;
  expect_thread_invariant(cfg, "consensus n=3 crash=explore");
}

TEST(ParallelEquivalenceTest, SymmetryComposesWithThreads) {
  SearchConfig cfg;
  cfg.scenario.problem = "consensus";
  cfg.scenario.n = 3;
  cfg.scenario.max_steps = 12;
  cfg.scenario.fd_per_query = false;
  cfg.symmetry = true;
  cfg.max_states = 0;
  cfg.stop_at_first = false;
  expect_thread_invariant(cfg, "consensus n=3 symmetry");
}

TEST(ParallelEquivalenceTest, LossyRegisterIsThreadCountInvariant) {
  SearchConfig cfg;
  cfg.scenario.problem = "register";
  cfg.scenario.n = 2;
  cfg.scenario.max_steps = 10;
  cfg.scenario.fd_per_query = false;
  cfg.scenario.reg_ops = 1;
  cfg.scenario.reg_readers = 1;
  cfg.scenario.loss_drops = 1;
  cfg.scenario.loss_dups = 1;
  cfg.max_states = 0;
  cfg.stop_at_first = false;
  expect_thread_invariant(cfg, "lossy register n=2");
}

TEST(ParallelEquivalenceTest, SeededBugIsThreadCountInvariant) {
  SearchConfig cfg;
  cfg.scenario.problem = "consensus-bug";
  cfg.scenario.n = 2;
  cfg.scenario.max_steps = 6;
  cfg.max_states = 0;
  cfg.stop_at_first = false;
  expect_thread_invariant(cfg, "consensus-bug n=2");
}

// ---- Symmetry reduction soundness -------------------------------------

ExploreReport explore(const SearchConfig& cfg) {
  SearchConfig c = cfg;
  EXPECT_EQ(validate(c), "");
  Explorer ex(ScenarioFactory(c.scenario).builder(), c);
  return ex.run();
}

// Canonicalization must shrink the tree without losing coverage: both
// searches exhaust, agree on violations, and the symmetric one
// materializes strictly fewer choice points (n=3 consensus has the
// even-parity pair {0, 2} interchangeable).
TEST(SymmetrySoundnessTest, ReductionExhaustsWithFewerStates) {
  SearchConfig plain;
  plain.scenario.problem = "consensus";
  plain.scenario.n = 3;
  plain.scenario.max_steps = 12;
  plain.scenario.fd_per_query = false;
  plain.max_states = 0;
  plain.stop_at_first = false;
  SearchConfig sym = plain;
  sym.symmetry = true;

  const ExploreReport rp = explore(plain);
  const ExploreReport rs = explore(sym);
  EXPECT_TRUE(rp.stats.exhausted);
  EXPECT_TRUE(rs.stats.exhausted);
  EXPECT_EQ(rp.stats.violations, 0u);
  EXPECT_EQ(rs.stats.violations, 0u);
  EXPECT_LT(rs.stats.nodes, rp.stats.nodes);
}

// Soundness against a known defect: the seeded agreement bug must
// survive canonicalization (a reduction that merges too much would
// prune the violating branch). n=3 so the even parity class {0, 2}
// gives the renaming group something to act on.
TEST(SymmetrySoundnessTest, SeededBugSurvivesCanonicalization) {
  SearchConfig cfg;
  cfg.scenario.problem = "consensus-bug";
  cfg.scenario.n = 3;
  cfg.scenario.max_steps = 8;
  cfg.symmetry = true;
  cfg.max_states = 0;
  cfg.stop_at_first = false;
  const ExploreReport rep = explore(cfg);
  EXPECT_TRUE(rep.stats.exhausted);
  EXPECT_GT(rep.stats.violations, 0u);
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_EQ(rep.cex->violation.property, "agreement(decide)");
}

// ---- Canonical fingerprints across renamings --------------------------

/// Baseline run: schedule choices step `order` in sequence, every other
/// choice takes option 0 and records its label so a twin run can map it.
class BaseRun : public sim::ChoiceSource {
 public:
  explicit BaseRun(std::vector<ProcessId> order) : order_(std::move(order)) {}

  std::size_t choose(sim::ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override {
    if (kind == sim::ChoiceKind::kSchedule) {
      EXPECT_LT(next_, order_.size());
      const ProcessId want = order_[next_++];
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (sim::ReplayScheduler::label_process(labels[i]) == want) return i;
      }
      ADD_FAILURE() << "no schedule option for process " << want;
      return 0;
    }
    if (kind == sim::ChoiceKind::kFd) fd_picks_.push_back(labels[0]);
    return 0;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& fd_picks() const {
    return fd_picks_;
  }

 private:
  std::vector<ProcessId> order_;
  std::size_t next_ = 0;
  std::vector<std::uint64_t> fd_picks_;
};

/// The pi-image of a BaseRun: schedules pi(order), and answers each
/// detector choice with the pi-image of the baseline's pick. Omega
/// labels are process ids (all < n), sigma labels are quorum bitmasks;
/// both rename field by field.
class RenamedRun : public sim::ChoiceSource {
 public:
  RenamedRun(std::vector<ProcessId> order, const std::vector<ProcessId>& perm,
             const std::vector<std::uint64_t>& base_fd)
      : order_(std::move(order)), perm_(perm), base_fd_(base_fd) {}

  std::size_t choose(sim::ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override {
    if (kind == sim::ChoiceKind::kSchedule) {
      EXPECT_LT(next_, order_.size());
      const auto idx = static_cast<std::size_t>(order_[next_++]);
      const ProcessId want = perm_[idx];
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (sim::ReplayScheduler::label_process(labels[i]) == want) return i;
      }
      ADD_FAILURE() << "no schedule option for process " << want;
      return 0;
    }
    if (kind == sim::ChoiceKind::kFd) {
      EXPECT_LT(fd_i_, base_fd_.size());
      const std::uint64_t want = map_label(base_fd_[fd_i_++], labels);
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] == want) return i;
      }
      ADD_FAILURE() << "renamed detector label " << want << " not offered";
    }
    return 0;
  }

 private:
  [[nodiscard]] std::uint64_t map_label(
      std::uint64_t label, const std::vector<std::uint64_t>& labels) const {
    const auto n = static_cast<std::uint64_t>(perm_.size());
    const bool pids = std::all_of(labels.begin(), labels.end(),
                                  [n](std::uint64_t l) { return l < n; });
    if (pids) return static_cast<std::uint64_t>(perm_[label]);
    std::uint64_t out = 0;
    for (std::size_t p = 0; p < perm_.size(); ++p) {
      if ((label >> p) & 1) out |= std::uint64_t{1} << perm_[p];
    }
    return out;
  }

  std::vector<ProcessId> order_;
  std::size_t next_ = 0;
  const std::vector<ProcessId>& perm_;
  const std::vector<std::uint64_t>& base_fd_;
  std::size_t fd_i_ = 0;
};

/// The composed digest exactly as the explorer computes it: simulator
/// plus invariants, optionally through a renaming.
std::uint64_t digest(const Scenario& sc, const std::vector<ProcessId>* perm) {
  sim::StateEncoder enc(perm);
  sc.sim->encode_state(enc);
  std::size_t i = 0;
  for (const auto& inv : sc.invariants) {
    enc.push("invariant", i++);
    inv->encode_state(enc);
    enc.pop();
  }
  EXPECT_TRUE(enc.complete());
  return enc.digest();
}

// Two runs of consensus n=3 related by the even-class swap 0 <-> 2 —
// schedule and detector history renamed together — reach states that
// are exact renamings of each other: the digest of one under the
// permutation equals the plain digest of the other, so the canonical
// (minimum over the group) fingerprints coincide even though the plain
// fingerprints keep the genuinely different states apart.
TEST(SymmetrySoundnessTest, CanonicalFingerprintAgreesAcrossRenamings) {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 3;
  opt.max_steps = 10;
  opt.fd_per_query = false;

  // The even parity class {0, 2} must be declared interchangeable.
  const auto classes = ScenarioFactory::symmetry_classes(opt);
  ASSERT_FALSE(classes.empty());
  ASSERT_NE(std::find(classes.begin(), classes.end(),
                      std::vector<ProcessId>({0, 2})),
            classes.end());
  const std::vector<ProcessId> swap02 = {2, 1, 0};

  const std::vector<ProcessId> order = {0, 2, 0};
  BaseRun a(order);
  Scenario sa = ScenarioFactory(opt).build(a);
  for (std::size_t i = 0; i < order.size(); ++i) ASSERT_TRUE(sa.sim->step());
  RenamedRun b(order, swap02, a.fd_picks());
  Scenario sb = ScenarioFactory(opt).build(b);
  for (std::size_t i = 0; i < order.size(); ++i) ASSERT_TRUE(sb.sim->step());

  const std::uint64_t a_id = digest(sa, nullptr);
  const std::uint64_t a_sw = digest(sa, &swap02);
  const std::uint64_t b_id = digest(sb, nullptr);
  const std::uint64_t b_sw = digest(sb, &swap02);

  EXPECT_NE(a_id, b_id) << "different states must hash apart plainly";
  EXPECT_EQ(a_sw, b_id) << "digest under pi = plain digest of the "
                           "pi-renamed state";
  EXPECT_EQ(b_sw, a_id);
  EXPECT_EQ(std::min(a_id, a_sw), std::min(b_id, b_sw))
      << "canonical fingerprints must merge the renamed pair";
}

}  // namespace
}  // namespace wfd::explore
