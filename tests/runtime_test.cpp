// The runtime host: unmodified modules over real threads and channels.
//
// Covers the timer wheel, both transports, the implementable detectors
// under the simulator (eventual leadership on synchronous-enough
// schedules — the model-checking half lives in scenario "omega-impl"),
// the replicated KV service under concurrent load with a
// read-your-writes check, leader-kill failover, and the equal-decisions
// bridge: the same module binaries produce the same scripted-session
// results under the simulator and under the runtime host.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "broadcast/atomic_broadcast.h"
#include "fd/heartbeat_omega.h"
#include "fd/phi_accrual.h"
#include "runtime/kv.h"
#include "runtime/tcp_transport.h"
#include "runtime/timer_wheel.h"
#include "smr/replicated_object.h"
#include "test_util.h"

namespace wfd {
namespace {

struct TestMsg final : sim::Payload {
  explicit TestMsg(std::int64_t v) : value(v) {}
  std::int64_t value;
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("v", value);
  }
};

// --- Timer wheel -----------------------------------------------------

TEST(TimerWheelTest, FiresAtDeadlinesAcrossLaps) {
  runtime::TimerWheel wheel(8);  // Small wheel: deadlines wrap laps.
  std::vector<int> fired;
  wheel.schedule(3, [&] { fired.push_back(3); });
  wheel.schedule(20, [&] { fired.push_back(20); });  // > one lap out.
  wheel.schedule(5, [&] { fired.push_back(5); });
  EXPECT_EQ(wheel.pending(), 3u);
  EXPECT_EQ(wheel.advance(2), 0u);
  EXPECT_EQ(wheel.advance(4), 1u);  // Only the t=3 timer.
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3);
  EXPECT_EQ(wheel.advance(19), 1u);  // t=5; t=20 not yet despite hashing.
  EXPECT_EQ(fired.back(), 5);
  EXPECT_EQ(wheel.advance(25), 1u);
  EXPECT_EQ(fired.back(), 20);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, ZeroDelayFiresOnNextAdvance) {
  runtime::TimerWheel wheel;
  bool fired = false;
  wheel.schedule(0, [&] { fired = true; });
  EXPECT_EQ(wheel.advance(1), 1u);
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, CallbackReschedulesWithoutSpinning) {
  runtime::TimerWheel wheel;
  int ticks = 0;
  std::function<void()> periodic = [&] {
    ++ticks;
    wheel.schedule(2, periodic);
  };
  wheel.schedule(2, periodic);
  for (Time t = 1; t <= 20; ++t) wheel.advance(t);
  EXPECT_EQ(ticks, 10);  // Every 2 units, no same-advance re-firing.
  EXPECT_EQ(wheel.pending(), 1u);
}

TEST(TimerWheelTest, LongJumpFiresEverythingOnce) {
  runtime::TimerWheel wheel(4);
  int fired = 0;
  for (Time d = 1; d <= 10; ++d) wheel.schedule(d, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(1000), 10u);
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(wheel.advance(2000), 0u);
}

// --- Transports ------------------------------------------------------

TEST(ChannelTransportTest, DeliversToAttachedSinksOnly) {
  runtime::ChannelTransport tr;
  std::vector<std::int64_t> got;
  tr.attach(1, [&](runtime::WireMessage m) {
    const auto* p = sim::payload_cast<TestMsg>(*m.payload);
    ASSERT_NE(p, nullptr);
    got.push_back(p->value);
  });
  tr.send({0, 1, sim::make_payload<TestMsg>(7)});
  tr.send({0, 2, sim::make_payload<TestMsg>(8)});  // Unattached.
  EXPECT_EQ(tr.sent(), 2u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 7);
  tr.detach(1);
  tr.send({0, 1, sim::make_payload<TestMsg>(9)});
  EXPECT_EQ(got.size(), 1u);  // Crashed receiver: dropped silently.
}

TEST(ChannelTransportTest, DropInjectionDropsEverythingAtProbOne) {
  runtime::LinkFaults faults;
  faults.drop_prob = 1.0;
  runtime::ChannelTransport tr(faults);
  int delivered = 0;
  tr.attach(1, [&](runtime::WireMessage) { ++delivered; });
  for (int i = 0; i < 50; ++i) {
    tr.send({0, 1, sim::make_payload<TestMsg>(i)});
  }
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(tr.dropped(), 50u);
}

// With retransmission configured, a "dropped" message arrives late
// instead of never — the reliable-transport-over-lossy-network contract
// the bench's lossy row leans on.
TEST(ChannelTransportTest, RetransmitTurnsLossIntoDelay) {
  runtime::LinkFaults faults;
  faults.drop_prob = 1.0;
  faults.retransmit = 5;
  runtime::ChannelTransport tr(faults);
  std::atomic<int> delivered{0};
  tr.attach(1, [&](runtime::WireMessage) { ++delivered; });
  for (int i = 0; i < 20; ++i) {
    tr.send({0, 1, sim::make_payload<TestMsg>(i)});
  }
  for (int spins = 0; spins < 200 && delivered.load() < 20; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(delivered.load(), 20);
  EXPECT_EQ(tr.dropped(), 20u);  // Still counted as first-copy losses.
}

TEST(TcpTransportTest, RoundTripsFramesOverLoopback) {
  runtime::TcpTransport tr(2);
  std::atomic<int> sum{0};
  std::atomic<int> count{0};
  tr.attach(1, [&](runtime::WireMessage m) {
    const auto* p = sim::payload_cast<TestMsg>(*m.payload);
    ASSERT_NE(p, nullptr);
    sum += static_cast<int>(p->value);
    ++count;
  });
  for (int i = 1; i <= 10; ++i) {
    tr.send({0, 1, sim::make_payload<TestMsg>(i)});
  }
  // Real sockets: delivery is asynchronous; poll briefly.
  for (int spin = 0; spin < 200 && count.load() < 10; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(sum.load(), 55);
  tr.shutdown();
}

// --- Implementable detectors under the simulator ---------------------

TEST(HeartbeatOmegaTest, EventualLeadershipUnderPartialSynchrony) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 20000;
  cfg.seed = 11;
  sim::Simulator s(cfg, test::pattern(n), test::omega_sigma(),
                   std::make_unique<sim::PartialSynchronyScheduler>(0));
  std::vector<fd::HeartbeatOmegaModule*> dets;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    dets.push_back(&host.add_module<fd::HeartbeatOmegaModule>("omega"));
  }
  s.set_halt_on_done(false);
  s.run();
  for (auto* d : dets) {
    EXPECT_EQ(d->current_leader(), 0);
    EXPECT_TRUE(d->suspected().empty());
  }
}

TEST(HeartbeatOmegaTest, LeaderCrashMovesLeadershipToNextCorrect) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 30000;
  cfg.seed = 13;
  sim::Simulator s(cfg, test::pattern(n, {{0, 2000}}), test::omega_sigma(),
                   std::make_unique<sim::PartialSynchronyScheduler>(0));
  std::vector<fd::HeartbeatOmegaModule*> dets;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    dets.push_back(&host.add_module<fd::HeartbeatOmegaModule>("omega"));
  }
  s.set_halt_on_done(false);
  s.run();
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(dets[static_cast<std::size_t>(i)]->current_leader(), 1)
        << "process " << i;
    EXPECT_TRUE(dets[static_cast<std::size_t>(i)]->suspected().contains(0));
  }
  // The emitted-leader event stream records the handover for properties.
  const auto events = s.trace().events_of_kind("omega-leader");
  EXPECT_FALSE(events.empty());
}

TEST(PhiAccrualTest, SuspectsCrashedPeerAndKeepsMajorityQuorum) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 30000;
  cfg.seed = 17;
  sim::Simulator s(cfg, test::pattern(n, {{1, 2000}}), test::omega_sigma(),
                   std::make_unique<sim::PartialSynchronyScheduler>(0));
  std::vector<fd::PhiAccrualModule*> dets;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    dets.push_back(&host.add_module<fd::PhiAccrualModule>("phi"));
  }
  s.set_halt_on_done(false);
  s.run();
  for (int i : {0, 2}) {
    auto* d = dets[static_cast<std::size_t>(i)];
    EXPECT_TRUE(d->suspected().contains(1)) << "process " << i;
    EXPECT_GT(d->phi(1), 3.0);
    // The quorum view dropped to the surviving majority and still
    // contains the observer itself.
    EXPECT_EQ(d->quorum_view().size(), 2);
    EXPECT_TRUE(d->quorum_view().contains(static_cast<ProcessId>(i)));
    EXPECT_FALSE(d->quorum_view().contains(1));
    // Long-confirmed silence latched the FS-style red signal.
    EXPECT_TRUE(d->red());
  }
}

TEST(PhiAccrualTest, CrashFreeRunStaysUnsuspicious) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 20000;
  cfg.seed = 19;
  sim::Simulator s(cfg, test::pattern(n), test::omega_sigma(),
                   std::make_unique<sim::PartialSynchronyScheduler>(0));
  std::vector<fd::PhiAccrualModule*> dets;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    dets.push_back(&host.add_module<fd::PhiAccrualModule>("phi"));
  }
  s.set_halt_on_done(false);
  s.run();
  for (auto* d : dets) {
    EXPECT_TRUE(d->suspected().empty());
    EXPECT_EQ(d->quorum_view().size(), n);
    EXPECT_FALSE(d->red());
  }
}

// --- The replicated KV service on the runtime host -------------------

TEST(RuntimeKvTest, SmokeReadYourWrites) {
  runtime::KvService::Options opt;
  opt.n = 3;
  opt.seed = 42;
  runtime::KvService svc(opt);
  svc.start();
  runtime::KvClient client(svc, 0);
  for (std::uint32_t i = 1; i <= 10; ++i) {
    auto put = client.put(/*key=*/i % 3, /*value=*/100 + i);
    ASSERT_TRUE(put.has_value()) << "put " << i << " timed out";
    EXPECT_EQ(*put, 100 + static_cast<std::int64_t>(i));
    auto got = client.get(i % 3);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 100 + static_cast<std::int64_t>(i));
  }
  svc.stop();
}

TEST(RuntimeKvTest, ConcurrentClientsStress) {
  runtime::KvService::Options opt;
  opt.n = 3;
  opt.seed = 43;
  runtime::KvService svc(opt);
  svc.start();
  constexpr int kClients = 3;
  constexpr std::uint32_t kOps = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&svc, &failures, c] {
      // Each client owns its keys, so read-your-writes must hold even
      // with the other clients' traffic interleaved in the total order.
      runtime::KvClient client(svc, static_cast<ProcessId>(c % 3));
      for (std::uint32_t i = 0; i < kOps; ++i) {
        const std::uint32_t key = static_cast<std::uint32_t>(c) * 100 + i % 4;
        const std::uint32_t value =
            static_cast<std::uint32_t>(c) * 100000 + i;
        auto put = client.put(key, value);
        if (!put.has_value() || *put != value) {
          ++failures;
          continue;
        }
        auto got = client.get(key);
        if (!got.has_value() || *got != value) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  svc.stop();
  // After every thread quiesced and the cluster stopped, the replica
  // logs must be prefix-consistent (the abcast agreement invariant).
  const auto& log0 = svc.replica(0)
                         .module<broadcast::AtomicBroadcastModule>("kv/ab")
                         .delivered_log();
  for (ProcessId p = 1; p < 3; ++p) {
    const auto& lp = svc.replica(p)
                         .module<broadcast::AtomicBroadcastModule>("kv/ab")
                         .delivered_log();
    const std::size_t common = std::min(log0.size(), lp.size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(log0[i], lp[i]) << "log divergence at " << i;
    }
  }
}

TEST(RuntimeKvTest, SurvivesLeaderKill) {
  runtime::KvService::Options opt;
  opt.n = 3;
  opt.seed = 44;
  runtime::KvService svc(opt);
  svc.start();
  runtime::KvClient::Options copt;
  copt.attempt_timeout = 1000;
  runtime::KvClient client(svc, 1, copt);
  ASSERT_TRUE(client.put(1, 11).has_value());
  // Kill the leader (detector stabilises on the smallest id, 0).
  const ProcessId leader = svc.leader_view(1) == kNoProcess
                               ? 0
                               : svc.leader_view(1);
  svc.kill(leader);
  // The service must regain liveness within the detector's timeout +
  // lease bound; the client's retry budget comfortably covers it.
  auto after = client.put(2, 22);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, 22);
  auto read = client.get(1);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, 11);  // Pre-kill write survived the failover.
  svc.stop();
}

TEST(RuntimeKvTest, ServesOverLoopbackTcp) {
  runtime::KvService::Options opt;
  opt.n = 3;
  opt.seed = 45;
  opt.tcp = true;
  runtime::KvService svc(opt);
  svc.start();
  runtime::KvClient client(svc, 0);
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto put = client.put(7, 1000 + i);
    ASSERT_TRUE(put.has_value());
    auto got = client.get(7);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 1000 + static_cast<std::int64_t>(i));
  }
  svc.stop();
}

// --- Equal decisions: simulator vs runtime on one scripted session ---

std::vector<std::int64_t> scripted_session() {
  // put k1=5, get k1, put k2=9, put k1=6, get k1, get k2, get k3(miss).
  return {runtime::kv_put_cmd(1, 5), runtime::kv_get_cmd(1),
          runtime::kv_put_cmd(2, 9), runtime::kv_put_cmd(1, 6),
          runtime::kv_get_cmd(1),    runtime::kv_get_cmd(2),
          runtime::kv_get_cmd(3)};
}

TEST(RuntimeSimEquivalenceTest, EqualDecisionsOnScriptedSession) {
  const std::vector<std::int64_t> cmds = scripted_session();

  // Simulator side: the identical module stack under ModularProcess,
  // with the oracle (Omega, Sigma) detector and a random schedule. The
  // session is sequential (command k+1 submitted in k's callback), so
  // linearizability pins the result sequence.
  std::vector<std::int64_t> sim_results;
  {
    const int n = 3;
    sim::SimConfig cfg;
    cfg.n = n;
    cfg.max_steps = 500000;
    cfg.seed = 7;
    sim::Simulator s(cfg, test::pattern(n), test::omega_sigma(),
                     test::random_sched());
    smr::ReplicatedObjectModule* submitter = nullptr;
    for (int i = 0; i < n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      auto& obj = host.add_module<smr::ReplicatedObjectModule>(
          "kv", runtime::make_kv_apply());
      if (i == 0) submitter = &obj;
    }
    std::function<void(std::size_t)> submit_next =
        [&](std::size_t k) {
          if (k >= cmds.size()) return;
          submitter->submit(cmds[k], [&, k](std::int64_t r) {
            sim_results.push_back(r);
            submit_next(k + 1);
          });
        };
    submit_next(0);
    const auto res = s.run();
    EXPECT_TRUE(res.all_done);
  }

  // Runtime side: the same binaries under threads, channels and the
  // implementable detectors, driven by a closed-loop client.
  std::vector<std::int64_t> runtime_results;
  {
    runtime::KvService::Options opt;
    opt.n = 3;
    opt.seed = 46;
    runtime::KvService svc(opt);
    svc.start();
    runtime::KvClient client(svc, 0);
    for (const std::int64_t cmd : cmds) {
      auto r = (cmd & runtime::kKvOpPut) != 0
                   ? client.put(
                         static_cast<std::uint32_t>((cmd >> 32) & 0xffffff),
                         static_cast<std::uint32_t>(cmd & 0xffffffff))
                   : client.get(
                         static_cast<std::uint32_t>((cmd >> 32) & 0xffffff));
      ASSERT_TRUE(r.has_value());
      runtime_results.push_back(*r);
    }
    svc.stop();
  }

  ASSERT_EQ(sim_results.size(), cmds.size());
  EXPECT_EQ(sim_results, runtime_results);
}

}  // namespace
}  // namespace wfd
