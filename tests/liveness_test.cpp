// Fixture tests for the fair-cycle search over hand-built LiveGraphs:
// graphs constructed edge by edge, not explored, so each test isolates
// one fairness rule of find_fair_lasso with a known-shape witness.
//
// Two outcomes are distinguishable through the public API without a
// real exploration behind the graph. A graph whose only goal-avoiding
// cycles are unfair makes find_fair_lasso return nullopt and leave the
// concretize-error slot empty — the search never got past the SCC
// refinement. A graph with a *fair* goal-avoiding cycle makes the
// search accept a witness and try to concretize it against the real
// scenario, which must fail (the fingerprints are synthetic) and fill
// the error slot with the structured diagnostic instead of aborting.
// "error empty" vs "error mentions concretization" therefore observes
// exactly the graph-level accept/reject decision under test — and the
// accept side doubles as coverage for the diagnostic path itself.
#include <cstdint>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "explore/liveness.h"
#include "explore/scenario.h"
#include "explore/types.h"

namespace wfd::explore {
namespace {

ScenarioOptions live_options() {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 3;
  opt.liveness = "termination";
  opt.fd_per_query = false;
  opt.max_steps = 12;
  return opt;
}

/// Two-node goal-avoiding cycle A <-> B with one obligated receiver.
/// Both channels 0->2 and 1->2 hold a pending delivery at every node;
/// the cycle's two edges both deliver to process 2, but `serve_both`
/// decides whether they serve both senders' channels or only 1->2.
LiveGraph two_sender_cycle(bool serve_both) {
  LiveGraph g;
  const std::uint64_t fp_a = 10;
  const std::uint64_t fp_b = 11;
  g.root = fp_a;
  g.have_root = true;
  const std::uint64_t pending =
      live_channel_bit(0, 2) | live_channel_bit(1, 2);
  LiveGraphNode& a = g.at(fp_a);
  a.goal = false;
  a.enabled = std::uint64_t{1} << 2;
  a.deliverable = pending;
  a.expanded = true;
  LiveGraphEdge ab;
  ab.choices = {0};
  ab.dst = fp_b;
  ab.sched = 2;
  ab.sender = 1;
  ab.deliver = true;
  a.edges = {ab};
  LiveGraphNode& b = g.at(fp_b);
  b.goal = false;
  b.enabled = std::uint64_t{1} << 2;
  b.deliverable = pending;
  b.expanded = true;
  LiveGraphEdge ba;
  ba.choices = {0};
  ba.dst = fp_a;
  ba.sched = 2;
  ba.sender = serve_both ? ProcessId{0} : ProcessId{1};
  ba.deliver = true;
  b.edges = {ba};
  return g;
}

TEST(LivenessFixtureTest, CycleStarvingOneSendersChannelIsUnfair) {
  // The regression the channel-granular bitset exists for: the cycle
  // delivers to the obligated receiver on every edge, so fairness
  // tracked per *receiver* would accept it — yet channel 0->2 stays
  // continuously pending and never served, i.e. some in-flight message
  // from sender 0 is starved forever while process 2 keeps stepping
  // past it. Quasi-reliable channels forbid that limit, so the lasso
  // must be rejected at the graph level.
  const LiveGraph g = two_sender_cycle(/*serve_both=*/false);
  std::string err;
  EXPECT_FALSE(find_fair_lasso(g, live_options(), &err).has_value());
  EXPECT_TRUE(err.empty()) << err;
}

TEST(LivenessFixtureTest, CycleServingBothChannelsIsAcceptedAsFair) {
  // Positive control for the fixture above — the same cycle with the
  // return edge serving sender 0's channel discharges both obligations
  // and must survive the SCC refinement. Concretization then fails
  // (synthetic fingerprints never replay against the real scenario)
  // and must surface the structured diagnostic, not abort.
  const LiveGraph g = two_sender_cycle(/*serve_both=*/true);
  std::string err;
  EXPECT_FALSE(find_fair_lasso(g, live_options(), &err).has_value());
  ASSERT_FALSE(err.empty());
  EXPECT_NE(err.find("failed to concretize a lasso transition"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("scenario:"), std::string::npos) << err;
}

/// Two-node cycle whose edges schedule process 0; `fault` marks both
/// edges as adversary moves.
LiveGraph sched_cycle(bool fault) {
  LiveGraph g;
  const std::uint64_t fp_a = 20;
  const std::uint64_t fp_b = 21;
  g.root = fp_a;
  g.have_root = true;
  for (const std::uint64_t fp : {fp_a, fp_b}) {
    LiveGraphNode& n = g.at(fp);
    n.goal = false;
    n.enabled = 1;  // Process 0 has a move everywhere.
    n.expanded = true;
    LiveGraphEdge e;
    e.choices = {0};
    e.dst = (fp == fp_a) ? fp_b : fp_a;
    e.sched = 0;
    e.fault = fault;
    n.edges = {e};
  }
  return g;
}

TEST(LivenessFixtureTest, FaultEdgesEarnNoSchedulingCredit) {
  // A cycle closed purely by adversary moves (fault edges carrying a
  // process label) never runs process code, so the enabled process is
  // starved and the cycle is unfair — crash/drop/dup steps must not
  // discharge weak-fairness obligations.
  std::string err;
  EXPECT_FALSE(
      find_fair_lasso(sched_cycle(/*fault=*/true), live_options(), &err)
          .has_value());
  EXPECT_TRUE(err.empty()) << err;

  // The same cycle with real (non-fault) steps is fair.
  EXPECT_FALSE(
      find_fair_lasso(sched_cycle(/*fault=*/false), live_options(), &err)
          .has_value());
  EXPECT_NE(err.find("failed to concretize"), std::string::npos) << err;
}

/// Two-node cycle with channel 0->1 continuously pending; one edge
/// delivers on it (optionally as a fault move, i.e. a duplication the
/// adversary injects), the other is process 1's lambda step.
LiveGraph deliver_cycle(bool deliver_is_fault) {
  LiveGraph g;
  const std::uint64_t fp_a = 30;
  const std::uint64_t fp_b = 31;
  g.root = fp_a;
  g.have_root = true;
  LiveGraphNode& a = g.at(fp_a);
  a.goal = false;
  a.enabled = std::uint64_t{1} << 1;
  a.deliverable = live_channel_bit(0, 1);
  a.expanded = true;
  LiveGraphEdge ab;
  ab.choices = {0};
  ab.dst = fp_b;
  ab.sched = 1;
  ab.sender = 0;
  ab.deliver = true;
  ab.fault = deliver_is_fault;
  a.edges = {ab};
  LiveGraphNode& b = g.at(fp_b);
  b.goal = false;
  b.enabled = std::uint64_t{1} << 1;
  b.deliverable = live_channel_bit(0, 1);
  b.expanded = true;
  LiveGraphEdge ba;  // Lambda step: keeps process 1 scheduled.
  ba.choices = {0};
  ba.dst = fp_a;
  ba.sched = 1;
  b.edges = {ba};
  return g;
}

TEST(LivenessFixtureTest, FaultEdgesEarnNoChannelCredit) {
  // Communication fairness wants the *channel* served by a real
  // delivery; an adversary move that happens to carry a message (a
  // duplication) is not the system serving the channel and earns no
  // credit, so the obligation stays undischarged and the cycle dies.
  std::string err;
  EXPECT_FALSE(find_fair_lasso(deliver_cycle(/*deliver_is_fault=*/true),
                               live_options(), &err)
                   .has_value());
  EXPECT_TRUE(err.empty()) << err;

  // With the delivery as a real step the obligation is met.
  EXPECT_FALSE(find_fair_lasso(deliver_cycle(/*deliver_is_fault=*/false),
                               live_options(), &err)
                   .has_value());
  EXPECT_NE(err.find("failed to concretize"), std::string::npos) << err;
}

TEST(LivenessFixtureTest, GoalTrueCyclesRefuteNothing) {
  // Sanity: a perfectly fair cycle whose every node satisfies the goal
  // is not a counterexample to <>[]goal.
  LiveGraph g = sched_cycle(/*fault=*/false);
  for (const std::uint64_t fp : g.order) g.nodes.at(fp).goal = true;
  std::string err;
  EXPECT_FALSE(find_fair_lasso(g, live_options(), &err).has_value());
  EXPECT_TRUE(err.empty()) << err;
}

}  // namespace
}  // namespace wfd::explore
