// Persistent search snapshots (explore/state_store.h) and the
// save/resume path through the explorer: the v3 text format (unit queue
// + node registry + search header) round-trips, corrupt or truncated
// snapshots are rejected, a snapshot never resumes under a different
// scenario or reduction configuration, and — the headline property — a
// search split across budgeted save/resume invocations ends with
// exactly the stats, coverage and violation of a single uninterrupted
// run, even when an invocation was abandoned mid-wave by cooperative
// cancel.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "explore/explorer.h"
#include "explore/scenario.h"
#include "explore/search_config.h"
#include "explore/state_store.h"

namespace wfd::explore {
namespace {

StateSnapshot sample_snapshot() {
  StateSnapshot s;
  s.config.scenario.problem = "consensus-bug";
  s.config.scenario.n = 3;
  s.config.scenario.max_steps = 30;
  s.config.reduction = Reduction::kDpor;
  s.config.dependence = Dependence::kContent;
  s.config.fault_dependence = true;
  s.config.symmetry = true;
  s.config.order_seed = 7;
  s.resume_generation = 3;
  s.wave = 2;
  s.next_unit_id = 6;
  s.stats.nodes = 41;
  s.stats.runs = 11;
  s.stats.steps = 512;
  s.stats.sleep_skips = 9;
  s.stats.fp_prunes = 4;
  s.stats.hb_races = 2;
  s.stats.backtrack_points = 17;
  s.stats.violations = 1;
  s.stats.injected_crashes = 3;
  s.conservative_payloads = {"weird\npayload", "zeta"};
  FrameState f0;
  f0.kind = sim::ChoiceKind::kSchedule;
  f0.labels = {10, 20, 30};
  f0.chosen = 1;
  f0.start = 2;
  f0.sleep = {10};
  f0.explored = {20};
  f0.backtrack = {20, 30};
  FrameState f1;
  f1.kind = sim::ChoiceKind::kFd;
  f1.labels = {0, 1};
  f1.chosen = 0;
  f1.blocked = true;
  UnitState u0;
  u0.id = 2;
  u0.floor = 1;
  u0.path_pending = true;
  u0.frames = {f0, f1};
  UnitState u1;
  u1.id = 5;
  u1.floor = 0;
  u1.path_pending = false;
  u1.frames = {f0};
  s.units = {u0, u1};
  NodeState n0;
  n0.key = {0x123456789abcdef0ull, 0x0fedcba987654321ull};
  n0.assigned = {20, 10};
  NodeState n1;
  n1.key = {7, 8};
  n1.assigned = {};
  s.nodes = {n0, n1};
  s.fingerprints = {{3, 9}, {77, 0}, {12345678901234567890ull, 4}};
  return s;
}

TEST(StateStoreTest, TextRoundTripsEveryField) {
  const StateSnapshot s = sample_snapshot();
  std::string error;
  const auto p = parse_snapshot(to_text(s), &error);
  ASSERT_TRUE(p.has_value()) << error;
  EXPECT_EQ(p->version, StateSnapshot::kVersion);
  EXPECT_EQ(p->config.scenario.problem, s.config.scenario.problem);
  EXPECT_EQ(p->config.scenario.n, s.config.scenario.n);
  EXPECT_EQ(p->config.scenario.max_steps, s.config.scenario.max_steps);
  EXPECT_EQ(p->config.reduction, s.config.reduction);
  EXPECT_EQ(p->config.dependence, s.config.dependence);
  EXPECT_EQ(p->config.fault_dependence, s.config.fault_dependence);
  EXPECT_EQ(p->config.symmetry, s.config.symmetry);
  EXPECT_EQ(p->config.state_fingerprints, s.config.state_fingerprints);
  EXPECT_EQ(p->config.order_seed, s.config.order_seed);
  EXPECT_EQ(p->resume_generation, s.resume_generation);
  EXPECT_EQ(p->wave, s.wave);
  EXPECT_EQ(p->next_unit_id, s.next_unit_id);
  EXPECT_EQ(p->stats.nodes, s.stats.nodes);
  EXPECT_EQ(p->stats.runs, s.stats.runs);
  EXPECT_EQ(p->stats.steps, s.stats.steps);
  EXPECT_EQ(p->stats.sleep_skips, s.stats.sleep_skips);
  EXPECT_EQ(p->stats.fp_prunes, s.stats.fp_prunes);
  EXPECT_EQ(p->stats.hb_races, s.stats.hb_races);
  EXPECT_EQ(p->stats.backtrack_points, s.stats.backtrack_points);
  EXPECT_EQ(p->stats.violations, s.stats.violations);
  EXPECT_EQ(p->stats.injected_crashes, s.stats.injected_crashes);
  EXPECT_EQ(p->stats.exhausted, s.stats.exhausted);
  EXPECT_EQ(p->conservative_payloads, s.conservative_payloads);
  ASSERT_EQ(p->units.size(), s.units.size());
  for (std::size_t i = 0; i < s.units.size(); ++i) {
    EXPECT_EQ(p->units[i].id, s.units[i].id) << i;
    EXPECT_EQ(p->units[i].floor, s.units[i].floor) << i;
    EXPECT_EQ(p->units[i].path_pending, s.units[i].path_pending) << i;
    ASSERT_EQ(p->units[i].frames.size(), s.units[i].frames.size()) << i;
    for (std::size_t j = 0; j < s.units[i].frames.size(); ++j) {
      const FrameState& a = p->units[i].frames[j];
      const FrameState& b = s.units[i].frames[j];
      EXPECT_EQ(a.kind, b.kind) << i << "/" << j;
      EXPECT_EQ(a.chosen, b.chosen) << i << "/" << j;
      EXPECT_EQ(a.start, b.start) << i << "/" << j;
      EXPECT_EQ(a.blocked, b.blocked) << i << "/" << j;
      EXPECT_EQ(a.labels, b.labels) << i << "/" << j;
      EXPECT_EQ(a.sleep, b.sleep) << i << "/" << j;
      EXPECT_EQ(a.explored, b.explored) << i << "/" << j;
      EXPECT_EQ(a.backtrack, b.backtrack) << i << "/" << j;
    }
  }
  ASSERT_EQ(p->nodes.size(), s.nodes.size());
  for (std::size_t i = 0; i < s.nodes.size(); ++i) {
    EXPECT_EQ(p->nodes[i].key, s.nodes[i].key) << i;
    EXPECT_EQ(p->nodes[i].assigned, s.nodes[i].assigned) << i;
  }
  EXPECT_EQ(p->fingerprints, s.fingerprints);
  // Rendering is canonical: parse(text) re-renders byte-identically.
  EXPECT_EQ(to_text(*p), to_text(s));
}

/// A v5 snapshot with the liveness state graph populated: two nodes in
/// insertion order, a self-loop, a cross edge (a delivery carrying its
/// sender — the channel half of the v5 format), an adversary edge, and
/// a truncated unexpanded frontier node.
StateSnapshot liveness_snapshot() {
  StateSnapshot s = sample_snapshot();
  s.config.scenario.problem = "consensus-live-bug";
  s.config.scenario.liveness = "termination";
  s.config.scenario.fd_per_query = false;
  s.config.reduction = Reduction::kNone;
  s.config.symmetry = false;
  s.stats.liveness = true;
  s.stats.graph_states = 2;
  s.stats.graph_edges = 3;
  s.stats.graph_truncated = 1;
  s.graph.root = 0xfeedull;
  s.graph.have_root = true;
  LiveGraphNode& a = s.graph.at(0xfeedull);
  a.goal = false;
  a.enabled = 0b11;
  // Channel bits (live_channel_bit): 0->1 and 1->0 both pending.
  a.deliverable = live_channel_bit(0, 1) | live_channel_bit(1, 0);
  a.expanded = true;
  LiveGraphEdge self;
  self.choices = {0};
  self.dst = 0xfeedull;
  self.sched = 0;
  LiveGraphEdge hop;
  hop.choices = {1, 2, 0};
  hop.dst = 0xbeefull;
  hop.sched = 1;
  hop.sender = 0;
  hop.deliver = true;
  LiveGraphEdge crash;
  crash.choices = {3};
  crash.dst = 0xbeefull;
  crash.sched = kNoProcess;
  crash.fault = true;
  a.edges = {self, hop, crash};
  LiveGraphNode& b = s.graph.at(0xbeefull);
  b.goal = true;
  b.enabled = 0b01;
  b.truncated = true;
  return s;
}

TEST(StateStoreTest, TextRoundTripsLivenessGraph) {
  const StateSnapshot s = liveness_snapshot();
  std::string error;
  const auto p = parse_snapshot(to_text(s), &error);
  ASSERT_TRUE(p.has_value()) << error;
  EXPECT_EQ(p->config.scenario.liveness, "termination");
  EXPECT_TRUE(p->stats.liveness);
  EXPECT_EQ(p->stats.graph_states, s.stats.graph_states);
  EXPECT_EQ(p->stats.graph_edges, s.stats.graph_edges);
  EXPECT_EQ(p->stats.graph_truncated, s.stats.graph_truncated);
  EXPECT_TRUE(p->graph.have_root);
  EXPECT_EQ(p->graph.root, s.graph.root);
  // Insertion order is part of the format: the fair-cycle search is
  // only deterministic in it.
  ASSERT_EQ(p->graph.order, s.graph.order);
  for (const std::uint64_t fp : s.graph.order) {
    const LiveGraphNode& want = s.graph.nodes.at(fp);
    ASSERT_TRUE(p->graph.nodes.count(fp)) << fp;
    const LiveGraphNode& got = p->graph.nodes.at(fp);
    EXPECT_EQ(got.goal, want.goal) << fp;
    EXPECT_EQ(got.enabled, want.enabled) << fp;
    EXPECT_EQ(got.deliverable, want.deliverable) << fp;
    EXPECT_EQ(got.expanded, want.expanded) << fp;
    EXPECT_EQ(got.truncated, want.truncated) << fp;
    ASSERT_EQ(got.edges.size(), want.edges.size()) << fp;
    for (std::size_t i = 0; i < want.edges.size(); ++i) {
      EXPECT_EQ(got.edges[i].choices, want.edges[i].choices) << fp << "/" << i;
      EXPECT_EQ(got.edges[i].dst, want.edges[i].dst) << fp << "/" << i;
      EXPECT_EQ(got.edges[i].sched, want.edges[i].sched) << fp << "/" << i;
      EXPECT_EQ(got.edges[i].sender, want.edges[i].sender)
          << fp << "/" << i;
      EXPECT_EQ(got.edges[i].fault, want.edges[i].fault) << fp << "/" << i;
      EXPECT_EQ(got.edges[i].deliver, want.edges[i].deliver)
          << fp << "/" << i;
    }
  }
  // Rendering is canonical here too.
  EXPECT_EQ(to_text(*p), to_text(s));
}

TEST(StateStoreTest, GraphSectionIsStructurallyValidated) {
  const std::string good = to_text(liveness_snapshot());
  std::string error;
  ASSERT_TRUE(parse_snapshot(good, &error).has_value()) << error;

  // A dropped edge line leaves its node owing edges.
  std::string missing = good;
  const std::size_t at = missing.find("gedge=");
  ASSERT_NE(at, std::string::npos);
  missing.erase(at, missing.find('\n', at) - at + 1);
  EXPECT_FALSE(parse_snapshot(missing, &error).has_value());
  EXPECT_NE(error.find("edges"), std::string::npos) << error;

  // An edge with no open node is orphaned.
  std::string orphan = good;
  const std::size_t gn = orphan.find("gnode=");
  ASSERT_NE(gn, std::string::npos);
  orphan.insert(gn, "gedge=d=1;p=1;f=0;dv=0;c=0\n");
  EXPECT_FALSE(parse_snapshot(orphan, &error).has_value());

  // The count trailer catches a silently lost node.
  std::string fewer = good;
  const std::size_t total = fewer.find("gnodes_total=2");
  ASSERT_NE(total, std::string::npos);
  fewer.replace(total, std::string("gnodes_total=2").size(),
                "gnodes_total=3");
  EXPECT_FALSE(parse_snapshot(fewer, &error).has_value());
}

TEST(StateStoreTest, ParseRejectsCorruption) {
  const std::string good = to_text(sample_snapshot());
  std::string error;
  ASSERT_TRUE(parse_snapshot(good, &error).has_value()) << error;

  // Truncation anywhere loses the end marker or a count trailer.
  for (const std::size_t keep : {good.size() / 3, good.size() - 5}) {
    EXPECT_FALSE(parse_snapshot(good.substr(0, keep), &error).has_value())
        << "accepted a " << keep << "-byte prefix";
  }
  // A dropped frame line leaves its unit owing frames.
  std::string missing = good;
  const std::size_t at = missing.find("frame=");
  ASSERT_NE(at, std::string::npos);
  missing.erase(at, missing.find('\n', at) - at + 1);
  EXPECT_FALSE(parse_snapshot(missing, &error).has_value());
  EXPECT_NE(error.find("frames"), std::string::npos) << error;

  // Unknown versions are rejected, not guessed at.
  std::string vers = good;
  const std::size_t v = vers.find("snapshot_version=");
  ASSERT_NE(v, std::string::npos);
  vers[v + std::string("snapshot_version=").size()] = '9';
  EXPECT_FALSE(parse_snapshot(vers, &error).has_value());
  EXPECT_NE(error.find("snapshot_version"), std::string::npos) << error;

  // Overflowing numerics must fail loudly instead of wrapping: 2^64 in a
  // stats field and in a fingerprint entry.
  EXPECT_FALSE(
      parse_snapshot(good + "nodes=18446744073709551616\n", &error)
          .has_value());
  std::string badfps = good;
  const std::size_t fp = badfps.find("fps=");
  ASSERT_NE(fp, std::string::npos);
  badfps.insert(fp + 4, "99999999999999999999:1,");
  EXPECT_FALSE(parse_snapshot(badfps, &error).has_value());

  // A frame whose chosen index escapes its menu is structurally invalid
  // (first frame's menu has three entries; point `c` past it).
  std::string badframe = good;
  const std::size_t fr = badframe.find("frame=k=0;c=1");
  ASSERT_NE(fr, std::string::npos);
  badframe.replace(fr, std::string("frame=k=0;c=1").size(),
                   "frame=k=0;c=5");
  EXPECT_FALSE(parse_snapshot(badframe, &error).has_value());
  EXPECT_NE(error.find("bad frame"), std::string::npos) << error;

  // A frame with no owning unit (or past its unit's count) is orphaned.
  std::string orphan = good;
  const std::size_t u = orphan.find("unit=");
  ASSERT_NE(u, std::string::npos);
  orphan.insert(u, "frame=k=0;c=0;s=0;b=0;l=1,2;sl=;ex=;bt=\n");
  EXPECT_FALSE(parse_snapshot(orphan, &error).has_value());
  EXPECT_NE(error.find("owning unit"), std::string::npos) << error;

  // A unit whose floor exceeds its frame count could never backtrack.
  std::string floored = good;
  const std::size_t uf = floored.find("unit=id=5;floor=0");
  ASSERT_NE(uf, std::string::npos);
  floored.replace(uf, std::string("unit=id=5;floor=0").size(),
                  "unit=id=5;floor=9");
  EXPECT_FALSE(parse_snapshot(floored, &error).has_value());
  EXPECT_NE(error.find("floor"), std::string::npos) << error;
}

TEST(StateStoreTest, OldFormatVersionIsIncompatibleNotCorrupt) {
  // A well-formed snapshot of a previous format version must be refused
  // as an *incompatibility* (wrong_version), with a message that tells
  // the user what to do — not lumped in with corrupt files. The v3->v4
  // bump (liveness / fair-cycle search) added the state graph and the
  // graph-backed stats: a v3 frontier lacks the graph edges its
  // fingerprint prunes already merged away, so resuming it under a v4
  // build could silently certify "no fair cycle" on a graph with holes.
  // The v4->v5 bump (channel-granular fairness) rewired the graph's
  // dl= bits from per-receiver to per-directed-channel and added the
  // gedge sender field: a v4 graph read under v5 semantics would
  // mistake receiver bits for sender-0 channel bits and carry
  // sender-less delivery edges, so it is refused the same way.
  const std::string tag =
      "snapshot_version=" + std::to_string(StateSnapshot::kVersion);
  const std::string want_current =
      "version " + std::to_string(StateSnapshot::kVersion);
  for (const int old_version : {2, 3, 4}) {
    std::string old = to_text(sample_snapshot());
    const std::size_t at = old.find(tag);
    ASSERT_NE(at, std::string::npos);
    old.replace(at, tag.size(),
                "snapshot_version=" + std::to_string(old_version));

    std::string error;
    bool wrong_version = false;
    EXPECT_FALSE(parse_snapshot(old, &error, &wrong_version).has_value());
    EXPECT_TRUE(wrong_version) << old_version;
    // The diagnosis names both versions and the way out.
    EXPECT_NE(error.find("unsupported snapshot_version " +
                         std::to_string(old_version)),
              std::string::npos)
        << error;
    EXPECT_NE(error.find(want_current), std::string::npos) << error;
    EXPECT_NE(error.find("--resume"), std::string::npos) << error;
  }

  // Corruption, by contrast, must NOT claim a version mismatch.
  std::string error;
  bool wrong_version = true;
  EXPECT_FALSE(
      parse_snapshot("not a snapshot\n", &error, &wrong_version).has_value());
  EXPECT_FALSE(wrong_version);
}

TEST(StateStoreTest, ResumeMismatchNamesTheField) {
  const StateSnapshot snap = sample_snapshot();
  // The snapshot's own search header resumes cleanly; execution-shape
  // knobs (threads, budgets, paths) may differ freely.
  SearchConfig cfg = snap.config;
  cfg.threads = 8;
  cfg.max_states = 1;
  cfg.budget_states = 99;
  cfg.save_path = "elsewhere.wfds";
  EXPECT_EQ(resume_mismatch(snap, cfg), "");

  SearchConfig other = cfg;
  other.scenario.n = 4;
  const std::string why = resume_mismatch(snap, other);
  EXPECT_NE(why.find("different scenario"), std::string::npos) << why;
  EXPECT_NE(why.find("n=3"), std::string::npos) << why;
  EXPECT_NE(why.find("n=4"), std::string::npos) << why;

  SearchConfig red = cfg;
  red.reduction = Reduction::kNone;
  EXPECT_NE(resume_mismatch(snap, red).find("reduction"), std::string::npos);
  SearchConfig dep = cfg;
  dep.dependence = Dependence::kProcess;
  EXPECT_NE(resume_mismatch(snap, dep).find("dependence"),
            std::string::npos);
  SearchConfig fdep = cfg;
  fdep.fault_dependence = false;
  EXPECT_NE(resume_mismatch(snap, fdep).find("fault_dependence"),
            std::string::npos);
  SearchConfig sym = cfg;
  sym.symmetry = false;
  EXPECT_NE(resume_mismatch(snap, sym).find("symmetry"), std::string::npos);
  SearchConfig fps = cfg;
  fps.state_fingerprints = false;
  EXPECT_NE(resume_mismatch(snap, fps).find("fingerprint"),
            std::string::npos);
  SearchConfig seed = cfg;
  seed.order_seed = 8;
  EXPECT_NE(resume_mismatch(snap, seed).find("order_seed"),
            std::string::npos);
}

TEST(StateStoreTest, SaveAndLoadThroughDisk) {
  const std::string path = testing::TempDir() + "wfd_state_store_disk.wfds";
  const StateSnapshot s = sample_snapshot();
  std::string error;
  ASSERT_TRUE(save_snapshot(path, s, &error)) << error;
  const auto p = load_snapshot(path, &error);
  ASSERT_TRUE(p.has_value()) << error;
  EXPECT_EQ(to_text(*p), to_text(s));
  // No temp file left behind, and a missing path reports cleanly.
  std::remove(path.c_str());
  EXPECT_FALSE(load_snapshot(path + ".tmp", &error).has_value());
  EXPECT_FALSE(load_snapshot(path, &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// Explorer-level save/resume.

ScenarioOptions small_clean_options() {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 3;
  opt.max_steps = 10;
  opt.fd_per_query = false;  // Static detector history: small tree.
  return opt;
}

ScenarioOptions bug_options() {
  ScenarioOptions opt;
  opt.problem = "consensus-bug";
  opt.n = 3;
  opt.max_steps = 30;
  return opt;
}

struct SplitResult {
  ExploreReport last;
  std::optional<Counterexample> cex;
  int resumes = 0;
};

/// Drives the wfd_check loop in-process: run with a per-invocation
/// budget, save, resume from the save, until the tree is done or a
/// violation is claimed.
SplitResult run_split(const ScenarioOptions& scenario,
                      const SearchConfig& base, std::uint64_t budget,
                      const std::string& path) {
  const ScenarioBuilder build = ScenarioFactory(scenario).builder();
  SplitResult out;
  std::remove(path.c_str());
  for (int i = 0; i < 200; ++i) {
    SearchConfig cfg = base;
    cfg.budget_states = budget;
    cfg.save_path = path;
    cfg.scenario = scenario;
    if (i > 0) cfg.resume_path = path;
    Explorer ex(build, cfg);
    out.last = ex.run();
    out.resumes = i;
    EXPECT_EQ(out.last.resume_error, "");
    EXPECT_EQ(out.last.save_error, "");
    EXPECT_EQ(out.last.resumed, i > 0);
    if (out.last.cex.has_value()) {
      out.cex = out.last.cex;
      break;
    }
    if (out.last.stats.exhausted) break;
  }
  std::remove(path.c_str());
  return out;
}

void expect_stats_eq(const ExploreStats& a, const ExploreStats& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.sleep_skips, b.sleep_skips);
  EXPECT_EQ(a.fp_prunes, b.fp_prunes);
  EXPECT_EQ(a.hb_races, b.hb_races);
  EXPECT_EQ(a.backtrack_points, b.backtrack_points);
  EXPECT_EQ(a.commute_skips, b.commute_skips);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.liveness, b.liveness);
  EXPECT_EQ(a.graph_states, b.graph_states);
  EXPECT_EQ(a.graph_edges, b.graph_edges);
  EXPECT_EQ(a.graph_truncated, b.graph_truncated);
}

SearchConfig scenario_config(const ScenarioOptions& scenario) {
  SearchConfig cfg;
  cfg.scenario = scenario;
  return cfg;
}

TEST(ResumeTest, SplitSearchMatchesSingleShot) {
  const ScenarioOptions scenario = small_clean_options();
  Explorer single(ScenarioFactory(scenario).builder(),
                  scenario_config(scenario));
  const ExploreReport whole = single.run();
  ASSERT_TRUE(whole.stats.exhausted);

  const SplitResult split =
      run_split(scenario, scenario_config(scenario), 300,
                testing::TempDir() + "wfd_resume_clean.wfds");
  ASSERT_GE(split.resumes, 2) << "budget too large to exercise resume";
  expect_stats_eq(split.last.stats, whole.stats);
  EXPECT_EQ(coverage(split.last.stats), coverage(whole.stats));
  EXPECT_EQ(split.last.resume_generation,
            static_cast<std::uint64_t>(split.resumes));
  EXPECT_FALSE(split.cex.has_value());
}

TEST(ResumeTest, SplitSearchFindsTheSameViolation) {
  const ScenarioOptions scenario = bug_options();
  Explorer single(ScenarioFactory(scenario).builder(),
                  scenario_config(scenario));
  const ExploreReport whole = single.run();
  ASSERT_TRUE(whole.cex.has_value());

  const SplitResult split =
      run_split(scenario, scenario_config(scenario), 5,
                testing::TempDir() + "wfd_resume_bug.wfds");
  ASSERT_GE(split.resumes, 1) << "violation found before any resume";
  ASSERT_TRUE(split.cex.has_value());
  EXPECT_EQ(split.cex->violation.property, whole.cex->violation.property);
  // Resume continues the very same wave schedule, so the violating run
  // replays the identical decision sequence the single-shot search
  // found.
  EXPECT_EQ(split.cex->decisions, whole.cex->decisions);
}

ScenarioOptions liveness_bug_options() {
  ScenarioOptions opt;
  opt.problem = "consensus-live-bug";
  opt.n = 2;
  opt.max_steps = 12;
  opt.fd_per_query = false;  // Oracle-backed liveness needs --fd=static.
  opt.liveness = "termination";
  return opt;
}

/// Liveness requires --reduction=none, no symmetry (search_config.cpp
/// validation); fingerprints stay on — the graph is keyed by them.
SearchConfig liveness_config(const ScenarioOptions& scenario) {
  SearchConfig cfg;
  cfg.scenario = scenario;
  cfg.reduction = Reduction::kNone;
  cfg.symmetry = false;
  return cfg;
}

TEST(ResumeTest, LivenessSplitSearchReportsTheSameLasso) {
  // A liveness run split into installments is the acid test of the v4
  // graph round-trip: the fair-cycle search only runs at exhaustion, on
  // the graph merged across every installment. Any node or edge lost in
  // save/resume would change (or lose) the lasso.
  const ScenarioOptions scenario = liveness_bug_options();
  Explorer single(ScenarioFactory(scenario).builder(),
                  liveness_config(scenario));
  const ExploreReport whole = single.run();
  ASSERT_TRUE(whole.cex.has_value());
  ASSERT_FALSE(whole.cex->loop.empty());

  const SplitResult split =
      run_split(scenario, liveness_config(scenario), 40,
                testing::TempDir() + "wfd_resume_lasso.wfds");
  ASSERT_GE(split.resumes, 1) << "lasso found before any resume";
  ASSERT_TRUE(split.cex.has_value());
  EXPECT_EQ(split.cex->decisions, whole.cex->decisions);
  EXPECT_EQ(split.cex->loop, whole.cex->loop);
  EXPECT_EQ(split.cex->violation.property, whole.cex->violation.property);
}

TEST(ResumeTest, LivenessSplitSearchMatchesSingleShotOnCleanTree) {
  // The healthy twin: split exploration must end with the identical
  // graph stats and still certify "no fair cycle" at the end.
  ScenarioOptions scenario;
  scenario.problem = "consensus";
  scenario.n = 2;
  scenario.max_steps = 12;
  scenario.fd_per_query = false;
  scenario.liveness = "termination";
  Explorer single(ScenarioFactory(scenario).builder(),
                  liveness_config(scenario));
  const ExploreReport whole = single.run();
  ASSERT_TRUE(whole.stats.exhausted);
  ASSERT_TRUE(whole.fair_cycle_checked);
  ASSERT_FALSE(whole.cex.has_value());

  const SplitResult split =
      run_split(scenario, liveness_config(scenario), 60,
                testing::TempDir() + "wfd_resume_liveclean.wfds");
  ASSERT_GE(split.resumes, 1) << "budget too large to exercise resume";
  EXPECT_TRUE(split.last.fair_cycle_checked);
  EXPECT_FALSE(split.cex.has_value());
  expect_stats_eq(split.last.stats, whole.stats);
  EXPECT_EQ(coverage(split.last.stats), coverage(whole.stats));
}

TEST(ResumeTest, MismatchedScenarioIsRejected) {
  const ScenarioOptions bug = bug_options();
  const std::string path = testing::TempDir() + "wfd_resume_mismatch.wfds";
  SearchConfig save = scenario_config(bug);
  save.budget_states = 5;
  save.save_path = path;
  Explorer first(ScenarioFactory(bug).builder(), save);
  ASSERT_EQ(first.run().save_error, "");

  ScenarioOptions clean = bug;
  clean.problem = "consensus";
  SearchConfig cfg = scenario_config(clean);
  cfg.resume_path = path;
  Explorer second(ScenarioFactory(clean).builder(), cfg);
  const ExploreReport rep = second.run();
  EXPECT_TRUE(rep.resume_rejected);
  EXPECT_NE(rep.resume_error.find("different scenario"), std::string::npos)
      << rep.resume_error;
  // Nothing ran.
  EXPECT_EQ(rep.stats.nodes, 0u);
  EXPECT_EQ(rep.stats.runs, 0u);
  std::remove(path.c_str());
}

TEST(ResumeTest, OldFormatSnapshotIsRejectedAsIncompatible) {
  // End-to-end exit-2 contract: Explorer resume from a v2 file sets
  // resume_rejected (wfd_check maps that to the incompatible-snapshot
  // exit code) and runs nothing.
  const ScenarioOptions scenario = bug_options();
  const std::string path = testing::TempDir() + "wfd_resume_oldver.wfds";
  SearchConfig save = scenario_config(scenario);
  save.budget_states = 5;
  save.save_path = path;
  Explorer first(ScenarioFactory(scenario).builder(), save);
  ASSERT_EQ(first.run().save_error, "");

  // Downgrade the stored version tag in place.
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
    std::fclose(f);
  }
  const std::string tag =
      "snapshot_version=" + std::to_string(StateSnapshot::kVersion);
  const std::size_t at = text.find(tag);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, tag.size(), "snapshot_version=2");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }

  SearchConfig cfg = scenario_config(scenario);
  cfg.resume_path = path;
  Explorer second(ScenarioFactory(scenario).builder(), cfg);
  const ExploreReport rep = second.run();
  EXPECT_TRUE(rep.resume_rejected);
  EXPECT_NE(rep.resume_error.find("snapshot_version"), std::string::npos)
      << rep.resume_error;
  EXPECT_EQ(rep.stats.nodes, 0u);
  EXPECT_EQ(rep.stats.runs, 0u);
  std::remove(path.c_str());
}

TEST(ResumeTest, CorruptSnapshotIsRejectedWithoutRunning) {
  const std::string path = testing::TempDir() + "wfd_resume_corrupt.wfds";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a snapshot\n", f);
    std::fclose(f);
  }
  const ScenarioOptions scenario = bug_options();
  SearchConfig cfg = scenario_config(scenario);
  cfg.resume_path = path;
  Explorer ex(ScenarioFactory(scenario).builder(), cfg);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.resume_error.empty());
  EXPECT_FALSE(rep.resume_rejected);  // Corrupt, not incompatible.
  EXPECT_EQ(rep.stats.nodes, 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Cooperative cancel (the campaign stop-flag regression).

TEST(CancelTest, PreSetCancelStopsBeforeAnyExpansion) {
  std::atomic<bool> stop{true};
  SearchConfig cfg = scenario_config(small_clean_options());
  cfg.cancel = &stop;
  Explorer ex(ScenarioFactory(small_clean_options()).builder(), cfg);
  const ExploreReport rep = ex.run();
  EXPECT_TRUE(rep.cancelled);
  EXPECT_EQ(rep.stats.nodes, 0u);
  EXPECT_FALSE(rep.stats.exhausted);
  EXPECT_EQ(coverage(rep.stats), Coverage::kBudget);
}

TEST(CancelTest, CancelledSearchNeverClaimsExhaustion) {
  // Flip the flag from another thread mid-search: whenever it lands, the
  // explorer must come back promptly, report cancelled, and refuse to
  // call the tree exhausted. (On a machine slow enough that the flag is
  // already set at the first step, this degrades to the pre-set case —
  // every assertion below still holds.)
  ScenarioOptions opt = small_clean_options();
  opt.max_steps = 40;  // Big enough that the search outlives the timer.
  opt.fd_per_query = true;
  std::atomic<bool> stop{false};
  SearchConfig cfg = scenario_config(opt);
  cfg.max_states = 100000000;
  cfg.cancel = &stop;
  Explorer ex(ScenarioFactory(opt).builder(), cfg);
  std::thread timer([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true, std::memory_order_relaxed);
  });
  const ExploreReport rep = ex.run();
  timer.join();
  EXPECT_TRUE(rep.cancelled);
  EXPECT_FALSE(rep.stats.exhausted);
  EXPECT_EQ(coverage(rep.stats), Coverage::kBudget);
}

TEST(CancelTest, CancelledRunLeavesNoTraceInTheSnapshot) {
  // The acid test of the wave discard: cancel an invocation at a random
  // point mid-search, snapshot it, then resume with no cancel and run to
  // exhaustion. If the abandoned wave leaked units, fingerprints or
  // stats into the snapshot, the final totals would diverge from the
  // uninterrupted run's.
  const ScenarioOptions scenario = small_clean_options();
  const ScenarioBuilder build = ScenarioFactory(scenario).builder();
  Explorer single(build, scenario_config(scenario));
  const ExploreReport whole = single.run();
  ASSERT_TRUE(whole.stats.exhausted);

  const std::string path = testing::TempDir() + "wfd_resume_cancel.wfds";
  std::remove(path.c_str());
  std::atomic<bool> stop{false};
  SearchConfig first = scenario_config(scenario);
  first.cancel = &stop;
  first.save_path = path;
  Explorer cancelled(build, first);
  std::thread timer([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop.store(true, std::memory_order_relaxed);
  });
  const ExploreReport partial = cancelled.run();
  timer.join();
  ASSERT_EQ(partial.save_error, "");

  ExploreReport last = partial;
  for (int i = 0; !last.stats.exhausted && i < 200; ++i) {
    SearchConfig cfg = scenario_config(scenario);
    cfg.budget_states = 500;
    cfg.save_path = path;
    cfg.resume_path = path;
    Explorer ex(build, cfg);
    last = ex.run();
    ASSERT_EQ(last.resume_error, "") << last.resume_error;
  }
  expect_stats_eq(last.stats, whole.stats);
  EXPECT_EQ(coverage(last.stats), coverage(whole.stats));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wfd::explore
