// Persistent search snapshots (explore/state_store.h) and the
// save/resume path through the explorer: the text format round-trips,
// corrupt or truncated snapshots are rejected, a snapshot never resumes
// under a different scenario or reduction configuration, and — the
// headline property — a search split across budgeted save/resume
// invocations ends with exactly the stats, coverage and violation of a
// single uninterrupted run, even when an invocation was abandoned
// mid-run by cooperative cancel.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "explore/explorer.h"
#include "explore/scenario.h"
#include "explore/state_store.h"

namespace wfd::explore {
namespace {

StateSnapshot sample_snapshot() {
  StateSnapshot s;
  s.scenario.problem = "consensus-bug";
  s.scenario.n = 3;
  s.scenario.max_steps = 30;
  s.reduction = Reduction::kDpor;
  s.dependence = Dependence::kContent;
  s.order_seed = 7;
  s.resume_generation = 3;
  s.path_pending = true;
  s.stats.nodes = 41;
  s.stats.runs = 11;
  s.stats.steps = 512;
  s.stats.sleep_skips = 9;
  s.stats.fp_prunes = 4;
  s.stats.hb_races = 2;
  s.stats.backtrack_points = 17;
  s.stats.violations = 1;
  s.conservative_payloads = {"weird\npayload", "zeta"};
  FrameState f0;
  f0.kind = sim::ChoiceKind::kSchedule;
  f0.labels = {10, 20, 30};
  f0.chosen = 1;
  f0.start = 2;
  f0.sleep = {10};
  f0.explored = {20};
  f0.backtrack = {20, 30};
  FrameState f1;
  f1.kind = sim::ChoiceKind::kFd;
  f1.labels = {0, 1};
  f1.chosen = 0;
  f1.blocked = true;
  s.frames = {f0, f1};
  s.fingerprints = {{3, 9}, {77, 0}, {12345678901234567890ull, 4}};
  return s;
}

TEST(StateStoreTest, TextRoundTripsEveryField) {
  const StateSnapshot s = sample_snapshot();
  std::string error;
  const auto p = parse_snapshot(to_text(s), &error);
  ASSERT_TRUE(p.has_value()) << error;
  EXPECT_EQ(p->version, StateSnapshot::kVersion);
  EXPECT_EQ(p->scenario.problem, s.scenario.problem);
  EXPECT_EQ(p->scenario.n, s.scenario.n);
  EXPECT_EQ(p->scenario.max_steps, s.scenario.max_steps);
  EXPECT_EQ(p->reduction, s.reduction);
  EXPECT_EQ(p->dependence, s.dependence);
  EXPECT_EQ(p->state_fingerprints, s.state_fingerprints);
  EXPECT_EQ(p->order_seed, s.order_seed);
  EXPECT_EQ(p->resume_generation, s.resume_generation);
  EXPECT_EQ(p->path_pending, s.path_pending);
  EXPECT_EQ(p->stats.nodes, s.stats.nodes);
  EXPECT_EQ(p->stats.runs, s.stats.runs);
  EXPECT_EQ(p->stats.steps, s.stats.steps);
  EXPECT_EQ(p->stats.sleep_skips, s.stats.sleep_skips);
  EXPECT_EQ(p->stats.fp_prunes, s.stats.fp_prunes);
  EXPECT_EQ(p->stats.hb_races, s.stats.hb_races);
  EXPECT_EQ(p->stats.backtrack_points, s.stats.backtrack_points);
  EXPECT_EQ(p->stats.violations, s.stats.violations);
  EXPECT_EQ(p->stats.exhausted, s.stats.exhausted);
  EXPECT_EQ(p->conservative_payloads, s.conservative_payloads);
  ASSERT_EQ(p->frames.size(), s.frames.size());
  for (std::size_t i = 0; i < s.frames.size(); ++i) {
    EXPECT_EQ(p->frames[i].kind, s.frames[i].kind) << i;
    EXPECT_EQ(p->frames[i].chosen, s.frames[i].chosen) << i;
    EXPECT_EQ(p->frames[i].start, s.frames[i].start) << i;
    EXPECT_EQ(p->frames[i].blocked, s.frames[i].blocked) << i;
    EXPECT_EQ(p->frames[i].labels, s.frames[i].labels) << i;
    EXPECT_EQ(p->frames[i].sleep, s.frames[i].sleep) << i;
    EXPECT_EQ(p->frames[i].explored, s.frames[i].explored) << i;
    EXPECT_EQ(p->frames[i].backtrack, s.frames[i].backtrack) << i;
  }
  EXPECT_EQ(p->fingerprints, s.fingerprints);
  // Rendering is canonical: parse(text) re-renders byte-identically.
  EXPECT_EQ(to_text(*p), to_text(s));
}

TEST(StateStoreTest, ParseRejectsCorruption) {
  const std::string good = to_text(sample_snapshot());
  std::string error;
  ASSERT_TRUE(parse_snapshot(good, &error).has_value()) << error;

  // Truncation anywhere loses the end marker or a count trailer.
  for (const std::size_t keep : {good.size() / 3, good.size() - 5}) {
    EXPECT_FALSE(parse_snapshot(good.substr(0, keep), &error).has_value())
        << "accepted a " << keep << "-byte prefix";
  }
  // A dropped frame line fails the frames_total check.
  std::string missing = good;
  const std::size_t at = missing.find("frame=");
  ASSERT_NE(at, std::string::npos);
  missing.erase(at, missing.find('\n', at) - at + 1);
  EXPECT_FALSE(parse_snapshot(missing, &error).has_value());
  EXPECT_NE(error.find("frame count"), std::string::npos) << error;

  // Unknown versions are rejected, not guessed at.
  std::string vers = good;
  const std::size_t v = vers.find("snapshot_version=");
  ASSERT_NE(v, std::string::npos);
  vers[v + std::string("snapshot_version=").size()] = '9';
  EXPECT_FALSE(parse_snapshot(vers, &error).has_value());
  EXPECT_NE(error.find("snapshot_version"), std::string::npos) << error;

  // Overflowing numerics must fail loudly instead of wrapping: 2^64 in a
  // stats field and in a fingerprint entry.
  EXPECT_FALSE(
      parse_snapshot(good + "nodes=18446744073709551616\n", &error)
          .has_value());
  std::string badfps = good;
  const std::size_t fp = badfps.find("fps=");
  ASSERT_NE(fp, std::string::npos);
  badfps.insert(fp + 4, "99999999999999999999:1,");
  EXPECT_FALSE(parse_snapshot(badfps, &error).has_value());

  // A frame whose chosen index escapes its menu is structurally invalid.
  EXPECT_FALSE(
      parse_snapshot(good + "frame=k=0;c=5;s=0;b=0;l=1,2;sl=;ex=;bt=\n",
                     &error)
          .has_value());
  EXPECT_NE(error.find("bad frame"), std::string::npos) << error;
}

TEST(StateStoreTest, OldFormatVersionIsIncompatibleNotCorrupt) {
  // A well-formed snapshot of a previous format version must be refused
  // as an *incompatibility* (wrong_version), with a message that tells
  // the user what to do — not lumped in with corrupt files. The v1->v2
  // bump (fault injection) changed what frame labels and fingerprints
  // mean, so resuming a v1 frontier under a v2 build would silently
  // explore the wrong tree.
  std::string old = to_text(sample_snapshot());
  const std::string tag =
      "snapshot_version=" + std::to_string(StateSnapshot::kVersion);
  const std::size_t at = old.find(tag);
  ASSERT_NE(at, std::string::npos);
  old.replace(at, tag.size(), "snapshot_version=1");

  std::string error;
  bool wrong_version = false;
  EXPECT_FALSE(parse_snapshot(old, &error, &wrong_version).has_value());
  EXPECT_TRUE(wrong_version);
  EXPECT_NE(error.find("snapshot_version 1"), std::string::npos) << error;
  EXPECT_NE(error.find("version 2"), std::string::npos) << error;
  EXPECT_NE(error.find("--resume"), std::string::npos) << error;

  // Corruption, by contrast, must NOT claim a version mismatch.
  wrong_version = true;
  EXPECT_FALSE(
      parse_snapshot("not a snapshot\n", &error, &wrong_version).has_value());
  EXPECT_FALSE(wrong_version);
}

TEST(StateStoreTest, ResumeMismatchNamesTheField) {
  const StateSnapshot snap = sample_snapshot();
  ExplorerOptions eo;
  eo.order_seed = snap.order_seed;
  EXPECT_EQ(resume_mismatch(snap, snap.scenario, eo), "");

  ScenarioOptions other = snap.scenario;
  other.n = 4;
  const std::string why = resume_mismatch(snap, other, eo);
  EXPECT_NE(why.find("different scenario"), std::string::npos) << why;
  EXPECT_NE(why.find("n=3"), std::string::npos) << why;
  EXPECT_NE(why.find("n=4"), std::string::npos) << why;

  ExplorerOptions red = eo;
  red.reduction = Reduction::kNone;
  EXPECT_NE(resume_mismatch(snap, snap.scenario, red).find("--reduction"),
            std::string::npos);
  ExplorerOptions dep = eo;
  dep.dependence = Dependence::kProcess;
  EXPECT_NE(resume_mismatch(snap, snap.scenario, dep).find("--dep"),
            std::string::npos);
  ExplorerOptions fps = eo;
  fps.state_fingerprints = false;
  EXPECT_NE(resume_mismatch(snap, snap.scenario, fps).find("fingerprint"),
            std::string::npos);
  ExplorerOptions seed = eo;
  seed.order_seed = 8;
  EXPECT_NE(resume_mismatch(snap, snap.scenario, seed).find("order_seed"),
            std::string::npos);
}

TEST(StateStoreTest, SaveAndLoadThroughDisk) {
  const std::string path = testing::TempDir() + "wfd_state_store_disk.wfds";
  const StateSnapshot s = sample_snapshot();
  std::string error;
  ASSERT_TRUE(save_snapshot(path, s, &error)) << error;
  const auto p = load_snapshot(path, &error);
  ASSERT_TRUE(p.has_value()) << error;
  EXPECT_EQ(to_text(*p), to_text(s));
  // No temp file left behind, and a missing path reports cleanly.
  std::remove(path.c_str());
  EXPECT_FALSE(load_snapshot(path + ".tmp", &error).has_value());
  EXPECT_FALSE(load_snapshot(path, &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

// ---------------------------------------------------------------------
// Explorer-level save/resume.

ScenarioOptions small_clean_options() {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 3;
  opt.max_steps = 10;
  opt.fd_per_query = false;  // Static detector history: small tree.
  return opt;
}

ScenarioOptions bug_options() {
  ScenarioOptions opt;
  opt.problem = "consensus-bug";
  opt.n = 3;
  opt.max_steps = 30;
  return opt;
}

struct SplitResult {
  ExploreReport last;
  std::optional<Counterexample> cex;
  int resumes = 0;
};

/// Drives the wfd_check loop in-process: run with a per-invocation
/// budget, save, resume from the save, until the tree is done or a
/// violation is claimed.
SplitResult run_split(const ScenarioOptions& scenario,
                      const ExplorerOptions& base, std::uint64_t budget,
                      const std::string& path) {
  const ScenarioBuilder build = ScenarioFactory(scenario).builder();
  SplitResult out;
  std::remove(path.c_str());
  for (int i = 0; i < 200; ++i) {
    ExplorerOptions eo = base;
    eo.budget_states = budget;
    eo.save_path = path;
    eo.scenario = scenario;
    if (i > 0) eo.resume_path = path;
    Explorer ex(build, eo);
    out.last = ex.run();
    out.resumes = i;
    EXPECT_EQ(out.last.resume_error, "");
    EXPECT_EQ(out.last.save_error, "");
    EXPECT_EQ(out.last.resumed, i > 0);
    if (out.last.cex.has_value()) {
      out.cex = out.last.cex;
      break;
    }
    if (out.last.stats.exhausted) break;
  }
  std::remove(path.c_str());
  return out;
}

void expect_stats_eq(const ExploreStats& a, const ExploreStats& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.sleep_skips, b.sleep_skips);
  EXPECT_EQ(a.fp_prunes, b.fp_prunes);
  EXPECT_EQ(a.hb_races, b.hb_races);
  EXPECT_EQ(a.backtrack_points, b.backtrack_points);
  EXPECT_EQ(a.commute_skips, b.commute_skips);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.exhausted, b.exhausted);
}

TEST(ResumeTest, SplitSearchMatchesSingleShot) {
  const ScenarioOptions scenario = small_clean_options();
  Explorer single(ScenarioFactory(scenario).builder(), ExplorerOptions{});
  const ExploreReport whole = single.run();
  ASSERT_TRUE(whole.stats.exhausted);

  const SplitResult split =
      run_split(scenario, ExplorerOptions{}, 300,
                testing::TempDir() + "wfd_resume_clean.wfds");
  ASSERT_GE(split.resumes, 2) << "budget too large to exercise resume";
  expect_stats_eq(split.last.stats, whole.stats);
  EXPECT_EQ(coverage(split.last.stats), coverage(whole.stats));
  EXPECT_EQ(split.last.resume_generation,
            static_cast<std::uint64_t>(split.resumes));
  EXPECT_FALSE(split.cex.has_value());
}

TEST(ResumeTest, SplitSearchFindsTheSameViolation) {
  const ScenarioOptions scenario = bug_options();
  Explorer single(ScenarioFactory(scenario).builder(), ExplorerOptions{});
  const ExploreReport whole = single.run();
  ASSERT_TRUE(whole.cex.has_value());

  const SplitResult split =
      run_split(scenario, ExplorerOptions{}, 5,
                testing::TempDir() + "wfd_resume_bug.wfds");
  ASSERT_GE(split.resumes, 1) << "violation found before any resume";
  ASSERT_TRUE(split.cex.has_value());
  EXPECT_EQ(split.cex->violation.property, whole.cex->violation.property);
  // Resume continues the very same DFS, so the violating run replays the
  // identical decision sequence the single-shot search found.
  EXPECT_EQ(split.cex->decisions, whole.cex->decisions);
}

TEST(ResumeTest, MismatchedScenarioIsRejected) {
  const ScenarioOptions bug = bug_options();
  const std::string path = testing::TempDir() + "wfd_resume_mismatch.wfds";
  ExplorerOptions save;
  save.budget_states = 5;
  save.save_path = path;
  save.scenario = bug;
  Explorer first(ScenarioFactory(bug).builder(), save);
  ASSERT_EQ(first.run().save_error, "");

  ScenarioOptions clean = bug;
  clean.problem = "consensus";
  ExplorerOptions eo;
  eo.resume_path = path;
  eo.scenario = clean;
  Explorer second(ScenarioFactory(clean).builder(), eo);
  const ExploreReport rep = second.run();
  EXPECT_TRUE(rep.resume_rejected);
  EXPECT_NE(rep.resume_error.find("different scenario"), std::string::npos)
      << rep.resume_error;
  // Nothing ran.
  EXPECT_EQ(rep.stats.nodes, 0u);
  EXPECT_EQ(rep.stats.runs, 0u);
  std::remove(path.c_str());
}

TEST(ResumeTest, OldFormatSnapshotIsRejectedAsIncompatible) {
  // End-to-end exit-2 contract: Explorer resume from a v1 file sets
  // resume_rejected (wfd_check maps that to the incompatible-snapshot
  // exit code) and runs nothing.
  const ScenarioOptions scenario = bug_options();
  const std::string path = testing::TempDir() + "wfd_resume_oldver.wfds";
  ExplorerOptions save;
  save.budget_states = 5;
  save.save_path = path;
  save.scenario = scenario;
  Explorer first(ScenarioFactory(scenario).builder(), save);
  ASSERT_EQ(first.run().save_error, "");

  // Downgrade the stored version tag in place.
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
    std::fclose(f);
  }
  const std::string tag =
      "snapshot_version=" + std::to_string(StateSnapshot::kVersion);
  const std::size_t at = text.find(tag);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, tag.size(), "snapshot_version=1");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }

  ExplorerOptions eo;
  eo.resume_path = path;
  eo.scenario = scenario;
  Explorer second(ScenarioFactory(scenario).builder(), eo);
  const ExploreReport rep = second.run();
  EXPECT_TRUE(rep.resume_rejected);
  EXPECT_NE(rep.resume_error.find("snapshot_version"), std::string::npos)
      << rep.resume_error;
  EXPECT_EQ(rep.stats.nodes, 0u);
  EXPECT_EQ(rep.stats.runs, 0u);
  std::remove(path.c_str());
}

TEST(ResumeTest, CorruptSnapshotIsRejectedWithoutRunning) {
  const std::string path = testing::TempDir() + "wfd_resume_corrupt.wfds";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a snapshot\n", f);
    std::fclose(f);
  }
  const ScenarioOptions scenario = bug_options();
  ExplorerOptions eo;
  eo.resume_path = path;
  eo.scenario = scenario;
  Explorer ex(ScenarioFactory(scenario).builder(), eo);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.resume_error.empty());
  EXPECT_FALSE(rep.resume_rejected);  // Corrupt, not incompatible.
  EXPECT_EQ(rep.stats.nodes, 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Cooperative cancel (the campaign stop-flag regression).

TEST(CancelTest, PreSetCancelStopsBeforeAnyExpansion) {
  std::atomic<bool> stop{true};
  ExplorerOptions eo;
  eo.cancel = &stop;
  Explorer ex(ScenarioFactory(small_clean_options()).builder(), eo);
  const ExploreReport rep = ex.run();
  EXPECT_TRUE(rep.cancelled);
  EXPECT_EQ(rep.stats.nodes, 0u);
  EXPECT_FALSE(rep.stats.exhausted);
  EXPECT_EQ(coverage(rep.stats), Coverage::kBudget);
}

TEST(CancelTest, CancelledSearchNeverClaimsExhaustion) {
  // Flip the flag from another thread mid-search: whenever it lands, the
  // explorer must come back promptly, report cancelled, and refuse to
  // call the tree exhausted. (On a machine slow enough that the flag is
  // already set at the first step, this degrades to the pre-set case —
  // every assertion below still holds.)
  ScenarioOptions opt = small_clean_options();
  opt.max_steps = 40;  // Big enough that the search outlives the timer.
  opt.fd_per_query = true;
  std::atomic<bool> stop{false};
  ExplorerOptions eo;
  eo.max_states = 100000000;
  eo.cancel = &stop;
  Explorer ex(ScenarioFactory(opt).builder(), eo);
  std::thread timer([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stop.store(true, std::memory_order_relaxed);
  });
  const ExploreReport rep = ex.run();
  timer.join();
  EXPECT_TRUE(rep.cancelled);
  EXPECT_FALSE(rep.stats.exhausted);
  EXPECT_EQ(coverage(rep.stats), Coverage::kBudget);
}

TEST(CancelTest, CancelledRunLeavesNoTraceInTheSnapshot) {
  // The acid test of the rollback: cancel an invocation at a random
  // point mid-search, snapshot it, then resume with no cancel and run to
  // exhaustion. If the abandoned run leaked frames, fingerprints or
  // stats into the snapshot, the final totals would diverge from the
  // uninterrupted run's.
  const ScenarioOptions scenario = small_clean_options();
  const ScenarioBuilder build = ScenarioFactory(scenario).builder();
  Explorer single(build, ExplorerOptions{});
  const ExploreReport whole = single.run();
  ASSERT_TRUE(whole.stats.exhausted);

  const std::string path = testing::TempDir() + "wfd_resume_cancel.wfds";
  std::remove(path.c_str());
  std::atomic<bool> stop{false};
  ExplorerOptions first;
  first.cancel = &stop;
  first.save_path = path;
  first.scenario = scenario;
  Explorer cancelled(build, first);
  std::thread timer([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop.store(true, std::memory_order_relaxed);
  });
  const ExploreReport partial = cancelled.run();
  timer.join();
  ASSERT_EQ(partial.save_error, "");

  ExploreReport last = partial;
  for (int i = 0; !last.stats.exhausted && i < 200; ++i) {
    ExplorerOptions eo;
    eo.budget_states = 500;
    eo.save_path = path;
    eo.resume_path = path;
    eo.scenario = scenario;
    Explorer ex(build, eo);
    last = ex.run();
    ASSERT_EQ(last.resume_error, "") << last.resume_error;
  }
  expect_stats_eq(last.stats, whole.stats);
  EXPECT_EQ(coverage(last.stats), coverage(whole.stats));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wfd::explore
