// The exotic environments the paper's introduction names, plus the
// <>P -> Omega transformation and consensus across schedulers.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "consensus/omega_sigma_consensus.h"
#include "fd/classic_oracles.h"
#include "fd/history_checker.h"
#include "fd/omega_from_suspicions.h"
#include "fd/sigma_majority.h"
#include "sim/environment.h"
#include "sim/fd_sampler.h"
#include "test_util.h"

namespace wfd {
namespace {

TEST(InitialCrashesEnvironmentTest, SamplesOnlyTimeZeroCrashes) {
  sim::InitialCrashesEnvironment env(5, 3);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto f = env.sample(rng, 1000);
    EXPECT_TRUE(env.allows(f));
    for (ProcessId p : f.faulty().members()) {
      EXPECT_EQ(f.crash_time(p), 0u);
    }
    EXPECT_LE(f.faulty().size(), 3);
  }
  sim::FailurePattern late(5);
  late.crash_at(0, 10);
  EXPECT_FALSE(env.allows(late));
}

TEST(OrderedCrashEnvironmentTest, FirstNeverFailsBeforeSecond) {
  sim::OrderedCrashEnvironment env(4, /*first=*/0, /*second=*/1,
                                   /*max_crashes=*/3);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto f = env.sample(rng, 1000);
    ASSERT_TRUE(env.allows(f)) << f.to_string();
    if (f.crash_time(0) != kNever) {
      EXPECT_LE(f.crash_time(1), f.crash_time(0)) << f.to_string();
    }
  }
  sim::FailurePattern bad(4);
  bad.crash_at(0, 5);  // 0 fails while 1 is still alive.
  EXPECT_FALSE(env.allows(bad));
  sim::FailurePattern good(4);
  good.crash_at(1, 3);
  good.crash_at(0, 5);
  EXPECT_TRUE(env.allows(good));
}

TEST(OrderedCrashEnvironmentTest, ConsensusWorksInIt) {
  // (Omega, Sigma) consensus is environment-agnostic; spot-check it in
  // the ordered-crash environment too.
  sim::OrderedCrashEnvironment env(4, 0, 1, 3);
  Rng rng(11);
  const auto f = env.sample(rng, 2000);
  sim::SimConfig cfg;
  cfg.n = 4;
  cfg.max_steps = 120000;
  cfg.seed = 11;
  sim::Simulator s(cfg, f, test::omega_sigma(), test::random_sched());
  std::vector<std::optional<int>> decisions(4);
  for (int i = 0; i < 4; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<consensus::OmegaSigmaConsensusModule<int>>(
        "cons");
    c.propose(i % 2, [&decisions, i](const int& d) {
      decisions[static_cast<std::size_t>(i)] = d;
    });
  }
  EXPECT_TRUE(s.run().all_done);
  for (ProcessId p : f.correct().members()) {
    EXPECT_TRUE(decisions[static_cast<std::size_t>(p)].has_value());
  }
}

// ---------------------------------------------------- <>P -> Omega

TEST(OmegaFromSuspicionsTest, EmulatesOmegaFromEventuallyPerfect) {
  const int n = 4;
  sim::FailurePattern f(n);
  f.crash_at(0, 2000);  // The initial smallest id dies.

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 60000;
  cfg.seed = 7;
  fd::EventuallyPerfectOracle::Options opt;
  opt.max_stabilization = 800;
  sim::Simulator s(cfg, f,
                   std::make_unique<fd::EventuallyPerfectOracle>(opt),
                   test::random_sched());
  std::vector<sim::FdSampleRecord> samples;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& om = host.add_module<fd::OmegaFromSuspicionsModule>("omega");
    host.add_module<sim::FdSamplerModule>("sampler", &om, &samples, 16);
  }
  s.set_halt_on_done(false);
  s.run();
  const auto r = fd::check_omega_history(samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(OmegaFromSuspicionsTest, ConsensusOverTransformedDetectors) {
  // The classical recipe in full: <>P -> Omega (transformation) plus
  // join-quorum Sigma (majority), driving the paper's consensus — two
  // implemented/transformed detectors, no (Omega, Sigma) oracle.
  const int n = 5;
  sim::FailurePattern f(n);
  f.crash_at(4, 3000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 300000;
  cfg.seed = 13;
  fd::EventuallyPerfectOracle::Options opt;
  opt.max_stabilization = 800;
  sim::Simulator s(cfg, f,
                   std::make_unique<fd::EventuallyPerfectOracle>(opt),
                   test::random_sched());
  std::vector<std::optional<int>> decisions(n);
  std::vector<std::unique_ptr<sim::MergedFdSource>> sources;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& om = host.add_module<fd::OmegaFromSuspicionsModule>("omega");
    auto& sm = host.add_module<fd::SigmaMajorityModule>("sigma");
    sources.push_back(std::make_unique<sim::MergedFdSource>(&om, &sm));
    auto& c = host.add_module<consensus::OmegaSigmaConsensusModule<int>>(
        "cons");
    c.set_fd_source(sources.back().get());
    c.propose(i % 2, [&decisions, i](const int& d) {
      decisions[static_cast<std::size_t>(i)] = d;
    });
  }
  EXPECT_TRUE(s.run().all_done);
  std::optional<int> agreed;
  for (int i = 0; i < n; ++i) {
    if (f.correct().contains(i)) {
      ASSERT_TRUE(decisions[static_cast<std::size_t>(i)].has_value());
    }
    if (!decisions[static_cast<std::size_t>(i)].has_value()) continue;
    if (agreed.has_value()) {
      EXPECT_EQ(*decisions[static_cast<std::size_t>(i)], *agreed);
    } else {
      agreed = decisions[static_cast<std::size_t>(i)];
    }
  }
}

// --------------------------------------- consensus x scheduler matrix

struct SchedParam {
  std::uint64_t seed;
  int which;  ///< 0 random, 1 round-robin, 2 partial synchrony.
};

class SchedulerMatrix : public ::testing::TestWithParam<SchedParam> {};

TEST_P(SchedulerMatrix, ConsensusDecidesUnderEveryScheduler) {
  const auto& prm = GetParam();
  const int n = 4;
  sim::FailurePattern f(n);
  f.crash_at(1, 700);

  std::unique_ptr<sim::Scheduler> sched;
  switch (prm.which) {
    case 0:
      sched = test::random_sched();
      break;
    case 1:
      sched = test::round_robin();
      break;
    default:
      sched = std::make_unique<sim::PartialSynchronyScheduler>(2000);
      break;
  }
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 150000;
  cfg.seed = prm.seed;
  sim::Simulator s(cfg, f, test::omega_sigma(), std::move(sched));
  std::vector<std::optional<int>> decisions(n);
  std::vector<int> proposals = {3, 1, 4, 1};
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<consensus::OmegaSigmaConsensusModule<int>>(
        "cons");
    c.propose(proposals[static_cast<std::size_t>(i)],
              [&decisions, i](const int& d) {
                decisions[static_cast<std::size_t>(i)] = d;
              });
  }
  EXPECT_TRUE(s.run().all_done);
  std::optional<int> agreed;
  for (int i = 0; i < n; ++i) {
    if (!decisions[static_cast<std::size_t>(i)].has_value()) continue;
    if (agreed.has_value()) {
      EXPECT_EQ(*decisions[static_cast<std::size_t>(i)], *agreed);
    } else {
      agreed = decisions[static_cast<std::size_t>(i)];
    }
  }
  ASSERT_TRUE(agreed.has_value());
  bool proposed = false;
  for (int v : proposals) proposed = proposed || (v == *agreed);
  EXPECT_TRUE(proposed);
}

std::string sched_param_name(const ::testing::TestParamInfo<SchedParam>& info) {
  static const char* const kNames[] = {"random", "roundrobin", "psync"};
  return std::string(kNames[info.param.which]) + "seed" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchedulerMatrix,
    ::testing::Values(SchedParam{1, 0}, SchedParam{2, 0}, SchedParam{1, 1},
                      SchedParam{2, 1}, SchedParam{1, 2}, SchedParam{2, 2}),
    sched_param_name);

}  // namespace
}  // namespace wfd
