// Soundness of the content-aware dependence relation.
//
// The commutativity contract (sim/payload.h) claims that delivering two
// commuting messages to the same process in either order reaches the
// same state. This file checks that claim *empirically* against the
// real protocols: random walks surface schedule frames whose menu
// offers two deliveries to one process; whenever the payload relation
// declares the pair commuting, both orders are replayed and their
// composed state fingerprints must coincide. It also checks that DPOR
// under Dependence::kContent reaches the same verdicts as under
// kProcess — finding the seeded bug, staying clean on the correct
// protocols — while exploring no more states.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "explore/explorer.h"
#include "explore/scenario.h"
#include "sim/choice.h"
#include "sim/dependence.h"
#include "sim/network.h"
#include "sim/payload.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace wfd::explore {
namespace {

// ---------------------------------------------------------------------
// Unit surface of payloads_commute: symmetry and fail-closed defaults.

struct AuditedLatch final : sim::Payload {
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "latch");
  }
  [[nodiscard]] std::string_view kind() const override { return "t.latch"; }
  [[nodiscard]] bool commutes_with(const sim::Payload& other) const override {
    return sim::payload_cast<AuditedLatch>(other) != nullptr;
  }
};

struct AuditedOrdered final : sim::Payload {
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "ordered");
  }
  [[nodiscard]] std::string_view kind() const override { return "t.ordered"; }
};

struct Unaudited final : sim::Payload {
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "opaque");
  }
};

// One-sided claim: says yes to everything, but nothing claims it back.
struct Overeager final : sim::Payload {
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "overeager");
  }
  [[nodiscard]] std::string_view kind() const override {
    return "t.overeager";
  }
  [[nodiscard]] bool commutes_with(const sim::Payload&) const override {
    return true;
  }
};

TEST(PayloadDependenceTest, DeclaredPairsCommuteBothWays) {
  AuditedLatch a, b;
  EXPECT_TRUE(sim::payloads_commute(a, b, nullptr));
}

TEST(PayloadDependenceTest, AuditedNonCommutingStaysDependent) {
  AuditedOrdered a, b;
  EXPECT_FALSE(sim::payloads_commute(a, b, nullptr));
}

TEST(PayloadDependenceTest, UnauditedPayloadFailsClosedAndIsReported) {
  Unaudited u;
  AuditedLatch l;
  std::set<std::string> conservative;
  EXPECT_FALSE(sim::payloads_commute(u, l, &conservative));
  ASSERT_EQ(conservative.size(), 1u);
  // The identity is the demangled type name (no kind() to fall back on).
  EXPECT_NE(conservative.begin()->find("Unaudited"), std::string::npos);
}

TEST(PayloadDependenceTest, OneSidedClaimIsNotEnough) {
  Overeager yes;
  AuditedOrdered no;
  // yes->no claims commuting, no->yes does not: the relation must take
  // the conjunction.
  EXPECT_FALSE(sim::payloads_commute(yes, no, nullptr));
  EXPECT_FALSE(sim::payloads_commute(no, yes, nullptr));
}

// ---------------------------------------------------------------------
// Empirical soundness harness.

struct TraceFrame {
  sim::ChoiceKind kind{};
  std::vector<std::uint64_t> labels;
  std::uint32_t chosen = 0;
};

/// Random walk that records every choice point's menu and answer.
class TraceSource : public sim::ChoiceSource {
 public:
  explicit TraceSource(std::uint64_t seed) : rnd_(seed) {}

  std::size_t choose(sim::ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override {
    const std::size_t idx = rnd_.choose(kind, labels);
    frames_.push_back(
        TraceFrame{kind, labels, static_cast<std::uint32_t>(idx)});
    return idx;
  }

  [[nodiscard]] const std::vector<TraceFrame>& frames() const {
    return frames_;
  }

 private:
  sim::RandomChoices rnd_;
  std::vector<TraceFrame> frames_;
};

/// Replays a fixed prefix, then forces the delivery of `first` at the
/// cut frame and of `second` at the next schedule frame. Captures the
/// two payloads from the network at the cut (both still pending there).
class PairSource : public sim::ChoiceSource {
 public:
  PairSource(std::vector<std::uint32_t> prefix, std::uint64_t first,
             std::uint64_t second)
      : prefix_(std::move(prefix)), first_(first), second_(second) {}

  sim::Simulator* sim = nullptr;  ///< Set right after the scenario builds.

  std::size_t choose(sim::ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override {
    if (calls_ < prefix_.size()) {
      return prefix_[calls_++];
    }
    ++calls_;
    if (phase_ == 0) {
      if (kind != sim::ChoiceKind::kSchedule) {
        failed_ = true;
        return 0;
      }
      payload_a_ =
          sim->network().get(sim::ReplayScheduler::label_message(first_))
              .payload;
      payload_b_ =
          sim->network().get(sim::ReplayScheduler::label_message(second_))
              .payload;
      phase_ = 1;
      return index_of(labels, first_);
    }
    if (phase_ == 1 && kind == sim::ChoiceKind::kSchedule) {
      phase_ = 2;
      return index_of(labels, second_);
    }
    // Non-schedule choices between the pair answer a fixed default so
    // both variants consume them identically.
    return 0;
  }

  [[nodiscard]] bool done() const { return phase_ == 2; }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const sim::PayloadPtr& payload_a() const { return payload_a_; }
  [[nodiscard]] const sim::PayloadPtr& payload_b() const { return payload_b_; }

 private:
  std::size_t index_of(const std::vector<std::uint64_t>& labels,
                       std::uint64_t want) {
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == want) return i;
    }
    failed_ = true;
    return 0;
  }

  std::vector<std::uint32_t> prefix_;
  std::uint64_t first_ = 0;
  std::uint64_t second_ = 0;
  std::size_t calls_ = 0;
  int phase_ = 0;
  bool failed_ = false;
  sim::PayloadPtr payload_a_;
  sim::PayloadPtr payload_b_;
};

struct VariantResult {
  bool ok = false;
  std::optional<std::uint64_t> fp;
  sim::PayloadPtr payload_a;
  sim::PayloadPtr payload_b;
};

VariantResult run_variant(const ScenarioBuilder& build,
                          const std::vector<std::uint32_t>& prefix,
                          std::uint64_t first, std::uint64_t second) {
  VariantResult r;
  PairSource src(prefix, first, second);
  Scenario sc = build(src);
  src.sim = sc.sim.get();
  for (int guard = 0; guard < 4096 && !src.done(); ++guard) {
    if (!sc.sim->step()) return r;
    if (src.failed()) return r;
  }
  if (!src.done() || src.failed()) return r;
  r.ok = true;
  r.fp = sc.sim->state_fingerprint();
  r.payload_a = src.payload_a();
  r.payload_b = src.payload_b();
  return r;
}

/// Random-walks `problem`, and for every same-process delivery pair the
/// payload relation declares commuting, replays both orders and demands
/// equal state fingerprints. Adds the number of pairs checked to
/// `verified` (out-param so ASSERT can return early).
void check_commuting_pairs(const ScenarioOptions& opt, std::uint64_t seed,
                           int* verified) {
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  TraceSource trace(seed);
  {
    Scenario sc = build(trace);
    for (int guard = 0; guard < 4096 && sc.sim->step(); ++guard) {
    }
  }
  const auto& frames = trace.frames();
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const TraceFrame& f = frames[i];
    if (f.kind != sim::ChoiceKind::kSchedule) continue;
    std::vector<std::uint32_t> prefix;
    for (std::size_t j = 0; j < i; ++j) prefix.push_back(frames[j].chosen);
    for (std::size_t x = 0; x < f.labels.size(); ++x) {
      for (std::size_t y = x + 1; y < f.labels.size(); ++y) {
        const std::uint64_t la = f.labels[x];
        const std::uint64_t lb = f.labels[y];
        if (sim::ReplayScheduler::label_process(la) !=
            sim::ReplayScheduler::label_process(lb)) {
          continue;
        }
        if (sim::ReplayScheduler::label_message(la) == 0 ||
            sim::ReplayScheduler::label_message(lb) == 0) {
          continue;
        }
        const VariantResult ab = run_variant(build, prefix, la, lb);
        if (!ab.ok || !ab.fp.has_value()) continue;
        if (ab.payload_a == nullptr || ab.payload_b == nullptr) continue;
        if (!sim::payloads_commute(*ab.payload_a, *ab.payload_b, nullptr)) {
          continue;  // The relation makes no claim for this pair.
        }
        const VariantResult ba = run_variant(build, prefix, lb, la);
        ASSERT_TRUE(ba.ok) << "commuting pair's flipped order not schedulable";
        ASSERT_TRUE(ba.fp.has_value());
        EXPECT_EQ(*ab.fp, *ba.fp)
            << opt.problem << ": payloads " << ab.payload_a->identity()
            << " / " << ab.payload_b->identity()
            << " declared commuting but orders diverge (frame " << i << ")";
        ++*verified;
      }
    }
  }
}

TEST(CommuteSoundnessTest, ConsensusPairsReachEqualStates) {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 3;
  // Consensus pairs only commute on equal content, and the menu's
  // oldest-per-channel rule hides same-channel retry duplicates — the
  // realistic pair is two Decide(v) copies from *distinct* senders (the
  // deciding leader's broadcast plus a decided process answering a late
  // Prepare/Accept). That needs a process to start a round after the
  // decision, so omega must flap: per-query detector values, not one
  // latched history.
  opt.max_steps = 60;
  opt.fd_per_query = true;
  int verified = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    check_commuting_pairs(opt, seed, &verified);
  }
  // The harness must actually bite: consensus traffic (equal-value
  // Decide announcements, equal-round Nacks) yields commuting pairs.
  EXPECT_GT(verified, 0);
}

TEST(CommuteSoundnessTest, NbacPairsReachEqualStates) {
  ScenarioOptions opt;
  opt.problem = "nbac";
  opt.n = 3;
  opt.max_steps = 14;
  opt.fd_per_query = false;
  int verified = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    check_commuting_pairs(opt, seed, &verified);
  }
  EXPECT_GT(verified, 0);
}

TEST(CommuteSoundnessTest, RegisterPairsReachEqualStates) {
  ScenarioOptions opt;
  opt.problem = "register";
  opt.n = 3;
  opt.max_steps = 16;
  opt.fd_per_query = false;
  opt.reg_ops = 1;
  opt.reg_readers = 1;
  int verified = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    check_commuting_pairs(opt, seed, &verified);
  }
  EXPECT_GT(verified, 0);
}

TEST(CommuteSoundnessTest, BroadcastEchoPairsReachEqualStates) {
  // The URB echo storm is the commuting-traffic showcase: relays of the
  // same app message from distinct processes race constantly and all
  // commute.
  ScenarioOptions opt;
  opt.problem = "rb";
  opt.n = 3;
  opt.max_steps = 12;
  opt.abcast_senders = 2;
  int verified = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    check_commuting_pairs(opt, seed, &verified);
  }
  EXPECT_GT(verified, 0);
}

// ---------------------------------------------------------------------
// DPOR equivalence: kContent must reach the same verdicts as kProcess.

TEST(DependenceEquivalenceTest, ContentModeStillFindsSeededBug) {
  ScenarioOptions opt;
  opt.problem = "consensus-bug";
  opt.n = 3;
  opt.max_steps = 30;
  const ScenarioBuilder build = ScenarioFactory(opt).builder();

  SearchConfig process;
  process.scenario = opt;
  process.dependence = Dependence::kProcess;
  SearchConfig content = process;
  content.dependence = Dependence::kContent;

  Explorer pe(build, process);
  Explorer ce(build, content);
  const ExploreReport pr = pe.run();
  const ExploreReport cr = ce.run();
  ASSERT_TRUE(pr.cex.has_value());
  ASSERT_TRUE(cr.cex.has_value());
  EXPECT_EQ(pr.cex->violation.property, cr.cex->violation.property);
  EXPECT_LE(cr.stats.nodes, pr.stats.nodes);
}

TEST(DependenceEquivalenceTest, ContentModeStaysCleanAndExhaustsFaster) {
  // NBAC rather than consensus: its vote slots are the codebase's
  // commuting-traffic workhorse, so content mode demonstrably skips
  // races here, while consensus at this depth has no equal-content
  // pairs in flight and the two modes coincide.
  ScenarioOptions opt;
  opt.problem = "nbac";
  opt.n = 3;
  opt.max_steps = 8;
  opt.fd_per_query = false;
  const ScenarioBuilder build = ScenarioFactory(opt).builder();

  SearchConfig process;
  process.scenario = opt;
  process.dependence = Dependence::kProcess;
  process.state_fingerprints = false;
  process.stop_at_first = false;
  process.max_states = 500000;
  SearchConfig content = process;
  content.dependence = Dependence::kContent;

  Explorer pe(build, process);
  Explorer ce(build, content);
  const ExploreReport pr = pe.run();
  const ExploreReport cr = ce.run();
  EXPECT_EQ(pr.stats.violations, 0u);
  EXPECT_EQ(cr.stats.violations, 0u);
  ASSERT_TRUE(pr.stats.exhausted);
  ASSERT_TRUE(cr.stats.exhausted);
  EXPECT_LE(cr.stats.nodes, pr.stats.nodes);
  EXPECT_GT(cr.stats.commute_skips, 0u);
  EXPECT_EQ(pr.stats.commute_skips, 0u);
}

}  // namespace
}  // namespace wfd::explore
