// Fault injection (src/inject/): the budget ledger and its environment
// floor, the fault-action label encoding, the prefix-checkable FD
// clauses used under evolving patterns, the scenario validation rules
// for the injection modes, and the two end-to-end acceptance anchors —
// crash-timing exploration finds the seeded coordinator-crash bug that
// scripted crashes provably miss, and register atomicity survives lossy
// links through the quasi-reliable retransmission wrapper.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "explore/explorer.h"
#include "explore/scenario.h"
#include "fd/history_checker.h"
#include "inject/fault_plan.h"
#include "sim/failure_pattern.h"
#include "sim/scheduler.h"
#include "sim/trace.h"

namespace wfd {
namespace {

using explore::Explorer;
using explore::SearchConfig;
using explore::ExploreReport;
using explore::ScenarioFactory;
using explore::ScenarioOptions;
using inject::CrashMode;
using inject::FaultPlan;
using inject::FaultState;
using sim::FailurePattern;
using sim::FdSampleRecord;
using sim::ReplayScheduler;
using sim::StepChoice;

// ------------------------------------------------------------ FaultPlan

TEST(FaultPlanTest, AnyCoversEveryInjectionMode) {
  FaultPlan p;
  EXPECT_FALSE(p.any());
  p.crash_mode = CrashMode::kScript;  // Scripted crashes are not injection.
  EXPECT_FALSE(p.any());
  p.crash_mode = CrashMode::kExplore;
  EXPECT_TRUE(p.any());
  p.crash_mode = CrashMode::kNone;
  p.drop_budget = 1;
  EXPECT_TRUE(p.any());
  p.drop_budget = 0;
  p.dup_budget = 2;
  EXPECT_TRUE(p.any());
}

TEST(FaultStateTest, CrashBudgetAndEnvironmentFloor) {
  FaultPlan plan;
  plan.crash_mode = CrashMode::kExplore;
  plan.crash_budget = 2;
  plan.min_alive = 2;  // The Σ-majority floor at n = 3.
  FaultState st(plan);
  st.begin_run(3);

  FailurePattern f(3);
  EXPECT_TRUE(st.may_crash(0, f, 5));
  EXPECT_TRUE(st.may_crash(2, f, 5));

  // Crash p0: the ledger and the pattern both advance.
  f.crash_at(0, 5);
  st.note_crash();
  EXPECT_EQ(st.crashes(), 1);
  // p0 is already crashed; crashing anyone else would leave 1 < 2 alive.
  EXPECT_FALSE(st.may_crash(0, f, 6));
  EXPECT_FALSE(st.may_crash(1, f, 6));
  EXPECT_FALSE(st.may_crash(2, f, 6));

  // begin_run resets the ledger for the next exploration run.
  st.begin_run(3);
  EXPECT_EQ(st.crashes(), 0);
  EXPECT_TRUE(st.may_crash(0, FailurePattern(3), 0));
}

TEST(FaultStateTest, BudgetExhaustionStopsCrashesBeforeTheFloorDoes) {
  FaultPlan plan;
  plan.crash_mode = CrashMode::kExplore;
  plan.crash_budget = 1;
  plan.min_alive = 1;
  FaultState st(plan);
  st.begin_run(4);
  FailurePattern f(4);
  EXPECT_TRUE(st.may_crash(1, f, 0));
  f.crash_at(1, 0);
  st.note_crash();
  // Three processes still alive and the floor is 1, but the budget is
  // spent: no further crash may be offered.
  EXPECT_FALSE(st.may_crash(2, f, 1));
}

TEST(FaultStateTest, ScriptModeNeverOffersCrashes) {
  FaultPlan plan;
  plan.crash_mode = CrashMode::kScript;
  plan.crash_budget = 3;
  FaultState st(plan);
  st.begin_run(3);
  EXPECT_FALSE(st.may_crash(0, FailurePattern(3), 0));
}

TEST(FaultStateTest, LossBudgetsArePerDirectedLink) {
  FaultPlan plan;
  plan.drop_budget = 1;
  plan.dup_budget = 1;
  FaultState st(plan);
  st.begin_run(3);

  EXPECT_TRUE(st.may_drop(0, 1));
  st.note_drop(0, 1);
  EXPECT_EQ(st.drops(), 1);
  // The 0->1 budget is spent; the reverse link and other links are not.
  EXPECT_FALSE(st.may_drop(0, 1));
  EXPECT_TRUE(st.may_drop(1, 0));
  EXPECT_TRUE(st.may_drop(0, 2));

  EXPECT_TRUE(st.may_dup(0, 1));  // Dup budget is independent of drop.
  st.note_dup(0, 1);
  EXPECT_FALSE(st.may_dup(0, 1));
  EXPECT_TRUE(st.may_dup(2, 1));

  st.begin_run(3);
  EXPECT_TRUE(st.may_drop(0, 1));
  EXPECT_TRUE(st.may_dup(0, 1));
  EXPECT_EQ(st.drops(), 0);
  EXPECT_EQ(st.dups(), 0);
}

// ------------------------------------------------- fault-action labels

TEST(LabelTest, FaultActionsRoundTripAndPlainLabelsAreUnchanged) {
  const std::uint64_t mid = (std::uint64_t{1} << 40) + 12345;
  for (const auto action :
       {StepChoice::Action::kDeliver, StepChoice::Action::kDrop,
        StepChoice::Action::kDup, StepChoice::Action::kCrash}) {
    const std::uint64_t l = ReplayScheduler::label(2, mid, action);
    EXPECT_EQ(ReplayScheduler::label_process(l), 2);
    EXPECT_EQ(ReplayScheduler::label_message(l), mid);
    EXPECT_EQ(ReplayScheduler::label_action(l), action);
    EXPECT_EQ(ReplayScheduler::label_is_fault(l),
              action != StepChoice::Action::kDeliver);
  }
  // A deliver label is byte-identical to the pre-fault two-arg encoding,
  // which is what keeps v1-era decision logs meaningful for plain runs.
  EXPECT_EQ(ReplayScheduler::label(2, mid, StepChoice::Action::kDeliver),
            ReplayScheduler::label(2, mid));
  // Distinct actions on the same (process, message) are distinct labels.
  EXPECT_NE(ReplayScheduler::label(0, 7, StepChoice::Action::kDrop),
            ReplayScheduler::label(0, 7, StepChoice::Action::kDup));
}

// -------------------------------------------- prefix-checkable clauses

FdSampleRecord fs_sample(ProcessId p, Time t, fd::FsColor c) {
  FdSampleRecord s;
  s.p = p;
  s.t = t;
  s.value.fs = c;
  return s;
}

FdSampleRecord psi_sample(ProcessId p, Time t, fd::PsiValue v) {
  FdSampleRecord s;
  s.p = p;
  s.t = t;
  s.value.psi = v;
  return s;
}

TEST(FsPrefixTest, GreenAlwaysLegalRedOnlyAfterFailure) {
  FailurePattern clean(3);
  std::vector<FdSampleRecord> samples = {fs_sample(0, 1, fd::FsColor::kGreen),
                                         fs_sample(1, 4, fd::FsColor::kGreen)};
  EXPECT_TRUE(fd::check_fs_prefix(samples, clean).ok);

  samples.push_back(fs_sample(2, 6, fd::FsColor::kRed));
  const auto bad = fd::check_fs_prefix(samples, clean);
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.violation.find("red"), std::string::npos) << bad.violation;

  // The same samples are legal once a crash precedes the red output —
  // and a crash injected later ("now" = 6) never legalises nothing
  // retroactively because red-at-6 needs failure_by(6).
  FailurePattern crashed(3);
  crashed.crash_at(1, 5);
  EXPECT_TRUE(fd::check_fs_prefix(samples, crashed).ok);
  FailurePattern late(3);
  late.crash_at(1, 7);
  EXPECT_FALSE(fd::check_fs_prefix(samples, late).ok);
}

TEST(FsPrefixTest, MissingComponentIsAViolation) {
  FdSampleRecord s;
  s.p = 0;
  s.t = 1;  // No fs component set.
  EXPECT_FALSE(fd::check_fs_prefix({s}, FailurePattern(2)).ok);
}

TEST(PsiPrefixTest, LegalBottomThenOmegaSigmaPrefix) {
  FailurePattern f(3);
  const auto os = fd::PsiValue::omega_sigma(0, ProcessSet{0, 1});
  const std::vector<FdSampleRecord> samples = {
      psi_sample(0, 1, fd::PsiValue::bottom()),
      psi_sample(1, 2, fd::PsiValue::bottom()),
      psi_sample(0, 3, os),
      psi_sample(1, 4, os),
  };
  EXPECT_TRUE(fd::check_psi_prefix(samples, f).ok);
}

TEST(PsiPrefixTest, BranchDiscipline) {
  FailurePattern clean(3);
  const auto os = fd::PsiValue::omega_sigma(0, ProcessSet{0, 1});

  // The FS branch may not open before any failure has occurred, even
  // with a green signal.
  EXPECT_FALSE(
      fd::check_psi_prefix(
          {psi_sample(0, 2, fd::PsiValue::failure_signal(fd::FsColor::kGreen))},
          clean)
          .ok);

  FailurePattern crashed(3);
  crashed.crash_at(2, 1);
  // With the failure in place, the FS branch (green then red) is legal.
  EXPECT_TRUE(
      fd::check_psi_prefix(
          {psi_sample(0, 2, fd::PsiValue::failure_signal(fd::FsColor::kGreen)),
           psi_sample(1, 3, fd::PsiValue::failure_signal(fd::FsColor::kRed))},
          crashed)
          .ok);

  // Different processes may never pick different branches.
  const auto diverged = fd::check_psi_prefix(
      {psi_sample(0, 2, os),
       psi_sample(1, 3, fd::PsiValue::failure_signal(fd::FsColor::kRed))},
      crashed);
  EXPECT_FALSE(diverged.ok);
  EXPECT_NE(diverged.violation.find("branch"), std::string::npos)
      << diverged.violation;

  // Bottom after a switch means the output regressed: illegal.
  EXPECT_FALSE(fd::check_psi_prefix({psi_sample(0, 2, os),
                                     psi_sample(0, 3, fd::PsiValue::bottom())},
                                    crashed)
                   .ok);
}

// --------------------------------------------------- scenario validation

TEST(ScenarioValidateTest, InjectionModeRules) {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 3;

  opt.crash_mode = "explore";
  opt.crashes = 1;
  EXPECT_EQ(ScenarioFactory::validate(opt), "");

  ScenarioOptions pinned = opt;
  pinned.crash_time = 4;  // Scripted times contradict explored timing.
  EXPECT_NE(ScenarioFactory::validate(pinned), "");

  ScenarioOptions typo = opt;
  typo.crash_mode = "explor";
  EXPECT_NE(ScenarioFactory::validate(typo), "");

  ScenarioOptions lossy;
  lossy.problem = "register";
  lossy.loss_drops = -1;
  EXPECT_NE(ScenarioFactory::validate(lossy), "");
  lossy.loss_drops = 1;
  EXPECT_EQ(ScenarioFactory::validate(lossy), "");

  ScenarioOptions adv;
  adv.problem = "qc";
  adv.fd_adversarial = true;
  EXPECT_EQ(ScenarioFactory::validate(adv), "");
  adv.stabilization = 10;  // Adversarial FD never stabilizes.
  EXPECT_NE(ScenarioFactory::validate(adv), "");
}

// --------------------------------- seeded crash-timing bug (acceptance)

TEST(CrashTimingBugTest, ExploredCrashTimingFindsTheBug) {
  ScenarioOptions opt;
  opt.problem = "consensus-crash-bug";
  opt.n = 3;
  opt.crash_mode = "explore";
  opt.crashes = 1;
  SearchConfig cfg;
  cfg.scenario = opt;
  Explorer ex(ScenarioFactory(opt).builder(), cfg);
  const ExploreReport rep = ex.run();
  ASSERT_TRUE(rep.cex.has_value())
      << "crash-timing exploration missed the seeded bug";
  EXPECT_EQ(rep.cex->violation.property, "agreement(decide)");
  EXPECT_GT(rep.stats.injected_crashes, 0u);
}

TEST(CrashTimingBugTest, ScriptedEarlyCrashProvablyMissesTheBug) {
  // The coordinator needs at least three own steps before it can decide,
  // so a scripted crash at t = 2 always lands in the safe pre-decide
  // window: the whole tree is clean. This is the contrast run that
  // justifies crash-timing exploration.
  ScenarioOptions opt;
  opt.problem = "consensus-crash-bug";
  opt.n = 3;
  opt.crashes = 1;
  opt.crash_time = 2;
  SearchConfig cfg;
  cfg.scenario = opt;
  Explorer ex(ScenarioFactory(opt).builder(), cfg);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.cex.has_value())
      << rep.cex->violation.property << ": " << rep.cex->violation.message;
  EXPECT_TRUE(rep.stats.exhausted);
  EXPECT_EQ(rep.stats.injected_crashes, 0u);
}

TEST(CrashTimingBugTest, CrashFreeTreeIsClean) {
  ScenarioOptions opt;
  opt.problem = "consensus-crash-bug";
  opt.n = 3;
  SearchConfig cfg;
  cfg.scenario = opt;
  Explorer ex(ScenarioFactory(opt).builder(), cfg);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.cex.has_value());
  EXPECT_TRUE(rep.stats.exhausted);
}

// ------------------------------------ lossy links + quasi-reliable (acceptance)

TEST(LossyLinkTest, RegisterAtomicityHoldsThroughRetransmission) {
  ScenarioOptions opt;
  opt.problem = "register";
  opt.n = 3;
  opt.loss_drops = 1;
  opt.reg_ops = 1;
  opt.reg_readers = 1;
  opt.max_steps = 30;
  SearchConfig eo;
  eo.scenario = opt;
  eo.budget_states = 8000;
  Explorer ex(ScenarioFactory(opt).builder(), eo);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.cex.has_value())
      << rep.cex->violation.property << ": " << rep.cex->violation.message;
  // The adversary really exercised the lossy links.
  EXPECT_GT(rep.stats.injected_drops, 0u);
}

}  // namespace
}  // namespace wfd
