// Theorem 6, necessity (Figure 3): any QC algorithm A using detector D
// can be transformed into Psi. Exercised with two (A, D) pairs:
//   - A = the Psi-based QC of Fig. 2,        D = Psi;
//   - A = plain (Omega, Sigma) consensus (a QC solution that never
//     returns Q),                            D = (Omega, Sigma).
// The emulated output history must satisfy the Psi specification in both
// the (Omega, Sigma) branch and (for the first pair under failures) the
// FS branch.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "consensus/omega_sigma_consensus.h"
#include "extract/psi_extraction.h"
#include "extract/qc_sandbox.h"
#include "extract/sample_dag.h"
#include "extract/sim_forest.h"
#include "fd/history_checker.h"
#include "qc/consensus_qc.h"
#include "qc/psi_qc.h"
#include "sim/dependence.h"
#include "sim/state_encoder.h"
#include "test_util.h"

namespace wfd {
namespace {

using extract::DagNode;
using extract::ExtractProposal;
using extract::PsiExtractionModule;
using extract::SampleDag;
using extract::SandboxSpec;
using extract::ScriptStep;

// ------------------------------------------------------------- sample DAG

TEST(SampleDagTest, VectorClocksCaptureReachability) {
  SampleDag dag(3);
  const DagNode a = dag.add_sample(0, fd::FdValue{});
  const DagNode b = dag.add_sample(1, fd::FdValue{});
  // b was created after a existed in this DAG: a precedes b.
  EXPECT_TRUE(SampleDag::precedes(a, b));
  EXPECT_FALSE(SampleDag::precedes(b, a));
}

TEST(SampleDagTest, MergeIsIdempotentAndPrefixClosed) {
  SampleDag a(2), b(2);
  a.add_sample(0, fd::FdValue{});
  a.add_sample(0, fd::FdValue{});
  const auto snap = a.snapshot();
  b.merge(snap);
  b.merge(snap);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.known(0), 2u);
  EXPECT_EQ(b.known(1), 0u);
}

TEST(SampleDagTest, ConcurrentSamplesAreUnordered) {
  SampleDag a(2), b(2);
  const DagNode x = a.add_sample(0, fd::FdValue{});
  const DagNode y = b.add_sample(1, fd::FdValue{});
  EXPECT_FALSE(SampleDag::precedes(x, y));
  EXPECT_FALSE(SampleDag::precedes(y, x));
}

TEST(SampleDagTest, CanonicalSpineIsAChain) {
  SampleDag a(3), b(3);
  for (int round = 0; round < 5; ++round) {
    a.add_sample(0, fd::FdValue{});
    b.add_sample(1, fd::FdValue{});
    b.merge(a.snapshot());
    a.merge(b.snapshot());
    a.add_sample(2, fd::FdValue{});
  }
  const auto spine = a.canonical_spine();
  ASSERT_GE(spine.size(), 2u);
  for (std::size_t i = 0; i + 1 < spine.size(); ++i) {
    EXPECT_TRUE(SampleDag::precedes(spine[i], spine[i + 1]));
  }
}

TEST(SampleDagTest, SpineIsDeterministicAcrossMergedCopies) {
  SampleDag a(2), b(2);
  for (int round = 0; round < 4; ++round) {
    a.add_sample(0, fd::FdValue{});
    b.add_sample(1, fd::FdValue{});
    a.merge(b.snapshot());
    b.merge(a.snapshot());
  }
  a.merge(b.snapshot());
  b.merge(a.snapshot());
  const auto sa = a.canonical_spine();
  const auto sb = b.canonical_spine();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].p, sb[i].p);
    EXPECT_EQ(sa[i].seq, sb[i].seq);
  }
}

TEST(SampleDagTest, MergeIsOrderInsensitive) {
  // Two distinct gossip snapshots folded in either order must yield
  // digest-identical DAGs — the semantic half of GossipMsg's
  // commutes_with claim, since the delivery handler does nothing but
  // this merge. The snapshots share a prefix (p0#1) and each carries a
  // node the other lacks.
  SampleDag a(3), b(3);
  a.add_sample(0, fd::FdValue{});
  b.merge(a.snapshot());
  b.add_sample(1, fd::FdValue{});
  a.add_sample(0, fd::FdValue{});
  const auto sa = a.snapshot();
  const auto sb = b.snapshot();

  SampleDag c1(3), c2(3);
  c1.merge(sa);
  c1.merge(sb);
  c2.merge(sb);
  c2.merge(sa);
  EXPECT_EQ(c1.size(), 3u);
  EXPECT_EQ(c1.size(), c2.size());
  sim::StateEncoder e1, e2;
  c1.encode_state(e1);
  c2.encode_state(e2);
  EXPECT_EQ(e1.digest(), e2.digest());
}

// ------------------------------------------------- gossip commutativity

// A classified non-gossip payload: GossipMsg's audit covers only its
// own kind and must fail closed against everything else.
struct UnrelatedMsg final : sim::Payload {
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "unrelated");
  }
  [[nodiscard]] std::string_view kind() const override {
    return "test.unrelated";
  }
};

TEST(PsiGossipDependenceTest, GossipPairsCommuteWithNothingConservative) {
  SampleDag a(2), b(2);
  a.add_sample(0, fd::FdValue{});
  b.add_sample(1, fd::FdValue{});
  const PsiExtractionModule::GossipMsg g1(a.snapshot());
  const PsiExtractionModule::GossipMsg g2(b.snapshot());
  std::set<std::string> conservative;
  EXPECT_TRUE(sim::payloads_commute(g1, g2, &conservative));
  EXPECT_TRUE(sim::payloads_commute(g2, g1, &conservative));
  // The known candidate is audited: nothing falls back to the
  // conservative (order-everything) bucket.
  EXPECT_TRUE(conservative.empty());
}

TEST(PsiGossipDependenceTest, GossipIsTickInsensitiveButTypeGuarded) {
  SampleDag a(2);
  a.add_sample(0, fd::FdValue{});
  const PsiExtractionModule::GossipMsg g(a.snapshot());
  // The merge reads neither clock nor detector and all reaction is
  // tick-deferred, so a gossip delivery commutes with an inert lambda.
  EXPECT_TRUE(g.tick_insensitive());
  // Cross-type pairs stay dependent in both consultation orders.
  const UnrelatedMsg other;
  EXPECT_FALSE(sim::payloads_commute(g, other, nullptr));
  EXPECT_FALSE(sim::payloads_commute(other, g, nullptr));
}

// ------------------------------------------------------- sandbox plumbing

/// SandboxSpec for A = PsiQcModule<int> (the Fig. 2 algorithm).
SandboxSpec psi_qc_spec(int n) {
  SandboxSpec spec;
  spec.n = n;
  spec.build = [](sim::Simulator& inner, const std::vector<int>& proposals) {
    for (int i = 0; i < inner.n(); ++i) {
      auto& host = inner.add_process<sim::ModularProcess>();
      auto& q = host.add_module<qc::PsiQcModule<int>>("a");
      q.propose(proposals[static_cast<std::size_t>(i)],
                [](const qc::QcResult<int>&) {});
    }
  };
  spec.decision_of = [](sim::Simulator& inner,
                        ProcessId p) -> std::optional<int> {
    auto& host = dynamic_cast<sim::ModularProcess&>(inner.process(p));
    auto& q = host.module<qc::PsiQcModule<int>>("a");
    if (!q.decided()) return std::nullopt;
    return q.result().quit ? extract::kQuitDecision : q.result().value;
  };
  return spec;
}

/// SandboxSpec for A = plain (Omega, Sigma) consensus used as a QC
/// algorithm (it never returns Q — trivially QC-correct).
SandboxSpec consensus_spec(int n) {
  SandboxSpec spec;
  spec.n = n;
  spec.build = [](sim::Simulator& inner, const std::vector<int>& proposals) {
    for (int i = 0; i < inner.n(); ++i) {
      auto& host = inner.add_process<sim::ModularProcess>();
      auto& c =
          host.add_module<consensus::OmegaSigmaConsensusModule<int>>("a");
      c.propose(proposals[static_cast<std::size_t>(i)], [](const int&) {});
    }
  };
  spec.decision_of = [](sim::Simulator& inner,
                        ProcessId p) -> std::optional<int> {
    auto& host = dynamic_cast<sim::ModularProcess&>(inner.process(p));
    auto& c = host.module<consensus::OmegaSigmaConsensusModule<int>>("a");
    if (!c.decided()) return std::nullopt;
    return c.decision();
  };
  return spec;
}

/// A synthetic script in which everyone sees a converged (Omega, Sigma)
/// Psi value; useful for unit-testing the sandbox itself.
std::vector<ScriptStep> converged_script(int n, ProcessId leader,
                                         std::size_t rounds) {
  std::vector<ScriptStep> script;
  fd::FdValue v;
  v.psi = fd::PsiValue::omega_sigma(leader, ProcessSet::full(n));
  v.omega = leader;
  v.sigma = ProcessSet::full(n);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (ProcessId p = 0; p < n; ++p) {
      ScriptStep s;
      s.p = p;
      s.value = v;
      script.push_back(s);
    }
  }
  return script;
}

TEST(QcSandboxTest, PsiQcDecidesAlongConvergedScript) {
  const int n = 3;
  const auto spec = psi_qc_spec(n);
  const auto script = converged_script(n, /*leader=*/1, /*rounds=*/200);
  const auto res = extract::run_sandbox(
      spec, extract::forest_initial_config(n, n), script, /*observer=*/0);
  ASSERT_TRUE(res.decision.has_value());
  EXPECT_EQ(*res.decision, 1);  // All proposed 1.
  EXPECT_LE(res.decided_after, script.size());
}

TEST(QcSandboxTest, ReplayIsDeterministic) {
  const int n = 3;
  const auto spec = psi_qc_spec(n);
  const auto script = converged_script(n, 0, 200);
  const auto cfg = extract::forest_initial_config(n, 1);
  const auto r1 = extract::run_sandbox(spec, cfg, script, 2);
  const auto r2 = extract::run_sandbox(spec, cfg, script, 2);
  EXPECT_EQ(r1.decision, r2.decision);
  EXPECT_EQ(r1.decided_after, r2.decided_after);
  EXPECT_EQ(r1.steppers, r2.steppers);
}

TEST(QcSandboxTest, ForestConfigsShapeDecisions) {
  // With leader L in the script, tree i decides 1 iff L proposes 1,
  // i.e. iff i > L — so the decision flip identifies L.
  const int n = 3;
  const auto spec = psi_qc_spec(n);
  for (ProcessId leader = 0; leader < n; ++leader) {
    const auto script = converged_script(n, leader, 300);
    const auto analysis = extract::analyze_forest(spec, script, 0);
    ASSERT_TRUE(analysis.all_decided);
    EXPECT_FALSE(analysis.any_quit);
    EXPECT_EQ(analysis.leader, leader);
  }
}

TEST(QcSandboxTest, FsBranchScriptYieldsQuitEverywhere) {
  const int n = 3;
  const auto spec = psi_qc_spec(n);
  std::vector<ScriptStep> script;
  fd::FdValue v;
  v.psi = fd::PsiValue::failure_signal(fd::FsColor::kRed);
  for (int r = 0; r < 10; ++r) {
    for (ProcessId p = 0; p < n; ++p) {
      ScriptStep s;
      s.p = p;
      s.value = v;
      script.push_back(s);
    }
  }
  const auto analysis = extract::analyze_forest(spec, script, 1);
  ASSERT_TRUE(analysis.all_decided);
  EXPECT_TRUE(analysis.any_quit);
}

// ---------------------------------------------------- the full extraction

struct PsiRig {
  std::vector<sim::FdSampleRecord> samples;
  std::vector<PsiExtractionModule*> extractors;
};

void build_psi_extraction(sim::Simulator& s, int n, const SandboxSpec& spec,
                          PsiExtractionModule::OuterFactory outer,
                          PsiRig& rig) {
  PsiExtractionModule::Options opt;
  opt.sample_period = 48;
  opt.gossip_period = 96;
  opt.analyze_period = 768;
  opt.window = 512;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    rig.extractors.push_back(&host.add_module<PsiExtractionModule>(
        "psix", spec, outer, &rig.samples, opt));
  }
}

/// Real execution of A = the Psi-based QC (needs a Psi component in D).
PsiExtractionModule::OuterFactory psi_outer() {
  return [](sim::ModuleHost& h,
            const std::string& nm) -> qc::QcApi<ExtractProposal>& {
    return h.add_module<qc::PsiQcModule<ExtractProposal>>(nm);
  };
}

/// Real execution of A = consensus-as-QC (needs (Omega, Sigma) in D).
PsiExtractionModule::OuterFactory consensus_outer() {
  return [](sim::ModuleHost& h,
            const std::string& nm) -> qc::QcApi<ExtractProposal>& {
    return h.add_module<qc::ConsensusAsQcModule<ExtractProposal>>(nm);
  };
}

TEST(ExtractPsiTest, OmegaSigmaBranchFromPsiBackedQc) {
  const int n = 3;
  const auto f = test::pattern(n);  // Crash-free: branch must be OS.
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 120000;
  cfg.seed = 5;
  sim::Simulator s(cfg, f,
                   test::psi_oracle(fd::PsiOracle::Branch::kOmegaSigma,
                                    /*spread=*/300, /*stab=*/300),
                   test::random_sched());
  PsiRig rig;
  build_psi_extraction(s, n, psi_qc_spec(n), psi_outer(), rig);
  s.set_halt_on_done(false);
  s.run();

  for (auto* x : rig.extractors) {
    EXPECT_EQ(x->stage(), PsiExtractionModule::Stage::kOmegaSigma);
    EXPECT_GE(x->sigma_rounds(), 1u);
  }
  const auto r = fd::check_psi_history(rig.samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ExtractPsiTest, FsBranchWhenDetectorTurnsRed) {
  const int n = 3;
  sim::FailurePattern f(n);
  f.crash_at(2, 1000);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 120000;
  cfg.seed = 7;
  sim::Simulator s(cfg, f,
                   test::psi_oracle(fd::PsiOracle::Branch::kFs,
                                    /*spread=*/300, /*stab=*/300),
                   test::random_sched());
  PsiRig rig;
  build_psi_extraction(s, n, psi_qc_spec(n), psi_outer(), rig);
  s.set_halt_on_done(false);
  s.run();

  for (std::size_t i = 0; i < rig.extractors.size(); ++i) {
    if (!f.correct().contains(static_cast<ProcessId>(i))) continue;
    EXPECT_EQ(rig.extractors[i]->stage(), PsiExtractionModule::Stage::kRed);
  }
  const auto r = fd::check_psi_history(rig.samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

TEST(ExtractPsiTest, OmegaSigmaBranchFromConsensusAsQc) {
  // A = consensus (never quits), D = (Omega, Sigma): the extraction must
  // take the (Omega, Sigma) branch even under failures.
  const int n = 3;
  sim::FailurePattern f(n);
  f.crash_at(1, 30000);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 150000;
  cfg.seed = 11;
  sim::Simulator s(cfg, f, test::omega_sigma(/*stab=*/300),
                   test::random_sched());
  PsiRig rig;
  build_psi_extraction(s, n, consensus_spec(n), consensus_outer(), rig);
  s.set_halt_on_done(false);
  s.run();

  for (std::size_t i = 0; i < rig.extractors.size(); ++i) {
    if (!f.correct().contains(static_cast<ProcessId>(i))) continue;
    EXPECT_EQ(rig.extractors[i]->stage(),
              PsiExtractionModule::Stage::kOmegaSigma);
  }
  const auto r = fd::check_psi_history(rig.samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

}  // namespace
}  // namespace wfd

namespace wfd {
namespace {

// Auto branch: when the failure pattern has crashes, D may legally take
// either branch; the emulated Psi must mirror whichever it took.
class ExtractPsiAutoSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtractPsiAutoSweep, EmulationLegalUnderAutoBranch) {
  const int n = 3;
  sim::FailurePattern f(n);
  f.crash_at(static_cast<ProcessId>(GetParam() % n), 900);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 100000;
  cfg.seed = GetParam() * 97 + 5;
  sim::Simulator s(cfg, f,
                   test::psi_oracle(fd::PsiOracle::Branch::kAuto,
                                    /*spread=*/300, /*stab=*/300),
                   test::random_sched());
  PsiRig rig;
  build_psi_extraction(s, n, psi_qc_spec(n), psi_outer(), rig);
  s.set_halt_on_done(false);
  s.run();
  const auto r = fd::check_psi_history(rig.samples, f);
  EXPECT_TRUE(r.ok) << r.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractPsiAutoSweep,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace wfd
