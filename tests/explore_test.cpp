// End-to-end coverage of the exploration subsystem: the DFS explorer
// finds the seeded agreement bug, shrinking preserves and minimizes the
// counterexample, replay files round-trip and re-execute
// deterministically, and the parallel campaign both finds the bug and
// stays clean on the correct protocols.
#include <gtest/gtest.h>

#include <atomic>
#include <climits>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "explore/campaign.h"
#include "explore/explorer.h"
#include "explore/option_text.h"
#include "explore/replay_io.h"
#include "explore/scenario.h"
#include "explore/shrink.h"

namespace wfd::explore {
namespace {

ScenarioOptions bug_options() {
  ScenarioOptions opt;
  opt.problem = "consensus-bug";
  opt.n = 3;
  opt.max_steps = 30;
  return opt;
}

TEST(ScenarioTest, ValidateRejectsBadOptions) {
  ScenarioOptions opt;
  opt.problem = "nonsense";
  EXPECT_FALSE(ScenarioFactory::validate(opt).empty());
  opt = ScenarioOptions{};
  opt.n = 3;
  opt.crashes = 2;  // No correct majority.
  EXPECT_FALSE(ScenarioFactory::validate(opt).empty());
  opt = ScenarioOptions{};
  EXPECT_TRUE(ScenarioFactory::validate(opt).empty());
}

TEST(ExplorerTest, FindsSeededAgreementBug) {
  const ScenarioBuilder build = ScenarioFactory(bug_options()).builder();
  SearchConfig cfg;
  cfg.scenario = bug_options();
  Explorer ex(build, cfg);
  const ExploreReport rep = ex.run();
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_EQ(rep.cex->violation.property, "agreement(decide)");
  EXPECT_GT(rep.stats.nodes, 0u);
  EXPECT_GT(rep.stats.runs, 0u);
}

TEST(ExplorerTest, CleanConsensusHasNoViolationWithinBudget) {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 3;
  opt.max_steps = 25;
  SearchConfig eo;
  eo.scenario = opt;
  eo.max_states = 20000;
  Explorer ex(ScenarioFactory(opt).builder(), eo);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.cex.has_value());
  EXPECT_GT(rep.stats.nodes, 0u);
}

TEST(ExplorerTest, ExhaustsTinyTree) {
  ScenarioOptions opt = bug_options();
  opt.n = 2;
  opt.max_steps = 6;
  SearchConfig eo;
  eo.scenario = opt;
  eo.max_states = 500000;
  eo.stop_at_first = false;  // Keep going past violations.
  Explorer ex(ScenarioFactory(opt).builder(), eo);
  const ExploreReport rep = ex.run();
  EXPECT_TRUE(rep.stats.exhausted);
  // With n=2 the two processes propose 0 and 1; some interleaving makes
  // them hear different proposals first.
  EXPECT_GT(rep.stats.violations, 0u);
}

TEST(ExplorerTest, SleepSetsPruneWithoutLosingTheBug) {
  ScenarioOptions opt = bug_options();
  opt.max_steps = 9;
  SearchConfig with;
  with.scenario = opt;
  with.max_states = 40000;
  with.stop_at_first = false;
  with.reduction = Reduction::kSleepSets;
  // Pure reduction ablation: keep fingerprints out of the picture.
  with.state_fingerprints = false;
  SearchConfig without = with;
  without.reduction = Reduction::kNone;
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  Explorer a(build, with);
  Explorer b(build, without);
  const ExploreReport ra = a.run();
  const ExploreReport rb = b.run();
  EXPECT_GT(ra.stats.sleep_skips, 0u);
  EXPECT_EQ(rb.stats.sleep_skips, 0u);
  EXPECT_LE(ra.stats.runs, rb.stats.runs);
  EXPECT_GT(ra.stats.violations, 0u);
  EXPECT_GT(rb.stats.violations, 0u);
}

TEST(ExplorerTest, FingerprintPruningFires) {
  ScenarioOptions opt = bug_options();
  opt.max_steps = 12;
  SearchConfig eo;
  eo.scenario = opt;
  eo.max_states = 5000;
  eo.stop_at_first = false;
  // The seeded-bug scenario is fully modular, so the composed
  // Module::encode_state fingerprint is complete and distinct schedules
  // converge onto equal states (e.g. permuted deliveries of equal
  // proposals); pruning must fire within a modest budget.
  Explorer ex(ScenarioFactory(opt).builder(), eo);
  const ExploreReport rep = ex.run();
  EXPECT_GT(rep.stats.fp_prunes, 0u);
}

TEST(ShrinkTest, ShrunkCounterexampleStillReproduces) {
  const ScenarioBuilder build = ScenarioFactory(bug_options()).builder();
  SearchConfig cfg;
  cfg.scenario = bug_options();
  Explorer ex(build, cfg);
  const ExploreReport rep = ex.run();
  ASSERT_TRUE(rep.cex.has_value());

  const ShrinkResult s =
      shrink(build, rep.cex->decisions, rep.cex->violation.property);
  EXPECT_LE(s.decisions.size(), rep.cex->decisions.size());
  const ReplayOutcome out = run_replay(build, s.decisions);
  ASSERT_TRUE(out.violation.has_value());
  EXPECT_EQ(out.violation->property, rep.cex->violation.property);
}

TEST(ReplayTest, ReplayIsDeterministic) {
  const ScenarioBuilder build = ScenarioFactory(bug_options()).builder();
  SearchConfig cfg;
  cfg.scenario = bug_options();
  Explorer ex(build, cfg);
  const ExploreReport rep = ex.run();
  ASSERT_TRUE(rep.cex.has_value());
  const ReplayOutcome a = run_replay(build, rep.cex->decisions);
  const ReplayOutcome b = run_replay(build, rep.cex->decisions);
  ASSERT_TRUE(a.violation.has_value());
  ASSERT_TRUE(b.violation.has_value());
  EXPECT_EQ(a.violation->message, b.violation->message);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(ReplayTest, FileRoundTrip) {
  ReplayFile f;
  f.scenario = bug_options();
  f.scenario.crashes = 0;
  f.scenario.stabilization = 20;
  f.decisions = {3, 1, 4, 1, 5};
  f.note = "agreement(decide): example";
  std::string error;
  const auto parsed = parse_replay(to_text(f), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->scenario.problem, f.scenario.problem);
  EXPECT_EQ(parsed->scenario.n, f.scenario.n);
  EXPECT_EQ(parsed->scenario.max_steps, f.scenario.max_steps);
  EXPECT_EQ(parsed->scenario.stabilization, f.scenario.stabilization);
  EXPECT_EQ(parsed->decisions, f.decisions);
  EXPECT_EQ(parsed->note, f.note);
}

TEST(ReplayTest, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(parse_replay("problem=consensus\n", &error).has_value());
  EXPECT_FALSE(parse_replay("decisions=1,x\n", &error).has_value());
  EXPECT_FALSE(
      parse_replay("problem=nope\ndecisions=1\n", &error).has_value());
}

TEST(ReplayTest, ParseRejectsNumericOverflow) {
  // Out-of-range numerics must fail the parse, not silently wrap into a
  // small in-range value that replays a different scenario.
  std::string error;
  // 2^64: one past UINT64_MAX.
  EXPECT_FALSE(parse_replay("problem=consensus\n"
                            "seed=18446744073709551616\ndecisions=1\n",
                            &error)
                   .has_value());
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
  // Far past UINT64_MAX (the classic wrap-to-small-value shape).
  EXPECT_FALSE(parse_replay("problem=consensus\n"
                            "max_steps=99999999999999999999999\n"
                            "decisions=1\n",
                            &error)
                   .has_value());
  // Decisions are 32-bit.
  EXPECT_FALSE(
      parse_replay("problem=consensus\ndecisions=4294967296\n", &error)
          .has_value());
  // Ints: one past INT_MAX, and a negative that a naive `-(int)v`
  // negation would turn into a positive number via signed overflow.
  EXPECT_FALSE(
      parse_replay("problem=consensus\nn=2147483648\ndecisions=1\n", &error)
          .has_value());
  EXPECT_FALSE(parse_replay("problem=consensus\nn=-2147483649\ndecisions=1\n",
                            &error)
                   .has_value());
}

TEST(ReplayTest, ScalarParsersGuardTheBoundaries) {
  std::uint64_t u = 0;
  EXPECT_TRUE(detail::parse_u64("18446744073709551615", &u));
  EXPECT_EQ(u, UINT64_MAX);
  EXPECT_FALSE(detail::parse_u64("18446744073709551616", &u));
  EXPECT_FALSE(detail::parse_u64("99999999999999999999999", &u));
  EXPECT_FALSE(detail::parse_u64("", &u));
  EXPECT_FALSE(detail::parse_u64("12x", &u));

  int i = 0;
  EXPECT_TRUE(detail::parse_int("2147483647", &i));
  EXPECT_EQ(i, INT_MAX);
  // INT_MIN is representable even though its magnitude overflows a
  // positive int — the historical UB case for `-(int)v` negation.
  EXPECT_TRUE(detail::parse_int("-2147483648", &i));
  EXPECT_EQ(i, INT_MIN);
  EXPECT_FALSE(detail::parse_int("2147483648", &i));
  EXPECT_FALSE(detail::parse_int("-2147483649", &i));
  // A huge negative must not wrap into a small positive (the wrap shape
  // -(uint32)4294967295 == 1).
  EXPECT_FALSE(detail::parse_int("-4294967295", &i));
  EXPECT_FALSE(detail::parse_int("-", &i));
}

TEST(ReplayTest, RoundTripsEveryProblemAndAwkwardNotes) {
  // Property check: to_text -> parse_replay is the identity over a grid
  // of option sets and notes — including notes with newlines, which used
  // to be written raw and break the line-oriented format.
  const std::vector<std::string> notes = {
      "",
      "plain provenance",
      "line one\nline two",
      "trailing newline\n",
      "tabs\tand \\backslashes\\",
      "carriage\r\nreturns",
  };
  std::size_t combos = 0;
  for (const ProblemSpec& spec : ScenarioFactory::problems()) {
    for (const std::string& note : notes) {
      ReplayFile f;
      f.scenario.problem = spec.name;
      f.scenario.n = 3;
      f.scenario.max_steps = 17;
      f.scenario.seed = 99;
      f.scenario.stabilization = (combos % 2 == 0) ? kNever : Time{12};
      f.scenario.fd_per_query = combos % 3 != 0;
      if (spec.name == "nbac") f.scenario.nbac_no_voter = 1;
      f.decisions = {0, 3, 1, 4, 1, 5, 9, 2, 6};
      f.note = note;
      ASSERT_EQ(ScenarioFactory::validate(f.scenario), "") << spec.name;
      std::string error;
      const auto p = parse_replay(to_text(f), &error);
      ASSERT_TRUE(p.has_value()) << spec.name << ": " << error;
      EXPECT_EQ(p->note, f.note) << spec.name;
      EXPECT_EQ(p->decisions, f.decisions) << spec.name;
      // Rendering covers every scenario field, so text equality is
      // full-struct equality.
      EXPECT_EQ(to_text(*p), to_text(f)) << spec.name;
      ++combos;
    }
  }
  EXPECT_GE(combos, notes.size() * 5);
}

TEST(CampaignTest, FindsSeededBugAndShrinksIt) {
  SearchConfig co;
  co.scenario = bug_options();
  co.threads = 4;
  co.runs = 2000;
  co.frontier_workers = 2;
  co.frontier_states = 2000;
  const ScenarioBuilder build = ScenarioFactory(bug_options()).builder();
  const CampaignReport rep = run_campaign(build, co);
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_EQ(rep.cex->violation.property, "agreement(decide)");
  EXPECT_GT(rep.violations, 0u);
  // The claimed counterexample was shrunk and still reproduces.
  EXPECT_GT(rep.shrunk_from, 0u);
  const ReplayOutcome out = run_replay(build, rep.cex->decisions);
  ASSERT_TRUE(out.violation.has_value());
  EXPECT_EQ(out.violation->property, "agreement(decide)");
}

// Fires on exactly one invariant check across every scenario instance
// the campaign builds, then never again: after the claim the tree is
// clean, so nothing but the stop flag can end a frontier worker's DFS
// early.
class OneShotInvariant : public Invariant {
 public:
  explicit OneShotInvariant(std::shared_ptr<std::atomic<std::uint64_t>> fuse)
      : fuse_(std::move(fuse)) {}
  [[nodiscard]] std::string name() const override { return "one-shot"; }
  std::optional<Violation> check(const sim::Simulator& sim) override {
    (void)sim;
    if (fuse_->fetch_add(1, std::memory_order_relaxed) == kFireAt) {
      return Violation{name(), "the fuse burned down", 0};
    }
    return std::nullopt;
  }

  static constexpr std::uint64_t kFireAt = 2000;

 private:
  std::shared_ptr<std::atomic<std::uint64_t>> fuse_;
};

TEST(CampaignTest, StopFlagCancelsFrontierWorkers) {
  // Regression: frontier workers used to ignore the campaign's stop
  // flag, so under stop_at_first each one kept grinding its full
  // frontier_states budget after the counterexample was already claimed.
  // The budgets below are sized so that an un-cancelled worker would
  // materialize millions of nodes (minutes of work); with the flag
  // plumbed through SearchConfig::cancel the campaign returns almost
  // immediately and the node total stays far below the budget.
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 3;
  opt.max_steps = 40;
  const ScenarioBuilder clean = ScenarioFactory(opt).builder();
  auto fuse = std::make_shared<std::atomic<std::uint64_t>>(0);
  const ScenarioBuilder build = [clean, fuse](sim::ChoiceSource& choices) {
    Scenario sc = clean(choices);
    sc.invariants.push_back(std::make_unique<OneShotInvariant>(fuse));
    return sc;
  };
  SearchConfig co;
  co.scenario = opt;
  co.threads = 2;
  co.runs = 1000000;
  co.frontier_workers = 2;
  co.frontier_states = 10000000;
  co.shrink = false;  // The one-shot violation cannot re-reproduce.
  co.check_eventual = false;
  const CampaignReport rep = run_campaign(build, co);
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_EQ(rep.cex->violation.property, "one-shot");
  EXPECT_EQ(rep.violations, 1u);
  EXPECT_LT(rep.nodes, co.frontier_states / 10);
  EXPECT_LT(rep.runs, co.runs / 10);
}

// Legality sweeps: the correct protocols with choice-driven (adversarial
// but legal) detector histories must never violate their safety clauses.
TEST(CampaignTest, CorrectProtocolsStayClean) {
  for (const char* problem : {"consensus", "qc", "nbac", "sigma"}) {
    ScenarioOptions opt;
    opt.problem = problem;
    opt.n = 3;
    opt.crashes = 1;
    opt.max_steps = 50;
    if (opt.problem == "nbac") opt.nbac_no_voter = 0;
    SearchConfig co;
    co.scenario = opt;
    co.threads = 4;
    co.runs = 300;
    co.shrink = false;
    const CampaignReport rep =
        run_campaign(ScenarioFactory(opt).builder(), co);
    EXPECT_FALSE(rep.cex.has_value())
        << problem << ": " << rep.cex->violation.property << " — "
        << rep.cex->violation.message;
    EXPECT_EQ(rep.violations, 0u) << problem;
    EXPECT_EQ(rep.runs, 300u) << problem;
  }
}

}  // namespace
}  // namespace wfd::explore
