// End-to-end coverage of the exploration subsystem: the DFS explorer
// finds the seeded agreement bug, shrinking preserves and minimizes the
// counterexample, replay files round-trip and re-execute
// deterministically, and the parallel campaign both finds the bug and
// stays clean on the correct protocols.
#include <gtest/gtest.h>

#include <string>

#include "explore/campaign.h"
#include "explore/explorer.h"
#include "explore/replay_io.h"
#include "explore/scenario.h"
#include "explore/shrink.h"

namespace wfd::explore {
namespace {

ScenarioOptions bug_options() {
  ScenarioOptions opt;
  opt.problem = "consensus-bug";
  opt.n = 3;
  opt.max_steps = 30;
  return opt;
}

TEST(ScenarioTest, ValidateRejectsBadOptions) {
  ScenarioOptions opt;
  opt.problem = "nonsense";
  EXPECT_FALSE(ScenarioFactory::validate(opt).empty());
  opt = ScenarioOptions{};
  opt.n = 3;
  opt.crashes = 2;  // No correct majority.
  EXPECT_FALSE(ScenarioFactory::validate(opt).empty());
  opt = ScenarioOptions{};
  EXPECT_TRUE(ScenarioFactory::validate(opt).empty());
}

TEST(ExplorerTest, FindsSeededAgreementBug) {
  const ScenarioBuilder build = ScenarioFactory(bug_options()).builder();
  Explorer ex(build, ExplorerOptions{});
  const ExploreReport rep = ex.run();
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_EQ(rep.cex->violation.property, "agreement(decide)");
  EXPECT_GT(rep.stats.nodes, 0u);
  EXPECT_GT(rep.stats.runs, 0u);
}

TEST(ExplorerTest, CleanConsensusHasNoViolationWithinBudget) {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = 3;
  opt.max_steps = 25;
  ExplorerOptions eo;
  eo.max_states = 20000;
  Explorer ex(ScenarioFactory(opt).builder(), eo);
  const ExploreReport rep = ex.run();
  EXPECT_FALSE(rep.cex.has_value());
  EXPECT_GT(rep.stats.nodes, 0u);
}

TEST(ExplorerTest, ExhaustsTinyTree) {
  ScenarioOptions opt = bug_options();
  opt.n = 2;
  opt.max_steps = 6;
  ExplorerOptions eo;
  eo.max_states = 500000;
  eo.stop_at_first = false;  // Keep going past violations.
  Explorer ex(ScenarioFactory(opt).builder(), eo);
  const ExploreReport rep = ex.run();
  EXPECT_TRUE(rep.stats.exhausted);
  // With n=2 the two processes propose 0 and 1; some interleaving makes
  // them hear different proposals first.
  EXPECT_GT(rep.stats.violations, 0u);
}

TEST(ExplorerTest, SleepSetsPruneWithoutLosingTheBug) {
  ScenarioOptions opt = bug_options();
  opt.max_steps = 9;
  ExplorerOptions with;
  with.max_states = 40000;
  with.stop_at_first = false;
  with.reduction = Reduction::kSleepSets;
  // Pure reduction ablation: keep fingerprints out of the picture.
  with.state_fingerprints = false;
  ExplorerOptions without = with;
  without.reduction = Reduction::kNone;
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  Explorer a(build, with);
  Explorer b(build, without);
  const ExploreReport ra = a.run();
  const ExploreReport rb = b.run();
  EXPECT_GT(ra.stats.sleep_skips, 0u);
  EXPECT_EQ(rb.stats.sleep_skips, 0u);
  EXPECT_LE(ra.stats.runs, rb.stats.runs);
  EXPECT_GT(ra.stats.violations, 0u);
  EXPECT_GT(rb.stats.violations, 0u);
}

TEST(ExplorerTest, FingerprintPruningFires) {
  ScenarioOptions opt = bug_options();
  opt.max_steps = 12;
  ExplorerOptions eo;
  eo.max_states = 5000;
  eo.stop_at_first = false;
  // The seeded-bug scenario is fully modular, so the composed
  // Module::encode_state fingerprint is complete and distinct schedules
  // converge onto equal states (e.g. permuted deliveries of equal
  // proposals); pruning must fire within a modest budget.
  Explorer ex(ScenarioFactory(opt).builder(), eo);
  const ExploreReport rep = ex.run();
  EXPECT_GT(rep.stats.fp_prunes, 0u);
}

TEST(ShrinkTest, ShrunkCounterexampleStillReproduces) {
  const ScenarioBuilder build = ScenarioFactory(bug_options()).builder();
  Explorer ex(build, ExplorerOptions{});
  const ExploreReport rep = ex.run();
  ASSERT_TRUE(rep.cex.has_value());

  const ShrinkResult s =
      shrink(build, rep.cex->decisions, rep.cex->violation.property);
  EXPECT_LE(s.decisions.size(), rep.cex->decisions.size());
  const ReplayOutcome out = run_replay(build, s.decisions);
  ASSERT_TRUE(out.violation.has_value());
  EXPECT_EQ(out.violation->property, rep.cex->violation.property);
}

TEST(ReplayTest, ReplayIsDeterministic) {
  const ScenarioBuilder build = ScenarioFactory(bug_options()).builder();
  Explorer ex(build, ExplorerOptions{});
  const ExploreReport rep = ex.run();
  ASSERT_TRUE(rep.cex.has_value());
  const ReplayOutcome a = run_replay(build, rep.cex->decisions);
  const ReplayOutcome b = run_replay(build, rep.cex->decisions);
  ASSERT_TRUE(a.violation.has_value());
  ASSERT_TRUE(b.violation.has_value());
  EXPECT_EQ(a.violation->message, b.violation->message);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(ReplayTest, FileRoundTrip) {
  ReplayFile f;
  f.scenario = bug_options();
  f.scenario.crashes = 0;
  f.scenario.stabilization = 20;
  f.decisions = {3, 1, 4, 1, 5};
  f.note = "agreement(decide): example";
  std::string error;
  const auto parsed = parse_replay(to_text(f), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->scenario.problem, f.scenario.problem);
  EXPECT_EQ(parsed->scenario.n, f.scenario.n);
  EXPECT_EQ(parsed->scenario.max_steps, f.scenario.max_steps);
  EXPECT_EQ(parsed->scenario.stabilization, f.scenario.stabilization);
  EXPECT_EQ(parsed->decisions, f.decisions);
  EXPECT_EQ(parsed->note, f.note);
}

TEST(ReplayTest, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(parse_replay("problem=consensus\n", &error).has_value());
  EXPECT_FALSE(parse_replay("decisions=1,x\n", &error).has_value());
  EXPECT_FALSE(
      parse_replay("problem=nope\ndecisions=1\n", &error).has_value());
}

TEST(CampaignTest, FindsSeededBugAndShrinksIt) {
  CampaignOptions co;
  co.threads = 4;
  co.runs = 2000;
  co.frontier_workers = 2;
  co.frontier_states = 2000;
  const ScenarioBuilder build = ScenarioFactory(bug_options()).builder();
  const CampaignReport rep = run_campaign(build, co);
  ASSERT_TRUE(rep.cex.has_value());
  EXPECT_EQ(rep.cex->violation.property, "agreement(decide)");
  EXPECT_GT(rep.violations, 0u);
  // The claimed counterexample was shrunk and still reproduces.
  EXPECT_GT(rep.shrunk_from, 0u);
  const ReplayOutcome out = run_replay(build, rep.cex->decisions);
  ASSERT_TRUE(out.violation.has_value());
  EXPECT_EQ(out.violation->property, "agreement(decide)");
}

// Legality sweeps: the correct protocols with choice-driven (adversarial
// but legal) detector histories must never violate their safety clauses.
TEST(CampaignTest, CorrectProtocolsStayClean) {
  for (const char* problem : {"consensus", "qc", "nbac", "sigma"}) {
    ScenarioOptions opt;
    opt.problem = problem;
    opt.n = 3;
    opt.crashes = 1;
    opt.max_steps = 50;
    if (opt.problem == "nbac") opt.nbac_no_voter = 0;
    CampaignOptions co;
    co.threads = 4;
    co.runs = 300;
    co.shrink = false;
    const CampaignReport rep =
        run_campaign(ScenarioFactory(opt).builder(), co);
    EXPECT_FALSE(rep.cex.has_value())
        << problem << ": " << rep.cex->violation.property << " — "
        << rep.cex->violation.message;
    EXPECT_EQ(rep.violations, 0u) << problem;
    EXPECT_EQ(rep.runs, 300u) << problem;
  }
}

}  // namespace
}  // namespace wfd::explore
