// Corollary 3 substrate: registers implemented from consensus via a
// replicated log (state-machine replication). Linearizability follows
// from the total log order; these tests check it with the same checker
// used for ABD.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "reg/linearizability.h"
#include "reg/register_client.h"
#include "smr/register_from_consensus.h"
#include "test_util.h"

namespace wfd {
namespace {

using smr::SmrRegisterModule;

// A workload driver against the SMR register (the ABD workload module is
// typed to the ABD register, so this mirrors it).
class SmrWorkload : public sim::Module {
 public:
  SmrWorkload(SmrRegisterModule* target, reg::History* history, int num_ops)
      : target_(target), history_(history), ops_left_(num_ops) {}

  void on_message(ProcessId, const sim::Payload&) override {}

  void on_tick() override {
    if (in_flight_ || ops_left_ == 0) return;
    in_flight_ = true;
    --ops_left_;
    const bool is_write = rng().chance(1, 2);
    if (is_write) {
      const std::int64_t v = static_cast<std::int64_t>(
          (++counter_ << 8) | static_cast<std::uint64_t>(self()));
      const auto idx = history_->invoke(self(), true, v, now());
      target_->write(v, [this, idx] {
        history_->respond(idx, now(), 0);
        in_flight_ = false;
      });
    } else {
      const auto idx = history_->invoke(self(), false, 0, now());
      target_->read([this, idx](std::int64_t v) {
        history_->respond(idx, now(), v);
        in_flight_ = false;
      });
    }
  }

  [[nodiscard]] bool done() const override {
    return ops_left_ == 0 && !in_flight_;
  }

 private:
  SmrRegisterModule* target_;
  reg::History* history_;
  int ops_left_;
  bool in_flight_ = false;
  std::uint64_t counter_ = 0;
};

class SmrSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SmrSweep, SmrRegisterIsLinearizable) {
  const int n = 3;
  Rng rng(GetParam() * 67 + 11);
  sim::AnyEnvironment env(n);
  const auto f = env.sample(rng, 3000);

  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 600000;
  cfg.seed = GetParam();
  sim::Simulator s(cfg, f, test::omega_sigma(), test::random_sched());
  reg::History history;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& r = host.add_module<SmrRegisterModule>("smr");
    host.add_module<SmrWorkload>("load", &r, &history, 3);
  }
  const auto res = s.run();
  EXPECT_TRUE(res.all_done);
  const auto lin = reg::check_linearizable(history);
  EXPECT_TRUE(lin.ok) << lin.violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmrSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(SmrTest, ReplicasConvergeOnAppliedPrefix) {
  const int n = 3;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 600000;
  cfg.seed = 71;
  sim::Simulator s(cfg, test::pattern(n), test::omega_sigma(),
                   test::random_sched());
  reg::History history;
  std::vector<SmrRegisterModule*> regs;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& r = host.add_module<SmrRegisterModule>("smr");
    regs.push_back(&r);
    host.add_module<SmrWorkload>("load", &r, &history, 4);
  }
  const auto res = s.run();
  ASSERT_TRUE(res.all_done);
  // Let stragglers catch up on remaining Decide messages.
  s.set_halt_on_done(false);
  s.run_for(50000);
  // All replicas that applied the same number of slots hold equal state;
  // at least the full workload's writes were applied somewhere.
  std::uint64_t max_applied = 0;
  for (auto* r : regs) max_applied = std::max(max_applied, r->applied_slots());
  EXPECT_GT(max_applied, 0u);
  for (auto* a : regs) {
    for (auto* b : regs) {
      if (a->applied_slots() == b->applied_slots()) {
        EXPECT_EQ(a->replica_value(), b->replica_value());
      }
    }
  }
}

}  // namespace
}  // namespace wfd
