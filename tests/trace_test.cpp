// Trace and logging plumbing: the property checkers depend on exactly
// this bookkeeping, so it gets its own unit coverage.
#include <gtest/gtest.h>

#include "common/log.h"
#include "sim/trace.h"

namespace wfd {
namespace {

TEST(TraceTest, StatsCountSteps) {
  sim::Trace t;
  t.count_step(false);
  t.count_step(true);
  t.count_step(true);
  EXPECT_EQ(t.stats().steps, 3u);
  EXPECT_EQ(t.stats().lambda_steps, 2u);
}

TEST(TraceTest, StatsCountMessages) {
  sim::Trace t;
  t.count_send();
  t.count_send();
  t.count_delivery();
  EXPECT_EQ(t.stats().messages_sent, 2u);
  EXPECT_EQ(t.stats().messages_delivered, 1u);
}

TEST(TraceTest, SamplesRecordedOnlyWhenEnabled) {
  sim::Trace t;
  fd::FdValue v;
  v.omega = 2;
  t.record_sample(0, 5, v);
  EXPECT_TRUE(t.samples().empty());
  t.set_record_samples(true);
  t.record_sample(1, 6, v);
  ASSERT_EQ(t.samples().size(), 1u);
  EXPECT_EQ(t.samples()[0].p, 1);
  EXPECT_EQ(t.samples()[0].t, 6u);
  EXPECT_EQ(t.samples()[0].value.omega, 2);
}

TEST(TraceTest, EventsOfKindFiltersAndPreservesOrder) {
  sim::Trace t;
  t.record_event(0, 10, "decide", 1);
  t.record_event(1, 20, "commit", 0);
  t.record_event(2, 30, "decide", 1);
  const auto decides = t.events_of_kind("decide");
  ASSERT_EQ(decides.size(), 2u);
  EXPECT_EQ(decides[0].p, 0);
  EXPECT_EQ(decides[1].p, 2);
  EXPECT_TRUE(t.events_of_kind("abort").empty());
}

TEST(TraceTest, FirstEventPerProcess) {
  sim::Trace t;
  t.record_event(1, 20, "decide", 7);
  t.record_event(1, 40, "decide", 8);
  const auto e = t.first_event(1, "decide");
  EXPECT_EQ(e.t, 20u);
  EXPECT_EQ(e.value, 7);
  const auto missing = t.first_event(0, "decide");
  EXPECT_EQ(missing.t, kNever);
}

TEST(LogTest, LevelGatesOutput) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kOff);
  WFD_INFO("this must not crash while disabled");
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kDebug));
  WFD_DEBUG("enabled debug line " << 42);
  WFD_TRACE("trace is above the threshold and skipped");
  set_log_level(old);
}

TEST(FdValueTest, ToStringMentionsComponents) {
  fd::FdValue v;
  v.omega = 3;
  v.sigma = ProcessSet{0, 3};
  v.fs = fd::FsColor::kRed;
  const auto s = v.to_string();
  EXPECT_NE(s.find("omega=3"), std::string::npos);
  EXPECT_NE(s.find("{0,3}"), std::string::npos);
  EXPECT_NE(s.find("red"), std::string::npos);
}

TEST(FdValueTest, PsiValueFactoriesAndEquality) {
  const auto b = fd::PsiValue::bottom();
  EXPECT_EQ(b.mode, fd::PsiValue::Mode::kBottom);
  const auto os = fd::PsiValue::omega_sigma(1, ProcessSet{1, 2});
  EXPECT_EQ(os.mode, fd::PsiValue::Mode::kOmegaSigma);
  EXPECT_EQ(os.omega, 1);
  const auto fs = fd::PsiValue::failure_signal(fd::FsColor::kGreen);
  EXPECT_EQ(fs.mode, fd::PsiValue::Mode::kFs);
  EXPECT_NE(b, os);
  EXPECT_EQ(os, fd::PsiValue::omega_sigma(1, ProcessSet{1, 2}));
}

}  // namespace
}  // namespace wfd
