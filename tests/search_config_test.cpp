// SearchConfig is the single configuration surface of the exploration
// subsystem: one CLI parser, one validate(), one JSON rendering and one
// snapshot-header rendering shared by wfd_check, the campaign driver
// and the snapshot store. These tests pin that contract: a config built
// from CLI flags round-trips through the snapshot header (render →
// apply → render identical), execution-shape knobs stay out of the
// header by design, the JSON view carries every soundness lever, and
// validate() rejects the configurations no driver may run.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "explore/search_config.h"

namespace wfd::explore {
namespace {

SearchConfig from_flags(const std::vector<std::string>& flags) {
  SearchConfig cfg;
  for (const std::string& f : flags) {
    EXPECT_EQ(apply_cli_flag(cfg, f), CliResult::kApplied) << f;
  }
  return cfg;
}

std::string header_text(const SearchConfig& cfg) {
  std::ostringstream out;
  search_header_to_text(out, cfg);
  return out.str();
}

SearchConfig apply_header(const std::string& text) {
  SearchConfig cfg;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t eq = line.find('=');
    EXPECT_NE(eq, std::string::npos) << line;
    bool ok = false;
    EXPECT_TRUE(
        search_header_apply(cfg, line.substr(0, eq), line.substr(eq + 1), &ok))
        << "not a header field: " << line;
    EXPECT_TRUE(ok) << "value did not parse: " << line;
  }
  return cfg;
}

TEST(SearchConfigTest, CliFlagsRoundTripThroughSnapshotHeader) {
  const SearchConfig cfg = from_flags(
      {"--problem=nbac", "--n=4", "--depth=18", "--crash=explore",
       "--fd=static", "--seed=11", "--reduction=sleep-sets", "--dep=process",
       "--no-fault-dep", "--symmetry", "--no-fingerprints", "--order-seed=9",
       "--threads=8", "--max-states=0", "--budget-states=123",
       "--save-state=/tmp/never-written.snap"});
  EXPECT_EQ(validate(cfg), "");

  const std::string header = header_text(cfg);
  const SearchConfig back = apply_header(header);
  EXPECT_EQ(header_text(back), header) << "apply → render must be identity";
  EXPECT_EQ(validate(back), "");

  // Soundness fields survive the trip...
  EXPECT_EQ(back.scenario.problem, "nbac");
  EXPECT_EQ(back.scenario.n, 4);
  EXPECT_EQ(back.scenario.crash_mode, "explore");
  EXPECT_EQ(back.scenario.max_steps, 18);
  EXPECT_EQ(back.scenario.seed, 11u);
  EXPECT_FALSE(back.scenario.fd_per_query);
  EXPECT_EQ(back.reduction, Reduction::kSleepSets);
  EXPECT_EQ(back.dependence, Dependence::kProcess);
  EXPECT_FALSE(back.fault_dependence);
  EXPECT_TRUE(back.symmetry);
  EXPECT_FALSE(back.state_fingerprints);
  EXPECT_EQ(back.order_seed, 9u);

  // ...while execution-shape knobs are intentionally absent from the
  // header (resuming with different threads or budgets is legal), so
  // the applied config keeps their defaults.
  EXPECT_EQ(back.threads, 1);
  EXPECT_EQ(back.max_states, SearchConfig{}.max_states);
  EXPECT_EQ(back.budget_states, 0u);
  EXPECT_TRUE(back.save_path.empty());
}

TEST(SearchConfigTest, JsonCarriesEverySoundnessLever) {
  const SearchConfig cfg = from_flags(
      {"--problem=register", "--n=3", "--reg-ops=1", "--reg-readers=1",
       "--loss=drop:2,dup:1", "--depth=20", "--reduction=dpor",
       "--dep=content", "--threads=4", "--order-seed=5"});
  const std::string json = config_to_json(cfg);
  for (const char* needle :
       {"\"problem\":\"register\"", "\"n\":3", "\"loss_drops\":2",
        "\"loss_dups\":1", "\"depth\":20", "\"reduction\":\"dpor\"",
        "\"dependence\":\"content\"", "\"fault_dependence\":true",
        "\"symmetry\":false", "\"state_fingerprints\":true",
        "\"order_seed\":5", "\"threads\":4"}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << needle << " missing from " << json;
  }
}

TEST(SearchConfigTest, CliFlagOutcomes) {
  SearchConfig cfg;
  // Not SearchConfig flags: the caller (wfd_check) layers these on top.
  EXPECT_EQ(apply_cli_flag(cfg, "--exhaustive"), CliResult::kUnknown);
  EXPECT_EQ(apply_cli_flag(cfg, "--json"), CliResult::kUnknown);
  // Recognized flag, unparseable value.
  EXPECT_EQ(apply_cli_flag(cfg, "--n=banana"), CliResult::kBadValue);
  EXPECT_EQ(apply_cli_flag(cfg, "--reduction=fast"), CliResult::kBadValue);
  EXPECT_EQ(apply_cli_flag(cfg, "--crash=maybe"), CliResult::kBadValue);
  EXPECT_EQ(apply_cli_flag(cfg, "--threads=0"), CliResult::kBadValue);
  EXPECT_EQ(apply_cli_flag(cfg, "--loss=drop:0"), CliResult::kBadValue);
  // Bad values must not have mutated the config.
  EXPECT_EQ(cfg.reduction, Reduction::kDpor);
  EXPECT_EQ(cfg.scenario.crash_mode, SearchConfig{}.scenario.crash_mode);
}

TEST(SearchConfigTest, ValidateRejectsWhatDriversMustNotRun) {
  SearchConfig cfg;
  cfg.scenario.problem = "consensus";
  cfg.scenario.n = 3;
  EXPECT_EQ(validate(cfg), "");

  SearchConfig threads = cfg;
  threads.threads = 65;
  EXPECT_NE(validate(threads).find("threads"), std::string::npos);

  SearchConfig frontier = cfg;
  frontier.frontier_workers = -1;
  EXPECT_NE(validate(frontier).find("frontier"), std::string::npos);

  // Scripted crashes pin concrete process ids, so no symmetry classes
  // exist and enabling the reduction must be refused, not ignored.
  SearchConfig scripted = cfg;
  scripted.scenario.crashes = 1;
  scripted.symmetry = true;
  EXPECT_NE(validate(scripted).find("symmetry"), std::string::npos);

  SearchConfig bogus;
  bogus.scenario.problem = "no-such-problem";
  EXPECT_NE(validate(bogus), "");
}

}  // namespace
}  // namespace wfd::explore
