// E10: the detector landscape. Shape tables: convergence/reaction
// witnesses of every oracle class vs its stabilisation bound, and the
// heartbeat Omega's convergence vs GST — the constructive counterpart of
// the Chandra-Toueg hierarchy the paper builds on.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "fd/classic_oracles.h"
#include "fd/history_checker.h"
#include "fd/omega_heartbeat.h"
#include "sim/fd_sampler.h"
#include "sim/process.h"

namespace wfd::bench {
namespace {

class NopProcess : public sim::Process {
 public:
  void on_step(sim::Context&, const sim::Envelope*) override {}
};

double oracle_witness(const char* which, Time stab, std::uint64_t seed) {
  const int n = 5;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 8 * stab + 20000;
  cfg.seed = seed;
  cfg.record_fd_samples = true;
  auto f = staggered_crashes(n, 2, stab);
  std::unique_ptr<fd::Oracle> oracle;
  if (std::string(which) == "omega") {
    fd::OmegaOracle::Options o;
    o.max_stabilization = stab;
    oracle = std::make_unique<fd::OmegaOracle>(o);
  } else if (std::string(which) == "sigma") {
    fd::SigmaOracle::Options o;
    o.max_stabilization = stab;
    oracle = std::make_unique<fd::SigmaOracle>(o);
  } else {
    fd::FsOracle::Options o;
    o.max_reaction_lag = stab;
    oracle = std::make_unique<fd::FsOracle>(o);
  }
  sim::Simulator s(cfg, f, std::move(oracle), random_sched());
  for (int i = 0; i < n; ++i) s.add_process<NopProcess>();
  s.run();
  fd::CheckResult r;
  if (std::string(which) == "omega") {
    r = fd::check_omega_history(s.trace().samples(), f);
  } else if (std::string(which) == "sigma") {
    r = fd::check_sigma_history(s.trace().samples(), f);
  } else {
    r = fd::check_fs_history(s.trace().samples(), f);
  }
  return r.ok ? static_cast<double>(r.witness_time) : -1.0;
}

double heartbeat_omega_witness(Time gst, std::uint64_t seed) {
  const int n = 4;
  sim::FailurePattern f(n);
  f.crash_at(0, gst / 2);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 6 * gst + 80000;
  cfg.seed = seed;
  sim::Simulator s(cfg, f, std::make_unique<fd::NullOracle>(),
                   std::make_unique<sim::PartialSynchronyScheduler>(gst));
  std::vector<sim::FdSampleRecord> samples;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& om = host.add_module<fd::OmegaHeartbeatModule>("omega");
    host.add_module<sim::FdSamplerModule>("sampler", &om, &samples, 32);
  }
  s.set_halt_on_done(false);
  s.run();
  const auto r = fd::check_omega_history(samples, f);
  return r.ok ? static_cast<double>(r.witness_time) : -1.0;
}

void shape_tables() {
  table_header("E10a: oracle convergence witness vs stabilisation bound "
               "(n=5, 2 crashes)",
               "  stabilisation   omega-witness   sigma-witness   fs-witness");
  for (Time stab : {200, 800, 3200, 12800}) {
    Series om, si, fs;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      om.add(oracle_witness("omega", stab, seed));
      si.add(oracle_witness("sigma", stab, seed));
      fs.add(oracle_witness("fs", stab, seed));
    }
    std::printf("  %13llu   %13.0f   %13.0f   %10.0f\n",
                static_cast<unsigned long long>(stab), om.mean(), si.mean(),
                fs.mean());
  }

  table_header("E10b: heartbeat Omega convergence vs GST (n=4, 1 crash)",
               "      GST   convergence-witness(t)");
  for (Time gst : {2000, 8000, 32000}) {
    Series w;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      w.add(heartbeat_omega_witness(gst, seed));
    }
    std::printf("  %7llu   %22.0f\n", static_cast<unsigned long long>(gst),
                w.mean());
  }
  std::printf("\nexpected shape: every witness scales linearly with the "
              "stabilisation bound / GST; -1 would mean an illegal history "
              "(never happens).\n");
}

void BM_OracleQuery(benchmark::State& state) {
  const int n = 8;
  sim::FailurePattern f(n);
  fd::OmegaOracle om;
  om.begin_run(f, 1, 1 << 20);
  Time t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(om.query(static_cast<ProcessId>(t % n), t));
    ++t;
  }
}
BENCHMARK(BM_OracleQuery);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::shape_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
