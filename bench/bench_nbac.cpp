// E8 (Theorem 8, Figures 4 & 5): the QC <-> NBAC transformations. Shape
// table: the overhead of each direction — NBAC-from-QC adds one vote
// exchange on top of QC; QC-from-NBAC adds one proposal exchange on top
// of NBAC (so the round trip QC -> NBAC -> QC costs both).
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_util.h"
#include "nbac/nbac_from_qc.h"
#include "qc/psi_qc.h"
#include "qc/qc_from_nbac.h"

namespace wfd::bench {
namespace {

struct StackStats {
  bool all_decided = false;
  double last_decision_time = 0.0;
  double messages = 0.0;
};

enum class Stack { kQcOnly, kNbacOverQc, kQcOverNbacOverQc };

StackStats run_stack(Stack stack, int n, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = seed;
  sim::Simulator s(cfg, sim::FailurePattern(n),
                   psi_fs_oracle(fd::PsiOracle::Branch::kOmegaSigma, 500),
                   random_sched());
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& q = host.add_module<qc::PsiQcModule<int>>("qc");
    switch (stack) {
      case Stack::kQcOnly:
        q.propose(i % 2, nullptr);
        break;
      case Stack::kNbacOverQc: {
        auto& nb = host.add_module<nbac::NbacFromQcModule>("nbac", &q);
        nb.vote(nbac::Vote::kYes, nullptr);
        break;
      }
      case Stack::kQcOverNbacOverQc: {
        auto& nb = host.add_module<nbac::NbacFromQcModule>("nbac", &q);
        auto& outer = host.add_module<qc::QcFromNbacModule<int>>("oqc", &nb);
        outer.propose(i % 2, nullptr);
        break;
      }
    }
  }
  const auto res = s.run();
  StackStats out;
  out.all_decided = res.all_done;
  out.messages = static_cast<double>(s.trace().stats().messages_sent);
  const char* kind = (stack == Stack::kNbacOverQc) ? "nbac-decide"
                                                   : "qc-decide";
  Time last = 0;
  for (const auto& e : s.trace().events_of_kind(kind)) {
    last = std::max(last, e.t);
  }
  out.last_decision_time = static_cast<double>(last);
  return out;
}

void shape_table() {
  table_header("E8: transformation overhead (crash-free, all-Yes/0-1 inputs)",
               "    n  stack                 decided  last-decision(steps)  messages");
  struct Row {
    Stack stack;
    const char* name;
  };
  const Row stacks[] = {
      {Stack::kQcOnly, "QC (Fig.2)"},
      {Stack::kNbacOverQc, "NBAC<-QC (Fig.4)"},
      {Stack::kQcOverNbacOverQc, "QC<-NBAC<-QC (Fig.5)"},
  };
  for (int n : {3, 5, 7}) {
    for (const Row& row : stacks) {
      Series t, m;
      bool all = true;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto st = run_stack(row.stack, n, seed);
        all = all && st.all_decided;
        t.add(st.last_decision_time);
        m.add(st.messages);
      }
      std::printf("  %3d  %-20s  %-7s  %20.0f  %8.0f\n", n, row.name,
                  all ? "yes" : "NO", t.mean(), m.mean());
    }
  }
  std::printf("\nexpected shape: each transformation layer adds one all-to-"
              "all exchange (~n^2 messages) and a small latency delta on "
              "top of the underlying QC.\n");
}

void BM_NbacStack(benchmark::State& state) {
  const auto stack = static_cast<Stack>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st = run_stack(stack, 5, seed++);
    benchmark::DoNotOptimize(st);
    state.counters["messages"] = st.messages;
  }
}
BENCHMARK(BM_NbacStack)->Arg(0)->Arg(1)->Arg(2);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::shape_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
