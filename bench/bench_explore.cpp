// Exploration-subsystem throughput: how fast the explorer enumerates
// schedules (states/sec is the budget currency of every wfd_check run),
// what one recorded random walk costs versus a bare simulator run, and
// how the reductions change the tree actually visited.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "explore/explorer.h"
#include "explore/replay_io.h"
#include "explore/scenario.h"
#include "explore/shrink.h"
#include "explore/state_store.h"
#include "sim/choice.h"

namespace wfd::explore {
namespace {

ScenarioOptions consensus_options(int n, Time depth) {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = n;
  opt.max_steps = depth;
  return opt;
}

void BM_ExplorerDfs(benchmark::State& state) {
  ScenarioOptions opt =
      consensus_options(static_cast<int>(state.range(0)), 25);
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  ExplorerOptions eo;
  eo.max_states = 5000;
  std::uint64_t states = 0;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    Explorer ex(build, eo);
    const ExploreReport rep = ex.run();
    states += rep.stats.nodes;
    steps += rep.stats.steps;
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExplorerDfs)->Arg(2)->Arg(3)->Arg(4);

void BM_ExplorerDfsNoReduction(benchmark::State& state) {
  const ScenarioBuilder build =
      ScenarioFactory(consensus_options(3, 25)).builder();
  ExplorerOptions eo;
  eo.max_states = 5000;
  eo.reduction = Reduction::kNone;
  eo.state_fingerprints = false;
  std::uint64_t states = 0;
  for (auto _ : state) {
    Explorer ex(build, eo);
    states += ex.run().stats.nodes;
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExplorerDfsNoReduction);

// DPOR-vs-sleep-set ablation: the same exhaustible scenarios explored
// to completion under both reductions, with fingerprint pruning OFF so
// the comparison isolates the reduction itself. The interesting numbers
// are the per-scenario counters: states explored, runs, prunes, races,
// backtrack points; wall time is the benchmark's own metric. Depths and
// static detector histories are chosen so every case exhausts within
// the state cap under both reductions.
struct AblationCase {
  const char* name;
  ScenarioOptions opt;
};

const std::vector<AblationCase>& ablation_cases() {
  static const std::vector<AblationCase>* cases = [] {
    auto* v = new std::vector<AblationCase>;
    {
      AblationCase c{"consensus-n3", {}};
      c.opt = consensus_options(3, 10);
      c.opt.fd_per_query = false;
      v->push_back(c);
    }
    {
      AblationCase c{"consensus-bug-n3", {}};
      c.opt.problem = "consensus-bug";
      c.opt.n = 3;
      c.opt.max_steps = 9;
      v->push_back(c);
    }
    {
      AblationCase c{"qc-n3", {}};
      c.opt.problem = "qc";
      c.opt.n = 3;
      c.opt.max_steps = 10;
      c.opt.fd_per_query = false;
      v->push_back(c);
    }
    {
      AblationCase c{"register-n3", {}};
      c.opt.problem = "register";
      c.opt.n = 3;
      c.opt.max_steps = 12;
      c.opt.reg_ops = 1;
      c.opt.reg_readers = 1;
      c.opt.fd_per_query = false;
      v->push_back(c);
    }
    {
      AblationCase c{"abcast-n2", {}};
      c.opt.problem = "abcast";
      c.opt.n = 2;
      c.opt.max_steps = 8;
      c.opt.abcast_senders = 1;
      v->push_back(c);
    }
    {
      AblationCase c{"nbac-n3", {}};
      c.opt.problem = "nbac";
      c.opt.n = 3;
      c.opt.max_steps = 10;
      c.opt.fd_per_query = false;
      v->push_back(c);
    }
    {
      // Echo-relay storm: the content relation's best case (equal-content
      // echoes commute, and the detector-free hosts have inert ticks).
      AblationCase c{"rb-n3", {}};
      c.opt.problem = "rb";
      c.opt.n = 3;
      c.opt.max_steps = 12;
      c.opt.abcast_senders = 2;
      v->push_back(c);
    }
    return v;
  }();
  return *cases;
}

void BM_ReductionAblation(benchmark::State& state) {
  const AblationCase& c =
      ablation_cases()[static_cast<std::size_t>(state.range(0))];
  const bool dpor = state.range(1) == 0;
  const bool content = state.range(2) == 1;
  const ScenarioBuilder build = ScenarioFactory(c.opt).builder();
  ExplorerOptions eo;
  eo.max_states = 3000000;
  eo.stop_at_first = false;  // Violating scenarios still explore fully.
  eo.reduction = dpor ? Reduction::kDpor : Reduction::kSleepSets;
  eo.dependence = content ? Dependence::kContent : Dependence::kProcess;
  eo.state_fingerprints = false;
  ExploreStats last{};
  for (auto _ : state) {
    Explorer ex(build, eo);
    last = ex.run().stats;
  }
  state.SetLabel(std::string(c.name) + "/" + (dpor ? "dpor" : "sleep-sets") +
                 "/" + (content ? "content" : "process"));
  state.counters["states"] = static_cast<double>(last.nodes);
  state.counters["runs"] = static_cast<double>(last.runs);
  state.counters["fp_prunes"] = static_cast<double>(last.fp_prunes);
  state.counters["sleep_skips"] = static_cast<double>(last.sleep_skips);
  state.counters["hb_races"] = static_cast<double>(last.hb_races);
  state.counters["commute_skips"] =
      static_cast<double>(last.commute_skips);
  state.counters["backtrack_points"] =
      static_cast<double>(last.backtrack_points);
  state.counters["exhausted"] = last.exhausted ? 1 : 0;
}
// The dependence axis only matters under DPOR (sleep-set-only rows keep
// the process relation regardless), so the sleep-sets/content cell is a
// sanity duplicate rather than a distinct configuration.
BENCHMARK(BM_ReductionAblation)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {0, 1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Fault-injection cost: the same exhaustible consensus instance with no
// adversary, with crash timing explorable (budget 1), and with lossy
// links (drop budget 1 per link). Fault labels are conservatively
// dependent with everything (DESIGN.md §10), so the interesting
// counters are how much the tree grows relative to row 0 and how many
// adversary moves actually execute.
void BM_FaultInjection(benchmark::State& state) {
  ScenarioOptions opt = consensus_options(3, 14);
  opt.fd_per_query = false;
  switch (state.range(0)) {
    case 0:
      state.SetLabel("fault-free");
      break;
    case 1:
      opt.crash_mode = "explore";
      opt.crashes = 1;
      state.SetLabel("crash-explore");
      break;
    default:
      opt.loss_drops = 1;
      state.SetLabel("lossy-links");
      break;
  }
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  ExplorerOptions eo;
  eo.max_states = 3000000;
  ExploreStats last{};
  for (auto _ : state) {
    Explorer ex(build, eo);
    last = ex.run().stats;
  }
  state.counters["states"] = static_cast<double>(last.nodes);
  state.counters["runs"] = static_cast<double>(last.runs);
  state.counters["injected_crashes"] =
      static_cast<double>(last.injected_crashes);
  state.counters["injected_drops"] = static_cast<double>(last.injected_drops);
  state.counters["exhausted"] = last.exhausted ? 1 : 0;
}
BENCHMARK(BM_FaultInjection)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_RecordedRandomWalk(benchmark::State& state) {
  const ScenarioBuilder build =
      ScenarioFactory(consensus_options(3, 60)).builder();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::RandomChoices random(seed++);
    sim::RecordingChoices rec(random);
    Scenario sc = build(rec);
    while (sc.sim->step()) {
      for (auto& inv : sc.invariants) {
        benchmark::DoNotOptimize(inv->check(*sc.sim));
      }
    }
    benchmark::DoNotOptimize(rec.log().size());
  }
}
BENCHMARK(BM_RecordedRandomWalk);

void BM_Replay(benchmark::State& state) {
  const ScenarioBuilder build =
      ScenarioFactory(consensus_options(3, 60)).builder();
  sim::RandomChoices random(7);
  sim::RecordingChoices rec(random);
  {
    Scenario sc = build(rec);
    while (sc.sim->step()) {
    }
  }
  const sim::DecisionLog log = rec.log();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_replay(build, log).steps);
  }
}
BENCHMARK(BM_Replay);

// Snapshot serialization cost: how much a --save-state at the end of a
// budgeted invocation adds on top of the search itself. The snapshot is
// produced by a real partial exploration, so the fingerprint table and
// frame stack have realistic shapes.
void BM_SnapshotRoundTrip(benchmark::State& state) {
  ScenarioOptions opt = consensus_options(3, 25);
  opt.fd_per_query = false;
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  const std::string path = "bench_snapshot_scratch.wfds";
  ExplorerOptions eo;
  eo.budget_states = static_cast<std::uint64_t>(state.range(0));
  eo.save_path = path;
  eo.scenario = opt;
  Explorer ex(build, eo);
  const ExploreReport rep = ex.run();
  std::string error;
  const auto snap = load_snapshot(path, &error);
  std::remove(path.c_str());
  if (rep.save_error.empty() && snap.has_value()) {
    std::uint64_t bytes = 0;
    for (auto _ : state) {
      const std::string text = to_text(*snap);
      bytes += text.size();
      benchmark::DoNotOptimize(parse_snapshot(text).has_value());
    }
    state.counters["fps"] = static_cast<double>(snap->fingerprints.size());
    state.counters["bytes/s"] = benchmark::Counter(
        static_cast<double>(bytes), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_SnapshotRoundTrip)->Arg(1000)->Arg(10000);

void BM_ShrinkSeededBug(benchmark::State& state) {
  ScenarioOptions opt;
  opt.problem = "consensus-bug";
  opt.n = 3;
  opt.max_steps = 30;
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  Explorer ex(build, ExplorerOptions{});
  const ExploreReport rep = ex.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shrink(build, rep.cex->decisions, rep.cex->violation.property));
  }
}
BENCHMARK(BM_ShrinkSeededBug);

}  // namespace
}  // namespace wfd::explore

BENCHMARK_MAIN();
