// Exploration-subsystem throughput: how fast the explorer enumerates
// schedules (states/sec is the budget currency of every wfd_check run),
// what one recorded random walk costs versus a bare simulator run, and
// how the reductions change the tree actually visited.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "explore/explorer.h"
#include "explore/replay_io.h"
#include "explore/scenario.h"
#include "explore/shrink.h"
#include "explore/state_store.h"
#include "sim/choice.h"

namespace wfd::explore {
namespace {

ScenarioOptions consensus_options(int n, Time depth) {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = n;
  opt.max_steps = depth;
  return opt;
}

void BM_ExplorerDfs(benchmark::State& state) {
  ScenarioOptions opt =
      consensus_options(static_cast<int>(state.range(0)), 25);
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  SearchConfig eo;
  eo.scenario = opt;
  eo.max_states = 5000;
  std::uint64_t states = 0;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    Explorer ex(build, eo);
    const ExploreReport rep = ex.run();
    states += rep.stats.nodes;
    steps += rep.stats.steps;
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExplorerDfs)->Arg(2)->Arg(3)->Arg(4);

void BM_ExplorerDfsNoReduction(benchmark::State& state) {
  const ScenarioOptions opt = consensus_options(3, 25);
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  SearchConfig eo;
  eo.scenario = opt;
  eo.max_states = 5000;
  eo.reduction = Reduction::kNone;
  eo.state_fingerprints = false;
  std::uint64_t states = 0;
  for (auto _ : state) {
    Explorer ex(build, eo);
    states += ex.run().stats.nodes;
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExplorerDfsNoReduction);

// Per-lever reduction ablation: for every scenario, lever 0 is the
// full default stack (DPOR + content dependence + fault-aware
// dependence + fingerprint pruning, one thread) and every other lever
// index changes exactly ONE knob away from that baseline, so a row's
// delta against its scenario's baseline row is that lever's isolated
// contribution. Downgrade levers (sleep-sets, process dependence,
// no-fault-dep, no-fingerprints) show their win as the growth of the
// ablated tree; symmetry is opt-in, so its row turns it ON and shows
// its win as shrinkage; threads=4 must show exact state parity (the
// wave schedule is thread-invariant — and on this project's 1-CPU
// reference box it cannot show wall-clock wins, so parity is the whole
// claim). The interesting numbers are the per-scenario counters:
// states explored, runs, prunes, races, backtrack points; wall time is
// the benchmark's own metric. Depths and static detector histories are
// chosen so every case exhausts within the state cap under every
// lever.
struct AblationCase {
  const char* name;
  ScenarioOptions opt;
};

const std::vector<AblationCase>& ablation_cases() {
  static const std::vector<AblationCase>* cases = [] {
    auto* v = new std::vector<AblationCase>;
    {
      AblationCase c{"consensus-n3", {}};
      c.opt = consensus_options(3, 10);
      c.opt.fd_per_query = false;
      v->push_back(c);
    }
    {
      AblationCase c{"consensus-bug-n3", {}};
      c.opt.problem = "consensus-bug";
      c.opt.n = 3;
      c.opt.max_steps = 9;
      v->push_back(c);
    }
    {
      AblationCase c{"qc-n3", {}};
      c.opt.problem = "qc";
      c.opt.n = 3;
      c.opt.max_steps = 10;
      c.opt.fd_per_query = false;
      v->push_back(c);
    }
    {
      AblationCase c{"register-n3", {}};
      c.opt.problem = "register";
      c.opt.n = 3;
      c.opt.max_steps = 12;
      c.opt.reg_ops = 1;
      c.opt.reg_readers = 1;
      c.opt.fd_per_query = false;
      v->push_back(c);
    }
    {
      AblationCase c{"abcast-n2", {}};
      c.opt.problem = "abcast";
      c.opt.n = 2;
      c.opt.max_steps = 8;
      c.opt.abcast_senders = 1;
      v->push_back(c);
    }
    {
      AblationCase c{"nbac-n3", {}};
      c.opt.problem = "nbac";
      c.opt.n = 3;
      c.opt.max_steps = 10;
      c.opt.fd_per_query = false;
      v->push_back(c);
    }
    {
      // Echo-relay storm: the content relation's best case (equal-content
      // echoes commute, and the detector-free hosts have inert ticks).
      AblationCase c{"rb-n3", {}};
      c.opt.problem = "rb";
      c.opt.n = 3;
      c.opt.max_steps = 12;
      c.opt.abcast_senders = 2;
      v->push_back(c);
    }
    {
      // Explored crash timing: the fault-dependence lever's home turf
      // (every step grows a crash branch; sparse fault dependence is
      // what keeps sleep sets alive across those edges).
      AblationCase c{"crash-explore-n3", {}};
      c.opt = consensus_options(3, 12);
      c.opt.fd_per_query = false;
      c.opt.crash_mode = "explore";
      c.opt.crashes = 1;
      v->push_back(c);
    }
    return v;
  }();
  return *cases;
}

/// One knob away from the full-stack baseline (see BM_ReductionAblation
/// comment). Keep lever_name in sync.
enum Lever : int {
  kLeverBaseline = 0,
  kLeverSleepSets,       ///< Reduction downgraded to sleep sets only.
  kLeverProcessDep,      ///< Dependence coarsened to process-level.
  kLeverNoFaultDep,      ///< Fault labels dependent with everything.
  kLeverNoFingerprints,  ///< State-fingerprint pruning off.
  kLeverSymmetry,        ///< Canonicalize under process renaming (ON).
  kLeverThreads4,        ///< threads=4; must reproduce baseline states.
  kLeverCount,
};

const char* lever_name(int lever) {
  switch (lever) {
    case kLeverBaseline: return "baseline";
    case kLeverSleepSets: return "sleep-sets";
    case kLeverProcessDep: return "process-dep";
    case kLeverNoFaultDep: return "no-fault-dep";
    case kLeverNoFingerprints: return "no-fingerprints";
    case kLeverSymmetry: return "symmetry";
    case kLeverThreads4: return "threads-4";
  }
  return "unknown";
}

void BM_ReductionAblation(benchmark::State& state) {
  const AblationCase& c =
      ablation_cases()[static_cast<std::size_t>(state.range(0))];
  const int lever = static_cast<int>(state.range(1));
  SearchConfig eo;
  eo.scenario = c.opt;
  eo.max_states = 3000000;
  eo.stop_at_first = false;  // Violating scenarios still explore fully.
  switch (lever) {
    case kLeverSleepSets:
      eo.reduction = Reduction::kSleepSets;
      break;
    case kLeverProcessDep:
      eo.dependence = Dependence::kProcess;
      break;
    case kLeverNoFaultDep:
      eo.fault_dependence = false;
      break;
    case kLeverNoFingerprints:
      eo.state_fingerprints = false;
      break;
    case kLeverSymmetry:
      eo.symmetry = true;
      break;
    case kLeverThreads4:
      eo.threads = 4;
      break;
    default:
      break;
  }
  state.SetLabel(std::string(c.name) + "/" + lever_name(lever));
  // Levers that do not apply to this scenario (symmetry without
  // interchangeable processes) report as skipped, not as fake parity.
  const std::string why = validate(eo);
  if (!why.empty()) {
    state.SkipWithError(why.c_str());
    return;
  }
  const ScenarioBuilder build = ScenarioFactory(c.opt).builder();
  ExploreStats last{};
  for (auto _ : state) {
    Explorer ex(build, eo);
    last = ex.run().stats;
  }
  state.counters["states"] = static_cast<double>(last.nodes);
  state.counters["runs"] = static_cast<double>(last.runs);
  state.counters["fp_prunes"] = static_cast<double>(last.fp_prunes);
  state.counters["sleep_skips"] = static_cast<double>(last.sleep_skips);
  state.counters["hb_races"] = static_cast<double>(last.hb_races);
  state.counters["commute_skips"] =
      static_cast<double>(last.commute_skips);
  state.counters["backtrack_points"] =
      static_cast<double>(last.backtrack_points);
  state.counters["injected_crashes"] =
      static_cast<double>(last.injected_crashes);
  state.counters["exhausted"] = last.exhausted ? 1 : 0;
}
BENCHMARK(BM_ReductionAblation)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7},
                   {kLeverBaseline, kLeverSleepSets, kLeverProcessDep,
                    kLeverNoFaultDep, kLeverNoFingerprints, kLeverSymmetry,
                    kLeverThreads4}})
    ->Unit(benchmark::kMillisecond);

// Fault-injection cost: the same exhaustible consensus instance with no
// adversary, with crash timing explorable (budget 1), and with lossy
// links (drop budget 1 per link). Fault labels carry the sparse
// dependence relation of sim/dependence.h (DESIGN.md §12) — a fault
// commutes with steps of processes it does not touch — so the
// interesting counters are how much the tree still grows relative to
// row 0 and how many adversary moves actually execute (the
// no-fault-dep lever of BM_ReductionAblation prices the relation
// itself).
void BM_FaultInjection(benchmark::State& state) {
  ScenarioOptions opt = consensus_options(3, 14);
  opt.fd_per_query = false;
  switch (state.range(0)) {
    case 0:
      state.SetLabel("fault-free");
      break;
    case 1:
      opt.crash_mode = "explore";
      opt.crashes = 1;
      state.SetLabel("crash-explore");
      break;
    default:
      opt.loss_drops = 1;
      state.SetLabel("lossy-links");
      break;
  }
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  SearchConfig eo;
  eo.scenario = opt;
  eo.max_states = 3000000;
  ExploreStats last{};
  for (auto _ : state) {
    Explorer ex(build, eo);
    last = ex.run().stats;
  }
  state.counters["states"] = static_cast<double>(last.nodes);
  state.counters["runs"] = static_cast<double>(last.runs);
  state.counters["injected_crashes"] =
      static_cast<double>(last.injected_crashes);
  state.counters["injected_drops"] = static_cast<double>(last.injected_drops);
  state.counters["exhausted"] = last.exhausted ? 1 : 0;
}
BENCHMARK(BM_FaultInjection)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Liveness (fair-cycle) overhead: the identical scenario explored as a
// bounded-safety search and as a liveness search. Both rows run under
// --reduction=none — liveness's own requirement — so the delta prices
// exactly what liveness adds: recording the state graph (nodes, edges,
// enabled/deliverable menus) during exploration plus the
// post-exhaustion fair-cycle (SCC) search, and nothing else.
void BM_LivenessOverhead(benchmark::State& state) {
  ScenarioOptions opt = consensus_options(3, 10);
  opt.fd_per_query = false;
  if (state.range(0) == 1) opt.liveness = "termination";
  state.SetLabel(state.range(0) == 1 ? "liveness-on" : "liveness-off");
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  SearchConfig eo;
  eo.scenario = opt;
  eo.reduction = Reduction::kNone;
  eo.max_states = 3000000;
  ExploreStats last{};
  for (auto _ : state) {
    Explorer ex(build, eo);
    last = ex.run().stats;
  }
  state.counters["states"] = static_cast<double>(last.nodes);
  state.counters["runs"] = static_cast<double>(last.runs);
  state.counters["graph_states"] = static_cast<double>(last.graph_states);
  state.counters["graph_edges"] = static_cast<double>(last.graph_edges);
  state.counters["exhausted"] = last.exhausted ? 1 : 0;
}
BENCHMARK(BM_LivenessOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_RecordedRandomWalk(benchmark::State& state) {
  const ScenarioBuilder build =
      ScenarioFactory(consensus_options(3, 60)).builder();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::RandomChoices random(seed++);
    sim::RecordingChoices rec(random);
    Scenario sc = build(rec);
    while (sc.sim->step()) {
      for (auto& inv : sc.invariants) {
        benchmark::DoNotOptimize(inv->check(*sc.sim));
      }
    }
    benchmark::DoNotOptimize(rec.log().size());
  }
}
BENCHMARK(BM_RecordedRandomWalk);

void BM_Replay(benchmark::State& state) {
  const ScenarioBuilder build =
      ScenarioFactory(consensus_options(3, 60)).builder();
  sim::RandomChoices random(7);
  sim::RecordingChoices rec(random);
  {
    Scenario sc = build(rec);
    while (sc.sim->step()) {
    }
  }
  const sim::DecisionLog log = rec.log();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_replay(build, log).steps);
  }
}
BENCHMARK(BM_Replay);

// Snapshot serialization cost: how much a --save-state at the end of a
// budgeted invocation adds on top of the search itself. The snapshot is
// produced by a real partial exploration, so the fingerprint table and
// frame stack have realistic shapes.
void BM_SnapshotRoundTrip(benchmark::State& state) {
  ScenarioOptions opt = consensus_options(3, 25);
  opt.fd_per_query = false;
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  const std::string path = "bench_snapshot_scratch.wfds";
  SearchConfig eo;
  eo.budget_states = static_cast<std::uint64_t>(state.range(0));
  eo.save_path = path;
  eo.scenario = opt;
  Explorer ex(build, eo);
  const ExploreReport rep = ex.run();
  std::string error;
  const auto snap = load_snapshot(path, &error);
  std::remove(path.c_str());
  if (rep.save_error.empty() && snap.has_value()) {
    std::uint64_t bytes = 0;
    for (auto _ : state) {
      const std::string text = to_text(*snap);
      bytes += text.size();
      benchmark::DoNotOptimize(parse_snapshot(text).has_value());
    }
    state.counters["fps"] = static_cast<double>(snap->fingerprints.size());
    state.counters["bytes/s"] = benchmark::Counter(
        static_cast<double>(bytes), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_SnapshotRoundTrip)->Arg(1000)->Arg(10000);

void BM_ShrinkSeededBug(benchmark::State& state) {
  ScenarioOptions opt;
  opt.problem = "consensus-bug";
  opt.n = 3;
  opt.max_steps = 30;
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  SearchConfig eo;
  eo.scenario = opt;
  Explorer ex(build, eo);
  const ExploreReport rep = ex.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shrink(build, rep.cex->decisions, rep.cex->violation.property));
  }
}
BENCHMARK(BM_ShrinkSeededBug);

}  // namespace
}  // namespace wfd::explore

BENCHMARK_MAIN();
