// Exploration-subsystem throughput: how fast the explorer enumerates
// schedules (states/sec is the budget currency of every wfd_check run),
// what one recorded random walk costs versus a bare simulator run, and
// how the reductions change the tree actually visited.
#include <benchmark/benchmark.h>

#include "explore/explorer.h"
#include "explore/replay_io.h"
#include "explore/scenario.h"
#include "explore/shrink.h"
#include "sim/choice.h"

namespace wfd::explore {
namespace {

ScenarioOptions consensus_options(int n, Time depth) {
  ScenarioOptions opt;
  opt.problem = "consensus";
  opt.n = n;
  opt.max_steps = depth;
  return opt;
}

void BM_ExplorerDfs(benchmark::State& state) {
  ScenarioOptions opt =
      consensus_options(static_cast<int>(state.range(0)), 25);
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  ExplorerOptions eo;
  eo.max_states = 5000;
  std::uint64_t states = 0;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    Explorer ex(build, eo);
    const ExploreReport rep = ex.run();
    states += rep.stats.nodes;
    steps += rep.stats.steps;
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExplorerDfs)->Arg(2)->Arg(3)->Arg(4);

void BM_ExplorerDfsNoSleepSets(benchmark::State& state) {
  const ScenarioBuilder build =
      ScenarioFactory(consensus_options(3, 25)).builder();
  ExplorerOptions eo;
  eo.max_states = 5000;
  eo.sleep_sets = false;
  std::uint64_t states = 0;
  for (auto _ : state) {
    Explorer ex(build, eo);
    states += ex.run().stats.nodes;
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExplorerDfsNoSleepSets);

void BM_RecordedRandomWalk(benchmark::State& state) {
  const ScenarioBuilder build =
      ScenarioFactory(consensus_options(3, 60)).builder();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::RandomChoices random(seed++);
    sim::RecordingChoices rec(random);
    Scenario sc = build(rec);
    while (sc.sim->step()) {
      for (auto& inv : sc.invariants) {
        benchmark::DoNotOptimize(inv->check(*sc.sim));
      }
    }
    benchmark::DoNotOptimize(rec.log().size());
  }
}
BENCHMARK(BM_RecordedRandomWalk);

void BM_Replay(benchmark::State& state) {
  const ScenarioBuilder build =
      ScenarioFactory(consensus_options(3, 60)).builder();
  sim::RandomChoices random(7);
  sim::RecordingChoices rec(random);
  {
    Scenario sc = build(rec);
    while (sc.sim->step()) {
    }
  }
  const sim::DecisionLog log = rec.log();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_replay(build, log).steps);
  }
}
BENCHMARK(BM_Replay);

void BM_ShrinkSeededBug(benchmark::State& state) {
  ScenarioOptions opt;
  opt.problem = "consensus-bug";
  opt.n = 3;
  opt.max_steps = 30;
  const ScenarioBuilder build = ScenarioFactory(opt).builder();
  Explorer ex(build, ExplorerOptions{});
  const ExploreReport rep = ex.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shrink(build, rep.cex->decisions, rep.cex->violation.property));
  }
}
BENCHMARK(BM_ShrinkSeededBug);

}  // namespace
}  // namespace wfd::explore

BENCHMARK_MAIN();
