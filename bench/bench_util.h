// Shared builders for the benchmark harness. Each bench binary prints a
// deterministic "shape table" for its experiment (the analogue of the
// paper's reported results — see EXPERIMENTS.md) and then runs
// google-benchmark timing loops for the same configurations.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "fd/fs_oracle.h"
#include "fd/omega_oracle.h"
#include "fd/oracle.h"
#include "fd/psi_oracle.h"
#include "fd/sigma_oracle.h"
#include "sim/environment.h"
#include "sim/module.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace wfd::bench {

inline std::unique_ptr<fd::Oracle> omega_sigma_oracle(Time stab) {
  fd::OmegaOracle::Options oo;
  oo.max_stabilization = stab;
  fd::SigmaOracle::Options so;
  so.max_stabilization = stab;
  return std::make_unique<fd::TupleOracle>(
      std::make_unique<fd::OmegaOracle>(oo),
      std::make_unique<fd::SigmaOracle>(so));
}

inline std::unique_ptr<fd::Oracle> sigma_oracle(Time stab) {
  fd::SigmaOracle::Options so;
  so.max_stabilization = stab;
  return std::make_unique<fd::SigmaOracle>(so);
}

inline std::unique_ptr<fd::Oracle> psi_fs_oracle(fd::PsiOracle::Branch branch,
                                                 Time stab) {
  fd::PsiOracle::Options po;
  po.branch = branch;
  po.max_switch_spread = stab;
  po.omega.max_stabilization = stab;
  po.sigma.max_stabilization = stab;
  fd::FsOracle::Options fo;
  fo.max_reaction_lag = stab;
  return std::make_unique<fd::TupleOracle>(
      std::make_unique<fd::PsiOracle>(po),
      std::make_unique<fd::FsOracle>(fo));
}

inline std::unique_ptr<sim::Scheduler> random_sched() {
  return std::make_unique<sim::RandomFairScheduler>();
}

/// Crash the first `crashes` processes, spread over [0, by).
inline sim::FailurePattern staggered_crashes(int n, int crashes, Time by) {
  sim::FailurePattern f(n);
  for (int i = 0; i < crashes; ++i) {
    f.crash_at(i, (by * static_cast<Time>(i + 1)) /
                      static_cast<Time>(crashes + 1));
  }
  return f;
}

/// Aggregate over per-seed measurements.
struct Series {
  std::vector<double> values;
  void add(double v) { values.push_back(v); }
  [[nodiscard]] double mean() const {
    if (values.empty()) return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  }
  [[nodiscard]] double max() const {
    double m = 0.0;
    for (double v : values) m = std::max(m, v);
    return m;
  }
};

inline void table_header(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

}  // namespace wfd::bench
