// E2 ("ex nihilo" remark, Section 1): in majority-correct environments
// Sigma can be implemented with join-quorum messages and no oracle at
// all. Shape table: rounds completed and quorum-refresh latency vs n,
// and the time until quorums consist only of correct processes after a
// crash (the completeness witness).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "fd/history_checker.h"
#include "fd/sigma_majority.h"
#include "sim/fd_sampler.h"

namespace wfd::bench {
namespace {

struct ExNihiloStats {
  double rounds_per_proc = 0.0;
  double completeness_witness = 0.0;  ///< Sigma eventual clause witness.
  bool legal = false;
};

ExNihiloStats run_exnihilo(int n, int crashes, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 60000;
  cfg.seed = seed;
  sim::Simulator s(cfg, staggered_crashes(n, crashes, 8000),
                   std::make_unique<fd::NullOracle>(), random_sched());
  std::vector<sim::FdSampleRecord> samples;
  std::vector<fd::SigmaMajorityModule*> mods;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& sm = host.add_module<fd::SigmaMajorityModule>("sigma");
    host.add_module<sim::FdSamplerModule>("sampler", &sm, &samples, 16);
    mods.push_back(&sm);
  }
  s.set_halt_on_done(false);
  s.run();
  ExNihiloStats out;
  const auto f = staggered_crashes(n, crashes, 8000);
  for (ProcessId p = 0; p < n; ++p) {
    if (f.correct().contains(p)) {
      out.rounds_per_proc += static_cast<double>(
          mods[static_cast<std::size_t>(p)]->rounds_completed());
    }
  }
  out.rounds_per_proc /= static_cast<double>(f.correct().size());
  const auto check = fd::check_sigma_history(samples, f);
  out.legal = check.ok;
  out.completeness_witness = static_cast<double>(check.witness_time);
  return out;
}

void shape_table() {
  table_header("E2: Sigma ex nihilo (join-quorum) in majority-correct runs",
               "    n  crashes  legal  rounds/proc  completeness-witness(t)");
  struct Row {
    int n;
    int crashes;
  };
  for (const Row row : {Row{3, 0}, Row{3, 1}, Row{5, 1}, Row{5, 2},
                        Row{7, 3}, Row{9, 4}, Row{11, 5}}) {
    Series rounds, witness;
    bool legal = true;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto st = run_exnihilo(row.n, row.crashes, seed);
      legal = legal && st.legal;
      rounds.add(st.rounds_per_proc);
      witness.add(st.completeness_witness);
    }
    std::printf("  %3d  %7d  %-5s  %11.0f  %23.0f\n", row.n, row.crashes,
                legal ? "yes" : "NO", rounds.mean(), witness.mean());
  }
  std::printf("\nexpected shape: all rows legal Sigma histories with no "
              "oracle; the completeness witness tracks the last crash "
              "(quorums refresh within a few join rounds).\n");
}

void BM_SigmaExNihilo(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st = run_exnihilo(n, (n - 1) / 2, seed++);
    benchmark::DoNotOptimize(st);
    state.counters["rounds_per_proc"] = st.rounds_per_proc;
  }
}
BENCHMARK(BM_SigmaExNihilo)->Arg(3)->Arg(5)->Arg(9);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::shape_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
