// E11: harness-overhead baselines — microbenchmarks of the simulation
// substrate itself (ProcessSet algebra, RNG, message buffer, raw
// simulator step throughput), so the protocol benches can be read net of
// harness cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "common/process_set.h"
#include "common/rng.h"
#include "sim/network.h"
#include "sim/process.h"

namespace wfd::bench {
namespace {

void BM_ProcessSetIntersect(benchmark::State& state) {
  Rng rng(1);
  ProcessSet a = ProcessSet::from_raw(rng.next());
  ProcessSet b = ProcessSet::from_raw(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersects(b));
    benchmark::DoNotOptimize(a.set_union(b));
    benchmark::DoNotOptimize(a.is_subset_of(b));
  }
}
BENCHMARK(BM_ProcessSetIntersect);

void BM_ProcessSetMembers(benchmark::State& state) {
  ProcessSet s = ProcessSet::from_raw(0xdeadbeefcafef00dULL);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.members());
  }
}
BENCHMARK(BM_ProcessSetMembers);

void BM_RngNext(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(12345));
  }
}
BENCHMARK(BM_RngBelow);

struct NopPayload final : sim::Payload {};

void BM_NetworkSendTake(benchmark::State& state) {
  sim::Network net;
  auto payload = sim::make_payload<NopPayload>();
  for (auto _ : state) {
    sim::Envelope e;
    e.from = 0;
    e.to = 1;
    e.payload = payload;
    const auto id = net.send(std::move(e));
    benchmark::DoNotOptimize(net.take(id));
  }
}
BENCHMARK(BM_NetworkSendTake);

class ChatterProcess : public sim::Process {
 public:
  void on_step(sim::Context& ctx, const sim::Envelope* msg) override {
    if (msg == nullptr || count_++ % 4 == 0) {
      ctx.send((ctx.self() + 1) % ctx.n(), sim::make_payload<NopPayload>());
    }
  }

 private:
  int count_ = 0;
};

void BM_SimulatorSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.n = n;
    cfg.max_steps = 20000;
    cfg.seed = 3;
    sim::Simulator s(cfg, sim::FailurePattern(n),
                     std::make_unique<fd::NullOracle>(), random_sched());
    for (int i = 0; i < n; ++i) s.add_process<ChatterProcess>();
    s.set_halt_on_done(false);
    const auto res = s.run();
    benchmark::DoNotOptimize(res);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(res.steps));
  }
}
BENCHMARK(BM_SimulatorSteps)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace wfd::bench

BENCHMARK_MAIN();
