// E1 (Theorem 1, sufficiency): Sigma-based ABD registers work in any
// environment; majority-ABD works only with a correct majority. The
// shape table reports liveness and per-operation cost (virtual steps and
// messages) across n and crash counts for both quorum rules.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "reg/abd_register.h"
#include "reg/linearizability.h"
#include "reg/register_client.h"

namespace wfd::bench {
namespace {

struct RegRunStats {
  bool live = false;
  bool linearizable = false;
  double steps_per_op = 0.0;
  double msgs_per_op = 0.0;
};

RegRunStats run_register_workload(int n, int crashes, reg::QuorumRule rule,
                                  std::uint64_t seed, int ops_per_client = 4) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = seed;
  auto oracle = (rule == reg::QuorumRule::kSigma)
                    ? sigma_oracle(500)
                    : std::unique_ptr<fd::Oracle>(
                          std::make_unique<fd::NullOracle>());
  // Crashes at t=0: the workload must run entirely inside the degraded
  // environment (otherwise fast clients finish before the crashes land
  // and the liveness comparison is vacuous).
  sim::FailurePattern f(n);
  for (int i = 0; i < crashes; ++i) f.crash_at(i, 0);
  sim::Simulator s(cfg, f, std::move(oracle), random_sched());
  reg::History history;
  reg::AbdRegisterModule<std::int64_t>::Options ropt;
  ropt.rule = rule;
  reg::RegisterWorkloadModule::Options wopt;
  wopt.num_ops = ops_per_client;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& r =
        host.add_module<reg::AbdRegisterModule<std::int64_t>>("reg", ropt);
    host.add_module<reg::RegisterWorkloadModule>("load", &r, &history, wopt);
  }
  const auto res = s.run();
  RegRunStats out;
  out.live = res.all_done;
  out.linearizable = reg::is_linearizable(history);
  const auto completed = history.completed();
  if (completed > 0) {
    out.steps_per_op =
        static_cast<double>(res.steps) / static_cast<double>(completed);
    out.msgs_per_op =
        static_cast<double>(s.trace().stats().messages_sent) /
        static_cast<double>(completed);
  }
  return out;
}

void shape_table() {
  table_header("E1: atomic register — Sigma vs majority quorums",
               "    n  crashes  rule       live  linearizable  steps/op  msgs/op");
  struct Row {
    int n;
    int crashes;
    reg::QuorumRule rule;
  };
  const Row rows[] = {
      {3, 0, reg::QuorumRule::kSigma},  {3, 2, reg::QuorumRule::kSigma},
      {5, 2, reg::QuorumRule::kSigma},  {5, 4, reg::QuorumRule::kSigma},
      {7, 6, reg::QuorumRule::kSigma},  {9, 8, reg::QuorumRule::kSigma},
      {3, 0, reg::QuorumRule::kMajority}, {3, 1, reg::QuorumRule::kMajority},
      {5, 2, reg::QuorumRule::kMajority}, {5, 4, reg::QuorumRule::kMajority},
      {7, 3, reg::QuorumRule::kMajority}, {9, 8, reg::QuorumRule::kMajority},
  };
  for (const Row& row : rows) {
    Series live, lin, steps, msgs;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto st = run_register_workload(row.n, row.crashes, row.rule, seed);
      live.add(st.live ? 1 : 0);
      lin.add(st.linearizable ? 1 : 0);
      steps.add(st.steps_per_op);
      msgs.add(st.msgs_per_op);
    }
    std::printf("  %3d  %7d  %-9s  %-4s  %-12s  %8.0f  %7.0f\n", row.n,
                row.crashes,
                row.rule == reg::QuorumRule::kSigma ? "Sigma" : "majority",
                live.mean() == 1.0 ? "yes" : "NO",
                lin.mean() == 1.0 ? "yes" : "VIOLATED", steps.mean(),
                msgs.mean());
  }
  std::printf("\nexpected shape: Sigma rows are live even with n-1 crashes;\n"
              "majority rows lose liveness once crashes reach n/2 "
              "(safety never breaks).\n");
}

void BM_SigmaRegisterWorkload(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st =
        run_register_workload(n, n - 1, reg::QuorumRule::kSigma, seed++);
    benchmark::DoNotOptimize(st);
    state.counters["steps_per_op"] = st.steps_per_op;
    state.counters["msgs_per_op"] = st.msgs_per_op;
  }
}
BENCHMARK(BM_SigmaRegisterWorkload)->Arg(3)->Arg(5)->Arg(7);

void BM_MajorityRegisterWorkload(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st = run_register_workload(n, (n - 1) / 2,
                                          reg::QuorumRule::kMajority, seed++);
    benchmark::DoNotOptimize(st);
    state.counters["steps_per_op"] = st.steps_per_op;
    state.counters["msgs_per_op"] = st.msgs_per_op;
  }
}
BENCHMARK(BM_MajorityRegisterWorkload)->Arg(3)->Arg(5)->Arg(7);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::shape_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
