// E6 (Theorem 5, Figure 2): quittable consensus with Psi. Shape tables:
// decision latency in both branches — when Psi turns into (Omega,Sigma)
// the cost is a consensus; when it turns into FS (after a failure) the
// processes quit as soon as the switch reaches them; the switch spread
// dominates either way.
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_util.h"
#include "qc/psi_qc.h"

namespace wfd::bench {
namespace {

struct QcStats {
  bool all_decided = false;
  bool quit = false;
  double last_decision_time = 0.0;
  double messages = 0.0;
};

QcStats run_qc(int n, int crashes, fd::PsiOracle::Branch branch, Time spread,
               std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = seed;
  auto pattern = staggered_crashes(n, crashes, 1000);
  sim::Simulator s(cfg, pattern, psi_fs_oracle(branch, spread),
                   random_sched());
  std::vector<qc::PsiQcModule<int>*> mods;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& q = host.add_module<qc::PsiQcModule<int>>("qc");
    q.propose(i % 2, nullptr);
    mods.push_back(&q);
  }
  const auto res = s.run();
  QcStats out;
  out.all_decided = res.all_done;
  out.messages = static_cast<double>(s.trace().stats().messages_sent);
  Time last = 0;
  for (ProcessId p = 0; p < n; ++p) {
    const auto e = s.trace().first_event(p, "qc-decide");
    if (e.t != kNever) {
      last = std::max(last, e.t);
      if (e.value == -1) out.quit = true;
    }
  }
  out.last_decision_time = static_cast<double>(last);
  return out;
}

void shape_tables() {
  table_header("E6a: QC decision latency by Psi branch (n=4, spread=800)",
               "  branch       crashes  decided  outcome  last-decision(steps)  messages");
  struct Row {
    const char* name;
    fd::PsiOracle::Branch branch;
    int crashes;
  };
  for (const Row row :
       {Row{"omega-sigma", fd::PsiOracle::Branch::kOmegaSigma, 0},
        Row{"omega-sigma", fd::PsiOracle::Branch::kOmegaSigma, 3},
        Row{"fs", fd::PsiOracle::Branch::kFs, 1},
        Row{"fs", fd::PsiOracle::Branch::kFs, 3}}) {
    Series t, m;
    bool all = true, quit = false;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto st = run_qc(4, row.crashes, row.branch, 800, seed);
      all = all && st.all_decided;
      quit = quit || st.quit;
      t.add(st.last_decision_time);
      m.add(st.messages);
    }
    std::printf("  %-11s  %7d  %-7s  %-7s  %20.0f  %8.0f\n", row.name,
                row.crashes, all ? "yes" : "NO", quit ? "Q" : "value",
                t.mean(), m.mean());
  }

  table_header("E6b: QC latency vs Psi switch spread (n=4, crash-free, "
               "omega-sigma branch)",
               "  spread   last-decision(steps)   messages");
  for (Time spread : {100, 400, 1600, 6400, 25600}) {
    Series t, m;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto st = run_qc(4, 0, fd::PsiOracle::Branch::kOmegaSigma,
                             spread, seed);
      t.add(st.last_decision_time);
      m.add(st.messages);
    }
    std::printf("  %6llu   %20.0f   %8.0f\n",
                static_cast<unsigned long long>(spread), t.mean(), m.mean());
  }
  std::printf("\nexpected shape: the FS branch decides with ~0 extra "
              "messages (quit on switch); the omega-sigma branch pays one "
              "consensus; latency scales with the switch spread in both.\n");
}

void BM_PsiQc(benchmark::State& state) {
  const bool fs = state.range(0) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st = run_qc(4, fs ? 1 : 0,
                           fs ? fd::PsiOracle::Branch::kFs
                              : fd::PsiOracle::Branch::kOmegaSigma,
                           800, seed++);
    benchmark::DoNotOptimize(st);
    state.counters["decision_steps"] = st.last_decision_time;
  }
}
BENCHMARK(BM_PsiQc)->Arg(0)->Arg(1);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::shape_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
