// E7 (Theorem 6, necessity / Figure 3): extracting Psi from a QC
// algorithm. Shape table: how long the forest takes to produce decisions
// in all n+1 trees, when the real execution of A resolves the branch,
// and how the Sigma loop's rounds accumulate — per branch.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "extract/psi_extraction.h"
#include "fd/history_checker.h"
#include "qc/psi_qc.h"

namespace wfd::bench {
namespace {

using extract::ExtractProposal;
using extract::PsiExtractionModule;
using extract::SandboxSpec;

SandboxSpec psi_qc_spec(int n) {
  SandboxSpec spec;
  spec.n = n;
  spec.build = [](sim::Simulator& inner, const std::vector<int>& proposals) {
    for (int i = 0; i < inner.n(); ++i) {
      auto& host = inner.add_process<sim::ModularProcess>();
      auto& q = host.add_module<qc::PsiQcModule<int>>("a");
      q.propose(proposals[static_cast<std::size_t>(i)],
                [](const qc::QcResult<int>&) {});
    }
  };
  spec.decision_of = [](sim::Simulator& inner,
                        ProcessId p) -> std::optional<int> {
    auto& host = dynamic_cast<sim::ModularProcess&>(inner.process(p));
    auto& q = host.module<qc::PsiQcModule<int>>("a");
    if (!q.decided()) return std::nullopt;
    return q.result().quit ? extract::kQuitDecision : q.result().value;
  };
  return spec;
}

struct PsiXStats {
  bool legal = false;
  double branch_time = 0.0;   ///< First non-bottom output at any process.
  double sigma_rounds = 0.0;  ///< Per correct process.
  double dag_nodes = 0.0;
  bool fs_branch = false;
};

PsiXStats run_extraction(int crashes, fd::PsiOracle::Branch branch,
                         std::uint64_t seed) {
  const int n = 3;
  auto f = staggered_crashes(n, crashes, 1000);
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 120000;
  cfg.seed = seed;
  sim::Simulator s(cfg, f, psi_fs_oracle(branch, 300), random_sched());
  std::vector<sim::FdSampleRecord> samples;
  std::vector<PsiExtractionModule*> xs;
  PsiExtractionModule::Options opt;
  opt.sample_period = 48;
  opt.gossip_period = 96;
  opt.analyze_period = 768;
  opt.window = 512;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    PsiExtractionModule::OuterFactory outer =
        [](sim::ModuleHost& h,
           const std::string& nm) -> qc::QcApi<ExtractProposal>& {
      return h.add_module<qc::PsiQcModule<ExtractProposal>>(nm);
    };
    xs.push_back(&host.add_module<PsiExtractionModule>(
        "psix", psi_qc_spec(n), outer, &samples, opt));
  }
  s.set_halt_on_done(false);
  s.run();

  PsiXStats out;
  Time first_switch = kNever;
  for (const auto& rec : samples) {
    if (rec.value.psi->mode != fd::PsiValue::Mode::kBottom) {
      first_switch = std::min(first_switch, rec.t);
      if (rec.value.psi->mode == fd::PsiValue::Mode::kFs) {
        out.fs_branch = true;
      }
    }
  }
  out.branch_time =
      first_switch == kNever ? -1.0 : static_cast<double>(first_switch);
  for (ProcessId p = 0; p < n; ++p) {
    if (f.correct().contains(p)) {
      out.sigma_rounds += static_cast<double>(
          xs[static_cast<std::size_t>(p)]->sigma_rounds());
    }
  }
  out.sigma_rounds /= static_cast<double>(f.correct().size());
  // Report a correct process's DAG (a crashed process stops merging).
  for (ProcessId p = 0; p < n; ++p) {
    if (f.correct().contains(p)) {
      out.dag_nodes = std::max(
          out.dag_nodes,
          static_cast<double>(xs[static_cast<std::size_t>(p)]->dag().size()));
    }
  }
  const auto check = fd::check_psi_history(samples, f);
  out.legal = check.ok;
  return out;
}

void shape_table() {
  table_header("E7: Psi extraction from a QC algorithm (Fig. 3, n=3, "
               "A = Fig.2-QC, D = (Psi,FS))",
               "  crashes  branch(D)    legal  emul-branch  switch(t)  "
               "sigma-rounds/proc  dag-nodes");
  struct Row {
    int crashes;
    fd::PsiOracle::Branch branch;
    const char* name;
  };
  const Row rows[] = {
      {0, fd::PsiOracle::Branch::kOmegaSigma, "omega-sigma"},
      {1, fd::PsiOracle::Branch::kOmegaSigma, "omega-sigma"},
      {1, fd::PsiOracle::Branch::kFs, "fs"},
      {2, fd::PsiOracle::Branch::kFs, "fs"},
  };
  for (const Row& row : rows) {
    Series t, sr, dn;
    bool legal = true, fs = false;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const auto st = run_extraction(row.crashes, row.branch, seed);
      legal = legal && st.legal;
      fs = fs || st.fs_branch;
      t.add(st.branch_time);
      sr.add(st.sigma_rounds);
      dn.add(st.dag_nodes);
    }
    std::printf("  %7d  %-11s  %-5s  %-11s  %9.0f  %17.1f  %9.0f\n",
                row.crashes, row.name, legal ? "yes" : "NO",
                fs ? "fs" : "omega-sigma", t.mean(), sr.mean(), dn.mean());
  }
  std::printf("\nexpected shape: the emulated branch follows D's branch; "
              "the emulated output switches from bottom well inside the "
              "run; the Sigma loop keeps refreshing quorums in the "
              "omega-sigma branch.\n");
}

void BM_PsiExtraction(benchmark::State& state) {
  const bool fs = state.range(0) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st = run_extraction(fs ? 1 : 0,
                                   fs ? fd::PsiOracle::Branch::kFs
                                      : fd::PsiOracle::Branch::kOmegaSigma,
                                   seed++);
    benchmark::DoNotOptimize(st);
    state.counters["branch_time"] = st.branch_time;
  }
}
BENCHMARK(BM_PsiExtraction)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::shape_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
