// E4 (Corollaries 2/4): (Omega, Sigma) consensus decides in any
// environment. Shape tables: decision latency and message cost vs n, vs
// crash count, and vs detector stabilisation time (the dominant factor —
// consensus is as fast as its detector becomes accurate).
#include <benchmark/benchmark.h>

#include <optional>

#include "bench_util.h"
#include "consensus/omega_sigma_consensus.h"

namespace wfd::bench {
namespace {

struct ConsStats {
  bool all_decided = false;
  double last_decision_time = 0.0;
  double messages = 0.0;
  double rounds = 0.0;
};

ConsStats run_consensus(int n, int crashes, Time stab, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = seed;
  sim::Simulator s(cfg, staggered_crashes(n, crashes, 2000),
                   omega_sigma_oracle(stab), random_sched());
  std::vector<consensus::OmegaSigmaConsensusModule<int>*> mods;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& c = host.add_module<consensus::OmegaSigmaConsensusModule<int>>(
        "cons");
    c.propose(i % 2, nullptr);
    mods.push_back(&c);
  }
  const auto res = s.run();
  ConsStats out;
  out.all_decided = res.all_done;
  out.messages = static_cast<double>(s.trace().stats().messages_sent);
  Time last = 0;
  for (ProcessId p = 0; p < n; ++p) {
    const auto e = s.trace().first_event(p, "decide");
    if (e.t != kNever) last = std::max(last, e.t);
    out.rounds += static_cast<double>(
        mods[static_cast<std::size_t>(p)]->rounds_started());
  }
  out.last_decision_time = static_cast<double>(last);
  return out;
}

void shape_tables() {
  table_header("E4a: consensus latency vs system size (crash-free, stab=500)",
               "    n   decided   last-decision(steps)   messages   leader-rounds");
  for (int n : {2, 3, 5, 7, 9, 12}) {
    Series t, m, r;
    bool all = true;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto st = run_consensus(n, 0, 500, seed);
      all = all && st.all_decided;
      t.add(st.last_decision_time);
      m.add(st.messages);
      r.add(st.rounds);
    }
    std::printf("  %3d   %-7s   %20.0f   %8.0f   %13.1f\n", n,
                all ? "yes" : "NO", t.mean(), m.mean(), r.mean());
  }

  table_header("E4b: consensus vs crashes (n=5, stab=500; up to n-1 crashes)",
               "  crashes   decided   last-decision(steps)   messages");
  for (int crashes : {0, 1, 2, 3, 4}) {
    Series t, m;
    bool all = true;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto st = run_consensus(5, crashes, 500, seed);
      all = all && st.all_decided;
      t.add(st.last_decision_time);
      m.add(st.messages);
    }
    std::printf("  %7d   %-7s   %20.0f   %8.0f\n", crashes,
                all ? "yes" : "NO", t.mean(), m.mean());
  }

  table_header(
      "E4c: consensus vs detector stabilisation time (n=5, 2 crashes)",
      "  stabilisation   last-decision(steps)   messages");
  for (Time stab : {100, 1000, 4000, 16000, 64000}) {
    Series t, m;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto st = run_consensus(5, 2, stab, seed);
      t.add(st.last_decision_time);
      m.add(st.messages);
    }
    std::printf("  %13llu   %20.0f   %8.0f\n",
                static_cast<unsigned long long>(stab), t.mean(), m.mean());
  }
  std::printf("\nexpected shape: latency tracks the detector's "
              "stabilisation time (indulgence); crashes cost little once "
              "the detector has converged; messages grow ~n^2 per round.\n");
}

void BM_OmegaSigmaConsensus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int crashes = static_cast<int>(state.range(1));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st = run_consensus(n, crashes, 500, seed++);
    benchmark::DoNotOptimize(st);
    state.counters["decision_steps"] = st.last_decision_time;
    state.counters["messages"] = st.messages;
  }
}
BENCHMARK(BM_OmegaSigmaConsensus)
    ->Args({3, 0})
    ->Args({5, 0})
    ->Args({5, 4})
    ->Args({7, 3})
    ->Args({9, 8});

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::shape_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
