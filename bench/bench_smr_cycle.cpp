// E5 (the proof cycle behind Corollaries 2-4): registers can be built
// from Sigma directly (ABD) or from consensus via state-machine
// replication; consensus can be built from (Omega, Sigma) directly or
// from registers plus Omega. Shape table: the cost of each construction
// for the same logical operation — the reductions are computable but not
// free, which is why they appear in proofs rather than systems.
#include <benchmark/benchmark.h>

#include <optional>
#include <string>

#include "bench_util.h"
#include "consensus/omega_sigma_consensus.h"
#include "consensus/register_consensus.h"
#include "reg/abd_register.h"
#include "smr/register_from_consensus.h"

namespace wfd::bench {
namespace {

struct CycleStats {
  bool done = false;
  double steps = 0.0;
  double messages = 0.0;
};

/// One write followed by one read, on either register construction.
CycleStats run_register_op(bool smr_backed, int n, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 600000;
  cfg.seed = seed;
  sim::Simulator s(cfg, sim::FailurePattern(n), omega_sigma_oracle(300),
                   random_sched());

  struct Driver : sim::Module {
    std::function<void(Driver&)> start;
    bool started = false;
    bool finished = false;
    void on_message(ProcessId, const sim::Payload&) override {}
    void on_tick() override {
      if (!started) {
        started = true;
        start(*this);
      }
    }
    [[nodiscard]] bool done() const override { return finished; }
  };

  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    if (smr_backed) {
      auto& r = host.add_module<smr::SmrRegisterModule>("reg");
      auto& d = host.add_module<Driver>("driver");
      if (i == 0) {
        d.start = [&r](Driver& drv) {
          r.write(42, [&r, &drv] {
            r.read([&drv](std::int64_t) { drv.finished = true; });
          });
        };
      } else {
        d.start = [](Driver& drv) { drv.finished = true; };
      }
    } else {
      auto& r = host.add_module<reg::AbdRegisterModule<std::int64_t>>("reg");
      auto& d = host.add_module<Driver>("driver");
      if (i == 0) {
        d.start = [&r](Driver& drv) {
          r.write(42, [&r, &drv] {
            r.read([&drv](const std::int64_t&) { drv.finished = true; });
          });
        };
      } else {
        d.start = [](Driver& drv) { drv.finished = true; };
      }
    }
  }
  const auto res = s.run();
  CycleStats out;
  out.done = res.all_done;
  out.steps = static_cast<double>(res.steps);
  out.messages = static_cast<double>(s.trace().stats().messages_sent);
  return out;
}

/// One consensus instance, direct or register-based.
CycleStats run_consensus_op(bool register_based, int n, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 600000;
  cfg.seed = seed;
  sim::Simulator s(cfg, sim::FailurePattern(n), omega_sigma_oracle(300),
                   random_sched());
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    if (register_based) {
      std::vector<consensus::RegisterConsensusModule<int>::Register*> regs;
      for (int j = 0; j < n; ++j) {
        regs.push_back(
            &host.add_module<
                consensus::RegisterConsensusModule<int>::Register>(
                "breg/" + std::to_string(j)));
      }
      auto& c =
          host.add_module<consensus::RegisterConsensusModule<int>>("cons",
                                                                   regs);
      c.propose(i % 2, nullptr);
    } else {
      auto& c =
          host.add_module<consensus::OmegaSigmaConsensusModule<int>>("cons");
      c.propose(i % 2, nullptr);
    }
  }
  const auto res = s.run();
  CycleStats out;
  out.done = res.all_done;
  out.steps = static_cast<double>(res.steps);
  out.messages = static_cast<double>(s.trace().stats().messages_sent);
  return out;
}

void shape_table() {
  table_header("E5: the reduction cycle — direct vs derived constructions "
               "(crash-free)",
               "    n  construction                     done  steps  messages");
  for (int n : {3, 5}) {
    struct Row {
      const char* name;
      bool flag;
      bool is_register;
    };
    const Row rows[] = {
        {"register: ABD over Sigma", false, true},
        {"register: SMR over consensus", true, true},
        {"consensus: (Omega,Sigma) direct", false, false},
        {"consensus: registers + Omega", true, false},
    };
    for (const Row& row : rows) {
      Series steps, msgs;
      bool all = true;
      for (std::uint64_t seed = 1; seed <= 2; ++seed) {
        const auto st = row.is_register ? run_register_op(row.flag, n, seed)
                                        : run_consensus_op(row.flag, n, seed);
        all = all && st.done;
        steps.add(st.steps);
        msgs.add(st.messages);
      }
      std::printf("  %3d  %-31s  %-4s  %5.0f  %8.0f\n", n, row.name,
                  all ? "yes" : "NO", steps.mean(), msgs.mean());
    }
  }
  std::printf("\nexpected shape: each derived construction costs a "
              "constant-factor more than its direct counterpart (SMR pays "
              "a consensus per op; register-based consensus pays ~4n "
              "register ops per round).\n");
}

void BM_RegisterConstruction(benchmark::State& state) {
  const bool smr = state.range(0) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st = run_register_op(smr, 3, seed++);
    benchmark::DoNotOptimize(st);
    state.counters["messages"] = st.messages;
  }
}
BENCHMARK(BM_RegisterConstruction)->Arg(0)->Arg(1);

void BM_ConsensusConstruction(benchmark::State& state) {
  const bool reg_based = state.range(0) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st = run_consensus_op(reg_based, 3, seed++);
    benchmark::DoNotOptimize(st);
    state.counters["messages"] = st.messages;
  }
}
BENCHMARK(BM_ConsensusConstruction)->Arg(0)->Arg(1);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::shape_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
