// E12 (ablations of the design points DESIGN.md calls out):
//  (a) the read write-back phase of ABD — cost of atomicity vs the
//      regular-register shortcut (which the tests show is unsafe);
//  (b) Sigma history shape — quorum size directly prices every register
//      phase (common-core vs majority vs all-then-correct oracles);
//  (c) the consensus leader's retry interval — too eager wastes rounds,
//      too lazy wastes time when the first attempt is lost.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "consensus/omega_sigma_consensus.h"
#include "reg/abd_register.h"
#include "reg/register_client.h"

namespace wfd::bench {
namespace {

struct OpCost {
  double steps_per_op = 0.0;
  double msgs_per_op = 0.0;
};

OpCost register_cost(bool atomic_reads, fd::SigmaOracle::Mode mode,
                     std::uint64_t seed) {
  const int n = 5;
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = seed;
  fd::SigmaOracle::Options so;
  so.mode = mode;
  so.max_stabilization = 200;
  sim::Simulator s(cfg, sim::FailurePattern(n),
                   std::make_unique<fd::SigmaOracle>(so), random_sched());
  reg::History history;
  reg::AbdRegisterModule<std::int64_t>::Options ropt;
  ropt.atomic_reads = atomic_reads;
  reg::RegisterWorkloadModule::Options wopt;
  wopt.num_ops = 6;
  wopt.write_percent = 30;  // Read-heavy: the ablation targets reads.
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& r =
        host.add_module<reg::AbdRegisterModule<std::int64_t>>("reg", ropt);
    host.add_module<reg::RegisterWorkloadModule>("load", &r, &history, wopt);
  }
  const auto res = s.run();
  OpCost out;
  const auto done = history.completed();
  if (done > 0) {
    out.steps_per_op =
        static_cast<double>(res.steps) / static_cast<double>(done);
    out.msgs_per_op = static_cast<double>(s.trace().stats().messages_sent) /
                      static_cast<double>(done);
  }
  return out;
}

void ablation_tables() {
  table_header("E12a: read write-back ablation (n=5, read-heavy; the "
               "regular variant is UNSAFE — see tests)",
               "  reads        steps/op  msgs/op");
  for (const bool atomic : {true, false}) {
    Series st, ms;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto c =
          register_cost(atomic, fd::SigmaOracle::Mode::kCommonCore, seed);
      st.add(c.steps_per_op);
      ms.add(c.msgs_per_op);
    }
    std::printf("  %-11s  %8.1f  %7.1f\n", atomic ? "atomic" : "regular",
                st.mean(), ms.mean());
  }

  table_header("E12b: Sigma history shape vs register cost (n=5)",
               "  sigma-mode        steps/op  msgs/op");
  struct Mode {
    fd::SigmaOracle::Mode mode;
    const char* name;
  };
  for (const Mode m : {Mode{fd::SigmaOracle::Mode::kCommonCore, "common-core"},
                       Mode{fd::SigmaOracle::Mode::kMajority, "majority"},
                       Mode{fd::SigmaOracle::Mode::kAllThenCorrect,
                            "all-then-correct"}}) {
    Series st, ms;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto c = register_cost(true, m.mode, seed);
      st.add(c.steps_per_op);
      ms.add(c.msgs_per_op);
    }
    std::printf("  %-16s  %8.1f  %7.1f\n", m.name, st.mean(), ms.mean());
  }

  table_header("E12c: consensus leader retry interval with the leader "
               "partitioned off until t=30000 (n=5)",
               "  retry(own steps)   last-decision(steps)   leader-rounds");
  for (const Time retry : {8, 32, 128, 512, 2048}) {
    Series t, r;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      sim::SimConfig cfg;
      cfg.n = 5;
      cfg.max_steps = 400000;
      cfg.seed = seed;
      // Omega points at process 0 from the start, but 0's messages are
      // withheld until t=30000: every attempt before then stalls, so
      // the retry interval controls how many rounds are burned while
      // partitioned (and how stale state must be recovered after).
      fd::OmegaOracle::Options oo;
      oo.fixed_leader = 0;
      oo.max_stabilization = 100;
      fd::SigmaOracle::Options so;
      so.max_stabilization = 100;
      auto oracle = std::make_unique<fd::TupleOracle>(
          std::make_unique<fd::OmegaOracle>(oo),
          std::make_unique<fd::SigmaOracle>(so));
      auto filter = [](const sim::Envelope& e, Time now) {
        return e.from == 0 && now < 30000;
      };
      sim::Simulator s(cfg, sim::FailurePattern(5), std::move(oracle),
                       std::make_unique<sim::FilteredScheduler>(
                           random_sched(), filter));
      consensus::OmegaSigmaConsensusModule<int>::Options copt;
      copt.retry_interval = retry;
      std::vector<consensus::OmegaSigmaConsensusModule<int>*> mods;
      for (int i = 0; i < 5; ++i) {
        auto& host = s.add_process<sim::ModularProcess>();
        auto& c = host.add_module<consensus::OmegaSigmaConsensusModule<int>>(
            "cons", copt);
        c.propose(i % 2, nullptr);
        mods.push_back(&c);
      }
      s.run();
      Time last = 0;
      double rounds = 0;
      for (ProcessId p = 0; p < 5; ++p) {
        const auto e = s.trace().first_event(p, "decide");
        if (e.t != kNever) last = std::max(last, e.t);
        rounds += static_cast<double>(
            mods[static_cast<std::size_t>(p)]->rounds_started());
      }
      t.add(static_cast<double>(last));
      r.add(rounds);
    }
    std::printf("  %16llu   %20.0f   %13.1f\n",
                static_cast<unsigned long long>(retry), t.mean(), r.mean());
  }
  std::printf("\nexpected shape: regular reads save ~40%% of a read's "
              "messages (at the price of atomicity); quorum shape moves "
              "cost marginally (every mode still needs one round trip to "
              "a quorum); eager retries burn rounds (~1/interval) while "
              "buying almost no latency.\n");
}

void BM_RegisterReadVariant(benchmark::State& state) {
  const bool atomic = state.range(0) != 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto c =
        register_cost(atomic, fd::SigmaOracle::Mode::kCommonCore, seed++);
    benchmark::DoNotOptimize(c);
    state.counters["msgs_per_op"] = c.msgs_per_op;
  }
}
BENCHMARK(BM_RegisterReadVariant)->Arg(1)->Arg(0);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::ablation_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
