// E3 (Theorem 1, necessity / Figure 1): extracting Sigma from a register
// implementation. Shape table: emulation progress (write-read-probe
// iterations), emulated quorum sizes, and the completeness witness time,
// for two substrates: ABD-over-Sigma (D = Sigma) and majority-ABD with
// no detector at all (D = nothing, majority-correct environment).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_util.h"
#include "extract/participant_tracker.h"
#include "extract/sigma_extraction.h"
#include "fd/history_checker.h"
#include "reg/abd_register.h"

namespace wfd::bench {
namespace {

using extract::ParticipantTracker;
using extract::QuorumList;
using extract::RegisterHandle;
using extract::SigmaExtractionModule;
using Reg = reg::AbdRegisterModule<QuorumList>;

struct ExtractStats {
  bool legal = false;
  double iterations = 0.0;
  double completeness_witness = 0.0;
  double mean_quorum_size = 0.0;
};

ExtractStats run_extraction(int n, int crashes, reg::QuorumRule rule,
                            std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 250000;
  cfg.seed = seed;
  const auto f = staggered_crashes(n, crashes, 8000);
  auto oracle = (rule == reg::QuorumRule::kSigma)
                    ? sigma_oracle(500)
                    : std::unique_ptr<fd::Oracle>(
                          std::make_unique<fd::NullOracle>());
  sim::Simulator s(cfg, f, std::move(oracle), random_sched());
  std::vector<sim::FdSampleRecord> samples;
  std::vector<std::unique_ptr<ParticipantTracker>> trackers;
  std::vector<SigmaExtractionModule*> extractors;
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    trackers.push_back(std::make_unique<ParticipantTracker>(i));
    host.set_instrument(trackers.back().get());
    std::vector<RegisterHandle> handles;
    for (int j = 0; j < n; ++j) {
      Reg::Options opt;
      opt.rule = rule;
      auto& r = host.add_module<Reg>("xreg/" + std::to_string(j), opt);
      RegisterHandle h;
      h.write = [&r](const QuorumList& v, std::function<void()> cb) {
        r.write(v, std::move(cb));
      };
      h.read = [&r](std::function<void(const QuorumList&)> cb) {
        r.read(std::move(cb));
      };
      handles.push_back(std::move(h));
    }
    extractors.push_back(&host.add_module<SigmaExtractionModule>(
        "extract", std::move(handles), trackers.back().get(), &samples));
  }
  s.set_halt_on_done(false);
  s.run();

  ExtractStats out;
  for (ProcessId p = 0; p < n; ++p) {
    if (f.correct().contains(p)) {
      out.iterations += static_cast<double>(
          extractors[static_cast<std::size_t>(p)]->iterations());
    }
  }
  out.iterations /= static_cast<double>(f.correct().size());
  double size_sum = 0.0;
  for (const auto& rec : samples) {
    size_sum += static_cast<double>(rec.value.sigma->size());
  }
  if (!samples.empty()) {
    out.mean_quorum_size = size_sum / static_cast<double>(samples.size());
  }
  const auto check = fd::check_sigma_history(samples, f);
  out.legal = check.ok;
  out.completeness_witness = static_cast<double>(check.witness_time);
  return out;
}

void shape_table() {
  table_header("E3: Sigma extraction from register implementations (Fig. 1)",
               "  substrate        n  crashes  legal  iters/proc  |quorum|  "
               "completeness-witness(t)");
  struct Row {
    const char* name;
    reg::QuorumRule rule;
    int n;
    int crashes;
  };
  const Row rows[] = {
      {"ABD(Sigma)", reg::QuorumRule::kSigma, 3, 0},
      {"ABD(Sigma)", reg::QuorumRule::kSigma, 3, 2},
      {"ABD(Sigma)", reg::QuorumRule::kSigma, 4, 3},
      {"ABD(majority)", reg::QuorumRule::kMajority, 3, 1},
      {"ABD(majority)", reg::QuorumRule::kMajority, 5, 2},
  };
  for (const Row& row : rows) {
    Series iters, qsize, witness;
    bool legal = true;
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const auto st = run_extraction(row.n, row.crashes, row.rule, seed);
      legal = legal && st.legal;
      iters.add(st.iterations);
      qsize.add(st.mean_quorum_size);
      witness.add(st.completeness_witness);
    }
    std::printf("  %-14s %3d  %7d  %-5s  %10.0f  %8.1f  %23.0f\n", row.name,
                row.n, row.crashes, legal ? "yes" : "NO", iters.mean(),
                qsize.mean(), witness.mean());
  }
  std::printf("\nexpected shape: every substrate yields a legal Sigma "
              "history — even the detector-free majority registers (Sigma "
              "is what registers 'contain'); quorums shrink towards the "
              "correct set after the last crash.\n");
}

void BM_SigmaExtraction(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st = run_extraction(3, 1, reg::QuorumRule::kSigma, seed++);
    benchmark::DoNotOptimize(st);
    state.counters["iters_per_proc"] = st.iterations;
  }
}
BENCHMARK(BM_SigmaExtraction);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::shape_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
