// E9 (Corollary 10): end-to-end NBAC with (Psi, FS) across the
// vote/failure matrix. Shape table: decision and latency for every
// combination the specification distinguishes — all-Yes/no-failure must
// commit; a No vote or a crash leads to abort; survivors always
// terminate (non-blocking).
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "bench_util.h"
#include "nbac/nbac_from_qc.h"
#include "qc/psi_qc.h"

namespace wfd::bench {
namespace {

struct E2eStats {
  bool all_decided = false;
  bool committed = false;
  bool aborted = false;
  double last_decision_time = 0.0;
};

E2eStats run_e2e(int n, int no_votes, int crashes,
                 fd::PsiOracle::Branch branch, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.max_steps = 400000;
  cfg.seed = seed;
  // Crashes strike the last `crashes` processes at t=0 (before voting).
  sim::FailurePattern f(n);
  for (int i = 0; i < crashes; ++i) f.crash_at(n - 1 - i, 0);
  sim::Simulator s(cfg, f, psi_fs_oracle(branch, 800), random_sched());
  std::vector<std::optional<nbac::Decision>> decisions(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& host = s.add_process<sim::ModularProcess>();
    auto& q = host.add_module<qc::PsiQcModule<int>>("qc");
    auto& nb = host.add_module<nbac::NbacFromQcModule>("nbac", &q);
    nb.vote(i < no_votes ? nbac::Vote::kNo : nbac::Vote::kYes,
            [&decisions, i](nbac::Decision d) {
              decisions[static_cast<std::size_t>(i)] = d;
            });
  }
  const auto res = s.run();
  E2eStats out;
  out.all_decided = res.all_done;
  for (const auto& d : decisions) {
    if (!d.has_value()) continue;
    if (*d == nbac::Decision::kCommit) out.committed = true;
    if (*d == nbac::Decision::kAbort) out.aborted = true;
  }
  Time last = 0;
  for (const auto& e : s.trace().events_of_kind("nbac-decide")) {
    last = std::max(last, e.t);
  }
  out.last_decision_time = static_cast<double>(last);
  return out;
}

void shape_table() {
  table_header("E9: NBAC over (Psi, FS) — vote/failure matrix (n=5)",
               "  no-votes  crashes  branch       decided  outcome  last-decision(steps)");
  struct Row {
    int no_votes;
    int crashes;
    fd::PsiOracle::Branch branch;
    const char* bname;
  };
  const Row rows[] = {
      {0, 0, fd::PsiOracle::Branch::kOmegaSigma, "omega-sigma"},
      {1, 0, fd::PsiOracle::Branch::kOmegaSigma, "omega-sigma"},
      {3, 0, fd::PsiOracle::Branch::kOmegaSigma, "omega-sigma"},
      {0, 1, fd::PsiOracle::Branch::kFs, "fs"},
      {0, 1, fd::PsiOracle::Branch::kOmegaSigma, "omega-sigma"},
      {0, 3, fd::PsiOracle::Branch::kFs, "fs"},
      {1, 1, fd::PsiOracle::Branch::kFs, "fs"},
  };
  for (const Row& row : rows) {
    bool all = true, commit = false, abort_seen = false;
    Series t;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto st =
          run_e2e(5, row.no_votes, row.crashes, row.branch, seed);
      all = all && st.all_decided;
      commit = commit || st.committed;
      abort_seen = abort_seen || st.aborted;
      t.add(st.last_decision_time);
    }
    const char* outcome = commit && !abort_seen ? "COMMIT"
                          : (!commit && abort_seen ? "ABORT" : "MIXED?");
    std::printf("  %8d  %7d  %-11s  %-7s  %-7s  %20.0f\n", row.no_votes,
                row.crashes, row.bname, all ? "yes" : "NO", outcome,
                t.mean());
  }
  std::printf("\nexpected shape: only the first row commits (all Yes, no "
              "failure — mandatory); every other row aborts; survivors "
              "always decide (non-blocking).\n");
}

void BM_NbacE2e(benchmark::State& state) {
  const int crashes = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto st = run_e2e(5, 0, crashes,
                            crashes > 0 ? fd::PsiOracle::Branch::kFs
                                        : fd::PsiOracle::Branch::kOmegaSigma,
                            seed++);
    benchmark::DoNotOptimize(st);
    state.counters["decision_steps"] = st.last_decision_time;
  }
}
BENCHMARK(BM_NbacE2e)->Arg(0)->Arg(1)->Arg(3);

}  // namespace
}  // namespace wfd::bench

int main(int argc, char** argv) {
  wfd::bench::shape_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
