#include "fd/values.h"

#include <ostream>
#include <sstream>

namespace wfd::fd {

std::ostream& operator<<(std::ostream& os, FsColor c) {
  return os << (c == FsColor::kGreen ? "green" : "red");
}

std::ostream& operator<<(std::ostream& os, const PsiValue& v) {
  switch (v.mode) {
    case PsiValue::Mode::kBottom:
      return os << "bottom";
    case PsiValue::Mode::kOmegaSigma:
      return os << "(omega=" << v.omega << ",sigma=" << v.sigma << ")";
    case PsiValue::Mode::kFs:
      return os << "fs=" << v.fs;
  }
  return os;
}

std::ostream& operator<<(std::ostream& os, const FdValue& v) {
  os << '[';
  bool first = true;
  auto sep = [&] {
    if (!first) os << ' ';
    first = false;
  };
  if (v.omega) {
    sep();
    os << "omega=" << *v.omega;
  }
  if (v.sigma) {
    sep();
    os << "sigma=" << *v.sigma;
  }
  if (v.fs) {
    sep();
    os << "fs=" << *v.fs;
  }
  if (v.psi) {
    sep();
    os << "psi=" << *v.psi;
  }
  if (v.suspected) {
    sep();
    os << "suspected=" << *v.suspected;
  }
  return os << ']';
}

std::string FdValue::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

}  // namespace wfd::fd
