#include "fd/omega_heartbeat.h"

#include "sim/payload.h"

namespace wfd::fd {
namespace {

// Audited non-commuting: the handler stamps `deadline_[from] = tick_ +
// timeout_[from]`, so swapping two deliveries shifts which local tick
// each stamp reads — distinct receiver states. Identical heartbeats from
// one sender still dedup at the explorer level (same sender + equal
// content), which is what tames heartbeat storms.
struct Heartbeat final : sim::Payload {
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "heartbeat");
  }
  [[nodiscard]] std::string_view kind() const override {
    return "fd.omega.heartbeat";
  }
};

}  // namespace

void OmegaHeartbeatModule::on_start() {
  self_id_ = self();
  n_cached_ = n();
  period_ = (opt_.period != 0) ? opt_.period : static_cast<Time>(4 * n());
  const Time timeout0 =
      (opt_.initial_timeout != 0) ? opt_.initial_timeout : 8 * period_;
  deadline_.assign(static_cast<std::size_t>(n()), timeout0);
  timeout_.assign(static_cast<std::size_t>(n()), timeout0);
  suspected_.assign(static_cast<std::size_t>(n()), false);
  next_beat_ = 0;
}

void OmegaHeartbeatModule::on_message(ProcessId from, const sim::Payload& msg) {
  if (sim::payload_cast<Heartbeat>(msg) == nullptr) return;
  auto idx = static_cast<std::size_t>(from);
  if (suspected_[idx]) {
    // False suspicion: trust again and widen the timeout so the same
    // mistake cannot repeat once delays are bounded.
    suspected_[idx] = false;
    timeout_[idx] *= 2;
  }
  deadline_[idx] = tick_ + timeout_[idx];
}

void OmegaHeartbeatModule::on_tick() {
  ++tick_;
  if (tick_ >= next_beat_) {
    broadcast(sim::make_payload<Heartbeat>(), /*include_self=*/false);
    next_beat_ = tick_ + period_;
  }
  for (ProcessId q = 0; q < n(); ++q) {
    auto idx = static_cast<std::size_t>(q);
    if (q == self() || suspected_[idx]) continue;
    if (tick_ > deadline_[idx]) {
      suspected_[idx] = true;
      ++suspicions_;
    }
  }
}

ProcessId OmegaHeartbeatModule::current_leader() const {
  // Smallest trusted id (a process always trusts itself).
  for (ProcessId q = 0; q < n_cached_; ++q) {
    if (q == self_id_ || !suspected_[static_cast<std::size_t>(q)]) return q;
  }
  return self_id_;
}

ProcessSet OmegaHeartbeatModule::suspected() const {
  ProcessSet s;
  for (ProcessId q = 0; q < n_cached_; ++q) {
    if (q != self_id_ && suspected_[static_cast<std::size_t>(q)]) s.insert(q);
  }
  return s;
}

FdValue OmegaHeartbeatModule::fd_value() const {
  FdValue v;
  v.omega = current_leader();
  return v;
}

}  // namespace wfd::fd
