#include "fd/history_checker.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/check.h"

namespace wfd::fd {
namespace {

using sim::FdSampleRecord;
using sim::FailurePattern;

std::string at(ProcessId p, Time t) {
  std::ostringstream os;
  os << " (process " << p << ", time " << t << ")";
  return os.str();
}

/// Split samples per process, preserving time order.
std::vector<std::vector<FdSampleRecord>> per_process(
    const std::vector<FdSampleRecord>& samples, int n) {
  std::vector<std::vector<FdSampleRecord>> out(static_cast<std::size_t>(n));
  for (const auto& s : samples) {
    WFD_CHECK(s.p >= 0 && s.p < n);
    out[static_cast<std::size_t>(s.p)].push_back(s);
  }
  return out;
}

}  // namespace

CheckResult check_omega_history(const std::vector<FdSampleRecord>& samples,
                                const FailurePattern& f) {
  const auto by_p = per_process(samples, f.n());
  const ProcessSet correct = f.correct();

  // Candidate leader: the final output of the first correct process that
  // has samples. The definition requires one common eventual leader, so
  // any correct process's final value must be it.
  ProcessId candidate = kNoProcess;
  for (ProcessId p : correct.members()) {
    const auto& seq = by_p[static_cast<std::size_t>(p)];
    if (seq.empty()) continue;
    if (!seq.back().value.omega.has_value()) {
      return CheckResult::failure("sample lacks an omega component" +
                                  at(p, seq.back().t));
    }
    candidate = *seq.back().value.omega;
    break;
  }
  if (candidate == kNoProcess) {
    return CheckResult::failure("no samples at any correct process");
  }
  if (!correct.contains(candidate)) {
    std::ostringstream os;
    os << "eventual leader " << candidate << " is not correct";
    return CheckResult::failure(os.str());
  }

  Time witness = 0;
  for (ProcessId p : correct.members()) {
    const auto& seq = by_p[static_cast<std::size_t>(p)];
    if (seq.empty()) {
      std::ostringstream os;
      os << "correct process " << p << " has no samples";
      return CheckResult::failure(os.str());
    }
    bool saw_candidate_suffix = false;
    for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
      if (!it->value.omega.has_value()) {
        return CheckResult::failure("sample lacks an omega component" +
                                    at(p, it->t));
      }
      if (*it->value.omega != candidate) {
        witness = std::max(witness, it->t + 1);
        break;
      }
      saw_candidate_suffix = true;
    }
    if (!saw_candidate_suffix) {
      std::ostringstream os;
      os << "correct process " << p << " never converged to leader "
         << candidate;
      return CheckResult::failure(os.str());
    }
  }
  CheckResult r;
  r.witness_time = witness;
  return r;
}

CheckResult check_sigma_history(const std::vector<FdSampleRecord>& samples,
                                const FailurePattern& f) {
  // Intersection: across ALL samples, at all processes and times.
  std::vector<std::uint64_t> distinct;
  for (const auto& s : samples) {
    if (!s.value.sigma.has_value()) {
      return CheckResult::failure("sample lacks a sigma component" +
                                  at(s.p, s.t));
    }
    const std::uint64_t mask = s.value.sigma->raw();
    if (std::find(distinct.begin(), distinct.end(), mask) == distinct.end()) {
      distinct.push_back(mask);
    }
  }
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    if (distinct[i] == 0) {
      return CheckResult::failure("empty quorum sampled");
    }
    for (std::size_t j = i + 1; j < distinct.size(); ++j) {
      if ((distinct[i] & distinct[j]) == 0) {
        std::ostringstream os;
        os << "quorums do not intersect: "
           << ProcessSet::from_raw(distinct[i]) << " vs "
           << ProcessSet::from_raw(distinct[j]);
        return CheckResult::failure(os.str());
      }
    }
  }

  // Completeness: at each correct process the suffix is within correct(F).
  const auto by_p = per_process(samples, f.n());
  const ProcessSet correct = f.correct();
  Time witness = 0;
  for (ProcessId p : correct.members()) {
    const auto& seq = by_p[static_cast<std::size_t>(p)];
    if (seq.empty()) {
      std::ostringstream os;
      os << "correct process " << p << " has no samples";
      return CheckResult::failure(os.str());
    }
    bool clean_suffix = false;
    for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
      if (!it->value.sigma->is_subset_of(correct)) {
        witness = std::max(witness, it->t + 1);
        break;
      }
      clean_suffix = true;
    }
    if (!clean_suffix) {
      std::ostringstream os;
      os << "quorums at correct process " << p
         << " never shrink to correct processes";
      return CheckResult::failure(os.str());
    }
  }
  CheckResult r;
  r.witness_time = witness;
  return r;
}

CheckResult check_fs_history(const std::vector<FdSampleRecord>& samples,
                             const FailurePattern& f) {
  for (const auto& s : samples) {
    if (!s.value.fs.has_value()) {
      return CheckResult::failure("sample lacks an fs component" +
                                  at(s.p, s.t));
    }
    if (*s.value.fs == FsColor::kRed && !f.failure_by(s.t)) {
      return CheckResult::failure("red output before any failure" +
                                  at(s.p, s.t));
    }
  }
  if (f.faulty().empty()) {
    return CheckResult{};  // Nothing else required.
  }
  const auto by_p = per_process(samples, f.n());
  Time witness = 0;
  for (ProcessId p : f.correct().members()) {
    const auto& seq = by_p[static_cast<std::size_t>(p)];
    if (seq.empty()) {
      std::ostringstream os;
      os << "correct process " << p << " has no samples";
      return CheckResult::failure(os.str());
    }
    bool red_suffix = false;
    for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
      if (*it->value.fs == FsColor::kGreen) {
        witness = std::max(witness, it->t + 1);
        break;
      }
      red_suffix = true;
    }
    if (!red_suffix) {
      std::ostringstream os;
      os << "correct process " << p
         << " not permanently red despite a failure";
      return CheckResult::failure(os.str());
    }
  }
  CheckResult r;
  r.witness_time = witness;
  return r;
}

CheckResult check_psi_history(const std::vector<FdSampleRecord>& samples,
                              const FailurePattern& f) {
  for (const auto& s : samples) {
    if (!s.value.psi.has_value()) {
      return CheckResult::failure("sample lacks a psi component" +
                                  at(s.p, s.t));
    }
  }
  const auto by_p = per_process(samples, f.n());

  // Per-process shape: bottom*, then a single non-bottom mode forever.
  // Track the global branch and the earliest switch time.
  bool branch_known = false;
  bool fs_branch = false;
  Time earliest_switch = kNever;
  std::vector<FdSampleRecord> omega_sigma_sub;  // Post-switch samples.
  std::vector<FdSampleRecord> fs_sub;

  for (ProcessId p = 0; p < f.n(); ++p) {
    const auto& seq = by_p[static_cast<std::size_t>(p)];
    bool switched = false;
    PsiValue::Mode mode = PsiValue::Mode::kBottom;
    for (const auto& s : seq) {
      const PsiValue& v = *s.value.psi;
      if (!switched) {
        if (v.mode == PsiValue::Mode::kBottom) continue;
        switched = true;
        mode = v.mode;
        earliest_switch = std::min(earliest_switch, s.t);
        const bool this_fs = (mode == PsiValue::Mode::kFs);
        if (branch_known && this_fs != fs_branch) {
          return CheckResult::failure(
              "processes switched to different branches" + at(p, s.t));
        }
        branch_known = true;
        fs_branch = this_fs;
      } else {
        if (v.mode == PsiValue::Mode::kBottom) {
          return CheckResult::failure("bottom after the switch" + at(p, s.t));
        }
        if (v.mode != mode) {
          return CheckResult::failure("branch changed after the switch" +
                                      at(p, s.t));
        }
      }
      if (switched) {
        FdSampleRecord sub;
        sub.p = s.p;
        sub.t = s.t;
        if (v.mode == PsiValue::Mode::kOmegaSigma) {
          sub.value.omega = v.omega;
          sub.value.sigma = v.sigma;
          omega_sigma_sub.push_back(sub);
        } else {
          sub.value.fs = v.fs;
          fs_sub.push_back(sub);
        }
      }
    }
    if (!switched && f.correct().contains(p) && !seq.empty()) {
      std::ostringstream os;
      os << "correct process " << p << " never switched from bottom";
      return CheckResult::failure(os.str());
    }
  }
  if (!branch_known) {
    return CheckResult::failure("no process ever switched from bottom");
  }

  if (fs_branch) {
    // The FS branch is legal only if a failure occurred no later than the
    // earliest switch.
    if (!f.failure_by(earliest_switch)) {
      return CheckResult::failure(
          "FS branch chosen although no failure had occurred by the "
          "earliest switch");
    }
    return check_fs_history(fs_sub, f);
  }
  CheckResult om = check_omega_history(omega_sigma_sub, f);
  if (!om.ok) return om;
  CheckResult si = check_sigma_history(omega_sigma_sub, f);
  if (!si.ok) return si;
  CheckResult r;
  r.witness_time = std::max(om.witness_time, si.witness_time);
  return r;
}

CheckResult check_fs_prefix(const std::vector<FdSampleRecord>& samples,
                            const FailurePattern& f) {
  for (const auto& s : samples) {
    if (!s.value.fs.has_value()) {
      return CheckResult::failure("sample lacks an fs component" +
                                  at(s.p, s.t));
    }
    if (*s.value.fs == FsColor::kRed && !f.failure_by(s.t)) {
      return CheckResult::failure("red output before any failure" +
                                  at(s.p, s.t));
    }
  }
  return CheckResult{};
}

CheckResult check_psi_prefix(const std::vector<FdSampleRecord>& samples,
                             const FailurePattern& f) {
  std::vector<PsiValue::Mode> mode(static_cast<std::size_t>(f.n()),
                                   PsiValue::Mode::kBottom);
  bool branch_known = false;
  bool fs_branch = false;
  for (const auto& s : samples) {
    if (!s.value.psi.has_value()) {
      return CheckResult::failure("sample lacks a psi component" +
                                  at(s.p, s.t));
    }
    WFD_CHECK(s.p >= 0 && s.p < f.n());
    const PsiValue& v = *s.value.psi;
    PsiValue::Mode& m = mode[static_cast<std::size_t>(s.p)];
    if (v.mode == PsiValue::Mode::kBottom) {
      if (m != PsiValue::Mode::kBottom) {
        return CheckResult::failure("bottom after the switch" + at(s.p, s.t));
      }
      continue;
    }
    const bool this_fs = (v.mode == PsiValue::Mode::kFs);
    if (m == PsiValue::Mode::kBottom) {
      if (branch_known && this_fs != fs_branch) {
        return CheckResult::failure(
            "processes switched to different branches" + at(s.p, s.t));
      }
      branch_known = true;
      fs_branch = this_fs;
      if (this_fs && !f.failure_by(s.t)) {
        return CheckResult::failure(
            "FS branch chosen before any failure" + at(s.p, s.t));
      }
      m = v.mode;
    } else if (m != v.mode) {
      return CheckResult::failure("branch changed after the switch" +
                                  at(s.p, s.t));
    }
    if (this_fs && v.fs == FsColor::kRed && !f.failure_by(s.t)) {
      return CheckResult::failure("red output before any failure" +
                                  at(s.p, s.t));
    }
  }
  return CheckResult{};
}

CheckResult check_perfect_history(const std::vector<FdSampleRecord>& samples,
                                  const FailurePattern& f) {
  for (const auto& s : samples) {
    if (!s.value.suspected.has_value()) {
      return CheckResult::failure("sample lacks a suspected component" +
                                  at(s.p, s.t));
    }
    if (!s.value.suspected->is_subset_of(f.crashed_by(s.t))) {
      return CheckResult::failure("suspected a process before it crashed" +
                                  at(s.p, s.t));
    }
  }
  const auto by_p = per_process(samples, f.n());
  const ProcessSet faulty = f.faulty();
  for (ProcessId p : f.correct().members()) {
    const auto& seq = by_p[static_cast<std::size_t>(p)];
    if (seq.empty()) continue;
    if (!faulty.is_subset_of(*seq.back().value.suspected)) {
      std::ostringstream os;
      os << "correct process " << p
         << " does not eventually suspect every faulty process";
      return CheckResult::failure(os.str());
    }
  }
  return CheckResult{};
}

CheckResult check_ev_strong_history(const std::vector<FdSampleRecord>& samples,
                                    const FailurePattern& f) {
  for (const auto& s : samples) {
    if (!s.value.suspected.has_value()) {
      return CheckResult::failure("sample lacks a suspected component" +
                                  at(s.p, s.t));
    }
  }
  const ProcessSet correct = f.correct();
  const ProcessSet faulty = f.faulty();

  // Find a correct process never suspected after some time by correct
  // processes, while every faulty process is suspected from that time on.
  for (ProcessId c : correct.members()) {
    Time last_bad = 0;  // Last violation involving candidate c.
    bool candidate_ok = true;
    for (const auto& s : samples) {
      if (!correct.contains(s.p)) continue;
      const bool suspects_c = s.value.suspected->contains(c);
      const bool misses_faulty = !faulty.is_subset_of(*s.value.suspected);
      if (suspects_c || misses_faulty) last_bad = std::max(last_bad, s.t + 1);
    }
    // Require at least one clean sample per correct process after
    // last_bad; otherwise the eventual clause has no sampled witness.
    for (ProcessId p : correct.members()) {
      bool has_clean = false;
      for (const auto& s : samples) {
        if (s.p == p && s.t >= last_bad) {
          has_clean = true;
          break;
        }
      }
      if (!has_clean) {
        candidate_ok = false;
        break;
      }
    }
    if (candidate_ok) {
      CheckResult r;
      r.witness_time = last_bad;
      return r;
    }
  }
  return CheckResult::failure(
      "no correct process is eventually trusted by all correct processes");
}

}  // namespace wfd::fd
