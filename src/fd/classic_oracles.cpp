#include "fd/classic_oracles.h"

#include "common/check.h"

namespace wfd::fd {
namespace {

Time resolve_stab(Time configured, Time horizon) {
  return configured == kNever ? std::max<Time>(1, horizon / 8)
                              : std::max<Time>(1, configured);
}

}  // namespace

// ------------------------------------------------------------------------ P

void PerfectOracle::begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                              Time horizon) {
  (void)horizon;
  rng_.reseed(seed);
  pattern_ = f;
  lag_.assign(static_cast<std::size_t>(f.n()), 0);
  for (auto& l : lag_) l = rng_.below(std::max<Time>(1, opt_.max_detection_lag));
}

FdValue PerfectOracle::query(ProcessId p, Time t) {
  const Time lag = lag_[static_cast<std::size_t>(p)];
  FdValue v;
  // F(t - lag) is a subset of F(t): never suspects an alive process.
  v.suspected = pattern_.crashed_by(t >= lag ? t - lag : 0);
  return v;
}

// ------------------------------------------------------------------------ S

void StrongOracle::begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                             Time horizon) {
  (void)horizon;
  rng_.reseed(seed);
  pattern_ = f;
  const ProcessSet correct = f.correct();
  WFD_CHECK(!correct.empty());
  if (opt_.fixed_trusted != kNoProcess) {
    WFD_CHECK(correct.contains(opt_.fixed_trusted));
    trusted_ = opt_.fixed_trusted;
  } else {
    trusted_ = rng_.pick(correct.members());
  }
  lag_.assign(static_cast<std::size_t>(f.n()), 0);
  for (auto& l : lag_) {
    l = rng_.below(std::max<Time>(1, opt_.max_detection_lag));
  }
}

FdValue StrongOracle::query(ProcessId p, Time t) {
  const Time lag = lag_[static_cast<std::size_t>(p)];
  // Crashed processes (lagged view) plus arbitrary wrong suspicions of
  // anyone except the trusted process: weak accuracy is perpetual, so
  // the trusted process must never appear.
  ProcessSet s = pattern_.crashed_by(t >= lag ? t - lag : 0);
  for (ProcessId q : pattern_.correct().members()) {
    if (q != trusted_ && rng_.chance(1, 8)) s.insert(q);
  }
  s.erase(trusted_);
  FdValue v;
  v.suspected = s;
  return v;
}

// ---------------------------------------------------------------------- <>P

void EventuallyPerfectOracle::begin_run(const sim::FailurePattern& f,
                                        std::uint64_t seed, Time horizon) {
  rng_.reseed(seed);
  pattern_ = f;
  const Time stab = resolve_stab(opt_.max_stabilization, horizon);
  converge_at_.assign(static_cast<std::size_t>(f.n()), 0);
  for (auto& t : converge_at_) t = rng_.below(stab);
  lag_.assign(static_cast<std::size_t>(f.n()), 0);
  for (auto& l : lag_) l = rng_.below(std::max<Time>(1, opt_.max_detection_lag));
}

FdValue EventuallyPerfectOracle::query(ProcessId p, Time t) {
  FdValue v;
  if (t < converge_at_[static_cast<std::size_t>(p)]) {
    // Arbitrary (possibly wrong) suspicions.
    v.suspected = ProcessSet::from_raw(
        rng_.next() & ProcessSet::full(pattern_.n()).raw());
    return v;
  }
  const Time lag = lag_[static_cast<std::size_t>(p)];
  // After convergence the lagged view must still cover everything that is
  // ever going to crash once it has crashed; using F(max(t-lag,0)) gives
  // eventual strong completeness and eventual strong accuracy.
  v.suspected = pattern_.crashed_by(t >= lag ? t - lag : 0);
  return v;
}

// ---------------------------------------------------------------------- <>S

void EventuallyStrongOracle::begin_run(const sim::FailurePattern& f,
                                       std::uint64_t seed, Time horizon) {
  rng_.reseed(seed);
  pattern_ = f;
  const ProcessSet correct = f.correct();
  WFD_CHECK(!correct.empty());
  trusted_ = rng_.pick(correct.members());
  const Time stab = resolve_stab(opt_.max_stabilization, horizon);
  converge_at_.assign(static_cast<std::size_t>(f.n()), 0);
  for (auto& t : converge_at_) t = rng_.below(stab);
}

FdValue EventuallyStrongOracle::query(ProcessId p, Time t) {
  FdValue v;
  if (t < converge_at_[static_cast<std::size_t>(p)]) {
    v.suspected = ProcessSet::from_raw(
        rng_.next() & ProcessSet::full(pattern_.n()).raw());
    return v;
  }
  // All faulty processes suspected; the trusted correct process never
  // suspected; other correct processes may be wrongly suspected forever.
  ProcessSet s = pattern_.faulty();
  for (ProcessId q : pattern_.correct().members()) {
    if (q != trusted_ && rng_.chance(1, 4)) s.insert(q);
  }
  s.erase(trusted_);
  v.suspected = s;
  return v;
}

}  // namespace wfd::fd
