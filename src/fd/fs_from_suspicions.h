// FS from the perfect detector P: output red as soon as anyone is
// suspected. P's strong accuracy turns a suspicion into a proof that a
// failure occurred (FS accuracy), and its strong completeness makes
// every correct process eventually suspect a crashed one (FS
// completeness). From a merely eventually-accurate class this is
// unsound — an early false suspicion at any single process poisons the
// output red with no failure — mirroring FsHeartbeatModule's synchrony
// requirement at the oracle level.
#pragma once

#include "sim/module.h"

namespace wfd::fd {

class FsFromSuspicionsModule : public sim::Module, public sim::FdSource {
 public:
  void on_message(ProcessId, const sim::Payload&) override {}

  void on_tick() override {
    if (red_) return;
    const auto v = detector();
    if (v.suspected.has_value() && !v.suspected->empty()) red_ = true;
  }

  [[nodiscard]] FdValue fd_value() const override {
    FdValue v;
    v.fs = red_ ? FsColor::kRed : FsColor::kGreen;
    return v;
  }

  [[nodiscard]] bool red() const { return red_; }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("red", red_);
  }

 private:
  bool red_ = false;
};

}  // namespace wfd::fd
