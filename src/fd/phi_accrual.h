// An implementable suspicion detector in the φ-accrual lineage
// [Hayashibara et al., SRDS 2004], feeding an FS/Σ-style quorum view.
//
// Each process broadcasts a heartbeat every `period` host time units and
// keeps, per peer, a sliding window of heartbeat inter-arrival times.
// Instead of a boolean timeout the detector outputs a *suspicion level*
//
//   φ(q) = -log10 P(another beat would arrive this late)
//
// under an exponential inter-arrival model: with mean interval m and
// silence t since the last beat, P = exp(-t/m), so φ = t / (m·ln 10).
// φ crosses `threshold` smoothly as silence grows, and the window makes
// the scale self-tuning: a slow-but-steady peer inflates its own mean
// rather than getting falsely suspected.
//
// The accrued suspicions feed two paper-shaped outputs:
//   - a Σ-style quorum view: the trusted set, published only while it
//     still contains a majority; when too many peers look dead the
//     previous majority view is *retained*, keeping the two-quorum
//     intersection property that registers and (Ω,Σ)-consensus rely on
//     (stale quorums cost liveness, never safety);
//   - an FS-style latch: red forever once some peer's φ exceeds the
//     higher `confirm` threshold. Unlike the FS oracle this can go red
//     without a real crash in an asynchronous run — it is the
//     partial-synchrony approximation, which is exactly why the paper
//     needs the oracle for the lower bounds.
//
// All timing is host time (ModuleHost::now()), so the module runs
// unmodified under the simulator (steps) and the runtime host (ms).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/process_set.h"
#include "sim/module.h"

namespace wfd::fd {

class PhiAccrualModule : public sim::Module, public sim::FdSource {
 public:
  struct Options {
    /// Host time units between heartbeats.
    Time period = 8;
    /// Suspicion threshold: φ ≥ threshold marks a peer suspected.
    double threshold = 3.0;
    /// Latch threshold: φ ≥ confirm latches the FS-style red signal.
    double confirm = 6.0;
    /// Inter-arrival samples kept per peer.
    std::size_t window = 32;
    /// Floor on the mean-interval estimate, so a burst of back-to-back
    /// beats cannot collapse the scale to zero.
    Time min_mean = 1;
  };

  PhiAccrualModule() : PhiAccrualModule(Options{}) {}
  explicit PhiAccrualModule(Options opt);

  void on_start() override;
  void on_message(ProcessId from, const sim::Payload& msg) override;
  void on_tick() override;
  /// A failure detector is a service: it never terminates on its own.
  [[nodiscard]] bool done() const override { return false; }

  /// FdSource: sigma = latest majority trusted view, suspected = current
  /// φ-threshold crossings, fs = the red latch.
  [[nodiscard]] FdValue fd_value() const override;

  /// Current suspicion level for peer q (0 for self).
  [[nodiscard]] double phi(ProcessId q) const;
  [[nodiscard]] ProcessSet suspected() const;
  [[nodiscard]] const ProcessSet& quorum_view() const { return quorum_; }
  [[nodiscard]] bool red() const { return red_; }

  void encode_state(sim::StateEncoder& enc) const override;

 private:
  struct Beat;

  struct PeerStats {
    Time last_arrival = 0;
    std::deque<Time> intervals;  ///< Sliding window, newest at the back.
    Time interval_sum = 0;
    bool suspected = false;
  };

  [[nodiscard]] double phi_at(const PeerStats& s, Time t) const;
  void refresh(Time t);

  Options opt_;
  ProcessId self_id_ = kNoProcess;
  int n_cached_ = 0;
  Time observed_ = 0;
  Time next_beat_ = 0;
  std::vector<PeerStats> peers_;
  ProcessSet quorum_;  ///< Last trusted view that held a majority.
  bool red_ = false;
};

}  // namespace wfd::fd
