// Sigma "ex nihilo" in majority-correct environments (paper, Section 1):
// each process periodically sends join-quorum messages and takes as its
// current quorum any majority of processes that responded. Any two
// majorities intersect; once the faulty processes have crashed, every
// fresh quorum consists only of correct responders (plus the sampler
// itself), so completeness holds.
//
// This module is the constructive content of the remark that in
// majority-correct environments "we 'need' something that we can get for
// free": registers (and with Omega, consensus) are possible there with no
// oracle at all.
#pragma once

#include <cstdint>

#include "common/process_set.h"
#include "sim/module.h"

namespace wfd::fd {

class SigmaMajorityModule : public sim::Module, public sim::FdSource {
 public:
  struct Options {
    /// Own-step period between join-quorum rounds; 0 = 4 * n (keeps the
    /// heartbeat load below the scheduler's delivery capacity).
    Time period = 0;
  };

  SigmaMajorityModule() : SigmaMajorityModule(Options{}) {}
  explicit SigmaMajorityModule(Options opt) : opt_(opt) {}

  void on_start() override;
  void on_message(ProcessId from, const sim::Payload& msg) override;
  void on_tick() override;

  /// FdSource: sigma = the latest formed quorum. Starts as the full set,
  /// which intersects every majority.
  [[nodiscard]] FdValue fd_value() const override;

  [[nodiscard]] ProcessSet current_quorum() const { return quorum_; }

  /// Rounds completed (quorums formed) so far.
  [[nodiscard]] std::uint64_t rounds_completed() const { return rounds_; }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("ticks-since-round", ticks_since_round_);
    enc.field("seq", seq_);
    enc.field("round-done", round_done_);
    enc.field("responders", responders_);
    enc.field("quorum", quorum_);
  }

 private:
  void start_round();

  Options opt_;
  Time period_ = 0;
  Time ticks_since_round_ = 0;
  std::uint64_t seq_ = 0;     ///< Current join round.
  bool round_done_ = false;   ///< Round seq_ has formed its quorum.
  ProcessSet responders_;     ///< Acks collected for round seq_.
  ProcessSet quorum_;         ///< Latest formed quorum.
  std::uint64_t rounds_ = 0;
};

}  // namespace wfd::fd
