#include "fd/omega_oracle.h"

#include "common/check.h"

namespace wfd::fd {

void OmegaOracle::begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                            Time horizon) {
  rng_.reseed(seed);
  n_ = f.n();
  const ProcessSet correct = f.correct();
  WFD_CHECK_MSG(!correct.empty(), "Omega requires at least one correct process");
  if (opt_.fixed_leader != kNoProcess) {
    WFD_CHECK_MSG(correct.contains(opt_.fixed_leader),
                  "fixed Omega leader must be correct");
    leader_ = opt_.fixed_leader;
  } else {
    leader_ = rng_.pick(correct.members());
  }
  const Time max_stab = (opt_.max_stabilization == kNever)
                            ? std::max<Time>(1, horizon / 8)
                            : std::max<Time>(1, opt_.max_stabilization);
  converge_at_.assign(static_cast<std::size_t>(n_), 0);
  for (auto& t : converge_at_) t = rng_.below(max_stab);
}

FdValue OmegaOracle::query(ProcessId p, Time t) {
  WFD_CHECK(p >= 0 && p < n_);
  FdValue v;
  if (t >= converge_at_[static_cast<std::size_t>(p)]) {
    v.omega = leader_;
  } else {
    v.omega = static_cast<ProcessId>(rng_.below(
        static_cast<std::uint64_t>(n_)));
  }
  return v;
}

}  // namespace wfd::fd
