#include "fd/sigma_oracle.h"

#include "common/check.h"

namespace wfd::fd {

void SigmaOracle::begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                            Time horizon) {
  rng_.reseed(seed);
  n_ = f.n();
  correct_ = f.correct();
  WFD_CHECK_MSG(!correct_.empty(),
                "Sigma requires at least one correct process");
  if (opt_.mode == Mode::kMajority) {
    WFD_CHECK_MSG(correct_.size() * 2 > n_,
                  "majority-mode Sigma histories exist only when a majority "
                  "of processes is correct");
  }
  core_ = rng_.pick(correct_.members());
  const Time max_stab = (opt_.max_stabilization == kNever)
                            ? std::max<Time>(1, horizon / 8)
                            : std::max<Time>(1, opt_.max_stabilization);
  converge_at_.assign(static_cast<std::size_t>(n_), 0);
  for (auto& t : converge_at_) t = rng_.below(max_stab);
}

ProcessSet SigmaOracle::make_quorum(bool converged) {
  // The pool a quorum may draw from: anything before convergence, only
  // correct processes after.
  const ProcessSet pool = converged ? correct_ : ProcessSet::full(n_);
  switch (opt_.mode) {
    case Mode::kCommonCore: {
      ProcessSet q;
      q.insert(core_);
      for (ProcessId m : pool.members()) {
        if (rng_.chance(1, 3)) q.insert(m);
      }
      return q;
    }
    case Mode::kMajority: {
      // A uniformly random minimal majority drawn from the pool, padded
      // from the pool when the pool alone cannot reach a majority size
      // (excluded by the begin_run check once converged).
      const int need = n_ / 2 + 1;
      std::vector<ProcessId> members = pool.members();
      WFD_CHECK(static_cast<int>(members.size()) >= need);
      for (std::size_t i = members.size(); i > 1; --i) {
        std::swap(members[i - 1], members[rng_.below(i)]);
      }
      ProcessSet q;
      for (int i = 0; i < need; ++i) {
        q.insert(members[static_cast<std::size_t>(i)]);
      }
      return q;
    }
    case Mode::kAllThenCorrect:
      return pool;
  }
  WFD_CHECK(false);
  return ProcessSet{};
}

FdValue SigmaOracle::query(ProcessId p, Time t) {
  WFD_CHECK(p >= 0 && p < n_);
  FdValue v;
  v.sigma = make_quorum(t >= converge_at_[static_cast<std::size_t>(p)]);
  return v;
}

}  // namespace wfd::fd
