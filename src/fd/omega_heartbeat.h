// A message-passing implementation of Omega for partially synchronous
// runs (PartialSynchronyScheduler): every process periodically broadcasts
// heartbeats and suspects peers whose heartbeats stop arriving within an
// adaptive timeout; the leader is the smallest non-suspected id.
//
// After GST, delays are bounded, so each false suspicion doubles the
// timeout until suspicions of correct processes cease; crashed processes
// stop sending, so they stay suspected. All correct processes then agree
// on the smallest correct id — a legal Omega history. In fully
// asynchronous runs the output can oscillate forever, which is exactly
// the Chandra-Toueg impossibility boundary this module demonstrates in
// the negative tests.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/module.h"

namespace wfd::fd {

class OmegaHeartbeatModule : public sim::Module, public sim::FdSource {
 public:
  struct Options {
    /// Own-step period between heartbeats; 0 = 4 * n.
    Time period = 0;
    /// Initial timeout in own steps; 0 = 8 * period.
    Time initial_timeout = 0;
  };

  OmegaHeartbeatModule() : OmegaHeartbeatModule(Options{}) {}
  explicit OmegaHeartbeatModule(Options opt) : opt_(opt) {}

  void on_start() override;
  void on_message(ProcessId from, const sim::Payload& msg) override;
  void on_tick() override;

  /// FdSource: omega = smallest currently trusted process id.
  [[nodiscard]] FdValue fd_value() const override;

  [[nodiscard]] ProcessId current_leader() const;
  [[nodiscard]] ProcessSet suspected() const;

  /// Number of (re-)suspicions so far; stabilisation means this stops
  /// growing.
  [[nodiscard]] std::uint64_t suspicion_count() const { return suspicions_; }

  /// Deadlines and the beat schedule are folded relative to the current
  /// own-step counter so equal futures hash equally regardless of how
  /// many steps it took to reach them.
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("beat-in", next_beat_ > tick_ ? next_beat_ - tick_ : 0);
    for (std::size_t q = 0; q < suspected_.size(); ++q) {
      enc.push("peer", q);
      enc.field("suspected", static_cast<bool>(suspected_[q]));
      enc.field("timeout", timeout_[q]);
      if (!suspected_[q]) {
        enc.field("deadline-in",
                  deadline_[q] > tick_ ? deadline_[q] - tick_ : 0);
      }
      enc.pop();
    }
  }

 private:
  Options opt_;
  // Cached at on_start so the accessors work outside a step (e.g. when a
  // harness inspects the module between simulation slices).
  ProcessId self_id_ = kNoProcess;
  int n_cached_ = 0;
  Time period_ = 0;
  Time tick_ = 0;  ///< Own steps since start.
  Time next_beat_ = 0;
  std::vector<Time> deadline_;   ///< Own-step deadline per peer.
  std::vector<Time> timeout_;    ///< Current timeout per peer (adaptive).
  std::vector<bool> suspected_;
  std::uint64_t suspicions_ = 0;
};

}  // namespace wfd::fd
