#include "fd/heartbeat_omega.h"

#include <algorithm>
#include <string_view>

#include "common/check.h"

namespace wfd::fd {

// Heartbeat and lease-claim payloads. Both handlers read the receiver's
// clock (receipt time becomes the peer's liveness evidence), so neither
// is tick-insensitive and no commutativity beyond the explorer's
// equal-content rule is claimed.
struct HeartbeatOmegaModule::Beat final : sim::Payload {
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "beat");
  }
  [[nodiscard]] std::string_view kind() const override { return "hb.beat"; }
};

struct HeartbeatOmegaModule::Claim final : sim::Payload {
  explicit Claim(Time u) : until(u) {}
  Time until;  ///< Absolute host time; sim and runtime clocks are global.
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "claim");
    enc.field("until", until);
  }
  [[nodiscard]] std::string_view kind() const override { return "hb.claim"; }
};

HeartbeatOmegaModule::HeartbeatOmegaModule(Options opt) : opt_(opt) {
  WFD_CHECK(opt_.period > 0);
  WFD_CHECK(opt_.timeout > 0);
  WFD_CHECK(opt_.lease > 0);
}

void HeartbeatOmegaModule::on_start() {
  self_id_ = self();
  n_cached_ = n();
  const Time t = now();
  observed_ = t;
  last_heard_.assign(static_cast<std::size_t>(n_cached_), t);
  timeout_.assign(static_cast<std::size_t>(n_cached_), opt_.timeout);
  suspected_.assign(static_cast<std::size_t>(n_cached_), false);
  next_beat_ = t + opt_.period;
  broadcast(sim::make_payload<Beat>(), /*include_self=*/false);
  set_emitted(candidate());
}

void HeartbeatOmegaModule::on_message(ProcessId from, const sim::Payload& msg) {
  const Time t = now();
  observed_ = std::max(observed_, t);
  if (from < 0 || from >= n_cached_) return;
  const auto q = static_cast<std::size_t>(from);
  if (sim::payload_cast<Beat>(msg) != nullptr) {
    if (suspected_[q]) {
      // False suspicion: the peer is alive. Back off its timeout so that
      // after GST the (bounded) delay is eventually accommodated.
      suspected_[q] = false;
      timeout_[q] *= 2;
    }
    last_heard_[q] = t;
    return;
  }
  if (const auto* claim = sim::payload_cast<Claim>(msg)) {
    last_heard_[q] = t;  // A claim is liveness evidence too.
    if (suspected_[q]) {
      suspected_[q] = false;
      timeout_[q] *= 2;
    }
    // Accept the lease only from our own current candidate: a deposed
    // leader keeps claiming until it finally suspects the smaller id,
    // but nobody who trusts the smaller id follows it.
    if (from == candidate() && claim->until > t) {
      lease_holder_ = from;
      lease_until_ = claim->until;
      set_emitted(from);
    }
    return;
  }
}

void HeartbeatOmegaModule::on_tick() {
  const Time t = now();
  observed_ = std::max(observed_, t);
  if (t >= next_beat_) {
    broadcast(sim::make_payload<Beat>(), /*include_self=*/false);
    next_beat_ = t + opt_.period;
  }
  refresh_suspicions(t);
  const ProcessId cand = candidate();
  if (cand == self_id_) {
    // Claim (or refresh, once less than half the lease remains) our own
    // leadership lease.
    if (lease_holder_ != self_id_ || lease_until_ <= t + opt_.lease / 2) {
      lease_holder_ = self_id_;
      lease_until_ = t + opt_.lease;
      broadcast(sim::make_payload<Claim>(lease_until_),
                /*include_self=*/false);
    }
    set_emitted(self_id_);
    return;
  }
  // Follower: honour a fresh lease, else fall back to the local candidate.
  if (lease_holder_ != kNoProcess && lease_until_ > t &&
      lease_holder_ != self_id_ && !suspected_[static_cast<std::size_t>(
                                       lease_holder_)]) {
    set_emitted(lease_holder_);
  } else {
    set_emitted(cand);
  }
}

FdValue HeartbeatOmegaModule::fd_value() const {
  FdValue v;
  v.omega = emitted_ == kNoProcess ? self_id_ : emitted_;
  v.suspected = suspected();
  return v;
}

ProcessSet HeartbeatOmegaModule::suspected() const {
  ProcessSet s;
  for (std::size_t q = 0; q < suspected_.size(); ++q) {
    if (suspected_[q]) s.insert(static_cast<ProcessId>(q));
  }
  return s;
}

ProcessId HeartbeatOmegaModule::candidate() const {
  for (ProcessId p = 0; p < n_cached_; ++p) {
    if (p == self_id_ || !suspected_[static_cast<std::size_t>(p)]) return p;
  }
  return self_id_;
}

void HeartbeatOmegaModule::refresh_suspicions(Time t) {
  for (std::size_t q = 0; q < suspected_.size(); ++q) {
    if (static_cast<ProcessId>(q) == self_id_ || suspected_[q]) continue;
    if (t - last_heard_[q] > timeout_[q]) {
      suspected_[q] = true;
      ++suspicions_;
      if (lease_holder_ == static_cast<ProcessId>(q)) {
        // Do not wait out a dead leader's lease.
        lease_holder_ = kNoProcess;
        lease_until_ = 0;
      }
    }
  }
}

void HeartbeatOmegaModule::set_emitted(ProcessId leader) {
  if (leader == emitted_) return;
  emitted_ = leader;
  ++changes_;
  if (opt_.emit_leader_changes) emit("omega-leader", leader);
}

void HeartbeatOmegaModule::encode_state(sim::StateEncoder& enc) const {
  // Deadlines are encoded relative to the latest host time this module
  // observed, so states reached at different absolute times but with the
  // same pending futures fingerprint identically.
  enc.field("next-beat", next_beat_ - observed_);
  for (std::size_t q = 0; q < suspected_.size(); ++q) {
    enc.push("peer", q);
    enc.field("heard", observed_ - last_heard_[q]);
    enc.field("timeout", timeout_[q]);
    enc.field("suspected", suspected_[q]);
    enc.pop();
  }
  enc.field("lease-holder", lease_holder_);
  enc.field("lease-left",
            lease_until_ > observed_ ? lease_until_ - observed_ : Time{0});
  enc.field("emitted", emitted_);
}

}  // namespace wfd::fd
