// Failure-detector oracles.
//
// A failure detector D maps each failure pattern F to a set of histories
// D(F). An Oracle realises one history H in D(F) for the run at hand: it
// is told the run's failure pattern up front (it is an oracle — the
// *processes* still cannot observe F) and answers point queries
// H(p, t). Randomized oracles draw a history from D(F) using the run
// seed, so different seeds exercise different legal histories.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fd/values.h"
#include "sim/failure_pattern.h"
#include "sim/state_encoder.h"

namespace wfd::fd {

class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Fix the history for this run. `horizon` hints at the run length so
  /// randomized convergence times land inside the run.
  virtual void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                         Time horizon) = 0;

  /// H(p, t). Must be called with non-decreasing t per process (the
  /// simulator queries once per step).
  virtual FdValue query(ProcessId p, Time t) = 0;

  /// The failure pattern just changed: p crashed at time t (fault
  /// injection reconstructs the pattern on the fly). Oracles that
  /// received the pattern at begin_run may ignore this — a history legal
  /// for the scripted pattern stays prefix-extendable — but pattern-aware
  /// adversarial oracles update their live copy here so later answers
  /// (FS red, Ψ's failure branch) see the injected crash.
  virtual void on_crash(ProcessId p, Time t) {
    (void)p;
    (void)t;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Fold everything about the realised history that can still influence
  /// answers after time `now` (latched decisions, time left until a
  /// stabilization cutoff — as a delta, never an absolute time). Oracles
  /// that keep the default are opaque and disable fingerprint pruning.
  virtual void encode_state(sim::StateEncoder& enc, Time now) const {
    (void)now;
    enc.opaque("oracle");
  }
};

/// An oracle that outputs nothing (for algorithms that use no failure
/// detector, e.g. the majority-based ABD register baseline).
class NullOracle : public Oracle {
 public:
  void begin_run(const sim::FailurePattern&, std::uint64_t, Time) override {}
  FdValue query(ProcessId, Time) override { return FdValue{}; }
  [[nodiscard]] std::string name() const override { return "none"; }
  void encode_state(sim::StateEncoder&, Time) const override {}
};

/// Combines two oracles into a tuple detector (e.g. (Omega, Sigma) from an
/// Omega oracle and a Sigma oracle, or (Psi, FS)). Components present in
/// the second oracle's output overwrite absent components of the first.
class TupleOracle : public Oracle {
 public:
  TupleOracle(std::unique_ptr<Oracle> a, std::unique_ptr<Oracle> b);

  void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                 Time horizon) override;
  FdValue query(ProcessId p, Time t) override;
  void on_crash(ProcessId p, Time t) override {
    a_->on_crash(p, t);
    b_->on_crash(p, t);
  }
  [[nodiscard]] std::string name() const override;
  void encode_state(sim::StateEncoder& enc, Time now) const override {
    enc.push("a");
    a_->encode_state(enc, now);
    enc.pop();
    enc.push("b");
    b_->encode_state(enc, now);
    enc.pop();
  }

 private:
  std::unique_ptr<Oracle> a_;
  std::unique_ptr<Oracle> b_;
};

}  // namespace wfd::fd
