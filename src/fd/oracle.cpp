#include "fd/oracle.h"

#include "common/check.h"

namespace wfd::fd {

TupleOracle::TupleOracle(std::unique_ptr<Oracle> a, std::unique_ptr<Oracle> b)
    : a_(std::move(a)), b_(std::move(b)) {
  WFD_CHECK(a_ != nullptr && b_ != nullptr);
}

void TupleOracle::begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                            Time horizon) {
  a_->begin_run(f, seed, horizon);
  b_->begin_run(f, seed ^ 0x9e3779b97f4a7c15ULL, horizon);
}

FdValue TupleOracle::query(ProcessId p, Time t) {
  FdValue v = a_->query(p, t);
  const FdValue w = b_->query(p, t);
  if (!v.omega && w.omega) v.omega = w.omega;
  if (!v.sigma && w.sigma) v.sigma = w.sigma;
  if (!v.fs && w.fs) v.fs = w.fs;
  if (!v.psi && w.psi) v.psi = w.psi;
  if (!v.suspected && w.suspected) v.suspected = w.suspected;
  return v;
}

std::string TupleOracle::name() const {
  return "(" + a_->name() + "," + b_->name() + ")";
}

}  // namespace wfd::fd
