// Oracle for the leader detector Omega.
//
// Definition (paper, Section 2): H is in Omega(F) iff there is a correct
// process p such that every correct process eventually outputs p forever.
// Before its per-process convergence time the oracle outputs arbitrary
// process ids; afterwards it outputs one fixed correct leader.
#pragma once

#include <vector>

#include "common/rng.h"
#include "fd/oracle.h"

namespace wfd::fd {

class OmegaOracle : public Oracle {
 public:
  struct Options {
    /// Upper bound on the per-process convergence time. kNever means
    /// horizon / 8 (scaled to the run).
    Time max_stabilization = kNever;
    /// Force the eventual leader; kNoProcess picks a random correct one.
    ProcessId fixed_leader = kNoProcess;
  };

  OmegaOracle() : OmegaOracle(Options{}) {}
  explicit OmegaOracle(Options opt) : opt_(opt), rng_(0) {}

  void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                 Time horizon) override;
  FdValue query(ProcessId p, Time t) override;
  [[nodiscard]] std::string name() const override { return "Omega"; }

  /// The leader chosen for this run (valid after begin_run).
  [[nodiscard]] ProcessId leader() const { return leader_; }

 private:
  Options opt_;
  Rng rng_;
  int n_ = 0;
  ProcessId leader_ = kNoProcess;
  std::vector<Time> converge_at_;
};

}  // namespace wfd::fd
