// Oracle for Psi, the weakest detector for quittable consensus.
//
// Definition (paper, Section 6.1): each process outputs bottom for an
// initial period; afterwards either all processes' outputs follow a
// history of (Omega, Sigma), or — only if a failure occurs, and starting
// no earlier than the first crash — all follow a history of FS. The
// switch need not be simultaneous, but the branch choice is common.
//
// In the (Omega, Sigma) branch the oracle also populates the top-level
// omega/sigma components after the switch, so an unmodified
// (Omega, Sigma)-based consensus module can run underneath Figure 2's QC
// algorithm.
#pragma once

#include <vector>

#include "common/rng.h"
#include "fd/fs_oracle.h"
#include "fd/omega_oracle.h"
#include "fd/oracle.h"
#include "fd/sigma_oracle.h"

namespace wfd::fd {

class PsiOracle : public Oracle {
 public:
  enum class Branch {
    kAuto,        ///< FS branch with probability 1/2 when a failure occurs.
    kOmegaSigma,  ///< Force the (Omega, Sigma) branch.
    kFs,          ///< Force the FS branch (requires a failure in F).
  };

  struct Options {
    Branch branch = Branch::kAuto;
    /// Upper bound on the per-process extra delay after the earliest
    /// possible switch point; kNever = horizon / 8.
    Time max_switch_spread = kNever;
    OmegaOracle::Options omega;
    SigmaOracle::Options sigma;
  };

  PsiOracle() : PsiOracle(Options{}) {}
  explicit PsiOracle(Options opt)
      : opt_(opt), omega_(opt.omega), sigma_(opt.sigma), rng_(0) {}

  void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                 Time horizon) override;
  FdValue query(ProcessId p, Time t) override;
  [[nodiscard]] std::string name() const override { return "Psi"; }

  /// Which branch this run's history follows (valid after begin_run).
  [[nodiscard]] bool fs_branch() const { return fs_branch_; }

 private:
  Options opt_;
  OmegaOracle omega_;
  SigmaOracle sigma_;
  Rng rng_;
  int n_ = 0;
  bool fs_branch_ = false;
  std::vector<Time> switch_at_;
};

}  // namespace wfd::fd
