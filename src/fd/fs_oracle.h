// Oracle for the failure signal detector FS.
//
// Definition (paper, Section 2): red at time t implies F(t) is non-empty;
// and if any process is faulty, every correct process eventually outputs
// red permanently.
#pragma once

#include <vector>

#include "common/rng.h"
#include "fd/oracle.h"

namespace wfd::fd {

class FsOracle : public Oracle {
 public:
  struct Options {
    /// Upper bound on the per-process lag between the first crash and the
    /// permanent switch to red; kNever = horizon / 8.
    Time max_reaction_lag = kNever;
  };

  FsOracle() : FsOracle(Options{}) {}
  explicit FsOracle(Options opt) : opt_(opt), rng_(0) {}

  void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                 Time horizon) override;
  FdValue query(ProcessId p, Time t) override;
  [[nodiscard]] std::string name() const override { return "FS"; }

 private:
  Options opt_;
  Rng rng_;
  int n_ = 0;
  std::vector<Time> red_at_;  ///< kNever when the pattern is crash-free.
};

}  // namespace wfd::fd
