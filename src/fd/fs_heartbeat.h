// A message-passing implementation of the failure signal FS for
// synchronous runs (RoundRobinScheduler from time 0, or
// PartialSynchronyScheduler with gst = 0): heartbeats with a *safe*
// timeout — one large enough that a missed deadline can only mean a real
// crash. On the first missed deadline the module turns red, broadcasts
// the signal (so every correct process turns red too) and stays red.
//
// FS is not implementable in asynchronous runs: a red output caused by a
// slow-but-alive process would violate the "red implies a failure
// occurred" clause. The accuracy property therefore holds only under the
// synchronous scheduler; the negative test exhibits the violation under
// an asynchronous one with an aggressive timeout.
#pragma once

#include <vector>

#include "sim/module.h"

namespace wfd::fd {

class FsHeartbeatModule : public sim::Module, public sim::FdSource {
 public:
  struct Options {
    /// Own-step period between heartbeats; 0 = 4 * n.
    Time period = 0;
    /// Own-step timeout; 0 = a safe bound for the round-robin scheduler
    /// (64 * period). Set small to demonstrate the asynchronous failure.
    Time timeout = 0;
  };

  FsHeartbeatModule() : FsHeartbeatModule(Options{}) {}
  explicit FsHeartbeatModule(Options opt) : opt_(opt) {}

  void on_start() override;
  void on_message(ProcessId from, const sim::Payload& msg) override;
  void on_tick() override;

  /// FdSource: fs = red once any peer missed its (safe) deadline or a
  /// red signal arrived.
  [[nodiscard]] FdValue fd_value() const override;

  [[nodiscard]] bool red() const { return red_; }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("red", red_);
    if (red_) return;  // Deadlines no longer matter once red.
    enc.field("beat-in", next_beat_ > tick_ ? next_beat_ - tick_ : 0);
    for (std::size_t q = 0; q < deadline_.size(); ++q) {
      enc.push("peer", q);
      enc.field("deadline-in",
                deadline_[q] > tick_ ? deadline_[q] - tick_ : 0);
      enc.pop();
    }
  }

 private:
  Options opt_;
  Time period_ = 0;
  Time timeout_ = 0;
  Time tick_ = 0;
  Time next_beat_ = 0;
  std::vector<Time> deadline_;
  bool red_ = false;
};

}  // namespace wfd::fd
