// A detector-to-detector transformation: Omega from any
// eventually-perfect suspicion list (<>P).
//
// The output is the smallest id not currently suspected. Once <>P
// converges — exactly the crashed processes suspected, at every process
// — all processes output the same smallest correct id forever, which is
// a legal Omega history. (From a mere <>S this construction is NOT
// correct: a correct-but-forever-suspected process can sit below the
// trusted one and the outputs then disagree; the transformation's
// precondition matters, as the tests document.)
//
// Together with the join-quorum Sigma this gives (Omega, Sigma) from
// <>P + a correct majority — the classical recipe the paper's
// generalisation subsumes.
#pragma once

#include "common/check.h"
#include "sim/module.h"

namespace wfd::fd {

class OmegaFromSuspicionsModule : public sim::Module, public sim::FdSource {
 public:
  void on_start() override {
    n_cached_ = n();
    self_id_ = self();
  }

  void on_message(ProcessId, const sim::Payload&) override {}

  void on_tick() override {
    const auto v = detector();
    if (v.suspected.has_value()) last_suspected_ = *v.suspected;
  }

  /// FdSource: omega = smallest unsuspected process.
  [[nodiscard]] FdValue fd_value() const override {
    FdValue v;
    v.omega = self_id_;  // Fallback: a process never suspects itself.
    for (ProcessId q = 0; q < n_cached_; ++q) {
      if (!last_suspected_.contains(q)) {
        v.omega = q;
        break;
      }
    }
    return v;
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("last-suspected", last_suspected_);
  }

 private:
  ProcessId self_id_ = kNoProcess;
  int n_cached_ = 0;
  ProcessSet last_suspected_;
};

}  // namespace wfd::fd
