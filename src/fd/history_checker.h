// Machine-checkable versions of the failure-detector specifications of
// Section 2. Each checker takes the failure-detector samples recorded in
// a run's trace together with the run's failure pattern, and verifies
// every clause of the corresponding definition on the sampled points.
//
// "Eventually" clauses are checked by requiring a finite witness inside
// the run: e.g. for Omega, a time after which every sampled output of
// every correct process is one fixed correct leader. Runs must therefore
// be long enough for the oracle/extraction under test to converge; the
// checkers report the witness time they found so tests and benches can
// assert convergence margins.
#pragma once

#include <string>
#include <vector>

#include "sim/failure_pattern.h"
#include "sim/trace.h"

namespace wfd::fd {

struct CheckResult {
  bool ok = true;
  std::string violation;  ///< Empty when ok.
  /// For eventual clauses: the earliest sampled time from which the
  /// stable suffix holds (0 when not applicable).
  Time witness_time = 0;

  static CheckResult failure(std::string msg) {
    CheckResult r;
    r.ok = false;
    r.violation = std::move(msg);
    return r;
  }
};

/// Omega: some correct leader is eventually output forever by every
/// correct process.
CheckResult check_omega_history(const std::vector<sim::FdSampleRecord>& samples,
                                const sim::FailurePattern& f);

/// Sigma: any two sampled quorums (any processes, any times) intersect;
/// quorums at correct processes eventually contain only correct processes.
CheckResult check_sigma_history(const std::vector<sim::FdSampleRecord>& samples,
                                const sim::FailurePattern& f);

/// FS: red only after a failure; if a failure occurs, correct processes
/// are eventually permanently red.
CheckResult check_fs_history(const std::vector<sim::FdSampleRecord>& samples,
                             const sim::FailurePattern& f);

/// Psi: bottom prefix per process; a single switch per process; the same
/// branch at all processes; the FS branch only after a real failure; the
/// post-switch suffixes satisfy (Omega, Sigma) resp. FS. Requires every
/// correct process to have switched within the run.
CheckResult check_psi_history(const std::vector<sim::FdSampleRecord>& samples,
                              const sim::FailurePattern& f);

/// FS safety alone — red only at-or-after a failure — with no eventual
/// clause. Unlike the full checkers above this is prefix-checkable: it
/// can be asserted after every step of a run whose failure pattern is
/// still *evolving* under injected crashes, because a crash is always
/// injected "now" and so can never retroactively legalise an earlier
/// red sample — a failed verdict is final.
CheckResult check_fs_prefix(const std::vector<sim::FdSampleRecord>& samples,
                            const sim::FailurePattern& f);

/// Psi branch discipline alone — bottom prefix, at most one switch per
/// process, one common branch across all processes, the FS branch (and
/// red within it) only at-or-after a failure — with no convergence
/// clauses. Prefix-checkable under an evolving pattern for the same
/// reason as check_fs_prefix.
CheckResult check_psi_prefix(const std::vector<sim::FdSampleRecord>& samples,
                             const sim::FailurePattern& f);

/// P: strong accuracy and (eventual, sampled) strong completeness.
CheckResult check_perfect_history(
    const std::vector<sim::FdSampleRecord>& samples,
    const sim::FailurePattern& f);

/// <>S: eventual strong completeness plus one correct process eventually
/// never suspected by any correct process.
CheckResult check_ev_strong_history(
    const std::vector<sim::FdSampleRecord>& samples,
    const sim::FailurePattern& f);

}  // namespace wfd::fd
