#include "fd/psi_oracle.h"

#include "common/check.h"

namespace wfd::fd {

void PsiOracle::begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                          Time horizon) {
  rng_.reseed(seed);
  n_ = f.n();
  const Time first_crash = f.first_crash_time();

  switch (opt_.branch) {
    case Branch::kOmegaSigma:
      fs_branch_ = false;
      break;
    case Branch::kFs:
      WFD_CHECK_MSG(first_crash != kNever,
                    "the FS branch of Psi requires a failure in the pattern");
      fs_branch_ = true;
      break;
    case Branch::kAuto:
      fs_branch_ = (first_crash != kNever) && rng_.chance(1, 2);
      break;
  }

  // Earliest legal switch point: the FS branch may only start after the
  // first crash; the (Omega, Sigma) branch may start any time.
  const Time base = fs_branch_ ? first_crash : 0;
  const Time spread = (opt_.max_switch_spread == kNever)
                          ? std::max<Time>(1, horizon / 8)
                          : std::max<Time>(1, opt_.max_switch_spread);
  switch_at_.assign(static_cast<std::size_t>(n_), 0);
  for (auto& t : switch_at_) t = base + rng_.below(spread);

  omega_.begin_run(f, seed ^ 0x6a09e667f3bcc909ULL, horizon);
  sigma_.begin_run(f, seed ^ 0xbb67ae8584caa73bULL, horizon);
}

FdValue PsiOracle::query(ProcessId p, Time t) {
  WFD_CHECK(p >= 0 && p < n_);
  FdValue v;
  if (t < switch_at_[static_cast<std::size_t>(p)]) {
    v.psi = PsiValue::bottom();
    return v;
  }
  if (fs_branch_) {
    // Switch time is already past the first crash, so permanent red is a
    // legal FS history restricted to the post-switch suffix.
    v.psi = PsiValue::failure_signal(FsColor::kRed);
    return v;
  }
  const FdValue om = omega_.query(p, t);
  const FdValue si = sigma_.query(p, t);
  v.psi = PsiValue::omega_sigma(*om.omega, *si.sigma);
  v.omega = om.omega;
  v.sigma = si.sigma;
  return v;
}

}  // namespace wfd::fd
