#include "fd/sigma_majority.h"

#include "sim/payload.h"

namespace wfd::fd {
namespace {

// The handler is a stateless echo (reply JoinAck(seq), no state touched),
// so join requests commute pairwise regardless of their sequence numbers.
struct JoinReq final : sim::Payload {
  explicit JoinReq(std::uint64_t s) : seq(s) {}
  std::uint64_t seq;
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "join-req");
    enc.field("seq", seq);
  }
  [[nodiscard]] std::string_view kind() const override {
    return "fd.sigma.join-req";
  }
  [[nodiscard]] bool commutes_with(const sim::Payload& other) const override {
    return sim::payload_cast<JoinReq>(other) != nullptr;
  }
};

// Audited non-commuting: the majority threshold fires inside the handler,
// and the snapshotted quorum (plus the round's tick phase) depends on
// which ack completed it.
struct JoinAck final : sim::Payload {
  explicit JoinAck(std::uint64_t s) : seq(s) {}
  std::uint64_t seq;
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "join-ack");
    enc.field("seq", seq);
  }
  [[nodiscard]] std::string_view kind() const override {
    return "fd.sigma.join-ack";
  }
};

}  // namespace

void SigmaMajorityModule::on_start() {
  period_ = (opt_.period != 0) ? opt_.period
                               : static_cast<Time>(4 * n());
  quorum_ = ProcessSet::full(n());
  start_round();
}

void SigmaMajorityModule::start_round() {
  ++seq_;
  round_done_ = false;
  responders_ = ProcessSet{};
  responders_.insert(self());  // A process always reaches itself.
  ticks_since_round_ = 0;
  broadcast(sim::make_payload<JoinReq>(seq_), /*include_self=*/false);
}

void SigmaMajorityModule::on_message(ProcessId from, const sim::Payload& msg) {
  if (const auto* req = sim::payload_cast<JoinReq>(msg)) {
    send(from, sim::make_payload<JoinAck>(req->seq));
    return;
  }
  if (const auto* ack = sim::payload_cast<JoinAck>(msg)) {
    if (ack->seq != seq_ || round_done_) return;  // Stale round.
    responders_.insert(from);
    if (2 * responders_.size() > n()) {
      quorum_ = responders_;
      ++rounds_;
      round_done_ = true;  // Pace the next round from on_tick.
      ticks_since_round_ = 0;
    }
  }
}

void SigmaMajorityModule::on_tick() {
  ++ticks_since_round_;
  if (round_done_) {
    if (ticks_since_round_ >= period_) start_round();
  } else if (ticks_since_round_ >= 64 * period_) {
    // Messages are never lost, so this only guards against long
    // scheduling starvation of the round's broadcast.
    start_round();
  }
}

FdValue SigmaMajorityModule::fd_value() const {
  FdValue v;
  v.sigma = quorum_;
  return v;
}

}  // namespace wfd::fd
