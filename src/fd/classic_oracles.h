// Oracles for the classic Chandra-Toueg suspicion-list detectors:
// the perfect detector P, the eventually perfect detector <>P and the
// eventually strong detector <>S. They populate FdValue::suspected.
//
// These are not used by the paper's own algorithms but anchor the related
// work (e.g. Fromentin et al.'s result that pairwise NBAC needs P) and
// the hierarchy bench (E10).
#pragma once

#include <vector>

#include "common/rng.h"
#include "fd/oracle.h"

namespace wfd::fd {

/// P: strong accuracy (no process suspected before it crashes) and strong
/// completeness (crashed processes eventually suspected by everyone).
class PerfectOracle : public Oracle {
 public:
  struct Options {
    Time max_detection_lag = 64;  ///< Suspicion appears within this lag.
  };

  PerfectOracle() : PerfectOracle(Options{}) {}
  explicit PerfectOracle(Options opt) : opt_(opt), rng_(0) {}

  void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                 Time horizon) override;
  FdValue query(ProcessId p, Time t) override;
  [[nodiscard]] std::string name() const override { return "P"; }

 private:
  Options opt_;
  Rng rng_;
  sim::FailurePattern pattern_{1};
  std::vector<Time> lag_;
};

/// S (Strong): strong completeness plus *perpetual* weak accuracy — one
/// fixed correct process is never suspected by anyone, from the start.
/// The Chandra-Toueg S-based consensus (StrongConsensusModule) is
/// correct in any environment with this class, and P is a subclass.
class StrongOracle : public Oracle {
 public:
  struct Options {
    Time max_detection_lag = 64;
    /// Force the never-suspected process; kNoProcess picks a random
    /// correct one.
    ProcessId fixed_trusted = kNoProcess;
  };

  StrongOracle() : StrongOracle(Options{}) {}
  explicit StrongOracle(Options opt) : opt_(opt), rng_(0) {}

  void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                 Time horizon) override;
  FdValue query(ProcessId p, Time t) override;
  [[nodiscard]] std::string name() const override { return "S"; }

  [[nodiscard]] ProcessId trusted() const { return trusted_; }

 private:
  Options opt_;
  Rng rng_;
  sim::FailurePattern pattern_{1};
  ProcessId trusted_ = kNoProcess;
  std::vector<Time> lag_;
};

/// <>P: arbitrary suspicions before a convergence time, exact crash
/// information (with lag) afterwards.
class EventuallyPerfectOracle : public Oracle {
 public:
  struct Options {
    Time max_stabilization = kNever;  ///< kNever = horizon / 8.
    Time max_detection_lag = 64;
  };

  EventuallyPerfectOracle() : EventuallyPerfectOracle(Options{}) {}
  explicit EventuallyPerfectOracle(Options opt) : opt_(opt), rng_(0) {}

  void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                 Time horizon) override;
  FdValue query(ProcessId p, Time t) override;
  [[nodiscard]] std::string name() const override { return "EvP"; }

 private:
  Options opt_;
  Rng rng_;
  sim::FailurePattern pattern_{1};
  std::vector<Time> converge_at_;
  std::vector<Time> lag_;
};

/// <>S: eventual strong completeness, plus one correct process that is
/// eventually never suspected by any correct process.
class EventuallyStrongOracle : public Oracle {
 public:
  struct Options {
    Time max_stabilization = kNever;  ///< kNever = horizon / 8.
  };

  EventuallyStrongOracle() : EventuallyStrongOracle(Options{}) {}
  explicit EventuallyStrongOracle(Options opt) : opt_(opt), rng_(0) {}

  void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                 Time horizon) override;
  FdValue query(ProcessId p, Time t) override;
  [[nodiscard]] std::string name() const override { return "EvS"; }

  [[nodiscard]] ProcessId trusted() const { return trusted_; }

 private:
  Options opt_;
  Rng rng_;
  sim::FailurePattern pattern_{1};
  ProcessId trusted_ = kNoProcess;
  std::vector<Time> converge_at_;
};

}  // namespace wfd::fd
