// An implementable Omega: heartbeat timeouts plus a leader lease, for
// partially synchronous systems (the classic ◇-leader-election recipe of
// Aguilera et al. / the TLA+ EPFailureDetector lineage).
//
// Every process broadcasts a heartbeat every `period` host time units
// and suspects a peer whose heartbeats stop arriving within an adaptive
// per-peer timeout; a heartbeat from a suspected peer un-suspects it and
// doubles that peer's timeout, so after GST false suspicions die out.
// The candidate leader is the smallest trusted id; the candidate claims
// leadership by broadcasting a *lease* and re-claims while it still
// considers itself candidate. Followers output the lease holder while
// the lease is fresh and fall back to their local candidate when it
// expires — the lease adds hysteresis so transient suspicion flaps do
// not flap the emitted leader, which directly bounds failover time:
// after a leader crash the next leader emerges within
// (timeout + lease + period) host time units.
//
// Unlike fd/omega_heartbeat.h (own-step counters, simulator only), all
// deadlines here are in *host time* (ModuleHost::now()), so the same
// module is Omega for the simulator (time = step index; model-checkable
// by the explorer, scenario "omega-impl") and for the runtime host
// (time = milliseconds on the monotonic clock; the detector behind the
// replicated KV service). In fully asynchronous runs the output may
// oscillate forever — the Chandra-Toueg impossibility boundary.
#pragma once

#include <cstdint>
#include <vector>

#include "common/process_set.h"
#include "sim/module.h"

namespace wfd::fd {

class HeartbeatOmegaModule : public sim::Module, public sim::FdSource {
 public:
  struct Options {
    /// Host time units between heartbeats.
    Time period = 8;
    /// Initial per-peer timeout; doubles on each false suspicion.
    Time timeout = 32;
    /// Lease length. Claims are refreshed after half a lease, so a
    /// healthy leader's lease never lapses at correct followers once
    /// delays are below lease/2.
    Time lease = 64;
    /// Emit an "omega-leader" trace event whenever the emitted leader
    /// changes (consumed by the model-checking scenario and tests).
    bool emit_leader_changes = true;
  };

  HeartbeatOmegaModule() : HeartbeatOmegaModule(Options{}) {}
  explicit HeartbeatOmegaModule(Options opt);

  void on_start() override;
  void on_message(ProcessId from, const sim::Payload& msg) override;
  void on_tick() override;
  /// A failure detector is a service: it never terminates on its own.
  /// (Keeps simulator runs of scenario "omega-impl" alive to the
  /// horizon; the runtime host stops processes explicitly.)
  [[nodiscard]] bool done() const override { return false; }

  /// FdSource: omega = the current lease holder while the lease is
  /// fresh, else the smallest trusted id.
  [[nodiscard]] FdValue fd_value() const override;

  /// The leader this process currently emits.
  [[nodiscard]] ProcessId current_leader() const { return emitted_; }
  [[nodiscard]] ProcessSet suspected() const;

  /// Number of (re-)suspicions so far; stabilisation means this stops
  /// growing.
  [[nodiscard]] std::uint64_t suspicion_count() const { return suspicions_; }
  /// Number of changes of the emitted leader; lease hysteresis keeps
  /// this far below the suspicion flap count.
  [[nodiscard]] std::uint64_t leader_changes() const { return changes_; }

  /// All deadlines are folded relative to the latest observed host time
  /// so equal futures hash equally regardless of when they were reached.
  void encode_state(sim::StateEncoder& enc) const override;

 private:
  struct Beat;
  struct Claim;

  [[nodiscard]] ProcessId candidate() const;
  void refresh_suspicions(Time t);
  void set_emitted(ProcessId leader);

  Options opt_;
  ProcessId self_id_ = kNoProcess;
  int n_cached_ = 0;
  Time observed_ = 0;   ///< Latest host time seen (for encode_state).
  Time next_beat_ = 0;
  std::vector<Time> last_heard_;  ///< Host time of the last beat per peer.
  std::vector<Time> timeout_;    ///< Current timeout per peer (adaptive).
  std::vector<bool> suspected_;
  ProcessId lease_holder_ = kNoProcess;
  Time lease_until_ = 0;
  ProcessId emitted_ = kNoProcess;  ///< The leader fd_value() reports.
  std::uint64_t suspicions_ = 0;
  std::uint64_t changes_ = 0;
};

}  // namespace wfd::fd
