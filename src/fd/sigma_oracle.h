// Oracle for the quorum detector Sigma.
//
// Definition (paper, Section 2): every two outputs, at any processes and
// times, intersect; and at every correct process the outputs eventually
// consist only of correct processes.
//
// Three history generators are provided, exercising qualitatively
// different legal histories:
//  - kCommonCore: every quorum contains one fixed correct "core" process
//    (plus noise that shrinks to correct processes after convergence);
//  - kMajority: quorums are majorities (legal only when a majority is
//    correct — exactly the environments where Sigma is free);
//  - kAllThenCorrect: the full set before convergence, correct(F) after.
#pragma once

#include <vector>

#include "common/rng.h"
#include "fd/oracle.h"

namespace wfd::fd {

class SigmaOracle : public Oracle {
 public:
  enum class Mode { kCommonCore, kMajority, kAllThenCorrect };

  struct Options {
    Mode mode = Mode::kCommonCore;
    /// Upper bound on per-process convergence time; kNever = horizon / 8.
    Time max_stabilization = kNever;
  };

  SigmaOracle() : SigmaOracle(Options{}) {}
  explicit SigmaOracle(Options opt) : opt_(opt), rng_(0) {}

  void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                 Time horizon) override;
  FdValue query(ProcessId p, Time t) override;
  [[nodiscard]] std::string name() const override { return "Sigma"; }

 private:
  [[nodiscard]] ProcessSet make_quorum(bool converged);

  Options opt_;
  Rng rng_;
  int n_ = 0;
  ProcessSet correct_;
  ProcessId core_ = kNoProcess;
  std::vector<Time> converge_at_;
};

}  // namespace wfd::fd
