#include "fd/phi_accrual.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "common/check.h"

namespace wfd::fd {

namespace {
constexpr double kLn10 = 2.302585092994046;
}  // namespace

struct PhiAccrualModule::Beat final : sim::Payload {
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "beat");
  }
  [[nodiscard]] std::string_view kind() const override { return "phi.beat"; }
};

PhiAccrualModule::PhiAccrualModule(Options opt) : opt_(opt) {
  WFD_CHECK(opt_.period > 0);
  WFD_CHECK(opt_.threshold > 0.0);
  WFD_CHECK(opt_.confirm >= opt_.threshold);
  WFD_CHECK(opt_.window > 0);
  WFD_CHECK(opt_.min_mean > 0);
}

void PhiAccrualModule::on_start() {
  self_id_ = self();
  n_cached_ = n();
  const Time t = now();
  observed_ = t;
  peers_.assign(static_cast<std::size_t>(n_cached_), PeerStats{});
  for (auto& s : peers_) s.last_arrival = t;
  next_beat_ = t + opt_.period;
  // Until evidence accrues, everyone is trusted: the full set is a
  // majority quorum and intersects every later view.
  for (ProcessId p = 0; p < n_cached_; ++p) quorum_.insert(p);
  broadcast(sim::make_payload<Beat>(), /*include_self=*/false);
}

void PhiAccrualModule::on_message(ProcessId from, const sim::Payload& msg) {
  if (sim::payload_cast<Beat>(msg) == nullptr) return;
  if (from < 0 || from >= n_cached_) return;
  const Time t = now();
  observed_ = std::max(observed_, t);
  PeerStats& s = peers_[static_cast<std::size_t>(from)];
  const Time interval = t - s.last_arrival;
  s.last_arrival = t;
  s.intervals.push_back(interval);
  s.interval_sum += interval;
  if (s.intervals.size() > opt_.window) {
    s.interval_sum -= s.intervals.front();
    s.intervals.pop_front();
  }
  s.suspected = false;
}

void PhiAccrualModule::on_tick() {
  const Time t = now();
  observed_ = std::max(observed_, t);
  if (t >= next_beat_) {
    broadcast(sim::make_payload<Beat>(), /*include_self=*/false);
    next_beat_ = t + opt_.period;
  }
  refresh(t);
}

double PhiAccrualModule::phi_at(const PeerStats& s, Time t) const {
  // Mean inter-arrival; before any sample arrives, fall back to the
  // nominal period (heartbeats *should* be period apart).
  double mean = s.intervals.empty()
                    ? static_cast<double>(opt_.period)
                    : static_cast<double>(s.interval_sum) /
                          static_cast<double>(s.intervals.size());
  mean = std::max(mean, static_cast<double>(opt_.min_mean));
  const double silence = static_cast<double>(t - s.last_arrival);
  return silence / (mean * kLn10);
}

void PhiAccrualModule::refresh(Time t) {
  ProcessSet trusted;
  for (ProcessId p = 0; p < n_cached_; ++p) {
    if (p == self_id_) {
      trusted.insert(p);
      continue;
    }
    PeerStats& s = peers_[static_cast<std::size_t>(p)];
    const double level = phi_at(s, t);
    s.suspected = level >= opt_.threshold;
    if (level >= opt_.confirm) red_ = true;
    if (!s.suspected) trusted.insert(p);
  }
  // Publish the trusted set as the quorum view only while it is still a
  // majority; otherwise keep the previous majority view (it intersects
  // every other retained majority — safety over freshness).
  if (2 * trusted.size() > n_cached_) {
    quorum_ = trusted;
  }
}

FdValue PhiAccrualModule::fd_value() const {
  FdValue v;
  v.sigma = quorum_;
  v.suspected = suspected();
  v.fs = red_ ? FsColor::kRed : FsColor::kGreen;
  return v;
}

double PhiAccrualModule::phi(ProcessId q) const {
  if (q < 0 || q >= n_cached_ || q == self_id_) return 0.0;
  return phi_at(peers_[static_cast<std::size_t>(q)], observed_);
}

ProcessSet PhiAccrualModule::suspected() const {
  ProcessSet s;
  for (ProcessId p = 0; p < n_cached_; ++p) {
    if (p != self_id_ && peers_[static_cast<std::size_t>(p)].suspected) {
      s.insert(p);
    }
  }
  return s;
}

void PhiAccrualModule::encode_state(sim::StateEncoder& enc) const {
  enc.field("next-beat", next_beat_ - observed_);
  for (std::size_t q = 0; q < peers_.size(); ++q) {
    const PeerStats& s = peers_[q];
    enc.push("peer", q);
    enc.field("silence", observed_ - s.last_arrival);
    sim::encode_field(enc, "intervals",
                      std::vector<Time>(s.intervals.begin(),
                                        s.intervals.end()));
    enc.field("suspected", s.suspected);
    enc.pop();
  }
  enc.field("quorum", quorum_);
  enc.field("red", red_);
}

}  // namespace wfd::fd
