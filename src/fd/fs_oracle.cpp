#include "fd/fs_oracle.h"

namespace wfd::fd {

void FsOracle::begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                         Time horizon) {
  rng_.reseed(seed);
  n_ = f.n();
  red_at_.assign(static_cast<std::size_t>(n_), kNever);
  const Time first_crash = f.first_crash_time();
  if (first_crash == kNever) return;  // Crash-free: green forever.
  const Time max_lag = (opt_.max_reaction_lag == kNever)
                           ? std::max<Time>(1, horizon / 8)
                           : std::max<Time>(1, opt_.max_reaction_lag);
  for (auto& t : red_at_) {
    // Red only from the first crash onwards, plus a bounded random lag.
    t = first_crash + rng_.below(max_lag);
  }
}

FdValue FsOracle::query(ProcessId p, Time t) {
  FdValue v;
  v.fs = (t >= red_at_[static_cast<std::size_t>(p)]) ? FsColor::kRed
                                                     : FsColor::kGreen;
  return v;
}

}  // namespace wfd::fd
