#include "fd/fs_heartbeat.h"

#include "sim/payload.h"

namespace wfd::fd {
namespace {

// Audited non-commuting: receipt-time-stamped deadline, like Heartbeat.
struct FsBeat final : sim::Payload {
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "fs-beat");
  }
  [[nodiscard]] std::string_view kind() const override {
    return "fd.fs.beat";
  }
};
// Red announcements carry no content and latch an idempotent flag (the
// relay broadcast fires only on the first one), so any two commute.
struct FsRed final : sim::Payload {
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("kind", "fs-red");
  }
  [[nodiscard]] std::string_view kind() const override { return "fd.fs.red"; }
  [[nodiscard]] bool commutes_with(const sim::Payload& other) const override {
    return sim::payload_cast<FsRed>(other) != nullptr;
  }
};

}  // namespace

void FsHeartbeatModule::on_start() {
  period_ = (opt_.period != 0) ? opt_.period : static_cast<Time>(4 * n());
  timeout_ = (opt_.timeout != 0) ? opt_.timeout : 64 * period_;
  deadline_.assign(static_cast<std::size_t>(n()), timeout_);
  next_beat_ = 0;
}

void FsHeartbeatModule::on_message(ProcessId from, const sim::Payload& msg) {
  if (sim::payload_cast<FsBeat>(msg) != nullptr) {
    deadline_[static_cast<std::size_t>(from)] = tick_ + timeout_;
    return;
  }
  if (sim::payload_cast<FsRed>(msg) != nullptr && !red_) {
    red_ = true;
    broadcast(sim::make_payload<FsRed>(), /*include_self=*/false);
  }
}

void FsHeartbeatModule::on_tick() {
  ++tick_;
  if (red_) return;  // Red is permanent; heartbeats no longer matter.
  if (tick_ >= next_beat_) {
    broadcast(sim::make_payload<FsBeat>(), /*include_self=*/false);
    next_beat_ = tick_ + period_;
  }
  for (ProcessId q = 0; q < n(); ++q) {
    if (q == self()) continue;
    if (tick_ > deadline_[static_cast<std::size_t>(q)]) {
      red_ = true;
      broadcast(sim::make_payload<FsRed>(), /*include_self=*/false);
      break;
    }
  }
}

FdValue FsHeartbeatModule::fd_value() const {
  FdValue v;
  v.fs = red_ ? FsColor::kRed : FsColor::kGreen;
  return v;
}

}  // namespace wfd::fd
