// Failure-detector output values.
//
// The paper works with detectors Omega, Sigma, FS and Psi, plus tuple
// detectors such as (Omega, Sigma) and (Psi, FS). Rather than a closed
// variant, an FdValue carries optional components; a tuple detector
// populates several components at once, and each algorithm reads only the
// component(s) of the detector class it was proven to need.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "common/process_set.h"
#include "common/types.h"
#include "sim/state_encoder.h"

namespace wfd::fd {

/// Output of the failure signal detector FS: green until a failure has
/// occurred; after a failure it may (and at correct processes eventually
/// must) switch to red forever.
enum class FsColor { kGreen, kRed };

std::ostream& operator<<(std::ostream& os, FsColor c);

/// Output of the quittable-consensus detector Psi. For an initial period
/// the output is bottom; afterwards it behaves either like (Omega, Sigma)
/// at all processes, or (only if a failure occurred) like FS at all
/// processes. The mode choice is the same at every process.
struct PsiValue {
  enum class Mode { kBottom, kOmegaSigma, kFs };

  Mode mode = Mode::kBottom;
  /// Valid when mode == kOmegaSigma.
  ProcessId omega = kNoProcess;
  ProcessSet sigma;
  /// Valid when mode == kFs.
  FsColor fs = FsColor::kGreen;

  static PsiValue bottom() { return PsiValue{}; }
  static PsiValue omega_sigma(ProcessId leader, ProcessSet quorum) {
    PsiValue v;
    v.mode = Mode::kOmegaSigma;
    v.omega = leader;
    v.sigma = quorum;
    return v;
  }
  static PsiValue failure_signal(FsColor c) {
    PsiValue v;
    v.mode = Mode::kFs;
    v.fs = c;
    return v;
  }

  friend bool operator==(const PsiValue&, const PsiValue&) = default;

  void encode_state(sim::StateEncoder& enc) const {
    enc.field("mode", mode);
    enc.pid_field("omega", omega);
    enc.field("sigma", sigma);
    enc.field("fs", fs);
  }
};

std::ostream& operator<<(std::ostream& os, const PsiValue& v);

/// One failure-detector sample as seen by a process in one atomic step.
/// Components are optional; a detector populates the components of its
/// class (a tuple detector populates several).
struct FdValue {
  /// Omega: the id of the current presumed leader.
  std::optional<ProcessId> omega;
  /// Sigma: the current quorum.
  std::optional<ProcessSet> sigma;
  /// FS: the current failure signal.
  std::optional<FsColor> fs;
  /// Psi.
  std::optional<PsiValue> psi;
  /// Suspicion-list detectors (P, eventually-P, eventually-S): the set of
  /// processes currently suspected to have crashed.
  std::optional<ProcessSet> suspected;

  friend bool operator==(const FdValue&, const FdValue&) = default;

  [[nodiscard]] std::string to_string() const;

  void encode_state(sim::StateEncoder& enc) const {
    enc.field("omega?", omega.has_value());
    if (omega.has_value()) enc.pid_field("omega", *omega);
    enc.field("sigma", sigma);
    enc.field("fs", fs);
    enc.field("psi?", psi.has_value());
    if (psi.has_value()) {
      enc.push("psi");
      psi->encode_state(enc);
      enc.pop();
    }
    enc.field("suspected", suspected);
  }
};

std::ostream& operator<<(std::ostream& os, const FdValue& v);

}  // namespace wfd::fd
