// A replicated key-value service on the runtime host: the paper's
// Corollary 3 ("by using consensus we can implement any object") made
// operational. Every replica hosts the *unmodified* protocol stack —
// ReplicatedObjectModule over AtomicBroadcastModule over UrbModule over
// per-round (Omega, Sigma) consensus — with the implementable detectors
// (HeartbeatOmegaModule for Omega, PhiAccrualModule for Sigma) merged
// into the host's detector sample, so the exact module binaries the
// explorer model-checks now serve real clients under load.
//
// Commands are packed into the object's int64 command word:
//   bit 62        op   (0 = get, 1 = put)
//   bits 32..55   key  (24 bits)
//   bits 0..31    value
// apply() returns the value read (get) or the value written (put), so a
// client can check read-your-writes directly against the result stream.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fd/heartbeat_omega.h"
#include "fd/phi_accrual.h"
#include "runtime/cluster.h"
#include "smr/replicated_object.h"

namespace wfd::runtime {

// --- Command word packing (shared by service, clients and tests).

constexpr std::int64_t kKvOpPut = std::int64_t{1} << 62;

constexpr std::int64_t kv_put_cmd(std::uint32_t key, std::uint32_t value) {
  return kKvOpPut | (static_cast<std::int64_t>(key & 0xffffff) << 32) |
         static_cast<std::int64_t>(value);
}

constexpr std::int64_t kv_get_cmd(std::uint32_t key) {
  return static_cast<std::int64_t>(key & 0xffffff) << 32;
}

/// The deterministic transition function every replica installs; state
/// is the captured map. Exposed so the simulator-side equal-decisions
/// test can install the identical function.
smr::ReplicatedObjectModule::ApplyFn make_kv_apply();

/// Per-replica detector timing, in host milliseconds.
struct KvDetectorTiming {
  Time heartbeat_period = 10;
  Time omega_timeout = 60;
  Time omega_lease = 120;
  double phi_threshold = 4.0;
};

class KvService {
 public:
  struct Options {
    int n = 3;
    std::uint64_t seed = 1;
    Time tick_interval = 1;
    KvDetectorTiming timing;
    LinkFaults faults;
    bool tcp = false;  ///< Loopback-TCP transport instead of channels.
  };

  explicit KvService(Options opt);

  void start() { cluster_->start(); }
  void stop() { cluster_->stop(); }
  void kill(ProcessId p) { cluster_->kill(p); }

  [[nodiscard]] int n() const { return cluster_->n(); }
  [[nodiscard]] RuntimeCluster& cluster() { return *cluster_; }
  [[nodiscard]] RuntimeProcess& replica(ProcessId p) {
    return cluster_->process(p);
  }

  /// The leader replica p currently believes in (its HeartbeatOmega
  /// output); thread-safe snapshot via the replica's event log.
  [[nodiscard]] ProcessId leader_view(ProcessId p);

 private:
  struct ReplicaWiring {
    std::unique_ptr<sim::MergedFdSource> merged;
  };

  std::vector<ReplicaWiring> wiring_;
  std::unique_ptr<RuntimeCluster> cluster_;
};

/// A closed-loop client: one outstanding command at a time, submitted to
/// a replica's loop thread, with timeout + failover to the next replica.
/// Each client must be used from a single thread.
class KvClient {
 public:
  struct Options {
    /// Per-attempt wait before failing over to the next replica.
    Time attempt_timeout = 1000;
    /// Attempts before giving up (>= n covers one full rotation).
    int max_attempts = 6;
  };

  KvClient(KvService& service, ProcessId preferred, Options opt);
  KvClient(KvService& service, ProcessId preferred)
      : KvClient(service, preferred, Options{}) {}

  /// Returns the applied result, or nullopt when every attempt timed
  /// out (service wedged longer than attempt_timeout * max_attempts).
  std::optional<std::int64_t> put(std::uint32_t key, std::uint32_t value);
  std::optional<std::int64_t> get(std::uint32_t key);

  /// Completed operations and failover count, for bench/soak reporting.
  [[nodiscard]] std::uint64_t ops() const { return ops_; }
  [[nodiscard]] std::uint64_t failovers() const { return failovers_; }

 private:
  std::optional<std::int64_t> execute(std::int64_t cmd);

  KvService& service_;
  ProcessId target_;
  Options opt_;
  std::uint64_t ops_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace wfd::runtime
