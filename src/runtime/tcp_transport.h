// Loopback-TCP transport: the same Transport interface as
// ChannelTransport, but every message really crosses the kernel via a
// socket — real framing, real backpressure, real interleaving with
// other traffic, which is what the runtime smoke tests want to shake
// out.
//
// Honesty note on serialization: protocol payloads are private nested
// C++ types (e.g. a consensus round's internal messages) with no wire
// codec yet, so the 16-byte frame carries (from, to, token) and the
// payload body itself travels out-of-band through an in-process token
// arena keyed by the frame. Delivery order, connection loss and
// detachment semantics are all real TCP; byte-level payload
// serialization is the recorded open item (ROADMAP).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/transport.h"

namespace wfd::runtime {

class TcpTransport final : public Transport {
 public:
  /// Opens one loopback listening socket per process (ephemeral ports).
  explicit TcpTransport(int n);
  ~TcpTransport() override;

  void attach(ProcessId p, Sink sink) override;
  void detach(ProcessId p) override;
  void send(WireMessage msg) override;
  void shutdown() override;

  [[nodiscard]] std::uint16_t port(ProcessId p) const;

 private:
  struct Frame {
    std::int32_t from = 0;
    std::int32_t to = 0;
    std::uint64_t token = 0;
  };

  struct Listener {
    int fd = -1;
    std::uint16_t port = 0;
    Sink sink;
    bool attached = false;
    std::thread acceptor;
    std::vector<int> conns;
    std::vector<std::thread> readers;
  };

  /// An outgoing connection; writes serialize on the connection's own
  /// mutex so a blocking write (full socket buffer) never holds the
  /// transport mutex the readers need to make progress.
  struct Conn {
    int fd = -1;
    std::mutex wmu;
  };

  void acceptor_loop(ProcessId p);
  void reader_loop(ProcessId p, int fd);
  [[nodiscard]] int connect_to(ProcessId to);

  int n_;
  mutable std::mutex mu_;
  bool down_ = false;
  std::vector<Listener> listeners_;
  /// Outgoing connection per (from, to) ordered pair, lazily dialled.
  std::map<std::pair<ProcessId, ProcessId>, std::shared_ptr<Conn>> out_;
  /// Token arena: payload bodies referenced by in-flight frames.
  std::map<std::uint64_t, sim::PayloadPtr> arena_;
  std::uint64_t next_token_ = 1;
};

}  // namespace wfd::runtime
