#include "runtime/kv.h"

#include <chrono>
#include <future>
#include <map>
#include <utility>

#include "common/check.h"
#include "runtime/tcp_transport.h"

namespace wfd::runtime {

smr::ReplicatedObjectModule::ApplyFn make_kv_apply() {
  // The map lives in the closure: one independent copy per replica,
  // driven to the same state by the common total order.
  auto state = std::make_shared<std::map<std::uint32_t, std::int64_t>>();
  return [state](std::int64_t cmd) -> std::int64_t {
    const auto key = static_cast<std::uint32_t>((cmd >> 32) & 0xffffff);
    if ((cmd & kKvOpPut) != 0) {
      const auto value = static_cast<std::int64_t>(
          static_cast<std::uint32_t>(cmd & 0xffffffff));
      (*state)[key] = value;
      return value;
    }
    auto it = state->find(key);
    return it == state->end() ? -1 : it->second;
  };
}

KvService::KvService(Options opt) {
  wiring_.resize(static_cast<std::size_t>(opt.n));
  RuntimeCluster::Options copt;
  copt.n = opt.n;
  copt.seed = opt.seed;
  copt.tick_interval = opt.tick_interval;
  copt.faults = opt.faults;
  const KvDetectorTiming timing = opt.timing;
  auto factory = [this, timing](RuntimeProcess& host) {
    fd::HeartbeatOmegaModule::Options oopt;
    oopt.period = timing.heartbeat_period;
    oopt.timeout = timing.omega_timeout;
    oopt.lease = timing.omega_lease;
    auto& omega =
        host.add_module<fd::HeartbeatOmegaModule>("fd.omega", oopt);
    fd::PhiAccrualModule::Options popt;
    popt.period = timing.heartbeat_period;
    popt.threshold = timing.phi_threshold;
    auto& phi = host.add_module<fd::PhiAccrualModule>("fd.phi", popt);
    // Omega from the lease detector, Sigma (and the suspicion list)
    // from phi-accrual: together the (Omega, Sigma) sample every
    // dynamically spawned consensus round reads through fd_sample().
    auto& w = wiring_[static_cast<std::size_t>(host.self())];
    w.merged = std::make_unique<sim::MergedFdSource>(&omega, &phi);
    host.set_detector(w.merged.get());
    host.add_module<smr::ReplicatedObjectModule>("kv", make_kv_apply());
  };
  std::unique_ptr<Transport> transport;
  if (opt.tcp) transport = std::make_unique<TcpTransport>(opt.n);
  cluster_ = std::make_unique<RuntimeCluster>(copt, std::move(factory),
                                              std::move(transport));
}

ProcessId KvService::leader_view(ProcessId p) {
  ProcessId leader = kNoProcess;
  for (const TraceEvent& e : replica(p).events()) {
    if (e.kind == "omega-leader") leader = static_cast<ProcessId>(e.value);
  }
  return leader;
}

KvClient::KvClient(KvService& service, ProcessId preferred, Options opt)
    : service_(service), target_(preferred), opt_(opt) {
  WFD_CHECK(target_ >= 0 && target_ < service_.n());
}

std::optional<std::int64_t> KvClient::put(std::uint32_t key,
                                          std::uint32_t value) {
  return execute(kv_put_cmd(key, value));
}

std::optional<std::int64_t> KvClient::get(std::uint32_t key) {
  return execute(kv_get_cmd(key));
}

std::optional<std::int64_t> KvClient::execute(std::int64_t cmd) {
  for (int attempt = 0; attempt < opt_.max_attempts; ++attempt) {
    // The promise outlives a timed-out attempt: the replica may still
    // apply the command and resolve the callback later, harmlessly.
    auto prom = std::make_shared<std::promise<std::int64_t>>();
    auto fut = prom->get_future();
    RuntimeProcess& replica = service_.replica(target_);
    const bool posted = replica.post([&replica, cmd, prom] {
      replica.module<smr::ReplicatedObjectModule>("kv").submit(
          cmd, [prom](std::int64_t result) { prom->set_value(result); });
    });
    if (posted &&
        fut.wait_for(std::chrono::milliseconds(opt_.attempt_timeout)) ==
            std::future_status::ready) {
      ++ops_;
      return fut.get();
    }
    // Dead or wedged replica: fail over. A timed-out *put* may still
    // commit; re-submitting it is idempotent (same key, same value).
    target_ = static_cast<ProcessId>((target_ + 1) % service_.n());
    ++failovers_;
  }
  return std::nullopt;
}

}  // namespace wfd::runtime
