// A cluster of RuntimeProcesses over one shared Transport: the runtime
// analogue of the simulator's process array, owning construction order
// and teardown order (processes stop before the transport dies).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/host.h"
#include "runtime/transport.h"

namespace wfd::runtime {

class RuntimeCluster {
 public:
  /// Builds one process's module stack: add modules to the host and wire
  /// its detector (RuntimeProcess::set_detector). Called once per
  /// process, before any thread starts.
  using StackFactory = std::function<void(RuntimeProcess&)>;

  struct Options {
    int n = 3;
    Time tick_interval = 1;
    std::uint64_t seed = 1;
    LinkFaults faults;  ///< Drop/delay injection on the channel transport.
  };

  /// Uses the given transport, or constructs a ChannelTransport with
  /// `opt.faults` when null.
  RuntimeCluster(Options opt, StackFactory factory,
                 std::unique_ptr<Transport> transport = nullptr);
  ~RuntimeCluster();

  /// Start every process thread.
  void start();

  /// Gracefully stop all still-running processes, then the transport.
  void stop();

  /// Crash process p (abrupt; see RuntimeProcess::kill).
  void kill(ProcessId p);

  [[nodiscard]] int n() const { return opt_.n; }
  [[nodiscard]] RuntimeProcess& process(ProcessId p);
  [[nodiscard]] Transport& transport() { return *transport_; }
  [[nodiscard]] RuntimeProcess::Clock::time_point epoch() const {
    return epoch_;
  }

 private:
  Options opt_;
  RuntimeProcess::Clock::time_point epoch_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<RuntimeProcess>> procs_;
};

}  // namespace wfd::runtime
