#include "runtime/transport.h"

#include <utility>

namespace wfd::runtime {

Transport::~Transport() = default;

ChannelTransport::ChannelTransport(LinkFaults faults)
    : faults_(faults), rng_(faults.seed == 0 ? 1 : faults.seed) {
  if (faults_.delay > 0 || faults_.retransmit > 0) {
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
  }
}

ChannelTransport::~ChannelTransport() { shutdown(); }

void ChannelTransport::attach(ProcessId p, Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_[p] = std::move(sink);
}

void ChannelTransport::detach(ProcessId p) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.erase(p);
}

void ChannelTransport::send(WireMessage msg) {
  std::unique_lock<std::mutex> lock(mu_);
  if (down_) return;
  ++sent_;
  Time extra = 0;
  if (faults_.drop_prob > 0.0) {
    // Bernoulli draw with 1e6 resolution; Rng::chance(num, den).
    const auto num =
        static_cast<std::uint64_t>(faults_.drop_prob * 1e6);
    if (rng_.chance(num, 1000000)) {
      ++dropped_;
      if (faults_.retransmit == 0) return;  // Final loss.
      // Retransmitted after a timeout, like TCP under packet loss.
      // A single extra round keeps the cost model simple (the first
      // copy was lost; the retransmission arrives).
      extra = faults_.retransmit;
    }
  }
  if (faults_.delay > 0 || extra > 0) {
    heap_.push(Delayed{std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(faults_.delay + extra),
                       delay_seq_++, std::move(msg)});
    cv_.notify_one();
    return;
  }
  // Direct hand-off: look up the sink under the lock, call it outside so
  // a sink that sends (none do today) cannot deadlock.
  auto it = sinks_.find(msg.to);
  if (it == sinks_.end()) return;
  Sink sink = it->second;
  lock.unlock();
  sink(std::move(msg));
}

void ChannelTransport::deliver(const WireMessage& msg) {
  Sink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sinks_.find(msg.to);
    if (it == sinks_.end()) return;
    sink = it->second;
  }
  sink(msg);
}

void ChannelTransport::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (down_) return;
    if (heap_.empty()) {
      cv_.wait(lock, [this] { return down_ || !heap_.empty(); });
      continue;
    }
    const auto due = heap_.top().due;
    if (std::chrono::steady_clock::now() < due) {
      cv_.wait_until(lock, due);
      continue;
    }
    WireMessage msg = heap_.top().msg;
    heap_.pop();
    lock.unlock();
    deliver(msg);
    lock.lock();
  }
}

void ChannelTransport::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) return;
    down_ = true;
    sinks_.clear();
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::uint64_t ChannelTransport::sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sent_;
}

std::uint64_t ChannelTransport::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace wfd::runtime
