#include "runtime/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/check.h"

namespace wfd::runtime {

namespace {

/// Blocking full-buffer read; false on EOF/error.
bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t r = ::read(fd, p, len);
    if (r <= 0) return false;
    p += r;
    len -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    if (w <= 0) return false;
    p += w;
    len -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

TcpTransport::TcpTransport(int n) : n_(n), listeners_(static_cast<std::size_t>(n)) {
  WFD_CHECK(n > 0);
  for (ProcessId p = 0; p < n_; ++p) {
    Listener& l = listeners_[static_cast<std::size_t>(p)];
    l.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    WFD_CHECK_MSG(l.fd >= 0, "socket() failed");
    const int one = 1;
    ::setsockopt(l.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // Ephemeral.
    WFD_CHECK_MSG(::bind(l.fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "bind() failed");
    WFD_CHECK_MSG(::listen(l.fd, n_) == 0, "listen() failed");
    socklen_t len = sizeof(addr);
    WFD_CHECK(::getsockname(l.fd, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0);
    l.port = ntohs(addr.sin_port);
  }
}

TcpTransport::~TcpTransport() { shutdown(); }

std::uint16_t TcpTransport::port(ProcessId p) const {
  std::lock_guard<std::mutex> lock(mu_);
  WFD_CHECK(p >= 0 && p < n_);
  return listeners_[static_cast<std::size_t>(p)].port;
}

void TcpTransport::attach(ProcessId p, Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  WFD_CHECK(p >= 0 && p < n_);
  Listener& l = listeners_[static_cast<std::size_t>(p)];
  l.sink = std::move(sink);
  if (!l.attached) {
    l.attached = true;
    l.acceptor = std::thread([this, p] { acceptor_loop(p); });
  }
}

void TcpTransport::detach(ProcessId p) {
  std::lock_guard<std::mutex> lock(mu_);
  if (p < 0 || p >= n_) return;
  // Keep the acceptor running (peers may still dial and get their
  // connection reset later); just stop delivering.
  listeners_[static_cast<std::size_t>(p)].sink = nullptr;
}

void TcpTransport::acceptor_loop(ProcessId p) {
  while (true) {
    int lfd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (down_) return;
      lfd = listeners_[static_cast<std::size_t>(p)].fd;
    }
    if (lfd < 0) return;
    const int conn = ::accept(lfd, nullptr, nullptr);
    if (conn < 0) return;  // Listener closed: shutdown.
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) {
      ::close(conn);
      return;
    }
    Listener& l = listeners_[static_cast<std::size_t>(p)];
    l.conns.push_back(conn);
    l.readers.emplace_back([this, p, conn] { reader_loop(p, conn); });
  }
}

void TcpTransport::reader_loop(ProcessId p, int fd) {
  Frame f;
  while (read_exact(fd, &f, sizeof(f))) {
    WireMessage msg;
    msg.from = f.from;
    msg.to = f.to;
    Sink sink;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (down_) return;
      auto it = arena_.find(f.token);
      if (it == arena_.end()) continue;  // Token GC'd by shutdown race.
      msg.payload = it->second;
      arena_.erase(it);
      sink = listeners_[static_cast<std::size_t>(p)].sink;
    }
    if (sink && msg.to == p) sink(std::move(msg));
  }
}

int TcpTransport::connect_to(ProcessId to) {
  const std::uint16_t prt = listeners_[static_cast<std::size_t>(to)].port;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(prt);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void TcpTransport::send(WireMessage msg) {
  std::shared_ptr<Conn> conn;
  Frame f;
  f.from = msg.from;
  f.to = msg.to;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (down_) return;
    if (msg.to < 0 || msg.to >= n_) return;
    const auto key = std::make_pair(msg.from, msg.to);
    auto it = out_.find(key);
    if (it == out_.end()) {
      // Dial under the lock: connects to loopback are effectively
      // instantaneous and dialling races would duplicate connections.
      const int fd = connect_to(msg.to);
      if (fd < 0) return;
      auto c = std::make_shared<Conn>();
      c->fd = fd;
      it = out_.emplace(key, std::move(c)).first;
    }
    conn = it->second;
    f.token = next_token_++;
    arena_.emplace(f.token, std::move(msg.payload));
  }
  // Write outside the transport lock (a full socket buffer blocks here);
  // the per-connection mutex keeps frames whole and per-link FIFO.
  bool ok;
  {
    std::lock_guard<std::mutex> wlock(conn->wmu);
    ok = write_exact(conn->fd, &f, sizeof(f));
  }
  if (!ok) {
    std::lock_guard<std::mutex> lock(mu_);
    arena_.erase(f.token);
    auto it = out_.find(std::make_pair(msg.from, msg.to));
    if (it != out_.end() && it->second == conn) {
      // Another sender may still hold this Conn; taking its write
      // mutex before close() excludes a concurrent write_exact on the
      // fd being freed (mu_ -> wmu is the only nesting order used).
      std::lock_guard<std::mutex> wlock(conn->wmu);
      ::close(conn->fd);
      conn->fd = -1;
      out_.erase(it);
    }
  }
}

void TcpTransport::shutdown() {
  // Callers must stop every sender first (RuntimeCluster::stop joins
  // the host loops before shutting the transport down); acceptor and
  // reader threads are ours to unwind here.
  std::vector<std::thread> joiners;
  std::vector<int> to_close;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (down_) return;
    down_ = true;
    for (auto& [key, conn] : out_) {
      ::shutdown(conn->fd, SHUT_RDWR);
      to_close.push_back(conn->fd);
    }
    out_.clear();
    for (Listener& l : listeners_) {
      if (l.fd >= 0) {
        // shutdown() wakes a blocked accept(); the fd itself must stay
        // open until the acceptor thread is joined.
        ::shutdown(l.fd, SHUT_RDWR);
        to_close.push_back(l.fd);
        l.fd = -1;
      }
      for (int c : l.conns) {
        ::shutdown(c, SHUT_RDWR);
        to_close.push_back(c);
      }
      l.conns.clear();
      l.sink = nullptr;
      if (l.acceptor.joinable()) joiners.push_back(std::move(l.acceptor));
      for (auto& r : l.readers) {
        if (r.joinable()) joiners.push_back(std::move(r));
      }
      l.readers.clear();
    }
    arena_.clear();
  }
  for (auto& t : joiners) t.join();
  // Close only now: close() concurrent with a blocked read()/accept()
  // on the same fd is a use-after-close race (the number can be
  // recycled by another open() the moment it is freed).
  for (int fd : to_close) ::close(fd);
}

}  // namespace wfd::runtime
