// A hashed timer wheel on the host's monotonic clock.
//
// The runtime host's event loop owns one wheel per process and drives it
// from a single thread: timers are scheduled relative to the time of the
// last advance() and fire inside advance() once their deadline passes.
// Slots hash deadlines modulo the wheel size, so an advance over k time
// units inspects min(k, slots) buckets instead of every pending timer —
// the classic scheme of Varghese & Lauck. Not thread safe by design; the
// loop thread is the only caller.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace wfd::runtime {

class TimerWheel {
 public:
  using Callback = std::function<void()>;

  explicit TimerWheel(std::size_t slots = 64) : slots_(slots) {
    WFD_CHECK(slots > 0);
  }

  /// Schedule cb to fire once `delay` time units after the wheel's
  /// current time. A delay of 0 is promoted to 1: deadlines always lie
  /// strictly in the future, matching the buckets advance() inspects.
  void schedule(Time delay, Callback cb) {
    const Time deadline = now_ + std::max<Time>(delay, 1);
    slots_[static_cast<std::size_t>(deadline) % slots_.size()].push_back(
        Entry{deadline, std::move(cb)});
    ++pending_;
    if (pending_ == 1 || deadline < next_deadline_) next_deadline_ = deadline;
  }

  /// Advance the wheel to `now`, firing every timer whose deadline has
  /// passed (in deadline order per slot, not globally). Callbacks may
  /// schedule new timers; those fire on a later advance even if already
  /// due, which keeps a self-rescheduling periodic tick from spinning.
  /// Returns the number of timers fired.
  std::size_t advance(Time now) {
    if (now <= now_ || pending_ == 0 || now < next_deadline_) {
      now_ = std::max(now_, now);
      return 0;
    }
    std::vector<Entry> due;
    // A jump of `span` units touches span buckets; past one full lap
    // every bucket is inspected exactly once.
    const Time span = now - now_;
    const std::size_t lap = slots_.size();
    const std::size_t steps =
        span >= static_cast<Time>(lap) ? lap : static_cast<std::size_t>(span);
    for (std::size_t i = 1; i <= steps; ++i) {
      auto& bucket =
          slots_[static_cast<std::size_t>(now_ + static_cast<Time>(i)) %
                 lap];
      for (auto it = bucket.begin(); it != bucket.end();) {
        if (it->deadline <= now) {
          due.push_back(std::move(*it));
          it = bucket.erase(it);
        } else {
          ++it;
        }
      }
    }
    now_ = now;
    pending_ -= due.size();
    next_deadline_ = Time{0} - 1;
    if (pending_ > 0) recompute_next();
    for (Entry& e : due) e.cb();
    return due.size();
  }

  [[nodiscard]] std::size_t pending() const { return pending_; }
  [[nodiscard]] Time now() const { return now_; }

  /// Earliest pending deadline; meaningless when pending() == 0.
  [[nodiscard]] Time next_deadline() const { return next_deadline_; }

 private:
  struct Entry {
    Time deadline = 0;
    Callback cb;
  };

  void recompute_next() {
    for (const auto& bucket : slots_) {
      for (const Entry& e : bucket) {
        next_deadline_ = std::min(next_deadline_, e.deadline);
      }
    }
  }

  std::vector<std::vector<Entry>> slots_;
  Time now_ = 0;
  Time next_deadline_ = Time{0} - 1;
  std::size_t pending_ = 0;
};

}  // namespace wfd::runtime
