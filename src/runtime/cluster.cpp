#include "runtime/cluster.h"

#include <utility>

#include "common/check.h"

namespace wfd::runtime {

RuntimeCluster::RuntimeCluster(Options opt, StackFactory factory,
                               std::unique_ptr<Transport> transport)
    : opt_(opt), epoch_(RuntimeProcess::Clock::now()) {
  WFD_CHECK(opt_.n > 0);
  WFD_CHECK(factory != nullptr);
  if (transport != nullptr) {
    transport_ = std::move(transport);
  } else {
    LinkFaults faults = opt_.faults;
    if (faults.seed == 0) faults.seed = opt_.seed;
    transport_ = std::make_unique<ChannelTransport>(faults);
  }
  for (ProcessId p = 0; p < opt_.n; ++p) {
    RuntimeProcess::Options popt;
    popt.tick_interval = opt_.tick_interval;
    popt.seed = opt_.seed;
    procs_.push_back(std::make_unique<RuntimeProcess>(
        p, opt_.n, *transport_, epoch_, popt));
    factory(*procs_.back());
  }
}

RuntimeCluster::~RuntimeCluster() { stop(); }

void RuntimeCluster::start() {
  for (auto& p : procs_) p->start();
}

void RuntimeCluster::stop() {
  // Kill rather than drain: service modules are never "done", and a
  // stopping process whose peers are already gone would wait on nothing.
  for (auto& p : procs_) p->kill();
  transport_->shutdown();
}

void RuntimeCluster::kill(ProcessId p) { process(p).kill(); }

RuntimeProcess& RuntimeCluster::process(ProcessId p) {
  WFD_CHECK(p >= 0 && p < static_cast<ProcessId>(procs_.size()));
  return *procs_[static_cast<std::size_t>(p)];
}

}  // namespace wfd::runtime
