#include "runtime/host.h"

#include <utility>

#include "common/check.h"

namespace wfd::runtime {

RuntimeProcess::RuntimeProcess(ProcessId self, int n, Transport& transport,
                               Clock::time_point epoch, Options opt)
    : self_(self),
      n_(n),
      transport_(transport),
      epoch_(epoch),
      opt_(opt),
      rng_(opt.seed + static_cast<std::uint64_t>(self) * 0x9e3779b97f4a7c15ULL) {
  WFD_CHECK(opt_.tick_interval > 0);
}

RuntimeProcess::~RuntimeProcess() {
  kill();
}

Time RuntimeProcess::now() const {
  const auto elapsed = Clock::now() - epoch_;
  return static_cast<Time>(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count());
}

void RuntimeProcess::start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    WFD_CHECK_MSG(state_ == State::kNew, "RuntimeProcess started twice");
    state_ = State::kRunning;
  }
  transport_.attach(self_, [this](WireMessage m) { enqueue(std::move(m)); });
  thread_ = std::thread([this] { loop(); });
}

void RuntimeProcess::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kRunning) return;
    state_ = State::kStopping;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  transport_.detach(self_);
}

void RuntimeProcess::kill() {
  transport_.detach(self_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kRunning && state_ != State::kStopping) return;
    state_ = State::kKilled;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool RuntimeProcess::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kRunning) return false;
    tasks_.push_back(std::move(fn));
  }
  cv_.notify_all();
  return true;
}

bool RuntimeProcess::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::kRunning;
}

std::vector<TraceEvent> RuntimeProcess::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void RuntimeProcess::enqueue(WireMessage msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kRunning && state_ != State::kStopping) return;
    inbox_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

void RuntimeProcess::refresh_fd() {
  fd_cache_ = fd_source_ != nullptr ? fd_source_->fd_value() : fd::FdValue{};
}

void RuntimeProcess::module_out(const std::string& module, ProcessId to,
                                sim::PayloadPtr payload) {
  transport_.send(WireMessage{
      self_, to, sim::make_payload<sim::ModuleEnvelope>(module,
                                                        std::move(payload))});
}

void RuntimeProcess::module_broadcast(const std::string& module,
                                      sim::PayloadPtr payload,
                                      bool include_self) {
  // One shared envelope allocation for the whole broadcast, as in the
  // simulator host. Self-delivery goes through the transport like any
  // other message — never inline.
  const sim::PayloadPtr env =
      sim::make_payload<sim::ModuleEnvelope>(module, std::move(payload));
  for (ProcessId q = 0; q < n_; ++q) {
    if (!include_self && q == self_) continue;
    transport_.send(WireMessage{self_, q, env});
  }
}

void RuntimeProcess::emit_event(const std::string& kind, std::int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{now(), kind, value});
}

void RuntimeProcess::loop() {
  // The host's first step, as in the simulator: fresh detector sample,
  // start every configured module, tick once.
  refresh_fd();
  start_modules();
  tick_modules();
  // The periodic tick drives timeouts/heartbeats/retries; it re-arms
  // itself on the wheel.
  std::function<void()> periodic = [this, &periodic] {
    refresh_fd();
    tick_modules();
    wheel_.schedule(opt_.tick_interval, periodic);
  };
  wheel_.schedule(opt_.tick_interval, periodic);

  std::vector<WireMessage> batch;
  std::vector<std::function<void()>> todo;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      while (true) {
        if (state_ == State::kKilled) {
          state_ = State::kDone;
          return;
        }
        if (!inbox_.empty() || !tasks_.empty()) break;
        if (state_ == State::kStopping) {
          state_ = State::kDone;
          return;
        }
        // Sleep until the next wheel deadline (there is always one: the
        // periodic tick) or until work arrives.
        const auto wake =
            epoch_ + std::chrono::milliseconds(wheel_.next_deadline());
        if (cv_.wait_until(lock, wake) == std::cv_status::timeout) break;
      }
      batch.swap(inbox_);
      todo.swap(tasks_);
    }
    for (auto& fn : todo) fn();
    todo.clear();
    for (WireMessage& m : batch) {
      const auto* env = sim::payload_cast<sim::ModuleEnvelope>(*m.payload);
      WFD_CHECK_MSG(env != nullptr,
                    "runtime host received a non-module message");
      // One simulator-shaped step per message: sample, deliver, tick.
      refresh_fd();
      dispatch_module_msg(m.from, *env);
      tick_modules();
    }
    batch.clear();
    wheel_.advance(now());
  }
}

}  // namespace wfd::runtime
