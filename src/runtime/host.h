// The runtime host: one thread per process, running unmodified Module
// instances over a Transport.
//
// `runtime::Host` — the host-facing surface a Module actually needs
// (deliver/tick/send/query-FD) — *is* sim::ModuleHost: the seam was
// extracted next to ModuleTransport precisely so this file only has to
// answer the environment half (identity, real time, channels, the
// implementable detector) while the container half (dynamic module
// creation, pre-existence buffering) is shared with the simulator
// verbatim. DESIGN.md §11 documents the contract.
//
// Execution model per process: a single loop thread owns every module.
// Inbound wire messages and posted client closures land in a
// mutex-guarded inbox and are drained by the loop; each delivered
// message is followed by a module tick and preceded by a fresh detector
// sample — the exact shape of one simulator step, which is what makes
// the equal-decisions test (sim vs runtime on the same scripted
// workload) meaningful. Between work, a monotonic-clock timer wheel
// fires the periodic tick that drives timeouts, heartbeats and
// consensus retries.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fd/values.h"
#include "runtime/timer_wheel.h"
#include "runtime/transport.h"
#include "sim/module.h"

namespace wfd::runtime {

/// The host interface protocol modules are written against. See
/// sim::ModuleHost for the surface; this alias is the runtime-side name.
using Host = sim::ModuleHost;

/// One emitted protocol event (the runtime's analogue of a sim::Trace
/// line): decision values, leader changes, ...
struct TraceEvent {
  Time at = 0;
  std::string kind;
  std::int64_t value = 0;
};

class RuntimeProcess final : public Host {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Milliseconds between timer-wheel module ticks.
    Time tick_interval = 1;
    std::uint64_t seed = 1;
  };

  /// The process does not own the transport; the caller (RuntimeCluster)
  /// must keep both alive until every loop thread has stopped.
  RuntimeProcess(ProcessId self, int n, Transport& transport,
                 Clock::time_point epoch, Options opt);
  ~RuntimeProcess() override;

  /// Wire the detector this host's fd_sample() reports — typically a
  /// MergedFdSource over implementable detector modules added to this
  /// same host. Must be called before start(); pass nullptr for an empty
  /// sample. The source is read on the loop thread only.
  void set_detector(const sim::FdSource* source) { fd_source_ = source; }

  /// Spawn the loop thread; modules start (and may add further modules)
  /// on it.
  void start();

  /// Graceful stop: drain work already queued, then join the thread.
  void stop();

  /// Crash: detach from the transport and abandon queued work — the
  /// model's crash semantics (a killed process takes no further steps;
  /// its in-flight traffic is lost).
  void kill();

  /// Run fn on the loop thread (thread-safe); the only correct way to
  /// touch modules from outside, e.g. ReplicatedObjectModule::submit.
  /// Returns false (fn discarded) when the process is down.
  bool post(std::function<void()> fn);

  [[nodiscard]] bool running() const;

  /// Copy of the events emitted so far (thread-safe).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  // --- Host environment (valid on the loop thread).
  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] int n() const override { return n_; }
  [[nodiscard]] Time now() const override;
  [[nodiscard]] const fd::FdValue& fd_sample() const override {
    return fd_cache_;
  }
  void module_out(const std::string& module, ProcessId to,
                  sim::PayloadPtr payload) override;
  void module_broadcast(const std::string& module, sim::PayloadPtr payload,
                        bool include_self) override;
  void emit_event(const std::string& kind, std::int64_t value) override;
  [[nodiscard]] Rng& host_rng() override { return rng_; }

 private:
  enum class State { kNew, kRunning, kStopping, kKilled, kDone };

  void loop();
  void enqueue(WireMessage msg);
  void refresh_fd();

  ProcessId self_;
  int n_;
  Transport& transport_;
  Clock::time_point epoch_;
  Options opt_;
  Rng rng_;
  const sim::FdSource* fd_source_ = nullptr;
  fd::FdValue fd_cache_;   ///< Loop thread only.
  TimerWheel wheel_;       ///< Loop thread only.

  mutable std::mutex mu_;
  std::condition_variable cv_;
  State state_ = State::kNew;
  std::vector<WireMessage> inbox_;
  std::vector<std::function<void()>> tasks_;
  std::vector<TraceEvent> events_;
  std::thread thread_;
};

}  // namespace wfd::runtime
