// Real channels for the runtime host.
//
// A Transport moves ModuleEnvelope payloads between process threads. The
// quasi-reliable channels of the paper's model (no duplication, no
// corruption, messages between correct processes eventually arrive) are
// the spec; ChannelTransport implements them with mutex-guarded direct
// delivery into the receiver's inbox, optionally degraded by injected
// drop probability and delivery delay — the knobs the runtime bench uses
// for its lossy-link rows. Payloads are immutable (PayloadPtr is
// shared_ptr<const Payload>), so crossing threads by pointer is safe.
//
// TcpTransport (tcp_transport.h) implements the same interface over
// loopback sockets.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/payload.h"

namespace wfd::runtime {

/// One message on the wire: a module envelope from one process to
/// another, stamped with the sender's send time (host clock) so
/// transports can implement delivery delay.
struct WireMessage {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  sim::PayloadPtr payload;
};

class Transport {
 public:
  /// Receiver callback; invoked on a transport-owned thread or the
  /// sender's thread — implementations of Sink must be thread safe
  /// (RuntimeProcess's inbox enqueue is).
  using Sink = std::function<void(WireMessage)>;

  virtual ~Transport();

  /// Register the receiver for process p. Must happen before any peer
  /// sends to p.
  virtual void attach(ProcessId p, Sink sink) = 0;

  /// Remove p's receiver; subsequent traffic to p is dropped silently
  /// (the crashed-process semantics of the model).
  virtual void detach(ProcessId p) = 0;

  /// Thread-safe send. Messages to detached or never-attached processes
  /// vanish.
  virtual void send(WireMessage msg) = 0;

  /// Stop background machinery; no sinks fire afterwards.
  virtual void shutdown() = 0;
};

/// Fault injection knobs shared by transports.
struct LinkFaults {
  /// Probability in [0,1] that a message is dropped.
  double drop_prob = 0.0;
  /// Fixed extra delivery delay in host time units (ms). Delayed
  /// delivery preserves per-link FIFO order.
  Time delay = 0;
  /// When > 0, a dropped message is retransmitted: it is delivered
  /// after this many extra ms instead of vanishing — the contract a
  /// reliable transport (TCP) gives a protocol stack over a lossy
  /// network, where loss manifests as delay. When 0, drops are final;
  /// note the protocol stack assumes quasi-reliable channels, so
  /// sustained final loss can stall it by design (a round's Decide
  /// that never arrives is never re-sent by a passive decided peer).
  Time retransmit = 0;
  std::uint64_t seed = 1;
};

/// In-process transport: direct hand-off into the receiver's sink under
/// a mutex. With a nonzero delay a dispatcher thread holds messages in a
/// deadline queue; with only drop_prob there is no extra thread.
class ChannelTransport final : public Transport {
 public:
  ChannelTransport() : ChannelTransport(LinkFaults{}) {}
  explicit ChannelTransport(LinkFaults faults);
  ~ChannelTransport() override;

  void attach(ProcessId p, Sink sink) override;
  void detach(ProcessId p) override;
  void send(WireMessage msg) override;
  void shutdown() override;

  [[nodiscard]] std::uint64_t sent() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  struct Delayed {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;  ///< Tie-break: FIFO among equal deadlines.
    WireMessage msg;
    bool operator>(const Delayed& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  void deliver(const WireMessage& msg);
  void dispatcher_loop();

  LinkFaults faults_;
  mutable std::mutex mu_;
  std::map<ProcessId, Sink> sinks_;
  Rng rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  bool down_ = false;

  // Delay machinery (live when faults_.delay > 0 or retransmit > 0).
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>> heap_;
  std::uint64_t delay_seq_ = 0;
  std::condition_variable cv_;
  std::thread dispatcher_;
};

}  // namespace wfd::runtime
