#include "reg/register_client.h"

#include "common/check.h"

namespace wfd::reg {

std::size_t History::invoke(ProcessId client, bool is_write,
                            std::int64_t value, Time at) {
  OpRecord r;
  r.client = client;
  r.is_write = is_write;
  r.value = value;
  r.invoked = at;
  ops_.push_back(r);
  return ops_.size() - 1;
}

void History::respond(std::size_t index, Time at, std::int64_t read_value) {
  WFD_CHECK(index < ops_.size());
  OpRecord& r = ops_[index];
  WFD_CHECK(r.responded == kNever);
  r.responded = at;
  if (!r.is_write) r.value = read_value;
}

std::size_t History::completed() const {
  std::size_t k = 0;
  for (const auto& op : ops_) {
    if (op.responded != kNever) ++k;
  }
  return k;
}

RegisterWorkloadModule::RegisterWorkloadModule(
    AbdRegisterModule<std::int64_t>* target, History* history, Options opt)
    : target_(target), history_(history), opt_(opt) {
  WFD_CHECK(target_ != nullptr && history_ != nullptr);
}

void RegisterWorkloadModule::on_tick() {
  if (in_flight_ || ops_issued_ >= opt_.num_ops) return;
  if (idle_ticks_ < opt_.think_time) {
    ++idle_ticks_;
    return;
  }
  issue_next();
}

void RegisterWorkloadModule::issue_next() {
  idle_ticks_ = 0;
  ++ops_issued_;
  in_flight_ = true;
  if (first_op_time_ == kNever) first_op_time_ = now();
  const bool is_write =
      static_cast<int>(rng().below(100)) < opt_.write_percent;
  if (is_write) {
    // Globally unique value: (client, per-client counter).
    const std::int64_t v = static_cast<std::int64_t>(
        (next_value_++ << 8) | static_cast<std::uint64_t>(self()));
    const std::size_t idx = history_->invoke(self(), true, v, now());
    target_->write(v, [this, idx] {
      history_->respond(idx, now(), 0);
      last_response_time_ = now();
      in_flight_ = false;
    });
  } else {
    const std::size_t idx = history_->invoke(self(), false, 0, now());
    target_->read([this, idx](const std::int64_t& v) {
      history_->respond(idx, now(), v);
      last_response_time_ = now();
      in_flight_ = false;
    });
  }
}

}  // namespace wfd::reg
