// Fault-tolerant atomic (linearizable) register in message passing,
// following Attiya-Bar-Noy-Dolev [1] with the generalisation at the heart
// of Theorem 1: wherever ABD waits for a majority of replies, this module
// waits until the set of repliers contains a quorum output by Sigma.
// Because any two Sigma outputs intersect (at any processes and times),
// every read quorum intersects every write quorum, which yields
// atomicity; because Sigma outputs at correct processes eventually
// contain only correct processes, every operation by a correct process
// terminates — in ANY environment. With QuorumRule::kMajority the module
// degrades to classical ABD, which is live only when a majority is
// correct (the negative-control tests and bench E1 exhibit the blocked
// minority-correct executions).
//
// The register is multi-writer multi-reader: timestamps are
// (counter, writer-id) pairs ordered lexicographically, and reads
// write back the value they return before returning it (the classical
// [16, 23] transformations folded into one module).
//
// Every process hosting this module is simultaneously a server (stores a
// replica) and a client (may invoke read/write). One operation may be in
// flight per module instance at a time.
#pragma once

#include <concepts>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/check.h"
#include "common/process_set.h"
#include "sim/module.h"
#include "sim/payload.h"

namespace wfd::reg {

/// Logical timestamp: (counter, writer id), ordered lexicographically.
struct Stamp {
  std::uint64_t counter = 0;
  ProcessId writer = kNoProcess;

  friend bool operator==(const Stamp&, const Stamp&) = default;
  friend auto operator<=>(const Stamp& a, const Stamp& b) {
    if (auto c = a.counter <=> b.counter; c != 0) return c;
    return a.writer <=> b.writer;
  }

  void encode_state(sim::StateEncoder& enc) const {
    enc.field("counter", counter);
    enc.pid_field("writer", writer);
  }
};

enum class QuorumRule {
  kSigma,     ///< Replier set must contain a quorum output by Sigma.
  kMajority,  ///< Replier set must be a strict majority (classical ABD).
};

template <typename V>
class AbdRegisterModule : public sim::Module {
 public:
  struct Options {
    QuorumRule rule = QuorumRule::kSigma;
    V initial = V{};
    /// When false, reads skip the write-back phase: the register is then
    /// only *regular* (a read concurrent with a write may return either
    /// value, and two sequential reads may observe a new-old inversion).
    /// Ablation knob for the "reads must write" design point.
    bool atomic_reads = true;
  };

  using WriteCb = std::function<void()>;
  using ReadCb = std::function<void(const V&)>;

  AbdRegisterModule() : AbdRegisterModule(Options{}) {}
  explicit AbdRegisterModule(Options opt)
      : opt_(opt), value_(opt.initial) {}

  /// Invoke a write; cb runs (within a later step) when it completes.
  /// May be called outside a step (e.g. before the run); the protocol
  /// starts at the host's next step.
  void write(const V& v, WriteCb cb) {
    WFD_CHECK_MSG(!busy_, "one register operation at a time per module");
    busy_ = true;
    ++op_;
    pending_is_write_ = true;
    pending_value_ = v;
    write_cb_ = std::move(cb);
    phase_ = 0;  // Phase 1 broadcast happens on the next tick.
  }

  /// Invoke a read; cb receives the value when it completes. May be
  /// called outside a step, like write().
  void read(ReadCb cb) {
    WFD_CHECK_MSG(!busy_, "one register operation at a time per module");
    busy_ = true;
    ++op_;
    pending_is_write_ = false;
    read_cb_ = std::move(cb);
    phase_ = 0;
  }

  [[nodiscard]] bool busy() const { return busy_; }

  /// Operations completed by this module as a client.
  [[nodiscard]] std::uint64_t completed_ops() const { return completed_; }

  /// Local replica state (server side); exposed for tests.
  [[nodiscard]] const V& replica_value() const { return value_; }
  [[nodiscard]] Stamp replica_stamp() const { return stamp_; }

  void on_message(ProcessId from, const sim::Payload& msg) override {
    if (const auto* m = sim::payload_cast<Phase1Req>(msg)) {
      send(from, sim::make_payload<Phase1Rep>(m->op, stamp_, value_));
      return;
    }
    if (const auto* m = sim::payload_cast<Phase2Req>(msg)) {
      if (stamp_ < m->stamp) {
        stamp_ = m->stamp;
        value_ = m->value;
      }
      send(from, sim::make_payload<Phase2Ack>(m->op));
      return;
    }
    if (const auto* m = sim::payload_cast<Phase1Rep>(msg)) {
      if (!busy_ || m->op != op_ || phase_ != 1) return;
      repliers_.insert(from);
      if (best_stamp_ < m->stamp) {
        best_stamp_ = m->stamp;
        best_value_ = m->value;
      }
      maybe_finish_phase();
      return;
    }
    if (const auto* m = sim::payload_cast<Phase2Ack>(msg)) {
      if (!busy_ || m->op != op_ || phase_ != 2) return;
      repliers_.insert(from);
      maybe_finish_phase();
      return;
    }
  }

  void on_tick() override {
    if (!busy_) return;
    if (phase_ == 0) {
      begin_phase1();
      return;
    }
    // Quorum membership can be satisfied by a *fresh* Sigma output even
    // without new replies, so re-check every step.
    maybe_finish_phase();
  }

  /// Idle as a client => the tick is a no-op, and the server-side
  /// request handlers (the tick-insensitive payloads below) never touch
  /// busy_, so the verdict holds on either side of such a delivery.
  [[nodiscard]] bool tick_noop() const override { return !busy_; }

  void encode_state(sim::StateEncoder& enc) const override {
    sim::encode_field(enc, "value", value_);
    sim::encode_field(enc, "stamp", stamp_);
    enc.field("busy", busy_);
    enc.field("op", op_);
    enc.field("phase", phase_);
    enc.field("is-write", pending_is_write_);
    sim::encode_field(enc, "pending-value", pending_value_);
    sim::encode_field(enc, "phase2-value", phase2_value_);
    sim::encode_field(enc, "best-stamp", best_stamp_);
    sim::encode_field(enc, "best-value", best_value_);
    enc.field("repliers", repliers_);
    enc.field("completed", completed_);
  }

 private:
  // Phase-1 probes from concurrent operations commute regardless of
  // their op tags: the server handler is a stateless snapshot reply
  // (op, stamp_, value_) whose content the probe pair cannot change.
  struct Phase1Req final : sim::Payload {
    explicit Phase1Req(std::uint64_t o) : op(o) {}
    std::uint64_t op;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "p1req");
      enc.field("op", op);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "reg.p1req";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      return sim::payload_cast<Phase1Req>(other) != nullptr;
    }
    /// The snapshot reply reads neither the clock nor the detector and
    /// emits no trace events.
    [[nodiscard]] bool tick_insensitive() const override { return true; }
  };
  // Audited non-commuting: the client's quorum check runs inside the
  // handler, so whichever reply completes it fixes the replier snapshot,
  // the best-stamp fold and the step at which phase 2 starts.
  struct Phase1Rep final : sim::Payload {
    Phase1Rep(std::uint64_t o, Stamp s, V v)
        : op(o), stamp(s), value(std::move(v)) {}
    std::uint64_t op;
    Stamp stamp;
    V value;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "p1rep");
      enc.field("op", op);
      sim::encode_field(enc, "stamp", stamp);
      sim::encode_field(enc, "value", value);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "reg.p1rep";
    }
  };
  // Phase-2 write-throughs commute when their stamps differ (the replica
  // keeps the lexicographic max, a commutative fold, and each ack's
  // content is fixed by its own request). Equal stamps carry equal
  // values in every reachable run — stamps embed the writer id — but the
  // contract only claims what it can check.
  struct Phase2Req final : sim::Payload {
    Phase2Req(std::uint64_t o, Stamp s, V v)
        : op(o), stamp(s), value(std::move(v)) {}
    std::uint64_t op;
    Stamp stamp;
    V value;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "p2req");
      enc.field("op", op);
      sim::encode_field(enc, "stamp", stamp);
      sim::encode_field(enc, "value", value);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "reg.p2req";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      const auto* o = sim::payload_cast<Phase2Req>(other);
      if (o == nullptr) return false;
      if (stamp != o->stamp) return true;
      if constexpr (std::equality_comparable<V>) {
        return value == o->value;
      } else {
        return false;
      }
    }
    /// The max-fold + ack reads neither the clock nor the detector and
    /// emits no trace events.
    [[nodiscard]] bool tick_insensitive() const override { return true; }
  };
  // Audited non-commuting: in-handler quorum check, like Phase1Rep.
  struct Phase2Ack final : sim::Payload {
    explicit Phase2Ack(std::uint64_t o) : op(o) {}
    std::uint64_t op;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "p2ack");
      enc.field("op", op);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "reg.p2ack";
    }
  };

  void begin_phase1() {
    phase_ = 1;
    repliers_ = ProcessSet{};
    // Replica stamps start at Stamp{} and only grow, and a server never
    // changes its value without raising its stamp; so seeding the fold
    // with (Stamp{}, initial) is correct even before any write.
    best_stamp_ = Stamp{};
    best_value_ = opt_.initial;
    broadcast(sim::make_payload<Phase1Req>(op_));
  }

  void begin_phase2(Stamp s, V v) {
    phase_ = 2;
    repliers_ = ProcessSet{};
    phase2_value_ = v;
    broadcast(sim::make_payload<Phase2Req>(op_, s, std::move(v)));
  }

  [[nodiscard]] bool have_quorum() const {
    switch (opt_.rule) {
      case QuorumRule::kMajority:
        return 2 * repliers_.size() > n();
      case QuorumRule::kSigma: {
        const auto v = detector();
        return v.sigma.has_value() && v.sigma->is_subset_of(repliers_);
      }
    }
    return false;
  }

  void maybe_finish_phase() {
    if (!have_quorum()) return;
    if (phase_ == 1) {
      if (pending_is_write_) {
        begin_phase2(Stamp{best_stamp_.counter + 1, self()}, pending_value_);
      } else if (opt_.atomic_reads) {
        // Read: write back the freshest (stamp, value) before returning.
        begin_phase2(best_stamp_, best_value_);
      } else {
        // Regular-register ablation: return without writing back.
        busy_ = false;
        ++completed_;
        auto cb = std::move(read_cb_);
        read_cb_ = nullptr;
        if (cb) cb(best_value_);
      }
      return;
    }
    // Phase 2 complete: the operation is done.
    busy_ = false;
    ++completed_;
    if (pending_is_write_) {
      auto cb = std::move(write_cb_);
      write_cb_ = nullptr;
      if (cb) cb();
    } else {
      auto cb = std::move(read_cb_);
      read_cb_ = nullptr;
      if (cb) cb(phase2_value_);
    }
  }

  Options opt_;

  // Server-side replica.
  V value_;
  Stamp stamp_;

  // Client-side operation state.
  bool busy_ = false;
  std::uint64_t op_ = 0;
  int phase_ = 0;
  bool pending_is_write_ = false;
  V pending_value_{};
  V phase2_value_{};
  Stamp best_stamp_;
  V best_value_{};
  ProcessSet repliers_;
  WriteCb write_cb_;
  ReadCb read_cb_;
  std::uint64_t completed_ = 0;
};

}  // namespace wfd::reg
