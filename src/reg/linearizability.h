// Linearizability checking for register histories (Herlihy & Wing [15]).
//
// The checker answers: does there exist a total order of the operations,
// consistent with the real-time partial order (op A precedes op B when A
// responded before B was invoked), in which every read returns the value
// of the latest preceding write (or the initial value)? Incomplete
// operations — clients that crashed mid-flight — may be assigned a
// linearization point after their invocation or omitted entirely.
//
// The search is Wing-Gong DFS with memoization on (set of linearized
// ops, index of the last linearized write); histories are capped at 64
// operations, which property tests stay under per run.
#pragma once

#include <string>

#include "reg/register_client.h"

namespace wfd::reg {

struct LinearizabilityResult {
  bool ok = true;
  std::string violation;  ///< Empty when ok.
};

/// Check a register history against initial value `initial`.
LinearizabilityResult check_linearizable(const History& history,
                                         std::int64_t initial = 0);

/// Convenience: WFD_CHECK-style assertion used by benches.
bool is_linearizable(const History& history, std::int64_t initial = 0);

}  // namespace wfd::reg
