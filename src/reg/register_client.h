// Workload drivers for register tests and benches: each client module
// issues a scripted or randomized sequence of reads/writes against a
// register module hosted in the same process, and records every
// operation (with virtual invocation/response times) into a shared
// History that the linearizability checker consumes afterwards.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "reg/abd_register.h"
#include "sim/module.h"

namespace wfd::reg {

/// One completed (or pending, if the client crashed mid-flight)
/// register operation, as observed at the client.
struct OpRecord {
  ProcessId client = kNoProcess;
  bool is_write = false;
  std::int64_t value = 0;  ///< Written value, or value returned by a read.
  Time invoked = 0;
  Time responded = kNever;  ///< kNever while pending.
};

/// Shared log of operations across all clients of one register.
class History {
 public:
  /// Returns the record index for later completion.
  std::size_t invoke(ProcessId client, bool is_write, std::int64_t value,
                     Time at);
  void respond(std::size_t index, Time at, std::int64_t read_value);

  [[nodiscard]] const std::vector<OpRecord>& ops() const { return ops_; }
  [[nodiscard]] std::size_t completed() const;

 private:
  std::vector<OpRecord> ops_;
};

/// A client issuing `num_ops` operations, alternating write/read or
/// randomized, then reporting done. Values written are unique per client
/// (client id in the low bits) so the checker can distinguish writes.
class RegisterWorkloadModule : public sim::Module {
 public:
  struct Options {
    int num_ops = 8;
    /// Probability (percent) that an op is a write; 50 by default.
    int write_percent = 50;
    /// Delay (own steps) between consecutive operations.
    Time think_time = 0;
  };

  RegisterWorkloadModule(AbdRegisterModule<std::int64_t>* target,
                         History* history, Options opt);

  void on_message(ProcessId, const sim::Payload&) override {}
  void on_tick() override;
  [[nodiscard]] bool done() const override { return ops_issued_ >= opt_.num_ops && !in_flight_; }

  /// The tick early-outs while an op is in flight or the script is
  /// spent. in_flight_ only changes in completion callbacks driven by
  /// reply deliveries — which are not tick-insensitive — so the verdict
  /// is stable across every delivery the explorer may commute with.
  [[nodiscard]] bool tick_noop() const override {
    return in_flight_ || ops_issued_ >= opt_.num_ops;
  }

  void encode_state(sim::StateEncoder& enc) const override {
    if (opt_.write_percent > 0 && opt_.write_percent < 100) {
      // The read/write mix draws from the per-process RNG, whose state
      // is not encoded; only the deterministic 0/100 settings are
      // fingerprintable.
      enc.opaque("randomized-workload");
      return;
    }
    enc.field("ops-issued", ops_issued_);
    enc.field("in-flight", in_flight_);
    enc.field("idle", idle_ticks_);
    enc.field("next-value", next_value_);
  }

  [[nodiscard]] Time first_op_time() const { return first_op_time_; }
  [[nodiscard]] Time last_response_time() const { return last_response_time_; }

 private:
  void issue_next();

  AbdRegisterModule<std::int64_t>* target_;
  History* history_;
  Options opt_;
  int ops_issued_ = 0;
  bool in_flight_ = false;
  Time idle_ticks_ = 0;
  std::uint64_t next_value_ = 1;
  Time first_op_time_ = kNever;
  Time last_response_time_ = 0;
};

}  // namespace wfd::reg
