#include "reg/linearizability.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace wfd::reg {
namespace {

struct Op {
  bool is_write;
  std::int64_t value;
  Time invoked;
  Time responded;  ///< kNever when incomplete.
  [[nodiscard]] bool complete() const { return responded != kNever; }
};

class Search {
 public:
  Search(std::vector<Op> ops, std::int64_t initial)
      : ops_(std::move(ops)), initial_(initial) {}

  bool run() { return dfs(0, -1); }

 private:
  using Mask = std::uint64_t;

  /// `last_write` is the index of the last linearized write (-1: none).
  bool dfs(Mask done, int last_write) {
    if (all_complete_done(done)) return true;
    // Exact memo key: the visited table is indexed by last_write so the
    // 64-bit mask needs no lossy mixing.
    if (!visited_[static_cast<std::size_t>(last_write + 1)]
             .insert(done)
             .second) {
      return false;
    }

    const std::int64_t current =
        last_write < 0 ? initial_
                       : ops_[static_cast<std::size_t>(last_write)].value;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (done & (Mask{1} << i)) continue;
      const Op& op = ops_[i];
      if (!minimal(done, i)) continue;
      if (op.is_write) {
        if (dfs(done | (Mask{1} << i), static_cast<int>(i))) return true;
      } else {
        // A read (complete ones must return the current value; an
        // incomplete read can also simply be skipped — handled below by
        // never requiring it in all_complete_done).
        if (op.complete() && op.value != current) continue;
        if (dfs(done | (Mask{1} << i), last_write)) return true;
      }
    }
    return false;
  }

  /// Op i may be linearized next iff no other unlinearized op finished
  /// before op i was invoked.
  [[nodiscard]] bool minimal(Mask done, std::size_t i) const {
    const Time inv = ops_[i].invoked;
    for (std::size_t j = 0; j < ops_.size(); ++j) {
      if (j == i || (done & (Mask{1} << j))) continue;
      if (ops_[j].complete() && ops_[j].responded < inv) return false;
    }
    return true;
  }

  [[nodiscard]] bool all_complete_done(Mask done) const {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].complete() && !(done & (Mask{1} << i))) return false;
    }
    return true;
  }

  std::vector<Op> ops_;
  std::int64_t initial_;
  std::array<std::unordered_set<std::uint64_t>, 65> visited_;
};

}  // namespace

LinearizabilityResult check_linearizable(const History& history,
                                         std::int64_t initial) {
  std::vector<Op> ops;
  ops.reserve(history.ops().size());
  for (const OpRecord& r : history.ops()) {
    Op op;
    op.is_write = r.is_write;
    op.value = r.value;
    op.invoked = r.invoked;
    op.responded = r.responded;
    // Incomplete reads constrain nothing; drop them to shrink the search.
    if (!op.is_write && op.responded == kNever) continue;
    ops.push_back(op);
  }
  LinearizabilityResult res;
  if (ops.size() > 64) {
    res.ok = false;
    res.violation = "history too large for the checker (max 64 ops)";
    return res;
  }
  Search search(std::move(ops), initial);
  if (!search.run()) {
    res.ok = false;
    std::ostringstream os;
    os << "no linearization exists (" << history.ops().size()
       << " ops, initial=" << initial << ")";
    res.violation = os.str();
  }
  return res;
}

bool is_linearizable(const History& history, std::int64_t initial) {
  return check_linearizable(history, initial).ok;
}

}  // namespace wfd::reg
