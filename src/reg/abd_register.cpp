#include "reg/abd_register.h"

#include <cstdint>
#include <vector>

namespace wfd::reg {

// Explicit instantiations for the value types used across the library,
// so template errors surface when the library itself is built.
template class AbdRegisterModule<std::int64_t>;
template class AbdRegisterModule<std::vector<ProcessSet>>;

}  // namespace wfd::reg
