// Scenario factory: builds fresh, fully choice-driven instances of the
// library's canonical problems so the explorer, the campaign driver and
// the replay machinery all run the SAME construction — a run is a pure
// function of its decision sequence.
//
// Every source of nondeterminism is routed through the ChoiceSource
// handed to build(): the schedule (ReplayScheduler), the detector
// history (ChoiceOracle) and, when crash times are not pinned, the
// failure pattern itself (kEnvironment choices over a small menu of
// crash times).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "explore/property.h"
#include "sim/choice.h"
#include "sim/simulator.h"

namespace wfd::explore {

struct ScenarioOptions {
  /// consensus | consensus-bug | consensus-crash-bug | qc | nbac | sigma |
  /// register | register-regular | abcast | rb.
  std::string problem = "consensus";
  int n = 3;
  int crashes = 0;
  /// "script": crashes happen at pre-scripted times (crash_time below, or
  /// a kEnvironment menu). "explore": crash timing is a per-step schedule
  /// choice — `crashes` becomes the injection budget, the scripted
  /// pattern stays empty, and the pattern is reconstructed on the fly as
  /// the explorer injects (see src/inject/fault_plan.h).
  std::string crash_mode = "script";
  /// Per-directed-link injected-loss budgets (0 = reliable links). The
  /// register problems route their traffic through the quasi-reliable
  /// retransmission wrapper when either is nonzero.
  int loss_drops = 0;
  int loss_dups = 0;
  /// Adversarial detector: every query is a fresh choice over the menus
  /// legal for the *evolving* pattern (inject/fd_adversary.h). Forces
  /// per-query choice; requires stabilization == kNever.
  bool fd_adversarial = false;
  /// kNever: crash times are exploration choice points (a small menu of
  /// times within the horizon). Otherwise faulty process i crashes at
  /// crash_time * (i + 1).
  Time crash_time = kNever;
  /// Horizon; doubles as the exploration depth bound.
  Time max_steps = 40;
  std::uint64_t seed = 1;
  /// ChoiceOracle stabilization time (kNever = adversarial throughout;
  /// finite values make liveness meaningful for campaign runs).
  Time stabilization = kNever;
  /// false: one static detector history per run instead of per-query
  /// choices — a much smaller tree.
  bool fd_per_query = true;
  /// Retain FD samples so SigmaIntersectionInvariant can see quorums.
  bool record_fd_samples = true;
  /// For nbac: the process voting No, or kNoProcess for unanimous Yes.
  ProcessId nbac_no_voter = kNoProcess;
  /// For register problems: operations per client (process 0 writes,
  /// everyone else reads; deterministic workloads so the state stays
  /// fingerprintable).
  int reg_ops = 2;
  /// How many reading clients (processes 1..reg_readers); the remaining
  /// processes are pure replicas. 0 = every non-writer reads. One writer
  /// plus one reader is the classic atomicity scenario and keeps the
  /// n=3 tree small enough to exhaust.
  int reg_readers = 0;
  /// For abcast: how many processes broadcast one message each.
  int abcast_senders = 2;
  // ReplayScheduler reductions (see its Options).
  bool oldest_per_channel = true;
  bool lambda_always = true;
  /// Liveness clause to check by fair-cycle search over the explored
  /// state graph (empty = bounded safety checking only). Clause names
  /// and per-problem availability: ScenarioFactory::liveness_clauses.
  /// Liveness mode constrains the rest of the scenario (static converged
  /// detector histories, no scripted crashes, lambda_always) — see
  /// validate() — so that every infinite unrolling of a graph cycle is a
  /// run of the modelled system under a *legal* detector-history limit.
  std::string liveness;
};

/// One built instance: a simulator plus the properties to check on it.
struct Scenario {
  std::unique_ptr<sim::Simulator> sim;
  std::vector<std::unique_ptr<Invariant>> invariants;
  std::vector<std::unique_ptr<EventualProperty>> eventuals;
  /// Non-empty iff ScenarioOptions::liveness named a clause; holds
  /// exactly that clause, wired to this instance's modules.
  std::vector<std::unique_ptr<LivenessClause>> liveness;
};

/// The state digest liveness checking keys graph nodes on: the
/// simulator's complete encoded state plus every invariant's carried
/// history, with no symmetry canonicalization (liveness forbids
/// --symmetry: per-process fairness bookkeeping does not survive
/// renaming). nullopt when any component is opaque.
[[nodiscard]] std::optional<std::uint64_t> scenario_fingerprint(
    const Scenario& sc);

/// Builds a fresh instance whose nondeterminism is drawn from the given
/// source. Copyable and cheap; the explorer re-invokes it per run.
using ScenarioBuilder = std::function<Scenario(sim::ChoiceSource&)>;

/// Registry entry: a problem name plus the driver modes it supports.
struct ProblemSpec {
  std::string name;
  bool exhaustive = true;
  bool campaign = true;
  bool replay = true;
};

class ScenarioFactory {
 public:
  explicit ScenarioFactory(ScenarioOptions opt);

  [[nodiscard]] const ScenarioOptions& options() const { return opt_; }

  /// Every problem build() understands, with its supported modes. All
  /// current scenarios support the full --exhaustive/--campaign/--replay
  /// triple; drivers must consult this and reject an unsupported
  /// combination explicitly (exit 2 in wfd_check) rather than silently
  /// falling back to another mode.
  [[nodiscard]] static const std::vector<ProblemSpec>& problems();
  /// mode is "exhaustive", "campaign" or "replay".
  [[nodiscard]] static bool supports_mode(const std::string& problem,
                                          const std::string& mode);

  /// Empty string when the options are valid, else a diagnosis.
  [[nodiscard]] static std::string validate(const ScenarioOptions& opt);

  /// True when the enabled detector components read the *evolving*
  /// failure pattern mid-run (an FS or Psi component consults
  /// failure_by(t)): an injected crash is then observable by every
  /// process through its next query, and the explorer must keep crash
  /// labels dependent with everything. Omega/Sigma menus — static or
  /// per-query, adversarial included — never re-read the pattern before
  /// stabilization, and exploration requires stabilization == kNever.
  [[nodiscard]] static bool pattern_sensitive(const ScenarioOptions& opt);

  /// The liveness clause names available for `problem` (possibly empty).
  /// "termination" covers consensus/QC/NBAC decisions and rb delivery
  /// completion uniformly; "leadership" is the Omega eventual-leadership
  /// goal on the (Omega, Sigma) consensus protocols; "fd-completeness"
  /// checks the implemented heartbeat Omega's strong completeness.
  [[nodiscard]] static std::vector<std::string> liveness_clauses(
      const std::string& problem);

  /// Interchangeable-process classes for symmetry reduction: renaming
  /// processes within a class maps runs to runs (identical modules,
  /// identical initial values, symmetric detector menus and fault
  /// budgets). Empty when the scenario is not verified symmetric —
  /// scripted crashes pin concrete processes, a finite stabilization
  /// time makes the oracle's limit values renaming-sensitive, and some
  /// problems (distinct broadcast values, pid-ordered leader election)
  /// have no interchangeable processes at all. Singleton classes are
  /// omitted; a non-empty result always licenses a nontrivial renaming.
  [[nodiscard]] static std::vector<std::vector<ProcessId>> symmetry_classes(
      const ScenarioOptions& opt);

  [[nodiscard]] Scenario build(sim::ChoiceSource& choices) const;

  /// The build() entry point as a value (captures the options by copy).
  [[nodiscard]] ScenarioBuilder builder() const;

 private:
  [[nodiscard]] sim::FailurePattern make_pattern(
      sim::ChoiceSource& choices) const;

  ScenarioOptions opt_;
};

}  // namespace wfd::explore
