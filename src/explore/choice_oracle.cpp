#include "explore/choice_oracle.h"

#include "common/check.h"

namespace wfd::explore {

namespace {

/// Labels for the binary green/red FS choice.
const std::vector<std::uint64_t> kFsLabels = {0, 1};

}  // namespace

ChoiceOracle::ChoiceOracle(sim::ChoiceSource* choices, Options opt)
    : choices_(choices), opt_(opt) {
  WFD_CHECK(choices_ != nullptr);
}

std::size_t ChoiceOracle::pick(const std::vector<std::uint64_t>& labels) {
  WFD_CHECK(!labels.empty());
  if (labels.size() == 1) return 0;  // Forced moves stay out of the log.
  return choices_->choose(sim::ChoiceKind::kFd, labels);
}

void ChoiceOracle::begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                             Time horizon) {
  (void)seed;
  (void)horizon;
  f_ = f;
  n_ = f.n();
  WFD_CHECK(n_ >= 1 && n_ <= kMaxProcesses);
  const ProcessSet correct = f.correct();
  WFD_CHECK_MSG(!correct.empty(), "no correct process in pattern");

  majorities_.clear();
  majority_labels_.clear();
  const int m = n_ / 2 + 1;
  if (opt_.sigma || opt_.psi) {
    WFD_CHECK_MSG(correct.size() >= m,
                  "Sigma exploration requires a majority-correct pattern");
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n_); ++mask) {
      if (__builtin_popcountll(mask) != m) continue;
      majorities_.push_back(ProcessSet::from_raw(mask));
      majority_labels_.push_back(mask);
    }
    ProcessSet star;
    for (ProcessId p : correct.members()) {
      if (star.size() == m) break;
      star.insert(p);
    }
    sigma_star_ = star;
  }
  omega_star_ = correct.min();

  if (!opt_.per_query) {
    // Static histories must be converged from the start: the leader must
    // be correct and the quorum a majority of correct processes.
    if (opt_.omega || opt_.psi) {
      std::vector<std::uint64_t> labels;
      for (ProcessId p : correct.members()) {
        labels.push_back(static_cast<std::uint64_t>(p));
      }
      static_omega_ = static_cast<ProcessId>(labels[pick(labels)]);
    }
    if (opt_.sigma || opt_.psi) {
      std::vector<std::uint64_t> labels;
      for (const ProcessSet& q : majorities_) {
        if (q.is_subset_of(correct)) labels.push_back(q.raw());
      }
      WFD_CHECK(!labels.empty());
      static_sigma_ = ProcessSet::from_raw(labels[pick(labels)]);
    }
  }

  fs_red_.assign(static_cast<std::size_t>(n_), false);
  psi_fs_red_.assign(static_cast<std::size_t>(n_), false);
  psi_switched_.assign(static_cast<std::size_t>(n_), false);
  psi_branch_ = PsiBranch::kUndecided;
  if (opt_.psi && opt_.psi_converged) {
    // Converged-from-the-start Psi: adopt the always-legal
    // (Omega, Sigma) branch immediately (the FS branch presumes a
    // failure, which a converged limit cannot).
    psi_branch_ = PsiBranch::kOmegaSigma;
    psi_switched_.assign(static_cast<std::size_t>(n_), true);
  }
}

void ChoiceOracle::on_crash(ProcessId p, Time t) {
  if (!opt_.live_pattern) return;
  f_.crash_at(p, t);
  // Recompute the converged values from the surviving correct set; the
  // per-query menus consult f_ directly (FS red / Ψ's FS branch become
  // offerable from this step on).
  const ProcessSet correct = f_.correct();
  WFD_CHECK_MSG(!correct.empty(), "injected crash left no correct process");
  omega_star_ = correct.min();
  if (opt_.sigma || opt_.psi) {
    const int m = n_ / 2 + 1;
    WFD_CHECK_MSG(correct.size() >= m,
                  "injected crash broke the Sigma majority environment");
    ProcessSet star;
    for (ProcessId q : correct.members()) {
      if (star.size() == m) break;
      star.insert(q);
    }
    sigma_star_ = star;
  }
  if (!opt_.per_query) {
    // Static histories anticipate explored crash points: the values
    // picked at begin_run were converged for the pre-crash correct set;
    // when the crash invalidates one, re-pick from the survivors (a
    // recorded kFd choice, so every alternative is explored and the
    // decision is part of the crash step's edge). Crash edges never lie
    // on a cycle (fault budgets decrease monotonically and are
    // fingerprinted), so along any infinite unrolling the statics are
    // the converged legal limit history of the final crash set — which
    // makes --liveness sound when composed with --crash=explore.
    if ((opt_.omega || opt_.psi) && !correct.contains(static_omega_)) {
      std::vector<std::uint64_t> labels;
      for (ProcessId q : correct.members()) {
        labels.push_back(static_cast<std::uint64_t>(q));
      }
      static_omega_ = static_cast<ProcessId>(labels[pick(labels)]);
    }
    if ((opt_.sigma || opt_.psi) && !static_sigma_.is_subset_of(correct)) {
      std::vector<std::uint64_t> labels;
      for (const ProcessSet& q : majorities_) {
        if (q.is_subset_of(correct)) labels.push_back(q.raw());
      }
      WFD_CHECK(!labels.empty());
      static_sigma_ = ProcessSet::from_raw(labels[pick(labels)]);
    }
  }
}

ProcessId ChoiceOracle::omega_value(Time t) {
  if (!opt_.per_query) return static_omega_;
  if (t >= opt_.stabilization) return omega_star_;
  // Before stabilization Omega may point at any process, crashed ones
  // included.
  std::vector<std::uint64_t> labels;
  labels.reserve(static_cast<std::size_t>(n_));
  for (ProcessId p = 0; p < n_; ++p) {
    labels.push_back(static_cast<std::uint64_t>(p));
  }
  return static_cast<ProcessId>(labels[pick(labels)]);
}

ProcessSet ChoiceOracle::sigma_value(Time t) {
  if (!opt_.per_query) return static_sigma_;
  if (t >= opt_.stabilization) return sigma_star_;
  return ProcessSet::from_raw(majority_labels_[pick(majority_labels_)]);
}

fd::FsColor ChoiceOracle::fs_value(std::vector<bool>& red_latch, ProcessId p,
                                   Time t) {
  if (!f_.failure_by(t)) return fd::FsColor::kGreen;
  auto latched = red_latch[static_cast<std::size_t>(p)];
  if (latched) return fd::FsColor::kRed;
  if (t < opt_.stabilization && pick(kFsLabels) == 0) {
    return fd::FsColor::kGreen;
  }
  red_latch[static_cast<std::size_t>(p)] = true;
  return fd::FsColor::kRed;
}

fd::PsiValue ChoiceOracle::psi_value(ProcessId p, Time t) {
  if (!psi_switched_[static_cast<std::size_t>(p)]) {
    if (t >= opt_.stabilization) {
      // Forced convergence: adopt the global branch, defaulting to the
      // always-legal (Omega, Sigma) behaviour.
      if (psi_branch_ == PsiBranch::kUndecided) {
        psi_branch_ = PsiBranch::kOmegaSigma;
      }
      psi_switched_[static_cast<std::size_t>(p)] = true;
    } else {
      // 0 = stay bottom, 1 = (Omega, Sigma), 2 = FS. The first switcher
      // fixes the branch for everyone (the paper's Psi switches modes
      // system-wide); FS is offered only if a failure has occurred.
      std::vector<std::uint64_t> labels = {0};
      if (psi_branch_ != PsiBranch::kFs) labels.push_back(1);
      if (psi_branch_ == PsiBranch::kFs ||
          (psi_branch_ == PsiBranch::kUndecided && f_.failure_by(t))) {
        labels.push_back(2);
      }
      const std::uint64_t sel = labels[pick(labels)];
      if (sel == 0) return fd::PsiValue::bottom();
      psi_branch_ = (sel == 1) ? PsiBranch::kOmegaSigma : PsiBranch::kFs;
      psi_switched_[static_cast<std::size_t>(p)] = true;
    }
  }
  if (psi_branch_ == PsiBranch::kOmegaSigma) {
    return fd::PsiValue::omega_sigma(omega_value(t), sigma_value(t));
  }
  return fd::PsiValue::failure_signal(fs_value(psi_fs_red_, p, t));
}

void ChoiceOracle::encode_state(sim::StateEncoder& enc, Time now) const {
  // All latches that steer future query answers; the stabilization
  // boundary is folded as a remaining delta so runs that reach the same
  // latch state at different absolute times hash equally only when the
  // same amount of pre-stabilization freedom remains.
  if (opt_.stabilization != kNever && opt_.stabilization > now) {
    enc.field("stabilize-in", opt_.stabilization - now);
  } else {
    enc.field("stabilized", opt_.stabilization != kNever);
  }
  enc.pid_field("static-omega", static_omega_);
  enc.field("static-sigma", static_sigma_);
  for (std::size_t p = 0; p < fs_red_.size(); ++p) {
    enc.push_proc("proc", static_cast<ProcessId>(p));
    enc.field("fs-red", static_cast<bool>(fs_red_[p]));
    enc.field("psi-fs-red", static_cast<bool>(psi_fs_red_[p]));
    enc.field("psi-switched", static_cast<bool>(psi_switched_[p]));
    enc.pop();
  }
  enc.field("psi-branch", psi_branch_);
}

fd::FdValue ChoiceOracle::query(ProcessId p, Time t) {
  fd::FdValue v;
  if (opt_.omega) v.omega = omega_value(t);
  if (opt_.sigma) v.sigma = sigma_value(t);
  if (opt_.fs) v.fs = fs_value(fs_red_, p, t);
  if (opt_.psi) v.psi = psi_value(p, t);
  return v;
}

}  // namespace wfd::explore
