#include "explore/liveness.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <string>
#include <utility>

#include "common/check.h"
#include "explore/option_text.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace wfd::explore {

void add_live_edge(LiveGraphNode& n, LiveGraphEdge e) {
  for (const LiveGraphEdge& have : n.edges) {
    if (have.choices == e.choices) return;
  }
  n.edges.push_back(std::move(e));
}

void merge_live_graph(LiveGraph& into, const LiveGraph& from) {
  if (from.have_root) {
    if (into.have_root) {
      WFD_CHECK_MSG(into.root == from.root,
                    "initial-state fingerprint varies across runs");
    } else {
      into.root = from.root;
      into.have_root = true;
    }
  }
  for (const std::uint64_t fp : from.order) {
    const LiveGraphNode& src = from.nodes.at(fp);
    LiveGraphNode& dst = into.at(fp);
    // goal is fingerprint-pure: equal wherever computed. enabled and
    // deliverable are fingerprint-pure too, but only *computed* where a
    // unit expanded the node; a destination-only overlay entry carries
    // zeros, so they fold by OR to keep the expanded writer's value.
    dst.goal = src.goal;
    dst.deliverable |= src.deliverable;
    dst.enabled |= src.enabled;
    dst.expanded = dst.expanded || src.expanded;
    dst.truncated = dst.truncated || src.truncated;
    for (const LiveGraphEdge& e : src.edges) add_live_edge(dst, e);
  }
}

namespace {

/// The graph re-keyed by insertion index, which is what every
/// deterministic order below derives from.
struct Indexed {
  std::vector<std::uint64_t> fps;                      ///< index -> fp
  std::vector<const LiveGraphNode*> node;              ///< index -> node
  std::unordered_map<std::uint64_t, std::size_t> idx;  ///< fp -> index
  /// Successor indices, in edge-recording order.
  std::vector<std::vector<std::size_t>> adj;

  explicit Indexed(const LiveGraph& g) : fps(g.order) {
    node.reserve(fps.size());
    idx.reserve(fps.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
      node.push_back(&g.nodes.at(fps[i]));
      idx.emplace(fps[i], i);
    }
    adj.resize(fps.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
      adj[i].reserve(node[i]->edges.size());
      for (const LiveGraphEdge& e : node[i]->edges) {
        const auto it = idx.find(e.dst);
        WFD_CHECK_MSG(it != idx.end(), "edge into an unrecorded state");
        adj[i].push_back(it->second);
      }
    }
  }
};

/// Iterative Tarjan over the subgraph induced by `alive`. Roots are
/// tried in insertion order and successors in edge-recording order, so
/// the SCC list is deterministic; members come out sorted by index.
std::vector<std::vector<std::size_t>> sccs_of(const Indexed& g,
                                              const std::vector<char>& alive) {
  const std::size_t n = g.fps.size();
  std::vector<int> index(n, -1);
  std::vector<int> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> out;
  int counter = 0;

  struct Call {
    std::size_t v = 0;
    std::size_t next_child = 0;
  };
  std::vector<Call> call;
  for (std::size_t root = 0; root < n; ++root) {
    if (!alive[root] || index[root] != -1) continue;
    call.push_back(Call{root, 0});
    index[root] = low[root] = counter++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!call.empty()) {
      Call& f = call.back();
      const std::size_t v = f.v;
      if (f.next_child < g.adj[v].size()) {
        const std::size_t w = g.adj[v][f.next_child++];
        if (!alive[w]) continue;
        if (index[w] == -1) {
          index[w] = low[w] = counter++;
          stack.push_back(w);
          on_stack[w] = 1;
          call.push_back(Call{w, 0});
        } else if (on_stack[w] != 0) {
          low[v] = std::min(low[v], index[w]);
        }
        continue;
      }
      if (low[v] == index[v]) {
        std::vector<std::size_t> comp;
        while (true) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp.push_back(w);
          if (w == v) break;
        }
        std::sort(comp.begin(), comp.end());
        out.push_back(std::move(comp));
      }
      call.pop_back();
      if (!call.empty()) {
        low[call.back().v] = std::min(low[call.back().v], low[v]);
      }
    }
  }
  return out;
}

/// A fair SCC that refutes <>[]goal, plus what its lasso must cover.
struct FairWitness {
  std::vector<std::size_t> members;  ///< Sorted by insertion index.
  std::uint64_t sched_mask = 0;      ///< Fairness obligations to cover.
  /// Directed channels (bit live_channel_bit(s, r)) with a pending
  /// delivery at EVERY member node: the loop must deliver on each of
  /// them (communication fairness).
  std::uint64_t deliver_mask = 0;
  std::size_t entry = 0;             ///< First goal-false member.
};

/// SCC refinement: an SCC some of whose enabled processes are never
/// scheduled by an internal non-fault edge cannot be looped fairly as a
/// whole, but a subset avoiding the nodes where the starved processes
/// are enabled still might — delete those nodes and re-derive. The
/// first surviving fair SCC (deterministic work order) containing a
/// goal-false node is the witness. Fault edges never discharge an
/// obligation; they also cannot lie on a cycle at all (injection
/// budgets decrease monotonically and are fingerprinted), so they never
/// manufacture one.
std::optional<FairWitness> fair_goal_avoiding_scc(const Indexed& g) {
  std::deque<std::vector<std::size_t>> work;
  {
    const std::vector<char> all(g.fps.size(), 1);
    for (auto& comp : sccs_of(g, all)) work.push_back(std::move(comp));
  }
  std::vector<char> in_comp(g.fps.size(), 0);
  while (!work.empty()) {
    const std::vector<std::size_t> comp = std::move(work.front());
    work.pop_front();
    for (const std::size_t v : comp) in_comp[v] = 1;
    std::uint64_t enabled = 0;
    std::uint64_t sched = 0;
    std::uint64_t deliverable_all = ~std::uint64_t{0};
    std::uint64_t delivered = 0;
    bool internal = false;
    for (const std::size_t v : comp) {
      enabled |= g.node[v]->enabled;
      deliverable_all &= g.node[v]->deliverable;
      for (const LiveGraphEdge& e : g.node[v]->edges) {
        if (in_comp[g.idx.at(e.dst)] == 0) continue;
        internal = true;
        if (!e.fault && e.sched != kNoProcess) {
          sched |= std::uint64_t{1} << e.sched;
          if (e.deliver) delivered |= live_channel_bit(e.sender, e.sched);
        }
      }
    }
    const std::uint64_t starved = enabled & ~sched;
    if (internal && starved == 0) {
      // Communication fairness: a directed channel whose pending
      // delivery stays enabled at every member node must be served by
      // some internal edge delivering on exactly that channel. When it
      // is not, the whole SCC is hopeless — any sub-SCC inherits the
      // continuously-enabled obligation and has no delivering edge
      // either — so it is discarded without refinement.
      if ((deliverable_all & ~delivered) != 0) {
        for (const std::size_t v : comp) in_comp[v] = 0;
        continue;
      }
      for (const std::size_t v : comp) {
        if (!g.node[v]->goal) {
          for (const std::size_t w : comp) in_comp[w] = 0;
          return FairWitness{comp, sched, deliverable_all, v};
        }
      }
    } else if (internal) {
      std::vector<char> sub(g.fps.size(), 0);
      bool any = false;
      for (const std::size_t v : comp) {
        if ((g.node[v]->enabled & starved) == 0) {
          sub[v] = 1;
          any = true;
        }
      }
      if (any) {
        for (auto& c : sccs_of(g, sub)) work.push_back(std::move(c));
      }
    }
    for (const std::size_t v : comp) in_comp[v] = 0;
  }
  return std::nullopt;
}

/// One hop of a fingerprint route.
struct Hop {
  std::size_t src = 0;
  const LiveGraphEdge* edge = nullptr;
};

/// Shortest path (BFS; ties broken by insertion/edge order) from `from`
/// to `to` through nodes with mask[v] != 0. Empty when from == to.
std::vector<Hop> route(const Indexed& g, const std::vector<char>& mask,
                       std::size_t from, std::size_t to) {
  std::vector<Hop> out;
  if (from == to) return out;
  std::vector<int> parent(g.fps.size(), -1);
  std::vector<const LiveGraphEdge*> via(g.fps.size(), nullptr);
  std::deque<std::size_t> q;
  parent[from] = static_cast<int>(from);
  q.push_back(from);
  bool found = false;
  while (!q.empty() && !found) {
    const std::size_t v = q.front();
    q.pop_front();
    for (const LiveGraphEdge& e : g.node[v]->edges) {
      const std::size_t w = g.idx.at(e.dst);
      if (mask[w] == 0 || parent[w] != -1) continue;
      parent[w] = static_cast<int>(v);
      via[w] = &e;
      if (w == to) {
        found = true;
        break;
      }
      q.push_back(w);
    }
  }
  WFD_CHECK_MSG(found, "disconnected route request inside the state graph");
  for (std::size_t v = to; v != from;
       v = static_cast<std::size_t>(parent[v])) {
    out.push_back(Hop{static_cast<std::size_t>(parent[v]), via[v]});
  }
  std::reverse(out.begin(), out.end());
  return out;
}

/// A closed walk through the witness SCC from its entry node covering
/// one delivering edge per obligated channel (ascending channel-bit
/// order) and one scheduling edge per remaining obligated process
/// (ascending process order), then closing back on the entry — the
/// fairness certificate made concrete as a fingerprint route.
template <typename MatchFn>
void cover_edge(const Indexed& g, const FairWitness& w,
                const std::vector<char>& in_comp, MatchFn match,
                std::size_t& cur, std::vector<Hop>& out) {
  const LiveGraphEdge* cover = nullptr;
  std::size_t cover_src = 0;
  for (const std::size_t v : w.members) {
    for (const LiveGraphEdge& e : g.node[v]->edges) {
      if (e.fault || !match(e)) continue;
      if (in_comp[g.idx.at(e.dst)] == 0) continue;
      cover = &e;
      cover_src = v;
      break;
    }
    if (cover != nullptr) break;
  }
  WFD_CHECK_MSG(cover != nullptr, "obligated cover edge missing in fair SCC");
  std::vector<Hop> leg = route(g, in_comp, cur, cover_src);
  out.insert(out.end(), leg.begin(), leg.end());
  out.push_back(Hop{cover_src, cover});
  cur = g.idx.at(cover->dst);
}

std::vector<Hop> loop_route(const Indexed& g, const FairWitness& w) {
  std::vector<char> in_comp(g.fps.size(), 0);
  for (const std::size_t v : w.members) in_comp[v] = 1;
  std::vector<Hop> out;
  std::size_t cur = w.entry;
  // A channel with a continuously pending delivery must be covered by
  // an edge delivering on exactly that channel; the delivery also
  // discharges the receiver's scheduling obligation.
  std::uint64_t sched_done = 0;
  for (ProcessId s = 0; s < kLiveChannelStride; ++s) {
    for (ProcessId r = 0; r < kLiveChannelStride; ++r) {
      if ((w.deliver_mask & live_channel_bit(s, r)) == 0) continue;
      cover_edge(
          g, w, in_comp,
          [&](const LiveGraphEdge& e) {
            return e.deliver && e.sender == s && e.sched == r;
          },
          cur, out);
      sched_done |= std::uint64_t{1} << r;
    }
  }
  for (ProcessId p = 0; p < kMaxProcesses; ++p) {
    if (((w.sched_mask >> p) & 1) == 0) continue;
    if (((sched_done >> p) & 1) != 0) continue;
    cover_edge(
        g, w, in_comp,
        [&](const LiveGraphEdge& e) { return e.sched == p; }, cur, out);
  }
  std::vector<Hop> close = route(g, in_comp, cur, w.entry);
  out.insert(out.end(), close.begin(), close.end());
  WFD_CHECK_MSG(!out.empty(), "fair SCC produced an empty loop");
  return out;
}

}  // namespace

std::optional<Counterexample> find_fair_lasso(
    const LiveGraph& g, const ScenarioOptions& scenario,
    std::string* concretize_error) {
  if (!g.have_root || g.order.empty()) return std::nullopt;
  const Indexed ix(g);
  const std::optional<FairWitness> w = fair_goal_avoiding_scc(ix);
  if (!w.has_value()) return std::nullopt;

  // Fingerprint routes: stem from the initial state to the cycle entry
  // (over the whole graph), then the covering loop inside the SCC.
  const std::vector<char> all(ix.fps.size(), 1);
  const std::vector<Hop> stem =
      route(ix, all, ix.idx.at(g.root), w->entry);
  const std::vector<Hop> loop = loop_route(ix, *w);

  // Concretize by probing. The probe scenario widens the horizon so the
  // stem plus one unrolling always fit; under the liveness validate()
  // rules max_steps bounds neither menus nor fingerprints, so the
  // probed transitions are exactly the recorded ones.
  ScenarioOptions probe_opt = scenario;
  probe_opt.max_steps =
      std::max(scenario.max_steps,
               static_cast<Time>(stem.size() + loop.size()) + 8);
  const ScenarioFactory probe(probe_opt);

  sim::DecisionLog log;       // Pinned decisions so far.
  std::uint64_t pinned = 0;   // Steps the pinned decisions drive.

  // Replay the pinned prefix, take one more step driven by `block`, and
  // check it executes `want` — the landed fingerprint AND the edge's
  // identity (process, delivery, fault). The fingerprint alone cannot
  // tell two self-loop edges apart (e.g. each process's lambda step at
  // the same state), and pinning the wrong twin would void the loop's
  // fairness certificate. Probing re-runs the invariants so their
  // carried history — part of the fingerprint — evolves exactly as it
  // did during exploration.
  const auto lands = [&](const sim::DecisionLog& block,
                         const LiveGraphEdge& want) -> bool {
    sim::DecisionLog full = log;
    full.insert(full.end(), block.begin(), block.end());
    sim::MenuChoices src(full);
    Scenario sc = probe.build(src);
    for (std::uint64_t s = 0; s < pinned; ++s) {
      if (!sc.sim->step()) return false;
      for (auto& inv : sc.invariants) {
        if (inv->check(*sc.sim).has_value()) return false;
      }
    }
    if (src.consumed() != log.size()) return false;
    if (!sc.sim->step()) return false;
    for (auto& inv : sc.invariants) {
      if (inv->check(*sc.sim).has_value()) return false;
    }
    if (src.consumed() != full.size()) return false;
    const std::uint64_t ex = src.executed();
    if (sim::ReplayScheduler::label_is_fault(ex) != want.fault) return false;
    if (sim::ReplayScheduler::label_process(ex) != want.sched) return false;
    if ((sim::ReplayScheduler::label_message(ex) != 0) != want.deliver) {
      return false;
    }
    // Channel identity: the delivered message's sender must match the
    // edge's — the loop's fairness certificate serves channels, and two
    // same-receiver deliveries at one state can land the same
    // fingerprint while serving different channels.
    if (want.deliver && sc.sim->last_step().from != want.sender) {
      return false;
    }
    const std::optional<std::uint64_t> fp = scenario_fingerprint(sc);
    return fp.has_value() && *fp == want.dst;
  };

  // The schedule-menu width at the state the pinned prefix lands on:
  // replay the prefix and take one (discarded) default step, whose
  // note_enabled hook captures the menu even when it is forced.
  const auto menu_width = [&]() -> std::size_t {
    sim::MenuChoices src(log);
    Scenario sc = probe.build(src);
    for (std::uint64_t s = 0; s <= pinned; ++s) {
      if (!sc.sim->step()) return 0;
    }
    return src.menu().size();
  };

  // Pin one hop: recorded decision blocks for this transition first
  // (always exact when the pinned prefix walks the same menus the
  // recorder saw), then a rescan of the leading schedule index over the
  // actual menu width at the probed state, keeping any recorded tail —
  // the pending-message menu at a fingerprint can order message ids
  // differently along the pinned stem than along the recording path,
  // while trailing oracle picks (begin_run, crash re-picks) enumerate
  // from the pattern and are path-independent.
  const auto pin = [&](const Hop& hop) -> bool {
    for (const LiveGraphEdge& e : ix.node[hop.src]->edges) {
      if (e.dst != hop.edge->dst) continue;
      if (lands(e.choices, *hop.edge)) {
        log.insert(log.end(), e.choices.begin(), e.choices.end());
        ++pinned;
        return true;
      }
    }
    const std::size_t width = menu_width();
    for (const LiveGraphEdge& e : ix.node[hop.src]->edges) {
      if (e.dst != hop.edge->dst || e.choices.empty()) continue;
      for (std::size_t i = 0; i < width; ++i) {
        sim::DecisionLog block = {static_cast<std::uint32_t>(i)};
        block.insert(block.end(), e.choices.begin() + 1, e.choices.end());
        if (lands(block, *hop.edge)) {
          log.insert(log.end(), block.begin(), block.end());
          ++pinned;
          return true;
        }
      }
    }
    return false;
  };

  // A hop that cannot be concretized means the graph and the scenario
  // disagree — an internal error, never a sound verdict. Surface a
  // structured diagnostic instead of aborting the whole process.
  const auto concretize_failed = [&](const char* part, std::size_t at,
                                     std::size_t total, const Hop& hop) {
    if (concretize_error == nullptr) return;
    std::ostringstream err;
    err << "failed to concretize a lasso transition (" << part << " hop "
        << at << " of " << total << ": fingerprint "
        << ix.fps[hop.src] << " -> " << hop.edge->dst << ")\n";
    err << "partial lasso pinned so far: " << pinned << " steps, decisions=";
    for (std::size_t i = 0; i < log.size(); ++i) {
      err << (i == 0 ? "" : ",") << log[i];
    }
    err << "\nscenario:\n";
    detail::scenario_to_text(err, scenario);
    *concretize_error = err.str();
  };

  for (std::size_t i = 0; i < stem.size(); ++i) {
    if (!pin(stem[i])) {
      concretize_failed("stem", i, stem.size(), stem[i]);
      return std::nullopt;
    }
  }
  const sim::DecisionLog stem_log = log;
  const std::uint64_t stem_steps = pinned;
  for (std::size_t i = 0; i < loop.size(); ++i) {
    if (!pin(loop[i])) {
      concretize_failed("loop", i, loop.size(), loop[i]);
      return std::nullopt;
    }
  }
  const sim::DecisionLog loop_log(
      log.begin() + static_cast<std::ptrdiff_t>(stem_log.size()), log.end());

  Violation v;
  v.property = "liveness(" + scenario.liveness + ")";
  v.message = "fair cycle avoiding the goal: a " +
              std::to_string(loop.size()) + "-step loop over " +
              std::to_string(w->members.size()) +
              " states, entered after " + std::to_string(stem_steps) +
              " steps, schedules every enabled process and serves every "
              "continuously pending channel forever without the goal "
              "ever holding";
  v.at = static_cast<Time>(stem_steps);

  Counterexample cex;
  cex.decisions = stem_log;
  cex.violation = std::move(v);
  cex.steps = stem_steps;
  cex.loop = loop_log;
  cex.loop_steps = static_cast<std::uint64_t>(loop.size());
  return cex;
}

}  // namespace wfd::explore
