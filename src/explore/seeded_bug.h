// A deliberately broken consensus "protocol", used to validate that the
// exploration subsystem actually finds specification violations and that
// counterexample shrinking and replay work end to end.
//
// Each process broadcasts its proposal (to itself too) and decides the
// first proposal it receives. Under benign schedules — everyone hears
// the same first broadcast — all processes agree, so sampling schedulers
// rarely notice anything; but any schedule in which two processes first
// hear different proposals violates agreement. wfd_check must find such
// a schedule, shrink it, and replay it deterministically.
// CrashTimingConsensusModule is a second seeded bug, aimed at crash
// *injection* rather than schedules: a two-phase coordinator protocol
// that is correct on every crash-free schedule and under every "early"
// crash, but violates agreement when the coordinator crashes in the
// window between completing phase 1 (where it — the bug — already
// decides) and broadcasting phase 2 on its next tick. Scripted crash
// times that predate the phase-1 collect can never exhibit it;
// `wfd_check --crash=explore` places the crash relative to the schedule
// and finds it.
// GiveUpLeaderConsensusModule is a third seeded bug, and the first
// *liveness* one: the real (Omega, Sigma) consensus protocol with the
// give_up_when_opposed flag set, so a leader whose first round is
// opposed (Nacked) or stalls past a short retry interval never starts
// another round. No safety clause ever fails — bounded exploration
// reports a clean tree — but the system can wedge in a quiescent
// undecided state where every process's step is a no-op: a fair cycle
// avoiding the termination goal, which only the fair-cycle (lasso)
// search refutes (`wfd_check --problem=consensus-live-bug
// --liveness=termination`).
// DeferToPromisedConsensusModule is a fourth seeded bug, aimed at
// *crash-composed* liveness: the real protocol with the
// defer_to_promised_owner flag set, so a would-be leader that has
// promised another process's round waits for that owner instead of
// preempting it. Crash-free runs terminate (a stable leader's own
// Prepare makes promised_ its own round) and bounded safety stays
// clean, but a leader crash after its Prepare reached a survivor
// wedges the re-elected leader forever — a fair goal-avoiding cycle
// that only exists behind a crash edge, so only `--crash=explore`
// composed with `--liveness=termination` can find it
// (`wfd_check --problem=consensus-crash-live-bug`).
#pragma once

#include "consensus/consensus_api.h"
#include "consensus/omega_sigma_consensus.h"
#include "fd/values.h"
#include "sim/module.h"
#include "sim/payload.h"

namespace wfd::explore {

class FirstHeardConsensusModule : public sim::Module {
 public:
  /// Must be called before the run starts.
  void propose(int value) {
    proposed_ = true;
    proposal_ = value;
  }

  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] int decision() const { return decision_; }
  [[nodiscard]] bool done() const override { return !proposed_ || decided_; }

  void on_start() override {
    broadcast(sim::make_payload<Proposal>(proposal_), /*include_self=*/true);
  }

  void on_message(ProcessId, const sim::Payload& msg) override {
    const auto* m = sim::payload_cast<Proposal>(msg);
    if (m == nullptr || decided_) return;
    decided_ = true;
    decision_ = m->value;
    emit("decide", decision_);
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("proposed", proposed_);
    enc.field("proposal", proposal_);
    enc.field("decided", decided_);
    enc.field("decision", decision_);
  }

 private:
  // Audited non-commuting: decide-first-heard is exactly an order race —
  // the whole point of this module is that delivery order is observable.
  struct Proposal final : sim::Payload {
    explicit Proposal(int v) : value(v) {}
    int value;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("value", value);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "bug.first-heard";
    }
  };

  bool proposed_ = false;
  int proposal_ = 0;
  bool decided_ = false;
  int decision_ = 0;
};

/// The crash-timing bug. Process 0 is the coordinator; it broadcasts
/// Phase1, collects one ack per peer, then decides its own proposal —
/// and only on its NEXT tick broadcasts Phase2 carrying the decision
/// (deferring the broadcast past the decide is the seeded bug; the
/// correct protocol does both in the same atomic step). Participants
/// decide the Phase2 value; a participant whose FS detector turns red
/// before Phase2 arrives falls back to deciding its own proposal.
///
/// Crash-free runs and crashes before the phase-1 collect completes are
/// safe (either Phase2 reaches everyone, or nobody saw a coordinator
/// decision and the fallback is unanimous). A coordinator crash at or
/// after the collect leaves its decision in the trace with Phase2 unsent
/// (or partially delivered), so red participants decide the other value.
class CrashTimingConsensusModule : public sim::Module {
 public:
  /// Must be called before the run starts.
  void propose(int value) {
    proposed_ = true;
    proposal_ = value;
  }

  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] int decision() const { return decision_; }
  [[nodiscard]] bool done() const override {
    return !proposed_ || (decided_ && !pending_phase2_);
  }

  void on_start() override {
    if (self() != kCoordinator) return;
    acks_ = 1;  // Its own.
    maybe_decide();
    broadcast(sim::make_payload<Msg>(Msg::kPhase1, proposal_),
              /*include_self=*/false);
  }

  void on_message(ProcessId from, const sim::Payload& msg) override {
    const auto* m = sim::payload_cast<Msg>(msg);
    if (m == nullptr) return;
    switch (m->tag) {
      case Msg::kPhase1:
        send(from, sim::make_payload<Msg>(Msg::kAck, proposal_));
        break;
      case Msg::kAck:
        if (self() != kCoordinator) break;
        ++acks_;
        maybe_decide();
        break;
      case Msg::kPhase2:
        if (!decided_) {
          decided_ = true;
          decision_ = m->value;
          emit("decide", decision_);
        }
        break;
    }
  }

  void on_tick() override {
    if (pending_phase2_) {
      pending_phase2_ = false;
      broadcast(sim::make_payload<Msg>(Msg::kPhase2, decision_),
                /*include_self=*/false);
      return;
    }
    // Participant fallback: the coordinator is gone and Phase2 never
    // arrived here — decide our own proposal.
    if (self() != kCoordinator && proposed_ && !decided_ &&
        detector().fs == fd::FsColor::kRed) {
      decided_ = true;
      decision_ = proposal_;
      emit("decide", decision_);
    }
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("proposed", proposed_);
    enc.field("proposal", proposal_);
    enc.field("acks", acks_);
    enc.field("decided", decided_);
    enc.field("decision", decision_);
    enc.field("pending-phase2", pending_phase2_);
  }

 private:
  static constexpr ProcessId kCoordinator = 0;

  void maybe_decide() {
    if (decided_ || acks_ < n()) return;
    decided_ = true;
    decision_ = proposal_;
    emit("decide", decision_);
    pending_phase2_ = true;  // BUG: should broadcast Phase2 right here.
  }

  // Audited non-commuting: phase transitions are threshold-counted and
  // the fallback races against Phase2 delivery by design.
  struct Msg final : sim::Payload {
    enum Tag { kPhase1, kAck, kPhase2 };
    Msg(Tag t, int v) : tag(t), value(v) {}
    Tag tag;
    int value;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("tag", tag);
      enc.field("value", value);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "bug.crash-timing";
    }
  };

  bool proposed_ = false;
  int proposal_ = 0;
  int acks_ = 0;
  bool decided_ = false;
  bool pending_phase2_ = false;
  int decision_ = 0;
};

/// The liveness bug (see the file comment): the unmodified
/// OmegaSigmaConsensusModule run with the seeded give-up flag and a
/// retry interval short enough that a leader ticked twice before its
/// Promises arrive already counts as stalled. A schedule that does so —
/// then drains the in-flight messages — parks the run in a quiescent
/// undecided state forever. The healthy module retries with a fresh
/// round from that same schedule, so only the buggy build has a fair
/// goal-avoiding cycle.
class GiveUpLeaderConsensusModule
    : public consensus::OmegaSigmaConsensusModule<int> {
 public:
  GiveUpLeaderConsensusModule()
      : consensus::OmegaSigmaConsensusModule<int>(bug_options()) {}

 private:
  [[nodiscard]] static Options bug_options() {
    Options o;
    o.retry_interval = 2;
    o.give_up_when_opposed = true;
    return o;
  }
};

/// The crash-composed liveness bug (see the file comment): the
/// unmodified OmegaSigmaConsensusModule run with the seeded
/// defer-to-promised-owner flag. Without a crash the flag is inert
/// enough to keep every liveness clause green — the static Ω leader's
/// self-delivered Prepare keeps promised_ owned by itself — so the bug
/// is invisible to crash-free `--liveness` runs and to bounded safety
/// under any budget; it needs a leader crash between its Prepare
/// reaching a survivor and its round closing, followed by Ω re-electing
/// that survivor, which only `--crash=explore --liveness=termination`
/// explores.
class DeferToPromisedConsensusModule
    : public consensus::OmegaSigmaConsensusModule<int> {
 public:
  DeferToPromisedConsensusModule()
      : consensus::OmegaSigmaConsensusModule<int>(bug_options()) {}

 private:
  [[nodiscard]] static Options bug_options() {
    Options o;
    o.retry_interval = 2;
    o.defer_to_promised_owner = true;
    return o;
  }
};

}  // namespace wfd::explore
