// A deliberately broken consensus "protocol", used to validate that the
// exploration subsystem actually finds specification violations and that
// counterexample shrinking and replay work end to end.
//
// Each process broadcasts its proposal (to itself too) and decides the
// first proposal it receives. Under benign schedules — everyone hears
// the same first broadcast — all processes agree, so sampling schedulers
// rarely notice anything; but any schedule in which two processes first
// hear different proposals violates agreement. wfd_check must find such
// a schedule, shrink it, and replay it deterministically.
#pragma once

#include "consensus/consensus_api.h"
#include "sim/module.h"
#include "sim/payload.h"

namespace wfd::explore {

class FirstHeardConsensusModule : public sim::Module {
 public:
  /// Must be called before the run starts.
  void propose(int value) {
    proposed_ = true;
    proposal_ = value;
  }

  [[nodiscard]] bool decided() const { return decided_; }
  [[nodiscard]] int decision() const { return decision_; }
  [[nodiscard]] bool done() const override { return !proposed_ || decided_; }

  void on_start() override {
    broadcast(sim::make_payload<Proposal>(proposal_), /*include_self=*/true);
  }

  void on_message(ProcessId, const sim::Payload& msg) override {
    const auto* m = sim::payload_cast<Proposal>(msg);
    if (m == nullptr || decided_) return;
    decided_ = true;
    decision_ = m->value;
    emit("decide", decision_);
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("proposed", proposed_);
    enc.field("proposal", proposal_);
    enc.field("decided", decided_);
    enc.field("decision", decision_);
  }

 private:
  // Audited non-commuting: decide-first-heard is exactly an order race —
  // the whole point of this module is that delivery order is observable.
  struct Proposal final : sim::Payload {
    explicit Proposal(int v) : value(v) {}
    int value;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("value", value);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "bug.first-heard";
    }
  };

  bool proposed_ = false;
  int proposal_ = 0;
  bool decided_ = false;
  int decision_ = 0;
};

}  // namespace wfd::explore
