#include "explore/shrink.h"

#include <algorithm>

#include "common/check.h"
#include "explore/replay_io.h"

namespace wfd::explore {

namespace {

void trim_trailing_zeros(sim::DecisionLog* log) {
  while (!log->empty() && log->back() == 0) log->pop_back();
}

}  // namespace

ShrinkResult shrink(const ScenarioBuilder& build, sim::DecisionLog log,
                    const std::string& property, ShrinkOptions opt) {
  ShrinkResult res;
  res.original_size = log.size();

  const auto reproduces = [&](const sim::DecisionLog& candidate) {
    ++res.attempts;
    const ReplayOutcome out = run_replay(build, candidate);
    return out.violation.has_value() && out.violation->property == property;
  };
  WFD_CHECK_MSG(reproduces(log), "shrink input does not reproduce");

  // Trailing zeros are no-ops by construction (an exhausted FixedChoices
  // answers 0), so this first trim needs no replay to validate.
  trim_trailing_zeros(&log);

  bool progress = true;
  while (progress && res.attempts < opt.max_attempts) {
    progress = false;

    // ddmin-style chunk removal: large chunks first, down to singletons.
    for (std::size_t chunk = std::max<std::size_t>(log.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      for (std::size_t at = 0;
           at < log.size() && res.attempts < opt.max_attempts;) {
        sim::DecisionLog candidate(log.begin(),
                                   log.begin() + static_cast<long>(at));
        const std::size_t end = std::min(at + chunk, log.size());
        candidate.insert(candidate.end(),
                         log.begin() + static_cast<long>(end), log.end());
        if (reproduces(candidate)) {
          log = std::move(candidate);
          progress = true;
          // Re-test the same position: it now holds the next chunk.
        } else {
          at += chunk;
        }
      }
      if (chunk == 1) break;
    }

    // Canonicalization: rewrite entries to 0 (the explorer's default
    // branch) where the violation survives it.
    for (std::size_t i = 0;
         i < log.size() && res.attempts < opt.max_attempts; ++i) {
      if (log[i] == 0) continue;
      sim::DecisionLog candidate = log;
      candidate[i] = 0;
      if (reproduces(candidate)) {
        log = std::move(candidate);
        progress = true;
      }
    }
    trim_trailing_zeros(&log);
  }

  res.decisions = std::move(log);
  return res;
}

}  // namespace wfd::explore
