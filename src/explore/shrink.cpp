#include "explore/shrink.h"

#include <algorithm>
#include <functional>

#include "common/check.h"
#include "explore/replay_io.h"

namespace wfd::explore {

namespace {

using Reproduces = std::function<bool(const sim::DecisionLog&)>;
using BudgetLeft = std::function<bool()>;

void trim_trailing_zeros(sim::DecisionLog* log) {
  while (!log->empty() && log->back() == 0) log->pop_back();
}

/// ddmin-style chunk removal: large chunks first, down to singletons.
/// Returns whether anything was removed.
bool ddmin_pass(sim::DecisionLog* log, const Reproduces& reproduces,
                const BudgetLeft& budget_left) {
  bool progress = false;
  for (std::size_t chunk = std::max<std::size_t>(log->size() / 2, 1);
       chunk >= 1; chunk /= 2) {
    for (std::size_t at = 0; at < log->size() && budget_left();) {
      sim::DecisionLog candidate(log->begin(),
                                 log->begin() + static_cast<long>(at));
      const std::size_t end = std::min(at + chunk, log->size());
      candidate.insert(candidate.end(),
                       log->begin() + static_cast<long>(end), log->end());
      if (reproduces(candidate)) {
        *log = std::move(candidate);
        progress = true;
        // Re-test the same position: it now holds the next chunk.
      } else {
        at += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return progress;
}

/// Canonicalization: rewrite entries to 0 (the explorer's default
/// branch) where the violation survives it.
bool zero_pass(sim::DecisionLog* log, const Reproduces& reproduces,
               const BudgetLeft& budget_left) {
  bool progress = false;
  for (std::size_t i = 0; i < log->size() && budget_left(); ++i) {
    if ((*log)[i] == 0) continue;
    sim::DecisionLog candidate = *log;
    candidate[i] = 0;
    if (reproduces(candidate)) {
      *log = std::move(candidate);
      progress = true;
    }
  }
  return progress;
}

}  // namespace

ShrinkResult shrink(const ScenarioBuilder& build, sim::DecisionLog log,
                    const std::string& property, ShrinkOptions opt) {
  ShrinkResult res;
  res.original_size = log.size();

  const Reproduces reproduces = [&](const sim::DecisionLog& candidate) {
    ++res.attempts;
    const ReplayOutcome out = run_replay(build, candidate);
    return out.violation.has_value() && out.violation->property == property;
  };
  const BudgetLeft budget_left = [&] {
    return res.attempts < opt.max_attempts;
  };
  WFD_CHECK_MSG(reproduces(log), "shrink input does not reproduce");

  // Trailing zeros are no-ops by construction (an exhausted FixedChoices
  // answers 0), so this first trim needs no replay to validate.
  trim_trailing_zeros(&log);

  bool progress = true;
  while (progress && budget_left()) {
    progress = false;
    if (ddmin_pass(&log, reproduces, budget_left)) progress = true;
    if (zero_pass(&log, reproduces, budget_left)) progress = true;
    trim_trailing_zeros(&log);
  }

  res.decisions = std::move(log);
  return res;
}

ShrinkLassoResult shrink_lasso(const ScenarioBuilder& build,
                               sim::DecisionLog stem, sim::DecisionLog loop,
                               ShrinkOptions opt) {
  ShrinkLassoResult res;
  res.original_stem = stem.size();
  res.original_loop = loop.size();

  // Unlike the safety shrinker, stem entries past a run's last consumed
  // decision are NOT free to trim: the stem/loop boundary is positional,
  // so every entry shifts where the loop begins. Everything goes through
  // full validation.
  const auto valid = [&](const sim::DecisionLog& s,
                         const sim::DecisionLog& l) {
    ++res.attempts;
    return run_lasso(build, s, l).ok;
  };
  const BudgetLeft budget_left = [&] {
    return res.attempts < opt.max_attempts;
  };
  WFD_CHECK_MSG(valid(stem, loop), "shrink input is not a valid lasso");

  const auto main_passes = [&](sim::DecisionLog* s, sim::DecisionLog* l) {
    bool progress = true;
    while (progress && budget_left()) {
      progress = false;
      const Reproduces loop_ok = [&](const sim::DecisionLog& cand) {
        return valid(*s, cand);
      };
      const Reproduces stem_ok = [&](const sim::DecisionLog& cand) {
        return valid(cand, *l);
      };
      // Loop first: a shorter loop makes every later stem replay cheaper.
      if (ddmin_pass(l, loop_ok, budget_left)) progress = true;
      if (zero_pass(l, loop_ok, budget_left)) progress = true;
      if (ddmin_pass(s, stem_ok, budget_left)) progress = true;
      if (zero_pass(s, stem_ok, budget_left)) progress = true;
    }
  };
  main_passes(&stem, &loop);

  // Rotation: enter the cycle k steps later — the rotated prefix moves
  // onto the stem, where ddmin may find a much shorter route to the new
  // entry state. Keep a rotation only when it shortens the total.
  for (std::size_t k = 1; k < loop.size() && budget_left(); ++k) {
    sim::DecisionLog stem2 = stem;
    stem2.insert(stem2.end(), loop.begin(),
                 loop.begin() + static_cast<long>(k));
    sim::DecisionLog loop2(loop.begin() + static_cast<long>(k), loop.end());
    loop2.insert(loop2.end(), loop.begin(),
                 loop.begin() + static_cast<long>(k));
    if (!valid(stem2, loop2)) continue;  // e.g. horizon cut the probe
    const Reproduces stem_ok = [&](const sim::DecisionLog& cand) {
      return valid(cand, loop2);
    };
    ddmin_pass(&stem2, stem_ok, budget_left);
    if (stem2.size() + loop2.size() < stem.size() + loop.size()) {
      stem = std::move(stem2);
      loop = std::move(loop2);
      main_passes(&stem, &loop);
    }
  }

  res.stem = std::move(stem);
  res.loop = std::move(loop);
  return res;
}

}  // namespace wfd::explore
