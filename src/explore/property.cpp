#include "explore/property.h"

namespace wfd::explore {

std::optional<Violation> AgreementInvariant::check(const sim::Simulator& sim) {
  const auto& events = sim.trace().events();
  for (; cursor_ < events.size(); ++cursor_) {
    const auto& e = events[cursor_];
    if (e.kind != kind_) continue;
    if (!have_first_) {
      have_first_ = true;
      first_p_ = e.p;
      first_value_ = e.value;
      continue;
    }
    if (e.value != first_value_) {
      return Violation{
          name(),
          "p" + std::to_string(first_p_) + " decided " +
              std::to_string(first_value_) + " but p" + std::to_string(e.p) +
              " decided " + std::to_string(e.value) + " at t=" +
              std::to_string(e.t),
          e.t};
    }
  }
  return std::nullopt;
}

std::optional<Violation> ValidityInvariant::check(const sim::Simulator& sim) {
  const auto& events = sim.trace().events();
  for (; cursor_ < events.size(); ++cursor_) {
    const auto& e = events[cursor_];
    if (e.kind != kind_) continue;
    bool ok = false;
    for (std::int64_t v : allowed_) ok = ok || (v == e.value);
    if (!ok) {
      return Violation{name(),
                       "p" + std::to_string(e.p) + " decided " +
                           std::to_string(e.value) +
                           ", which no process proposed",
                       e.t};
    }
  }
  return std::nullopt;
}

std::optional<Violation> QuitValidityInvariant::check(
    const sim::Simulator& sim) {
  const auto& events = sim.trace().events();
  for (; cursor_ < events.size(); ++cursor_) {
    const auto& e = events[cursor_];
    if (e.kind != "qc-decide" || e.value != -1) continue;
    if (!sim.pattern().failure_by(e.t)) {
      return Violation{name(),
                       "p" + std::to_string(e.p) + " decided Q at t=" +
                           std::to_string(e.t) +
                           " but no failure had occurred",
                       e.t};
    }
  }
  return std::nullopt;
}

std::optional<Violation> NbacValidityInvariant::check(
    const sim::Simulator& sim) {
  const auto& events = sim.trace().events();
  bool all_yes = true;
  for (nbac::Vote v : votes_) all_yes = all_yes && (v == nbac::Vote::kYes);
  for (; cursor_ < events.size(); ++cursor_) {
    const auto& e = events[cursor_];
    if (e.kind != "nbac-decide") continue;
    if (e.value == 1 && !all_yes) {
      return Violation{name(),
                       "p" + std::to_string(e.p) +
                           " committed despite a No vote",
                       e.t};
    }
    if (e.value == 0 && all_yes && sim.pattern().faulty().empty()) {
      return Violation{name(),
                       "p" + std::to_string(e.p) +
                           " aborted with unanimous Yes and no failure",
                       e.t};
    }
  }
  return std::nullopt;
}

std::optional<Violation> SigmaIntersectionInvariant::check(
    const sim::Simulator& sim) {
  const auto& samples = sim.trace().samples();
  for (; cursor_ < samples.size(); ++cursor_) {
    const auto& s = samples[cursor_];
    std::uint64_t masks[2];
    int count = 0;
    if (s.value.sigma.has_value()) masks[count++] = s.value.sigma->raw();
    if (s.value.psi.has_value() &&
        s.value.psi->mode == fd::PsiValue::Mode::kOmegaSigma) {
      masks[count++] = s.value.psi->sigma.raw();
    }
    for (int i = 0; i < count; ++i) {
      const std::uint64_t mask = masks[i];
      bool fresh = true;
      for (std::uint64_t old : seen_) {
        if (old == mask) fresh = false;
        if ((old & mask) == 0) {
          return Violation{
              name(),
              "quorums " + ProcessSet::from_raw(old).to_string() + " and " +
                  ProcessSet::from_raw(mask).to_string() +
                  " do not intersect (p" + std::to_string(s.p) +
                  " at t=" + std::to_string(s.t) + ")",
              s.t};
        }
      }
      if (fresh) seen_.push_back(mask);
    }
  }
  return std::nullopt;
}

std::optional<Violation> EventualDecisionProperty::check_final(
    const sim::Simulator& sim) {
  for (ProcessId p : sim.pattern().correct().members()) {
    if (sim.trace().first_event(p, kind_).t == kNever) {
      return Violation{name(),
                       "correct process p" + std::to_string(p) +
                           " never emitted " + kind_,
                       sim.now()};
    }
  }
  return std::nullopt;
}

}  // namespace wfd::explore
