#include "explore/property.h"

#include <algorithm>

#include "fd/history_checker.h"

namespace wfd::explore {

std::optional<Violation> AgreementInvariant::check(const sim::Simulator& sim) {
  const auto& events = sim.trace().events();
  for (; cursor_ < events.size(); ++cursor_) {
    const auto& e = events[cursor_];
    if (e.kind != kind_) continue;
    if (!have_first_) {
      have_first_ = true;
      first_p_ = e.p;
      first_value_ = e.value;
      continue;
    }
    if (e.value != first_value_) {
      return Violation{
          name(),
          "p" + std::to_string(first_p_) + " decided " +
              std::to_string(first_value_) + " but p" + std::to_string(e.p) +
              " decided " + std::to_string(e.value) + " at t=" +
              std::to_string(e.t),
          e.t};
    }
  }
  return std::nullopt;
}

std::optional<Violation> ValidityInvariant::check(const sim::Simulator& sim) {
  const auto& events = sim.trace().events();
  for (; cursor_ < events.size(); ++cursor_) {
    const auto& e = events[cursor_];
    if (e.kind != kind_) continue;
    bool ok = false;
    for (std::int64_t v : allowed_) ok = ok || (v == e.value);
    if (!ok) {
      return Violation{name(),
                       "p" + std::to_string(e.p) + " decided " +
                           std::to_string(e.value) +
                           ", which no process proposed",
                       e.t};
    }
  }
  return std::nullopt;
}

std::optional<Violation> QuitValidityInvariant::check(
    const sim::Simulator& sim) {
  const auto& events = sim.trace().events();
  for (; cursor_ < events.size(); ++cursor_) {
    const auto& e = events[cursor_];
    if (e.kind != "qc-decide" || e.value != -1) continue;
    if (!sim.pattern().failure_by(e.t)) {
      return Violation{name(),
                       "p" + std::to_string(e.p) + " decided Q at t=" +
                           std::to_string(e.t) +
                           " but no failure had occurred",
                       e.t};
    }
  }
  return std::nullopt;
}

std::optional<Violation> NbacValidityInvariant::check(
    const sim::Simulator& sim) {
  const auto& events = sim.trace().events();
  bool all_yes = true;
  for (nbac::Vote v : votes_) all_yes = all_yes && (v == nbac::Vote::kYes);
  for (; cursor_ < events.size(); ++cursor_) {
    const auto& e = events[cursor_];
    if (e.kind != "nbac-decide") continue;
    if (e.value == 1 && !all_yes) {
      return Violation{name(),
                       "p" + std::to_string(e.p) +
                           " committed despite a No vote",
                       e.t};
    }
    if (e.value == 0 && all_yes && sim.pattern().faulty().empty()) {
      return Violation{name(),
                       "p" + std::to_string(e.p) +
                           " aborted with unanimous Yes and no failure",
                       e.t};
    }
  }
  return std::nullopt;
}

std::optional<Violation> FdPrefixInvariant::check(const sim::Simulator& sim) {
  // The pattern only ever gains failures, which only ever *legalise*
  // samples, so re-checking is needed only when new samples arrived.
  const auto& samples = sim.trace().samples();
  if (samples.size() == checked_) return std::nullopt;
  checked_ = samples.size();
  if (fs_) {
    const fd::CheckResult r = fd::check_fs_prefix(samples, sim.pattern());
    if (!r.ok) return Violation{name(), r.violation, sim.now()};
  }
  if (psi_) {
    const fd::CheckResult r = fd::check_psi_prefix(samples, sim.pattern());
    if (!r.ok) return Violation{name(), r.violation, sim.now()};
  }
  return std::nullopt;
}

std::optional<Violation> SigmaIntersectionInvariant::check(
    const sim::Simulator& sim) {
  const auto& samples = sim.trace().samples();
  for (; cursor_ < samples.size(); ++cursor_) {
    const auto& s = samples[cursor_];
    std::uint64_t masks[2];
    int count = 0;
    if (s.value.sigma.has_value()) masks[count++] = s.value.sigma->raw();
    if (s.value.psi.has_value() &&
        s.value.psi->mode == fd::PsiValue::Mode::kOmegaSigma) {
      masks[count++] = s.value.psi->sigma.raw();
    }
    for (int i = 0; i < count; ++i) {
      const std::uint64_t mask = masks[i];
      bool fresh = true;
      for (std::uint64_t old : seen_) {
        if (old == mask) fresh = false;
        if ((old & mask) == 0) {
          return Violation{
              name(),
              "quorums " + ProcessSet::from_raw(old).to_string() + " and " +
                  ProcessSet::from_raw(mask).to_string() +
                  " do not intersect (p" + std::to_string(s.p) +
                  " at t=" + std::to_string(s.t) + ")",
              s.t};
        }
      }
      if (fresh) seen_.push_back(mask);
    }
  }
  return std::nullopt;
}

std::optional<Violation> RegisterAtomicityInvariant::check(
    const sim::Simulator& sim) {
  // Linearizability can only newly fail when a response lands.
  const std::size_t completed = history_.completed();
  if (completed == checked_completed_) return std::nullopt;
  checked_completed_ = completed;
  const reg::LinearizabilityResult r =
      reg::check_linearizable(history_, initial_);
  if (r.ok) return std::nullopt;
  return Violation{name(), r.violation, sim.now()};
}

void RegisterAtomicityInvariant::encode_state(sim::StateEncoder& enc) const {
  const auto& ops = history_.ops();
  // Per-client operation indices give ops a schedule-independent
  // identity (the shared vector's order is invocation order, which is
  // schedule-dependent).
  std::vector<std::uint64_t> op_seq(ops.size(), 0);
  std::vector<std::uint64_t> next_per_client(kMaxProcesses + 1, 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    op_seq[i] = next_per_client[static_cast<std::size_t>(ops[i].client)]++;
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const reg::OpRecord& op = ops[i];
    sim::StateEncoder sub = enc.child();
    sub.pid_field("client", op.client);
    sub.field("seq", op_seq[i]);
    sub.field("is-write", op.is_write);
    const bool completed = op.responded != kNever;
    sub.field("completed", completed);
    if (op.is_write || completed) sub.field("value", op.value);
    // Real-time precedence edges, identified by (client, seq) — the
    // relative overlap structure without the absolute times.
    for (std::size_t j = 0; j < ops.size(); ++j) {
      if (completed && op.responded <= ops[j].invoked) {
        sim::StateEncoder edge = sub.child();
        edge.pid_field("client", ops[j].client);
        edge.field("seq", op_seq[j]);
        sub.merge("precedes", edge);
      }
    }
    enc.merge("op", sub);
  }
}

std::optional<Violation> TotalOrderInvariant::check(
    const sim::Simulator& sim) {
  for (std::size_t a = 0; a < logs_.size(); ++a) {
    for (std::size_t b = a + 1; b < logs_.size(); ++b) {
      const std::size_t common = std::min(logs_[a].size(), logs_[b].size());
      for (std::size_t k = 0; k < common; ++k) {
        if (!(logs_[a][k] == logs_[b][k])) {
          return Violation{
              name(),
              "p" + std::to_string(a) + " and p" + std::to_string(b) +
                  " disagree at log position " + std::to_string(k),
              sim.now()};
        }
      }
    }
  }
  return std::nullopt;
}

void TotalOrderInvariant::encode_state(sim::StateEncoder& enc) const {
  for (std::size_t p = 0; p < logs_.size(); ++p) {
    enc.push("proc", p);
    enc.field("#", logs_[p].size());
    for (std::size_t k = 0; k < logs_[p].size(); ++k) {
      enc.push("at", k);
      enc.field("origin", logs_[p][k].origin);
      enc.field("seq", logs_[p][k].seq);
      enc.field("body", logs_[p][k].body);
      enc.pop();
    }
    enc.pop();
  }
}

std::optional<Violation> UrbIntegrityInvariant::check(
    const sim::Simulator& sim) {
  for (std::size_t p = 0; p < logs_.size(); ++p) {
    const auto& log = logs_[p];
    for (std::size_t k = 0; k < log.size(); ++k) {
      const Entry& e = log[k];
      // Only broadcast messages: the workload has sender i send exactly
      // one message, body 100+i, seq 1.
      if (e.origin >= static_cast<std::uint64_t>(senders_) || e.seq != 1 ||
          e.body != 100 + static_cast<std::int64_t>(e.origin)) {
        return Violation{name(),
                         "p" + std::to_string(p) +
                             " delivered a message never broadcast "
                             "(origin " +
                             std::to_string(e.origin) + ", seq " +
                             std::to_string(e.seq) + ")",
                         sim.now()};
      }
      for (std::size_t j = 0; j < k; ++j) {
        if (log[j].origin == e.origin && log[j].seq == e.seq) {
          return Violation{name(),
                           "p" + std::to_string(p) +
                               " delivered (origin " +
                               std::to_string(e.origin) + ", seq " +
                               std::to_string(e.seq) + ") twice",
                           sim.now()};
        }
      }
    }
  }
  return std::nullopt;
}

void UrbIntegrityInvariant::encode_state(sim::StateEncoder& enc) const {
  for (std::size_t p = 0; p < logs_.size(); ++p) {
    enc.push("proc", p);
    enc.field("#", logs_[p].size());
    for (std::size_t k = 0; k < logs_[p].size(); ++k) {
      enc.push("at", k);
      enc.field("origin", logs_[p][k].origin);
      enc.field("seq", logs_[p][k].seq);
      enc.field("body", logs_[p][k].body);
      enc.pop();
    }
    enc.pop();
  }
}

std::optional<Violation> EventualDecisionProperty::check_final(
    const sim::Simulator& sim) {
  for (ProcessId p : sim.pattern().correct().members()) {
    if (sim.trace().first_event(p, kind_).t == kNever) {
      return Violation{name(),
                       "correct process p" + std::to_string(p) +
                           " never emitted " + kind_,
                       sim.now()};
    }
  }
  return std::nullopt;
}

std::optional<Violation> EventualLeadershipProperty::check_final(
    const sim::Simulator& sim) {
  const ProcessSet correct = sim.pattern().correct();
  ProcessId expected = kNoProcess;
  for (ProcessId p : correct.members()) {
    if (expected == kNoProcess || p < expected) expected = p;
  }
  const auto& events = sim.trace().events();
  for (ProcessId p : correct.members()) {
    ProcessId last = kNoProcess;
    bool any = false;
    for (const auto& e : events) {
      if (e.p != p || e.kind != kind_) continue;
      any = true;
      last = static_cast<ProcessId>(e.value);
    }
    if (!any) {
      return Violation{name(),
                       "correct process p" + std::to_string(p) +
                           " never emitted " + kind_,
                       sim.now()};
    }
    if (last != expected) {
      return Violation{name(),
                       "correct process p" + std::to_string(p) +
                           " last trusted p" + std::to_string(last) +
                           " but the smallest correct process is p" +
                           std::to_string(expected),
                       sim.now()};
    }
  }
  return std::nullopt;
}

}  // namespace wfd::explore
