// Shared text (de)serialization of scenario options and scalars, used by
// both persistence formats of the subsystem: replay files (replay_io)
// and search snapshots (state_store). One implementation means one set
// of overflow guards — a corrupted numeric field must fail the parse,
// never silently wrap into a different valid value and replay (or
// resume) the wrong schedule.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "explore/scenario.h"

namespace wfd::explore::detail {

/// Strict decimal u64: digits only, and the value must fit — any digit
/// that would overflow fails the parse instead of wrapping.
bool parse_u64(const std::string& s, std::uint64_t* out);

/// Strict decimal int with an optional leading '-'; range-checked
/// against INT_MIN/INT_MAX before the (otherwise UB-prone) cast.
bool parse_int(const std::string& s, int* out);

bool parse_bool(const std::string& s, bool* out);

/// A Time is a u64 or the literal "never" (kNever).
bool parse_time(const std::string& s, Time* out);
std::string time_to_text(Time t);

/// Renders every ScenarioOptions field as key=value lines — the shared
/// scenario header of replay files and snapshots.
void scenario_to_text(std::ostream& out, const ScenarioOptions& o);

/// Applies one key=value line to `o`. Returns false when the key is not
/// a scenario field (caller decides: other section, or ignored for
/// forward compatibility); `*ok` reports whether the value parsed.
bool scenario_apply(ScenarioOptions& o, const std::string& key,
                    const std::string& val, bool* ok);

/// One-line string escaping for values that may contain newlines (the
/// replay note): '\\' -> "\\\\", '\n' -> "\\n", '\r' -> "\\r". unescape
/// returns false on a dangling or unknown escape.
std::string escape_line(const std::string& s);
bool unescape_line(const std::string& s, std::string* out);

}  // namespace wfd::explore::detail
