// SearchConfig — the one validated configuration object for every
// driver of the exploration subsystem.
//
// Before this existed, the same knobs lived in four places with four
// parsers: ExplorerOptions (exhaustive search), CampaignOptions
// (randomized campaign), the flag loop in tools/wfd_check.cpp, and the
// scenario/options header of search snapshots (state_store). Each copy
// drifted independently; adding a knob meant four edits and a silent
// skew risk between what a snapshot recorded and what a resume
// validated. SearchConfig collapses them: one struct, one validate(),
// one CLI-flag parser, one JSON rendering and one snapshot-header
// rendering — wfd_check, the campaign driver, the explorer, tests and
// benches all construct and pass the same object.
//
// The snapshot header (search_header_to_text / search_header_apply)
// intentionally renders ONLY the fields a stored frontier's soundness
// depends on: the scenario plus reduction, dependence, fault_dependence,
// symmetry, state_fingerprints and order_seed. Execution-shape knobs —
// threads, budgets, save/resume paths, stop_at_first — are absent by
// design, so resuming a snapshot with a different thread count or budget
// is legal (the wave-scheduled search is deterministic in those), while
// resuming under a different reduction configuration is rejected field
// by field (state_store::resume_mismatch diffs the rendered headers).
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

#include "explore/scenario.h"

namespace wfd::explore {

/// Partial-order reduction mode of the exhaustive search.
enum class Reduction {
  kNone,       ///< Plain DFS over the full choice tree.
  kSleepSets,  ///< Sleep sets only (no backtrack-set gating).
  kDpor,       ///< Dynamic partial-order reduction + sleep sets.
};

/// What makes two deliveries to the same process dependent.
enum class Dependence {
  kProcess,  ///< Same target process = dependent (classic).
  kContent,  ///< Payload-level commutativity refines kProcess.
};

struct SearchConfig {
  ScenarioOptions scenario;

  // --- Exhaustive search -------------------------------------------------
  /// Cumulative cap on materialized choice points. 0 = unlimited.
  std::uint64_t max_states = 100000;
  /// Cap on completed runs. 0 = unlimited.
  std::uint64_t max_runs = 0;
  Reduction reduction = Reduction::kDpor;
  Dependence dependence = Dependence::kContent;
  /// Give crash/drop/duplicate labels a real dependence relation
  /// (sim/dependence.h) instead of treating every fault label as
  /// dependent with everything. Sound per DESIGN.md §12; turn off to
  /// compare against the conservative behaviour.
  bool fault_dependence = true;
  /// Canonicalize state fingerprints under process renaming within the
  /// scenario's symmetry classes (ScenarioFactory::symmetry_classes).
  /// Opt-in; validate() rejects it for scenarios whose initial
  /// configuration or fault script is not symmetric.
  bool symmetry = false;
  /// Prune states whose fingerprint was already fully explored.
  bool state_fingerprints = true;
  /// Stop at the first violation instead of collecting all of them.
  bool stop_at_first = true;
  /// Rotates per-node child visit order (0 = canonical order).
  std::uint64_t order_seed = 0;
  /// Worker threads of the wave-scheduled exhaustive search. Results
  /// (states, coverage, violations, snapshots) are identical for every
  /// value — threads only buy wall clock.
  int threads = 1;
  /// Cap on NEW states this invocation (0 = off); with save_path this
  /// yields resumable installments (exit 4 contract in wfd_check).
  std::uint64_t budget_states = 0;
  /// Persist the frontier + fingerprints here on exit (empty = off).
  std::string save_path;
  /// Resume from this snapshot (empty = fresh search).
  std::string resume_path;
  /// Cooperative cancel: polled every step; a cancelled wave is
  /// discarded wholesale, so saved snapshots never carry partial waves.
  const std::atomic<bool>* cancel = nullptr;

  // --- Campaign ----------------------------------------------------------
  /// Total random-walk runs across all campaign workers.
  std::uint64_t runs = 10000;
  /// Shrink a claimed counterexample before reporting it.
  bool shrink = true;
  /// Threads of the campaign's shared exhaustive frontier search
  /// (0 = random walks only). The frontier is one wave-parallel
  /// Explorer, not independent per-seed DFS workers.
  int frontier_workers = 2;
  /// State cap of the campaign frontier search (0 = use max_states).
  std::uint64_t frontier_states = 0;
  /// Evaluate EventualProperties at the end of each completed run.
  bool check_eventual = true;
};

/// Empty when the configuration is valid (scenario included), else a
/// diagnosis. Every driver calls this once before running.
[[nodiscard]] std::string validate(const SearchConfig& cfg);

/// Outcome of feeding one CLI argument to apply_cli_flag.
enum class CliResult {
  kApplied,   ///< Flag recognized, value parsed, cfg updated.
  kBadValue,  ///< Flag recognized but its value did not parse.
  kUnknown,   ///< Not a SearchConfig flag (caller's problem).
};

/// Applies one `--key=value` (or boolean `--key`) CLI argument. This is
/// the single flag surface for scenario + search knobs; wfd_check layers
/// only mode/output flags (--exhaustive, --json, --save, ...) on top.
CliResult apply_cli_flag(SearchConfig& cfg, const std::string& arg);

/// The flag reference for usage text, one line per flag.
[[nodiscard]] std::string cli_flags_help();

/// Renders the soundness-relevant header (scenario + reduction levers)
/// as key=value lines — the shared snapshot header.
void search_header_to_text(std::ostream& out, const SearchConfig& cfg);

/// Applies one key=value line of the header. Returns false when the key
/// is not a header field; *ok reports whether the value parsed.
bool search_header_apply(SearchConfig& cfg, const std::string& key,
                         const std::string& val, bool* ok);

/// The full configuration as one JSON object (scenario + search knobs),
/// for --json reports and tooling.
[[nodiscard]] std::string config_to_json(const SearchConfig& cfg);

[[nodiscard]] std::string reduction_to_text(Reduction r);
[[nodiscard]] bool parse_reduction(const std::string& s, Reduction* out);
[[nodiscard]] std::string dependence_to_text(Dependence d);
[[nodiscard]] bool parse_dependence(const std::string& s, Dependence* out);

}  // namespace wfd::explore
