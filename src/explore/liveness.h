// The fair-cycle (lasso) layer of liveness checking.
//
// Bounded-safety exploration treats the fingerprint store as a prune
// set; liveness checking grows it into an explicit state graph. A node
// is a scenario_fingerprint (scenario.h: the plain state digest, no
// symmetry canonicalization); an edge is one executed simulator step,
// identified by the block of decisions it consumed — the oracle's
// begin_run picks on a run's first step, then the single schedule pick.
// Each node carries the liveness clause's goal bit (the clause contract
// makes it a pure function of the fingerprinted state) and the set of
// processes enabled there; each edge remembers which process it
// scheduled, and whether it was an adversary move (drop/dup/crash),
// which runs no process code and never discharges a fairness
// obligation.
//
// When the tree is exhausted under the liveness validate() rules
// (reduction none, no symmetry, fingerprints on), the graph is the
// complete transition system of the scenario restricted to the horizon:
// every reachable node's full menu was branched at its first visit, and
// a fingerprint prune is an exact merge into an already-expanded node.
// Nodes whose futures were cut by the horizon are marked truncated; a
// "no fair cycle" verdict is exact on the explored graph and silent
// only about what lies beyond truncated nodes.
//
// Fairness is twofold. (1) Weak process fairness over scheduling: an
// infinite unrolling of a cycle is fair only if every process enabled
// in the cycle is scheduled in it (under the liveness rules every alive
// process always has at least a lambda move, so enabled sets are
// constant along a cycle). (2) Communication fairness at directed
// channel granularity, the graph shadow of the quasi-reliable channel
// assumption: a cycle that keeps some channel's pending delivery
// continuously enabled but never delivers a message on that channel
// starves an in-flight message forever — the receiver keeps taking
// steps past it — and is discarded as unfair. Deliverability is an
// n×n bitset over (sender, receiver) pairs (bit sender*8 + receiver;
// n ≤ 8 enforced by validate()), so a cycle that starves one sender's
// channel while serving another sender's messages to the same receiver
// is correctly rejected.
//
// Crash-composed liveness: injected crash edges carry no fairness
// credit and — because fault budgets decrease monotonically and are
// fingerprinted — can never lie on a cycle, so every crash sits in the
// lasso's stem. The oracle re-picks its static Ω leader / Σ quorum at
// each crash (choice_oracle.cpp), so the history along any infinite
// unrolling is a legal converged limit history of the final crash set.
//
// find_fair_lasso runs the classic SCC refinement: compute SCCs,
// discard those in which some enabled process is never scheduled by an
// internal non-fault edge (deleting their nodes and re-deriving SCCs —
// in general such an SCC may still contain a smaller fair one), discard
// wholesale those violating delivery fairness (every sub-SCC inherits
// the continuously-enabled obligation and has no delivering edge
// either, so no refinement can save them), and report a surviving fair
// SCC containing a goal-false node. The checked property is <>[]goal: a
// fair cycle visiting a goal-false node infinitely often refutes it.
//
// The witness is a replayable lasso — a stem decision log from the
// initial state to the cycle and a loop decision log that closes back
// on the cycle-entry fingerprint while scheduling every enabled
// process and serving every obligated channel. Recorded edge decisions
// are *indices into per-state menus*, and delivery menus at a
// fingerprint can order message ids differently depending on the path
// that reached it, so the lasso is concretized by probing: each route
// step is pinned by replaying a candidate decision block and checking
// that the landed fingerprint AND edge identity (process, channel,
// fault bit) match the route's next hop — recorded tuples first, then
// a rescan of the leading schedule index over the actual menu width at
// the probed state. Everything here is deterministic given the graph,
// and the graph is merged in canonical slot order — so the reported
// lasso is identical at any --threads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "explore/scenario.h"
#include "explore/types.h"
#include "sim/choice.h"

namespace wfd::explore {

/// Row stride of the channel bitset: bit sender*stride + receiver in a
/// single uint64_t, so liveness checking requires n ≤ kLiveChannelStride
/// (validate() rejects larger instances).
inline constexpr int kLiveChannelStride = 8;

/// The channel bit for a (sender, receiver) pair.
[[nodiscard]] inline constexpr std::uint64_t live_channel_bit(
    ProcessId sender, ProcessId receiver) {
  return std::uint64_t{1}
         << (sender * kLiveChannelStride + receiver);
}

/// One recorded transition: the decision block the step consumed, the
/// destination fingerprint, the process the step ran.
struct LiveGraphEdge {
  sim::DecisionLog choices;
  std::uint64_t dst = 0;
  ProcessId sched = kNoProcess;
  /// Sender of the delivered message (deliver == true); kNoProcess for
  /// λ/start/fault edges. (sender, sched) is the directed channel the
  /// delivery serves.
  ProcessId sender = kNoProcess;
  bool fault = false;    ///< Adversary move: no fairness credit.
  bool deliver = false;  ///< The step delivered a message to `sched`.
};

/// Per-node bookkeeping, keyed by state fingerprint in LiveGraph.
struct LiveGraphNode {
  bool goal = false;          ///< The liveness clause's goal bit here.
  std::uint64_t enabled = 0;  ///< Processes with a move in the menu here.
  /// Directed channels with a pending message delivery in the menu here
  /// (bit live_channel_bit(sender, receiver)) — a pure function of the
  /// fingerprinted state (the in-flight multiset and the crash set are
  /// both encoded), like `goal`.
  std::uint64_t deliverable = 0;
  bool expanded = false;      ///< At least one outgoing step recorded.
  bool truncated = false;     ///< Some run was cut by the horizon here.
  std::vector<LiveGraphEdge> edges;  ///< First-recorded order, deduped.
};

/// Insertion-ordered fingerprint-keyed state graph. Units record into
/// private overlays; the wave barrier merges them in canonical slot
/// order, so the committed insertion order — and everything the
/// fair-cycle search derives from it — is thread-count independent.
struct LiveGraph {
  std::vector<std::uint64_t> order;  ///< Fingerprints, insertion order.
  std::unordered_map<std::uint64_t, LiveGraphNode> nodes;
  /// The initial state (computed before the first step, which precedes
  /// the oracle's begin_run picks — identical across runs).
  std::uint64_t root = 0;
  bool have_root = false;

  /// The node for `fp`, appending it to the insertion order when new.
  LiveGraphNode& at(std::uint64_t fp) {
    const auto [it, fresh] = nodes.try_emplace(fp);
    if (fresh) order.push_back(fp);
    return it->second;
  }

  [[nodiscard]] std::uint64_t edge_count() const {
    std::uint64_t total = 0;
    for (const auto& [fp, n] : nodes) {
      total += static_cast<std::uint64_t>(n.edges.size());
    }
    return total;
  }

  [[nodiscard]] std::uint64_t truncated_count() const {
    std::uint64_t total = 0;
    for (const auto& [fp, n] : nodes) {
      if (n.truncated) ++total;
    }
    return total;
  }
};

/// Record `e` on `n` unless an edge with the same decision block exists
/// (replayed prefixes re-execute their transitions every run; the
/// decision block identifies the transition).
void add_live_edge(LiveGraphNode& n, LiveGraphEdge e);

/// Fold a unit overlay into the committed graph. Caller supplies the
/// canonical order (barrier slot order) for determinism.
void merge_live_graph(LiveGraph& into, const LiveGraph& from);

/// Post-exhaustion search (see the file comment). Returns a replayable
/// lasso counterexample — decisions = stem, loop = the repeatable block
/// — when some fair cycle avoids the goal; nullopt when the explored
/// graph is fair-cycle-free. `scenario` must be the options the graph
/// was explored with; probes may raise max_steps (the horizon bounds
/// neither menus nor fingerprints under the liveness rules, so the
/// probed transitions are the recorded ones even past the original
/// horizon). If a route hop cannot be concretized by probing — which
/// indicates a graph/scenario mismatch, never a sound "no cycle" —
/// the function returns nullopt and, when `concretize_error` is
/// non-null, fills it with a structured diagnostic (the partial lasso
/// pinned so far plus the scenario header) instead of aborting.
[[nodiscard]] std::optional<Counterexample> find_fair_lasso(
    const LiveGraph& g, const ScenarioOptions& scenario,
    std::string* concretize_error = nullptr);

}  // namespace wfd::explore
