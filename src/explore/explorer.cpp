#include "explore/explorer.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "sim/scheduler.h"

namespace wfd::explore {

namespace {

bool contains(const std::vector<std::uint64_t>& v, std::uint64_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

/// Walks the recorded path, replaying frames below frames_.size() and
/// materializing new ones past the end. A run is the unique extension of
/// the current path in which every fresh choice point takes its first
/// eligible option.
class Explorer::DfsSource : public sim::ChoiceSource {
 public:
  explicit DfsSource(Explorer& owner) : owner_(&owner) {}

  std::size_t choose(sim::ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override {
    Explorer& ex = *owner_;
    WFD_CHECK_MSG(labels.size() >= 2, "forced move reached choose()");
    if (pos_ < ex.frames_.size()) {
      Frame& f = ex.frames_[pos_];
      WFD_CHECK_MSG(f.kind == kind && f.labels == labels,
                    "scenario is not a pure function of its decisions");
      ++pos_;
      return f.chosen;
    }
    Frame f;
    f.kind = kind;
    f.labels = labels;
    if (ex.opt_.order_seed != 0) {
      f.start = static_cast<std::uint32_t>(
          mix(ex.opt_.order_seed ^ ex.stats_.nodes) % labels.size());
    }
    if (kind == sim::ChoiceKind::kSchedule && ex.opt_.sleep_sets) {
      // Inherit the sleep set along the edge from the nearest schedule
      // ancestor g: everything asleep or already explored at g stays
      // asleep here unless it involves the process that just acted.
      for (auto it = ex.frames_.rbegin(); it != ex.frames_.rend(); ++it) {
        if (it->kind != sim::ChoiceKind::kSchedule) continue;
        const Frame& g = *it;
        const ProcessId acted =
            sim::ReplayScheduler::label_process(g.labels[g.chosen]);
        for (const auto* set : {&g.sleep, &g.explored}) {
          for (std::uint64_t a : *set) {
            if (sim::ReplayScheduler::label_process(a) != acted &&
                !contains(f.sleep, a)) {
              f.sleep.push_back(a);
            }
          }
        }
        break;
      }
    }
    const std::optional<std::uint32_t> first =
        ex.next_choice(f, /*counting_skips=*/true);
    if (first.has_value()) {
      f.chosen = *first;
    } else {
      // Every option is asleep: the subtree is covered elsewhere. Pick
      // an arbitrary option to satisfy the caller and have the explorer
      // abort the run right after this step.
      f.blocked = true;
      f.chosen = 0;
      ex.run_blocked_ = true;
    }
    ++ex.stats_.nodes;
    ex.frames_.push_back(std::move(f));
    ++pos_;
    return ex.frames_.back().chosen;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  Explorer* owner_;
  std::size_t pos_ = 0;
};

Explorer::Explorer(ScenarioBuilder build, ExplorerOptions opt)
    : build_(std::move(build)), opt_(std::move(opt)) {
  WFD_CHECK(build_ != nullptr);
}

std::optional<std::uint32_t> Explorer::next_choice(Frame& f,
                                                   bool counting_skips) {
  const std::size_t k = f.labels.size();
  for (std::size_t i = 0; i < k; ++i) {
    const auto idx = static_cast<std::uint32_t>((f.start + i) % k);
    const std::uint64_t label = f.labels[idx];
    if (contains(f.explored, label)) continue;
    if (contains(f.sleep, label)) {
      if (counting_skips) ++stats_.sleep_skips;
      continue;
    }
    return idx;
  }
  return std::nullopt;
}

bool Explorer::backtrack() {
  while (!frames_.empty()) {
    Frame& f = frames_.back();
    if (!f.blocked) f.explored.push_back(f.labels[f.chosen]);
    const std::optional<std::uint32_t> next =
        next_choice(f, /*counting_skips=*/true);
    if (next.has_value()) {
      f.chosen = *next;
      f.blocked = false;
      return true;
    }
    frames_.pop_back();
  }
  return false;
}

sim::DecisionLog Explorer::decisions() const {
  sim::DecisionLog log;
  log.reserve(frames_.size());
  for (const Frame& f : frames_) log.push_back(f.chosen);
  return log;
}

ExploreReport Explorer::run() {
  frames_.clear();
  fps_.clear();
  stats_ = ExploreStats{};
  ExploreReport rep;

  while (true) {
    // One re-execution: replay the prefix, extend to a halt.
    DfsSource source(*this);
    run_blocked_ = false;
    Scenario sc = build_(source);
    std::optional<Violation> violation;
    std::uint64_t run_steps = 0;
    while (!run_blocked_ && sc.sim->step()) {
      ++run_steps;
      if (run_blocked_) break;
      for (auto& inv : sc.invariants) {
        violation = inv->check(*sc.sim);
        if (violation.has_value()) break;
      }
      if (violation.has_value()) break;
      if (opt_.fingerprint) {
        const std::uint64_t fp = opt_.fingerprint(*sc.sim);
        const std::uint64_t depth = source.pos();
        auto [it, fresh] = fps_.emplace(fp, depth);
        if (!fresh && it->second <= depth) {
          ++stats_.fp_prunes;
          break;
        }
        if (!fresh) it->second = depth;
      }
    }
    stats_.steps += run_steps;
    ++stats_.runs;
    if (violation.has_value()) {
      ++stats_.violations;
      if (!rep.cex.has_value()) {
        rep.cex = Counterexample{decisions(), *violation, run_steps};
      }
      if (opt_.stop_at_first) break;
    }
    if (stats_.nodes >= opt_.max_states) break;
    if (opt_.max_runs != 0 && stats_.runs >= opt_.max_runs) break;
    if (!backtrack()) {
      stats_.exhausted = true;
      break;
    }
  }
  rep.stats = stats_;
  return rep;
}

}  // namespace wfd::explore
