#include "explore/explorer.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "explore/state_store.h"
#include "inject/fault_plan.h"
#include "sim/dependence.h"
#include "sim/scheduler.h"
#include "sim/state_encoder.h"

namespace wfd::explore {

namespace {

bool contains(const std::vector<std::uint64_t>& v, std::uint64_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

/// Walks the recorded path, replaying frames below frames_.size() and
/// materializing new ones past the end. A run is the unique extension of
/// the current path in which every fresh choice point takes its first
/// eligible option.
class Explorer::DfsSource : public sim::ChoiceSource {
 public:
  explicit DfsSource(Explorer& owner) : owner_(&owner) {}

  std::size_t choose(sim::ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels) override {
    Explorer& ex = *owner_;
    WFD_CHECK_MSG(labels.size() >= 2, "forced move reached choose()");
    if (pos_ < ex.frames_.size()) {
      Frame& f = ex.frames_[pos_];
      WFD_CHECK_MSG(f.kind == kind && f.labels == labels,
                    "scenario is not a pure function of its decisions");
      ++pos_;
      return f.chosen;
    }
    Frame f;
    f.kind = kind;
    f.labels = labels;
    if (ex.opt_.order_seed != 0) {
      f.start = static_cast<std::uint32_t>(
          mix(ex.opt_.order_seed ^ ex.stats_.nodes) % labels.size());
    }
    const bool dpor_schedule = kind == sim::ChoiceKind::kSchedule &&
                               ex.opt_.reduction == Reduction::kDpor;
    if (kind == sim::ChoiceKind::kSchedule &&
        ex.opt_.reduction != Reduction::kNone) {
      // Inherit the sleep set along the edge from the nearest schedule
      // ancestor g: everything asleep or already explored at g stays
      // asleep here unless it is dependent with the action that just
      // ran. Under kProcess that means "same process acted"; under
      // kContent (kDpor only — kSleepSets stays the unchanged ablation
      // baseline) a sleeping delivery additionally survives a commuting
      // delivery to the same process.
      for (auto it = ex.frames_.rbegin(); it != ex.frames_.rend(); ++it) {
        if (it->kind != sim::ChoiceKind::kSchedule) continue;
        const Frame& g = *it;
        const std::uint64_t executed = g.labels[g.chosen];
        // Fault actions (crash/drop/duplicate) live outside the
        // happens-before framework: a crash rewrites the failure pattern
        // (everyone's menus), a drop/dup rewrites the shared message
        // buffer. Treat them as dependent with everything — inherit no
        // sleep across a fault edge, and never put a fault label to
        // sleep.
        if (sim::ReplayScheduler::label_is_fault(executed)) break;
        const ProcessId acted =
            sim::ReplayScheduler::label_process(executed);
        for (const auto* set : {&g.sleep, &g.explored}) {
          for (std::uint64_t a : *set) {
            if (sim::ReplayScheduler::label_is_fault(a)) continue;
            if (contains(f.sleep, a)) continue;
            bool indep = sim::ReplayScheduler::label_process(a) != acted;
            if (!indep && dpor_schedule) {
              const std::uint64_t am = sim::ReplayScheduler::label_message(a);
              const std::uint64_t em =
                  sim::ReplayScheduler::label_message(executed);
              if (am != 0 && em != 0 && am != em) {
                const auto ai = ex.msgs_.find(am);
                const auto ei = ex.msgs_.find(em);
                indep = ai != ex.msgs_.end() && ei != ex.msgs_.end() &&
                        ex.deliveries_independent(ai->second, ei->second);
              }
            }
            if (indep) f.sleep.push_back(a);
          }
        }
        break;
      }
    }
    const std::optional<std::uint32_t> first =
        dpor_schedule ? ex.dpor_default_choice(f)
                      : ex.next_choice(f, /*counting_skips=*/true);
    if (first.has_value()) {
      f.chosen = *first;
      // Under DPOR the frame starts out owing only its default child;
      // race insertion grows the debt.
      if (dpor_schedule) {
        f.backtrack.push_back(f.labels[f.chosen]);
        // Race insertion only reasons about deliveries and lambdas, so
        // fault labels would never enter a backtrack set dynamically:
        // any frame whose menu offers a fault is fully expanded instead
        // (soundness over reduction — the fault subtrees, and every
        // ordering against them, are enumerated outright).
        if (std::any_of(labels.begin(), labels.end(),
                        sim::ReplayScheduler::label_is_fault)) {
          for (std::uint64_t l : labels) ex.add_backtrack(f, l);
        }
      }
    } else {
      // Every option is asleep: the subtree is covered elsewhere. Pick
      // an arbitrary option to satisfy the caller and have the explorer
      // abort the run right after this step.
      f.blocked = true;
      f.chosen = 0;
      ex.run_blocked_ = true;
    }
    ++ex.stats_.nodes;
    ex.frames_.push_back(std::move(f));
    ++pos_;
    return ex.frames_.back().chosen;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  Explorer* owner_;
  std::size_t pos_ = 0;
};

Explorer::Explorer(ScenarioBuilder build, ExplorerOptions opt)
    : build_(std::move(build)), opt_(std::move(opt)) {
  WFD_CHECK(build_ != nullptr);
}

std::optional<std::uint32_t> Explorer::next_choice(Frame& f,
                                                   bool counting_skips) {
  const std::size_t k = f.labels.size();
  const bool dpor_schedule = f.kind == sim::ChoiceKind::kSchedule &&
                             opt_.reduction == Reduction::kDpor;
  for (std::size_t i = 0; i < k; ++i) {
    const auto idx = static_cast<std::uint32_t>((f.start + i) % k);
    const std::uint64_t label = f.labels[idx];
    if (dpor_schedule && !contains(f.backtrack, label)) continue;
    if (contains(f.explored, label)) continue;
    if (contains(f.sleep, label)) {
      if (counting_skips) ++stats_.sleep_skips;
      continue;
    }
    return idx;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> Explorer::dpor_default_choice(Frame& f) {
  // Round-robin fairness: prefer the successor of the process that acted
  // at the nearest schedule ancestor. A greedy "first label" default
  // would keep stepping process 0 and push everyone else's turns into
  // backtrack churn; rotating actors keeps default runs representative
  // and the backtrack sets small.
  int pref = 0;
  if (opt_.order_seed != 0) {
    pref = static_cast<int>(mix(opt_.order_seed ^ stats_.nodes) %
                            kMaxProcesses);
  } else {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind != sim::ChoiceKind::kSchedule) continue;
      pref = (sim::ReplayScheduler::label_process(it->labels[it->chosen]) +
              1) %
             kMaxProcesses;
      break;
    }
  }
  std::optional<std::uint32_t> best;
  std::uint64_t bf = 0, bd = 0, bl = 0, bm = 0;
  for (std::uint32_t i = 0; i < f.labels.size(); ++i) {
    const std::uint64_t label = f.labels[i];
    if (contains(f.explored, label)) continue;
    if (contains(f.sleep, label)) {
      ++stats_.sleep_skips;
      continue;
    }
    const int p = sim::ReplayScheduler::label_process(label);
    const std::uint64_t msg = sim::ReplayScheduler::label_message(label);
    const auto d =
        static_cast<std::uint64_t>((p - pref + kMaxProcesses) % kMaxProcesses);
    const std::uint64_t lam = (msg == 0) ? 1 : 0;  // Deliveries first.
    // Faults rank dead last: the default run makes progress, fault
    // subtrees are visited on backtrack.
    const std::uint64_t flt =
        sim::ReplayScheduler::label_is_fault(label) ? 1 : 0;
    if (!best.has_value() || flt < bf ||
        (flt == bf &&
         (d < bd || (d == bd && (lam < bl || (lam == bl && msg < bm)))))) {
      best = i;
      bf = flt;
      bd = d;
      bl = lam;
      bm = msg;
    }
  }
  return best;
}

bool Explorer::add_backtrack(Frame& f, std::uint64_t label) {
  if (contains(f.backtrack, label)) return false;
  f.backtrack.push_back(label);
  ++stats_.backtrack_points;
  return true;
}

bool Explorer::insert_backtrack(Frame& f, ProcessId receiver,
                                std::uint64_t msg, ProcessId sender) {
  const std::uint64_t want = sim::ReplayScheduler::label(receiver, msg);
  if (contains(f.labels, want)) return add_backtrack(f, want);
  // Oldest-per-channel delivery hid the exact message behind an older
  // one from the same sender; delivering that one is the first move of
  // every schedule that delivers `msg` here, so it stands in. Fault
  // labels never stand in for a delivery (dropping the older copy is not
  // a move toward delivering `msg`).
  for (std::uint64_t label : f.labels) {
    if (sim::ReplayScheduler::label_is_fault(label)) continue;
    const std::uint64_t m = sim::ReplayScheduler::label_message(label);
    if (m == 0 || sim::ReplayScheduler::label_process(label) != receiver) {
      continue;
    }
    const auto it = msgs_.find(m);
    if (it != msgs_.end() && it->second.sender == sender) {
      return add_backtrack(f, label);
    }
  }
  // Unreachable in practice — the message was pending, so its channel
  // offers some delivery — but degrade to full expansion, not silence.
  bool any = false;
  for (std::uint64_t label : f.labels) any = add_backtrack(f, label) || any;
  return any;
}

void Explorer::expand_path_on_prune() {
  for (Frame& f : frames_) {
    if (f.kind != sim::ChoiceKind::kSchedule) continue;
    for (std::uint64_t label : f.labels) add_backtrack(f, label);
  }
}

bool Explorer::deliveries_independent(const MsgInfo& a, const MsgInfo& b) {
  if (opt_.dependence != Dependence::kContent) return false;
  if (a.payload == nullptr || b.payload == nullptr) return false;
  // Same-sender copies with identical content: the channel delivers
  // interchangeable messages, so either order is the same execution.
  if (a.sender == b.sender && a.digest.has_value() &&
      b.digest.has_value() && *a.digest == *b.digest) {
    return true;
  }
  return sim::payloads_commute(*a.payload, *b.payload, &conservative_);
}

void Explorer::race_delivery(ProcessId p, std::uint64_t msg,
                             const MsgInfo& mi) {
  const auto pi = static_cast<std::size_t>(p);
  const std::uint64_t send_knows_p = mi.clock[pi];
  const auto& events = proc_events_[pi];
  for (std::size_t j = events.size(); j-- > 0;) {
    const StepRec& ej = events[j];
    // All three guards are monotone going backward, so they end the scan.
    if (mi.sent_time >= ej.time) break;  // Not yet sent: no race.
    if (send_knows_p >= j + 1) break;    // Send happens-after e_j.
    if (ej.is_start) break;              // No delivery before start.
    // Content-aware dependence: a commuting pair of deliveries is not a
    // race. Keep scanning — msg may still race with an earlier event.
    if (ej.delivered != 0) {
      const auto eit = msgs_.find(ej.delivered);
      if (eit != msgs_.end() &&
          deliveries_independent(mi, eit->second)) {
        ++stats_.commute_skips;
        continue;
      }
    } else if (ej.tick_inert && opt_.dependence == Dependence::kContent &&
               mi.payload != nullptr && mi.payload->tick_insensitive()) {
      // An inert lambda (every module tick a declared no-op) commutes
      // with a tick-insensitive delivery: neither side observes the
      // one-step time shift the reorder causes.
      ++stats_.commute_skips;
      continue;
    }
    if (ej.frame >= 0 &&
        insert_backtrack(frames_[static_cast<std::size_t>(ej.frame)], p, msg,
                         mi.sender)) {
      ++stats_.hb_races;
    }
  }
}

void Explorer::race_lambda(ProcessId p, bool inert) {
  const auto& events = proc_events_[static_cast<std::size_t>(p)];
  const bool skip_inert = inert && opt_.dependence == Dependence::kContent;
  for (std::size_t j = events.size(); j-- > 0;) {
    const StepRec& ej = events[j];
    if (ej.is_start) return;
    if (ej.delivered == 0) {
      // λ after λ needs no backtrack (same label, same schedule) — but an
      // inert lambda commutes with earlier inert lambdas, so keep looking
      // for the delivery it may still race with.
      if (skip_inert && ej.tick_inert) continue;
      return;
    }
    if (skip_inert) {
      const auto eit = msgs_.find(ej.delivered);
      if (eit != msgs_.end() && eit->second.payload != nullptr &&
          eit->second.payload->tick_insensitive()) {
        ++stats_.commute_skips;
        continue;
      }
    }
    if (ej.frame >= 0 &&
        add_backtrack(frames_[static_cast<std::size_t>(ej.frame)],
                      sim::ReplayScheduler::label(p, 0))) {
      ++stats_.hb_races;
    }
    return;
  }
}

void Explorer::end_of_run_races(sim::Simulator& sim) {
  sim.network().for_each_pending([this](const sim::Envelope& env) {
    const auto mit = msgs_.find(env.id);
    if (mit == msgs_.end()) return;  // Sent before tracking started.
    race_delivery(env.to, env.id, mit->second);
  });
  for (std::size_t p = 0; p < proc_events_.size(); ++p) {
    const auto pid = static_cast<ProcessId>(p);
    race_lambda(pid, sim.process_tick_noop(pid));
  }
}

void Explorer::observe_step(sim::Simulator& sim, int frame,
                            std::uint64_t step_time) {
  const sim::LastStep& ls = sim.last_step();
  if (ls.p == kNoProcess) return;
  const auto p = static_cast<std::size_t>(ls.p);
  if (p >= proc_events_.size()) return;

  if (ls.action != sim::StepChoice::Action::kDeliver) {
    // An adversary move. Its frame is fully expanded (see choose()), so
    // no race insertion is needed; record it as an opaque event of the
    // affected process — race scans treat it as dependent, which is the
    // conservative direction.
    std::vector<std::uint64_t>& cp = clock_[p];
    cp[p] = proc_events_[p].size() + 1;
    proc_events_[p].push_back(
        StepRec{frame, step_time, 0, false, false});
    if (ls.action == sim::StepChoice::Action::kDup && ls.dup_id != 0) {
      // The duplicate inherits the original's send metadata — payload,
      // digest, sender and (crucially, for the conservative direction)
      // the sender's clock — but exists only from this step on.
      const auto mit = msgs_.find(ls.fault_msg);
      if (mit != msgs_.end()) {
        MsgInfo info = mit->second;
        info.sent_time = step_time;
        msgs_.emplace(ls.dup_id, std::move(info));
      }
    }
    prev_sent_ = sim.network().total_sent();
    return;
  }

  // Race detection runs before this event joins the clocks: it compares
  // the *delivery* against the acting process's earlier events. Two
  // steps of different processes always commute (a step consumes only
  // its own pending messages and appends sends), so dependence — and
  // hence every race — is within one process's event sequence; under
  // Dependence::kContent, race_delivery further exempts same-process
  // delivery pairs whose payloads commute.
  if (!ls.was_start && ls.delivered != 0) {
    const auto mit = msgs_.find(ls.delivered);
    if (mit != msgs_.end()) race_delivery(ls.p, ls.delivered, mit->second);
  } else if (!ls.was_start) {
    race_lambda(ls.p, ls.tick_noop);
  }

  // Fold the event into the happens-before state.
  std::vector<std::uint64_t>& cp = clock_[p];
  if (ls.delivered != 0) {
    const auto mit = msgs_.find(ls.delivered);
    if (mit != msgs_.end()) {
      const auto& mc = mit->second.clock;
      for (std::size_t q = 0; q < cp.size(); ++q) {
        cp[q] = std::max(cp[q], mc[q]);
      }
    }
  }
  cp[p] = proc_events_[p].size() + 1;
  proc_events_[p].push_back(
      StepRec{frame, step_time, ls.delivered, ls.was_start, ls.tick_noop});

  // Every message sent during this step carries the sender's clock;
  // under kContent also its payload and content digest, so dependence
  // can be decided at race time without the (possibly consumed)
  // envelope.
  const std::uint64_t total = sim.network().total_sent();
  for (std::uint64_t id = prev_sent_ + 1; id <= total; ++id) {
    MsgInfo info{ls.p, step_time, cp, nullptr, std::nullopt};
    if (opt_.dependence == Dependence::kContent) {
      info.payload = sim.network().get(id).payload;
      if (info.payload != nullptr) {
        if (info.payload->kind().empty()) {
          conservative_.insert(info.payload->identity());
        }
        sim::StateEncoder enc;
        info.payload->encode_state(enc);
        if (enc.complete()) info.digest = enc.digest();
      }
    }
    msgs_.emplace(id, std::move(info));
  }
  prev_sent_ = total;
}

bool Explorer::backtrack() {
  while (!frames_.empty()) {
    Frame& f = frames_.back();
    if (!f.blocked) f.explored.push_back(f.labels[f.chosen]);
    const std::optional<std::uint32_t> next =
        next_choice(f, /*counting_skips=*/true);
    if (next.has_value()) {
      f.chosen = *next;
      f.blocked = false;
      return true;
    }
    frames_.pop_back();
  }
  return false;
}

sim::DecisionLog Explorer::decisions() const {
  sim::DecisionLog log;
  log.reserve(frames_.size());
  for (const Frame& f : frames_) log.push_back(f.chosen);
  return log;
}

void Explorer::restore(const StateSnapshot& snap) {
  frames_.clear();
  frames_.reserve(snap.frames.size());
  for (const FrameState& fs : snap.frames) {
    Frame f;
    f.kind = fs.kind;
    f.labels = fs.labels;
    f.chosen = fs.chosen;
    f.start = fs.start;
    f.sleep = fs.sleep;
    f.explored = fs.explored;
    f.backtrack = fs.backtrack;
    f.blocked = fs.blocked;
    frames_.push_back(std::move(f));
  }
  fps_.clear();
  fps_.reserve(snap.fingerprints.size());
  for (const auto& [fp, t] : snap.fingerprints) fps_.emplace(fp, t);
  stats_ = snap.stats;
  conservative_ = snap.conservative_payloads;
  path_pending_ = snap.path_pending;
  resume_generation_ = snap.resume_generation;
}

StateSnapshot Explorer::make_snapshot() const {
  StateSnapshot snap;
  snap.scenario = opt_.scenario;
  snap.reduction = opt_.reduction;
  snap.dependence = opt_.dependence;
  snap.state_fingerprints = opt_.state_fingerprints;
  snap.order_seed = opt_.order_seed;
  snap.resume_generation = resume_generation_ + 1;
  snap.path_pending = path_pending_;
  snap.stats = stats_;
  snap.conservative_payloads = conservative_;
  snap.frames.reserve(frames_.size());
  for (const Frame& f : frames_) {
    FrameState fs;
    fs.kind = f.kind;
    fs.labels = f.labels;
    fs.chosen = f.chosen;
    fs.start = f.start;
    fs.sleep = f.sleep;
    fs.explored = f.explored;
    fs.backtrack = f.backtrack;
    fs.blocked = f.blocked;
    snap.frames.push_back(std::move(fs));
  }
  snap.fingerprints.assign(fps_.begin(), fps_.end());
  // Deterministic files: equal stores serialize byte-identically.
  std::sort(snap.fingerprints.begin(), snap.fingerprints.end());
  return snap;
}

void Explorer::rollback_run(std::size_t replay_len,
                            const ExploreStats& run_start_stats) {
  frames_.resize(replay_len);
  for (auto it = fp_log_.rbegin(); it != fp_log_.rend(); ++it) {
    if (it->second.has_value()) {
      fps_[it->first] = *it->second;
    } else {
      fps_.erase(it->first);
    }
  }
  stats_ = run_start_stats;
}

Coverage coverage(const ExploreStats& stats) {
  if (!stats.exhausted) return Coverage::kBudget;
  return stats.fp_prunes > 0 ? Coverage::kModuloFingerprints
                             : Coverage::kComplete;
}

std::string coverage_name(Coverage c) {
  switch (c) {
    case Coverage::kBudget:
      return "budget";
    case Coverage::kComplete:
      return "complete";
    case Coverage::kModuloFingerprints:
      return "modulo-fingerprints";
  }
  return "unknown";
}

ExploreReport Explorer::run() {
  frames_.clear();
  fps_.clear();
  stats_ = ExploreStats{};
  conservative_.clear();
  path_pending_ = true;  // A fresh search still owes the root its run.
  cancelled_ = false;
  resume_generation_ = 0;
  ExploreReport rep;

  if (!opt_.resume_path.empty()) {
    std::string error;
    bool wrong_version = false;
    const std::optional<StateSnapshot> snap =
        load_snapshot(opt_.resume_path, &error, &wrong_version);
    if (!snap.has_value()) {
      rep.resume_error = error;
      // A well-formed snapshot of another format version is an
      // incompatibility (like a scenario mismatch), not a corrupt file.
      rep.resume_rejected = wrong_version;
      return rep;
    }
    const std::string why = resume_mismatch(*snap, opt_.scenario, opt_);
    if (!why.empty()) {
      rep.resume_error = why;
      rep.resume_rejected = true;
      return rep;
    }
    restore(*snap);
    rep.resumed = true;
  }
  rep.resume_generation = resume_generation_;
  const std::uint64_t base_nodes = stats_.nodes;

  // Continue exactly where the stored search stopped. A snapshot taken
  // at a budget break holds a fully executed path, so the next move is
  // the backtrack flip the uninterrupted search would have made; a
  // pending path (fresh root, or a run abandoned by cancel) is
  // re-executed first instead.
  bool done = stats_.exhausted;
  if (!done && !path_pending_) {
    if (backtrack()) {
      path_pending_ = true;
    } else {
      stats_.exhausted = true;
      done = true;
    }
  }

  while (!done) {
    if (cancel_requested()) {
      cancelled_ = true;
      break;  // Path untouched since the last completed run: stays pending.
    }
    // One re-execution: replay the prefix, extend to a halt. States
    // reached while source.pos() is still inside the replayed prefix are
    // re-visits of the previous run's own states — invisible to
    // fingerprint pruning, or every run would prune itself at step one.
    const std::size_t replay_len = frames_.size();
    const ExploreStats run_start_stats = stats_;
    fp_log_.clear();
    DfsSource source(*this);
    run_blocked_ = false;
    Scenario sc = build_(source);
    const bool dpor = opt_.reduction == Reduction::kDpor;
    if (dpor) {
      const auto n = static_cast<std::size_t>(sc.sim->n());
      proc_events_.assign(n, {});
      clock_.assign(n, std::vector<std::uint64_t>(n, 0));
      msgs_.clear();
      prev_sent_ = sc.sim->network().total_sent();
    }
    std::optional<Violation> violation;
    std::uint64_t run_steps = 0;
    while (!run_blocked_) {
      // Once per step, so at least once per choice-point expansion.
      if (cancel_requested()) {
        cancelled_ = true;
        break;
      }
      const std::size_t pos_before = source.pos();
      if (!sc.sim->step()) break;
      ++run_steps;
      if (run_blocked_) break;
      if (dpor) {
        // The schedule frame consumed by this step, if the step was an
        // actual choice (forced moves never reach choose()).
        int frame = -1;
        for (std::size_t j = pos_before; j < source.pos(); ++j) {
          if (frames_[j].kind == sim::ChoiceKind::kSchedule) {
            frame = static_cast<int>(j);
          }
        }
        observe_step(*sc.sim, frame, run_steps);
      }
      for (auto& inv : sc.invariants) {
        violation = inv->check(*sc.sim);
        if (violation.has_value()) break;
      }
      if (violation.has_value()) break;

      if (source.pos() < replay_len) continue;  // Still replaying.
      std::optional<std::uint64_t> fp;
      if (opt_.state_fingerprints) {
        sim::StateEncoder enc;
        sc.sim->encode_state(enc);
        std::size_t i = 0;
        for (const auto& inv : sc.invariants) {
          enc.push("invariant", i++);
          inv->encode_state(enc);
          enc.pop();
        }
        if (enc.complete()) fp = enc.digest();
      }
      if (fp.has_value()) {
        // Keyed on sim time: the fingerprint does not fold the remaining
        // horizon, so a revisit only subsumes the earlier visit when at
        // least as much future is left (same or earlier time).
        const auto t = static_cast<std::uint64_t>(sc.sim->now());
        auto [it, fresh] = fps_.emplace(*fp, t);
        if (!fresh && it->second <= t) {
          ++stats_.fp_prunes;
          // The unexecuted suffix can no longer testify about races with
          // this path; re-arm the whole path conservatively.
          if (dpor) expand_path_on_prune();
          break;
        }
        // Log mutations while cancel is armed, so an abandoned run's
        // fingerprints can be undone — otherwise its own half-explored
        // states would prune the re-execution after a resume.
        if (opt_.cancel != nullptr) {
          fp_log_.emplace_back(
              *fp, fresh ? std::nullopt : std::optional(it->second));
        }
        if (!fresh) it->second = t;
      }
    }
    if (cancelled_) {
      rollback_run(replay_len, run_start_stats);
      break;
    }
    path_pending_ = false;
    if (dpor) end_of_run_races(*sc.sim);
    stats_.steps += run_steps;
    ++stats_.runs;
    if (const inject::FaultState* fs = sc.sim->faults()) {
      stats_.injected_crashes += static_cast<std::uint64_t>(fs->crashes());
      stats_.injected_drops += static_cast<std::uint64_t>(fs->drops());
      stats_.injected_dups += static_cast<std::uint64_t>(fs->dups());
    }
    if (violation.has_value()) {
      ++stats_.violations;
      if (!rep.cex.has_value()) {
        rep.cex = Counterexample{decisions(), *violation, run_steps};
      }
      if (opt_.stop_at_first) break;
    }
    if (stats_.nodes >= opt_.max_states) break;
    if (opt_.budget_states != 0 &&
        stats_.nodes - base_nodes >= opt_.budget_states) {
      break;
    }
    if (opt_.max_runs != 0 && stats_.runs >= opt_.max_runs) break;
    if (!backtrack()) {
      stats_.exhausted = true;
      break;
    }
    path_pending_ = true;
  }
  rep.cancelled = cancelled_;
  rep.stats = stats_;
  rep.conservative_payloads = conservative_;
  if (!opt_.save_path.empty()) {
    std::string error;
    if (!save_snapshot(opt_.save_path, make_snapshot(), &error)) {
      rep.save_error = error;
    }
  }
  return rep;
}

}  // namespace wfd::explore
