#include "explore/explorer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "explore/liveness.h"
#include "explore/state_store.h"
#include "inject/fault_plan.h"
#include "sim/dependence.h"
#include "sim/scheduler.h"
#include "sim/state_encoder.h"

namespace wfd::explore {

namespace {

bool contains(const std::vector<std::uint64_t>& v, std::uint64_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint32_t index_of(const std::vector<std::uint64_t>& labels,
                       std::uint64_t label) {
  const auto it = std::find(labels.begin(), labels.end(), label);
  WFD_CHECK_MSG(it != labels.end(), "label not in frame menu");
  return static_cast<std::uint32_t>(it - labels.begin());
}

/// Identifies a choice-tree node by hashing the (kind, chosen label)
/// edge sequence from the root — two independent mix lanes, so an
/// accidental collision between distinct paths needs to defeat 128
/// bits. Keys are recomputed from the frames on snapshot load, never
/// trusted from the wire.
using ChainKey = std::array<std::uint64_t, 2>;

constexpr ChainKey kRootKey = {0x9b1a6e3c5d4f2a07ull, 0x6f4b2d9c8e1a3f55ull};

ChainKey advance_key(const ChainKey& k, sim::ChoiceKind kind,
                     std::uint64_t label) {
  const std::uint64_t e = (static_cast<std::uint64_t>(kind) << 62) ^ label;
  return ChainKey{mix(k[0] ^ mix(e)),
                  mix(k[1] + mix(e ^ 0xd1b54a32d192ed03ull))};
}

/// One choice point on a unit's DFS path.
struct Frame {
  sim::ChoiceKind kind{};
  std::vector<std::uint64_t> labels;
  std::uint32_t chosen = 0;
  std::uint32_t start = 0;  ///< Rotation offset of the visit order.
  std::vector<std::uint64_t> sleep;     ///< Labels asleep at this node.
  std::vector<std::uint64_t> explored;  ///< Labels fully explored here.
  /// DPOR: the labels this schedule frame must (still) explore. Seeded
  /// with the default child; grown by race insertion and by the
  /// conservative prune expansion.
  std::vector<std::uint64_t> backtrack;
  bool blocked = false;  ///< Every option was asleep on arrival.
};

/// One work unit: a fixed path prefix (frames[0, floor) never change;
/// backtracking stops at floor) plus the unit's private DFS frontier
/// above it. keys[d] is the chain key of the node at depth d, kept for
/// depths 0..floor so deferred insertions and decomposition can name
/// prefix nodes without re-walking the path.
struct Unit {
  std::uint64_t id = 0;
  std::size_t floor = 0;
  /// The current path has not been executed to completion (fresh unit):
  /// continuing means re-executing it, not backtracking past it.
  bool path_pending = true;
  std::vector<Frame> frames;
  std::vector<ChainKey> keys;  ///< Size floor + 1.
};

enum class UnitOutcome {
  kExhausted,  ///< Backtrack walked back to the floor: subtree done.
  kBudget,     ///< Hit the per-wave node budget (path fully executed).
  kViolation,  ///< stop_at_first and this unit's run violated.
  kCancelled,  ///< SearchConfig::cancel observed mid-wave.
};

/// A DPOR backtrack insertion that targeted a frame below the unit's
/// floor: the prefix is shared with sibling units, so the insertion is
/// resolved against the node registry at the wave barrier instead of
/// mutating the local copy.
struct DeferredOp {
  std::size_t depth = 0;  ///< Frame index, < unit.floor.
  std::uint64_t label = 0;
  bool race = false;  ///< Counts toward hb_races when accepted.
};

struct UnitResult {
  Unit unit;
  UnitOutcome outcome = UnitOutcome::kExhausted;
  /// Stats delta of this wave's execution (merged at the barrier).
  ExploreStats delta;
  std::set<std::string> conservative;
  /// Fingerprints first seen (or seen earlier) by this unit; merged
  /// min-wise into the committed set at the barrier.
  std::unordered_map<std::uint64_t, std::uint64_t> fps_overlay;
  std::vector<DeferredOp> deferred;
  std::optional<Counterexample> cex;
  /// Liveness mode: the state-graph fragment this unit observed, merged
  /// into the committed graph at the barrier (slot order).
  LiveGraph graph;
};

/// Registry entry for a node whose frontier was split across units: the
/// labels already assigned, in assignment order (the order defines the
/// sleep-set asymmetry between sibling units — a later-assigned label's
/// unit sees every earlier one as explored, never the reverse).
struct NodeReg {
  std::vector<std::uint64_t> assigned;
};

/// Read-only shared context of one wave.
struct WaveContext {
  const SearchConfig* cfg = nullptr;
  /// ScenarioFactory::pattern_sensitive of the scenario — whether crash
  /// labels stay dependent with everything (sim/dependence.h).
  bool pattern_sensitive = false;
  /// Non-identity renamings of the scenario's symmetry group (empty
  /// unless SearchConfig::symmetry).
  const std::vector<std::vector<ProcessId>>* perms = nullptr;
  /// Fingerprints committed at the wave start (frozen for the wave).
  const std::unordered_map<std::uint64_t, std::uint64_t>* fps = nullptr;
  /// Committed node count at the wave start (order_seed mixing).
  std::uint64_t base_nodes = 0;
  /// Per-unit cap on nodes materialized this wave.
  std::uint64_t wave_budget = 0;
};

/// Send-time metadata of a message of the current run.
struct MsgInfo {
  ProcessId sender = kNoProcess;
  std::uint64_t sent_time = 0;       ///< Global step number of the send.
  std::vector<std::uint64_t> clock;  ///< Sender's vector clock at send.
  /// The payload itself (kContent only; shared with the envelope).
  sim::PayloadPtr payload;
  /// Content digest when the payload's encoding is complete (kContent
  /// only); fuels the same-sender identical-copy rule.
  std::optional<std::uint64_t> digest;
};

/// One executed event of one process within the current run.
struct StepRec {
  int frame = -1;  ///< Index into the unit's frames, -1 = forced move.
  std::uint64_t time = 0;       ///< Global step number within the run.
  std::uint64_t delivered = 0;  ///< Message id; 0 for lambda/start.
  bool is_start = false;
  /// λ step the process declared inert (Process::tick_noop): commutes
  /// with tick-insensitive deliveries under Dependence::kContent.
  bool tick_inert = false;
};

// ---- UnitEngine ------------------------------------------------------

/// Runs one unit for one wave: the classic stateless-model-checking
/// loop (re-execute the scenario along the recorded path, extend to a
/// halt, backtrack the deepest frame with an alternative) with three
/// twists — the backtrack walk stops at the unit's floor, backtrack
/// insertions below the floor are deferred to the wave barrier, and
/// fingerprint writes go to a private overlay. Everything the engine
/// reads from shared state is frozen for the wave, so a unit's result
/// is a pure function of (unit, committed state): independent of
/// thread count, scheduling and sibling units.
class UnitEngine {
 public:
  UnitEngine(ScenarioBuilder build, const WaveContext& ctx)
      : build_(std::move(build)),
        ctx_(ctx),
        cfg_(*ctx.cfg),
        liveness_(!cfg_.scenario.liveness.empty()) {}

  UnitResult run(Unit unit) {
    res_.unit = std::move(unit);
    u_ = &res_.unit;
    // A re-queued unit (budget break with the search stopping, or a
    // violation stop) holds a fully executed path: the next move is
    // the backtrack flip the uninterrupted search would have made.
    if (!u_->path_pending) {
      if (!backtrack()) {
        res_.outcome = UnitOutcome::kExhausted;
        return std::move(res_);
      }
      u_->path_pending = true;
    }
    const bool dpor = cfg_.reduction == Reduction::kDpor;
    while (true) {
      if (cancel_requested()) {
        res_.outcome = UnitOutcome::kCancelled;
        return std::move(res_);
      }
      // One re-execution: replay the prefix, extend to a halt. States
      // reached while the source is still inside the replayed prefix
      // are re-visits of the previous run's own states — invisible to
      // fingerprint pruning, or every run would prune itself at step
      // one.
      const std::size_t replay_len = u_->frames.size();
      DfsSource source(*this);
      run_blocked_ = false;
      Scenario sc = build_(source);
      if (dpor) {
        const auto n = static_cast<std::size_t>(sc.sim->n());
        proc_events_.assign(n, {});
        clock_.assign(n, std::vector<std::uint64_t>(n, 0));
        msgs_.clear();
        prev_sent_ = sc.sim->network().total_sent();
      }
      // Liveness mode: anchor the run at the initial state. The root
      // fingerprint is taken before the first step, which is where the
      // scheduler lazily starts the run (so it precedes the oracle's
      // begin_run picks and is identical across runs and units).
      const LivenessClause* goal = nullptr;
      std::uint64_t cur_fp = 0;
      if (liveness_) {
        WFD_CHECK_MSG(!sc.liveness.empty(),
                      "liveness scenario built no clause");
        goal = sc.liveness.front().get();
        const std::optional<std::uint64_t> root = fingerprint(sc);
        WFD_CHECK_MSG(root.has_value(),
                      "liveness mode requires a complete state encoding");
        if (!res_.graph.have_root) {
          res_.graph.root = *root;
          res_.graph.have_root = true;
        } else {
          WFD_CHECK_MSG(res_.graph.root == *root,
                        "initial-state fingerprint varies across runs");
        }
        res_.graph.at(*root).goal = goal->goal(*sc.sim);
        cur_fp = *root;
      }
      std::optional<Violation> violation;
      std::uint64_t run_steps = 0;
      bool pruned = false;
      while (!run_blocked_) {
        // Once per step, so at least once per choice-point expansion.
        if (cancel_requested()) {
          res_.outcome = UnitOutcome::kCancelled;
          return std::move(res_);
        }
        const std::size_t pos_before = source.pos();
        if (!sc.sim->step()) break;
        ++run_steps;
        if (run_blocked_) break;
        if (dpor) {
          // The schedule frame consumed by this step, if the step was
          // an actual choice (forced moves never reach choose()).
          int frame = -1;
          for (std::size_t j = pos_before; j < source.pos(); ++j) {
            if (u_->frames[j].kind == sim::ChoiceKind::kSchedule) {
              frame = static_cast<int>(j);
            }
          }
          observe_step(*sc.sim, frame, run_steps);
        }
        for (auto& inv : sc.invariants) {
          violation = inv->check(*sc.sim);
          if (violation.has_value()) break;
        }
        if (violation.has_value()) break;

        // Liveness mode: record every executed step's transition, even
        // while replaying — a backtrack flips the chosen option of an
        // existing frame, so the "replayed" flipped step is in fact a
        // new transition. add_live_edge dedups by decision block.
        std::optional<std::uint64_t> fp;
        if (liveness_) {
          fp = fingerprint(sc);
          WFD_CHECK_MSG(fp.has_value(),
                        "liveness mode requires a complete state encoding");
          record_transition(sc, *goal, cur_fp, *fp, pos_before, source.pos());
          cur_fp = *fp;
        }

        if (source.pos() < replay_len) continue;  // Still replaying.
        if (!cfg_.state_fingerprints) continue;
        if (!fp.has_value()) fp = fingerprint(sc);
        if (!fp.has_value()) continue;
        // Keyed on sim time: the fingerprint does not fold the
        // remaining horizon, so a revisit only subsumes the earlier
        // visit when at least as much future is left (same or earlier
        // time).
        const auto t = static_cast<std::uint64_t>(sc.sim->now());
        const std::optional<std::uint64_t> known = fps_lookup(*fp);
        // Liveness mode prunes on any revisit regardless of time:
        // states are time-free under the liveness validate() rules and
        // the first visitor had at least as much horizon left, so the
        // prune is an exact merge into an already-expanded graph node.
        if (known.has_value() && (*known <= t || liveness_)) {
          pruned = true;
          ++res_.delta.fp_prunes;
          // The unexecuted suffix can no longer testify about races
          // with this path; re-arm the whole path conservatively.
          if (dpor) expand_path_on_prune();
          break;
        }
        const auto [it, fresh] = res_.fps_overlay.emplace(*fp, t);
        if (!fresh && it->second > t) it->second = t;
      }
      // Liveness mode: a run that ended only because the horizon ran
      // out leaves its final state's future unexplored — mark it, so
      // the fair-cycle verdict can confess where it is silent. Runs
      // that halted (all alive modules done), pruned into a known node,
      // blocked, or violated are complete at cur_fp.
      if (liveness_ && !violation.has_value() && !pruned && !run_blocked_ &&
          !sc.sim->all_alive_done()) {
        res_.graph.at(cur_fp).truncated = true;
      }
      u_->path_pending = false;
      if (dpor) end_of_run_races(*sc.sim);
      res_.delta.steps += run_steps;
      ++res_.delta.runs;
      if (const inject::FaultState* fs = sc.sim->faults()) {
        res_.delta.injected_crashes +=
            static_cast<std::uint64_t>(fs->crashes());
        res_.delta.injected_drops += static_cast<std::uint64_t>(fs->drops());
        res_.delta.injected_dups += static_cast<std::uint64_t>(fs->dups());
      }
      if (violation.has_value()) {
        ++res_.delta.violations;
        if (!res_.cex.has_value()) {
          res_.cex = Counterexample{decisions(), *violation, run_steps};
        }
        if (cfg_.stop_at_first) {
          res_.outcome = UnitOutcome::kViolation;
          return std::move(res_);
        }
      }
      if (res_.delta.nodes >= ctx_.wave_budget) {
        res_.outcome = UnitOutcome::kBudget;
        return std::move(res_);
      }
      if (!backtrack()) {
        res_.outcome = UnitOutcome::kExhausted;
        return std::move(res_);
      }
      u_->path_pending = true;
    }
  }

 private:
  /// Walks the recorded path, replaying frames below frames.size() and
  /// materializing new ones past the end. A run is the unique extension
  /// of the current path in which every fresh choice point takes its
  /// first eligible option.
  class DfsSource : public sim::ChoiceSource {
   public:
    explicit DfsSource(UnitEngine& owner) : owner_(&owner) {}

    std::size_t choose(sim::ChoiceKind kind,
                       const std::vector<std::uint64_t>& labels) override {
      return owner_->choose(kind, labels, pos_);
    }

    void note_enabled(sim::ChoiceKind kind,
                      const std::vector<std::uint64_t>& labels) override {
      if (owner_->liveness_ && kind == sim::ChoiceKind::kSchedule) {
        owner_->menu_ = labels;
      }
    }

    [[nodiscard]] std::size_t pos() const { return pos_; }

   private:
    UnitEngine* owner_;
    std::size_t pos_ = 0;
  };

  std::size_t choose(sim::ChoiceKind kind,
                     const std::vector<std::uint64_t>& labels,
                     std::size_t& pos) {
    WFD_CHECK_MSG(labels.size() >= 2, "forced move reached choose()");
    std::vector<Frame>& frames = u_->frames;
    if (pos < frames.size()) {
      Frame& f = frames[pos];
      WFD_CHECK_MSG(f.kind == kind && f.labels == labels,
                    "scenario is not a pure function of its decisions");
      ++pos;
      return f.chosen;
    }
    Frame f;
    f.kind = kind;
    f.labels = labels;
    if (cfg_.order_seed != 0) {
      f.start = static_cast<std::uint32_t>(
          mix(cfg_.order_seed ^ node_counter()) % labels.size());
    }
    const bool dpor_schedule = kind == sim::ChoiceKind::kSchedule &&
                               cfg_.reduction == Reduction::kDpor;
    if (kind == sim::ChoiceKind::kSchedule &&
        cfg_.reduction != Reduction::kNone) {
      // Inherit the sleep set along the edge from the nearest schedule
      // ancestor g: everything asleep or already explored at g stays
      // asleep here unless it is dependent with the action that just
      // ran. Under kProcess that means "same process acted"; under
      // kContent (kDpor only — kSleepSets stays the unchanged ablation
      // baseline) a sleeping delivery additionally survives a
      // commuting delivery to the same process. Fault labels use the
      // sparse relation of sim/dependence.h when fault_dependence is
      // on: a crash/drop/dup commutes with steps of processes it does
      // not touch, so sleep survives fault edges and fault labels may
      // themselves sleep. With the lever off they fall back to the
      // conservative pre-relation behaviour (dependent with
      // everything: no inheritance across a fault edge, faults never
      // sleep).
      for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
        if (it->kind != sim::ChoiceKind::kSchedule) continue;
        const Frame& g = *it;
        const std::uint64_t executed = g.labels[g.chosen];
        const bool exec_fault =
            sim::ReplayScheduler::label_is_fault(executed);
        if (exec_fault && !cfg_.fault_dependence) break;
        const ProcessId acted =
            sim::ReplayScheduler::label_process(executed);
        for (const auto* set : {&g.sleep, &g.explored}) {
          for (std::uint64_t a : *set) {
            const bool a_fault = sim::ReplayScheduler::label_is_fault(a);
            if (a_fault && !cfg_.fault_dependence) continue;
            if (contains(f.sleep, a)) continue;
            bool indep;
            if (a_fault || exec_fault) {
              indep = !sim::fault_labels_dependent(a, executed,
                                                   ctx_.pattern_sensitive);
            } else {
              indep = sim::ReplayScheduler::label_process(a) != acted;
              if (!indep && dpor_schedule) {
                const std::uint64_t am =
                    sim::ReplayScheduler::label_message(a);
                const std::uint64_t em =
                    sim::ReplayScheduler::label_message(executed);
                if (am != 0 && em != 0 && am != em) {
                  const auto ai = msgs_.find(am);
                  const auto ei = msgs_.find(em);
                  indep = ai != msgs_.end() && ei != msgs_.end() &&
                          deliveries_independent(ai->second, ei->second);
                }
              }
            }
            if (indep) f.sleep.push_back(a);
          }
        }
        break;
      }
    }
    const std::optional<std::uint32_t> first =
        dpor_schedule ? dpor_default_choice(f)
                      : next_choice(f, /*counting_skips=*/true);
    const std::size_t idx = frames.size();
    if (first.has_value()) {
      f.chosen = *first;
      // Under DPOR the frame starts out owing only its default child;
      // race insertion grows the debt.
      if (dpor_schedule) {
        f.backtrack.push_back(f.labels[f.chosen]);
        // Race insertion only reasons about deliveries and lambdas, so
        // fault labels would never enter a backtrack set dynamically:
        // any frame whose menu offers a fault is fully expanded
        // instead (soundness over reduction — the fault subtrees, and
        // every ordering against them, are enumerated outright). The
        // fault_dependence lever does not relax this: it sparsifies
        // the sleep relation, which is what lets most of these
        // expanded labels be skipped as already-covered.
        if (std::any_of(labels.begin(), labels.end(),
                        sim::ReplayScheduler::label_is_fault)) {
          for (std::uint64_t l : labels) {
            if (!contains(f.backtrack, l)) {
              f.backtrack.push_back(l);
              ++res_.delta.backtrack_points;
            }
          }
        }
      }
    } else {
      // Every option is asleep: the subtree is covered elsewhere. Pick
      // an arbitrary option to satisfy the caller and have the engine
      // abort the run right after this step.
      f.blocked = true;
      f.chosen = 0;
      run_blocked_ = true;
    }
    ++res_.delta.nodes;
    frames.push_back(std::move(f));
    ++pos;
    return frames.back().chosen;
  }

  std::optional<std::uint32_t> next_choice(Frame& f, bool counting_skips) {
    const std::size_t k = f.labels.size();
    const bool dpor_schedule = f.kind == sim::ChoiceKind::kSchedule &&
                               cfg_.reduction == Reduction::kDpor;
    for (std::size_t i = 0; i < k; ++i) {
      const auto idx = static_cast<std::uint32_t>((f.start + i) % k);
      const std::uint64_t label = f.labels[idx];
      if (dpor_schedule && !contains(f.backtrack, label)) continue;
      if (contains(f.explored, label)) continue;
      if (contains(f.sleep, label)) {
        if (counting_skips) ++res_.delta.sleep_skips;
        continue;
      }
      return idx;
    }
    return std::nullopt;
  }

  std::optional<std::uint32_t> dpor_default_choice(Frame& f) {
    // Round-robin fairness: prefer the successor of the process that
    // acted at the nearest schedule ancestor. A greedy "first label"
    // default would keep stepping process 0 and push everyone else's
    // turns into backtrack churn; rotating actors keeps default runs
    // representative and the backtrack sets small.
    int pref = 0;
    if (cfg_.order_seed != 0) {
      pref = static_cast<int>(mix(cfg_.order_seed ^ node_counter()) %
                              kMaxProcesses);
    } else {
      for (auto it = u_->frames.rbegin(); it != u_->frames.rend(); ++it) {
        if (it->kind != sim::ChoiceKind::kSchedule) continue;
        pref =
            (sim::ReplayScheduler::label_process(it->labels[it->chosen]) +
             1) %
            kMaxProcesses;
        break;
      }
    }
    std::optional<std::uint32_t> best;
    std::uint64_t bf = 0, bd = 0, bl = 0, bm = 0;
    for (std::uint32_t i = 0; i < f.labels.size(); ++i) {
      const std::uint64_t label = f.labels[i];
      if (contains(f.explored, label)) continue;
      if (contains(f.sleep, label)) {
        ++res_.delta.sleep_skips;
        continue;
      }
      const int p = sim::ReplayScheduler::label_process(label);
      const std::uint64_t msg = sim::ReplayScheduler::label_message(label);
      const auto d = static_cast<std::uint64_t>((p - pref + kMaxProcesses) %
                                                kMaxProcesses);
      const std::uint64_t lam = (msg == 0) ? 1 : 0;  // Deliveries first.
      // Faults rank dead last: the default run makes progress, fault
      // subtrees are visited on backtrack.
      const std::uint64_t flt =
          sim::ReplayScheduler::label_is_fault(label) ? 1 : 0;
      if (!best.has_value() || flt < bf ||
          (flt == bf &&
           (d < bd || (d == bd && (lam < bl || (lam == bl && msg < bm)))))) {
        best = i;
        bf = flt;
        bd = d;
        bl = lam;
        bm = msg;
      }
    }
    return best;
  }

  /// Adds `label` to the backtrack set of the frame at `idx`. Below the
  /// unit's floor the frame is a shared prefix: the insertion is
  /// deferred to the barrier (returns false — the barrier counts it if
  /// the registry accepts it). At or above the floor it mutates the
  /// local frame and returns whether the label was new.
  bool add_backtrack(std::size_t idx, std::uint64_t label, bool race) {
    if (idx < u_->floor) {
      if (defer_seen_.emplace(idx, label).second) {
        res_.deferred.push_back(DeferredOp{idx, label, race});
      }
      return false;
    }
    Frame& f = u_->frames[idx];
    if (contains(f.backtrack, label)) return false;
    f.backtrack.push_back(label);
    ++res_.delta.backtrack_points;
    return true;
  }

  /// Insert `the delivery of msg to receiver` into the backtrack set of
  /// the frame at `idx` — the exact label when the menu offers it, else
  /// the channel-oldest delivery from the same sender, else
  /// (unreachable in practice) the whole menu. Returns true when a new
  /// label was added locally.
  bool insert_backtrack(std::size_t idx, ProcessId receiver,
                        std::uint64_t msg, ProcessId sender) {
    const Frame& f = u_->frames[idx];
    const std::uint64_t want = sim::ReplayScheduler::label(receiver, msg);
    if (contains(f.labels, want)) {
      return add_backtrack(idx, want, /*race=*/true);
    }
    // Oldest-per-channel delivery hid the exact message behind an older
    // one from the same sender; delivering that one is the first move
    // of every schedule that delivers `msg` here, so it stands in.
    // Fault labels never stand in for a delivery (dropping the older
    // copy is not a move toward delivering `msg`).
    for (std::uint64_t label : f.labels) {
      if (sim::ReplayScheduler::label_is_fault(label)) continue;
      const std::uint64_t m = sim::ReplayScheduler::label_message(label);
      if (m == 0 ||
          sim::ReplayScheduler::label_process(label) != receiver) {
        continue;
      }
      const auto it = msgs_.find(m);
      if (it != msgs_.end() && it->second.sender == sender) {
        return add_backtrack(idx, label, /*race=*/true);
      }
    }
    // Unreachable in practice — the message was pending, so its channel
    // offers some delivery — but degrade to full expansion, not
    // silence.
    bool any = false;
    const std::vector<std::uint64_t> menu = f.labels;
    for (std::uint64_t label : menu) {
      any = add_backtrack(idx, label, /*race=*/true) || any;
    }
    return any;
  }

  /// A fingerprint prune cuts the run before its races are observable:
  /// conservatively re-expand every schedule frame on the path (prefix
  /// frames via deferral).
  void expand_path_on_prune() {
    for (std::size_t idx = 0; idx < u_->frames.size(); ++idx) {
      const Frame& f = u_->frames[idx];
      if (f.kind != sim::ChoiceKind::kSchedule) continue;
      const std::vector<std::uint64_t> menu = f.labels;
      for (std::uint64_t label : menu) {
        add_backtrack(idx, label, /*race=*/false);
      }
    }
  }

  /// Under kContent: true when the two deliveries commute (declared by
  /// their payloads, or same-sender copies with equal content digests),
  /// so reordering them cannot be observable. Always false under
  /// kProcess. Records conservative-default payloads as a side effect.
  [[nodiscard]] bool deliveries_independent(const MsgInfo& a,
                                            const MsgInfo& b) {
    if (cfg_.dependence != Dependence::kContent) return false;
    if (a.payload == nullptr || b.payload == nullptr) return false;
    // Same-sender copies with identical content: the channel delivers
    // interchangeable messages, so either order is the same execution.
    if (a.sender == b.sender && a.digest.has_value() &&
        b.digest.has_value() && *a.digest == *b.digest) {
      return true;
    }
    return sim::payloads_commute(*a.payload, *b.payload,
                                 &res_.conservative);
  }

  /// Race-detect the delivery of msg to p (executed or hypothetical)
  /// against p's earlier events, inserting backtrack labels at every
  /// racing choice point.
  void race_delivery(ProcessId p, std::uint64_t msg, const MsgInfo& mi) {
    const auto pi = static_cast<std::size_t>(p);
    const std::uint64_t send_knows_p = mi.clock[pi];
    const auto& events = proc_events_[pi];
    for (std::size_t j = events.size(); j-- > 0;) {
      const StepRec& ej = events[j];
      // All three guards are monotone going backward, so they end the
      // scan.
      if (mi.sent_time >= ej.time) break;  // Not yet sent: no race.
      if (send_knows_p >= j + 1) break;    // Send happens-after e_j.
      if (ej.is_start) break;              // No delivery before start.
      // Content-aware dependence: a commuting pair of deliveries is not
      // a race. Keep scanning — msg may still race with an earlier
      // event.
      if (ej.delivered != 0) {
        const auto eit = msgs_.find(ej.delivered);
        if (eit != msgs_.end() &&
            deliveries_independent(mi, eit->second)) {
          ++res_.delta.commute_skips;
          continue;
        }
      } else if (ej.tick_inert &&
                 cfg_.dependence == Dependence::kContent &&
                 mi.payload != nullptr && mi.payload->tick_insensitive()) {
        // An inert lambda (every module tick a declared no-op) commutes
        // with a tick-insensitive delivery: neither side observes the
        // one-step time shift the reorder causes.
        ++res_.delta.commute_skips;
        continue;
      }
      if (ej.frame >= 0 &&
          insert_backtrack(static_cast<std::size_t>(ej.frame), p, msg,
                           mi.sender)) {
        ++res_.delta.hb_races;
      }
    }
  }

  /// Race-detect a lambda step of p against p's earlier events: a
  /// lambda commutes with everything except a delivery to p right
  /// before it. Once the reordered branch runs, its own lambda re-races
  /// with the next delivery down, so the single-step rule covers every
  /// depth. An *inert* lambda further commutes backward past
  /// tick-insensitive deliveries and other inert lambdas under
  /// Dependence::kContent, so the scan continues through those until
  /// the first genuinely dependent event.
  void race_lambda(ProcessId p, bool inert) {
    const auto& events = proc_events_[static_cast<std::size_t>(p)];
    const bool skip_inert =
        inert && cfg_.dependence == Dependence::kContent;
    for (std::size_t j = events.size(); j-- > 0;) {
      const StepRec& ej = events[j];
      if (ej.is_start) return;
      if (ej.delivered == 0) {
        // λ after λ needs no backtrack (same label, same schedule) —
        // but an inert lambda commutes with earlier inert lambdas, so
        // keep looking for the delivery it may still race with.
        if (skip_inert && ej.tick_inert) continue;
        return;
      }
      if (skip_inert) {
        const auto eit = msgs_.find(ej.delivered);
        if (eit != msgs_.end() && eit->second.payload != nullptr &&
            eit->second.payload->tick_insensitive()) {
          ++res_.delta.commute_skips;
          continue;
        }
      }
      if (ej.frame >= 0 &&
          add_backtrack(static_cast<std::size_t>(ej.frame),
                        sim::ReplayScheduler::label(p, 0),
                        /*race=*/true)) {
        ++res_.delta.hb_races;
      }
      return;
    }
  }

  /// A run's halt leaves transitions enabled-but-never-executed: the
  /// messages still in flight (their receivers went done, crashed, or
  /// the horizon hit) and the lambda of every process whose last event
  /// was a delivery. Those hypothetical events race with executed ones
  /// exactly like executed events do — without this pass DPOR would
  /// never revisit a choice point whose alternative delivery only
  /// happens on the road not taken.
  void end_of_run_races(sim::Simulator& sim) {
    sim.network().for_each_pending([this](const sim::Envelope& env) {
      const auto mit = msgs_.find(env.id);
      if (mit == msgs_.end()) return;  // Sent before tracking started.
      race_delivery(env.to, env.id, mit->second);
    });
    for (std::size_t p = 0; p < proc_events_.size(); ++p) {
      const auto pid = static_cast<ProcessId>(p);
      race_lambda(pid, sim.process_tick_noop(pid));
    }
  }

  /// Record one executed simulator step into the happens-before state
  /// and run race detection against the acting process's earlier
  /// events.
  void observe_step(sim::Simulator& sim, int frame,
                    std::uint64_t step_time) {
    const sim::LastStep& ls = sim.last_step();
    if (ls.p == kNoProcess) return;
    const auto p = static_cast<std::size_t>(ls.p);
    if (p >= proc_events_.size()) return;

    if (ls.action != sim::StepChoice::Action::kDeliver) {
      // An adversary move. Its frame is fully expanded (see choose()),
      // so no race insertion is needed; record it as an opaque event of
      // the affected process — race scans treat it as dependent, which
      // is the conservative direction.
      std::vector<std::uint64_t>& cp = clock_[p];
      cp[p] = proc_events_[p].size() + 1;
      proc_events_[p].push_back(StepRec{frame, step_time, 0, false, false});
      if (ls.action == sim::StepChoice::Action::kDup && ls.dup_id != 0) {
        // The duplicate inherits the original's send metadata —
        // payload, digest, sender and (crucially, for the conservative
        // direction) the sender's clock — but exists only from this
        // step on.
        const auto mit = msgs_.find(ls.fault_msg);
        if (mit != msgs_.end()) {
          MsgInfo info = mit->second;
          info.sent_time = step_time;
          msgs_.emplace(ls.dup_id, std::move(info));
        }
      }
      prev_sent_ = sim.network().total_sent();
      return;
    }

    // Race detection runs before this event joins the clocks: it
    // compares the *delivery* against the acting process's earlier
    // events. Two steps of different processes always commute (a step
    // consumes only its own pending messages and appends sends), so
    // dependence — and hence every race — is within one process's
    // event sequence; under Dependence::kContent, race_delivery
    // further exempts same-process delivery pairs whose payloads
    // commute.
    if (!ls.was_start && ls.delivered != 0) {
      const auto mit = msgs_.find(ls.delivered);
      if (mit != msgs_.end()) {
        race_delivery(ls.p, ls.delivered, mit->second);
      }
    } else if (!ls.was_start) {
      race_lambda(ls.p, ls.tick_noop);
    }

    // Fold the event into the happens-before state.
    std::vector<std::uint64_t>& cp = clock_[p];
    if (ls.delivered != 0) {
      const auto mit = msgs_.find(ls.delivered);
      if (mit != msgs_.end()) {
        const auto& mc = mit->second.clock;
        for (std::size_t q = 0; q < cp.size(); ++q) {
          cp[q] = std::max(cp[q], mc[q]);
        }
      }
    }
    cp[p] = proc_events_[p].size() + 1;
    proc_events_[p].push_back(
        StepRec{frame, step_time, ls.delivered, ls.was_start, ls.tick_noop});

    // Every message sent during this step carries the sender's clock;
    // under kContent also its payload and content digest, so dependence
    // can be decided at race time without the (possibly consumed)
    // envelope.
    const std::uint64_t total = sim.network().total_sent();
    for (std::uint64_t id = prev_sent_ + 1; id <= total; ++id) {
      MsgInfo info{ls.p, step_time, cp, nullptr, std::nullopt};
      if (cfg_.dependence == Dependence::kContent) {
        info.payload = sim.network().get(id).payload;
        if (info.payload != nullptr) {
          if (info.payload->kind().empty()) {
            res_.conservative.insert(info.payload->identity());
          }
          sim::StateEncoder enc;
          info.payload->encode_state(enc);
          if (enc.complete()) info.digest = enc.digest();
        }
      }
      msgs_.emplace(id, std::move(info));
    }
    prev_sent_ = total;
  }

  /// Flip the deepest frame above the floor with an unvisited
  /// alternative; false when the unit's whole subtree has been visited.
  bool backtrack() {
    while (u_->frames.size() > u_->floor) {
      Frame& f = u_->frames.back();
      if (!f.blocked) f.explored.push_back(f.labels[f.chosen]);
      const std::optional<std::uint32_t> next =
          next_choice(f, /*counting_skips=*/true);
      if (next.has_value()) {
        f.chosen = *next;
        f.blocked = false;
        return true;
      }
      u_->frames.pop_back();
    }
    return false;
  }

  [[nodiscard]] sim::DecisionLog decisions() const {
    sim::DecisionLog log;
    log.reserve(u_->frames.size());
    for (const Frame& f : u_->frames) log.push_back(f.chosen);
    return log;
  }

  /// The state digest at the current step — canonicalized as the
  /// minimum over the symmetry group when renamings are configured, so
  /// runs differing only by a renaming of interchangeable processes
  /// merge. nullopt when any component is opaque (pruning would be
  /// unsound).
  [[nodiscard]] std::optional<std::uint64_t> fingerprint(
      const Scenario& sc) const {
    const auto one = [&sc](const std::vector<ProcessId>* perm)
        -> std::optional<std::uint64_t> {
      sim::StateEncoder enc(perm);
      sc.sim->encode_state(enc);
      std::size_t i = 0;
      for (const auto& inv : sc.invariants) {
        enc.push("invariant", i++);
        inv->encode_state(enc);
        enc.pop();
      }
      if (!enc.complete()) return std::nullopt;
      return enc.digest();
    };
    std::optional<std::uint64_t> fp = one(nullptr);
    if (!fp.has_value()) return std::nullopt;
    for (const auto& perm : *ctx_.perms) {
      const std::optional<std::uint64_t> alt = one(&perm);
      if (!alt.has_value()) return std::nullopt;
      fp = std::min(*fp, *alt);
    }
    return fp;
  }

  [[nodiscard]] std::optional<std::uint64_t> fps_lookup(
      std::uint64_t fp) const {
    std::optional<std::uint64_t> t;
    if (const auto it = ctx_.fps->find(fp); it != ctx_.fps->end()) {
      t = it->second;
    }
    if (const auto it = res_.fps_overlay.find(fp);
        it != res_.fps_overlay.end()) {
      t = t.has_value() ? std::min(*t, it->second) : it->second;
    }
    return t;
  }

  /// Liveness mode: record into the unit's graph overlay the transition
  /// src_fp -> dst_fp taken by the step that consumed frames
  /// [pos_before, pos_after).
  void record_transition(const Scenario& sc, const LivenessClause& goal,
                         std::uint64_t src_fp, std::uint64_t dst_fp,
                         std::size_t pos_before, std::size_t pos_after) {
    LiveGraphEdge e;
    e.dst = dst_fp;
    e.choices.reserve(pos_after - pos_before);
    std::uint64_t label = 0;
    bool have_label = false;
    for (std::size_t j = pos_before; j < pos_after; ++j) {
      const Frame& f = u_->frames[j];
      e.choices.push_back(f.chosen);
      if (f.kind == sim::ChoiceKind::kSchedule) {
        label = f.labels[f.chosen];
        have_label = true;
      }
    }
    if (!have_label) {
      // The menu never reached choose(): a singleton, possible only when
      // injected crashes leave a single schedulable move. note_enabled
      // still reported it.
      WFD_CHECK_MSG(menu_.size() == 1, "scheduled step consumed no frame");
      label = menu_.front();
    }
    e.sched = sim::ReplayScheduler::label_process(label);
    e.fault = sim::ReplayScheduler::label_is_fault(label);
    // Non-fault labels with a message id are deliveries; id 0 is a
    // lambda or start step (sim/scheduler.h label encoding).
    e.deliver = !e.fault && sim::ReplayScheduler::label_message(label) != 0;
    if (e.deliver) e.sender = sc.sim->last_step().from;
    // The menu was captured before the step ran, so the one message the
    // step consumed (delivered or dropped) is no longer in the network;
    // its sender is on last_step(). Every other menu message still is.
    const sim::Network& net = sc.sim->network();
    const auto sender_of = [&](std::uint64_t id) -> ProcessId {
      return net.contains(id) ? net.get(id).from : sc.sim->last_step().from;
    };
    std::uint64_t enabled = 0;
    std::uint64_t deliverable = 0;
    for (const std::uint64_t l : menu_) {
      if (sim::ReplayScheduler::label_is_fault(l)) continue;
      const ProcessId to = sim::ReplayScheduler::label_process(l);
      enabled |= std::uint64_t{1} << to;
      const std::uint64_t id = sim::ReplayScheduler::label_message(l);
      if (id != 0) deliverable |= live_channel_bit(sender_of(id), to);
    }
    {
      // Scoped: at() below may rehash and invalidate this reference.
      LiveGraphNode& src = res_.graph.at(src_fp);
      src.expanded = true;
      src.enabled |= enabled;
      src.deliverable |= deliverable;
      add_live_edge(src, std::move(e));
    }
    res_.graph.at(dst_fp).goal = goal.goal(*sc.sim);
  }

  [[nodiscard]] bool cancel_requested() const {
    return cfg_.cancel != nullptr &&
           cfg_.cancel->load(std::memory_order_relaxed);
  }

  /// Node counter for order_seed mixing: committed total at the wave
  /// start plus this unit's local delta — deterministic and
  /// thread-independent (the serial explorer used the global cumulative
  /// count; any deterministic stream works, the seed only diversifies).
  [[nodiscard]] std::uint64_t node_counter() const {
    return ctx_.base_nodes + res_.delta.nodes;
  }

  ScenarioBuilder build_;
  const WaveContext& ctx_;
  const SearchConfig& cfg_;
  const bool liveness_;  ///< cfg_.scenario.liveness non-empty.

  UnitResult res_;
  Unit* u_ = nullptr;  ///< = &res_.unit while run() executes.
  bool run_blocked_ = false;
  /// Liveness mode: the schedule menu of the step being executed, as
  /// reported by the scheduler's note_enabled hook — captured even for
  /// singleton menus that never reach choose().
  std::vector<std::uint64_t> menu_;
  /// Dedup of deferred insertions: one op per (depth, label) per wave.
  std::set<std::pair<std::size_t, std::uint64_t>> defer_seen_;

  // Per-run happens-before state (rebuilt every re-execution).
  std::vector<std::vector<StepRec>> proc_events_;
  std::vector<std::vector<std::uint64_t>> clock_;
  std::unordered_map<std::uint64_t, MsgInfo> msgs_;
  std::uint64_t prev_sent_ = 0;
};

// ---- Orchestration ---------------------------------------------------

/// Units per wave. Fixed (not a knob): wave composition must be a pure
/// function of the committed queue, and 32 keeps every thread count up
/// to a large machine busy once the queue has grown past the first few
/// waves.
constexpr std::size_t kWaveUnits = 32;

/// Per-unit node budget of wave w: 4 · 4^w, capped at 256. Early waves
/// stay tiny so the root unit decomposes quickly (parallelism ramps up
/// within a few waves — and a "budget 5" style caller still gets a
/// chance to stop before the tree is blown past); later waves run long
/// enough that barrier overhead stops mattering.
std::uint64_t wave_budget(std::uint64_t wave) {
  std::uint64_t b = 4;
  for (std::uint64_t i = 0; i < wave && b < 256; ++i) b *= 4;
  return std::min<std::uint64_t>(b, 256);
}

Frame frame_from_state(const FrameState& fs) {
  Frame f;
  f.kind = fs.kind;
  f.chosen = fs.chosen;
  f.start = fs.start;
  f.blocked = fs.blocked;
  f.labels = fs.labels;
  f.sleep = fs.sleep;
  f.explored = fs.explored;
  f.backtrack = fs.backtrack;
  return f;
}

FrameState frame_to_state(const Frame& f) {
  FrameState fs;
  fs.kind = f.kind;
  fs.chosen = f.chosen;
  fs.start = f.start;
  fs.blocked = f.blocked;
  fs.labels = f.labels;
  fs.sleep = f.sleep;
  fs.explored = f.explored;
  fs.backtrack = f.backtrack;
  return fs;
}

/// Chain keys are recomputed from the frames, never trusted from the
/// wire (the parser has already validated floor <= frames.size() and
/// chosen < labels.size()).
Unit unit_from_state(const UnitState& us) {
  Unit u;
  u.id = us.id;
  u.floor = static_cast<std::size_t>(us.floor);
  u.path_pending = us.path_pending;
  u.frames.reserve(us.frames.size());
  for (const FrameState& fs : us.frames) {
    u.frames.push_back(frame_from_state(fs));
  }
  u.keys.reserve(u.floor + 1);
  u.keys.push_back(kRootKey);
  for (std::size_t i = 0; i < u.floor; ++i) {
    const Frame& f = u.frames[i];
    u.keys.push_back(advance_key(u.keys[i], f.kind, f.labels[f.chosen]));
  }
  return u;
}

UnitState unit_to_state(const Unit& u) {
  UnitState us;
  us.id = u.id;
  us.floor = static_cast<std::uint64_t>(u.floor);
  us.path_pending = u.path_pending;
  us.frames.reserve(u.frames.size());
  for (const Frame& f : u.frames) us.frames.push_back(frame_to_state(f));
  return us;
}

/// Expands the per-class interchangeable-process sets into the full
/// symmetry group minus the identity: the cartesian product of each
/// class's permutations, written as full 0..n-1 renaming vectors
/// (identity outside every class). next_permutation from the sorted
/// base enumerates each class's permutations in a canonical order, so
/// the group — and hence the canonical (minimum) fingerprint — is
/// deterministic.
std::vector<std::vector<ProcessId>> symmetry_permutations(
    const std::vector<std::vector<ProcessId>>& classes, int n) {
  std::vector<std::vector<ProcessId>> perms;
  if (classes.empty() || n <= 0) return perms;
  std::vector<std::vector<ProcessId>> bases;
  std::vector<std::vector<std::vector<ProcessId>>> images;
  for (const std::vector<ProcessId>& cls : classes) {
    std::vector<ProcessId> base = cls;
    std::sort(base.begin(), base.end());
    std::vector<std::vector<ProcessId>> per;
    std::vector<ProcessId> p = base;
    do {
      per.push_back(p);
    } while (std::next_permutation(p.begin(), p.end()));
    bases.push_back(std::move(base));
    images.push_back(std::move(per));
  }
  std::vector<std::size_t> pick(classes.size(), 0);
  while (true) {
    std::vector<ProcessId> full(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      full[static_cast<std::size_t>(p)] = static_cast<ProcessId>(p);
    }
    bool identity = true;
    for (std::size_t c = 0; c < bases.size(); ++c) {
      const std::vector<ProcessId>& img = images[c][pick[c]];
      for (std::size_t j = 0; j < bases[c].size(); ++j) {
        full[static_cast<std::size_t>(bases[c][j])] = img[j];
        if (img[j] != bases[c][j]) identity = false;
      }
    }
    if (!identity) perms.push_back(std::move(full));
    std::size_t c = 0;
    for (; c < pick.size(); ++c) {
      if (++pick[c] < images[c].size()) break;
      pick[c] = 0;
    }
    if (c == pick.size()) break;
  }
  return perms;
}

void merge_stats(ExploreStats& into, const ExploreStats& d) {
  into.nodes += d.nodes;
  into.runs += d.runs;
  into.steps += d.steps;
  into.sleep_skips += d.sleep_skips;
  into.fp_prunes += d.fp_prunes;
  into.hb_races += d.hb_races;
  into.backtrack_points += d.backtrack_points;
  into.commute_skips += d.commute_skips;
  into.injected_crashes += d.injected_crashes;
  into.injected_drops += d.injected_drops;
  into.injected_dups += d.injected_dups;
  into.violations += d.violations;
}

/// Splits a budget-stopped unit's subtree across fresh units — the
/// work-stealing move. Every frame of the final path donates its
/// unvisited-but-owed labels (rotation order from the frame's start
/// offset; under DPOR only labels in the backtrack set are owed): each
/// donated label becomes a unit whose floor pins the path down to and
/// including that label. The node is simultaneously entered into the
/// registry with the full assignment order, explored + chosen + sleep
/// first — so a later deferred insertion of an already-covered label is
/// rejected, and each child sees everything assigned before it as
/// explored (the sleep-set asymmetry, preserved across units). The
/// decomposed unit itself is dropped: its chosen chain was executed to
/// completion (the deepest frame's run), and every sidetrack it still
/// owed now lives in a child or in the registry.
void decompose(const Unit& u, const SearchConfig& cfg,
               std::map<ChainKey, NodeReg>& registry,
               std::map<std::uint64_t, Unit>& queue,
               std::uint64_t& next_unit_id) {
  // Chain keys along the final path (the unit only stores them up to
  // its floor).
  std::vector<ChainKey> keys = u.keys;
  keys.reserve(u.frames.size() + 1);
  for (std::size_t j = u.floor; j < u.frames.size(); ++j) {
    const Frame& f = u.frames[j];
    keys.push_back(advance_key(keys[j], f.kind, f.labels[f.chosen]));
  }
  for (std::size_t j = u.floor; j < u.frames.size(); ++j) {
    const Frame& f = u.frames[j];
    NodeReg reg;
    if (f.blocked) {
      // Every option was asleep: covered elsewhere, nothing to steal —
      // but register the full menu so no deferred insertion re-spawns
      // the node.
      reg.assigned = f.labels;
    } else {
      reg.assigned = f.explored;
      const std::uint64_t chosen = f.labels[f.chosen];
      if (!contains(reg.assigned, chosen)) reg.assigned.push_back(chosen);
      for (std::uint64_t l : f.sleep) {
        if (!contains(reg.assigned, l)) reg.assigned.push_back(l);
      }
      const bool dpor_schedule = f.kind == sim::ChoiceKind::kSchedule &&
                                 cfg.reduction == Reduction::kDpor;
      const std::size_t k = f.labels.size();
      for (std::size_t i = 0; i < k; ++i) {
        const std::uint64_t l = f.labels[(f.start + i) % k];
        if (dpor_schedule && !contains(f.backtrack, l)) continue;
        if (contains(reg.assigned, l)) continue;
        Unit child;
        child.id = next_unit_id++;
        child.floor = j + 1;
        child.frames.assign(u.frames.begin(),
                            u.frames.begin() +
                                static_cast<std::ptrdiff_t>(j) + 1);
        Frame& cf = child.frames.back();
        cf.chosen = index_of(f.labels, l);
        cf.explored = reg.assigned;
        cf.blocked = false;
        child.keys.assign(keys.begin(),
                          keys.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        child.keys.push_back(advance_key(keys[j], f.kind, l));
        reg.assigned.push_back(l);
        queue.emplace(child.id, std::move(child));
      }
    }
    // Units partition the tree by edges: a node at depth >= floor
    // belongs to exactly one live unit, so it is registered exactly
    // once — here, when that unit decomposes.
    const bool fresh = registry.emplace(keys[j], std::move(reg)).second;
    WFD_CHECK_MSG(fresh, "choice point decomposed twice");
  }
}

/// Resolves one deferred backtrack insertion at the barrier. The target
/// node (below the deferring unit's floor) is always in the registry —
/// it was registered by the decomposition that spawned the first unit
/// below it. An already-assigned label is rejected (that reordering is
/// someone's work already, or sleeps); a fresh one is assigned and
/// spawns a unit that takes it at the target node, seeing every earlier
/// assignment as explored.
void apply_deferred(const Unit& du, const DeferredOp& op,
                    std::map<ChainKey, NodeReg>& registry,
                    std::map<std::uint64_t, Unit>& queue,
                    std::uint64_t& next_unit_id, ExploreStats& stats) {
  WFD_CHECK_MSG(op.depth < du.floor && op.depth + 1 < du.keys.size(),
                "deferred op outside the unit's prefix");
  const auto it = registry.find(du.keys[op.depth]);
  WFD_CHECK_MSG(it != registry.end(), "deferred target not registered");
  NodeReg& reg = it->second;
  if (contains(reg.assigned, op.label)) return;
  Unit child;
  child.id = next_unit_id++;
  child.floor = op.depth + 1;
  child.frames.assign(du.frames.begin(),
                      du.frames.begin() +
                          static_cast<std::ptrdiff_t>(op.depth) + 1);
  Frame& cf = child.frames.back();
  cf.chosen = index_of(cf.labels, op.label);
  cf.explored = reg.assigned;
  cf.blocked = false;
  child.keys.assign(du.keys.begin(),
                    du.keys.begin() +
                        static_cast<std::ptrdiff_t>(op.depth) + 1);
  child.keys.push_back(
      advance_key(child.keys[op.depth], cf.kind, op.label));
  reg.assigned.push_back(op.label);
  ++stats.backtrack_points;
  if (op.race) ++stats.hb_races;
  queue.emplace(child.id, std::move(child));
}

}  // namespace

Coverage coverage(const ExploreStats& stats) {
  if (!stats.exhausted) return Coverage::kBudget;
  // A liveness-mode fingerprint prune is an exact merge into an
  // already-expanded state-graph node (states are time-free under the
  // liveness rules), not an approximation to confess.
  if (stats.liveness) return Coverage::kComplete;
  return stats.fp_prunes > 0 ? Coverage::kModuloFingerprints
                             : Coverage::kComplete;
}

std::string coverage_name(Coverage c) {
  switch (c) {
    case Coverage::kBudget:
      return "budget";
    case Coverage::kComplete:
      return "complete";
    case Coverage::kModuloFingerprints:
      return "modulo-fingerprints";
  }
  return "unknown";
}

Explorer::Explorer(ScenarioBuilder build, SearchConfig cfg)
    : build_(std::move(build)), cfg_(std::move(cfg)) {
  WFD_CHECK_MSG(build_ != nullptr, "Explorer needs a scenario builder");
}

ExploreReport Explorer::run() {
  ExploreReport rep;

  // The committed search state. Mutated only here, between waves.
  std::map<std::uint64_t, Unit> queue;
  std::map<ChainKey, NodeReg> registry;
  std::unordered_map<std::uint64_t, std::uint64_t> fps;
  LiveGraph graph;
  ExploreStats stats;
  std::set<std::string> conservative;
  std::uint64_t wave = 0;
  std::uint64_t next_unit_id = 0;
  std::uint64_t gen = 0;
  const bool liveness = !cfg_.scenario.liveness.empty();

  if (!cfg_.resume_path.empty()) {
    std::string err;
    bool wrong_version = false;
    const std::optional<StateSnapshot> snap =
        load_snapshot(cfg_.resume_path, &err, &wrong_version);
    if (!snap.has_value()) {
      rep.resume_error = err.empty() ? "failed to load snapshot" : err;
      rep.resume_rejected = wrong_version;
      return rep;
    }
    const std::string mismatch = resume_mismatch(*snap, cfg_);
    if (!mismatch.empty()) {
      rep.resume_error = mismatch;
      rep.resume_rejected = true;
      return rep;
    }
    stats = snap->stats;
    conservative = snap->conservative_payloads;
    wave = snap->wave;
    next_unit_id = snap->next_unit_id;
    gen = snap->resume_generation;
    for (const auto& [fp, t] : snap->fingerprints) fps.emplace(fp, t);
    graph = snap->graph;
    for (const NodeState& ns : snap->nodes) {
      registry.emplace(ChainKey{ns.key[0], ns.key[1]},
                       NodeReg{ns.assigned});
    }
    for (const UnitState& us : snap->units) {
      queue.emplace(us.id, unit_from_state(us));
    }
    rep.resumed = true;
  } else {
    Unit root;
    root.id = next_unit_id++;
    root.keys.push_back(kRootKey);
    queue.emplace(root.id, std::move(root));
  }
  rep.resume_generation = gen;

  const std::uint64_t base_total = stats.nodes;
  const bool pattern_sensitive =
      ScenarioFactory::pattern_sensitive(cfg_.scenario);
  std::vector<std::vector<ProcessId>> perms;
  if (cfg_.symmetry) {
    perms = symmetry_permutations(
        ScenarioFactory::symmetry_classes(cfg_.scenario), cfg_.scenario.n);
  }

  while (true) {
    if (cfg_.cancel != nullptr &&
        cfg_.cancel->load(std::memory_order_relaxed)) {
      rep.cancelled = true;
      break;
    }
    // A resumed snapshot of an already-exhausted search has nothing
    // left to do (and must not report fresh work).
    if (stats.exhausted) break;
    if (queue.empty()) {
      stats.exhausted = true;
      break;
    }

    // Compose the wave: the first kWaveUnits queued units in id order —
    // a pure function of the committed queue.
    std::vector<Unit> batch;
    batch.reserve(kWaveUnits);
    while (!queue.empty() && batch.size() < kWaveUnits) {
      const auto it = queue.begin();
      batch.push_back(std::move(it->second));
      queue.erase(it);
    }
    // Pristine copies, so a cancelled wave can be discarded wholesale:
    // the snapshot then equals the last barrier state and a resumed run
    // re-executes this wave verbatim.
    std::vector<Unit> pristine;
    if (cfg_.cancel != nullptr) pristine = batch;

    const WaveContext ctx{&cfg_,  pattern_sensitive, &perms,
                          &fps,   stats.nodes,       wave_budget(wave)};

    // Execute the wave. Workers pull slots from an atomic dispenser;
    // results land by slot, so the merge below sees canonical unit
    // order no matter which thread ran what.
    std::vector<UnitResult> results(batch.size());
    const std::size_t nthreads = std::min<std::size_t>(
        static_cast<std::size_t>(std::max(1, cfg_.threads)), batch.size());
    if (nthreads <= 1) {
      for (std::size_t s = 0; s < batch.size(); ++s) {
        UnitEngine eng(build_, ctx);
        results[s] = eng.run(std::move(batch[s]));
      }
    } else {
      std::atomic<std::size_t> slot{0};
      const auto worker = [&] {
        while (true) {
          const std::size_t s = slot.fetch_add(1, std::memory_order_relaxed);
          if (s >= batch.size()) return;
          UnitEngine eng(build_, ctx);
          results[s] = eng.run(std::move(batch[s]));
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(nthreads);
      for (std::size_t i = 0; i < nthreads; ++i) pool.emplace_back(worker);
      for (std::thread& th : pool) th.join();
    }

    // Barrier. A wave any unit of which was cancelled is discarded
    // wholesale (determinism: a partial wave's merge order would depend
    // on which units the cancel signal caught). The first
    // counterexample a completed unit found is still reported — the
    // caller cancelled, it should know why others might have — but
    // nothing is committed.
    bool wave_cancelled = false;
    for (const UnitResult& r : results) {
      if (r.outcome == UnitOutcome::kCancelled) {
        wave_cancelled = true;
        break;
      }
    }
    if (wave_cancelled) {
      for (Unit& u : pristine) {
        const std::uint64_t id = u.id;
        queue.emplace(id, std::move(u));
      }
      for (const UnitResult& r : results) {
        if (r.outcome != UnitOutcome::kCancelled && r.cex.has_value() &&
            !rep.cex.has_value()) {
          rep.cex = r.cex;
        }
      }
      rep.cancelled = true;
      break;
    }

    // Pass 1 (slot order): fold per-unit deltas into the committed
    // state — stats, conservative-payload audit, fingerprint overlays
    // (min-wise on the earliest-time value), first counterexample.
    bool wave_violation = false;
    for (UnitResult& r : results) {
      merge_stats(stats, r.delta);
      conservative.insert(r.conservative.begin(), r.conservative.end());
      for (const auto& [fp, t] : r.fps_overlay) {
        const auto [it, fresh] = fps.emplace(fp, t);
        if (!fresh && it->second > t) it->second = t;
      }
      if (liveness) merge_live_graph(graph, r.graph);
      if (r.cex.has_value() && !rep.cex.has_value()) rep.cex = r.cex;
      if (r.outcome == UnitOutcome::kViolation) wave_violation = true;
    }
    const bool stopping = cfg_.stop_at_first && wave_violation;

    // Pass 2 (slot order): decompose budget-stopped units into fresh
    // work — unless the search is stopping, in which case they are
    // re-queued as-is in pass 4 (the snapshot stays small and resumable
    // either way).
    if (!stopping) {
      for (const UnitResult& r : results) {
        if (r.outcome == UnitOutcome::kBudget) {
          decompose(r.unit, cfg_, registry, queue, next_unit_id);
        }
      }
    }

    // Pass 3 (slot order): deferred backtrack insertions — applied even
    // when stopping, or pending reorderings recorded nowhere else would
    // be lost and a later resume would be unsound.
    for (const UnitResult& r : results) {
      for (const DeferredOp& op : r.deferred) {
        apply_deferred(r.unit, op, registry, queue, next_unit_id, stats);
      }
    }

    // Pass 4 (slot order): dispose. Exhausted units are done;
    // violation-stopped and (when stopping) budget-stopped units go
    // back on the queue with their executed path, so a resume continues
    // with the exact backtrack flip an uninterrupted run would make.
    for (UnitResult& r : results) {
      switch (r.outcome) {
        case UnitOutcome::kExhausted:
          break;
        case UnitOutcome::kViolation: {
          const std::uint64_t id = r.unit.id;
          queue.emplace(id, std::move(r.unit));
          break;
        }
        case UnitOutcome::kBudget:
          if (stopping) {
            const std::uint64_t id = r.unit.id;
            queue.emplace(id, std::move(r.unit));
          }
          break;
        case UnitOutcome::kCancelled:
          WFD_CHECK_MSG(false, "cancelled unit past the wave gate");
          break;
      }
    }

    // The snapshot stores the *next* wave index: the per-unit budget
    // schedule continues across an interruption exactly as it would
    // have uninterrupted.
    ++wave;

    if (stopping) break;
    if (cfg_.max_states != 0 && stats.nodes >= cfg_.max_states) break;
    if (cfg_.budget_states != 0 &&
        stats.nodes - base_total >= cfg_.budget_states) {
      break;
    }
    if (cfg_.max_runs != 0 && stats.runs >= cfg_.max_runs) break;
  }

  if (liveness) {
    stats.liveness = true;
    stats.graph_states = static_cast<std::uint64_t>(graph.order.size());
    stats.graph_edges = graph.edge_count();
    stats.graph_truncated = graph.truncated_count();
    // Post-exhaustion fair-cycle search: only once the graph is the
    // complete transition system, and only when no safety violation
    // pre-empted the verdict. A found lasso is reported as the
    // counterexample but does not count into stats.violations — the
    // stats are cumulative across save/resume and the search re-runs on
    // every exhausted (re)invocation.
    if (stats.exhausted && !rep.cex.has_value() && !rep.cancelled) {
      rep.fair_cycle_checked = true;
      rep.cex = find_fair_lasso(graph, cfg_.scenario, &rep.lasso_error);
    }
  }

  rep.stats = stats;
  rep.conservative_payloads = std::move(conservative);

  if (!cfg_.save_path.empty()) {
    StateSnapshot snap;
    snap.config = cfg_;
    snap.resume_generation = gen + 1;
    snap.wave = wave;
    snap.next_unit_id = next_unit_id;
    snap.stats = stats;
    snap.conservative_payloads = rep.conservative_payloads;
    snap.units.reserve(queue.size());
    for (const auto& [id, u] : queue) snap.units.push_back(unit_to_state(u));
    snap.nodes.reserve(registry.size());
    for (const auto& [key, reg] : registry) {
      snap.nodes.push_back(NodeState{{key[0], key[1]}, reg.assigned});
    }
    snap.fingerprints.assign(fps.begin(), fps.end());
    std::sort(snap.fingerprints.begin(), snap.fingerprints.end());
    snap.graph = std::move(graph);
    std::string err;
    if (!save_snapshot(cfg_.save_path, snap, &err)) {
      rep.save_error = err.empty() ? "failed to write snapshot" : err;
    }
  }
  return rep;
}

}  // namespace wfd::explore
