// Shared result types of the exploration subsystem.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"
#include "sim/choice.h"

namespace wfd::sim {
class Simulator;
}  // namespace wfd::sim

namespace wfd::explore {

/// DEPRECATED: raw std::function state-fingerprint hook. This predates
/// the first-class module-state API (sim/state_encoder.h): it receives
/// the whole simulator and is trusted blindly, with no way to signal an
/// opaque/incomplete encoding. Prefer implementing
/// Module::encode_state and letting the explorer compose fingerprints
/// itself (ExplorerOptions::state_fingerprints); this alias survives
/// only as an escape hatch for scenarios built from non-modular
/// processes, and will be removed once none remain.
using FingerprintFn = std::function<std::uint64_t(const sim::Simulator&)>;

/// A property violation observed in a run.
struct Violation {
  std::string property;  ///< Name of the violated property.
  std::string message;   ///< Human-readable diagnosis.
  Time at = 0;           ///< Step at which the violation became true.
};

/// A violation together with the decision sequence that produces it.
/// Replaying the decisions through the same scenario reproduces the
/// violation deterministically (see replay_io.h).
struct Counterexample {
  sim::DecisionLog decisions;
  Violation violation;
  std::uint64_t steps = 0;  ///< Simulator steps until the violation.
};

}  // namespace wfd::explore
