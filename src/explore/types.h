// Shared result types of the exploration subsystem.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "sim/choice.h"

namespace wfd::explore {

/// A property violation observed in a run.
struct Violation {
  std::string property;  ///< Name of the violated property.
  std::string message;   ///< Human-readable diagnosis.
  Time at = 0;           ///< Step at which the violation became true.
};

/// A violation together with the decision sequence that produces it.
/// Replaying the decisions through the same scenario reproduces the
/// violation deterministically (see replay_io.h).
struct Counterexample {
  sim::DecisionLog decisions;
  Violation violation;
  std::uint64_t steps = 0;  ///< Simulator steps until the violation.
  /// Liveness lassos only (fair-cycle search, explore/liveness.h):
  /// `decisions` is then the stem from the initial state to the cycle
  /// entry and `loop` the decision block whose endless repetition is
  /// the violating fair run — replaying stem + loop returns to the
  /// cycle-entry state fingerprint. Empty for safety counterexamples.
  sim::DecisionLog loop;
  std::uint64_t loop_steps = 0;  ///< Simulator steps one unrolling takes.
};

}  // namespace wfd::explore
