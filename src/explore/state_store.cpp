#include "explore/state_store.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "explore/option_text.h"

namespace wfd::explore {

namespace {

using detail::escape_line;
using detail::parse_bool;
using detail::parse_u64;
using detail::unescape_line;

/// Fingerprint entries per fps= line: keeps lines bounded without
/// bloating the file with one key per entry.
constexpr std::size_t kFpsPerLine = 512;

void labels_to_text(std::ostream& out, const char* tag,
                    const std::vector<std::uint64_t>& v) {
  out << tag << "=";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out << ",";
    out << v[i];
  }
}

bool parse_labels(const std::string& s, std::vector<std::uint64_t>* out) {
  out->clear();
  if (s.empty()) return true;
  std::string item;
  std::istringstream items(s);
  while (std::getline(items, item, ',')) {
    std::uint64_t v = 0;
    if (!parse_u64(item, &v)) return false;
    out->push_back(v);
  }
  return true;
}

// frame=k=<kind>;c=<chosen>;s=<start>;b=<blocked>;l=<labels>;sl=<sleep>;
//       ex=<explored>;bt=<backtrack>
void frame_to_text(std::ostream& out, const FrameState& f) {
  out << "frame=k=" << static_cast<int>(f.kind) << ";c=" << f.chosen
      << ";s=" << f.start << ";b=" << (f.blocked ? 1 : 0) << ";";
  labels_to_text(out, "l", f.labels);
  out << ";";
  labels_to_text(out, "sl", f.sleep);
  out << ";";
  labels_to_text(out, "ex", f.explored);
  out << ";";
  labels_to_text(out, "bt", f.backtrack);
  out << "\n";
}

bool parse_frame(const std::string& s, FrameState* f) {
  std::string part;
  std::istringstream parts(s);
  bool saw_labels = false;
  while (std::getline(parts, part, ';')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = part.substr(0, eq);
    const std::string val = part.substr(eq + 1);
    std::uint64_t v = 0;
    if (key == "k") {
      if (!parse_u64(val, &v) || v > 2) return false;
      f->kind = static_cast<sim::ChoiceKind>(v);
    } else if (key == "c") {
      if (!parse_u64(val, &v) || v > UINT32_MAX) return false;
      f->chosen = static_cast<std::uint32_t>(v);
    } else if (key == "s") {
      if (!parse_u64(val, &v) || v > UINT32_MAX) return false;
      f->start = static_cast<std::uint32_t>(v);
    } else if (key == "b") {
      bool b = false;
      if (!parse_bool(val, &b)) return false;
      f->blocked = b;
    } else if (key == "l") {
      if (!parse_labels(val, &f->labels)) return false;
      saw_labels = true;
    } else if (key == "sl") {
      if (!parse_labels(val, &f->sleep)) return false;
    } else if (key == "ex") {
      if (!parse_labels(val, &f->explored)) return false;
    } else if (key == "bt") {
      if (!parse_labels(val, &f->backtrack)) return false;
    } else {
      return false;
    }
  }
  // Choice points always carry at least two options (forced moves never
  // materialize frames), and the indices must address the menu.
  return saw_labels && f->labels.size() >= 2 && f->chosen < f->labels.size() &&
         f->start < f->labels.size();
}

// unit=id=<id>;floor=<floor>;pending=<0|1>;frames=<count> — the next
// <count> frame= lines belong to this unit.
void unit_to_text(std::ostream& out, const UnitState& u) {
  out << "unit=id=" << u.id << ";floor=" << u.floor
      << ";pending=" << (u.path_pending ? 1 : 0)
      << ";frames=" << u.frames.size() << "\n";
  for (const FrameState& f : u.frames) frame_to_text(out, f);
}

bool parse_unit(const std::string& s, UnitState* u,
                std::uint64_t* frames_expected) {
  bool saw_id = false;
  bool saw_frames = false;
  std::string part;
  std::istringstream parts(s);
  while (std::getline(parts, part, ';')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = part.substr(0, eq);
    const std::string val = part.substr(eq + 1);
    if (key == "id") {
      if (!parse_u64(val, &u->id)) return false;
      saw_id = true;
    } else if (key == "floor") {
      if (!parse_u64(val, &u->floor)) return false;
    } else if (key == "pending") {
      if (!parse_bool(val, &u->path_pending)) return false;
    } else if (key == "frames") {
      if (!parse_u64(val, frames_expected)) return false;
      saw_frames = true;
    } else {
      return false;
    }
  }
  return saw_id && saw_frames;
}

// node=<k0>:<k1>;a=<labels in assignment order>
void node_to_text(std::ostream& out, const NodeState& n) {
  out << "node=" << n.key[0] << ":" << n.key[1] << ";";
  labels_to_text(out, "a", n.assigned);
  out << "\n";
}

bool parse_node(const std::string& s, NodeState* n) {
  const std::size_t semi = s.find(';');
  if (semi == std::string::npos) return false;
  const std::string key = s.substr(0, semi);
  const std::string rest = s.substr(semi + 1);
  const std::size_t colon = key.find(':');
  if (colon == std::string::npos) return false;
  if (!parse_u64(key.substr(0, colon), &n->key[0]) ||
      !parse_u64(key.substr(colon + 1), &n->key[1])) {
    return false;
  }
  if (rest.rfind("a=", 0) != 0) return false;
  return parse_labels(rest.substr(2), &n->assigned);
}

// gnode=<fp>;g=<goal>;en=<enabled>;dl=<channel bitset, bit sender*8 +
//       receiver>;x=<expanded>;t=<truncated>;edges=<count> — the next
//       <count> gedge= lines belong to it.
void gnode_to_text(std::ostream& out, std::uint64_t fp,
                   const LiveGraphNode& n) {
  out << "gnode=" << fp << ";g=" << (n.goal ? 1 : 0) << ";en=" << n.enabled
      << ";dl=" << n.deliverable << ";x=" << (n.expanded ? 1 : 0)
      << ";t=" << (n.truncated ? 1 : 0) << ";edges=" << n.edges.size()
      << "\n";
}

bool parse_gnode(const std::string& s, std::uint64_t* fp, LiveGraphNode* n,
                 std::uint64_t* edges_expected) {
  std::string part;
  std::istringstream parts(s);
  bool saw_fp = false;
  bool saw_edges = false;
  bool first = true;
  while (std::getline(parts, part, ';')) {
    if (first) {
      first = false;
      if (!parse_u64(part, fp)) return false;
      saw_fp = true;
      continue;
    }
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = part.substr(0, eq);
    const std::string val = part.substr(eq + 1);
    if (key == "g") {
      if (!parse_bool(val, &n->goal)) return false;
    } else if (key == "en") {
      if (!parse_u64(val, &n->enabled)) return false;
    } else if (key == "dl") {
      if (!parse_u64(val, &n->deliverable)) return false;
    } else if (key == "x") {
      if (!parse_bool(val, &n->expanded)) return false;
    } else if (key == "t") {
      if (!parse_bool(val, &n->truncated)) return false;
    } else if (key == "edges") {
      if (!parse_u64(val, edges_expected)) return false;
      saw_edges = true;
    } else {
      return false;
    }
  }
  return saw_fp && saw_edges;
}

// gedge=d=<dst>;p=<sched+1, 0 = none>;s=<sender+1, 0 = none>;f=<fault>;
//       c=<decision indices>
void gedge_to_text(std::ostream& out, const LiveGraphEdge& e) {
  out << "gedge=d=" << e.dst << ";p=" << (e.sched + 1)
      << ";s=" << (e.sender + 1) << ";f=" << (e.fault ? 1 : 0)
      << ";dv=" << (e.deliver ? 1 : 0) << ";c=";
  for (std::size_t i = 0; i < e.choices.size(); ++i) {
    if (i != 0) out << ",";
    out << e.choices[i];
  }
  out << "\n";
}

bool parse_gedge(const std::string& s, LiveGraphEdge* e) {
  std::string part;
  std::istringstream parts(s);
  bool saw_dst = false;
  while (std::getline(parts, part, ';')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = part.substr(0, eq);
    const std::string val = part.substr(eq + 1);
    if (key == "d") {
      if (!parse_u64(val, &e->dst)) return false;
      saw_dst = true;
    } else if (key == "p") {
      std::uint64_t v = 0;
      if (!parse_u64(val, &v) || v > INT32_MAX) return false;
      e->sched = static_cast<ProcessId>(v) - 1;
    } else if (key == "s") {
      std::uint64_t v = 0;
      if (!parse_u64(val, &v) || v > INT32_MAX) return false;
      e->sender = static_cast<ProcessId>(v) - 1;
    } else if (key == "f") {
      if (!parse_bool(val, &e->fault)) return false;
    } else if (key == "dv") {
      if (!parse_bool(val, &e->deliver)) return false;
    } else if (key == "c") {
      std::vector<std::uint64_t> raw;
      if (!parse_labels(val, &raw)) return false;
      e->choices.clear();
      e->choices.reserve(raw.size());
      for (const std::uint64_t v : raw) {
        if (v > UINT32_MAX) return false;
        e->choices.push_back(static_cast<std::uint32_t>(v));
      }
    } else {
      return false;
    }
  }
  return saw_dst;
}

void stats_to_text(std::ostream& out, const ExploreStats& st) {
  out << "nodes=" << st.nodes << "\n";
  out << "runs=" << st.runs << "\n";
  out << "steps=" << st.steps << "\n";
  out << "sleep_skips=" << st.sleep_skips << "\n";
  out << "fp_prunes=" << st.fp_prunes << "\n";
  out << "hb_races=" << st.hb_races << "\n";
  out << "backtrack_points=" << st.backtrack_points << "\n";
  out << "commute_skips=" << st.commute_skips << "\n";
  out << "injected_crashes=" << st.injected_crashes << "\n";
  out << "injected_drops=" << st.injected_drops << "\n";
  out << "injected_dups=" << st.injected_dups << "\n";
  out << "violations=" << st.violations << "\n";
  out << "exhausted=" << (st.exhausted ? 1 : 0) << "\n";
  // Not `liveness=`: that key belongs to the scenario header (the
  // clause name), and header keys win the parse dispatch.
  out << "graph_liveness=" << (st.liveness ? 1 : 0) << "\n";
  out << "graph_states=" << st.graph_states << "\n";
  out << "graph_edges=" << st.graph_edges << "\n";
  out << "graph_truncated=" << st.graph_truncated << "\n";
}

bool stats_apply(ExploreStats& st, const std::string& key,
                 const std::string& val, bool* ok) {
  *ok = true;
  if (key == "nodes") {
    *ok = parse_u64(val, &st.nodes);
  } else if (key == "runs") {
    *ok = parse_u64(val, &st.runs);
  } else if (key == "steps") {
    *ok = parse_u64(val, &st.steps);
  } else if (key == "sleep_skips") {
    *ok = parse_u64(val, &st.sleep_skips);
  } else if (key == "fp_prunes") {
    *ok = parse_u64(val, &st.fp_prunes);
  } else if (key == "hb_races") {
    *ok = parse_u64(val, &st.hb_races);
  } else if (key == "backtrack_points") {
    *ok = parse_u64(val, &st.backtrack_points);
  } else if (key == "commute_skips") {
    *ok = parse_u64(val, &st.commute_skips);
  } else if (key == "injected_crashes") {
    *ok = parse_u64(val, &st.injected_crashes);
  } else if (key == "injected_drops") {
    *ok = parse_u64(val, &st.injected_drops);
  } else if (key == "injected_dups") {
    *ok = parse_u64(val, &st.injected_dups);
  } else if (key == "violations") {
    *ok = parse_u64(val, &st.violations);
  } else if (key == "exhausted") {
    *ok = parse_bool(val, &st.exhausted);
  } else if (key == "graph_liveness") {
    *ok = parse_bool(val, &st.liveness);
  } else if (key == "graph_states") {
    *ok = parse_u64(val, &st.graph_states);
  } else if (key == "graph_edges") {
    *ok = parse_u64(val, &st.graph_edges);
  } else if (key == "graph_truncated") {
    *ok = parse_u64(val, &st.graph_truncated);
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string to_text(const StateSnapshot& s) {
  std::ostringstream out;
  out << "# wfd_check search snapshot\n";
  out << "snapshot_version=" << s.version << "\n";
  search_header_to_text(out, s.config);
  out << "resume_generation=" << s.resume_generation << "\n";
  out << "wave=" << s.wave << "\n";
  out << "next_unit_id=" << s.next_unit_id << "\n";
  stats_to_text(out, s.stats);
  for (const std::string& id : s.conservative_payloads) {
    out << "conservative=" << escape_line(id) << "\n";
  }
  std::uint64_t frames_total = 0;
  for (const UnitState& u : s.units) {
    unit_to_text(out, u);
    frames_total += u.frames.size();
  }
  for (const NodeState& n : s.nodes) node_to_text(out, n);
  for (std::size_t i = 0; i < s.fingerprints.size(); i += kFpsPerLine) {
    out << "fps=";
    const std::size_t end = std::min(i + kFpsPerLine, s.fingerprints.size());
    for (std::size_t j = i; j < end; ++j) {
      if (j != i) out << ",";
      out << s.fingerprints[j].first << ":" << s.fingerprints[j].second;
    }
    out << "\n";
  }
  // State graph (liveness mode), in committed insertion order — the
  // fair-cycle search is deterministic in that order, so a resumed run
  // must restore it verbatim.
  if (s.graph.have_root) out << "groot=" << s.graph.root << "\n";
  std::uint64_t gedges_total = 0;
  for (const std::uint64_t fp : s.graph.order) {
    const LiveGraphNode& n = s.graph.nodes.at(fp);
    gnode_to_text(out, fp, n);
    for (const LiveGraphEdge& e : n.edges) gedge_to_text(out, e);
    gedges_total += static_cast<std::uint64_t>(n.edges.size());
  }
  // Trailer: count checks plus an end marker, so a torn or truncated
  // file (no matter how it was produced) fails the parse.
  out << "units_total=" << s.units.size() << "\n";
  out << "nodes_total=" << s.nodes.size() << "\n";
  out << "frames_total=" << frames_total << "\n";
  out << "fps_total=" << s.fingerprints.size() << "\n";
  out << "gnodes_total=" << s.graph.order.size() << "\n";
  out << "gedges_total=" << gedges_total << "\n";
  out << "end=snapshot\n";
  return out.str();
}

std::optional<StateSnapshot> parse_snapshot(const std::string& text,
                                            std::string* error,
                                            bool* wrong_version) {
  if (wrong_version != nullptr) *wrong_version = false;
  const auto fail =
      [&](const std::string& why) -> std::optional<StateSnapshot> {
    if (error != nullptr) *error = "bad snapshot: " + why;
    return std::nullopt;
  };
  StateSnapshot s;
  s.version = 0;
  std::istringstream in(text);
  std::string line;
  bool saw_end = false;
  std::optional<std::uint64_t> units_total;
  std::optional<std::uint64_t> nodes_total;
  std::optional<std::uint64_t> frames_total;
  std::optional<std::uint64_t> fps_total;
  std::optional<std::uint64_t> gnodes_total;
  std::optional<std::uint64_t> gedges_total;
  std::uint64_t frames_seen = 0;
  /// Frames still owed to the unit last opened by a unit= line.
  std::uint64_t frames_owed = 0;
  std::uint64_t gedges_seen = 0;
  /// Edges still owed to the node last opened by a gnode= line.
  std::uint64_t gedges_owed = 0;
  std::uint64_t gnode_open = 0;  ///< That node's fingerprint.
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("line without '=': " + line);
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    bool ok = true;
    if (search_header_apply(s.config, key, val, &ok) ||
        stats_apply(s.stats, key, val, &ok)) {
      // Header / stats field; ok already reflects the parse.
    } else if (key == "snapshot_version") {
      std::uint64_t v = 0;
      ok = parse_u64(val, &v) && v <= UINT32_MAX;
      if (ok) s.version = static_cast<std::uint32_t>(v);
    } else if (key == "resume_generation") {
      ok = parse_u64(val, &s.resume_generation);
    } else if (key == "wave") {
      ok = parse_u64(val, &s.wave);
    } else if (key == "next_unit_id") {
      ok = parse_u64(val, &s.next_unit_id);
    } else if (key == "conservative") {
      std::string id;
      ok = unescape_line(val, &id);
      if (ok) s.conservative_payloads.insert(id);
    } else if (key == "unit") {
      if (frames_owed != 0) return fail("unit with missing frames");
      UnitState u;
      std::uint64_t expected = 0;
      if (!parse_unit(val, &u, &expected)) return fail("bad unit: " + val);
      frames_owed = expected;
      s.units.push_back(std::move(u));
    } else if (key == "frame") {
      if (s.units.empty() || frames_owed == 0) {
        return fail("frame without an owning unit");
      }
      FrameState f;
      if (!parse_frame(val, &f)) return fail("bad frame: " + val);
      s.units.back().frames.push_back(std::move(f));
      --frames_owed;
      ++frames_seen;
    } else if (key == "node") {
      NodeState n;
      if (!parse_node(val, &n)) return fail("bad node: " + val);
      s.nodes.push_back(std::move(n));
    } else if (key == "fps") {
      std::string item;
      std::istringstream items(val);
      while (std::getline(items, item, ',')) {
        const std::size_t colon = item.find(':');
        std::uint64_t fp = 0;
        std::uint64_t t = 0;
        if (colon == std::string::npos ||
            !parse_u64(item.substr(0, colon), &fp) ||
            !parse_u64(item.substr(colon + 1), &t)) {
          return fail("bad fingerprint entry: " + item);
        }
        s.fingerprints.emplace_back(fp, t);
      }
    } else if (key == "groot") {
      ok = parse_u64(val, &s.graph.root);
      if (ok) s.graph.have_root = true;
    } else if (key == "gnode") {
      if (gedges_owed != 0) return fail("graph node with missing edges");
      std::uint64_t fp = 0;
      LiveGraphNode n;
      std::uint64_t expected = 0;
      if (!parse_gnode(val, &fp, &n, &expected)) {
        return fail("bad graph node: " + val);
      }
      if (s.graph.nodes.count(fp) != 0) {
        return fail("duplicate graph node " + std::to_string(fp));
      }
      s.graph.at(fp) = std::move(n);
      gedges_owed = expected;
      gnode_open = fp;
    } else if (key == "gedge") {
      if (gedges_owed == 0) return fail("graph edge without an owning node");
      LiveGraphEdge e;
      if (!parse_gedge(val, &e)) return fail("bad graph edge: " + val);
      s.graph.nodes.find(gnode_open)->second.edges.push_back(std::move(e));
      --gedges_owed;
      ++gedges_seen;
    } else if (key == "units_total") {
      std::uint64_t v = 0;
      ok = parse_u64(val, &v);
      if (ok) units_total = v;
    } else if (key == "nodes_total") {
      std::uint64_t v = 0;
      ok = parse_u64(val, &v);
      if (ok) nodes_total = v;
    } else if (key == "frames_total") {
      std::uint64_t v = 0;
      ok = parse_u64(val, &v);
      if (ok) frames_total = v;
    } else if (key == "fps_total") {
      std::uint64_t v = 0;
      ok = parse_u64(val, &v);
      if (ok) fps_total = v;
    } else if (key == "gnodes_total") {
      std::uint64_t v = 0;
      ok = parse_u64(val, &v);
      if (ok) gnodes_total = v;
    } else if (key == "gedges_total") {
      std::uint64_t v = 0;
      ok = parse_u64(val, &v);
      if (ok) gedges_total = v;
    } else if (key == "end") {
      ok = (val == "snapshot");
      saw_end = ok;
    }
    // Unknown keys are ignored for forward compatibility.
    if (!ok) return fail("bad value for " + key + ": " + val);
  }
  if (s.version != StateSnapshot::kVersion) {
    if (wrong_version != nullptr) *wrong_version = true;
    return fail("unsupported snapshot_version " + std::to_string(s.version) +
                " (this build reads and writes version " +
                std::to_string(StateSnapshot::kVersion) +
                "; stored frontiers are not sound across format versions — "
                "restart the search without --resume)");
  }
  if (!saw_end) return fail("truncated (missing end marker)");
  if (frames_owed != 0) return fail("unit with missing frames");
  if (!units_total.has_value() || *units_total != s.units.size()) {
    return fail("unit count mismatch");
  }
  if (!nodes_total.has_value() || *nodes_total != s.nodes.size()) {
    return fail("node count mismatch");
  }
  if (!frames_total.has_value() || *frames_total != frames_seen) {
    return fail("frame count mismatch");
  }
  if (!fps_total.has_value() || *fps_total != s.fingerprints.size()) {
    return fail("fingerprint count mismatch");
  }
  if (gedges_owed != 0) return fail("graph node with missing edges");
  if (!gnodes_total.has_value() || *gnodes_total != s.graph.order.size()) {
    return fail("graph node count mismatch");
  }
  if (!gedges_total.has_value() || *gedges_total != gedges_seen) {
    return fail("graph edge count mismatch");
  }
  if (!s.graph.order.empty() && !s.graph.have_root) {
    return fail("state graph without a root");
  }
  // Internal consistency the fair-cycle search would otherwise
  // WFD_CHECK-crash on: every edge must land on a stored node.
  for (const auto& [fp, n] : s.graph.nodes) {
    for (const LiveGraphEdge& e : n.edges) {
      if (s.graph.nodes.count(e.dst) == 0) {
        return fail("graph edge into an unknown node");
      }
    }
  }
  for (const UnitState& u : s.units) {
    if (u.floor > u.frames.size()) {
      return fail("unit " + std::to_string(u.id) +
                  ": floor exceeds its frame count");
    }
  }
  const std::string why = validate(s.config);
  if (!why.empty()) return fail(why);
  return s;
}

bool save_snapshot(const std::string& path, const StateSnapshot& s,
                   std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  // Temp-file + rename: a run killed mid-write leaves the previous
  // snapshot (or nothing) in place, never a torn one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return fail("cannot write " + tmp);
    out << to_text(s);
    out.flush();
    if (!out) return fail("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail("cannot rename " + tmp + " to " + path);
  }
  return true;
}

std::optional<StateSnapshot> load_snapshot(const std::string& path,
                                           std::string* error,
                                           bool* wrong_version) {
  if (wrong_version != nullptr) *wrong_version = false;
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_snapshot(buf.str(), error, wrong_version);
}

std::string resume_mismatch(const StateSnapshot& snap,
                            const SearchConfig& cfg) {
  // Compare the rendered search headers line by line, so every scenario
  // field and every reduction lever (including ones added later)
  // participates automatically — and only those: threads, budgets and
  // paths are execution-shape knobs a resume may change freely.
  std::ostringstream have;
  std::ostringstream want;
  search_header_to_text(have, snap.config);
  search_header_to_text(want, cfg);
  if (have.str() == want.str()) return "";
  std::istringstream ih(have.str());
  std::istringstream iw(want.str());
  std::string lh;
  std::string lw;
  while (std::getline(ih, lh) && std::getline(iw, lw)) {
    if (lh != lw) {
      return "snapshot is for a different scenario or search "
             "configuration: snapshot has '" +
             lh + "', this run has '" + lw + "'";
    }
  }
  return "snapshot is for a different scenario or search configuration";
}

}  // namespace wfd::explore
