#include "explore/state_store.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "explore/option_text.h"

namespace wfd::explore {

namespace {

using detail::escape_line;
using detail::parse_bool;
using detail::parse_u64;
using detail::scenario_apply;
using detail::scenario_to_text;
using detail::unescape_line;

/// Fingerprint entries per fps= line: keeps lines bounded without
/// bloating the file with one key per entry.
constexpr std::size_t kFpsPerLine = 512;

std::string reduction_to_text(Reduction r) {
  switch (r) {
    case Reduction::kNone:
      return "none";
    case Reduction::kSleepSets:
      return "sleep-sets";
    case Reduction::kDpor:
      return "dpor";
  }
  return "unknown";
}

bool parse_reduction(const std::string& s, Reduction* out) {
  if (s == "none") {
    *out = Reduction::kNone;
  } else if (s == "sleep-sets") {
    *out = Reduction::kSleepSets;
  } else if (s == "dpor") {
    *out = Reduction::kDpor;
  } else {
    return false;
  }
  return true;
}

std::string dependence_to_text(Dependence d) {
  return d == Dependence::kContent ? "content" : "process";
}

bool parse_dependence(const std::string& s, Dependence* out) {
  if (s == "content") {
    *out = Dependence::kContent;
  } else if (s == "process") {
    *out = Dependence::kProcess;
  } else {
    return false;
  }
  return true;
}

void labels_to_text(std::ostream& out, const char* tag,
                    const std::vector<std::uint64_t>& v) {
  out << tag << "=";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out << ",";
    out << v[i];
  }
}

bool parse_labels(const std::string& s, std::vector<std::uint64_t>* out) {
  out->clear();
  if (s.empty()) return true;
  std::string item;
  std::istringstream items(s);
  while (std::getline(items, item, ',')) {
    std::uint64_t v = 0;
    if (!parse_u64(item, &v)) return false;
    out->push_back(v);
  }
  return true;
}

// frame=k=<kind>;c=<chosen>;s=<start>;b=<blocked>;l=<labels>;sl=<sleep>;
//       ex=<explored>;bt=<backtrack>
void frame_to_text(std::ostream& out, const FrameState& f) {
  out << "frame=k=" << static_cast<int>(f.kind) << ";c=" << f.chosen
      << ";s=" << f.start << ";b=" << (f.blocked ? 1 : 0) << ";";
  labels_to_text(out, "l", f.labels);
  out << ";";
  labels_to_text(out, "sl", f.sleep);
  out << ";";
  labels_to_text(out, "ex", f.explored);
  out << ";";
  labels_to_text(out, "bt", f.backtrack);
  out << "\n";
}

bool parse_frame(const std::string& s, FrameState* f) {
  std::string part;
  std::istringstream parts(s);
  bool saw_labels = false;
  while (std::getline(parts, part, ';')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = part.substr(0, eq);
    const std::string val = part.substr(eq + 1);
    std::uint64_t v = 0;
    if (key == "k") {
      if (!parse_u64(val, &v) || v > 2) return false;
      f->kind = static_cast<sim::ChoiceKind>(v);
    } else if (key == "c") {
      if (!parse_u64(val, &v) || v > UINT32_MAX) return false;
      f->chosen = static_cast<std::uint32_t>(v);
    } else if (key == "s") {
      if (!parse_u64(val, &v) || v > UINT32_MAX) return false;
      f->start = static_cast<std::uint32_t>(v);
    } else if (key == "b") {
      bool b = false;
      if (!parse_bool(val, &b)) return false;
      f->blocked = b;
    } else if (key == "l") {
      if (!parse_labels(val, &f->labels)) return false;
      saw_labels = true;
    } else if (key == "sl") {
      if (!parse_labels(val, &f->sleep)) return false;
    } else if (key == "ex") {
      if (!parse_labels(val, &f->explored)) return false;
    } else if (key == "bt") {
      if (!parse_labels(val, &f->backtrack)) return false;
    } else {
      return false;
    }
  }
  // Choice points always carry at least two options (forced moves never
  // materialize frames), and the indices must address the menu.
  return saw_labels && f->labels.size() >= 2 && f->chosen < f->labels.size() &&
         f->start < f->labels.size();
}

void stats_to_text(std::ostream& out, const ExploreStats& st) {
  out << "nodes=" << st.nodes << "\n";
  out << "runs=" << st.runs << "\n";
  out << "steps=" << st.steps << "\n";
  out << "sleep_skips=" << st.sleep_skips << "\n";
  out << "fp_prunes=" << st.fp_prunes << "\n";
  out << "hb_races=" << st.hb_races << "\n";
  out << "backtrack_points=" << st.backtrack_points << "\n";
  out << "commute_skips=" << st.commute_skips << "\n";
  out << "injected_crashes=" << st.injected_crashes << "\n";
  out << "injected_drops=" << st.injected_drops << "\n";
  out << "injected_dups=" << st.injected_dups << "\n";
  out << "violations=" << st.violations << "\n";
  out << "exhausted=" << (st.exhausted ? 1 : 0) << "\n";
}

bool stats_apply(ExploreStats& st, const std::string& key,
                 const std::string& val, bool* ok) {
  *ok = true;
  if (key == "nodes") {
    *ok = parse_u64(val, &st.nodes);
  } else if (key == "runs") {
    *ok = parse_u64(val, &st.runs);
  } else if (key == "steps") {
    *ok = parse_u64(val, &st.steps);
  } else if (key == "sleep_skips") {
    *ok = parse_u64(val, &st.sleep_skips);
  } else if (key == "fp_prunes") {
    *ok = parse_u64(val, &st.fp_prunes);
  } else if (key == "hb_races") {
    *ok = parse_u64(val, &st.hb_races);
  } else if (key == "backtrack_points") {
    *ok = parse_u64(val, &st.backtrack_points);
  } else if (key == "commute_skips") {
    *ok = parse_u64(val, &st.commute_skips);
  } else if (key == "injected_crashes") {
    *ok = parse_u64(val, &st.injected_crashes);
  } else if (key == "injected_drops") {
    *ok = parse_u64(val, &st.injected_drops);
  } else if (key == "injected_dups") {
    *ok = parse_u64(val, &st.injected_dups);
  } else if (key == "violations") {
    *ok = parse_u64(val, &st.violations);
  } else if (key == "exhausted") {
    *ok = parse_bool(val, &st.exhausted);
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string to_text(const StateSnapshot& s) {
  std::ostringstream out;
  out << "# wfd_check search snapshot\n";
  out << "snapshot_version=" << s.version << "\n";
  scenario_to_text(out, s.scenario);
  out << "reduction=" << reduction_to_text(s.reduction) << "\n";
  out << "dependence=" << dependence_to_text(s.dependence) << "\n";
  out << "state_fingerprints=" << (s.state_fingerprints ? 1 : 0) << "\n";
  out << "order_seed=" << s.order_seed << "\n";
  out << "resume_generation=" << s.resume_generation << "\n";
  out << "path_pending=" << (s.path_pending ? 1 : 0) << "\n";
  stats_to_text(out, s.stats);
  for (const std::string& id : s.conservative_payloads) {
    out << "conservative=" << escape_line(id) << "\n";
  }
  for (const FrameState& f : s.frames) frame_to_text(out, f);
  for (std::size_t i = 0; i < s.fingerprints.size(); i += kFpsPerLine) {
    out << "fps=";
    const std::size_t end = std::min(i + kFpsPerLine, s.fingerprints.size());
    for (std::size_t j = i; j < end; ++j) {
      if (j != i) out << ",";
      out << s.fingerprints[j].first << ":" << s.fingerprints[j].second;
    }
    out << "\n";
  }
  // Trailer: count checks plus an end marker, so a torn or truncated
  // file (no matter how it was produced) fails the parse.
  out << "frames_total=" << s.frames.size() << "\n";
  out << "fps_total=" << s.fingerprints.size() << "\n";
  out << "end=snapshot\n";
  return out.str();
}

std::optional<StateSnapshot> parse_snapshot(const std::string& text,
                                            std::string* error,
                                            bool* wrong_version) {
  if (wrong_version != nullptr) *wrong_version = false;
  const auto fail =
      [&](const std::string& why) -> std::optional<StateSnapshot> {
    if (error != nullptr) *error = "bad snapshot: " + why;
    return std::nullopt;
  };
  StateSnapshot s;
  s.version = 0;
  std::istringstream in(text);
  std::string line;
  bool saw_end = false;
  std::optional<std::uint64_t> frames_total;
  std::optional<std::uint64_t> fps_total;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("line without '=': " + line);
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    bool ok = true;
    if (scenario_apply(s.scenario, key, val, &ok) ||
        stats_apply(s.stats, key, val, &ok)) {
      // Scenario / stats field; ok already reflects the parse.
    } else if (key == "snapshot_version") {
      std::uint64_t v = 0;
      ok = parse_u64(val, &v) && v <= UINT32_MAX;
      if (ok) s.version = static_cast<std::uint32_t>(v);
    } else if (key == "reduction") {
      ok = parse_reduction(val, &s.reduction);
    } else if (key == "dependence") {
      ok = parse_dependence(val, &s.dependence);
    } else if (key == "state_fingerprints") {
      ok = parse_bool(val, &s.state_fingerprints);
    } else if (key == "order_seed") {
      ok = parse_u64(val, &s.order_seed);
    } else if (key == "resume_generation") {
      ok = parse_u64(val, &s.resume_generation);
    } else if (key == "path_pending") {
      ok = parse_bool(val, &s.path_pending);
    } else if (key == "conservative") {
      std::string id;
      ok = unescape_line(val, &id);
      if (ok) s.conservative_payloads.insert(id);
    } else if (key == "frame") {
      FrameState f;
      if (!parse_frame(val, &f)) return fail("bad frame: " + val);
      s.frames.push_back(std::move(f));
    } else if (key == "fps") {
      std::string item;
      std::istringstream items(val);
      while (std::getline(items, item, ',')) {
        const std::size_t colon = item.find(':');
        std::uint64_t fp = 0;
        std::uint64_t t = 0;
        if (colon == std::string::npos ||
            !parse_u64(item.substr(0, colon), &fp) ||
            !parse_u64(item.substr(colon + 1), &t)) {
          return fail("bad fingerprint entry: " + item);
        }
        s.fingerprints.emplace_back(fp, t);
      }
    } else if (key == "frames_total") {
      std::uint64_t v = 0;
      ok = parse_u64(val, &v);
      if (ok) frames_total = v;
    } else if (key == "fps_total") {
      std::uint64_t v = 0;
      ok = parse_u64(val, &v);
      if (ok) fps_total = v;
    } else if (key == "end") {
      ok = (val == "snapshot");
      saw_end = ok;
    }
    // Unknown keys are ignored for forward compatibility.
    if (!ok) return fail("bad value for " + key + ": " + val);
  }
  if (s.version != StateSnapshot::kVersion) {
    if (wrong_version != nullptr) *wrong_version = true;
    return fail("unsupported snapshot_version " + std::to_string(s.version) +
                " (this build reads and writes version " +
                std::to_string(StateSnapshot::kVersion) +
                "; stored frontiers are not sound across format versions — "
                "restart the search without --resume)");
  }
  if (!saw_end) return fail("truncated (missing end marker)");
  if (!frames_total.has_value() || *frames_total != s.frames.size()) {
    return fail("frame count mismatch");
  }
  if (!fps_total.has_value() || *fps_total != s.fingerprints.size()) {
    return fail("fingerprint count mismatch");
  }
  const std::string why = ScenarioFactory::validate(s.scenario);
  if (!why.empty()) return fail(why);
  return s;
}

bool save_snapshot(const std::string& path, const StateSnapshot& s,
                   std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  // Temp-file + rename: a run killed mid-write leaves the previous
  // snapshot (or nothing) in place, never a torn one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return fail("cannot write " + tmp);
    out << to_text(s);
    out.flush();
    if (!out) return fail("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return fail("cannot rename " + tmp + " to " + path);
  }
  return true;
}

std::optional<StateSnapshot> load_snapshot(const std::string& path,
                                           std::string* error,
                                           bool* wrong_version) {
  if (wrong_version != nullptr) *wrong_version = false;
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_snapshot(buf.str(), error, wrong_version);
}

std::string resume_mismatch(const StateSnapshot& snap,
                            const ScenarioOptions& scenario,
                            const ExplorerOptions& opt) {
  // Compare the rendered scenario headers line by line, so every field
  // (including ones added later) participates automatically.
  std::ostringstream have;
  std::ostringstream want;
  scenario_to_text(have, snap.scenario);
  scenario_to_text(want, scenario);
  if (have.str() != want.str()) {
    std::istringstream ih(have.str());
    std::istringstream iw(want.str());
    std::string lh;
    std::string lw;
    while (std::getline(ih, lh) && std::getline(iw, lw)) {
      if (lh != lw) {
        return "snapshot is for a different scenario: snapshot has '" + lh +
               "', this run has '" + lw + "'";
      }
    }
    return "snapshot is for a different scenario";
  }
  // The frontier's sleep/backtrack sets and visit order are only sound
  // under the exact reduction configuration that produced them.
  if (snap.reduction != opt.reduction) {
    return "snapshot was explored with --reduction=" +
           reduction_to_text(snap.reduction) + ", this run uses " +
           reduction_to_text(opt.reduction);
  }
  if (snap.dependence != opt.dependence) {
    return "snapshot was explored with --dep=" +
           dependence_to_text(snap.dependence) + ", this run uses " +
           dependence_to_text(opt.dependence);
  }
  if (snap.state_fingerprints != opt.state_fingerprints) {
    return std::string("snapshot fingerprint pruning was ") +
           (snap.state_fingerprints ? "on" : "off") + ", this run has it " +
           (opt.state_fingerprints ? "on" : "off");
  }
  if (snap.order_seed != opt.order_seed) {
    return "snapshot order_seed " + std::to_string(snap.order_seed) +
           " differs from this run's " + std::to_string(opt.order_seed);
  }
  return "";
}

}  // namespace wfd::explore
