#include "explore/replay_io.h"

#include <bit>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "explore/liveness.h"
#include "explore/option_text.h"
#include "sim/scheduler.h"

namespace wfd::explore {

using detail::escape_line;
using detail::parse_u64;
using detail::scenario_apply;
using detail::scenario_to_text;
using detail::unescape_line;

namespace {

void log_to_stream(std::ostringstream& out, const sim::DecisionLog& log) {
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (i != 0) out << ",";
    out << log[i];
  }
}

bool parse_log(const std::string& val, sim::DecisionLog* log,
               std::string* bad_item) {
  std::string item;
  std::istringstream items(val);
  while (std::getline(items, item, ',')) {
    std::uint64_t d = 0;
    if (!parse_u64(item, &d) || d > UINT32_MAX) {
      *bad_item = item;
      return false;
    }
    log->push_back(static_cast<std::uint32_t>(d));
  }
  return true;
}

}  // namespace

std::string to_text(const ReplayFile& f) {
  std::ostringstream out;
  out << "# wfd_check replay\n";
  // The note is free-form provenance; escape it so an embedded newline
  // (e.g. a multi-line violation message) cannot break the line-oriented
  // format and make the file fail to re-parse.
  if (!f.note.empty()) out << "note=" << escape_line(f.note) << "\n";
  scenario_to_text(out, f.scenario);
  out << "decisions=";
  log_to_stream(out, f.decisions);
  out << "\n";
  if (!f.loop.empty()) {
    out << "loop=";
    log_to_stream(out, f.loop);
    out << "\n";
  }
  return out.str();
}

std::optional<ReplayFile> parse_replay(const std::string& text,
                                       std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<ReplayFile> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  ReplayFile f;
  std::istringstream in(text);
  std::string line;
  bool saw_decisions = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("line without '=': " + line);
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    bool ok = true;
    if (scenario_apply(f.scenario, key, val, &ok)) {
      // Scenario field; ok already reflects the parse.
    } else if (key == "note") {
      if (!unescape_line(val, &f.note)) return fail("bad note escape: " + val);
    } else if (key == "decisions") {
      saw_decisions = true;
      std::string bad;
      if (!parse_log(val, &f.decisions, &bad)) {
        return fail("bad decision entry: " + bad);
      }
    } else if (key == "loop") {
      std::string bad;
      if (!parse_log(val, &f.loop, &bad)) {
        return fail("bad loop entry: " + bad);
      }
    }
    // Unknown keys are ignored for forward compatibility.
    if (!ok) return fail("bad value for " + key + ": " + val);
  }
  if (!saw_decisions) return fail("missing decisions= line");
  if (!f.loop.empty() && f.scenario.liveness.empty()) {
    return fail("loop= (a lasso) requires a liveness= clause");
  }
  const std::string why = ScenarioFactory::validate(f.scenario);
  if (!why.empty()) return fail(why);
  return f;
}

bool save_replay(const std::string& path, const ReplayFile& f) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_text(f);
  return static_cast<bool>(out);
}

std::optional<ReplayFile> load_replay(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_replay(buf.str(), error);
}

ReplayOutcome run_replay(const ScenarioBuilder& build,
                         const sim::DecisionLog& decisions) {
  sim::FixedChoices choices(decisions);
  Scenario sc = build(choices);
  ReplayOutcome out;
  while (sc.sim->step()) {
    ++out.steps;
    for (auto& inv : sc.invariants) {
      out.violation = inv->check(*sc.sim);
      if (out.violation.has_value()) return out;
    }
  }
  out.all_done = sc.sim->all_alive_done();
  return out;
}

LassoOutcome run_lasso(const ScenarioBuilder& build,
                       const sim::DecisionLog& stem,
                       const sim::DecisionLog& loop) {
  LassoOutcome out;
  if (loop.empty()) {
    out.reason = "empty loop";
    return out;
  }
  sim::DecisionLog full = stem;
  full.insert(full.end(), loop.begin(), loop.end());
  sim::MenuChoices choices(full);
  Scenario sc = build(choices);
  WFD_CHECK_MSG(!sc.liveness.empty(), "lasso replay without a liveness clause");
  const LivenessClause& clause = *sc.liveness.front();

  const auto check_safety = [&]() {
    for (auto& inv : sc.invariants) {
      out.violation = inv->check(*sc.sim);
      if (out.violation.has_value()) return true;
    }
    return false;
  };

  // Stem: run to the decision boundary. The boundary must fall between
  // steps — a lasso whose loop starts mid-step is malformed.
  while (choices.consumed() < stem.size()) {
    if (!sc.sim->step()) {
      out.reason = "run halted inside the stem (horizon too small?)";
      return out;
    }
    ++out.stem_steps;
    if (check_safety()) {
      out.reason = "safety violation inside the stem";
      return out;
    }
  }
  if (choices.consumed() != stem.size()) {
    out.reason = "stem/loop boundary falls inside one step's decisions";
    return out;
  }
  const std::optional<std::uint64_t> entry = scenario_fingerprint(sc);
  WFD_CHECK_MSG(entry.has_value(), "lasso replay without fingerprints");

  // Loop: one unrolling, collecting the fairness evidence. enabled /
  // sched accumulate by union over the loop's states and steps;
  // deliverable — an n×n channel bitset, bit live_channel_bit(s, r) —
  // intersects (the obligation is a channel's delivery kept pending at
  // EVERY state of the cycle) while delivered unions the channels the
  // executed deliveries actually served.
  bool goal_false_seen = !clause.goal(*sc.sim);
  std::uint64_t enabled = 0;
  std::uint64_t sched = 0;
  std::uint64_t deliverable_all = ~std::uint64_t{0};
  std::uint64_t delivered = 0;
  while (choices.consumed() < full.size()) {
    if (!sc.sim->step()) {
      out.reason = "run halted inside the loop (horizon too small?)";
      return out;
    }
    ++out.loop_steps;
    if (check_safety()) {
      out.reason = "safety violation inside the loop";
      return out;
    }
    // The menu predates the step, so the one message the step consumed
    // is off the network now; its sender is on last_step().
    const sim::Network& net = sc.sim->network();
    const auto sender_of = [&](std::uint64_t id) -> ProcessId {
      return net.contains(id) ? net.get(id).from : sc.sim->last_step().from;
    };
    std::uint64_t dl = 0;
    for (const std::uint64_t l : choices.menu()) {
      if (sim::ReplayScheduler::label_is_fault(l)) continue;
      const ProcessId to = sim::ReplayScheduler::label_process(l);
      enabled |= std::uint64_t{1} << to;
      const std::uint64_t id = sim::ReplayScheduler::label_message(l);
      if (id != 0) dl |= live_channel_bit(sender_of(id), to);
    }
    deliverable_all &= dl;
    const std::uint64_t ex = choices.executed();
    if (sim::ReplayScheduler::label_is_fault(ex)) {
      // Crash / drop / duplicate budgets are finite; a loop containing
      // an adversary move cannot repeat forever.
      out.reason = "loop contains an adversary move";
      return out;
    }
    sched |= std::uint64_t{1} << sim::ReplayScheduler::label_process(ex);
    if (sim::ReplayScheduler::label_message(ex) != 0) {
      delivered |= live_channel_bit(sc.sim->last_step().from,
                                    sim::ReplayScheduler::label_process(ex));
    }
    if (!clause.goal(*sc.sim)) goal_false_seen = true;
  }
  if (choices.consumed() != full.size()) {
    out.reason = "loop end falls inside one step's decisions";
    return out;
  }
  const std::optional<std::uint64_t> landed = scenario_fingerprint(sc);
  if (landed != entry) {
    out.reason = "loop does not return to its entry state";
    return out;
  }
  if ((enabled & ~sched) != 0) {
    out.reason = "unfair: some process enabled in the loop is never scheduled";
    return out;
  }
  if ((deliverable_all & ~delivered) != 0) {
    const int bit = std::countr_zero(deliverable_all & ~delivered);
    out.reason = "unfair: channel " +
                 std::to_string(bit / kLiveChannelStride) + "->" +
                 std::to_string(bit % kLiveChannelStride) +
                 " stays pending through the whole loop unserved";
    return out;
  }
  if (!goal_false_seen) {
    out.reason = "the goal holds at every state of the loop";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace wfd::explore
