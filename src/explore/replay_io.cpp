#include "explore/replay_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "explore/option_text.h"

namespace wfd::explore {

using detail::escape_line;
using detail::parse_u64;
using detail::scenario_apply;
using detail::scenario_to_text;
using detail::unescape_line;

std::string to_text(const ReplayFile& f) {
  std::ostringstream out;
  out << "# wfd_check replay\n";
  // The note is free-form provenance; escape it so an embedded newline
  // (e.g. a multi-line violation message) cannot break the line-oriented
  // format and make the file fail to re-parse.
  if (!f.note.empty()) out << "note=" << escape_line(f.note) << "\n";
  scenario_to_text(out, f.scenario);
  out << "decisions=";
  for (std::size_t i = 0; i < f.decisions.size(); ++i) {
    if (i != 0) out << ",";
    out << f.decisions[i];
  }
  out << "\n";
  return out.str();
}

std::optional<ReplayFile> parse_replay(const std::string& text,
                                       std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<ReplayFile> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  ReplayFile f;
  std::istringstream in(text);
  std::string line;
  bool saw_decisions = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("line without '=': " + line);
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    bool ok = true;
    if (scenario_apply(f.scenario, key, val, &ok)) {
      // Scenario field; ok already reflects the parse.
    } else if (key == "note") {
      if (!unescape_line(val, &f.note)) return fail("bad note escape: " + val);
    } else if (key == "decisions") {
      saw_decisions = true;
      std::string item;
      std::istringstream items(val);
      while (std::getline(items, item, ',')) {
        std::uint64_t d = 0;
        if (!parse_u64(item, &d) || d > UINT32_MAX) {
          return fail("bad decision entry: " + item);
        }
        f.decisions.push_back(static_cast<std::uint32_t>(d));
      }
    }
    // Unknown keys are ignored for forward compatibility.
    if (!ok) return fail("bad value for " + key + ": " + val);
  }
  if (!saw_decisions) return fail("missing decisions= line");
  const std::string why = ScenarioFactory::validate(f.scenario);
  if (!why.empty()) return fail(why);
  return f;
}

bool save_replay(const std::string& path, const ReplayFile& f) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_text(f);
  return static_cast<bool>(out);
}

std::optional<ReplayFile> load_replay(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_replay(buf.str(), error);
}

ReplayOutcome run_replay(const ScenarioBuilder& build,
                         const sim::DecisionLog& decisions) {
  sim::FixedChoices choices(decisions);
  Scenario sc = build(choices);
  ReplayOutcome out;
  while (sc.sim->step()) {
    ++out.steps;
    for (auto& inv : sc.invariants) {
      out.violation = inv->check(*sc.sim);
      if (out.violation.has_value()) return out;
    }
  }
  out.all_done = sc.sim->all_alive_done();
  return out;
}

}  // namespace wfd::explore
