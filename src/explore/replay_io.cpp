#include "explore/replay_io.h"

#include <cstdint>
#include <fstream>
#include <sstream>

namespace wfd::explore {

namespace {

std::string time_to_text(Time t) {
  return t == kNever ? "never" : std::to_string(t);
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_time(const std::string& s, Time* out) {
  if (s == "never") {
    *out = kNever;
    return true;
  }
  return parse_u64(s, out);
}

bool parse_int(const std::string& s, int* out) {
  std::uint64_t v = 0;
  const bool neg = !s.empty() && s[0] == '-';
  if (!parse_u64(neg ? s.substr(1) : s, &v)) return false;
  *out = neg ? -static_cast<int>(v) : static_cast<int>(v);
  return true;
}

bool parse_bool(const std::string& s, bool* out) {
  if (s != "0" && s != "1") return false;
  *out = (s == "1");
  return true;
}

}  // namespace

std::string to_text(const ReplayFile& f) {
  std::ostringstream out;
  const ScenarioOptions& o = f.scenario;
  out << "# wfd_check replay\n";
  if (!f.note.empty()) out << "note=" << f.note << "\n";
  out << "problem=" << o.problem << "\n";
  out << "n=" << o.n << "\n";
  out << "crashes=" << o.crashes << "\n";
  out << "crash_time=" << time_to_text(o.crash_time) << "\n";
  out << "max_steps=" << o.max_steps << "\n";
  out << "seed=" << o.seed << "\n";
  out << "stabilization=" << time_to_text(o.stabilization) << "\n";
  out << "fd_per_query=" << (o.fd_per_query ? 1 : 0) << "\n";
  out << "record_fd_samples=" << (o.record_fd_samples ? 1 : 0) << "\n";
  out << "nbac_no_voter=" << o.nbac_no_voter << "\n";
  out << "reg_ops=" << o.reg_ops << "\n";
  out << "reg_readers=" << o.reg_readers << "\n";
  out << "abcast_senders=" << o.abcast_senders << "\n";
  out << "oldest_per_channel=" << (o.oldest_per_channel ? 1 : 0) << "\n";
  out << "lambda_always=" << (o.lambda_always ? 1 : 0) << "\n";
  out << "decisions=";
  for (std::size_t i = 0; i < f.decisions.size(); ++i) {
    if (i != 0) out << ",";
    out << f.decisions[i];
  }
  out << "\n";
  return out.str();
}

std::optional<ReplayFile> parse_replay(const std::string& text,
                                       std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<ReplayFile> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  ReplayFile f;
  std::istringstream in(text);
  std::string line;
  bool saw_decisions = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("line without '=': " + line);
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    ScenarioOptions& o = f.scenario;
    bool ok = true;
    if (key == "note") {
      f.note = val;
    } else if (key == "problem") {
      o.problem = val;
    } else if (key == "n") {
      ok = parse_int(val, &o.n);
    } else if (key == "crashes") {
      ok = parse_int(val, &o.crashes);
    } else if (key == "crash_time") {
      ok = parse_time(val, &o.crash_time);
    } else if (key == "max_steps") {
      ok = parse_time(val, &o.max_steps);
    } else if (key == "seed") {
      ok = parse_u64(val, &o.seed);
    } else if (key == "stabilization") {
      ok = parse_time(val, &o.stabilization);
    } else if (key == "fd_per_query") {
      ok = parse_bool(val, &o.fd_per_query);
    } else if (key == "record_fd_samples") {
      ok = parse_bool(val, &o.record_fd_samples);
    } else if (key == "nbac_no_voter") {
      ok = parse_int(val, &o.nbac_no_voter);
    } else if (key == "reg_ops") {
      ok = parse_int(val, &o.reg_ops);
    } else if (key == "reg_readers") {
      ok = parse_int(val, &o.reg_readers);
    } else if (key == "abcast_senders") {
      ok = parse_int(val, &o.abcast_senders);
    } else if (key == "oldest_per_channel") {
      ok = parse_bool(val, &o.oldest_per_channel);
    } else if (key == "lambda_always") {
      ok = parse_bool(val, &o.lambda_always);
    } else if (key == "decisions") {
      saw_decisions = true;
      std::string item;
      std::istringstream items(val);
      while (std::getline(items, item, ',')) {
        std::uint64_t d = 0;
        if (!parse_u64(item, &d) || d > UINT32_MAX) {
          return fail("bad decision entry: " + item);
        }
        f.decisions.push_back(static_cast<std::uint32_t>(d));
      }
    }
    // Unknown keys are ignored for forward compatibility.
    if (!ok) return fail("bad value for " + key + ": " + val);
  }
  if (!saw_decisions) return fail("missing decisions= line");
  const std::string why = ScenarioFactory::validate(f.scenario);
  if (!why.empty()) return fail(why);
  return f;
}

bool save_replay(const std::string& path, const ReplayFile& f) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_text(f);
  return static_cast<bool>(out);
}

std::optional<ReplayFile> load_replay(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_replay(buf.str(), error);
}

ReplayOutcome run_replay(const ScenarioBuilder& build,
                         const sim::DecisionLog& decisions) {
  sim::FixedChoices choices(decisions);
  Scenario sc = build(choices);
  ReplayOutcome out;
  while (sc.sim->step()) {
    ++out.steps;
    for (auto& inv : sc.invariants) {
      out.violation = inv->check(*sc.sim);
      if (out.violation.has_value()) return out;
    }
  }
  out.all_done = sc.sim->all_alive_done();
  return out;
}

}  // namespace wfd::explore
