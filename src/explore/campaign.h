// Parallel checking campaign: fans randomized exploration across a
// thread pool and aggregates results lock-free.
//
// Two kinds of worker share the pool:
//  * Random-walk workers draw whole runs from the choice tree with
//    per-run deterministic seeds, recording every decision so any
//    violating run is immediately replayable (and shrinkable).
//  * Frontier workers each run a budgeted DFS whose per-frame child
//    order is rotated by a worker-specific seed, so different workers
//    sink into different regions of the same tree. They share the
//    campaign's stop flag (ExplorerOptions::cancel), so a stop_at_first
//    counterexample claimed by any worker halts them within one
//    expansion instead of letting each burn its full budget.
//
// Safety violations yield a counterexample (the first one is claimed by
// an atomic flag and, optionally, shrunk). Liveness clauses are only
// *suspects* on bounded runs — a run that merely hit the horizon hasn't
// refuted "eventually" — so they are counted separately and never
// produce a counterexample.
#pragma once

#include <cstdint>
#include <optional>

#include "explore/explorer.h"
#include "explore/scenario.h"
#include "explore/types.h"

namespace wfd::explore {

struct CampaignOptions {
  /// Worker threads for random walks (at least 1).
  int threads = 4;
  /// Total random-walk runs across all workers.
  std::uint64_t runs = 1000;
  /// Root seed; run i uses a hash of (seed, i), so reports are
  /// reproducible regardless of thread interleaving.
  std::uint64_t seed = 1;
  bool stop_at_first = true;
  /// Shrink the claimed counterexample before reporting it.
  bool shrink = true;
  /// Additional threads running randomized-order budgeted DFS.
  int frontier_workers = 0;
  /// Per-frontier-worker choice-point budget.
  std::uint64_t frontier_states = 20000;
  /// Evaluate EventualProperties at the end of each completed run.
  bool check_eventual = true;
};

struct CampaignReport {
  std::uint64_t runs = 0;   ///< Random-walk runs completed.
  std::uint64_t steps = 0;  ///< Simulator steps, all workers.
  std::uint64_t nodes = 0;  ///< Choice points, frontier workers.
  std::uint64_t violations = 0;
  std::uint64_t liveness_suspects = 0;
  std::optional<Counterexample> cex;  ///< First claimed (shrunk if asked).
  std::uint64_t shrunk_from = 0;  ///< Decisions before shrinking (0: none).
};

CampaignReport run_campaign(const ScenarioBuilder& build,
                            const CampaignOptions& opt);

}  // namespace wfd::explore
