// Parallel checking campaign: fans randomized exploration across a
// thread pool and aggregates results lock-free.
//
// Two kinds of worker share the pool:
//  * Random-walk workers draw whole runs from the choice tree with
//    per-run deterministic seeds, recording every decision so any
//    violating run is immediately replayable (and shrinkable).
//  * The frontier is ONE wave-scheduled exhaustive Explorer running
//    with SearchConfig::frontier_workers threads (and an order seed
//    derived from the campaign seed), alongside the walkers. It shares
//    the campaign's stop flag (SearchConfig::cancel on the frontier's
//    config), so a stop_at_first counterexample claimed by any worker
//    halts it within one step instead of letting it burn its full
//    state budget — and vice versa.
//
// Safety violations yield a counterexample (the first one is claimed by
// an atomic flag and, optionally, shrunk). Liveness clauses are only
// *suspects* on bounded runs — a run that merely hit the horizon hasn't
// refuted "eventually" — so they are counted separately and never
// produce a counterexample.
#pragma once

#include <cstdint>
#include <optional>

#include "explore/scenario.h"
#include "explore/search_config.h"
#include "explore/types.h"

namespace wfd::explore {

struct CampaignReport {
  std::uint64_t runs = 0;   ///< Random-walk runs completed.
  std::uint64_t steps = 0;  ///< Simulator steps, all workers.
  std::uint64_t nodes = 0;  ///< Choice points, frontier search.
  std::uint64_t violations = 0;
  std::uint64_t liveness_suspects = 0;
  std::optional<Counterexample> cex;  ///< First claimed (shrunk if asked).
  std::uint64_t shrunk_from = 0;  ///< Decisions before shrinking (0: none).
};

/// Runs the campaign described by `cfg` (the campaign section plus
/// scenario/seed/stop_at_first; `threads` is the random-walk worker
/// count, `frontier_workers` the frontier Explorer's thread count — 0
/// disables the frontier, `frontier_states` its state cap with 0
/// falling back to `max_states`). `cfg` must already be valid.
CampaignReport run_campaign(const ScenarioBuilder& build,
                            const SearchConfig& cfg);

}  // namespace wfd::explore
