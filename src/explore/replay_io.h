// Counterexample persistence and deterministic re-execution.
//
// A replay file carries everything a run is a function of: the full
// scenario options plus the decision sequence. The format is a tiny
// line-oriented key=value text (stable across versions by ignoring
// unknown keys), so counterexamples can live in bug reports and CI logs
// and be re-run with `wfd_check --replay=<file>`.
#pragma once

#include <optional>
#include <string>

#include "explore/scenario.h"
#include "explore/types.h"
#include "sim/choice.h"

namespace wfd::explore {

struct ReplayFile {
  ScenarioOptions scenario;
  sim::DecisionLog decisions;
  /// Liveness lassos only: the repeatable decision block. When
  /// non-empty, `decisions` is the stem and the file replays through
  /// run_lasso (the loop must close on the stem's landing state) rather
  /// than run_replay.
  sim::DecisionLog loop;
  /// Free-form provenance (which property failed, how it was found).
  std::string note;
};

/// Renders / parses the text format. parse() returns nullopt (with a
/// diagnosis in *error when given) on malformed input or invalid
/// scenario options.
std::string to_text(const ReplayFile& f);
std::optional<ReplayFile> parse_replay(const std::string& text,
                                       std::string* error = nullptr);

/// File convenience wrappers; save returns false on I/O failure.
bool save_replay(const std::string& path, const ReplayFile& f);
std::optional<ReplayFile> load_replay(const std::string& path,
                                      std::string* error = nullptr);

/// What one deterministic re-execution of a decision log produced.
struct ReplayOutcome {
  std::optional<Violation> violation;
  std::uint64_t steps = 0;
  bool all_done = false;  ///< Every alive process finished its protocol.
};

/// Re-execute `decisions` against a fresh scenario, checking all its
/// invariants after every step and stopping at the first violation.
/// Decisions past the end of the log default to option 0 (FixedChoices),
/// so shrunk prefixes still run to a halt.
ReplayOutcome run_replay(const ScenarioBuilder& build,
                         const sim::DecisionLog& decisions);

/// What one validation replay of a lasso (stem + loop) established.
struct LassoOutcome {
  /// The lasso is a genuine fair goal-avoiding cycle: the loop closes
  /// on the stem's landing fingerprint, schedules every process enabled
  /// in it, serves every continuously pending delivery, contains no
  /// adversary move (faults have budgets, so they cannot repeat
  /// forever), and visits a goal-false state.
  bool ok = false;
  std::string reason;  ///< Why not, when !ok. Empty when ok.
  /// A safety invariant fired mid-replay (also !ok; the lasso claim is
  /// moot but the violation itself is worth reporting).
  std::optional<Violation> violation;
  std::uint64_t stem_steps = 0;
  std::uint64_t loop_steps = 0;
};

/// Validate a lasso counterexample by deterministic re-execution — the
/// graph-free twin of find_fair_lasso's claim, used by --replay and by
/// shrink_lasso's reproduction predicate. The scenario must carry a
/// liveness clause, and the builder's horizon must cover
/// stem.size()+loop.size() steps (callers widen max_steps; under the
/// liveness validate() rules menus and fingerprints are
/// horizon-independent, so widening never changes the replayed
/// transitions).
LassoOutcome run_lasso(const ScenarioBuilder& build,
                       const sim::DecisionLog& stem,
                       const sim::DecisionLog& loop);

}  // namespace wfd::explore
