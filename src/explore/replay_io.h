// Counterexample persistence and deterministic re-execution.
//
// A replay file carries everything a run is a function of: the full
// scenario options plus the decision sequence. The format is a tiny
// line-oriented key=value text (stable across versions by ignoring
// unknown keys), so counterexamples can live in bug reports and CI logs
// and be re-run with `wfd_check --replay=<file>`.
#pragma once

#include <optional>
#include <string>

#include "explore/scenario.h"
#include "explore/types.h"
#include "sim/choice.h"

namespace wfd::explore {

struct ReplayFile {
  ScenarioOptions scenario;
  sim::DecisionLog decisions;
  /// Free-form provenance (which property failed, how it was found).
  std::string note;
};

/// Renders / parses the text format. parse() returns nullopt (with a
/// diagnosis in *error when given) on malformed input or invalid
/// scenario options.
std::string to_text(const ReplayFile& f);
std::optional<ReplayFile> parse_replay(const std::string& text,
                                       std::string* error = nullptr);

/// File convenience wrappers; save returns false on I/O failure.
bool save_replay(const std::string& path, const ReplayFile& f);
std::optional<ReplayFile> load_replay(const std::string& path,
                                      std::string* error = nullptr);

/// What one deterministic re-execution of a decision log produced.
struct ReplayOutcome {
  std::optional<Violation> violation;
  std::uint64_t steps = 0;
  bool all_done = false;  ///< Every alive process finished its protocol.
};

/// Re-execute `decisions` against a fresh scenario, checking all its
/// invariants after every step and stopping at the first violation.
/// Decisions past the end of the log default to option 0 (FixedChoices),
/// so shrunk prefixes still run to a halt.
ReplayOutcome run_replay(const ScenarioBuilder& build,
                         const sim::DecisionLog& decisions);

}  // namespace wfd::explore
