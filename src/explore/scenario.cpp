#include "explore/scenario.h"

#include <algorithm>

#include "broadcast/atomic_broadcast.h"
#include "broadcast/quasi_reliable.h"
#include "broadcast/reliable_broadcast.h"
#include "common/check.h"
#include "consensus/omega_sigma_consensus.h"
#include "explore/choice_oracle.h"
#include "explore/liveness.h"
#include "explore/seeded_bug.h"
#include "fd/heartbeat_omega.h"
#include "inject/fault_plan.h"
#include "inject/fd_adversary.h"
#include "nbac/nbac_from_qc.h"
#include "qc/psi_qc.h"
#include "reg/abd_register.h"
#include "reg/register_client.h"
#include "sim/scheduler.h"

namespace wfd::explore {

namespace {

/// A process that does nothing: the simulator samples (and records) the
/// oracle at every step regardless, which is all the sigma scenario
/// needs to feed SigmaIntersectionInvariant.
class FdProbeProcess : public sim::Process {
 public:
  void on_step(sim::Context&, const sim::Envelope*) override {}
};

/// Keeps an rb run alive until this process has delivered every
/// broadcast message: UrbModule itself is done once its outbox drains,
/// which would halt the simulator with echoes still in flight. Its
/// state is a pure function of the UrbModule's, so it encodes nothing.
class UrbWaiter : public sim::Module {
 public:
  UrbWaiter(const broadcast::UrbModule* rb, std::uint64_t expect)
      : rb_(rb), expect_(expect) {}
  [[nodiscard]] bool done() const override {
    return rb_->delivered_count() >= expect_;
  }
  void on_message(ProcessId, const sim::Payload&) override {}
  [[nodiscard]] bool tick_noop() const override { return true; }
  void encode_state(sim::StateEncoder&) const override {}

 private:
  const broadcast::UrbModule* rb_;
  std::uint64_t expect_;
};

/// Problems whose constructions rely on Sigma-style quorum histories:
/// their failure patterns — scripted or reconstructed by injection —
/// must keep a majority correct.
bool needs_majority(const std::string& problem) {
  return problem == "consensus" || problem == "consensus-live-bug" ||
         problem == "consensus-crash-live-bug" || problem == "qc" ||
         problem == "nbac" || problem == "sigma" ||
         problem == "register" || problem == "register-regular" ||
         problem == "abcast";
}

std::vector<std::int64_t> proposals(int n) {
  std::vector<std::int64_t> out;
  for (int i = 0; i < n; ++i) out.push_back(i % 2);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

ScenarioFactory::ScenarioFactory(ScenarioOptions opt) : opt_(std::move(opt)) {
  WFD_CHECK_MSG(validate(opt_).empty(), "invalid scenario options");
}

const std::vector<ProblemSpec>& ScenarioFactory::problems() {
  static const std::vector<ProblemSpec> kProblems = {
      {"consensus"}, {"consensus-bug"},    {"consensus-crash-bug"},
      {"consensus-live-bug"},               {"consensus-crash-live-bug"},
      {"qc"},        {"nbac"},             {"sigma"},
      {"register"},  {"register-regular"}, {"abcast"},
      {"rb"},
      // The implementable heartbeat Omega is a service: its modules are
      // never done, so bounded-safety exhaustion has no halting states
      // to prune and fills the horizon everywhere. Exhaustive mode
      // exists for --liveness=fd-completeness (fair-cycle search over
      // the depth-bounded state graph, with truncation reported);
      // campaign (randomized liveness) and replay remain the scalable
      // modes.
      {"omega-impl"},
  };
  return kProblems;
}

bool ScenarioFactory::supports_mode(const std::string& problem,
                                    const std::string& mode) {
  for (const ProblemSpec& p : problems()) {
    if (p.name != problem) continue;
    if (mode == "exhaustive") return p.exhaustive;
    if (mode == "campaign") return p.campaign;
    if (mode == "replay") return p.replay;
    return false;
  }
  return false;
}

std::string ScenarioFactory::validate(const ScenarioOptions& opt) {
  if (opt.n < 1 || opt.n > kMaxProcesses) return "n out of range";
  if (opt.crashes < 0 || opt.crashes >= opt.n) {
    return "crashes must be in [0, n)";
  }
  if (opt.max_steps == 0) return "max_steps must be positive";
  if (needs_majority(opt.problem) && 2 * opt.crashes >= opt.n) {
    return "problem '" + opt.problem +
           "' explores Sigma histories and needs a majority-correct "
           "pattern (crashes < n/2)";
  }
  if (opt.crash_mode != "script" && opt.crash_mode != "explore") {
    return "crash_mode must be 'script' or 'explore'";
  }
  if (opt.crash_mode == "explore") {
    if (opt.crash_time != kNever) {
      return "crash_mode 'explore' picks crash times itself; crash_time "
             "must stay unset";
    }
    if (opt.stabilization != kNever) {
      return "crash_mode 'explore' reconstructs the pattern on the fly; "
             "a finite stabilization time is not supported";
    }
  }
  if (opt.loss_drops < 0 || opt.loss_dups < 0) {
    return "loss budgets must be non-negative";
  }
  if (opt.fd_adversarial && opt.stabilization != kNever) {
    return "fd_adversarial defers convergence past the horizon and "
           "requires stabilization == kNever";
  }
  bool known = false;
  for (const ProblemSpec& p : problems()) known = known || p.name == opt.problem;
  if (!known) return "unknown problem '" + opt.problem + "'";
  if (opt.nbac_no_voter != kNoProcess &&
      (opt.nbac_no_voter < 0 || opt.nbac_no_voter >= opt.n)) {
    return "nbac_no_voter out of range";
  }
  if (opt.reg_ops < 1) return "reg_ops must be positive";
  if (opt.reg_readers < 0 || opt.reg_readers >= opt.n) {
    return "reg_readers must be in [0, n)";
  }
  if (opt.abcast_senders < 1 || opt.abcast_senders > opt.n) {
    return "abcast_senders must be in [1, n]";
  }
  if (!opt.liveness.empty()) {
    const std::vector<std::string> clauses = liveness_clauses(opt.problem);
    if (std::find(clauses.begin(), clauses.end(), opt.liveness) ==
        clauses.end()) {
      std::string avail;
      for (const std::string& c : clauses) {
        if (!avail.empty()) avail += ", ";
        avail += c;
      }
      return "liveness clause '" + opt.liveness + "' is not available for "
             "problem '" + opt.problem + "'" +
             (avail.empty() ? "" : " (available: " + avail + ")");
    }
    // Fair-cycle search reads every infinite unrolling of a graph cycle
    // as a run of the system, so each source of nondeterminism must be
    // legal *in the limit* — not merely prefix-legal — and the enabled
    // menu at a state must be a function of its fingerprint alone.
    if (opt.fd_adversarial) {
      return "liveness checking needs limit-legal detector histories; "
             "fd_adversarial explores prefix-legal flapping";
    }
    if (opt.stabilization != kNever) {
      return "liveness checking folds convergence into the static "
             "history itself; stabilization must stay unset";
    }
    if (!opt.lambda_always) {
      return "liveness fairness quantifies over tick steps and needs "
             "lambda_always";
    }
    if (opt.n > kLiveChannelStride) {
      return "liveness checking tracks communication fairness per "
             "directed channel in an n x n bitset and supports n <= " +
             std::to_string(kLiveChannelStride);
    }
    // Among the liveness-capable problems, these consult an oracle
    // component (mirrors the table in build()).
    const bool oracle_backed = opt.problem == "consensus" ||
                               opt.problem == "consensus-live-bug" ||
                               opt.problem == "consensus-crash-live-bug" ||
                               opt.problem == "qc" || opt.problem == "nbac";
    if (oracle_backed && opt.fd_per_query) {
      return "liveness checking requires --fd=static on oracle-backed "
             "problems: a cycle of per-query detector choices is a "
             "flapping history, illegal in the limit";
    }
    // Static Omega/Sigma histories anticipate explored crashes (the
    // oracle re-picks invalidated values at each crash point, so the
    // limit history is converged for the final crash set), but FS has
    // no such repair: a per-query green-after-crash choice is legal in
    // every prefix yet illegal in the limit, so nbac's FS component
    // cannot compose with a crash budget.
    if (opt.problem == "nbac" && opt.crashes > 0) {
      return "liveness checking on nbac requires a crash-free pattern: "
             "the FS component's per-query choices are illegal in the "
             "limit under explored crashes";
    }
    if (opt.crashes > 0 && opt.crash_mode != "explore") {
      return "liveness checking requires crash_mode 'explore' when "
             "crashes > 0: scripted crash times make the enabled menu a "
             "function of absolute time, not of the state fingerprint";
    }
  }
  return "";
}

bool ScenarioFactory::pattern_sensitive(const ScenarioOptions& opt) {
  // Mirrors the oracle-component table in build(): FS and Psi are the
  // only components whose outputs read failure_by(t) mid-run.
  return opt.problem == "qc" || opt.problem == "nbac" ||
         opt.problem == "consensus-crash-bug";
}

std::vector<std::string> ScenarioFactory::liveness_clauses(
    const std::string& problem) {
  std::vector<std::string> out;
  if (problem == "consensus" || problem == "consensus-bug" ||
      problem == "consensus-live-bug" ||
      problem == "consensus-crash-live-bug" || problem == "qc" ||
      problem == "nbac" || problem == "rb") {
    out.emplace_back("termination");
  }
  if (problem == "consensus" || problem == "consensus-live-bug" ||
      problem == "consensus-crash-live-bug") {
    out.emplace_back("leadership");
  }
  if (problem == "omega-impl") out.emplace_back("fd-completeness");
  return out;
}

std::vector<std::vector<ProcessId>> ScenarioFactory::symmetry_classes(
    const ScenarioOptions& opt) {
  // Scripted crashes pin concrete process ids (faulty set = the first
  // `crashes` processes at fixed times): no renaming maps those runs to
  // runs. Explored crashes draw from symmetric per-process budgets.
  if (opt.crashes > 0 && opt.crash_mode != "explore") return {};
  // After stabilization the oracle's outputs collapse to min(correct),
  // which renaming does not commute with; kNever keeps every query a
  // symmetric menu choice.
  if (opt.stabilization != kNever) return {};
  std::vector<std::vector<ProcessId>> classes;
  const auto add = [&classes](std::vector<ProcessId> cls) {
    if (cls.size() >= 2) classes.push_back(std::move(cls));
  };
  if (opt.problem == "consensus" || opt.problem == "consensus-bug" ||
      opt.problem == "qc") {
    // Initial proposals are i % 2: same-parity processes run identical
    // modules with identical inputs.
    std::vector<ProcessId> evens;
    std::vector<ProcessId> odds;
    for (int i = 0; i < opt.n; ++i) {
      (i % 2 == 0 ? evens : odds).push_back(i);
    }
    add(std::move(evens));
    add(std::move(odds));
  } else if (opt.problem == "nbac") {
    // Every Yes voter is interchangeable; the No voter (if any) is a
    // singleton role.
    std::vector<ProcessId> yes;
    for (int i = 0; i < opt.n; ++i) {
      if (i != opt.nbac_no_voter) yes.push_back(i);
    }
    add(std::move(yes));
  } else if (opt.problem == "sigma") {
    // Pure FD probes: every process is identical.
    std::vector<ProcessId> all;
    for (int i = 0; i < opt.n; ++i) all.push_back(i);
    add(std::move(all));
  } else if (opt.problem == "register" || opt.problem == "register-regular") {
    // Process 0 writes; 1..readers read; the rest are pure replicas.
    const int readers = opt.reg_readers == 0 ? opt.n - 1 : opt.reg_readers;
    std::vector<ProcessId> reading;
    std::vector<ProcessId> replicas;
    for (int i = 1; i < opt.n; ++i) {
      (i <= readers ? reading : replicas).push_back(i);
    }
    add(std::move(reading));
    add(std::move(replicas));
  }
  // abcast/rb broadcast distinct values per sender, consensus-crash-bug
  // has a distinguished coordinator, and omega-impl elects by smallest
  // pid — none verified symmetric (the non-sender / participant classes
  // would need their module encodes audited first).
  return classes;
}

sim::FailurePattern ScenarioFactory::make_pattern(
    sim::ChoiceSource& choices) const {
  sim::FailurePattern f(opt_.n);
  // In explore mode `crashes` is an injection budget, not a script: the
  // pattern starts all-correct and grows as the explorer injects.
  if (opt_.crashes == 0 || opt_.crash_mode == "explore") return f;
  if (opt_.crash_time != kNever) {
    for (int i = 0; i < opt_.crashes; ++i) {
      f.crash_at(i, opt_.crash_time * static_cast<Time>(i + 1));
    }
    return f;
  }
  // Crash times are part of the explored space: a small log-spaced menu
  // inside the horizon (0 = initially dead, up to half the horizon).
  std::vector<std::uint64_t> menu = {0, 2, opt_.max_steps / 8,
                                     opt_.max_steps / 4, opt_.max_steps / 2};
  std::sort(menu.begin(), menu.end());
  menu.erase(std::unique(menu.begin(), menu.end()), menu.end());
  for (int i = 0; i < opt_.crashes; ++i) {
    const std::size_t pick =
        menu.size() >= 2 ? choices.choose(sim::ChoiceKind::kEnvironment, menu)
                         : 0;
    f.crash_at(i, menu[pick]);
  }
  return f;
}

Scenario ScenarioFactory::build(sim::ChoiceSource& choices) const {
  Scenario out;
  const sim::FailurePattern pattern = make_pattern(choices);
  const sim::SimConfig cfg{opt_.n, opt_.max_steps, opt_.seed,
                           opt_.record_fd_samples};

  ChoiceOracle::Options oo;
  oo.per_query = opt_.fd_per_query;
  oo.stabilization = opt_.stabilization;
  // Liveness mode: Psi must be a converged limit from the start (see
  // validate()); harmless when no Psi component is enabled.
  oo.psi_converged = !opt_.liveness.empty();
  if (opt_.problem == "consensus" || opt_.problem == "consensus-live-bug" ||
      opt_.problem == "consensus-crash-live-bug") {
    oo.omega = true;
    oo.sigma = true;
  } else if (opt_.problem == "qc") {
    oo.psi = true;
  } else if (opt_.problem == "nbac") {
    oo.psi = true;
    oo.fs = true;
  } else if (opt_.problem == "sigma" || opt_.problem == "register" ||
             opt_.problem == "register-regular") {
    oo.sigma = true;
  } else if (opt_.problem == "abcast") {
    oo.omega = true;
    oo.sigma = true;
  } else if (opt_.problem == "consensus-crash-bug") {
    oo.fs = true;  // The participants' fallback path reads FS.
  }
  // consensus-bug: all components off — the broken protocol is
  // detector-free, keeping its choice tree purely about schedules.

  const bool crash_explore = opt_.crash_mode == "explore";
  // With injected crashes the pattern evolves mid-run; the oracle must
  // track it so its menus stay legal for the pattern actually realised.
  oo.live_pattern = crash_explore;

  inject::FaultPlan fp;
  fp.crash_mode = crash_explore ? inject::CrashMode::kExplore
                  : opt_.crashes > 0 ? inject::CrashMode::kScript
                                     : inject::CrashMode::kNone;
  fp.crash_budget = crash_explore ? opt_.crashes : 0;
  fp.min_alive = needs_majority(opt_.problem) ? opt_.n / 2 + 1 : 1;
  fp.drop_budget = opt_.loss_drops;
  fp.dup_budget = opt_.loss_dups;
  std::unique_ptr<inject::FaultState> faults;
  if (fp.any()) faults = std::make_unique<inject::FaultState>(fp);

  sim::ReplayScheduler::Options so;
  so.oldest_per_channel = opt_.oldest_per_channel;
  so.lambda_always = opt_.lambda_always;
  so.faults = faults.get();

  std::unique_ptr<fd::Oracle> oracle;
  if (opt_.fd_adversarial) {
    oracle = std::make_unique<inject::FdAdversary>(&choices, oo);
  } else {
    oracle = std::make_unique<ChoiceOracle>(&choices, oo);
  }

  out.sim = std::make_unique<sim::Simulator>(
      cfg, pattern, std::move(oracle),
      std::make_unique<sim::ReplayScheduler>(&choices, so));
  if (faults != nullptr) out.sim->adopt_faults(std::move(faults));
  sim::Simulator& s = *out.sim;

  // Under injection the detector history must stay legal for the pattern
  // the run actually reconstructs — cross-check the prefix-checkable
  // clauses of the enabled components via fd/history_checker.
  if ((opt_.fd_adversarial || crash_explore) && opt_.record_fd_samples &&
      (oo.fs || oo.psi)) {
    out.invariants.push_back(
        std::make_unique<FdPrefixInvariant>(oo.fs, oo.psi));
  }
  // Lossy links: the register problems are the ones written against
  // quasi-reliable point-to-point channels, so their traffic goes
  // through the retransmission wrapper (built below, per host).
  const bool lossy = opt_.loss_drops > 0 || opt_.loss_dups > 0;
  const bool wrap_register =
      lossy && (opt_.problem == "register" ||
                opt_.problem == "register-regular");

  // Per-process views collected while the modules are built, consumed by
  // the liveness-clause wiring at the end.
  std::vector<std::function<bool()>> leading_fns;
  std::vector<FdCompletenessClause::View> fd_views;

  if (opt_.problem == "consensus" || opt_.problem == "consensus-live-bug" ||
      opt_.problem == "consensus-crash-live-bug") {
    for (int i = 0; i < opt_.n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      consensus::OmegaSigmaConsensusModule<int>* c =
          opt_.problem == "consensus"
              ? &host.add_module<consensus::OmegaSigmaConsensusModule<int>>(
                    "cons")
          : opt_.problem == "consensus-live-bug"
              ? static_cast<consensus::OmegaSigmaConsensusModule<int>*>(
                    &host.add_module<GiveUpLeaderConsensusModule>("cons"))
              : &host.add_module<DeferToPromisedConsensusModule>("cons");
      c->propose(i % 2, {});
      leading_fns.emplace_back([c] { return c->is_leading(); });
    }
    out.invariants.push_back(std::make_unique<AgreementInvariant>("decide"));
    out.invariants.push_back(
        std::make_unique<ValidityInvariant>("decide", proposals(opt_.n)));
    if (opt_.record_fd_samples) {
      out.invariants.push_back(std::make_unique<SigmaIntersectionInvariant>());
    }
    out.eventuals.push_back(
        std::make_unique<EventualDecisionProperty>("decide"));
  } else if (opt_.problem == "consensus-bug") {
    for (int i = 0; i < opt_.n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      auto& c = host.add_module<FirstHeardConsensusModule>("cons");
      c.propose(i % 2);
    }
    out.invariants.push_back(std::make_unique<AgreementInvariant>("decide"));
    out.invariants.push_back(
        std::make_unique<ValidityInvariant>("decide", proposals(opt_.n)));
    out.eventuals.push_back(
        std::make_unique<EventualDecisionProperty>("decide"));
  } else if (opt_.problem == "consensus-crash-bug") {
    // Coordinator (p0) proposes 0, everyone else 1: the two-phase bug
    // flips the outcome only when the coordinator dies in its
    // decide-to-broadcast window (see seeded_bug.h).
    for (int i = 0; i < opt_.n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      auto& c = host.add_module<CrashTimingConsensusModule>("cons");
      c.propose(i == 0 ? 0 : 1);
    }
    out.invariants.push_back(std::make_unique<AgreementInvariant>("decide"));
    out.invariants.push_back(
        std::make_unique<ValidityInvariant>("decide",
                                            std::vector<std::int64_t>{0, 1}));
    out.eventuals.push_back(
        std::make_unique<EventualDecisionProperty>("decide"));
  } else if (opt_.problem == "qc") {
    for (int i = 0; i < opt_.n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      auto& q = host.add_module<qc::PsiQcModule<int>>("qc");
      q.propose(i % 2, {});
    }
    auto allowed = proposals(opt_.n);
    allowed.push_back(-1);  // Q.
    out.invariants.push_back(
        std::make_unique<AgreementInvariant>("qc-decide"));
    out.invariants.push_back(
        std::make_unique<ValidityInvariant>("qc-decide", std::move(allowed)));
    out.invariants.push_back(std::make_unique<QuitValidityInvariant>());
    if (opt_.record_fd_samples) {
      out.invariants.push_back(std::make_unique<SigmaIntersectionInvariant>());
    }
    out.eventuals.push_back(
        std::make_unique<EventualDecisionProperty>("qc-decide"));
  } else if (opt_.problem == "nbac") {
    std::vector<nbac::Vote> votes;
    for (int i = 0; i < opt_.n; ++i) {
      votes.push_back(i == opt_.nbac_no_voter ? nbac::Vote::kNo
                                              : nbac::Vote::kYes);
    }
    for (int i = 0; i < opt_.n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      auto& q = host.add_module<qc::PsiQcModule<int>>("qc");
      auto& nb = host.add_module<nbac::NbacFromQcModule>("nbac", &q);
      nb.vote(votes[static_cast<std::size_t>(i)], {});
    }
    out.invariants.push_back(
        std::make_unique<AgreementInvariant>("nbac-decide"));
    out.invariants.push_back(std::make_unique<NbacValidityInvariant>(votes));
    out.eventuals.push_back(
        std::make_unique<EventualDecisionProperty>("nbac-decide"));
  } else if (opt_.problem == "sigma") {
    for (int i = 0; i < opt_.n; ++i) s.add_process<FdProbeProcess>();
    out.invariants.push_back(std::make_unique<SigmaIntersectionInvariant>());
  } else if (opt_.problem == "register" ||
             opt_.problem == "register-regular") {
    // Sigma-quorum ABD register under a deterministic workload: process 0
    // writes, everyone else reads, all against the same replicated
    // register; the shared History feeds the linearizability checker.
    // register-regular drops the read write-back (the register is then
    // only regular), which seeds reachable new-old inversions.
    auto inv = std::make_unique<RegisterAtomicityInvariant>(0);
    reg::History* hist = &inv->history();
    const int readers =
        opt_.reg_readers == 0 ? opt_.n - 1 : opt_.reg_readers;
    for (int i = 0; i < opt_.n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      reg::AbdRegisterModule<std::int64_t>::Options ro;
      ro.rule = reg::QuorumRule::kSigma;
      ro.atomic_reads = opt_.problem == "register";
      auto& r =
          host.add_module<reg::AbdRegisterModule<std::int64_t>>("reg", ro);
      if (wrap_register) {
        auto& qr = host.add_module<broadcast::QuasiReliableModule>("qr");
        r.set_transport(&qr);
      }
      if (i > readers) continue;  // Pure replica.
      reg::RegisterWorkloadModule::Options wo;
      wo.num_ops = opt_.reg_ops;
      wo.write_percent = (i == 0) ? 100 : 0;
      host.add_module<reg::RegisterWorkloadModule>("client", &r, hist, wo);
    }
    out.invariants.push_back(std::move(inv));
    if (opt_.record_fd_samples) {
      out.invariants.push_back(std::make_unique<SigmaIntersectionInvariant>());
    }
  } else if (opt_.problem == "abcast") {
    // Chandra-Toueg atomic broadcast over (Omega, Sigma) consensus
    // rounds; the first abcast_senders processes each broadcast one
    // message and the invariant checks prefix-consistent delivery logs.
    auto inv = std::make_unique<TotalOrderInvariant>(opt_.n);
    TotalOrderInvariant* tot = inv.get();
    for (int i = 0; i < opt_.n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      auto& ab =
          host.add_module<broadcast::AtomicBroadcastModule>("abcast");
      const auto p = static_cast<ProcessId>(i);
      ab.set_deliver([tot, p](const broadcast::AppMessage& m) {
        tot->record(p, static_cast<std::uint64_t>(m.origin), m.seq, m.body);
      });
      if (i < opt_.abcast_senders) ab.abcast(100 + i);
    }
    out.invariants.push_back(std::move(inv));
  } else if (opt_.problem == "rb") {
    // Uniform reliable broadcast alone, detector-free: the first
    // abcast_senders processes each urb-broadcast one message and the
    // invariant checks integrity (each message delivered at most once
    // per process, and only messages actually broadcast). The echo
    // relay storm is the content-dependence showcase: equal-content
    // echoes from distinct relayers all commute, so DPOR under the
    // payload relation collapses the relayer interleavings that the
    // process relation must enumerate.
    auto inv = std::make_unique<UrbIntegrityInvariant>(
        opt_.n, opt_.abcast_senders);
    UrbIntegrityInvariant* urb = inv.get();
    for (int i = 0; i < opt_.n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      auto& rb = host.add_module<broadcast::UrbModule>("rb");
      const auto p = static_cast<ProcessId>(i);
      rb.set_deliver([urb, p](const broadcast::AppMessage& m) {
        urb->record(p, static_cast<std::uint64_t>(m.origin), m.seq, m.body);
      });
      if (i < opt_.abcast_senders) rb.urb_broadcast(100 + i);
      host.add_module<UrbWaiter>(
          "wait", &rb, static_cast<std::uint64_t>(opt_.abcast_senders));
    }
    out.invariants.push_back(std::move(inv));
  } else if (opt_.problem == "omega-impl") {
    // The *implemented* heartbeat/lease Omega (the module the runtime
    // host runs behind the replicated KV), model-checked as an ordinary
    // module: no oracle component is enabled, so the only
    // nondeterminism is the schedule (plus injected crashes). The
    // eventual property is the Omega specification itself — on
    // fair-enough schedules every correct process's *last* emitted
    // leader is the smallest correct process. Timing is deliberately
    // conservative (timeout = 12 periods, with adaptive doubling on any
    // false suspicion) so random fair schedules within the horizon count
    // as "synchronous enough".
    fd::HeartbeatOmegaModule::Options ho;
    ho.period = static_cast<Time>(2 * opt_.n);
    ho.timeout = 12 * ho.period;
    ho.lease = 2 * ho.timeout;
    for (int i = 0; i < opt_.n; ++i) {
      auto& host = s.add_process<sim::ModularProcess>();
      auto& om = host.add_module<fd::HeartbeatOmegaModule>("omega", ho);
      fd::HeartbeatOmegaModule* omp = &om;
      fd_views.push_back(FdCompletenessClause::View{
          [omp] { return omp->current_leader(); },
          [omp] { return omp->suspected().raw(); }});
    }
    out.eventuals.push_back(
        std::make_unique<EventualLeadershipProperty>("omega-leader"));
  }

  if (!opt_.liveness.empty()) {
    if (opt_.liveness == "termination") {
      out.liveness.push_back(std::make_unique<TerminationClause>());
    } else if (opt_.liveness == "leadership") {
      WFD_CHECK(!leading_fns.empty());
      out.liveness.push_back(
          std::make_unique<LeadershipClause>(std::move(leading_fns)));
    } else {
      WFD_CHECK_MSG(opt_.liveness == "fd-completeness" && !fd_views.empty(),
                    "liveness clause survived validate() unwired");
      out.liveness.push_back(
          std::make_unique<FdCompletenessClause>(std::move(fd_views)));
    }
  }
  return out;
}

std::optional<std::uint64_t> scenario_fingerprint(const Scenario& sc) {
  // Must stay bit-identical to the explorer's no-renaming fingerprint:
  // the explorer keys liveness graph nodes with it and run_lasso checks
  // loop closure against it.
  sim::StateEncoder enc;
  sc.sim->encode_state(enc);
  std::size_t i = 0;
  for (const auto& inv : sc.invariants) {
    enc.push("invariant", i++);
    inv->encode_state(enc);
    enc.pop();
  }
  if (!enc.complete()) return std::nullopt;
  return enc.digest();
}

ScenarioBuilder ScenarioFactory::builder() const {
  return [opt = opt_](sim::ChoiceSource& choices) {
    return ScenarioFactory(opt).build(choices);
  };
}

}  // namespace wfd::explore
