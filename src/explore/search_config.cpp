#include "explore/search_config.h"

#include <optional>
#include <sstream>

#include "explore/option_text.h"

namespace wfd::explore {

namespace {

using detail::parse_bool;
using detail::parse_int;
using detail::parse_time;
using detail::parse_u64;

/// --loss=drop:N[,dup:M] (either component, any order).
bool parse_loss(const std::string& v, ScenarioOptions& s) {
  std::size_t start = 0;
  while (start < v.size()) {
    const std::size_t comma = v.find(',', start);
    const std::string part =
        v.substr(start, comma == std::string::npos ? std::string::npos
                                                   : comma - start);
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    const std::string key = part.substr(0, colon);
    int budget = 0;
    if (!parse_int(part.substr(colon + 1), &budget) || budget < 1) {
      return false;
    }
    if (key == "drop") {
      s.loss_drops = budget;
    } else if (key == "dup") {
      s.loss_dups = budget;
    } else {
      return false;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return s.loss_drops > 0 || s.loss_dups > 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string reduction_to_text(Reduction r) {
  switch (r) {
    case Reduction::kNone:
      return "none";
    case Reduction::kSleepSets:
      return "sleep-sets";
    case Reduction::kDpor:
      return "dpor";
  }
  return "unknown";
}

bool parse_reduction(const std::string& s, Reduction* out) {
  if (s == "none") {
    *out = Reduction::kNone;
  } else if (s == "sleep-sets") {
    *out = Reduction::kSleepSets;
  } else if (s == "dpor") {
    *out = Reduction::kDpor;
  } else {
    return false;
  }
  return true;
}

std::string dependence_to_text(Dependence d) {
  return d == Dependence::kContent ? "content" : "process";
}

bool parse_dependence(const std::string& s, Dependence* out) {
  if (s == "content") {
    *out = Dependence::kContent;
  } else if (s == "process") {
    *out = Dependence::kProcess;
  } else {
    return false;
  }
  return true;
}

std::string validate(const SearchConfig& cfg) {
  const std::string why = ScenarioFactory::validate(cfg.scenario);
  if (!why.empty()) return why;
  if (cfg.threads < 1 || cfg.threads > 64) {
    return "threads must be in [1, 64], got " + std::to_string(cfg.threads);
  }
  if (cfg.frontier_workers < 0 || cfg.frontier_workers > 64) {
    return "frontier workers must be in [0, 64], got " +
           std::to_string(cfg.frontier_workers);
  }
  if (!cfg.scenario.liveness.empty()) {
    // The fair-cycle search needs the explored graph to be the complete
    // transition system: every reachable state expanded over its full
    // menu, prunes only at expanded fingerprints. Reductions drop
    // interleavings (sound for safety, not for cycle existence) and
    // symmetry merges nodes under renaming, which breaks the per-process
    // fairness bookkeeping.
    if (cfg.reduction != Reduction::kNone) {
      return "liveness checking requires --reduction=none (partial-order "
             "reduction drops interleavings that may carry the fair cycle)";
    }
    if (cfg.symmetry) {
      return "liveness checking is incompatible with --symmetry (renamed "
             "merges break per-process fairness accounting)";
    }
    if (!cfg.state_fingerprints) {
      return "liveness checking requires state fingerprints (the state "
             "graph is keyed on them); drop --no-fingerprints";
    }
  }
  if (cfg.symmetry) {
    const auto classes = ScenarioFactory::symmetry_classes(cfg.scenario);
    if (classes.empty()) {
      return "symmetry reduction is not supported for this scenario "
             "(problem '" +
             cfg.scenario.problem +
             "' has no verified symmetry classes, or the fault script / "
             "detector configuration breaks the renaming argument)";
    }
  }
  return "";
}

CliResult apply_cli_flag(SearchConfig& cfg, const std::string& arg) {
  const auto val = [&](const char* key) -> std::optional<std::string> {
    const std::string prefix = std::string("--") + key + "=";
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    return std::nullopt;
  };
  const auto as = [](bool ok) {
    return ok ? CliResult::kApplied : CliResult::kBadValue;
  };
  ScenarioOptions& s = cfg.scenario;
  // Scenario surface.
  if (auto v = val("problem")) {
    s.problem = *v;
    return CliResult::kApplied;
  }
  if (auto v = val("n")) return as(parse_int(*v, &s.n));
  if (auto v = val("crashes")) return as(parse_int(*v, &s.crashes));
  if (auto v = val("crash-time")) return as(parse_time(*v, &s.crash_time));
  if (auto v = val("crash")) {
    if (*v != "script" && *v != "explore") return CliResult::kBadValue;
    s.crash_mode = *v;
    return CliResult::kApplied;
  }
  if (auto v = val("loss")) return as(parse_loss(*v, s));
  if (auto v = val("depth")) return as(parse_time(*v, &s.max_steps));
  if (auto v = val("seed")) return as(parse_u64(*v, &s.seed));
  if (auto v = val("stab")) return as(parse_time(*v, &s.stabilization));
  if (auto v = val("fd")) {
    if (*v == "adversarial") {
      s.fd_adversarial = true;
      s.fd_per_query = true;  // Forced by the adversary anyway.
    } else if (*v == "flap" || *v == "static") {
      s.fd_adversarial = false;
      s.fd_per_query = (*v == "flap");
    } else {
      return CliResult::kBadValue;
    }
    return CliResult::kApplied;
  }
  if (auto v = val("liveness")) {
    s.liveness = *v;
    return CliResult::kApplied;
  }
  if (auto v = val("nbac-no-voter")) {
    return as(parse_int(*v, &s.nbac_no_voter));
  }
  if (auto v = val("reg-ops")) return as(parse_int(*v, &s.reg_ops));
  if (auto v = val("reg-readers")) return as(parse_int(*v, &s.reg_readers));
  if (auto v = val("abcast-senders")) {
    return as(parse_int(*v, &s.abcast_senders));
  }
  if (arg == "--no-lambda") {
    s.lambda_always = false;
    return CliResult::kApplied;
  }
  if (arg == "--all-pending") {
    s.oldest_per_channel = false;
    return CliResult::kApplied;
  }
  // Search surface.
  if (auto v = val("max-states")) return as(parse_u64(*v, &cfg.max_states));
  if (auto v = val("max-runs")) return as(parse_u64(*v, &cfg.max_runs));
  if (auto v = val("reduction")) {
    return as(parse_reduction(*v, &cfg.reduction));
  }
  if (auto v = val("dep")) return as(parse_dependence(*v, &cfg.dependence));
  if (arg == "--no-fault-dep") {
    cfg.fault_dependence = false;
    return CliResult::kApplied;
  }
  if (arg == "--symmetry") {
    cfg.symmetry = true;
    return CliResult::kApplied;
  }
  if (arg == "--no-fingerprints") {
    cfg.state_fingerprints = false;
    return CliResult::kApplied;
  }
  if (auto v = val("order-seed")) return as(parse_u64(*v, &cfg.order_seed));
  if (auto v = val("threads")) {
    return as(parse_int(*v, &cfg.threads) && cfg.threads >= 1);
  }
  if (auto v = val("budget-states")) {
    return as(parse_u64(*v, &cfg.budget_states));
  }
  if (auto v = val("save-state")) {
    cfg.save_path = *v;
    return CliResult::kApplied;
  }
  if (auto v = val("resume")) {
    cfg.resume_path = *v;
    return CliResult::kApplied;
  }
  // Campaign surface.
  if (auto v = val("runs")) return as(parse_u64(*v, &cfg.runs));
  if (arg == "--no-shrink") {
    cfg.shrink = false;
    return CliResult::kApplied;
  }
  if (auto v = val("frontier")) {
    return as(parse_int(*v, &cfg.frontier_workers));
  }
  return CliResult::kUnknown;
}

std::string cli_flags_help() {
  return "  --problem=NAME --n=N --crashes=K --crash-time=T\n"
         "  --crash=script|explore --loss=drop:N[,dup:M]\n"
         "  --depth=T --seed=S --stab=T --fd=flap|static|adversarial\n"
         "  --liveness=termination|leadership|fd-completeness\n"
         "  --nbac-no-voter=P --reg-ops=N --reg-readers=N\n"
         "  --abcast-senders=N --no-lambda --all-pending\n"
         "  --max-states=N --max-runs=N --threads=N\n"
         "  --reduction=dpor|sleep-sets|none --dep=content|process\n"
         "  --no-fault-dep --symmetry --no-fingerprints --order-seed=S\n"
         "  --budget-states=N --save-state=FILE --resume=FILE\n"
         "  --runs=N --frontier=N --no-shrink\n";
}

void search_header_to_text(std::ostream& out, const SearchConfig& cfg) {
  detail::scenario_to_text(out, cfg.scenario);
  out << "reduction=" << reduction_to_text(cfg.reduction) << "\n";
  out << "dependence=" << dependence_to_text(cfg.dependence) << "\n";
  out << "fault_dependence=" << (cfg.fault_dependence ? 1 : 0) << "\n";
  out << "symmetry=" << (cfg.symmetry ? 1 : 0) << "\n";
  out << "state_fingerprints=" << (cfg.state_fingerprints ? 1 : 0) << "\n";
  out << "order_seed=" << cfg.order_seed << "\n";
}

bool search_header_apply(SearchConfig& cfg, const std::string& key,
                         const std::string& val, bool* ok) {
  *ok = true;
  if (detail::scenario_apply(cfg.scenario, key, val, ok)) return true;
  if (key == "reduction") {
    *ok = parse_reduction(val, &cfg.reduction);
  } else if (key == "dependence") {
    *ok = parse_dependence(val, &cfg.dependence);
  } else if (key == "fault_dependence") {
    *ok = parse_bool(val, &cfg.fault_dependence);
  } else if (key == "symmetry") {
    *ok = parse_bool(val, &cfg.symmetry);
  } else if (key == "state_fingerprints") {
    *ok = parse_bool(val, &cfg.state_fingerprints);
  } else if (key == "order_seed") {
    *ok = parse_u64(val, &cfg.order_seed);
  } else {
    return false;
  }
  return true;
}

std::string config_to_json(const SearchConfig& cfg) {
  const ScenarioOptions& s = cfg.scenario;
  std::ostringstream out;
  out << "{\"problem\":\"" << json_escape(s.problem) << "\",\"n\":" << s.n
      << ",\"crashes\":" << s.crashes << ",\"crash_mode\":\"" << s.crash_mode
      << "\",\"loss_drops\":" << s.loss_drops
      << ",\"loss_dups\":" << s.loss_dups << ",\"fd_adversarial\":"
      << (s.fd_adversarial ? "true" : "false")
      << ",\"depth\":" << s.max_steps << ",\"seed\":" << s.seed
      << ",\"fd_per_query\":" << (s.fd_per_query ? "true" : "false")
      << ",\"liveness\":\"" << json_escape(s.liveness) << "\""
      << ",\"max_states\":" << cfg.max_states
      << ",\"max_runs\":" << cfg.max_runs << ",\"reduction\":\""
      << reduction_to_text(cfg.reduction) << "\",\"dependence\":\""
      << dependence_to_text(cfg.dependence) << "\",\"fault_dependence\":"
      << (cfg.fault_dependence ? "true" : "false") << ",\"symmetry\":"
      << (cfg.symmetry ? "true" : "false") << ",\"state_fingerprints\":"
      << (cfg.state_fingerprints ? "true" : "false")
      << ",\"order_seed\":" << cfg.order_seed
      << ",\"threads\":" << cfg.threads
      << ",\"budget_states\":" << cfg.budget_states << "}";
  return out.str();
}

}  // namespace wfd::explore
