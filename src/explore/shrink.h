// Greedy counterexample minimization.
//
// A counterexample is a decision sequence; FixedChoices interprets
// entries modulo the option count and answers 0 past the end, so ANY
// uint32 sequence is a valid run — shrinking is free to splice. The
// shrinker looks for a shorter / more canonical sequence that still
// violates the SAME property under deterministic replay: trailing-zero
// trimming (free by construction), ddmin-style chunk removal, and a
// zeroing pass that rewrites entries to the canonical first option.
#pragma once

#include <cstdint>
#include <string>

#include "explore/scenario.h"
#include "sim/choice.h"

namespace wfd::explore {

struct ShrinkOptions {
  /// Budget on replay attempts (each attempt is one full re-execution).
  std::uint64_t max_attempts = 2000;
};

struct ShrinkResult {
  sim::DecisionLog decisions;       ///< Minimized, still-violating log.
  std::uint64_t original_size = 0;  ///< Entries before shrinking.
  std::uint64_t attempts = 0;       ///< Replays spent.
};

/// Minimize `log`, preserving a violation of property `property` (the
/// Violation::property string of the counterexample being shrunk). The
/// input log must itself reproduce; the result always reproduces.
ShrinkResult shrink(const ScenarioBuilder& build, sim::DecisionLog log,
                    const std::string& property, ShrinkOptions opt = {});

struct ShrinkLassoResult {
  sim::DecisionLog stem;  ///< Minimized; still a valid fair lasso.
  sim::DecisionLog loop;
  std::uint64_t original_stem = 0;
  std::uint64_t original_loop = 0;
  std::uint64_t attempts = 0;  ///< Lasso replays spent.
};

/// Minimize a liveness lasso, preserving run_lasso validity (the loop
/// keeps closing on the stem's landing state, stays fair, and keeps
/// avoiding the goal). Stem and loop each get ddmin + zeroing; the loop
/// additionally tries rotations — entering the cycle at a later state
/// can admit a much shorter stem (the rotated prefix moves into the
/// stem and ddmin takes it from there). The input must itself validate
/// (checked); the result always does. The builder's horizon must cover
/// the input lasso (shrinking only removes steps).
ShrinkLassoResult shrink_lasso(const ScenarioBuilder& build,
                               sim::DecisionLog stem, sim::DecisionLog loop,
                               ShrinkOptions opt = {});

}  // namespace wfd::explore
