// Greedy counterexample minimization.
//
// A counterexample is a decision sequence; FixedChoices interprets
// entries modulo the option count and answers 0 past the end, so ANY
// uint32 sequence is a valid run — shrinking is free to splice. The
// shrinker looks for a shorter / more canonical sequence that still
// violates the SAME property under deterministic replay: trailing-zero
// trimming (free by construction), ddmin-style chunk removal, and a
// zeroing pass that rewrites entries to the canonical first option.
#pragma once

#include <cstdint>
#include <string>

#include "explore/scenario.h"
#include "sim/choice.h"

namespace wfd::explore {

struct ShrinkOptions {
  /// Budget on replay attempts (each attempt is one full re-execution).
  std::uint64_t max_attempts = 2000;
};

struct ShrinkResult {
  sim::DecisionLog decisions;       ///< Minimized, still-violating log.
  std::uint64_t original_size = 0;  ///< Entries before shrinking.
  std::uint64_t attempts = 0;       ///< Replays spent.
};

/// Minimize `log`, preserving a violation of property `property` (the
/// Violation::property string of the counterexample being shrunk). The
/// input log must itself reproduce; the result always reproduces.
ShrinkResult shrink(const ScenarioBuilder& build, sim::DecisionLog log,
                    const std::string& property, ShrinkOptions opt = {});

}  // namespace wfd::explore
