#include "explore/campaign.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "explore/explorer.h"
#include "explore/shrink.h"
#include "sim/choice.h"

namespace wfd::explore {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

CampaignReport run_campaign(const ScenarioBuilder& build,
                            const SearchConfig& cfg) {
  std::atomic<std::uint64_t> next_run{0};
  std::atomic<std::uint64_t> runs{0};
  std::atomic<std::uint64_t> steps{0};
  std::atomic<std::uint64_t> nodes{0};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> suspects{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> claimed{false};
  // Written by the single thread that wins `claimed`, read after join.
  std::optional<Counterexample> cex;

  const auto claim = [&](Counterexample candidate) {
    violations.fetch_add(1, std::memory_order_relaxed);
    if (cfg.stop_at_first) stop.store(true, std::memory_order_relaxed);
    bool expected = false;
    if (claimed.compare_exchange_strong(expected, true)) {
      cex = std::move(candidate);
    }
  };

  const auto random_worker = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t i =
          next_run.fetch_add(1, std::memory_order_relaxed);
      if (i >= cfg.runs) break;
      sim::RandomChoices random(mix(cfg.scenario.seed ^ mix(i)));
      sim::RecordingChoices rec(random);
      Scenario sc = build(rec);
      std::optional<Violation> v;
      std::uint64_t run_steps = 0;
      while (sc.sim->step()) {
        ++run_steps;
        for (auto& inv : sc.invariants) {
          v = inv->check(*sc.sim);
          if (v.has_value()) break;
        }
        if (v.has_value()) break;
      }
      steps.fetch_add(run_steps, std::memory_order_relaxed);
      runs.fetch_add(1, std::memory_order_relaxed);
      if (v.has_value()) {
        claim(Counterexample{rec.log(), *v, run_steps});
        continue;
      }
      if (cfg.check_eventual) {
        for (auto& ev : sc.eventuals) {
          if (ev->check_final(*sc.sim).has_value()) {
            suspects.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    }
  };

  // The frontier is one wave-parallel exhaustive search, not N
  // independent per-seed DFS workers: its frontier_workers threads
  // cooperate on a single deterministic frontier instead of racing
  // into overlapping subtrees. Cooperative cancel couples it to the
  // walkers: when either side claims a counterexample under
  // stop_at_first, the other stops within one step.
  const auto frontier_worker = [&] {
    SearchConfig fc = cfg;
    fc.threads = std::max(cfg.frontier_workers, 1);
    fc.max_states =
        cfg.frontier_states != 0 ? cfg.frontier_states : cfg.max_states;
    fc.stop_at_first = true;
    fc.order_seed = mix(cfg.scenario.seed ^ 0xf0f0f0f0ull);
    fc.budget_states = 0;
    fc.save_path.clear();
    fc.resume_path.clear();
    fc.cancel = &stop;
    Explorer ex(build, fc);
    const ExploreReport rep = ex.run();
    steps.fetch_add(rep.stats.steps, std::memory_order_relaxed);
    nodes.fetch_add(rep.stats.nodes, std::memory_order_relaxed);
    if (rep.cex.has_value()) claim(*rep.cex);
  };

  std::vector<std::thread> pool;
  const int walkers = std::max(cfg.threads, 1);
  pool.reserve(static_cast<std::size_t>(walkers) + 1);
  for (int i = 0; i < walkers; ++i) pool.emplace_back(random_worker);
  if (cfg.frontier_workers > 0) pool.emplace_back(frontier_worker);
  for (std::thread& t : pool) t.join();

  CampaignReport rep;
  rep.runs = runs.load();
  rep.steps = steps.load();
  rep.nodes = nodes.load();
  rep.violations = violations.load();
  rep.liveness_suspects = suspects.load();
  rep.cex = std::move(cex);
  if (rep.cex.has_value() && cfg.shrink) {
    const ShrinkResult s =
        shrink(build, rep.cex->decisions, rep.cex->violation.property);
    rep.shrunk_from = s.original_size;
    rep.cex->decisions = s.decisions;
  }
  return rep;
}

}  // namespace wfd::explore
