// Property checkers: machine-checkable renderings of the specification
// clauses, evaluated against a live run's Trace and failure pattern.
//
// Invariants are safety clauses: once false they stay false, so the
// explorer checks them after every step and stops a branch at the first
// violation. EventualProperties are liveness clauses; they are only
// meaningful on runs that were given a fair schedule and a stabilizing
// detector history, so the campaign driver checks them at the end of
// randomized runs and reports failures as suspects (a bounded run that
// merely ran out of horizon is not a counterexample to "eventually").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "explore/types.h"
#include "nbac/nbac_api.h"
#include "sim/simulator.h"

namespace wfd::explore {

/// A safety clause, checked incrementally after every step.
class Invariant {
 public:
  virtual ~Invariant() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Inspect the run so far; nullopt = no violation. Called with the
  /// same simulator repeatedly (monotonically growing trace), so
  /// implementations keep a cursor instead of rescanning.
  virtual std::optional<Violation> check(const sim::Simulator& sim) = 0;
};

/// A liveness clause, checked once at the end of a fair, stabilized run.
class EventualProperty {
 public:
  virtual ~EventualProperty() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual std::optional<Violation> check_final(const sim::Simulator& sim) = 0;
};

/// Agreement: all trace events of `kind` carry the same value (covers
/// consensus "decide", QC "qc-decide" with Q encoded as -1, and NBAC
/// "nbac-decide").
class AgreementInvariant : public Invariant {
 public:
  explicit AgreementInvariant(std::string kind) : kind_(std::move(kind)) {}
  [[nodiscard]] std::string name() const override {
    return "agreement(" + kind_ + ")";
  }
  std::optional<Violation> check(const sim::Simulator& sim) override;

 private:
  std::string kind_;
  std::size_t cursor_ = 0;
  bool have_first_ = false;
  ProcessId first_p_ = kNoProcess;
  std::int64_t first_value_ = 0;
};

/// Validity: every event of `kind` carries one of the allowed values
/// (for consensus: the proposals; for QC: proposals plus Q).
class ValidityInvariant : public Invariant {
 public:
  ValidityInvariant(std::string kind, std::vector<std::int64_t> allowed)
      : kind_(std::move(kind)), allowed_(std::move(allowed)) {}
  [[nodiscard]] std::string name() const override {
    return "validity(" + kind_ + ")";
  }
  std::optional<Violation> check(const sim::Simulator& sim) override;

 private:
  std::string kind_;
  std::vector<std::int64_t> allowed_;
  std::size_t cursor_ = 0;
};

/// QC quit-validity: a Q decision ("qc-decide" = -1) at time t is legal
/// only if a failure occurred by t.
class QuitValidityInvariant : public Invariant {
 public:
  [[nodiscard]] std::string name() const override { return "quit-validity"; }
  std::optional<Violation> check(const sim::Simulator& sim) override;

 private:
  std::size_t cursor_ = 0;
};

/// NBAC validity: Commit requires a unanimous Yes vote; Abort requires a
/// No vote or a failure in the pattern.
class NbacValidityInvariant : public Invariant {
 public:
  explicit NbacValidityInvariant(std::vector<nbac::Vote> votes)
      : votes_(std::move(votes)) {}
  [[nodiscard]] std::string name() const override { return "nbac-validity"; }
  std::optional<Violation> check(const sim::Simulator& sim) override;

 private:
  std::vector<nbac::Vote> votes_;
  std::size_t cursor_ = 0;
};

/// Sigma intersection: every two quorums ever output — across all
/// processes and times, including quorums inside Psi's (Omega, Sigma)
/// mode — intersect. Requires SimConfig::record_fd_samples.
class SigmaIntersectionInvariant : public Invariant {
 public:
  [[nodiscard]] std::string name() const override {
    return "sigma-intersection";
  }
  std::optional<Violation> check(const sim::Simulator& sim) override;

 private:
  std::size_t cursor_ = 0;
  std::vector<std::uint64_t> seen_;  ///< Distinct quorum masks so far.
};

/// Termination: every correct process eventually emits an event of
/// `kind` (decides, commits, ...).
class EventualDecisionProperty : public EventualProperty {
 public:
  explicit EventualDecisionProperty(std::string kind)
      : kind_(std::move(kind)) {}
  [[nodiscard]] std::string name() const override {
    return "eventual(" + kind_ + ")";
  }
  std::optional<Violation> check_final(const sim::Simulator& sim) override;

 private:
  std::string kind_;
};

}  // namespace wfd::explore
