// Property checkers: machine-checkable renderings of the specification
// clauses, evaluated against a live run's Trace and failure pattern.
//
// Invariants are safety clauses: once false they stay false, so the
// explorer checks them after every step and stops a branch at the first
// violation. EventualProperties are liveness clauses; they are only
// meaningful on runs that were given a fair schedule and a stabilizing
// detector history, so the campaign driver checks them at the end of
// randomized runs and reports failures as suspects (a bounded run that
// merely ran out of horizon is not a counterexample to "eventually").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "explore/types.h"
#include "nbac/nbac_api.h"
#include "reg/linearizability.h"
#include "reg/register_client.h"
#include "sim/simulator.h"
#include "sim/state_encoder.h"

namespace wfd::explore {

/// A safety clause, checked incrementally after every step.
class Invariant {
 public:
  virtual ~Invariant() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Inspect the run so far; nullopt = no violation. Called with the
  /// same simulator repeatedly (monotonically growing trace), so
  /// implementations keep a cursor instead of rescanning.
  virtual std::optional<Violation> check(const sim::Simulator& sim) = 0;
  /// Fold whatever run-history state this invariant judges future steps
  /// by into the explorer's fingerprint. State that lives only in an
  /// invariant (e.g. the values past reads returned) is part of "the
  /// future" as far as violations go, so omitting it here would let the
  /// explorer prune branches whose pasts are distinguishable. The
  /// default is empty: correct for invariants whose verdicts depend only
  /// on simulator state the modules already encode.
  virtual void encode_state(sim::StateEncoder& enc) const { (void)enc; }
};

/// A liveness clause, checked once at the end of a fair, stabilized run.
class EventualProperty {
 public:
  virtual ~EventualProperty() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual std::optional<Violation> check_final(const sim::Simulator& sim) = 0;
};

/// A liveness clause for fair-cycle checking over the explored state
/// graph, interpreted as the omega-regular property "eventually goal
/// holds forever" (<>[]goal). A fair lasso whose loop visits at least
/// one goal-false state refutes it; for absorbing goals (termination:
/// once every module is done it stays done) <>[]goal coincides with
/// <>goal. Contrast EventualProperty: that one is a heuristic end-of-run
/// *suspect* check for randomized campaigns, while a LivenessClause
/// feeds the explorer's SCC search and yields genuine counterexamples.
///
/// Contract: goal() must be a pure function of the state the explorer
/// fingerprints (module state, in-flight messages, the oracle's latched
/// history, the failure pattern) — never of the trace, absolute time or
/// any history the fingerprint discards — so that a goal bit can be
/// attached to a graph node once and reused for every path reaching it.
class LivenessClause {
 public:
  virtual ~LivenessClause() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual bool goal(const sim::Simulator& sim) const = 0;
};

/// Termination (consensus "decide", QC/NBAC decisions, rb delivery
/// completion — uniformly): every currently-alive process's protocol
/// stack reports done(). Modules latch their decisions, so the goal is
/// absorbing and <>[]goal degenerates to plain eventual termination.
class TerminationClause : public LivenessClause {
 public:
  [[nodiscard]] std::string name() const override { return "termination"; }
  [[nodiscard]] bool goal(const sim::Simulator& sim) const override {
    return sim.all_alive_done();
  }
};

/// Omega eventual leadership at the protocol level: eventually, forever,
/// some alive process is actively leading (has an open round) or the
/// run has terminated. A fair loop in which no leader ever has a round
/// open and nobody decides is exactly the "Omega never stabilizes into
/// an acting leader" failure the paper's liveness argument excludes.
/// The scenario wires one is-leading accessor per process at build().
class LeadershipClause : public LivenessClause {
 public:
  explicit LeadershipClause(std::vector<std::function<bool()>> leading)
      : leading_(std::move(leading)) {}
  [[nodiscard]] std::string name() const override { return "leadership"; }
  [[nodiscard]] bool goal(const sim::Simulator& sim) const override {
    if (sim.all_alive_done()) return true;
    for (ProcessId p = 0; p < static_cast<ProcessId>(leading_.size()); ++p) {
      if (sim.pattern().alive(p, sim.now()) &&
          leading_[static_cast<std::size_t>(p)]()) {
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<std::function<bool()>> leading_;  ///< One per process.
};

/// Strong completeness of an *implemented* detector (heartbeat Omega):
/// eventually, forever, no alive process trusts a crashed one — its
/// emitted leader is alive and its suspected set covers every crashed
/// process. The scenario wires per-process (leader, suspected-mask)
/// accessors at build(); both read module state the fingerprint folds.
class FdCompletenessClause : public LivenessClause {
 public:
  struct View {
    std::function<ProcessId()> leader;
    std::function<std::uint64_t()> suspected_mask;
  };
  explicit FdCompletenessClause(std::vector<View> views)
      : views_(std::move(views)) {}
  [[nodiscard]] std::string name() const override { return "fd-completeness"; }
  [[nodiscard]] bool goal(const sim::Simulator& sim) const override {
    std::uint64_t crashed = 0;
    for (ProcessId p = 0; p < sim.n(); ++p) {
      if (!sim.pattern().alive(p, sim.now())) {
        crashed |= std::uint64_t{1} << p;
      }
    }
    for (ProcessId p = 0; p < static_cast<ProcessId>(views_.size()); ++p) {
      if ((crashed >> p) & 1) continue;  // Crashed observers don't count.
      const View& v = views_[static_cast<std::size_t>(p)];
      const ProcessId leader = v.leader();
      if (leader != kNoProcess && ((crashed >> leader) & 1) != 0) {
        return false;
      }
      if ((v.suspected_mask() & crashed) != crashed) return false;
    }
    return true;
  }

 private:
  std::vector<View> views_;  ///< One per process.
};

/// Agreement: all trace events of `kind` carry the same value (covers
/// consensus "decide", QC "qc-decide" with Q encoded as -1, and NBAC
/// "nbac-decide").
class AgreementInvariant : public Invariant {
 public:
  explicit AgreementInvariant(std::string kind) : kind_(std::move(kind)) {}
  [[nodiscard]] std::string name() const override {
    return "agreement(" + kind_ + ")";
  }
  std::optional<Violation> check(const sim::Simulator& sim) override;
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("have-first", have_first_);
    if (have_first_) enc.field("first-value", first_value_);
  }

 private:
  std::string kind_;
  std::size_t cursor_ = 0;
  bool have_first_ = false;
  ProcessId first_p_ = kNoProcess;
  std::int64_t first_value_ = 0;
};

/// Validity: every event of `kind` carries one of the allowed values
/// (for consensus: the proposals; for QC: proposals plus Q).
class ValidityInvariant : public Invariant {
 public:
  ValidityInvariant(std::string kind, std::vector<std::int64_t> allowed)
      : kind_(std::move(kind)), allowed_(std::move(allowed)) {}
  [[nodiscard]] std::string name() const override {
    return "validity(" + kind_ + ")";
  }
  std::optional<Violation> check(const sim::Simulator& sim) override;

 private:
  std::string kind_;
  std::vector<std::int64_t> allowed_;
  std::size_t cursor_ = 0;
};

/// QC quit-validity: a Q decision ("qc-decide" = -1) at time t is legal
/// only if a failure occurred by t.
class QuitValidityInvariant : public Invariant {
 public:
  [[nodiscard]] std::string name() const override { return "quit-validity"; }
  std::optional<Violation> check(const sim::Simulator& sim) override;

 private:
  std::size_t cursor_ = 0;
};

/// NBAC validity: Commit requires a unanimous Yes vote; Abort requires a
/// No vote or a failure in the pattern.
class NbacValidityInvariant : public Invariant {
 public:
  explicit NbacValidityInvariant(std::vector<nbac::Vote> votes)
      : votes_(std::move(votes)) {}
  [[nodiscard]] std::string name() const override { return "nbac-validity"; }
  std::optional<Violation> check(const sim::Simulator& sim) override;

 private:
  std::vector<nbac::Vote> votes_;
  std::size_t cursor_ = 0;
};

/// Sigma intersection: every two quorums ever output — across all
/// processes and times, including quorums inside Psi's (Omega, Sigma)
/// mode — intersect. Requires SimConfig::record_fd_samples.
class SigmaIntersectionInvariant : public Invariant {
 public:
  [[nodiscard]] std::string name() const override {
    return "sigma-intersection";
  }
  std::optional<Violation> check(const sim::Simulator& sim) override;
  void encode_state(sim::StateEncoder& enc) const override {
    for (const std::uint64_t mask : seen_) {
      sim::StateEncoder sub = enc.child();
      // Fold the quorum as a (renamable) process set, not a raw mask.
      sub.field("mask", ProcessSet::from_raw(mask));
      enc.merge("quorum", sub);
    }
  }

 private:
  std::size_t cursor_ = 0;
  std::vector<std::uint64_t> seen_;  ///< Distinct quorum masks so far.
};

/// Failure-detector legality under fault injection: the prefix-checkable
/// clauses of the enabled detector components, validated against the
/// run's *current* failure pattern — which injected crashes grow on the
/// fly — via fd/history_checker. FS: red only at-or-after a failure.
/// Psi: bottom prefix, single switch, one common branch, the FS branch
/// only after a failure. (Sigma intersection stays the job of
/// SigmaIntersectionInvariant.) A crash injected later only widens what
/// is legal and can never legalise an earlier sample, so checking each
/// growing prefix is sound. Requires SimConfig::record_fd_samples.
///
/// encode_state stays empty on purpose: the verdict on *future* samples
/// depends only on the oracle's latched mode state and the pattern, both
/// of which the simulator already folds into the fingerprint.
class FdPrefixInvariant : public Invariant {
 public:
  FdPrefixInvariant(bool fs, bool psi) : fs_(fs), psi_(psi) {}
  [[nodiscard]] std::string name() const override { return "fd-prefix"; }
  std::optional<Violation> check(const sim::Simulator& sim) override;

 private:
  bool fs_;
  bool psi_;
  std::size_t checked_ = 0;  ///< Sample count at the last (re)check.
};

/// Register atomicity: the history of read/write operations recorded by
/// the workload clients stays linearizable (Herlihy-Wing via the
/// Wing-Gong checker). The invariant owns the History the clients write
/// into; re-checks fire only when an operation completes.
class RegisterAtomicityInvariant : public Invariant {
 public:
  explicit RegisterAtomicityInvariant(std::int64_t initial = 0)
      : initial_(initial) {}
  [[nodiscard]] std::string name() const override {
    return "register-atomicity";
  }
  /// The shared log the scenario wires its RegisterWorkloadModules to.
  [[nodiscard]] reg::History& history() { return history_; }
  std::optional<Violation> check(const sim::Simulator& sim) override;
  /// Folds each op's (client, per-client index, kind, value, completion)
  /// plus the real-time precedence edges between ops — relative order
  /// only, no absolute timestamps — since future verdicts depend on
  /// which past ops overlapped, not on when they ran.
  void encode_state(sim::StateEncoder& enc) const override;

 private:
  reg::History history_;
  std::int64_t initial_;
  std::size_t checked_completed_ = 0;
};

/// Atomic-broadcast total order: the per-process delivery logs are
/// always prefix-consistent — no two processes ever disagree at the same
/// log position. The invariant owns the logs; the scenario installs a
/// deliver hook per process that appends to them.
class TotalOrderInvariant : public Invariant {
 public:
  explicit TotalOrderInvariant(int n)
      : logs_(static_cast<std::size_t>(n)) {}
  [[nodiscard]] std::string name() const override { return "total-order"; }
  /// Append one delivery at process p (call from the deliver hook).
  void record(ProcessId p, std::uint64_t origin, std::uint64_t seq,
              std::int64_t body) {
    logs_[static_cast<std::size_t>(p)].push_back(
        Entry{origin, seq, body});
  }
  std::optional<Violation> check(const sim::Simulator& sim) override;
  void encode_state(sim::StateEncoder& enc) const override;

 private:
  struct Entry {
    std::uint64_t origin = 0;
    std::uint64_t seq = 0;
    std::int64_t body = 0;
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  std::vector<std::vector<Entry>> logs_;
};

/// URB integrity: each process delivers a given (origin, seq) at most
/// once, and only messages that were actually broadcast (the scenario's
/// workload has sender i broadcast exactly one message, body 100+i, as
/// its seq 1). The invariant owns the delivery logs; the scenario
/// installs a deliver hook per process that appends to them.
class UrbIntegrityInvariant : public Invariant {
 public:
  UrbIntegrityInvariant(int n, int senders)
      : senders_(senders), logs_(static_cast<std::size_t>(n)) {}
  [[nodiscard]] std::string name() const override { return "urb-integrity"; }
  /// Append one delivery at process p (call from the deliver hook).
  void record(ProcessId p, std::uint64_t origin, std::uint64_t seq,
              std::int64_t body) {
    logs_[static_cast<std::size_t>(p)].push_back(Entry{origin, seq, body});
  }
  std::optional<Violation> check(const sim::Simulator& sim) override;
  void encode_state(sim::StateEncoder& enc) const override;

 private:
  struct Entry {
    std::uint64_t origin = 0;
    std::uint64_t seq = 0;
    std::int64_t body = 0;
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  int senders_;
  std::vector<std::vector<Entry>> logs_;
};

/// Termination: every correct process eventually emits an event of
/// `kind` (decides, commits, ...).
class EventualDecisionProperty : public EventualProperty {
 public:
  explicit EventualDecisionProperty(std::string kind)
      : kind_(std::move(kind)) {}
  [[nodiscard]] std::string name() const override {
    return "eventual(" + kind_ + ")";
  }
  std::optional<Violation> check_final(const sim::Simulator& sim) override;

 private:
  std::string kind_;
};

/// Eventual leadership (the Omega specification, for *implemented*
/// detectors): by the end of a synchronous-enough run, the last leader
/// event (`kind`, value = leader id) emitted by every correct process
/// names the same correct process — and, since heartbeat Omega
/// stabilises on the smallest trusted id, specifically the smallest
/// correct one.
class EventualLeadershipProperty : public EventualProperty {
 public:
  explicit EventualLeadershipProperty(std::string kind)
      : kind_(std::move(kind)) {}
  [[nodiscard]] std::string name() const override {
    return "eventual-leadership(" + kind_ + ")";
  }
  std::optional<Violation> check_final(const sim::Simulator& sim) override;

 private:
  std::string kind_;
};

}  // namespace wfd::explore
