// Bounded depth-first exploration of the choice tree of a scenario.
//
// The explorer re-executes runs: each run rebuilds the scenario from
// scratch and replays the current path prefix through the recorded
// per-choice-point frames, then extends the path with fresh frames until
// the run halts (horizon, everyone done, or everyone crashed), a safety
// invariant is violated, or a fingerprint prune fires. Backtracking
// flips the deepest frame with an unvisited alternative and the next
// re-execution descends into it — classic stateless model checking.
//
// Reductions (ExplorerOptions::reduction):
//  * kDpor (default): dynamic partial-order reduction over schedule
//    choices, combined with sleep sets (Flanagan-Godefroid). Every
//    executed step feeds a vector-clock happens-before relation; when a
//    delivery to process p is found to race with an earlier event of p
//    (the message was already in flight and the send does not causally
//    depend on that event), the delivery is inserted into the *backtrack
//    set* of the earlier choice point. A schedule frame then only
//    revisits labels in its backtrack set instead of its whole menu: the
//    menu is expanded lazily, exactly where executions prove reorderings
//    reachable. The dependence relation between two schedule actions is
//    selectable (ExplorerOptions::dependence): under kProcess two
//    actions are dependent iff the same process acts (a step of p never
//    consumes q's pending messages; sends only append to the buffer and
//    delivery is a separate explicit choice); under kContent (the
//    default) two deliveries to the same process are additionally
//    independent when their payloads declare themselves commuting
//    (Payload::commutes_with, audited per protocol) or when they are
//    same-sender copies with identical content — see DESIGN.md for the
//    soundness argument. As with the sleep-set mode below, the reduction
//    is exact
//    when option menus are time-independent; explored crash times or a
//    stabilization cutoff inside the horizon may make it skip a small
//    fraction of timing-only interleavings — use kNone for strict
//    exhaustiveness. When a fingerprint prune cuts a run short, every
//    schedule frame on the current path is conservatively re-expanded to
//    its full menu (the unexecuted suffix can no longer prove races), so
//    pruned paths degrade to sleep-set coverage instead of losing
//    soundness.
//  * kSleepSets: sleep sets only — the static approximation kDpor
//    subsumes; kept as the ablation baseline.
//  * kNone: full enumeration.
//  * Oldest-per-channel delivery (see ReplayScheduler::Options), applied
//    at choice-enumeration time, composes with all of the above.
//  * State-fingerprint pruning (on by default): the simulator composes
//    every module's Module::encode_state, the in-flight message multiset
//    and the oracle's latched history into an order-insensitive digest
//    (sim/state_encoder.h), and the invariants fold their own
//    history-derived state on top. A branch is cut when its fingerprint
//    was already seen at the same or an earlier time (same-or-larger
//    remaining horizon). If any component reports itself opaque the
//    digest is unusable and pruning is disabled for that run — soundness
//    over reduction.
//
// Full trees are intractable beyond toy sizes, so exploration is
// budgeted (max_states choice points); coverage() reports honestly
// whether the tree was completed, completed modulo fingerprint
// equivalence, or merely ran out of budget. A budget-capped search can
// be persisted (ExplorerOptions::save_path) and resumed
// (ExplorerOptions::resume_path) across invocations — the snapshot
// carries the DFS frontier, the visited-fingerprint set and the
// cumulative stats (state_store.h), so k budgeted invocations visit
// exactly the states one uninterrupted run would.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "explore/scenario.h"
#include "explore/types.h"
#include "sim/choice.h"
#include "sim/payload.h"

namespace wfd::explore {

/// Which schedule-space reduction the DFS applies.
enum class Reduction {
  kNone,       ///< Enumerate every option at every choice point.
  kSleepSets,  ///< Static sleep sets (ablation baseline).
  kDpor,       ///< Dynamic partial-order reduction + sleep sets.
};

/// Which dependence relation DPOR's race detection (and the sleep-set
/// inheritance under kDpor) uses for pairs of schedule actions.
enum class Dependence {
  /// Same process acts => dependent. The classical, coarsest-sound
  /// relation for this simulator (ablation baseline).
  kProcess,
  /// Refines kProcess: two *deliveries* to the same process are
  /// independent when Payload::commutes_with declares both directions
  /// commuting, or when they are same-sender copies with identical
  /// encoded content. Payloads that never override the hook keep the
  /// conservative default and are reported
  /// (ExploreReport::conservative_payloads).
  kContent,
};

struct ExplorerOptions {
  /// Budget on materialized choice points across the whole exploration.
  std::uint64_t max_states = 100000;
  /// 0 = unlimited.
  std::uint64_t max_runs = 0;
  Reduction reduction = Reduction::kDpor;
  /// Prune branches whose composed Module::encode_state fingerprint was
  /// already visited (disabled automatically while any state component
  /// is opaque).
  bool state_fingerprints = true;
  /// Stop at the first violating run (the usual bug hunt); false keeps
  /// counting violations until the tree or the budget runs out.
  bool stop_at_first = true;
  /// 0 = canonical child order (DPOR: round-robin fairness; otherwise
  /// first-option-first). Nonzero seeds a deterministic per-frame
  /// rotation of the visit order, which is how campaign frontier workers
  /// diversify their partial explorations.
  std::uint64_t order_seed = 0;
  /// Dependence relation for DPOR race detection; ignored outside kDpor.
  Dependence dependence = Dependence::kContent;
  /// Cooperative cancel: when non-null, the explorer polls it once per
  /// simulator step (so at least once per choice-point expansion) and
  /// stops as soon as it reads true, abandoning the in-flight run
  /// without trace (its frames, fingerprints and stats are rolled back,
  /// so a snapshot taken afterwards is still resumable). A cancelled
  /// search never claims exhaustion — coverage() reports kBudget. This
  /// is how a campaign's stop_at_first reaches its frontier workers.
  const std::atomic<bool>* cancel = nullptr;
  /// Budget on NEW choice points materialized by this invocation
  /// (0 = off). Unlike max_states — a cap on the cumulative total,
  /// which includes every node restored from a resumed snapshot — this
  /// bounds the per-invocation increment; the knob --budget-states
  /// loops on.
  std::uint64_t budget_states = 0;
  /// Non-empty: when run() returns, persist the search state here as a
  /// resumable snapshot (state_store.h; written via temp-file + rename,
  /// so a killed run never leaves a torn snapshot).
  std::string save_path;
  /// Non-empty: seed the DFS from the snapshot stored here instead of
  /// the root — restore the backtrack frontier, union the
  /// visited-fingerprint set, accumulate stats on top of the stored
  /// ones. The snapshot's scenario header must match `scenario` and its
  /// explorer options must match this struct, or run() refuses
  /// (ExploreReport::resume_error / resume_rejected).
  std::string resume_path;
  /// Scenario header recorded into snapshots and validated on resume.
  /// Must describe the same options the ScenarioBuilder was built from;
  /// only consulted when save_path / resume_path are set.
  ScenarioOptions scenario;
};

struct ExploreStats {
  std::uint64_t nodes = 0;        ///< Choice points materialized.
  std::uint64_t runs = 0;         ///< Complete re-executions.
  std::uint64_t steps = 0;        ///< Simulator steps across all runs.
  std::uint64_t sleep_skips = 0;  ///< Options skipped by sleep sets.
  std::uint64_t fp_prunes = 0;    ///< Branches cut by fingerprints.
  std::uint64_t hb_races = 0;     ///< Racing event pairs detected (DPOR).
  std::uint64_t backtrack_points = 0;  ///< Labels added to backtrack sets.
  /// Delivery pairs exempted from race insertion because their payloads
  /// commute (Dependence::kContent only).
  std::uint64_t commute_skips = 0;
  /// Adversary moves executed across all completed runs (fault
  /// injection; see src/inject/).
  std::uint64_t injected_crashes = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_dups = 0;
  std::uint64_t violations = 0;   ///< Violating runs found.
  bool exhausted = false;         ///< Whole tree visited within budget.
};

/// How completely the choice tree was covered.
enum class Coverage {
  kBudget,              ///< Ran out of max_states / max_runs.
  kComplete,            ///< Every branch visited, no fingerprint cuts.
  kModuloFingerprints,  ///< Every branch visited or cut at a state whose
                        ///< subtree was explored from an equivalent
                        ///< fingerprint ("exhausted modulo fingerprint
                        ///< equivalence").
};

[[nodiscard]] Coverage coverage(const ExploreStats& stats);
[[nodiscard]] std::string coverage_name(Coverage c);

struct ExploreReport {
  ExploreStats stats;
  /// The first counterexample found (unshrunk). Counterexamples are not
  /// persisted across save/resume: each invocation reports at most the
  /// first one it finds itself (stats.violations stays cumulative).
  std::optional<Counterexample> cex;
  /// Identities of payload types observed in flight that still ship the
  /// conservative commutes_with default (empty kind()): the audit
  /// backlog of Dependence::kContent. Sorted for stable output.
  std::set<std::string> conservative_payloads;
  /// True when the search was seeded from ExplorerOptions::resume_path.
  bool resumed = false;
  /// Save/resume generations behind this search (0 = fresh start).
  std::uint64_t resume_generation = 0;
  /// Non-empty: resuming failed and nothing ran. resume_rejected
  /// distinguishes an incompatible snapshot (different scenario or
  /// explorer options — the caller's exit-2 case) from an unreadable or
  /// corrupt one.
  std::string resume_error;
  bool resume_rejected = false;
  /// Non-empty: the search ran but the final snapshot was not written.
  std::string save_error;
  /// The search was stopped by ExplorerOptions::cancel.
  bool cancelled = false;
};

struct StateSnapshot;

class Explorer {
 public:
  Explorer(ScenarioBuilder build, ExplorerOptions opt);

  /// Explore until a violation (when stop_at_first), the budget, or the
  /// whole tree is done. Re-entrant: each call restarts from scratch —
  /// or from ExplorerOptions::resume_path when set.
  ExploreReport run();

 private:
  /// One choice point on the current DFS path.
  struct Frame {
    sim::ChoiceKind kind{};
    std::vector<std::uint64_t> labels;
    std::uint32_t chosen = 0;
    std::uint32_t start = 0;  ///< Rotation offset of the visit order.
    std::vector<std::uint64_t> sleep;     ///< Labels asleep at this node.
    std::vector<std::uint64_t> explored;  ///< Labels fully explored here.
    /// DPOR: the labels this schedule frame must (still) explore. Seeded
    /// with the default child; grown by race insertion and by the
    /// conservative prune expansion.
    std::vector<std::uint64_t> backtrack;
    bool blocked = false;  ///< Every option was asleep on arrival.
  };

  /// One executed event of one process within the current run.
  struct StepRec {
    int frame = -1;  ///< Index into frames_, or -1 for a forced move.
    std::uint64_t time = 0;       ///< Global step number within the run.
    std::uint64_t delivered = 0;  ///< Message id; 0 for lambda/start.
    bool is_start = false;
    /// λ step the process declared inert (Process::tick_noop): commutes
    /// with tick-insensitive deliveries under Dependence::kContent.
    bool tick_inert = false;
  };

  /// Send-time metadata of a message of the current run.
  struct MsgInfo {
    ProcessId sender = kNoProcess;
    std::uint64_t sent_time = 0;  ///< Global step number of the send.
    std::vector<std::uint64_t> clock;  ///< Sender's vector clock at send.
    /// The payload itself (kContent only; shared with the envelope).
    sim::PayloadPtr payload;
    /// Content digest when the payload's encoding is complete (kContent
    /// only); fuels the same-sender identical-copy rule.
    std::optional<std::uint64_t> digest;
  };

  class DfsSource;

  /// The next index to visit at `f`, honouring the active reduction,
  /// rotation, sleep and explored sets; nullopt when the frame has no
  /// eligible option left.
  std::optional<std::uint32_t> next_choice(Frame& f, bool counting_skips);

  /// DPOR default child of a fresh schedule frame: round-robin-fair
  /// preferred process (successor of the nearest schedule ancestor's
  /// actor), deliveries before lambda, smallest message id.
  std::optional<std::uint32_t> dpor_default_choice(Frame& f);

  /// Record one executed simulator step into the happens-before state
  /// and run race detection against the acting process's earlier events.
  void observe_step(sim::Simulator& sim, int frame, std::uint64_t step_time);

  /// Under kContent: true when the two deliveries commute (declared by
  /// their payloads, or same-sender copies with equal content digests),
  /// so reordering them cannot be observable. Always false under
  /// kProcess. Records conservative-default payloads as a side effect.
  [[nodiscard]] bool deliveries_independent(const MsgInfo& a,
                                            const MsgInfo& b);

  /// Race-detect the delivery of msg to p (executed or hypothetical)
  /// against p's earlier events, inserting backtrack labels at every
  /// racing choice point.
  void race_delivery(ProcessId p, std::uint64_t msg, const MsgInfo& mi);

  /// Race-detect a lambda step of p against p's earlier events: a
  /// lambda commutes with everything except a delivery to p right before
  /// it. Once the reordered branch runs, its own lambda re-races with
  /// the next delivery down, so the single-step rule covers every depth.
  /// An *inert* lambda (every module's tick a declared no-op) further
  /// commutes backward past tick-insensitive deliveries and other inert
  /// lambdas under Dependence::kContent, so the scan continues through
  /// those until the first genuinely dependent event.
  void race_lambda(ProcessId p, bool inert);

  /// A run's halt leaves transitions enabled-but-never-executed: the
  /// messages still in flight (their receivers went done, crashed, or
  /// the horizon hit) and the lambda of every process whose last event
  /// was a delivery. Those hypothetical events race with executed ones
  /// exactly like executed events do — without this pass DPOR would
  /// never revisit a choice point whose alternative delivery only
  /// happens on the road not taken.
  void end_of_run_races(sim::Simulator& sim);

  /// Insert `the delivery of msg to receiver` into f's backtrack set —
  /// the exact label when the menu offers it, else the channel-oldest
  /// delivery from the same sender, else (unreachable in practice) the
  /// whole menu. Returns true when a new label was added.
  bool insert_backtrack(Frame& f, ProcessId receiver, std::uint64_t msg,
                        ProcessId sender);
  bool add_backtrack(Frame& f, std::uint64_t label);

  /// A fingerprint prune cuts the run before its races are observable:
  /// conservatively re-expand every schedule frame on the path.
  void expand_path_on_prune();

  /// Flip the deepest frame with an unvisited alternative; false when
  /// the whole tree has been visited.
  bool backtrack();

  [[nodiscard]] sim::DecisionLog decisions() const;

  [[nodiscard]] bool cancel_requested() const {
    return opt_.cancel != nullptr &&
           opt_.cancel->load(std::memory_order_relaxed);
  }

  /// Snapshot conversion for save/resume (state_store.h).
  void restore(const StateSnapshot& snap);
  [[nodiscard]] StateSnapshot make_snapshot() const;

  /// Erase every trace of a run abandoned mid-execution (cooperative
  /// cancel): drop the frames it materialized, undo its fingerprint
  /// insertions, restore the stats. Backtrack labels it raced into
  /// pre-existing frames are kept — they only add pending work, and the
  /// re-execution after resume re-derives them identically.
  void rollback_run(std::size_t replay_len,
                    const ExploreStats& run_start_stats);

  ScenarioBuilder build_;
  ExplorerOptions opt_;
  std::vector<Frame> frames_;
  /// fp -> earliest sim time it was reached at (prune only when the
  /// revisit has the same or less remaining horizon).
  std::unordered_map<std::uint64_t, std::uint64_t> fps_;
  ExploreStats stats_;
  /// Identities of in-flight payloads with the conservative default.
  std::set<std::string> conservative_;
  bool run_blocked_ = false;
  /// The current path has not been executed to completion (fresh root,
  /// or a run abandoned by cancel): continuing means re-executing it,
  /// not backtracking past it.
  bool path_pending_ = true;
  bool cancelled_ = false;
  /// Generation of the snapshot this search resumed from (0 = fresh).
  std::uint64_t resume_generation_ = 0;
  /// Undo log of the current run's fps_ mutations (fp, prior time or
  /// nullopt for a fresh insert); only kept while cancel is armed.
  std::vector<std::pair<std::uint64_t, std::optional<std::uint64_t>>> fp_log_;

  // Per-run happens-before state (rebuilt every re-execution).
  std::vector<std::vector<StepRec>> proc_events_;
  std::vector<std::vector<std::uint64_t>> clock_;
  std::unordered_map<std::uint64_t, MsgInfo> msgs_;
  std::uint64_t prev_sent_ = 0;
};

}  // namespace wfd::explore
