// Bounded depth-first exploration of the choice tree of a scenario.
//
// The explorer re-executes runs: each run rebuilds the scenario from
// scratch and replays the current path prefix through the recorded
// per-choice-point frames, then extends the path with fresh frames until
// the run halts (horizon, everyone done, or everyone crashed), a safety
// invariant is violated, or a fingerprint prune fires. Backtracking
// flips the deepest frame with an unvisited alternative and the next
// re-execution descends into it — classic stateless model checking.
//
// Reductions:
//  * Sleep sets over schedule choices. Two schedule actions are treated
//    as independent iff different processes act: a step of p never
//    consumes q's pending messages (sends only append to the buffer and
//    delivery is a separate explicit choice), so swapping adjacent steps
//    of distinct processes reaches the same state modulo event
//    timestamps. The approximation is exact when the option menus are
//    time-independent (no explored crash times, no stabilization cutoff
//    inside the horizon); otherwise a small fraction of interleavings
//    that differ only in timing may be skipped — set
//    ExplorerOptions::sleep_sets = false for strict exhaustiveness.
//  * Oldest-per-channel delivery (see ReplayScheduler::Options), applied
//    at choice-enumeration time.
//  * Optional state-fingerprint pruning: when a user-supplied
//    fingerprint has already been seen at the same or shallower depth,
//    the branch below it is cut.
//
// Full trees are intractable beyond toy sizes, so exploration is
// budgeted (max_states choice points); the `exhausted` stat reports
// honestly whether the tree was completed within budget.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "explore/scenario.h"
#include "explore/types.h"
#include "sim/choice.h"

namespace wfd::explore {

/// Hash of the "current state" of a run, used for pruning. Must fold in
/// everything that determines the future (process states are opaque to
/// the framework, so callers supply this per scenario when they want it).
using FingerprintFn = std::function<std::uint64_t(const sim::Simulator&)>;

struct ExplorerOptions {
  /// Budget on materialized choice points across the whole exploration.
  std::uint64_t max_states = 100000;
  /// 0 = unlimited.
  std::uint64_t max_runs = 0;
  bool sleep_sets = true;
  /// Stop at the first violating run (the usual bug hunt); false keeps
  /// counting violations until the tree or the budget runs out.
  bool stop_at_first = true;
  /// 0 = canonical (first-option-first) child order. Nonzero seeds a
  /// deterministic per-frame rotation of the visit order, which is how
  /// campaign frontier workers diversify their partial explorations.
  std::uint64_t order_seed = 0;
  FingerprintFn fingerprint;
};

struct ExploreStats {
  std::uint64_t nodes = 0;        ///< Choice points materialized.
  std::uint64_t runs = 0;         ///< Complete re-executions.
  std::uint64_t steps = 0;        ///< Simulator steps across all runs.
  std::uint64_t sleep_skips = 0;  ///< Options skipped by sleep sets.
  std::uint64_t fp_prunes = 0;    ///< Branches cut by fingerprints.
  std::uint64_t violations = 0;   ///< Violating runs found.
  bool exhausted = false;         ///< Whole tree visited within budget.
};

struct ExploreReport {
  ExploreStats stats;
  /// The first counterexample found (unshrunk).
  std::optional<Counterexample> cex;
};

class Explorer {
 public:
  Explorer(ScenarioBuilder build, ExplorerOptions opt);

  /// Explore until a violation (when stop_at_first), the budget, or the
  /// whole tree is done. Re-entrant: each call restarts from scratch.
  ExploreReport run();

 private:
  /// One choice point on the current DFS path.
  struct Frame {
    sim::ChoiceKind kind{};
    std::vector<std::uint64_t> labels;
    std::uint32_t chosen = 0;
    std::uint32_t start = 0;  ///< Rotation offset of the visit order.
    std::vector<std::uint64_t> sleep;     ///< Labels asleep at this node.
    std::vector<std::uint64_t> explored;  ///< Labels fully explored here.
    bool blocked = false;  ///< Every option was asleep on arrival.
  };

  class DfsSource;

  /// The next index to visit at `f`, honouring rotation, sleep and
  /// explored sets; nullopt when the frame has no eligible option left.
  std::optional<std::uint32_t> next_choice(Frame& f, bool counting_skips);

  /// Flip the deepest frame with an unvisited alternative; false when
  /// the whole tree has been visited.
  bool backtrack();

  [[nodiscard]] sim::DecisionLog decisions() const;

  ScenarioBuilder build_;
  ExplorerOptions opt_;
  std::vector<Frame> frames_;
  std::unordered_map<std::uint64_t, std::uint64_t> fps_;  ///< fp -> depth.
  ExploreStats stats_;
  bool run_blocked_ = false;
};

}  // namespace wfd::explore
