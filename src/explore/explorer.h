// Bounded exploration of the choice tree of a scenario — the wave-
// scheduled, work-stealing successor of the original single-threaded
// DFS.
//
// The search state is a queue of *units*. A unit owns one edge of the
// choice tree: a fixed path prefix (its frames below `floor` never
// change) plus the DFS frontier it has grown below that prefix. Units
// execute independently — each one is the classic stateless-model-
// checking loop (re-execute the scenario along the recorded path,
// extend to a halt, backtrack the deepest frame with an unvisited
// alternative) with the backtrack walk stopping at the unit's floor.
//
// Units run in *waves*: up to a fixed number of queued units execute
// concurrently on SearchConfig::threads workers, each against the
// fingerprint set committed at the wave start plus a private overlay.
// A barrier then merges the results in canonical unit order: stats and
// fingerprint overlays fold in, units that exhausted their subtree are
// dropped, and units stopped by the per-wave node budget are
// *decomposed* — every frame of their final path donates its
// unvisited-but-owed labels as freshly spawned units (work stealing by
// splitting the frontier, not by locking a shared stack). A registry
// keyed by a per-node path-hash chain records, for every node whose
// frontier has been split, the ordered set of labels already assigned
// to some unit; DPOR race insertions that target a frame below the
// inserting unit's floor are deferred to the barrier and resolved
// against that registry, so the same reordering is never explored
// twice and sleep-set asymmetry (later-assigned labels sleep
// earlier-assigned independent ones, never the reverse) is preserved
// across units.
//
// Every decision that shapes the search — wave composition, per-wave
// budgets, decomposition order, deferred-insertion order — is a pure
// function of the committed search state, never of thread timing.
// Results (states, coverage, violations, snapshots) are therefore
// identical for every SearchConfig::threads value; threads only buy
// wall clock. Cooperative cancellation discards the entire in-flight
// wave, so a snapshot saved afterwards is exactly the last barrier
// state and a resumed run re-executes the discarded wave verbatim.
//
// Reductions (SearchConfig::reduction) are unchanged in spirit from
// the serial explorer: kDpor layers dynamic partial-order reduction
// and sleep sets over the schedule choices, kSleepSets keeps only the
// static sleep-set approximation, kNone enumerates everything. Two
// levers refine the dependence relation the reduction consumes:
//  * fault_dependence (on by default): crash/drop/duplicate labels use
//    the sparse relation of sim/dependence.h — a fault commutes with
//    steps of processes it does not touch — instead of being dependent
//    with everything. Frames whose menu offers a fault are still fully
//    expanded (soundness over reduction); the lever lets fault labels
//    participate in sleep sets and lets sleep sets survive fault
//    edges, which is where the crash-exploration blowup lived.
//  * symmetry (opt-in): state fingerprints are canonicalized under
//    process renaming within ScenarioFactory::symmetry_classes — the
//    stored fingerprint is the minimum digest over the scenario's
//    symmetry group, so runs that differ only by a renaming of
//    interchangeable processes merge.
//
// Coverage is reported honestly (coverage()): complete, complete
// modulo fingerprint equivalence, or budget-capped. A capped search
// persists its unit queue, node registry and fingerprint set
// (SearchConfig::save_path, state_store.h) and resumes across
// invocations; k budgeted invocations visit exactly the states one
// uninterrupted run would.
//
// Liveness mode (SearchConfig::scenario.liveness non-empty) grows the
// fingerprint store into an explicit state graph while exploring —
// per-step fingerprints, goal bits, enabled sets, per-channel
// deliverability bits, decision-labelled edges (explore/liveness.h) —
// and, once the tree is exhausted, runs a fair-cycle search over it: a
// cycle avoiding the clause's goal that is fair to every enabled
// process and every pending directed channel is a liveness violation,
// reported as a replayable stem+loop lasso. A
// fingerprint revisit prunes regardless of time in this mode (the
// liveness validate() rules make states time-free, so a prune is an
// exact merge into an already-expanded graph node) and exhaustion
// therefore reports kComplete coverage even with fp_prunes > 0.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "explore/scenario.h"
#include "explore/search_config.h"
#include "explore/types.h"

namespace wfd::explore {

struct ExploreStats {
  std::uint64_t nodes = 0;        ///< Choice points materialized.
  std::uint64_t runs = 0;         ///< Complete re-executions.
  std::uint64_t steps = 0;        ///< Simulator steps across all runs.
  std::uint64_t sleep_skips = 0;  ///< Options skipped by sleep sets.
  std::uint64_t fp_prunes = 0;    ///< Branches cut by fingerprints.
  std::uint64_t hb_races = 0;     ///< Racing event pairs detected (DPOR).
  std::uint64_t backtrack_points = 0;  ///< Labels added to backtrack sets.
  /// Delivery pairs exempted from race insertion because their payloads
  /// commute (Dependence::kContent only).
  std::uint64_t commute_skips = 0;
  /// Adversary moves executed across all completed runs (fault
  /// injection; see src/inject/).
  std::uint64_t injected_crashes = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_dups = 0;
  std::uint64_t violations = 0;   ///< Violating runs found.
  bool exhausted = false;         ///< Whole tree visited within budget.
  // Liveness (fair-cycle) mode only — all zero otherwise.
  bool liveness = false;              ///< A state graph was recorded.
  std::uint64_t graph_states = 0;     ///< Distinct state-graph nodes.
  std::uint64_t graph_edges = 0;      ///< Distinct recorded transitions.
  std::uint64_t graph_truncated = 0;  ///< Nodes with horizon-cut futures.
};

/// How completely the choice tree was covered.
enum class Coverage {
  kBudget,              ///< Ran out of max_states / max_runs.
  kComplete,            ///< Every branch visited, no fingerprint cuts.
  kModuloFingerprints,  ///< Every branch visited or cut at a state whose
                        ///< subtree was explored from an equivalent
                        ///< fingerprint ("exhausted modulo fingerprint
                        ///< equivalence").
};

[[nodiscard]] Coverage coverage(const ExploreStats& stats);
[[nodiscard]] std::string coverage_name(Coverage c);

struct ExploreReport {
  ExploreStats stats;
  /// The first counterexample found (unshrunk). Counterexamples are not
  /// persisted across save/resume: each invocation reports at most the
  /// first one it finds itself (stats.violations stays cumulative).
  /// In liveness mode an exhausted search may instead carry a lasso
  /// from the fair-cycle search (cex->loop non-empty).
  std::optional<Counterexample> cex;
  /// Liveness mode, tree exhausted, no safety violation pre-empted it:
  /// the fair-cycle search ran over the completed state graph. Its
  /// verdict is then cex (a lasso) or — when cex is empty — "no fair
  /// cycle", exact up to stats.graph_truncated horizon cuts.
  bool fair_cycle_checked = false;
  /// Non-empty: the fair-cycle search found a witness SCC but could not
  /// concretize its lasso by probing (a graph/scenario mismatch — an
  /// internal error, never a sound "no fair cycle"). Carries the
  /// structured diagnostic from find_fair_lasso; cex stays empty.
  std::string lasso_error;
  /// Identities of payload types observed in flight that still ship the
  /// conservative commutes_with default (empty kind()): the audit
  /// backlog of Dependence::kContent. Sorted for stable output.
  std::set<std::string> conservative_payloads;
  /// True when the search was seeded from SearchConfig::resume_path.
  bool resumed = false;
  /// Save/resume generations behind this search (0 = fresh start).
  std::uint64_t resume_generation = 0;
  /// Non-empty: resuming failed and nothing ran. resume_rejected
  /// distinguishes an incompatible snapshot (different scenario or
  /// search configuration — the caller's exit-2 case) from an
  /// unreadable or corrupt one.
  std::string resume_error;
  bool resume_rejected = false;
  /// Non-empty: the search ran but the final snapshot was not written.
  std::string save_error;
  /// The search was stopped by SearchConfig::cancel.
  bool cancelled = false;
};

class Explorer {
 public:
  /// `cfg` must already be valid (validate(cfg) empty); the scenario in
  /// `cfg.scenario` must describe the same construction `build` runs.
  /// The explorer consults it for soundness decisions, not just
  /// bookkeeping: ScenarioFactory::pattern_sensitive(cfg.scenario)
  /// gates the sparse fault-dependence relation and
  /// ScenarioFactory::symmetry_classes(cfg.scenario) defines the
  /// renaming group for --symmetry, so a mismatched scenario can prune
  /// real interleavings.
  Explorer(ScenarioBuilder build, SearchConfig cfg);

  /// Explore until a violation (when stop_at_first), the budget, or the
  /// whole tree is done. Re-entrant: each call restarts from scratch —
  /// or from SearchConfig::resume_path when set.
  ExploreReport run();

 private:
  ScenarioBuilder build_;
  SearchConfig cfg_;
};

}  // namespace wfd::explore
