// Persistent snapshots of an interrupted search — the lever that turns
// every budget-capped wfd_check verdict into an incrementally
// completable one.
//
// A snapshot is a versioned, line-oriented key=value text file (the
// ReplayFile conventions: unknown keys ignored, '#' comments) carrying
// everything the DFS needs to continue exactly where it stopped:
//
//  * the scenario-options header, validated on load so a snapshot can
//    never be resumed against a different scenario, plus the explorer
//    options the stored frontier is only sound under (reduction,
//    dependence relation, fingerprint pruning, order seed);
//  * the DPOR backtrack frontier: the DFS path frame by frame, each with
//    its full menu, the decision taken (the frames' `chosen` entries ARE
//    the decision-log prefix of every pending alternative) and its
//    sleep / explored / backtrack sets;
//  * the visited-fingerprint set (fingerprint -> earliest sim time), so
//    a resumed search prunes against everything previous invocations
//    saw — which is also why a resumed search that ends clean reports
//    coverage `modulo-fingerprints` at best, never `complete`: its own
//    fp_prunes count carries over;
//  * the cumulative ExploreStats and the conservative-payload audit
//    backlog.
//
// Resuming restores this state verbatim and continues the exploration
// loop, so a search split across k save/resume invocations visits the
// same states, in the same order, as one uninterrupted run (see
// DESIGN.md §9 for the equivalence argument and its limits). save uses
// temp-file + rename, so a run killed mid-write never leaves a torn
// snapshot behind; a truncated or tampered file fails to parse (count
// trailers + end marker, overflow-checked numerics).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "explore/explorer.h"
#include "explore/scenario.h"
#include "sim/choice.h"

namespace wfd::explore {

/// One DFS choice point of the stored frontier (the wire twin of the
/// explorer's internal Frame).
struct FrameState {
  sim::ChoiceKind kind = sim::ChoiceKind::kSchedule;
  std::uint32_t chosen = 0;
  std::uint32_t start = 0;
  bool blocked = false;
  std::vector<std::uint64_t> labels;
  std::vector<std::uint64_t> sleep;
  std::vector<std::uint64_t> explored;
  std::vector<std::uint64_t> backtrack;
};

struct StateSnapshot {
  /// Format version; parse rejects anything else. Bump on any change to
  /// the frame encoding or the fingerprint semantics — nothing below is
  /// sound to reuse across explorer algorithm changes.
  ///
  /// History: v1 was the original format. v2 (fault injection) added the
  /// crash_mode / loss_drops / loss_dups / fd_adversarial scenario
  /// header fields, let frame labels carry fault action bits 46-47
  /// (sim/scheduler.h), and added the injected_* stats counters — v1
  /// frontiers and fingerprints are not sound against any of these.
  static constexpr std::uint32_t kVersion = 2;
  std::uint32_t version = kVersion;

  ScenarioOptions scenario;
  Reduction reduction = Reduction::kDpor;
  Dependence dependence = Dependence::kContent;
  bool state_fingerprints = true;
  std::uint64_t order_seed = 0;

  /// How many save/resume invocations produced this snapshot (1 = saved
  /// by a fresh search).
  std::uint64_t resume_generation = 1;
  /// True when the current path has not been executed to completion
  /// (fresh root, or a run abandoned by cooperative cancel): resume
  /// re-executes it instead of backtracking past it.
  bool path_pending = false;

  ExploreStats stats;
  std::set<std::string> conservative_payloads;
  std::vector<FrameState> frames;
  /// fingerprint -> earliest sim time seen (sorted by fingerprint, so
  /// equal stores produce byte-identical files).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fingerprints;
};

/// Renders / parses the text format. parse returns nullopt (with a
/// diagnosis in *error when given) on malformed, truncated or
/// wrong-version input; `wrong_version`, when given, distinguishes a
/// well-formed snapshot of another format version (an incompatibility,
/// reported as resume_rejected) from a corrupt file (an I/O-level
/// failure).
std::string to_text(const StateSnapshot& s);
std::optional<StateSnapshot> parse_snapshot(const std::string& text,
                                            std::string* error = nullptr,
                                            bool* wrong_version = nullptr);

/// File wrappers. save writes to `path + ".tmp"` and renames into place,
/// so an interrupted save leaves the previous snapshot intact.
bool save_snapshot(const std::string& path, const StateSnapshot& s,
                   std::string* error = nullptr);
std::optional<StateSnapshot> load_snapshot(const std::string& path,
                                           std::string* error = nullptr,
                                           bool* wrong_version = nullptr);

/// Empty string when `snap` is sound to resume under the given scenario
/// and explorer options; otherwise a diagnosis naming the first
/// mismatched field. Every ScenarioOptions field participates, plus the
/// explorer options the frontier's sleep/backtrack sets depend on.
std::string resume_mismatch(const StateSnapshot& snap,
                            const ScenarioOptions& scenario,
                            const ExplorerOptions& opt);

}  // namespace wfd::explore
