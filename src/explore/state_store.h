// Persistent snapshots of an interrupted search — the lever that turns
// every budget-capped wfd_check verdict into an incrementally
// completable one, and the work-unit encoding of the wave-scheduled
// explorer (a unit's serialized form IS its frame stack plus floor).
//
// A snapshot is a versioned, line-oriented key=value text file (the
// ReplayFile conventions: unknown keys ignored, '#' comments) carrying
// everything the wave search needs to continue exactly where it
// stopped:
//
//  * the search header (explore/search_config.h): the scenario options
//    plus the reduction levers the stored frontier is only sound under
//    (reduction, dependence, fault_dependence, symmetry, fingerprint
//    pruning, order seed). Validated on load so a snapshot can never be
//    resumed against a different scenario or reduction configuration.
//    Execution-shape knobs (threads, budgets) are deliberately absent:
//    resuming with a different thread count or budget is legal and
//    changes nothing about what is explored.
//  * the unit queue: every pending unit's id, floor, path-pending flag
//    and frame stack — each frame with its full menu, the decision
//    taken (the frames' `chosen` entries ARE the decision-log prefix of
//    every pending alternative) and its sleep / explored / backtrack
//    sets. The per-node hash-chain keys are recomputed on load, never
//    stored.
//  * the node registry: for every choice point whose frontier was split
//    across units, its chain key and the ordered list of labels already
//    assigned to some unit — what keeps deferred DPOR insertions from
//    re-spawning work a previous invocation already scheduled.
//  * the visited-fingerprint set (fingerprint -> earliest sim time), so
//    a resumed search prunes against everything previous invocations
//    saw — which is also why a resumed search that ends clean reports
//    coverage `modulo-fingerprints` at best, never `complete`: its own
//    fp_prunes count carries over;
//  * the wave index and next unit id (the per-wave budget schedule and
//    unit numbering continue deterministically), the cumulative
//    ExploreStats and the conservative-payload audit backlog.
//
// Snapshots are only written at wave barriers (a cancelled wave is
// discarded wholesale), so restoring one and continuing visits the
// same states as one uninterrupted run (see DESIGN.md §12 for the
// equivalence argument). save uses temp-file + rename, so a run killed
// mid-write never leaves a torn snapshot behind; a truncated or
// tampered file fails to parse (count trailers + end marker,
// overflow-checked numerics).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "explore/explorer.h"
#include "explore/liveness.h"
#include "explore/scenario.h"
#include "explore/search_config.h"
#include "sim/choice.h"

namespace wfd::explore {

/// One DFS choice point of a stored unit (the wire twin of the
/// explorer's internal Frame).
struct FrameState {
  sim::ChoiceKind kind = sim::ChoiceKind::kSchedule;
  std::uint32_t chosen = 0;
  std::uint32_t start = 0;
  bool blocked = false;
  std::vector<std::uint64_t> labels;
  std::vector<std::uint64_t> sleep;
  std::vector<std::uint64_t> explored;
  std::vector<std::uint64_t> backtrack;
};

/// One pending work unit: frames[0, floor) are the fixed prefix the
/// unit never backtracks past; the rest is its private DFS frontier.
struct UnitState {
  std::uint64_t id = 0;
  std::uint64_t floor = 0;
  /// True when the unit's current path has not been executed to
  /// completion yet (a freshly spawned unit): resume re-executes it
  /// instead of backtracking past it.
  bool path_pending = true;
  std::vector<FrameState> frames;
};

/// One registry entry: a split choice point's chain key and the labels
/// already assigned to units, in assignment order (the order defines
/// the sleep-set asymmetry between sibling units).
struct NodeState {
  std::array<std::uint64_t, 2> key{};
  std::vector<std::uint64_t> assigned;
};

struct StateSnapshot {
  /// Format version; parse rejects anything else. Bump on any change to
  /// the frame encoding or the fingerprint semantics — nothing below is
  /// sound to reuse across explorer algorithm changes.
  ///
  /// History: v1 was the original format. v2 (fault injection) added the
  /// crash_mode / loss_drops / loss_dups / fd_adversarial scenario
  /// header fields, let frame labels carry fault action bits 46-47
  /// (sim/scheduler.h), and added the injected_* stats counters. v3
  /// (wave-scheduled search) replaced the single DFS path with the unit
  /// queue + node registry, added the fault_dependence / symmetry
  /// header levers and the wave / next_unit_id counters, and changed
  /// the state-encoding of process identities (renaming-aware digests)
  /// — v2 frontiers and fingerprints are not sound against any of
  /// these. v4 (liveness / fair-cycle search) added the liveness
  /// scenario header field, the state graph (groot= / gnode= / gedge=
  /// lines) and the liveness stats counters; a v3 frontier lacks the
  /// graph edges its fingerprint prunes relied on, so it cannot seed a
  /// liveness run. v5 (channel-granular fairness) widened gnode dl=
  /// bits from per-receiver to per-directed-channel (bit sender*8 +
  /// receiver) and added the s= sender field to gedge= lines; v4's
  /// receiver-granular bits and sender-less edges are unsound to reuse,
  /// so v4 graphs are refused like any other version mismatch.
  static constexpr std::uint32_t kVersion = 5;
  std::uint32_t version = kVersion;

  /// Only the search-header fields (scenario + reduction levers) are
  /// meaningful; everything else keeps its default.
  SearchConfig config;

  /// How many save/resume invocations produced this snapshot (1 = saved
  /// by a fresh search).
  std::uint64_t resume_generation = 1;
  /// Wave index the per-unit budget schedule continues from.
  std::uint64_t wave = 0;
  /// Next unit id to allocate (ids are never reused).
  std::uint64_t next_unit_id = 0;

  ExploreStats stats;
  std::set<std::string> conservative_payloads;
  /// Sorted by id (the queue order).
  std::vector<UnitState> units;
  /// Sorted by key (the registry's map order).
  std::vector<NodeState> nodes;
  /// fingerprint -> earliest sim time seen (sorted by fingerprint, so
  /// equal stores produce byte-identical files).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> fingerprints;
  /// Liveness mode only: the state graph recorded so far, in committed
  /// insertion order (stored and restored verbatim — the fair-cycle
  /// search is deterministic in that order). Empty otherwise.
  LiveGraph graph;
};

/// Renders / parses the text format. parse returns nullopt (with a
/// diagnosis in *error when given) on malformed, truncated or
/// wrong-version input; `wrong_version`, when given, distinguishes a
/// well-formed snapshot of another format version (an incompatibility,
/// reported as resume_rejected) from a corrupt file (an I/O-level
/// failure).
std::string to_text(const StateSnapshot& s);
std::optional<StateSnapshot> parse_snapshot(const std::string& text,
                                            std::string* error = nullptr,
                                            bool* wrong_version = nullptr);

/// File wrappers. save writes to `path + ".tmp"` and renames into place,
/// so an interrupted save leaves the previous snapshot intact.
bool save_snapshot(const std::string& path, const StateSnapshot& s,
                   std::string* error = nullptr);
std::optional<StateSnapshot> load_snapshot(const std::string& path,
                                           std::string* error = nullptr,
                                           bool* wrong_version = nullptr);

/// Empty string when `snap` is sound to resume under the given search
/// configuration; otherwise a diagnosis naming the first mismatched
/// field. The comparison diffs the rendered search headers line by
/// line, so every scenario field and every reduction lever participates
/// automatically — and only those (threads and budgets may differ
/// freely between invocations).
std::string resume_mismatch(const StateSnapshot& snap,
                            const SearchConfig& cfg);

}  // namespace wfd::explore
