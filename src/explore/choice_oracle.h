// A failure-detector oracle whose history is decided by a ChoiceSource.
//
// Randomized oracles (fd/omega_oracle.h etc.) draw ONE history from D(F)
// per seed; exploration needs to range over MANY histories, adversarially.
// ChoiceOracle exposes each query's allowed set — the values the detector
// class permits at (p, t) given the failure pattern — as an explicit
// choice point, so the explorer enumerates detector behaviour exactly like
// it enumerates schedules, and a replayed decision log pins the history.
//
// Legality: every finite run produced this way is a prefix of some
// history in D(F). Before `stabilization` the oracle offers the full
// per-query allowed set (Omega may point anywhere, Sigma may output any
// majority, FS may stay green after a crash, Psi may linger at bottom);
// from `stabilization` on it forces the canonical converged values, so
// the eventual-accuracy/completeness clauses are met inside the horizon.
// Bounded-depth safety checking may leave stabilization at kNever: any
// explored prefix still extends to a legal infinite history by letting
// convergence happen after the horizon.
//
// Sigma outputs are drawn from the minimal majorities (plus the
// converged correct-majority), which intersect pairwise by counting;
// exploring Sigma therefore requires a majority-correct pattern.
#pragma once

#include <string>
#include <vector>

#include "common/process_set.h"
#include "fd/oracle.h"
#include "fd/values.h"
#include "sim/choice.h"
#include "sim/failure_pattern.h"

namespace wfd::explore {

class ChoiceOracle : public fd::Oracle {
 public:
  struct Options {
    bool omega = false;
    bool sigma = false;
    bool fs = false;
    bool psi = false;
    /// true: every query is a fresh choice from the allowed set ("flap"
    /// mode — maximally adversarial). false: one history shape is chosen
    /// at begin_run and held constant ("static" mode — far smaller
    /// choice tree; leaders/quorums must then be correct from the start).
    bool per_query = true;
    /// First time at which outputs are forced to the canonical converged
    /// values. kNever = never force (bounded safety checking only).
    Time stabilization = kNever;
    /// Force Psi onto its (Omega, Sigma) branch at begin_run: every
    /// process is switched from time 0, so no per-query switch-timing
    /// choices remain and the whole history is a converged limit from
    /// the start. Liveness checking sets this (with per_query false):
    /// a graph cycle that keeps Psi at bottom forever would otherwise
    /// be a *legal-prefix* but illegal-limit history and produce
    /// spurious non-termination lassos for QC/NBAC.
    bool psi_converged = false;
    /// Track injected crashes: on_crash mutates the oracle's copy of the
    /// failure pattern and recomputes the canonical converged values, so
    /// failure-dependent menus (FS red, Ψ's FS branch) see crashes the
    /// explorer injects mid-run. In static mode it also re-picks
    /// static_omega_ / static_sigma_ from the survivors when a crash
    /// invalidates them (a recorded kFd choice), so static histories
    /// anticipate explored crash points and stay converged for the
    /// final correct set — the soundness basis of composing --liveness
    /// with --crash=explore. Requires stabilization == kNever when
    /// crashes can arrive after a forced convergence point.
    bool live_pattern = false;
  };

  /// `choices` is borrowed and must outlive the oracle.
  ChoiceOracle(sim::ChoiceSource* choices, Options opt);

  void begin_run(const sim::FailurePattern& f, std::uint64_t seed,
                 Time horizon) override;
  fd::FdValue query(ProcessId p, Time t) override;
  void on_crash(ProcessId p, Time t) override;
  [[nodiscard]] std::string name() const override { return "choice"; }
  void encode_state(sim::StateEncoder& enc, Time now) const override;

 private:
  [[nodiscard]] std::size_t pick(const std::vector<std::uint64_t>& labels);
  ProcessId omega_value(Time t);
  ProcessSet sigma_value(Time t);
  fd::FsColor fs_value(std::vector<bool>& red_latch, ProcessId p, Time t);
  fd::PsiValue psi_value(ProcessId p, Time t);

  sim::ChoiceSource* choices_;
  Options opt_;
  int n_ = 0;
  sim::FailurePattern f_{1};

  /// All minimal majorities of {0..n-1}, in increasing mask order.
  std::vector<ProcessSet> majorities_;
  std::vector<std::uint64_t> majority_labels_;

  // Canonical converged values (used from `stabilization` on).
  ProcessId omega_star_ = kNoProcess;  ///< Smallest correct process.
  ProcessSet sigma_star_;              ///< A majority of correct processes.

  // Static-mode history, fixed at begin_run; re-picked at an explored
  // crash that invalidates it (live_pattern).
  ProcessId static_omega_ = kNoProcess;
  ProcessSet static_sigma_;

  std::vector<bool> fs_red_;      ///< FS component: red is a latch.
  std::vector<bool> psi_fs_red_;  ///< Psi's FS branch keeps its own latch.

  enum class PsiBranch { kUndecided, kOmegaSigma, kFs };
  PsiBranch psi_branch_ = PsiBranch::kUndecided;
  std::vector<bool> psi_switched_;
};

}  // namespace wfd::explore
