#include "explore/option_text.h"

#include <limits>

namespace wfd::explore::detail {

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const auto d = static_cast<std::uint64_t>(c - '0');
    // v * 10 + d must fit: a corrupted field that wraps would parse as a
    // different valid value and replay the wrong schedule.
    if (v > (kMax - d) / 10) return false;
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

bool parse_int(const std::string& s, int* out) {
  std::uint64_t v = 0;
  const bool neg = !s.empty() && s[0] == '-';
  if (!parse_u64(neg ? s.substr(1) : s, &v)) return false;
  // Range-check before casting: -static_cast<int>(v) on v > INT_MAX is
  // signed overflow (UB), and out-of-range values are corrupt anyway.
  constexpr auto kIntMax =
      static_cast<std::uint64_t>(std::numeric_limits<int>::max());
  if (neg) {
    if (v > kIntMax + 1) return false;
    *out = static_cast<int>(-static_cast<std::int64_t>(v));
  } else {
    if (v > kIntMax) return false;
    *out = static_cast<int>(v);
  }
  return true;
}

bool parse_bool(const std::string& s, bool* out) {
  if (s != "0" && s != "1") return false;
  *out = (s == "1");
  return true;
}

bool parse_time(const std::string& s, Time* out) {
  if (s == "never") {
    *out = kNever;
    return true;
  }
  return parse_u64(s, out);
}

std::string time_to_text(Time t) {
  return t == kNever ? "never" : std::to_string(t);
}

void scenario_to_text(std::ostream& out, const ScenarioOptions& o) {
  out << "problem=" << o.problem << "\n";
  out << "n=" << o.n << "\n";
  out << "crashes=" << o.crashes << "\n";
  out << "crash_time=" << time_to_text(o.crash_time) << "\n";
  out << "crash_mode=" << o.crash_mode << "\n";
  out << "loss_drops=" << o.loss_drops << "\n";
  out << "loss_dups=" << o.loss_dups << "\n";
  out << "fd_adversarial=" << (o.fd_adversarial ? 1 : 0) << "\n";
  out << "max_steps=" << o.max_steps << "\n";
  out << "seed=" << o.seed << "\n";
  out << "stabilization=" << time_to_text(o.stabilization) << "\n";
  out << "fd_per_query=" << (o.fd_per_query ? 1 : 0) << "\n";
  out << "record_fd_samples=" << (o.record_fd_samples ? 1 : 0) << "\n";
  out << "nbac_no_voter=" << o.nbac_no_voter << "\n";
  out << "reg_ops=" << o.reg_ops << "\n";
  out << "reg_readers=" << o.reg_readers << "\n";
  out << "abcast_senders=" << o.abcast_senders << "\n";
  out << "oldest_per_channel=" << (o.oldest_per_channel ? 1 : 0) << "\n";
  out << "lambda_always=" << (o.lambda_always ? 1 : 0) << "\n";
  out << "liveness=" << o.liveness << "\n";
}

bool scenario_apply(ScenarioOptions& o, const std::string& key,
                    const std::string& val, bool* ok) {
  *ok = true;
  if (key == "problem") {
    o.problem = val;
  } else if (key == "n") {
    *ok = parse_int(val, &o.n);
  } else if (key == "crashes") {
    *ok = parse_int(val, &o.crashes);
  } else if (key == "crash_time") {
    *ok = parse_time(val, &o.crash_time);
  } else if (key == "crash_mode") {
    *ok = (val == "script" || val == "explore");
    if (*ok) o.crash_mode = val;
  } else if (key == "loss_drops") {
    *ok = parse_int(val, &o.loss_drops);
  } else if (key == "loss_dups") {
    *ok = parse_int(val, &o.loss_dups);
  } else if (key == "fd_adversarial") {
    *ok = parse_bool(val, &o.fd_adversarial);
  } else if (key == "max_steps") {
    *ok = parse_time(val, &o.max_steps);
  } else if (key == "seed") {
    *ok = parse_u64(val, &o.seed);
  } else if (key == "stabilization") {
    *ok = parse_time(val, &o.stabilization);
  } else if (key == "fd_per_query") {
    *ok = parse_bool(val, &o.fd_per_query);
  } else if (key == "record_fd_samples") {
    *ok = parse_bool(val, &o.record_fd_samples);
  } else if (key == "nbac_no_voter") {
    *ok = parse_int(val, &o.nbac_no_voter);
  } else if (key == "reg_ops") {
    *ok = parse_int(val, &o.reg_ops);
  } else if (key == "reg_readers") {
    *ok = parse_int(val, &o.reg_readers);
  } else if (key == "abcast_senders") {
    *ok = parse_int(val, &o.abcast_senders);
  } else if (key == "oldest_per_channel") {
    *ok = parse_bool(val, &o.oldest_per_channel);
  } else if (key == "lambda_always") {
    *ok = parse_bool(val, &o.lambda_always);
  } else if (key == "liveness") {
    o.liveness = val;  // Clause-name validity is ScenarioFactory::validate's.
  } else {
    return false;
  }
  return true;
}

std::string escape_line(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool unescape_line(const std::string& s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      *out += s[i];
      continue;
    }
    if (++i == s.size()) return false;
    switch (s[i]) {
      case '\\':
        *out += '\\';
        break;
      case 'n':
        *out += '\n';
        break;
      case 'r':
        *out += '\r';
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace wfd::explore::detail
