// Consensus from a Strong failure detector S (Chandra-Toueg [4],
// Section 6.1 there) — correct in ANY environment, i.e. with any number
// of crashes. This is the classical pre-(Omega, Sigma) route the paper's
// related work builds on; it needs perpetual weak accuracy, which is a
// far stronger assumption than (Omega, Sigma).
//
// The algorithm has three phases:
//   Phase 1: n-1 asynchronous rounds. In each round every process
//     broadcasts the set of proposals it knows and waits, for every peer
//     q, until it has q's round-r message or suspects q. Relaying for
//     n-1 rounds guarantees that the value sets of all processes that
//     finish phase 1 agree "up to" processes that crashed mid-relay —
//     with the never-suspected process acting as a synchroniser.
//   Phase 2: everyone broadcasts its final set and intersects the sets
//     it manages to collect (again modulo suspicion); the intersections
//     coincide at all processes.
//   Phase 3: decide a deterministic element (the minimum) of the
//     intersection.
//
// Uses FdValue::suspected; run it under StrongOracle or PerfectOracle
// (P is a subclass of S). Under a merely eventually-accurate class
// (<>S), early false suspicions void the relay guarantee — the classic
// boundary the paper's Section 1 recalls.
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/check.h"
#include "consensus/consensus_api.h"
#include "sim/module.h"
#include "sim/payload.h"

namespace wfd::consensus {

template <typename V>
class StrongConsensusModule : public sim::Module, public ConsensusApi<V> {
 public:
  using typename ConsensusApi<V>::DecideCb;

  void propose(const V& value, DecideCb cb) override {
    WFD_CHECK_MSG(!proposed_, "propose called twice");
    proposed_ = true;
    cb_ = std::move(cb);
    values_.insert(value);
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] const V& decision() const override {
    WFD_CHECK(decided_);
    return decision_;
  }
  [[nodiscard]] bool done() const override { return !proposed_ || decided_; }

  void on_message(ProcessId from, const sim::Payload& msg) override {
    ensure_init();  // Messages can precede the first tick (replay).
    if (const auto* m = sim::payload_cast<RoundMsg>(msg)) {
      // Stale or early round messages still contribute values.
      for (const V& v : m->values) values_.insert(v);
      if (m->round < round_flags_.size()) {
        round_flags_[m->round].insert(from);
      }
      return;
    }
    if (const auto* m = sim::payload_cast<SetMsg>(msg)) {
      if (!phase2_sets_[static_cast<std::size_t>(from)].has_value()) {
        phase2_sets_[static_cast<std::size_t>(from)] = m->values;
      }
      return;
    }
  }

  void on_tick() override {
    if (!proposed_ || decided_) return;
    ensure_init();
    const auto v = detector();
    if (!v.suspected.has_value()) return;
    const ProcessSet suspected = *v.suspected;

    if (round_ < static_cast<std::size_t>(n())) {
      // Phase 1, round round_.
      if (!round_sent_) {
        round_sent_ = true;
        broadcast(sim::make_payload<RoundMsg>(
                      static_cast<std::uint32_t>(round_),
                      std::vector<V>(values_.begin(), values_.end())),
                  /*include_self=*/false);
      }
      for (ProcessId q = 0; q < n(); ++q) {
        if (q == self()) continue;
        if (round_flags_[round_].count(q) == 0 && !suspected.contains(q)) {
          return;  // Still waiting on q.
        }
      }
      ++round_;
      round_sent_ = false;
      return;
    }

    // Phase 2.
    if (!phase2_sent_) {
      phase2_sent_ = true;
      phase2_sets_[static_cast<std::size_t>(self())] =
          std::vector<V>(values_.begin(), values_.end());
      broadcast(sim::make_payload<SetMsg>(
                    std::vector<V>(values_.begin(), values_.end())),
                /*include_self=*/false);
    }
    for (ProcessId q = 0; q < n(); ++q) {
      if (q == self()) continue;
      if (!phase2_sets_[static_cast<std::size_t>(q)].has_value() &&
          !suspected.contains(q)) {
        return;
      }
    }
    // Phase 3: intersect the collected sets; decide the minimum.
    std::set<V> inter = values_;
    for (ProcessId q = 0; q < n(); ++q) {
      const auto& sq = phase2_sets_[static_cast<std::size_t>(q)];
      if (!sq.has_value()) continue;
      std::set<V> next;
      for (const V& x : *sq) {
        if (inter.count(x) != 0) next.insert(x);
      }
      inter = std::move(next);
    }
    WFD_CHECK_MSG(!inter.empty(), "phase-2 intersection is empty");
    decided_ = true;
    decision_ = *inter.begin();
    emit("decide", decide_event_value(decision_));
    if (cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(decision_);
    }
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("proposed", proposed_);
    enc.field("initialized", initialized_);
    sim::encode_field(enc, "values", values_);
    enc.field("round", round_);
    enc.field("round-sent", round_sent_);
    sim::encode_field(enc, "round-flags", round_flags_);
    enc.field("phase2-sent", phase2_sent_);
    sim::encode_field(enc, "phase2-sets", phase2_sets_);
    enc.field("decided", decided_);
    sim::encode_field(enc, "decision", decision_);
  }

 private:
  // Audited non-commuting: the round/decision waits are suspicion-gated
  // ("heard from p or p is suspected"), so a single delivery of a pair
  // can unblock a tick-side transition whose merged value set depends on
  // which message arrived first.
  struct RoundMsg final : sim::Payload {
    RoundMsg(std::uint32_t r, std::vector<V> v)
        : round(r), values(std::move(v)) {}
    std::uint32_t round;
    std::vector<V> values;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "round");
      enc.field("round", round);
      sim::encode_field(enc, "values", values);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "scons.round";
    }
  };
  // Audited non-commuting, same gating as RoundMsg.
  struct SetMsg final : sim::Payload {
    explicit SetMsg(std::vector<V> v) : values(std::move(v)) {}
    std::vector<V> values;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "set");
      sim::encode_field(enc, "values", values);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "scons.set";
    }
  };

  void ensure_init() {
    if (initialized_) return;
    initialized_ = true;
    // Rounds are 1..n-1; index 0 is unused.
    round_flags_.assign(static_cast<std::size_t>(n()), {});
    phase2_sets_.assign(static_cast<std::size_t>(n()), std::nullopt);
    round_ = 1;
  }

  bool proposed_ = false;
  bool initialized_ = false;
  DecideCb cb_;
  std::set<V> values_;
  std::size_t round_ = 1;
  bool round_sent_ = false;
  std::vector<std::set<ProcessId>> round_flags_;
  bool phase2_sent_ = false;
  std::vector<std::optional<std::vector<V>>> phase2_sets_;
  bool decided_ = false;
  V decision_{};
};

}  // namespace wfd::consensus
