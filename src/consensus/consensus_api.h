// Common interface of all consensus implementations in the library
// (message-passing (Omega, Sigma) consensus and register-based
// consensus), so higher layers — quittable consensus, NBAC, the
// replicated state machine — can stack on either.
#pragma once

#include <functional>

namespace wfd::consensus {

template <typename V>
class ConsensusApi {
 public:
  using DecideCb = std::function<void(const V&)>;

  virtual ~ConsensusApi() = default;

  /// Propose a value; cb runs (within a later step of the host process)
  /// when this process decides. Each process proposes at most once.
  virtual void propose(const V& value, DecideCb cb) = 0;

  [[nodiscard]] virtual bool decided() const = 0;

  /// Valid only when decided().
  [[nodiscard]] virtual const V& decision() const = 0;
};

}  // namespace wfd::consensus
