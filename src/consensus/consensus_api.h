// Common interface of all consensus implementations in the library
// (message-passing (Omega, Sigma) consensus and register-based
// consensus), so higher layers — quittable consensus, NBAC, the
// replicated state machine — can stack on either.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>

namespace wfd::consensus {

/// The value recorded with a "decide" trace event: the decision itself
/// when the value type converts to an integer (so trace-level checkers —
/// explore::AgreementInvariant and friends — can compare decisions
/// without poking at module internals), 0 otherwise.
template <typename V>
[[nodiscard]] std::int64_t decide_event_value(const V& v) {
  if constexpr (std::is_convertible_v<V, std::int64_t>) {
    return static_cast<std::int64_t>(v);
  } else {
    (void)v;
    return 0;
  }
}

template <typename V>
class ConsensusApi {
 public:
  using DecideCb = std::function<void(const V&)>;

  virtual ~ConsensusApi() = default;

  /// Propose a value; cb runs (within a later step of the host process)
  /// when this process decides. Each process proposes at most once.
  virtual void propose(const V& value, DecideCb cb) = 0;

  [[nodiscard]] virtual bool decided() const = 0;

  /// Valid only when decided().
  [[nodiscard]] virtual const V& decision() const = 0;
};

}  // namespace wfd::consensus
