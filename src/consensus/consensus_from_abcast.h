// Consensus from atomic broadcast — the trivial direction of the
// Chandra-Toueg equivalence [4]: abcast your proposal and decide the
// value of the FIRST message in the total order. Uniform agreement is
// the total-order property; validity holds because only proposals are
// broadcast; termination follows from abcast's liveness.
#pragma once

#include <cstdint>

#include "broadcast/atomic_broadcast.h"
#include "common/check.h"
#include "consensus/consensus_api.h"
#include "sim/module.h"

namespace wfd::consensus {

class ConsensusFromAbcastModule : public sim::Module,
                                  public ConsensusApi<std::int64_t> {
 public:
  using DecideCb = ConsensusApi<std::int64_t>::DecideCb;

  void propose(const std::int64_t& value, DecideCb cb) override {
    WFD_CHECK_MSG(!proposed_, "propose called twice");
    proposed_ = true;
    cb_ = std::move(cb);
    ensure_abcast().abcast(value);
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] const std::int64_t& decision() const override {
    WFD_CHECK(decided_);
    return decision_;
  }
  [[nodiscard]] bool done() const override { return !proposed_ || decided_; }

  void on_start() override { ensure_abcast(); }
  void on_message(ProcessId, const sim::Payload&) override {}

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("has-abcast", ab_ != nullptr);
    enc.field("proposed", proposed_);
    enc.field("decided", decided_);
    enc.field("decision", decision_);
  }

 private:
  broadcast::AtomicBroadcastModule& ensure_abcast() {
    if (ab_ == nullptr) {
      ab_ = &host().add_module<broadcast::AtomicBroadcastModule>(
          name() + "/ab");
      ab_->set_deliver([this](const broadcast::AppMessage& m) {
        if (decided_) return;
        decided_ = true;
        decision_ = m.body;
        emit("decide", decide_event_value(decision_));
        if (cb_) {
          auto cb = std::move(cb_);
          cb_ = nullptr;
          cb(decision_);
        }
      });
    }
    return *ab_;
  }

  broadcast::AtomicBroadcastModule* ab_ = nullptr;
  bool proposed_ = false;
  DecideCb cb_;
  bool decided_ = false;
  std::int64_t decision_ = 0;
};

}  // namespace wfd::consensus
