// Consensus from atomic registers plus Omega (Lo-Hadzilacos [19]) —
// the construction behind Corollary 2: implement registers out of Sigma
// (Theorem 1), then consensus out of registers and Omega.
//
// The shared-memory protocol is single-decree Disk-Paxos-style
// (one single-writer "ballot block" register per process):
//
//   leader p, owned round r:
//     phase 1: write own block with mbal = r; read all n blocks;
//              abort if any block joined a round > r; otherwise adopt the
//              value of the highest-ballot accepted block (or p's own
//              proposal if none);
//     phase 2: write own block with bal = r and the adopted value;
//              read all n blocks again; abort if any block joined a
//              round > r; otherwise the value is decided.
//
// Leadership is gated by Omega, and an aborted/stalled attempt retries
// with a higher owned round, so after Omega stabilises a single correct
// leader drives an attempt that no one disturbs, and it terminates.
// Deciders announce the decision with one broadcast.
//
// The registers themselves are the library's ABD modules, so the full
// stack exercised here is: Sigma -> atomic registers -> (+ Omega)
// consensus, in any environment.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.h"
#include "consensus/consensus_api.h"
#include "reg/abd_register.h"
#include "sim/module.h"

namespace wfd::consensus {

/// Contents of one process's ballot-block register.
template <typename V>
struct BallotBlock {
  std::uint64_t mbal = 0;  ///< Highest round the owner has joined.
  std::uint64_t bal = 0;   ///< Round of the accepted value.
  std::optional<V> val;    ///< Accepted value, if any.
  std::optional<V> decided;

  void encode_state(sim::StateEncoder& enc) const {
    enc.field("mbal", mbal);
    enc.field("bal", bal);
    sim::encode_field(enc, "val", val);
    sim::encode_field(enc, "decided", decided);
  }
};

template <typename V>
class RegisterConsensusModule : public sim::Module, public ConsensusApi<V> {
 public:
  using typename ConsensusApi<V>::DecideCb;
  using Register = reg::AbdRegisterModule<BallotBlock<V>>;

  struct Options {
    /// Own-step stall threshold before a leader retries; 0 = 64 * n
    /// (register operations take several message delays each).
    Time retry_interval = 0;
  };

  explicit RegisterConsensusModule(std::vector<Register*> registers)
      : RegisterConsensusModule(std::move(registers), Options{}) {}

  RegisterConsensusModule(std::vector<Register*> registers, Options opt)
      : opt_(opt), regs_(std::move(registers)) {
    WFD_CHECK(!regs_.empty());
    for (auto* r : regs_) WFD_CHECK(r != nullptr);
  }

  void propose(const V& value, DecideCb cb) override {
    WFD_CHECK_MSG(!proposed_, "propose called twice");
    proposed_ = true;
    proposal_ = value;
    if (decided_) {
      // A Decide broadcast may have arrived before the local propose.
      if (cb) cb(decision_);
      return;
    }
    cb_ = std::move(cb);
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] const V& decision() const override {
    WFD_CHECK(decided_);
    return decision_;
  }
  [[nodiscard]] bool done() const override { return !proposed_ || decided_; }

  [[nodiscard]] std::uint64_t rounds_started() const { return rounds_; }

  void on_message(ProcessId, const sim::Payload& msg) override {
    if (const auto* m = sim::payload_cast<DecideMsg>(msg)) {
      decide(m->value);
    }
  }

  void on_tick() override {
    if (!proposed_ || decided_ || in_flight_) return;
    WFD_CHECK_MSG(static_cast<int>(regs_.size()) == n(),
                  "one ballot-block register per process required");
    const auto v = detector();
    if (!v.omega.has_value() || *v.omega != self()) {
      stall_ = 0;
      return;
    }
    if (attempt_active_) {
      const Time retry = opt_.retry_interval != 0
                             ? opt_.retry_interval
                             : static_cast<Time>(64 * n());
      if (++stall_ >= retry) attempt_active_ = false;
      return;
    }
    start_attempt();
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("proposed", proposed_);
    sim::encode_field(enc, "proposal", proposal_);
    sim::encode_field(enc, "block", block_);
    enc.field("attempt-active", attempt_active_);
    enc.field("in-flight", in_flight_);
    enc.field("attempt", attempt_);
    enc.field("round", round_);
    enc.field("max-seen", max_seen_);
    enc.field("stall", stall_);
    enc.field("best-bal", best_bal_);
    sim::encode_field(enc, "best-val", best_val_);
    sim::encode_field(enc, "chosen", chosen_);
    enc.field("decided", decided_);
    sim::encode_field(enc, "decision", decision_);
  }

 private:
  // Like OmegaSigmaConsensus's Decide: decide() is an idempotent latch
  // that ignores the sender, so equal-value decisions commute.
  struct DecideMsg final : sim::Payload {
    explicit DecideMsg(V v) : value(std::move(v)) {}
    V value;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "decide");
      sim::encode_field(enc, "value", value);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "regcons.decide";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      const auto* o = sim::payload_cast<DecideMsg>(other);
      if (o == nullptr) return false;
      if constexpr (std::equality_comparable<V>) {
        return value == o->value;
      } else {
        return false;
      }
    }
  };

  [[nodiscard]] std::uint64_t next_own_round(std::uint64_t after) const {
    const std::uint64_t nn = static_cast<std::uint64_t>(n());
    return (after / nn + 1) * nn + static_cast<std::uint64_t>(self());
  }

  Register& own_reg() { return *regs_[static_cast<std::size_t>(self())]; }

  void start_attempt() {
    round_ = next_own_round(std::max(round_, max_seen_));
    max_seen_ = round_;
    ++rounds_;
    ++attempt_;
    attempt_active_ = true;
    stall_ = 0;
    const std::uint64_t a = attempt_;

    // Phase 1 write: join round `round_` on our own block.
    block_.mbal = round_;
    in_flight_ = true;
    own_reg().write(block_, [this, a] {
      in_flight_ = false;
      if (a != attempt_ || decided_) return;
      best_bal_ = 0;
      best_val_.reset();
      read_chain(a, /*reg_index=*/0, /*phase=*/1);
    });
  }

  /// Sequentially read blocks reg_index..n-1; then finish the phase.
  void read_chain(std::uint64_t a, int reg_index, int phase) {
    if (a != attempt_ || decided_) return;
    if (reg_index >= n()) {
      if (phase == 1) {
        finish_phase1(a);
      } else {
        finish_phase2(a);
      }
      return;
    }
    in_flight_ = true;
    regs_[static_cast<std::size_t>(reg_index)]->read(
        [this, a, reg_index, phase](const BallotBlock<V>& b) {
          in_flight_ = false;
          if (a != attempt_ || decided_) return;
          if (b.decided.has_value()) {
            // Someone already decided; adopt and announce.
            broadcast(sim::make_payload<DecideMsg>(*b.decided));
            decide(*b.decided);
            return;
          }
          if (b.mbal > round_) {
            max_seen_ = std::max(max_seen_, b.mbal);
            attempt_active_ = false;  // Lost the round; retry higher.
            return;
          }
          if (b.val.has_value() && b.bal > best_bal_) {
            best_bal_ = b.bal;
            best_val_ = b.val;
          }
          read_chain(a, reg_index + 1, phase);
        });
  }

  void finish_phase1(std::uint64_t a) {
    // Adopt the highest accepted value seen, or our own proposal.
    chosen_ = best_val_.has_value() ? *best_val_ : proposal_;
    block_.mbal = round_;
    block_.bal = round_;
    block_.val = chosen_;
    in_flight_ = true;
    own_reg().write(block_, [this, a] {
      in_flight_ = false;
      if (a != attempt_ || decided_) return;
      best_bal_ = 0;
      best_val_.reset();
      read_chain(a, 0, /*phase=*/2);
    });
  }

  void finish_phase2(std::uint64_t a) {
    // No higher round interfered between our two scans: decided.
    block_.decided = chosen_;
    in_flight_ = true;
    own_reg().write(block_, [this, a] {
      in_flight_ = false;
      if (a != attempt_) return;
      broadcast(sim::make_payload<DecideMsg>(chosen_));
      decide(chosen_);
    });
  }

  void decide(const V& v) {
    if (decided_) return;
    decided_ = true;
    decision_ = v;
    attempt_active_ = false;
    emit("decide", decide_event_value(decision_));
    if (cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(decision_);
    }
  }

  Options opt_;
  std::vector<Register*> regs_;

  bool proposed_ = false;
  V proposal_{};
  DecideCb cb_;

  BallotBlock<V> block_;  ///< Our own block's latest written contents.
  bool attempt_active_ = false;
  bool in_flight_ = false;
  std::uint64_t attempt_ = 0;
  std::uint64_t round_ = 0;
  std::uint64_t max_seen_ = 0;
  Time stall_ = 0;
  std::uint64_t best_bal_ = 0;
  std::optional<V> best_val_;
  V chosen_{};
  std::uint64_t rounds_ = 0;

  bool decided_ = false;
  V decision_{};
};

}  // namespace wfd::consensus
