// Consensus from (Omega, Sigma) in any environment (Corollary 2).
//
// A Paxos-style single-decree protocol in which every "wait for a
// majority" is replaced by "wait until the replier set contains a quorum
// output by Sigma", and leadership is gated by Omega:
//
//  - Safety needs only the intersection property of Sigma: the quorum
//    that accepts a value in round r intersects the quorum probed by any
//    higher round's prepare, so a decided value is locked — in ANY
//    environment, under ANY asynchrony.
//  - Liveness needs Omega's eventual leadership plus Sigma's
//    completeness: eventually a single correct leader retries unopposed
//    and its quorums consist of correct processes, so its round closes.
//
// Rounds are partitioned across processes (round r belongs to process
// r mod n); a leader only starts rounds it owns, and retries with a
// higher owned round when an attempt stalls.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>

#include "common/check.h"
#include "common/process_set.h"
#include "consensus/consensus_api.h"
#include "sim/module.h"
#include "sim/payload.h"

namespace wfd::consensus {

/// Where the protocol's quorums come from.
enum class ConsensusQuorumRule {
  kSigma,     ///< Quorums from the Sigma component (any environment).
  kMajority,  ///< Strict majorities — the classical Chandra-Toueg [4]
              ///< setting: live only when a majority is correct, which is
              ///< exactly why Omega alone is weakest only there.
};

/// Rounds are round-robin owned (round = cycle*n + owner with cycle >= 1;
/// 0 is the "no round yet" sentinel). Fingerprints fold them as
/// (cycle, renamed owner) rather than the raw number, so a symmetry
/// renaming maps a run's round numbers exactly the way the renamed
/// execution would have numbered them (sim/state_encoder.h).
inline void encode_round(sim::StateEncoder& enc, std::string_view tag,
                         std::uint64_t round, int n) {
  enc.push(tag);
  if (round == 0 || n <= 0) {
    enc.field("none", true);
  } else {
    enc.field("cycle", round / static_cast<std::uint64_t>(n));
    enc.pid_field(
        "owner", static_cast<ProcessId>(round % static_cast<std::uint64_t>(n)));
  }
  enc.pop();
}

template <typename V>
class OmegaSigmaConsensusModule : public sim::Module, public ConsensusApi<V> {
 public:
  struct Options {
    /// Own-step stall threshold before a leader retries with a higher
    /// round; 0 = 16 * n.
    Time retry_interval = 0;
    ConsensusQuorumRule quorum_rule = ConsensusQuorumRule::kSigma;
    /// Seeded liveness bug (explore/seeded_bug.h): once this process has
    /// started a round and lost it — Nacked by a higher promise, or
    /// stalled past retry_interval — it never starts another. Safety is
    /// untouched (every decided value is still quorum-locked); what
    /// breaks is the retry obligation Omega's eventual leadership is
    /// useless without. Off in every real configuration.
    bool give_up_when_opposed = false;
    /// Seeded liveness bug (explore/seeded_bug.h): a would-be leader
    /// that has promised a round owned by another process defers to
    /// that owner forever instead of preempting it with a higher round
    /// of its own. Harmless while the owner is alive (it retries or
    /// decides), fatal when the owner crashed mid-round: the surviving
    /// new leader waits on a dead process and never starts a round, so
    /// nobody ever decides. Safety is untouched. Off in every real
    /// configuration.
    bool defer_to_promised_owner = false;
  };

  using typename ConsensusApi<V>::DecideCb;

  OmegaSigmaConsensusModule() : OmegaSigmaConsensusModule(Options{}) {}
  explicit OmegaSigmaConsensusModule(Options opt) : opt_(opt) {}

  void propose(const V& value, DecideCb cb) override {
    WFD_CHECK_MSG(!proposed_, "propose called twice");
    proposed_ = true;
    proposal_ = value;
    if (decided_) {
      // The decision can precede the local propose: a Decide broadcast
      // may have been replayed when this module instance was created.
      if (cb) cb(decision_);
      return;
    }
    cb_ = std::move(cb);
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] const V& decision() const override {
    WFD_CHECK(decided_);
    return decision_;
  }

  [[nodiscard]] bool done() const override { return !proposed_ || decided_; }

  /// Leader rounds started by this process (protocol cost metric).
  [[nodiscard]] std::uint64_t rounds_started() const { return rounds_; }

  /// True while this process is driving a round it has not yet abandoned
  /// (Omega points here and no Nack/stall has cleared it). Feeds the
  /// "leadership" liveness clause: eventually some alive process leads.
  [[nodiscard]] bool is_leading() const { return leading_; }

  void on_message(ProcessId from, const sim::Payload& msg) override {
    if (decided_) {
      // Late joiners and retrying leaders learn the decision directly.
      if (sim::payload_cast<Prepare>(msg) != nullptr ||
          sim::payload_cast<Accept>(msg) != nullptr) {
        send(from, sim::make_payload<Decide>(decision_));
      }
      return;
    }
    if (const auto* m = sim::payload_cast<Prepare>(msg)) {
      if (m->round > promised_) {
        promised_ = m->round;
        send(from, sim::make_payload<Promise>(m->round, accepted_round_,
                                              accepted_val_, n()));
      } else {
        send(from, sim::make_payload<Nack>(m->round, promised_, n()));
      }
      return;
    }
    if (const auto* m = sim::payload_cast<Promise>(msg)) {
      if (!leading_ || m->round != round_ || phase_ != 1) return;
      repliers_.insert(from);
      if (m->accepted_val.has_value() && m->accepted_round > best_round_) {
        best_round_ = m->accepted_round;
        best_val_ = m->accepted_val;
      }
      maybe_advance();
      return;
    }
    if (const auto* m = sim::payload_cast<Accept>(msg)) {
      if (m->round >= promised_) {
        promised_ = m->round;
        accepted_round_ = m->round;
        accepted_val_ = m->value;
        send(from, sim::make_payload<Accepted>(m->round, n()));
      } else {
        send(from, sim::make_payload<Nack>(m->round, promised_, n()));
      }
      return;
    }
    if (const auto* m = sim::payload_cast<Accepted>(msg)) {
      if (!leading_ || m->round != round_ || phase_ != 2) return;
      repliers_.insert(from);
      maybe_advance();
      return;
    }
    if (const auto* m = sim::payload_cast<Nack>(msg)) {
      if (leading_ && m->round == round_) {
        // Our round lost; remember the competing round and retry later.
        max_seen_ = std::max(max_seen_, m->promised);
        leading_ = false;
      }
      return;
    }
    if (const auto* m = sim::payload_cast<Decide>(msg)) {
      decide(m->value);
      return;
    }
  }

  void on_tick() override {
    if (!proposed_ || decided_) return;
    const auto v = detector();
    if (!v.omega.has_value()) return;
    const bool is_leader = (*v.omega == self());
    if (!is_leader) {
      stall_ = 0;
      return;
    }
    if (leading_) {
      maybe_advance();  // A fresh Sigma sample may complete the phase.
      const Time retry =
          opt_.retry_interval != 0 ? opt_.retry_interval
                                   : static_cast<Time>(16 * n());
      if (++stall_ >= retry) {
        leading_ = false;  // Stalled: give up this round, start a new one.
      }
      return;
    }
    // Seeded liveness bug: a once-burned leader stops retrying, leaving
    // the system in a quiescent undecided state — a fair cycle of no-op
    // steps that fair-cycle search must expose as a lasso.
    if (opt_.give_up_when_opposed && rounds_ > 0) return;
    // Seeded liveness bug: defer forever to the promised round's owner.
    // A leader's own Prepare (broadcast includes self) makes promised_
    // its own round, so a stable leader still retries; the wedge needs
    // the promised owner to crash after its Prepare reached us.
    if (opt_.defer_to_promised_owner && promised_ != 0 &&
        promised_ % static_cast<Round>(n()) !=
            static_cast<Round>(self())) {
      return;
    }
    start_round();
  }

  void on_start() override { enc_n_ = n(); }

  // Uses the process count cached at on_start: the encoder runs outside
  // any step, where the host environment (n()) is unreachable. Before
  // on_start every round member is still 0, which encode_round renders
  // as "none" for any n — so the pre-start encoding is renaming-stable
  // even while the cache still holds 0.
  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("proposed", proposed_);
    sim::encode_field(enc, "proposal", proposal_);
    encode_round(enc, "promised", promised_, enc_n_);
    encode_round(enc, "accepted-round", accepted_round_, enc_n_);
    sim::encode_field(enc, "accepted-val", accepted_val_);
    enc.field("leading", leading_);
    enc.field("phase", phase_);
    encode_round(enc, "round", round_, enc_n_);
    encode_round(enc, "max-seen", max_seen_, enc_n_);
    enc.field("stall", stall_);
    enc.field("repliers", repliers_);
    encode_round(enc, "best-round", best_round_, enc_n_);
    sim::encode_field(enc, "best-val", best_val_);
    sim::encode_field(enc, "chosen", chosen_);
    enc.field("decided", decided_);
    sim::encode_field(enc, "decision", decision_);
  }

 private:
  using Round = std::uint64_t;

  /// Content equality where V supports it; payloads whose value type is
  /// not comparable stay conservatively non-commuting.
  template <typename W>
  [[nodiscard]] static bool values_equal(const W& a, const W& b) {
    if constexpr (std::equality_comparable<W>) {
      return a == b;
    } else {
      (void)a;
      (void)b;
      return false;
    }
  }

  // Audited non-commuting: even two Prepares for the *same* round race —
  // the first one wins a Promise, the second a Nack, so swapping them
  // swaps which sender gets which reply.
  struct Prepare final : sim::Payload {
    Prepare(Round r, int procs) : round(r), n(procs) {}
    Round round;
    int n;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "prepare");
      encode_round(enc, "round", round, n);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "cons.prepare";
    }
  };
  // Audited non-commuting: the leader's phase-1 quorum check runs inside
  // the handler; whichever promise completes it fixes the replier
  // snapshot and the step at which phase 2 starts.
  struct Promise final : sim::Payload {
    Promise(Round r, Round ar, std::optional<V> av, int procs)
        : round(r), accepted_round(ar), accepted_val(std::move(av)),
          n(procs) {}
    Round round;
    Round accepted_round;
    std::optional<V> accepted_val;
    int n;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "promise");
      encode_round(enc, "round", round, n);
      encode_round(enc, "accepted-round", accepted_round, n);
      sim::encode_field(enc, "accepted-val", accepted_val);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "cons.promise";
    }
  };
  // Two identical Accepts (a leader's retry storm) commute: the handler's
  // writes and its Accepted/Nack/Decide reply depend only on the content.
  struct Accept final : sim::Payload {
    Accept(Round r, V v, int procs)
        : round(r), value(std::move(v)), n(procs) {}
    Round round;
    V value;
    int n;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "accept");
      encode_round(enc, "round", round, n);
      sim::encode_field(enc, "value", value);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "cons.accept";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      const auto* o = sim::payload_cast<Accept>(other);
      return o != nullptr && round == o->round &&
             values_equal(value, o->value);
    }
  };
  // Audited non-commuting: phase-2 quorum check inside the handler.
  struct Accepted final : sim::Payload {
    Accepted(Round r, int procs) : round(r), n(procs) {}
    Round round;
    int n;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "accepted");
      encode_round(enc, "round", round, n);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "cons.accepted";
    }
  };
  // Equal-content Nacks commute (max-merge of the promised round plus an
  // idempotent leading_ reset); different contents race for max_seen_'s
  // intermediate value and the leading_ flag.
  struct Nack final : sim::Payload {
    Nack(Round r, Round p, int procs) : round(r), promised(p), n(procs) {}
    Round round;
    Round promised;
    int n;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "nack");
      encode_round(enc, "round", round, n);
      encode_round(enc, "promised", promised, n);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "cons.nack";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      const auto* o = sim::payload_cast<Nack>(other);
      return o != nullptr && round == o->round && promised == o->promised;
    }
  };
  // Decisions for one value commute: decide() is an idempotent latch and
  // ignores the sender, so only the first delivery acts — identically in
  // either order.
  struct Decide final : sim::Payload {
    explicit Decide(V v) : value(std::move(v)) {}
    V value;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "decide");
      sim::encode_field(enc, "value", value);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "cons.decide";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      const auto* o = sim::payload_cast<Decide>(other);
      return o != nullptr && values_equal(value, o->value);
    }
  };

  /// Smallest round owned by self strictly greater than `after`.
  [[nodiscard]] Round next_own_round(Round after) const {
    const Round base = (after / static_cast<Round>(n())) + 1;
    return base * static_cast<Round>(n()) + static_cast<Round>(self());
  }

  void start_round() {
    round_ = next_own_round(std::max({max_seen_, promised_, round_}));
    max_seen_ = round_;
    ++rounds_;
    leading_ = true;
    phase_ = 1;
    stall_ = 0;
    repliers_ = ProcessSet{};
    best_round_ = 0;
    best_val_.reset();
    broadcast(sim::make_payload<Prepare>(round_, n()));
  }

  [[nodiscard]] bool have_quorum() const {
    switch (opt_.quorum_rule) {
      case ConsensusQuorumRule::kMajority:
        return 2 * repliers_.size() > n();
      case ConsensusQuorumRule::kSigma: {
        const auto v = detector();
        return v.sigma.has_value() && v.sigma->is_subset_of(repliers_);
      }
    }
    return false;
  }

  void maybe_advance() {
    if (!leading_ || !have_quorum()) return;
    if (phase_ == 1) {
      phase_ = 2;
      stall_ = 0;
      repliers_ = ProcessSet{};
      const V value = best_val_.has_value() ? *best_val_ : proposal_;
      chosen_ = value;
      broadcast(sim::make_payload<Accept>(round_, value, n()));
      return;
    }
    // Phase 2 closed on a quorum: the value is decided. The broadcast
    // happens in this same atomic step, so every process is informed
    // even if this leader crashes right after.
    broadcast(sim::make_payload<Decide>(chosen_));
    decide(chosen_);
  }

  void decide(const V& v) {
    if (decided_) return;
    decided_ = true;
    decision_ = v;
    leading_ = false;
    emit("decide", decide_event_value(decision_));
    if (cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(decision_);
    }
  }

  Options opt_;

  /// Process count cached at on_start for encode_state (which runs
  /// outside any step, where n() is unreachable). 0 until started.
  int enc_n_ = 0;

  // Proposer state.
  bool proposed_ = false;
  V proposal_{};
  DecideCb cb_;

  // Acceptor state.
  Round promised_ = 0;
  Round accepted_round_ = 0;
  std::optional<V> accepted_val_;

  // Leader state.
  bool leading_ = false;
  int phase_ = 0;
  Round round_ = 0;
  Round max_seen_ = 0;
  Time stall_ = 0;
  ProcessSet repliers_;
  Round best_round_ = 0;
  std::optional<V> best_val_;
  V chosen_{};
  std::uint64_t rounds_ = 0;

  // Outcome.
  bool decided_ = false;
  V decision_{};
};

}  // namespace wfd::consensus
