// From binary consensus to multivalued consensus (Mostefaoui, Raynal,
// Tronel [20]) — the technique footnote 6 of the paper invokes so that
// the Figure 3 extraction may assume a multivalued QC algorithm.
//
// Every process broadcasts its proposal, then the processes run a
// sequence of *binary* consensus instances k = 0, 1, 2, ...; in instance
// k a process proposes 1 iff it has already received the proposal of
// process k mod n. The first instance to decide 1 designates the winner:
// everyone decides the proposal of process k mod n (waiting for it to
// arrive if needed — some process vouched for it by proposing 1, so it
// was broadcast and reliable links will deliver it).
//
// Termination: once all faulty processes have crashed and every correct
// process has received every correct proposal, any instance k whose
// owner k mod n is correct and in which no process proposed before that
// point receives only 1-proposals, and validity forces a 1 decision.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/check.h"
#include "consensus/consensus_api.h"
#include "consensus/omega_sigma_consensus.h"
#include "sim/module.h"

namespace wfd::consensus {

template <typename V>
class MultivaluedFromBinaryModule : public sim::Module,
                                    public ConsensusApi<V> {
 public:
  using typename ConsensusApi<V>::DecideCb;
  using BinaryModule = OmegaSigmaConsensusModule<int>;

  /// May be called outside a step; the protocol starts at the host's
  /// next step.
  void propose(const V& value, DecideCb cb) override {
    WFD_CHECK_MSG(!proposed_, "propose called twice");
    proposed_ = true;
    proposal_ = value;
    cb_ = std::move(cb);
  }

  void on_tick() override {
    if (!proposed_ || initialized_) return;
    initialized_ = true;
    known_[self()] = proposal_;
    broadcast(sim::make_payload<ProposalMsg>(proposal_),
              /*include_self=*/false);
    start_instance();
  }

  [[nodiscard]] bool decided() const override { return decided_; }
  [[nodiscard]] const V& decision() const override {
    WFD_CHECK(decided_);
    return decision_;
  }
  [[nodiscard]] bool done() const override { return !proposed_ || decided_; }

  /// Binary instances consumed before deciding (cost metric: [20] pays
  /// O(position of the first received proposal)).
  [[nodiscard]] std::uint64_t instances_used() const { return k_ + 1; }

  void on_message(ProcessId from, const sim::Payload& msg) override {
    if (const auto* m = sim::payload_cast<ProposalMsg>(msg)) {
      known_.emplace(from, m->value);
      try_finish();
    }
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("proposed", proposed_);
    enc.field("initialized", initialized_);
    sim::encode_field(enc, "proposal", proposal_);
    for (const auto& [p, v] : known_) {
      enc.push("known", static_cast<std::uint64_t>(p));
      sim::encode_field(enc, "val", v);
      enc.pop();
    }
    enc.field("k", k_);
    enc.field("waiting", waiting_);
    enc.field("decided", decided_);
    sim::encode_field(enc, "decision", decision_);
  }

 private:
  // Audited non-commuting: try_finish() runs inside the handler, and a
  // proposal from the process the decider is currently waiting_ on can
  // complete the decision by itself — the pair's order moves the decision
  // step and the known_ snapshot it reads.
  struct ProposalMsg final : sim::Payload {
    explicit ProposalMsg(V v) : value(std::move(v)) {}
    V value;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "proposal");
      sim::encode_field(enc, "value", value);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "mvcons.proposal";
    }
  };

  void start_instance() {
    const ProcessId j = static_cast<ProcessId>(k_ % static_cast<std::uint64_t>(n()));
    auto& bin = host().template add_module<BinaryModule>(
        name() + "/bin/" + std::to_string(k_));
    const std::uint64_t k = k_;
    bin.propose(known_.count(j) != 0 ? 1 : 0,
                [this, k](const int& d) { on_binary_decided(k, d); });
  }

  void on_binary_decided(std::uint64_t k, int d) {
    if (decided_ || k != k_) return;
    if (d == 1) {
      waiting_ = static_cast<ProcessId>(k_ % static_cast<std::uint64_t>(n()));
      try_finish();
    } else {
      ++k_;
      start_instance();
    }
  }

  void try_finish() {
    if (decided_ || !waiting_.has_value()) return;
    auto it = known_.find(*waiting_);
    if (it == known_.end()) return;
    decided_ = true;
    decision_ = it->second;
    emit("decide", decide_event_value(decision_));
    if (cb_) {
      auto cb = std::move(cb_);
      cb_ = nullptr;
      cb(decision_);
    }
  }

  bool proposed_ = false;
  bool initialized_ = false;
  V proposal_{};
  DecideCb cb_;
  std::map<ProcessId, V> known_;
  std::uint64_t k_ = 0;
  std::optional<ProcessId> waiting_;
  bool decided_ = false;
  V decision_{};
};

}  // namespace wfd::consensus
