// Atomic (total-order) broadcast from consensus — Chandra-Toueg [4],
// Section 4 there: the constructive half of "atomic broadcast and
// consensus are equivalent", and the engine behind Lamport/Schneider
// state-machine replication [17, 21] that Corollary 3 leans on.
//
// Messages are disseminated with uniform reliable broadcast; ordering is
// agreed in rounds: in round k every participant proposes its current
// set of URB-delivered-but-unordered messages to consensus instance k,
// and everyone TO-delivers the decided batch (minus what it already
// delivered) in deterministic (origin, seq) order. Sequential rounds
// plus consensus agreement give a common delivery prefix at all
// processes; URB's agreement plus round repetition give liveness for
// every message a correct process broadcasts.
//
// The consensus instances run on (Omega, Sigma) by default (so the whole
// stack works in any environment), or on whatever FdSource is wired in.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "broadcast/app_message.h"
#include "broadcast/reliable_broadcast.h"
#include "common/check.h"
#include "consensus/omega_sigma_consensus.h"
#include "sim/module.h"

namespace wfd::broadcast {

class AtomicBroadcastModule : public sim::Module {
 public:
  using DeliverCb = std::function<void(const AppMessage&)>;
  using Batch = std::vector<AppMessage>;
  using RoundConsensus = consensus::OmegaSigmaConsensusModule<Batch>;

  void set_deliver(DeliverCb cb) { deliver_ = std::move(cb); }

  /// Totally-ordered broadcast; may be called outside a step.
  void abcast(std::int64_t body) { ensure_urb().urb_broadcast(body); }

  /// The TO-delivered sequence so far (a prefix-consistent log across
  /// all processes).
  [[nodiscard]] const std::vector<AppMessage>& delivered_log() const {
    return log_;
  }
  [[nodiscard]] std::uint64_t rounds_completed() const { return round_; }

  /// False while messages are known but not yet ordered (keeps runs
  /// alive until the log drains).
  [[nodiscard]] bool done() const override { return unordered_.empty(); }

  void on_start() override { ensure_urb(); }

  void on_message(ProcessId, const sim::Payload& msg) override {
    if (const auto* m = sim::payload_cast<AnnounceRound>(msg)) {
      join_round(m->round);
    }
  }

  void on_tick() override {
    // Start/advance ordering rounds whenever something awaits ordering.
    if (!unordered_.empty() && joined_.count(round_) == 0) {
      join_round(round_);
      broadcast(sim::make_payload<AnnounceRound>(round_),
                /*include_self=*/false);
    }
  }

  void encode_state(sim::StateEncoder& enc) const override {
    for (const AppMessage& m : unordered_) {
      sim::StateEncoder sub = enc.child();
      m.encode_state(sub);
      enc.merge("unordered", sub);
    }
    for (const AppMessage& m : ordered_) {
      sim::StateEncoder sub = enc.child();
      m.encode_state(sub);
      enc.merge("ordered", sub);
    }
    sim::encode_field(enc, "log", log_);
    enc.field("round", round_);
    for (const std::uint64_t k : joined_) {
      sim::StateEncoder sub = enc.child();
      sub.field("k", k);
      enc.merge("joined", sub);
    }
    for (const auto& [k, batch] : decisions_) {
      sim::StateEncoder sub = enc.child();
      sub.field("k", k);
      sim::encode_field(sub, "batch", batch);
      enc.merge("decision", sub);
    }
  }

 private:
  // Equal-round announcements commute: join_round's joined_ guard makes
  // the second of the pair a strict no-op. Distinct rounds do not — the
  // spawned consensus instance's first tick reads the detector at the
  // spawn step, a receipt-time read that the pair's order shifts.
  struct AnnounceRound final : sim::Payload {
    explicit AnnounceRound(std::uint64_t r) : round(r) {}
    std::uint64_t round;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("kind", "announce-round");
      enc.field("round", round);
    }
    [[nodiscard]] std::string_view kind() const override {
      return "ab.announce";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      const auto* o = sim::payload_cast<AnnounceRound>(other);
      return o != nullptr && round == o->round;
    }
  };

  UrbModule& ensure_urb() {
    if (urb_ == nullptr) {
      urb_ = &host().add_module<UrbModule>(name() + "/urb");
      urb_->set_deliver([this](const AppMessage& m) { on_urb_deliver(m); });
    }
    return *urb_;
  }

  void on_urb_deliver(const AppMessage& m) {
    if (ordered_.count(m) == 0) unordered_.insert(m);
  }

  void join_round(std::uint64_t k) {
    if (!joined_.insert(k).second) return;
    auto& inst = host().template add_module<RoundConsensus>(
        name() + "/round/" + std::to_string(k));
    inst.propose(Batch(unordered_.begin(), unordered_.end()),
                 [this, k](const Batch& decided) {
                   on_round_decided(k, decided);
                 });
  }

  void on_round_decided(std::uint64_t k, const Batch& decided) {
    decisions_[k] = decided;
    // Apply rounds strictly in order.
    for (;;) {
      auto it = decisions_.find(round_);
      if (it == decisions_.end()) return;
      Batch batch = it->second;
      decisions_.erase(it);
      ++round_;
      std::sort(batch.begin(), batch.end());
      for (const AppMessage& m : batch) {
        if (!ordered_.insert(m).second) continue;  // Already TO-delivered.
        unordered_.erase(m);
        log_.push_back(m);
        if (deliver_) deliver_(m);
      }
    }
  }

  UrbModule* urb_ = nullptr;
  DeliverCb deliver_;
  std::set<AppMessage> unordered_;  ///< URB-delivered, not yet ordered.
  std::set<AppMessage> ordered_;
  std::vector<AppMessage> log_;
  std::uint64_t round_ = 0;  ///< Next round to apply.
  std::set<std::uint64_t> joined_;
  std::map<std::uint64_t, Batch> decisions_;
};

}  // namespace wfd::broadcast
