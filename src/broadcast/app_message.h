// Application-level messages for the broadcast layer: identified by
// (origin, sequence number), carrying an opaque int64 body. Identity
// drives deduplication and deterministic batch ordering.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "sim/state_encoder.h"

namespace wfd::broadcast {

struct AppMessage {
  ProcessId origin = kNoProcess;
  std::uint64_t seq = 0;
  std::int64_t body = 0;

  void encode_state(sim::StateEncoder& enc) const {
    enc.field("origin", origin);
    enc.field("seq", seq);
    enc.field("body", body);
  }

  friend bool operator==(const AppMessage& a, const AppMessage& b) {
    return a.origin == b.origin && a.seq == b.seq;
  }
  friend auto operator<=>(const AppMessage& a, const AppMessage& b) {
    if (auto c = a.origin <=> b.origin; c != 0) return c;
    return a.seq <=> b.seq;
  }
};

}  // namespace wfd::broadcast
