// Quasi-reliable point-to-point links from lossy ones — the standard
// retransmit-until-acknowledged construction (Aspnes' notes, ch. on
// message passing; ABD and every quorum protocol in the paper assume
// it). The simulator's links are reliable by construction, so lossiness
// enters only through the injected fault plan (src/inject/fault_plan.h):
// the adversary may drop or duplicate pending messages within per-link
// budgets. This module makes the paper's reliable-link assumption a
// *checked* construction under those faults:
//
//  * every outgoing payload of a wrapped module is framed as Data{seq}
//    and remembered until the matching Ack arrives;
//  * un-acked frames are re-sent every `retransmit_every` host ticks —
//    with finite loss budgets some copy eventually gets through;
//  * the receiver dedups per-sender seqs (duplicates — injected or
//    retransmitted — dispatch at most once) and re-acks every copy, so
//    a lost Ack is repaired by the next retransmission.
//
// Wrap a module by adding a QuasiReliableModule to the same host and
// calling wrapped.set_transport(&qr). The destination host must carry an
// equally-named qr module, and the wrapped (destination) module must
// exist before the first frame arrives.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/module.h"

namespace wfd::broadcast {

class QuasiReliableModule : public sim::Module, public sim::ModuleTransport {
 public:
  explicit QuasiReliableModule(Time retransmit_every = 4)
      : every_(retransmit_every) {
    WFD_CHECK(every_ >= 1);
  }

  // ---- sim::ModuleTransport
  void module_send(const std::string& module, ProcessId to,
                   sim::PayloadPtr payload) override {
    const std::uint64_t seq = next_seq_++;
    pending_.push_back(Entry{seq, to, module, payload});
    send(to, sim::make_payload<Data>(seq, module, std::move(payload)));
  }

  // ---- sim::Module
  void on_message(ProcessId from, const sim::Payload& msg) override {
    if (const auto* d = sim::payload_cast<Data>(msg)) {
      // Ack every copy: the sender may be retransmitting because *our*
      // previous ack was the message that got dropped.
      send(from, sim::make_payload<Ack>(d->seq));
      if (!delivered_.insert(std::make_pair(from, d->seq)).second) return;
      sim::Module* dest = host().find_module(d->dest);
      WFD_CHECK_MSG(dest != nullptr,
                    "quasi-reliable frame for a module that does not exist");
      dest->on_message(from, *d->inner);
    } else if (const auto* a = sim::payload_cast<Ack>(msg)) {
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].seq == a->seq && pending_[i].to == from) {
          pending_.erase(pending_.begin() +
                         static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
  }

  void on_tick() override {
    if (pending_.empty()) {
      ticks_ = 0;
      return;
    }
    if (++ticks_ < every_) return;
    ticks_ = 0;
    for (const Entry& e : pending_) {
      send(e.to, sim::make_payload<Data>(e.seq, e.module, e.inner));
      ++retransmits_;
    }
  }

  /// Un-acked frames keep the run alive: the construction's guarantee is
  /// precisely that they land eventually, so the run must not halt while
  /// one is outstanding (frames to a crashed peer pin the run to the
  /// horizon — bounded exploration, not a hang).
  [[nodiscard]] bool done() const override { return pending_.empty(); }

  /// Never a declared no-op: the tick counts toward the retransmission
  /// timer whenever frames are pending, and the frames set is written by
  /// handlers (acks, wrapped sends), so no sound inertness claim exists.
  [[nodiscard]] bool tick_noop() const override { return false; }

  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::size_t unacked() const { return pending_.size(); }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("next-seq", next_seq_);
    enc.field("ticks", ticks_);
    for (const Entry& e : pending_) {
      sim::StateEncoder sub = enc.child();
      sub.field("seq", e.seq);
      sub.pid_field("to", e.to);
      sub.field("module", e.module);
      sub.push("inner");
      e.inner->encode_state(sub);
      sub.pop();
      enc.merge("pending", sub);
    }
    for (const auto& [from, seq] : delivered_) {
      sim::StateEncoder sub = enc.child();
      sub.pid_field("from", from);
      sub.field("seq", seq);
      enc.merge("delivered", sub);
    }
  }

 private:
  struct Entry {
    std::uint64_t seq;
    ProcessId to;
    std::string module;
    sim::PayloadPtr inner;
  };

  /// One framed payload. Retransmitted copies of a frame are identical,
  /// so the explorer's same-sender equal-digest rule already commutes
  /// them; commutes_with additionally declares same-(seq, dest) frames
  /// commuting when their inners commute (the receiver dedups, and the
  /// re-ack it sends is content-identical either way). Distinct frames
  /// keep the conservative default: the ack and seq bookkeeping is
  /// order-sensitive enough that no blanket claim is sound.
  struct Data final : sim::Payload {
    Data(std::uint64_t s, std::string d, sim::PayloadPtr i)
        : seq(s), dest(std::move(d)), inner(std::move(i)) {}
    std::uint64_t seq;
    std::string dest;
    sim::PayloadPtr inner;

    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("seq", seq);
      enc.field("dest", dest);
      enc.push("inner");
      inner->encode_state(enc);
      enc.pop();
    }
    [[nodiscard]] std::string_view kind() const override {
      return "qr.data";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      const auto* o = sim::payload_cast<Data>(other);
      return o != nullptr && seq == o->seq && dest == o->dest &&
             inner->commutes_with(*o->inner);
    }
  };

  /// Cumulative-free acknowledgement of one frame. The handler only
  /// erases the matching pending entry (keyed by (seq, sender)) and
  /// sends nothing, so any two acks commute with each other; they stay
  /// dependent with everything else (the pending set gates both the
  /// retransmission tick and done()).
  struct Ack final : sim::Payload {
    explicit Ack(std::uint64_t s) : seq(s) {}
    std::uint64_t seq;

    void encode_state(sim::StateEncoder& enc) const override {
      enc.field("ack", seq);
    }
    [[nodiscard]] std::string_view kind() const override { return "qr.ack"; }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      return sim::payload_cast<Ack>(other) != nullptr;
    }
  };

  Time every_;
  Time ticks_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t retransmits_ = 0;
  std::vector<Entry> pending_;
  std::set<std::pair<ProcessId, std::uint64_t>> delivered_;
};

}  // namespace wfd::broadcast
