// Uniform reliable broadcast (URB), detector-free, any environment.
//
// Echo algorithm: on the first receipt of a message, relay it to
// everyone and deliver it. Because a step is atomic (the relay happens
// in the same step as the delivery), even a process that crashes right
// after delivering has already relayed — so if ANY process delivers m,
// every correct process eventually receives and delivers m: uniform
// agreement. Validity (a correct broadcaster's messages get delivered
// everywhere) and integrity (each message delivered at most once, and
// only if broadcast) follow from reliable links and (origin, seq)
// deduplication.
//
// This is the dissemination substrate under the atomic broadcast module.
#pragma once

#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "broadcast/app_message.h"
#include "common/check.h"
#include "sim/module.h"

namespace wfd::broadcast {

class UrbModule : public sim::Module {
 public:
  using DeliverCb = std::function<void(const AppMessage&)>;

  /// Register the delivery upcall (invoked within the host's steps).
  void set_deliver(DeliverCb cb) { deliver_ = std::move(cb); }

  /// Broadcast a new message; may be called outside a step. Returns the
  /// message's sequence number at this origin.
  std::uint64_t urb_broadcast(std::int64_t body) {
    AppMessage m;
    m.origin = kNoProcess;  // Resolved to self() at the sending tick.
    m.seq = next_seq_++;
    m.body = body;
    outbox_.push_back(m);
    return m.seq;
  }

  /// A queued broadcast is work that must keep the run alive until the
  /// sending tick, or an abcast issued before the first step would let
  /// the simulator halt with every module trivially done.
  [[nodiscard]] bool done() const override { return outbox_.empty(); }

  /// The tick only drains the outbox, which no message handler touches:
  /// with an empty outbox the tick is a no-op on either side of any
  /// delivery.
  [[nodiscard]] bool tick_noop() const override { return outbox_.empty(); }

  [[nodiscard]] std::uint64_t delivered_count() const { return delivered_n_; }
  [[nodiscard]] const std::vector<AppMessage>& delivered_log() const {
    return log_;
  }

  void on_message(ProcessId, const sim::Payload& msg) override {
    if (const auto* e = sim::payload_cast<Echo>(msg)) {
      handle(e->message);
    }
  }

  void on_tick() override {
    while (!outbox_.empty()) {
      AppMessage m = outbox_.front();
      outbox_.erase(outbox_.begin());
      m.origin = self();
      handle(m);  // Relays to all and delivers locally, atomically.
    }
  }

  void encode_state(sim::StateEncoder& enc) const override {
    enc.field("next-seq", next_seq_);
    sim::encode_field(enc, "outbox", outbox_);
    for (const auto& [origin, seq] : seen_) {
      sim::StateEncoder sub = enc.child();
      sub.field("origin", origin);
      sub.field("seq", seq);
      enc.merge("seen", sub);
    }
    sim::encode_field(enc, "log", log_);
    enc.field("delivered", delivered_n_);
  }

 private:
  // Echoes of the *same* app message commute: handle() dedups on
  // (origin, seq), so the second of the pair is a strict no-op in either
  // order. Distinct messages do not — their log_/delivery order flips.
  struct Echo final : sim::Payload {
    explicit Echo(AppMessage m) : message(m) {}
    AppMessage message;
    void encode_state(sim::StateEncoder& enc) const override {
      enc.push("echo");
      message.encode_state(enc);
      enc.pop();
    }
    [[nodiscard]] std::string_view kind() const override {
      return "rb.echo";
    }
    [[nodiscard]] bool commutes_with(const sim::Payload& other)
        const override {
      const auto* o = sim::payload_cast<Echo>(other);
      return o != nullptr && message == o->message;
    }
    /// handle() reads neither the clock nor the detector and emits no
    /// trace events, so an echo also commutes with inert lambda steps.
    [[nodiscard]] bool tick_insensitive() const override { return true; }
  };

  void handle(const AppMessage& m) {
    if (!seen_.insert(std::make_pair(m.origin, m.seq)).second) return;
    // Relay first (same atomic step), then deliver: whoever delivers has
    // relayed — this is what makes agreement uniform.
    broadcast(sim::make_payload<Echo>(m), /*include_self=*/false);
    log_.push_back(m);
    ++delivered_n_;
    if (deliver_) deliver_(m);
  }

  DeliverCb deliver_;
  std::uint64_t next_seq_ = 1;
  std::vector<AppMessage> outbox_;
  std::set<std::pair<ProcessId, std::uint64_t>> seen_;
  std::vector<AppMessage> log_;
  std::uint64_t delivered_n_ = 0;
};

}  // namespace wfd::broadcast
