#include "sim/choice.h"

#include "common/check.h"

namespace wfd::sim {

std::size_t FixedChoices::choose(ChoiceKind kind,
                                 const std::vector<std::uint64_t>& labels) {
  (void)kind;
  WFD_CHECK(!labels.empty());
  ++consumed_;
  if (pos_ >= log_.size()) return 0;
  return log_[pos_++] % labels.size();
}

std::size_t RecordingChoices::choose(ChoiceKind kind,
                                     const std::vector<std::uint64_t>& labels) {
  const std::size_t idx = inner_->choose(kind, labels);
  WFD_CHECK(idx < labels.size());
  log_.push_back(static_cast<std::uint32_t>(idx));
  return idx;
}

std::size_t RandomChoices::choose(ChoiceKind kind,
                                  const std::vector<std::uint64_t>& labels) {
  (void)kind;
  WFD_CHECK(!labels.empty());
  return static_cast<std::size_t>(rng_.below(labels.size()));
}

}  // namespace wfd::sim
