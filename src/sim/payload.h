// Message payloads.
//
// Each protocol defines its own payload structs deriving from Payload and
// dispatches on the concrete type at receipt. Payloads are immutable once
// sent (shared_ptr<const>), so a broadcast shares one allocation.
//
// Beyond content, every payload carries an *identity and commutativity
// contract* consumed by the DPOR explorer (src/explore/, sim/dependence.h):
//
//  * kind() names the payload type. An empty kind means the type has not
//    been audited for commutativity; such payloads are treated as
//    conservatively dependent on everything and are reported by
//    `wfd_check --json` (mirroring the opaque-fingerprint reporting), so
//    coverage regressions stay visible.
//
//  * commutes_with(other) declares that delivering *this* and then
//    `other` to the same process — in two consecutive steps — reaches
//    exactly the same process state, emits the same trace events and
//    sends the same messages (as a content multiset; network-assigned
//    ids may differ) as the reverse order, in every protocol-reachable
//    state where both are pending. The contract is consulted
//    symmetrically (a~b requires both a.commutes_with(b) and
//    b.commutes_with(a)) and only for classified payloads.
//
//  * tick_insensitive() additionally lets a delivery commute with an
//    adjacent *inert* lambda step of the receiver (every module's tick a
//    declared no-op, Module::tick_noop) — the reorder only shifts the
//    delivery's time, so the opt-in is a claim that the handler never
//    observes time (clock, detector, time-compared trace events).
//
// The default is maximally conservative: unclassified, never commutes.
// Overriding commutes_with is a soundness claim about the *receiving
// handler*, not about the payload bytes; the usual hazards that make two
// deliveries order-dependent are (1) receipt-time reads (`tick_`-stamped
// deadlines) and (2) sub-all-n thresholds that can fire after the first
// delivery of the pair alone, shifting a phase transition by one step.
// See DESIGN.md ("Content-aware dependence") for the soundness argument
// and tests/commute_test.cpp for the mechanical check.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "sim/state_encoder.h"

namespace wfd::sim {

/// Base class of all message payloads.
struct Payload {
  virtual ~Payload() = default;

  /// Fold this payload's content into a state fingerprint. Payload types
  /// that stay with the default are *opaque*: any in-flight message of
  /// that type disables fingerprint pruning for the whole run (sound,
  /// just slower), so explorable protocols override this.
  virtual void encode_state(StateEncoder& enc) const {
    enc.opaque("payload");
  }

  /// Stable identity tag of this payload type. Empty (the default) means
  /// *unclassified*: the type has not been audited for commutativity, so
  /// the explorer treats it as dependent on everything and reports it.
  [[nodiscard]] virtual std::string_view kind() const { return {}; }

  /// Whether delivering *this* then `other` to the same process is
  /// state-equivalent to the reverse order (see the file comment for the
  /// exact obligation). Only consulted when both payloads are classified;
  /// the default — never commutes — is always sound.
  [[nodiscard]] virtual bool commutes_with(const Payload& other) const {
    (void)other;
    return false;
  }

  /// Whether delivering this payload commutes with an adjacent *inert*
  /// lambda step of the receiving process — one in which every hosted
  /// module's on_tick is a no-op (Module::tick_noop). Reordering such a
  /// pair shifts the delivery by one time step, so opting in asserts the
  /// receiving handler reads neither the clock nor the failure detector
  /// and emits no trace events whose times a property compares. The
  /// default — time-sensitive, never reorder — is always sound.
  [[nodiscard]] virtual bool tick_insensitive() const { return false; }

  /// Human-readable type name for diagnostics: kind() when classified,
  /// else the (demangled) C++ type name. Wrappers override it to name
  /// the wrapped payload.
  [[nodiscard]] virtual std::string identity() const;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Construct an immutable payload of concrete type T.
template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// Downcast helper; returns nullptr when the payload is a different type.
template <typename T>
const T* payload_cast(const Payload& p) {
  return dynamic_cast<const T*>(&p);
}

}  // namespace wfd::sim
