// Message payloads.
//
// Each protocol defines its own payload structs deriving from Payload and
// dispatches on the concrete type at receipt. Payloads are immutable once
// sent (shared_ptr<const>), so a broadcast shares one allocation.
#pragma once

#include <memory>
#include <utility>

#include "sim/state_encoder.h"

namespace wfd::sim {

/// Base class of all message payloads.
struct Payload {
  virtual ~Payload() = default;

  /// Fold this payload's content into a state fingerprint. Payload types
  /// that stay with the default are *opaque*: any in-flight message of
  /// that type disables fingerprint pruning for the whole run (sound,
  /// just slower), so explorable protocols override this.
  virtual void encode_state(StateEncoder& enc) const {
    enc.opaque("payload");
  }
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// Construct an immutable payload of concrete type T.
template <typename T, typename... Args>
PayloadPtr make_payload(Args&&... args) {
  return std::make_shared<const T>(std::forward<Args>(args)...);
}

/// Downcast helper; returns nullptr when the payload is a different type.
template <typename T>
const T* payload_cast(const Payload& p) {
  return dynamic_cast<const T*>(&p);
}

}  // namespace wfd::sim
