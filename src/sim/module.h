// Module composition.
//
// The paper's constructions stack protocols: NBAC runs on top of QC plus
// FS (Fig. 4), QC on top of NBAC (Fig. 5), QC on top of consensus
// (Fig. 2), the Sigma extraction on top of n register instances (Fig. 1),
// FS is built from infinitely many NBAC instances, and register-based
// consensus uses n register instances. A ModularProcess hosts named
// modules inside one process; messages are routed by module name, and
// modules interact locally through direct method calls and completion
// callbacks, all within the host's atomic steps.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/process.h"
#include "sim/simulator.h"

namespace wfd::sim {

class ModularProcess;

/// A local source of failure-detector values. Algorithm modules read
/// their detector through this indirection so the same algorithm can run
/// against an oracle history (the default: the value sampled by the host
/// in the current step) or against a detector *implementation* — another
/// module, e.g. the join-quorum Sigma — without any code change. This is
/// exactly the paper's notion of transforming one detector into another:
/// a transformation module implements FdSource.
class FdSource {
 public:
  virtual ~FdSource() = default;
  [[nodiscard]] virtual fd::FdValue fd_value() const = 0;
};

/// Interposes on a module's outgoing inter-process traffic. A transport
/// module (e.g. broadcast::QuasiReliableModule) implements this so that
/// algorithm modules written against reliable links can run unchanged
/// over lossy ones — the transport wraps each payload with whatever
/// sequencing/retransmission state it needs and delivers it to the
/// destination's same-named module on the far side.
class ModuleTransport {
 public:
  virtual ~ModuleTransport() = default;

  /// Ship `payload` to the module named `module` on process `to`.
  virtual void module_send(const std::string& module, ProcessId to,
                           PayloadPtr payload) = 0;
};

/// A protocol component living inside a ModularProcess. The protected
/// helpers (send, fd, ...) are valid only during a step of the host, which
/// is the only time module code runs.
class Module {
 public:
  virtual ~Module() = default;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Called once, during the host's first step (or immediately when the
  /// module is added mid-run).
  virtual void on_start() {}

  /// A message from the same-named module of process `from`.
  virtual void on_message(ProcessId from, const Payload& msg) = 0;

  /// Called on every step of the host (use for timeouts/retries).
  virtual void on_tick() {}

  /// True when on_tick is currently a pure no-op *and stays one across
  /// the deliveries the explorer may commute it with*: the returned
  /// value must depend only on state that no tick_insensitive message
  /// handler writes, and while it is true, on_tick must neither act nor
  /// read anything such a handler writes. The explorer uses this (via
  /// Process::tick_noop) to commute inert lambda steps with
  /// tick-insensitive deliveries; modules with a live tick keep the
  /// conservative default.
  [[nodiscard]] virtual bool tick_noop() const { return false; }

  /// False while this module still has work that should keep the run
  /// alive. Service modules (servers, detector implementations) keep the
  /// default `true` so they never block run completion.
  [[nodiscard]] virtual bool done() const { return true; }

  /// Route this module's detector reads through `src` instead of the
  /// host's oracle sample (pass nullptr to restore the oracle).
  void set_fd_source(const FdSource* src) { fd_source_ = src; }

  /// Route this module's send/broadcast through `t` instead of the raw
  /// network (pass nullptr to restore direct sends). The transport must
  /// live on the same host and must not itself have a transport set.
  void set_transport(ModuleTransport* t) { transport_ = t; }

  /// Fold every member that influences this module's future behaviour
  /// into `enc` (see StateEncoder for the conventions). The host wraps
  /// the call in a per-module scope, so tags only need to be unique
  /// within the module. Modules that keep the default are opaque and
  /// disable fingerprint pruning for any scenario containing them.
  virtual void encode_state(StateEncoder& enc) const {
    enc.opaque("module");
  }

 protected:
  /// The failure-detector value this module should act on in this step:
  /// the configured FdSource if any, else the oracle sample.
  [[nodiscard]] fd::FdValue detector() const;

  [[nodiscard]] ProcessId self() const;
  [[nodiscard]] int n() const;
  [[nodiscard]] Time now() const;
  [[nodiscard]] const fd::FdValue& fd() const;
  void send(ProcessId to, PayloadPtr payload);
  void broadcast(PayloadPtr payload, bool include_self = true);
  void emit(const std::string& kind, std::int64_t value);
  Rng& rng();
  [[nodiscard]] ModularProcess& host() const;

 private:
  friend class ModularProcess;
  ModularProcess* host_ = nullptr;
  std::string name_;
  const FdSource* fd_source_ = nullptr;
  ModuleTransport* transport_ = nullptr;
};

/// Wire format: every inter-process message of a module is wrapped with
/// the module's name so the receiving host can route it.
///
/// The identity/commutativity contract forwards to the inner payload,
/// with one refinement: two envelopes commute only when they address the
/// *same* module. Deliveries to different modules of one host never
/// commute — each module's handler runs relative to its own tick
/// sequence, so a cross-module swap can shift a tick-gated threshold
/// (e.g. an NBAC vote completing while the inner consensus is mid-round)
/// by a step, and the per-module contracts cannot see that interaction.
struct ModuleEnvelope final : Payload {
  ModuleEnvelope(std::string module_name, PayloadPtr inner_payload)
      : module(std::move(module_name)), inner(std::move(inner_payload)) {}
  std::string module;
  PayloadPtr inner;

  void encode_state(StateEncoder& enc) const override {
    enc.field("module", module);
    enc.push("inner");
    inner->encode_state(enc);
    enc.pop();
  }

  /// Classified exactly when the inner payload is: the envelope itself
  /// adds routing, not semantics, so the audit obligation stays with the
  /// protocol payload.
  [[nodiscard]] std::string_view kind() const override {
    return inner->kind();
  }

  [[nodiscard]] bool commutes_with(const Payload& other) const override {
    const auto* o = payload_cast<ModuleEnvelope>(other);
    return o != nullptr && module == o->module &&
           inner->commutes_with(*o->inner);
  }

  /// Tick insensitivity is a property of the addressed handler alone, so
  /// it forwards unconditionally (the host's per-module routing adds no
  /// time reads).
  [[nodiscard]] bool tick_insensitive() const override {
    return inner->tick_insensitive();
  }

  [[nodiscard]] std::string identity() const override {
    return module + ":" + inner->identity();
  }
};

/// Merges two FdSources into a tuple detector (e.g. heartbeat Omega +
/// join-quorum Sigma => an implemented (Omega, Sigma) with no oracle).
/// Components of `a` win where both are present.
class MergedFdSource : public FdSource {
 public:
  MergedFdSource(const FdSource* a, const FdSource* b) : a_(a), b_(b) {
    WFD_CHECK(a != nullptr && b != nullptr);
  }

  [[nodiscard]] fd::FdValue fd_value() const override {
    fd::FdValue v = a_->fd_value();
    const fd::FdValue w = b_->fd_value();
    if (!v.omega && w.omega) v.omega = w.omega;
    if (!v.sigma && w.sigma) v.sigma = w.sigma;
    if (!v.fs && w.fs) v.fs = w.fs;
    if (!v.psi && w.psi) v.psi = w.psi;
    if (!v.suspected && w.suspected) v.suspected = w.suspected;
    return v;
  }

 private:
  const FdSource* a_;
  const FdSource* b_;
};

class ModularProcess : public Process {
 public:
  /// Add a module under a unique name. If the host is mid-run the module
  /// is started immediately and receives any messages that arrived for
  /// its name before it existed (instances created on demand, e.g.
  /// "nbac/7", rely on this).
  template <typename M, typename... Args>
  M& add_module(std::string module_name, Args&&... args) {
    WFD_CHECK_MSG(by_name_.find(module_name) == by_name_.end(),
                  "duplicate module name");
    auto mod = std::make_unique<M>(std::forward<Args>(args)...);
    M& ref = *mod;
    mod->host_ = this;
    mod->name_ = std::move(module_name);
    by_name_.emplace(mod->name_, mod.get());
    modules_.push_back(std::move(mod));
    if (started_) start_module(ref);
    return ref;
  }

  /// Find a module by name; nullptr when absent.
  [[nodiscard]] Module* find_module(const std::string& module_name) const;

  /// Find and downcast; asserts on absence or type mismatch.
  template <typename M>
  [[nodiscard]] M& module(const std::string& module_name) const {
    Module* m = find_module(module_name);
    WFD_CHECK_MSG(m != nullptr, "module not found");
    auto* typed = dynamic_cast<M*>(m);
    WFD_CHECK_MSG(typed != nullptr, "module type mismatch");
    return *typed;
  }

  void on_start(Context& ctx) override;
  void on_step(Context& ctx, const Envelope* msg) override;
  [[nodiscard]] bool done() const override;

  /// A host's step ticks every module, so the host's lambda step is
  /// inert exactly when every hosted module's tick is a declared no-op.
  [[nodiscard]] bool tick_noop() const override;

  /// The current step's context; valid only while the host is stepping.
  [[nodiscard]] Context& ctx() const {
    WFD_CHECK_MSG(current_ != nullptr, "module code ran outside a step");
    return *current_;
  }

  void set_instrument(TransportInstrument* ins) { instrument_ = ins; }
  [[nodiscard]] TransportInstrument* instrument() override {
    return instrument_;
  }

  /// Composes the per-module encodings (each in a scope keyed by the
  /// module's name) plus the pre-existence message buffer. Opaque iff
  /// any hosted module is.
  void encode_state(StateEncoder& enc) const override;

 private:
  struct BufferedMsg {
    ProcessId from;
    PayloadPtr inner;
  };

  void start_module(Module& m);
  void dispatch(ProcessId from, const ModuleEnvelope& env);

  std::vector<std::unique_ptr<Module>> modules_;
  std::map<std::string, Module*> by_name_;
  std::map<std::string, std::vector<BufferedMsg>> undelivered_;
  Context* current_ = nullptr;
  bool started_ = false;
  TransportInstrument* instrument_ = nullptr;
};

}  // namespace wfd::sim
